package harness

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rhtm"
	"rhtm/cluster"
	"rhtm/containers"
	"rhtm/kv"
	"rhtm/obs"
	"rhtm/repl"
	"rhtm/store"
	"rhtm/wal"
)

// The unified KV runner: every YCSB-style mix is generated once, against
// the kv.DB interface, and executed by RunKV on either backend — a
// single-System engine over a sharded store, or the share-nothing
// multi-System cluster. The old harness carried two parallel stacks of
// workload plumbing (tx-level op factories for the store, client-level
// workers for the cluster); this file replaces both.

// bankInitial is the starting balance of every bank account.
const bankInitial = 1000

// kvBackend abstracts what differs between the data layers: construction,
// setup-path population, quiescent reads, and result accounting.
type kvBackend interface {
	// DB returns the kv.DB the workers drive.
	DB() kv.DB
	// Clock returns the backend's virtual clock (lease expiry).
	Clock() *kv.ManualClock
	// Load populates one record on the setup path (no engine traffic).
	Load(key, value []byte) error
	// Peek reads a committed value while quiescent (verification).
	Peek(key []byte) ([]byte, bool)
	// SystemFor reports key placement for cross-System draws; -1 when the
	// backend has a single System.
	SystemFor(key []byte) int
	// Finish fills the engine/accesses/notes fields of the result.
	Finish(res *Result)
	// Validate checks structural invariants after the run.
	Validate() error
}

// --- store backend ---

type storeBackend struct {
	sys   *rhtm.System
	eng   rhtm.Engine
	sh    *store.Sharded
	db    *kv.Local
	clock *kv.ManualClock
	wal   bool

	// WAL-shipping replicas (spec.Replicas > 0): each follower is a full
	// System tailing the primary's log; reads route to them round-robin.
	group       *repl.Group
	followers   []*repl.Follower
	replicaEngs []rhtm.Engine
}

func openStoreBackend(spec KVSpec, engineName string, cfg RunConfig) (*storeBackend, error) {
	perRecord := store.RecordFootprintWords(len(ycsbKey(0)), spec.ValueBytes)
	recordsPerShard := (spec.Records + spec.Shards - 1) / spec.Shards
	insertSlack := (insertBudget(spec, cfg)/spec.Shards + 1) * perRecord * 2
	arenaWords := recordsPerShard*perRecord*2 + insertSlack + leaseSlackWords(spec)/spec.Shards + 4096
	s, err := rhtm.NewSystem(rhtm.DefaultConfig(spec.Shards*(arenaWords+store.DefaultLogWords+64) + 8192))
	if err != nil {
		return nil, err
	}
	eng, err := Build(s, engineName, cfg.InjectPct)
	if err != nil {
		return nil, err
	}
	sh := store.NewSharded(s, spec.Shards, store.Options{ArenaWords: arenaWords})
	clock := kv.NewManualClock()
	b := &storeBackend{sys: s, eng: eng, sh: sh, clock: clock, wal: spec.WAL}
	dbOpts := []kv.Option{kv.WithClock(clock)}
	if spec.TraceSample > 0 {
		dbOpts = append(dbOpts, kv.WithTraceSampling(spec.TraceSample))
	}
	if spec.WAL {
		dev, err := wal.NewMemStorage().Device("wal")
		if err != nil {
			return nil, err
		}
		b.db, err = kv.OpenLocal(eng, sh, dev, append(dbOpts, kv.WithSyncEvery(spec.SyncEvery))...)
		if err != nil {
			return nil, err
		}
		if spec.Replicas > 0 {
			b.group, err = repl.NewLocalGroup(b.db, dev)
			if err != nil {
				return nil, err
			}
			if f := b.db.Flight(); f != nil {
				// Sampled traces get their replica_apply stage annotated as
				// the followers replay each commit revision.
				b.group.SetFlight(f)
			}
			for i := 0; i < spec.Replicas; i++ {
				rs, err := rhtm.NewSystem(rhtm.DefaultConfig(
					spec.Shards*(arenaWords+store.DefaultLogWords+64) + 8192))
				if err != nil {
					return nil, err
				}
				reng, err := Build(rs, engineName, cfg.InjectPct)
				if err != nil {
					return nil, err
				}
				rsh := store.NewSharded(rs, spec.Shards, store.Options{ArenaWords: arenaWords})
				f, err := b.group.AddLocalReplica(reng, rsh)
				if err != nil {
					return nil, err
				}
				b.followers = append(b.followers, f)
				b.replicaEngs = append(b.replicaEngs, reng)
			}
		}
		return b, nil
	}
	b.db = kv.NewLocal(eng, sh, dbOpts...)
	return b, nil
}

// Close tears down the replication group (no-op without replicas).
func (b *storeBackend) Close() {
	if b.group != nil {
		b.group.Close()
	}
}

func (b *storeBackend) DB() kv.DB { return b.db }

func (b *storeBackend) Clock() *kv.ManualClock { return b.clock }

func (b *storeBackend) Load(key, value []byte) error {
	if b.wal {
		// Every write must ride the logging paths once a WAL is attached —
		// a setup-path write would leave a revision hole the log's
		// sequence gate waits on forever.
		return b.db.Put(key, value)
	}
	return b.sh.Put(containers.SetupTx(b.sys), key, value)
}

func (b *storeBackend) Peek(key []byte) ([]byte, bool) {
	return b.sh.Get(containers.SetupTx(b.sys), key)
}

func (b *storeBackend) SystemFor([]byte) int { return -1 }

func (b *storeBackend) Finish(res *Result) {
	res.Engine = b.eng.Name()
	res.Stats = b.eng.Snapshot()
	res.Accesses = res.Stats.Reads + res.Stats.Writes +
		res.Stats.MetadataReads + res.Stats.MetadataWrites
	res.Counters = b.db.Metrics().Flatten()
	res.Notes = "store: " + b.sh.Stats(containers.SetupTx(b.sys)).String()
	if b.group != nil {
		// Drain the followers so the repl.* gauges are final (lag 0), then
		// report the replication counters alongside the DB's. The primary's
		// accesses are the critical path — replicas replay and serve reads
		// in parallel — so ops/kinterval measures the read offload while
		// ops/kaccess keeps charging the whole fleet's work.
		for _, f := range b.followers {
			if err := f.WaitIdle(); err != nil {
				res.Notes += fmt.Sprintf(" repl-drain-err=%v", err)
			}
		}
		res.CriticalAccesses = res.Accesses
		for _, eng := range b.replicaEngs {
			st := eng.Snapshot()
			res.Accesses += st.Reads + st.Writes + st.MetadataReads + st.MetadataWrites
		}
		for k, v := range b.group.Metrics().Flatten() {
			res.Counters[k] = v
		}
	}
	// After the drain, so replica_apply stage stats cover every commit.
	traceCounters(b.db.Flight(), "trace.", res.Counters)
}

func (b *storeBackend) Validate() error { return b.sh.Validate() }

// --- cluster backend ---

type clusterBackend struct {
	c     *cluster.Cluster
	db    *kv.ClusterDB
	clock *kv.ManualClock
	wal   bool
}

func openClusterBackend(spec KVSpec, engineName string, cfg RunConfig) (*clusterBackend, error) {
	keyBytes := len(ycsbKey(0))
	recordsPerSys := (spec.Records + spec.Systems - 1) / spec.Systems
	perRecord := store.RecordFootprintWords(keyBytes, spec.ValueBytes)
	// In-flight intents: every client can hold CrossKeys (or a batch) of
	// them, plus the same again mid-apply; round up generously — intent
	// blocks recycle.
	perIntentKeys := spec.CrossKeys
	if spec.BatchSize > perIntentKeys {
		perIntentKeys = spec.BatchSize
	}
	intentSlack := (cfg.Threads*perIntentKeys*2 + 64) *
		store.IntentFootprintWords(keyBytes, spec.ValueBytes)
	insertSlack := (insertBudget(spec, cfg)/spec.Systems + 1) * perRecord * 2
	arenaWords := recordsPerSys*perRecord*2 + intentSlack + insertSlack +
		leaseSlackWords(spec)/spec.Systems + 4096
	c, err := cluster.New(cluster.Config{
		Systems:    spec.Systems,
		ArenaWords: arenaWords,
		DataWords:  arenaWords + store.DefaultLogWords + 1<<13,
		NewEngine: func(s *rhtm.System) (rhtm.Engine, error) {
			return Build(s, engineName, cfg.InjectPct)
		},
	})
	if err != nil {
		return nil, err
	}
	clock := kv.NewManualClock()
	b := &clusterBackend{c: c, clock: clock, wal: spec.WAL}
	dbOpts := []kv.Option{kv.WithClock(clock)}
	if spec.TraceSample > 0 {
		dbOpts = append(dbOpts, kv.WithTraceSampling(spec.TraceSample))
	}
	if spec.WAL {
		b.db, err = kv.OpenCluster(c, wal.NewMemStorage(),
			append(dbOpts, kv.WithSyncEvery(spec.SyncEvery))...)
		if err != nil {
			return nil, err
		}
		return b, nil
	}
	b.db = kv.NewCluster(c, dbOpts...)
	return b, nil
}

func (b *clusterBackend) DB() kv.DB { return b.db }

func (b *clusterBackend) Clock() *kv.ManualClock { return b.clock }

func (b *clusterBackend) Load(key, value []byte) error {
	if b.wal {
		return b.db.Put(key, value) // see storeBackend.Load
	}
	return b.c.Load(key, value)
}

func (b *clusterBackend) Peek(key []byte) ([]byte, bool) { return b.c.Peek(key) }

func (b *clusterBackend) SystemFor(key []byte) int {
	if b.c.NumSystems() == 1 {
		return -1
	}
	return b.c.Router().SystemFor(key)
}

func (b *clusterBackend) Finish(res *Result) {
	cs := b.c.Stats()
	res.Engine = b.c.Node(0).Engine().Name()
	res.Stats = cs.Engines
	for _, a := range cs.PerSystemAccesses {
		res.Accesses += a
		if a > res.CriticalAccesses {
			res.CriticalAccesses = a
		}
	}
	res.Counters = b.db.Metrics().Flatten()
	traceCounters(b.db.Flight(), "trace.", res.Counters)
	res.Notes = fmt.Sprintf(
		"2pc: cross=%d commit=%d abort=%d prep-conflicts=%d local=%d local-conflicts=%d intent-waits=%d scans=%d scan-retries=%d | store: %s",
		cs.CrossTxns, cs.CrossCommits, cs.CrossAborts, cs.PrepareConflicts,
		cs.LocalTxns, cs.LocalConflicts, cs.IntentWaits,
		cs.SnapshotScans, cs.ScanRetries, cs.Store.String())
}

func (b *clusterBackend) Validate() error { return b.c.Validate() }

// traceCounters folds a flight recorder's dump into a run's counter map:
// per trace kind the sampled count and error tally, per typed stage the
// observation count and latency quantiles. A nil flight (tracing
// disabled) contributes nothing, so untraced runs' JSONL rows are
// byte-for-byte what they were before tracing existed.
func traceCounters(f *obs.Flight, prefix string, out map[string]int64) {
	if f == nil || out == nil {
		return
	}
	for kind, kd := range f.Dump().Kinds {
		out[prefix+kind+".count"] = int64(kd.Count)
		out[prefix+kind+".errors"] = int64(kd.Errors)
		for stage, st := range kd.Stages {
			base := prefix + kind + "." + stage
			out[base+".count"] = int64(st.Count)
			out[base+".p50_ns"] = int64(st.P50NS)
			out[base+".p99_ns"] = int64(st.P99NS)
		}
	}
}

// insertBudget estimates how many inserts a d/e run can issue, for arena
// sizing. Count-based runs are exact to the op budget; time-based runs get
// headroom for one extra record population — past it, inserts fall back to
// overwrites (counted in the run notes) rather than failing the run.
func insertBudget(spec KVSpec, cfg RunConfig) int {
	if spec.Mix != "d" && spec.Mix != "e" && spec.Mix != "eidx" {
		return 0
	}
	if cfg.OpsPerThread > 0 {
		return cfg.Threads*cfg.OpsPerThread/10 + 64
	}
	return spec.Records
}

// RunKV executes one measurement of spec on the named engine: build the
// backend, populate the records through the setup path, and drive
// cfg.Threads workers against the kv.DB. For Mix "bank" the
// conserved-total invariant is checked after the run; every run validates
// the backend's structural invariants.
func RunKV(spec KVSpec, engineName string, cfg RunConfig) (Result, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	if cfg.Threads <= 0 {
		return Result{}, fmt.Errorf("harness: Threads must be positive")
	}
	if cfg.Duration <= 0 && cfg.OpsPerThread <= 0 {
		return Result{}, fmt.Errorf("harness: need Duration or OpsPerThread")
	}

	// The backends size arenas and intent slack from the spec; table rows
	// cost more than raw records, so the table mixes hand them an inflated
	// copy (worker behavior still follows the real spec).
	bspec := spec
	if spec.tableMix() {
		bspec = tableSizing(spec)
	}
	var be kvBackend
	var err error
	switch {
	case spec.Net:
		be, err = openNetBackend(bspec, engineName, cfg)
	case spec.Backend == BackendCluster:
		be, err = openClusterBackend(bspec, engineName, cfg)
	default:
		be, err = openStoreBackend(bspec, engineName, cfg)
	}
	if err != nil {
		return Result{}, err
	}
	if c, ok := be.(interface{ Close() }); ok {
		defer c.Close()
	}

	// Populate through the setup path (reproducible from loaderSeed). The
	// coordination mixes start empty: sessions are created by logins, locks
	// by acquisitions.
	coordMix := spec.Mix == "session" || spec.Mix == "lock"
	if !coordMix && !spec.tableMix() {
		loadRng := rand.New(rand.NewSource(loaderSeed))
		val := make([]byte, spec.ValueBytes)
		for i := 0; i < spec.Records; i++ {
			if spec.Mix == "bank" {
				binary.LittleEndian.PutUint64(val, bankInitial)
			} else {
				loadRng.Read(val)
			}
			if err := be.Load(ycsbKey(i), val); err != nil {
				return Result{}, fmt.Errorf("harness: KV load: %w", err)
			}
		}
	}
	// The table mixes populate through Table.Insert instead of the raw
	// setup path: every row needs its index entry and statistics shards
	// maintained on the way in, which only the record layer's own write
	// transactions do.
	var tables *tableState
	if spec.tableMix() {
		if tables, err = openTables(spec, be.DB()); err != nil {
			return Result{}, fmt.Errorf("harness: table populate: %w", err)
		}
	}

	var zipf *zipfian
	if spec.Dist == DistZipfian || spec.Mix == "d" {
		// Mix "d" always draws latest-skewed ranks from this generator,
		// whatever Dist says about the other mixes.
		zipf = newZipfian(spec.Records, spec.Theta)
	}

	shared := &kvShared{}
	coord := newCoordState(be.Clock())
	var drainWatch func()
	watchCtx, watchCancel := context.WithCancel(context.Background())
	defer watchCancel()
	if coordMix {
		// The run's own watcher: counts release/expiry deletes live, off
		// the same commit log the workers write through.
		drainWatch, err = watchDeletes(watchCtx, be.DB(), &shared.watchedDeletes)
		if err != nil {
			return Result{}, fmt.Errorf("harness: watch: %w", err)
		}
	}
	var followers []*repl.Follower
	if sb, ok := be.(*storeBackend); ok {
		followers = sb.followers
		// Let the replicas absorb the populate phase before measuring:
		// the run quantifies steady-state read offload, not cold catch-up
		// (misses during the run still fall back to the primary, counted).
		for _, f := range followers {
			if err := f.WaitIdle(); err != nil {
				return Result{}, fmt.Errorf("harness: replica catch-up: %w", err)
			}
		}
	}
	var stop atomic.Bool
	var totalOps atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Threads; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		id := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &kvWorker{id: id, spec: spec, be: be, db: be.DB(), rng: rng,
				zipf: zipf, shared: shared, coord: coord, tables: tables,
				followers: followers, fi: id}
			ops := driveWorker(cfg, &stop, func() {
				if err := w.step(); err != nil {
					// Worker bodies never return user errors; failures are
					// protocol or capacity bugs, surfaced via panic as the
					// structure-workload runner does.
					panic(fmt.Sprintf("harness: KV op: %v", err))
				}
			})
			if err := w.drain(); err != nil {
				panic(fmt.Sprintf("harness: KV batch drain: %v", err))
			}
			totalOps.Add(ops)
		}()
	}
	if cfg.Duration > 0 {
		time.Sleep(cfg.Duration)
		stop.Store(true)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if drainWatch != nil {
		// Give the hub a moment to flush the tail of the commit logs, then
		// close the stream, wait for the counter to be final, and quiesce
		// the hub's poller threads before anything snapshots the engines.
		time.Sleep(2 * hubDrainGrace)
		watchCancel()
		drainWatch()
		if w, ok := be.DB().(interface{ WaitWatchIdle() }); ok {
			w.WaitWatchIdle()
		}
	}

	res := Result{
		Workload: spec.Name(),
		Threads:  cfg.Threads,
		Ops:      totalOps.Load(),
		Elapsed:  elapsed,
	}
	res.Throughput = float64(res.Ops) / elapsed.Seconds()
	be.Finish(&res)
	if res.Accesses > 0 {
		res.OpsPerKAccess = 1000 * float64(res.Ops) / float64(res.Accesses)
	}
	if res.CriticalAccesses > 0 {
		res.OpsPerKInterval = 1000 * float64(res.Ops) / float64(res.CriticalAccesses)
	}
	res.Notes += shared.notes(spec, be)
	if res.Counters == nil {
		res.Counters = map[string]int64{}
	}
	shared.counters(spec, res.Counters)
	if tables != nil {
		// The tables' registry is separate from the DB's, so the table.*
		// and index.* counters merge in under their own names without
		// collisions (same pattern as the net backend's server.*).
		for k, v := range tables.reg.Snapshot().Flatten() {
			res.Counters[k] = v
		}
	}

	if spec.Mix == "lock" {
		if err := coord.auditMutualExclusion(); err != nil {
			return res, err
		}
	}
	if spec.Mix == "bank" {
		var total uint64
		for i := 0; i < spec.Records; i++ {
			v, ok := be.Peek(ycsbKey(i))
			if !ok {
				return res, fmt.Errorf("harness: bank account %d missing after run", i)
			}
			total += binary.LittleEndian.Uint64(v)
		}
		if want := uint64(spec.Records) * bankInitial; total != want {
			return res, fmt.Errorf("harness: bank total %d != %d — atomicity violated", total, want)
		}
	}
	if err := be.Validate(); err != nil {
		return res, err
	}
	return res, nil
}

// MustRunKV is RunKV for experiment drivers, where a config error is a bug.
func MustRunKV(spec KVSpec, engineName string, cfg RunConfig) Result {
	r, err := RunKV(spec, engineName, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// kvShared aggregates worker observations across threads.
type kvShared struct {
	inserts         atomic.Int64  // records inserted (d/e)
	insertFallbacks atomic.Uint64 // inserts converted to overwrites (arena full)
	updates         atomic.Uint64 // committed RMW updates (f) / upserts (query)
	scans           atomic.Uint64 // scans executed (e / eidx)
	scanned         atomic.Uint64 // entries yielded by scans and range queries
	batches         atomic.Uint64 // batch flushes

	// Table mixes (eidx / query).
	pointQs atomic.Uint64 // planner-served point queries
	rangeQs atomic.Uint64 // bucket-range queries
	orderQs atomic.Uint64 // covering order-limit queries

	// Replication (spec.Replicas > 0).
	followerReads  atomic.Uint64 // reads served by a replica
	followerStale  atomic.Uint64 // ErrTooStale fallbacks to the primary
	followerMisses atomic.Uint64 // not-yet-applied misses, served by the primary
	hiWatermark    atomic.Uint64 // highest watermark any worker observed

	// Coordination mixes (session / lock).
	opSeq          atomic.Uint64 // global op counter driving the expiry pump
	expired        atomic.Uint64 // leases reclaimed by ExpireLeases
	hits, misses   atomic.Uint64 // session cache outcomes
	logins         atomic.Uint64 // session (re)creations
	acquires       atomic.Uint64 // lock acquisitions won
	contended      atomic.Uint64 // lock acquisitions lost to the CAS guard
	crashes        atomic.Uint64 // holds abandoned to lease expiry
	releases       atomic.Uint64 // holds released with the guarded delete
	watchedDeletes atomic.Uint64 // delete events seen by the run's watcher
}

// counters writes the mix-specific observations into out under harness.*
// names — the structured form tests and tooling read; notes below renders
// the same data for humans. Only the counters the mix actually maintains
// are emitted, mirroring the rendered view.
func (sh *kvShared) counters(spec KVSpec, out map[string]int64) {
	switch spec.Mix {
	case "d", "e":
		out["harness.inserts"] = sh.inserts.Load()
		out["harness.insert_fallbacks"] = int64(sh.insertFallbacks.Load())
		if spec.Mix == "e" {
			out["harness.scans"] = int64(sh.scans.Load())
			out["harness.scanned"] = int64(sh.scanned.Load())
		}
	case "f":
		out["harness.updates"] = int64(sh.updates.Load())
	case "eidx":
		out["harness.inserts"] = sh.inserts.Load()
		out["harness.insert_fallbacks"] = int64(sh.insertFallbacks.Load())
		out["harness.scans"] = int64(sh.scans.Load())
		out["harness.scanned"] = int64(sh.scanned.Load())
	case "query":
		out["harness.point_queries"] = int64(sh.pointQs.Load())
		out["harness.range_queries"] = int64(sh.rangeQs.Load())
		out["harness.order_queries"] = int64(sh.orderQs.Load())
		out["harness.upserts"] = int64(sh.updates.Load())
		out["harness.scanned"] = int64(sh.scanned.Load())
	case "session":
		out["harness.hits"] = int64(sh.hits.Load())
		out["harness.misses"] = int64(sh.misses.Load())
		out["harness.logins"] = int64(sh.logins.Load())
		out["harness.expired"] = int64(sh.expired.Load())
		out["harness.watched_deletes"] = int64(sh.watchedDeletes.Load())
	case "lock":
		out["harness.acquires"] = int64(sh.acquires.Load())
		out["harness.contended"] = int64(sh.contended.Load())
		out["harness.releases"] = int64(sh.releases.Load())
		out["harness.crashes"] = int64(sh.crashes.Load())
		out["harness.expired"] = int64(sh.expired.Load())
		out["harness.watched_deletes"] = int64(sh.watchedDeletes.Load())
	}
	if spec.BatchSize > 1 {
		out["harness.batches"] = int64(sh.batches.Load())
	}
	if spec.Replicas > 0 {
		out["harness.follower_reads"] = int64(sh.followerReads.Load())
		out["harness.follower_stale"] = int64(sh.followerStale.Load())
		out["harness.follower_misses"] = int64(sh.followerMisses.Load())
	}
}

// notes renders the mix-specific counters for Result.Notes. For mix "f" it
// includes the sum of all leading counters, which grows by exactly one per
// committed update — lost updates show as a shortfall against updates=.
func (sh *kvShared) notes(spec KVSpec, be kvBackend) string {
	out := ""
	switch spec.Mix {
	case "d", "e":
		out += fmt.Sprintf(" inserts=%d insert-fallbacks=%d", sh.inserts.Load(), sh.insertFallbacks.Load())
		if spec.Mix == "e" {
			out += fmt.Sprintf(" scans=%d scanned=%d", sh.scans.Load(), sh.scanned.Load())
		}
	case "f":
		var sum uint64
		for i := 0; i < spec.Records; i++ {
			if v, ok := be.Peek(ycsbKey(i)); ok {
				sum += binary.LittleEndian.Uint64(v)
			}
		}
		out += fmt.Sprintf(" fsum=%d updates=%d", sum, sh.updates.Load())
	case "eidx":
		out += fmt.Sprintf(" inserts=%d insert-fallbacks=%d scans=%d scanned=%d",
			sh.inserts.Load(), sh.insertFallbacks.Load(), sh.scans.Load(), sh.scanned.Load())
	case "query":
		out += fmt.Sprintf(" points=%d ranges=%d order-limits=%d upserts=%d scanned=%d",
			sh.pointQs.Load(), sh.rangeQs.Load(), sh.orderQs.Load(),
			sh.updates.Load(), sh.scanned.Load())
	case "session":
		out += fmt.Sprintf(" hits=%d misses=%d logins=%d expired=%d watched-deletes=%d",
			sh.hits.Load(), sh.misses.Load(), sh.logins.Load(),
			sh.expired.Load(), sh.watchedDeletes.Load())
	case "lock":
		out += fmt.Sprintf(" acquires=%d contended=%d releases=%d crashes=%d expired=%d watched-deletes=%d",
			sh.acquires.Load(), sh.contended.Load(), sh.releases.Load(),
			sh.crashes.Load(), sh.expired.Load(), sh.watchedDeletes.Load())
	}
	if spec.BatchSize > 1 {
		out += fmt.Sprintf(" batches=%d", sh.batches.Load())
	}
	if spec.Replicas > 0 {
		out += fmt.Sprintf(" follower-reads=%d stale-fallbacks=%d misses=%d",
			sh.followerReads.Load(), sh.followerStale.Load(), sh.followerMisses.Load())
	}
	return out
}

// kvWorker generates and executes one thread's operations against a kv.DB.
type kvWorker struct {
	id        int
	spec      KVSpec
	be        kvBackend
	db        kv.DB
	rng       *rand.Rand
	zipf      *zipfian
	shared    *kvShared
	coord     *coordState
	tables    *tableState
	followers []*repl.Follower
	fi        int
	buf       []byte
	pending   []kv.Op
	tokenSeq  uint64
}

// records returns the current record-space size (grows under d/e inserts).
func (w *kvWorker) records() int {
	return w.spec.Records + int(w.shared.inserts.Load())
}

// record draws one existing record index per the spec's distribution.
func (w *kvWorker) record() int {
	return drawRecord(w.rng, w.zipf, w.spec.Records)
}

// step runs one logical operation.
func (w *kvWorker) step() error {
	switch w.spec.Mix {
	case "bank":
		return w.transfer()
	case "session":
		return w.sessionOp()
	case "lock":
		return w.lockOp()
	case "d":
		if w.rng.Intn(100) < 95 {
			return w.readLatest()
		}
		return w.insert()
	case "e":
		if w.rng.Intn(100) < 95 {
			return w.scan()
		}
		return w.insert()
	case "eidx", "query":
		return w.tableStep()
	}
	readPct, _ := w.spec.readPct()
	isRead := w.rng.Intn(100) < readPct
	if w.spec.CrossPct > 0 && w.spec.CrossKeys > 1 && w.rng.Intn(100) < w.spec.CrossPct {
		return w.crossOp(isRead)
	}
	return w.singleOp(isRead)
}

// singleOp is one single-key operation, batched when the spec asks for it.
func (w *kvWorker) singleOp(isRead bool) error {
	key := ycsbKey(w.record())
	if isRead {
		if w.spec.BatchSize > 1 {
			return w.enqueue(kv.Op{Kind: kv.OpGet, Key: key})
		}
		if len(w.followers) > 0 {
			return w.followerRead(key)
		}
		_, err := w.db.Get(key)
		if errors.Is(err, kv.ErrNotFound) {
			return fmt.Errorf("record %s missing", key)
		}
		return err
	}
	if w.spec.Mix == "f" {
		// Read-modify-write: bump the record's leading counter in place,
		// preserving the payload tail, as one closure transaction.
		err := w.db.Update(func(tx kv.Txn) error {
			cur, err := tx.Get(key)
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(cur, binary.LittleEndian.Uint64(cur)+1)
			return tx.Put(key, cur)
		})
		if err == nil {
			w.shared.updates.Add(1)
		}
		return err
	}
	if w.buf == nil {
		w.buf = make([]byte, w.spec.ValueBytes)
	}
	w.rng.Read(w.buf)
	if w.spec.BatchSize > 1 {
		val := make([]byte, len(w.buf))
		copy(val, w.buf)
		return w.enqueue(kv.Op{Kind: kv.OpPut, Key: key, Value: val})
	}
	return w.db.Put(key, w.buf)
}

// followerRead serves one read from a replica. With Staleness set, the
// read demands floor = hi - Staleness against the highest watermark any
// worker has observed — a bounded-staleness contract the replica must keep
// up with — and falls back to the primary when it answers ErrTooStale. A
// miss (the replica has not applied the record's load yet) also falls
// back; a successful read must never report a revision above its
// watermark.
func (w *kvWorker) followerRead(key []byte) error {
	f := w.followers[w.fi%len(w.followers)]
	w.fi++
	var floor kv.Revision
	if w.spec.Staleness > 0 {
		if hi := w.shared.hiWatermark.Load(); hi > uint64(w.spec.Staleness) {
			floor = kv.Revision(hi - uint64(w.spec.Staleness))
		}
	}
	_, rev, wm, err := f.ReadAt(key, floor)
	switch {
	case errors.Is(err, kv.ErrTooStale):
		w.shared.followerStale.Add(1)
	case errors.Is(err, kv.ErrNotFound):
		w.shared.followerMisses.Add(1)
	case err != nil:
		return err
	default:
		if rev > wm {
			return fmt.Errorf("follower read %s: rev %d above watermark %d", key, rev, wm)
		}
		w.shared.followerReads.Add(1)
		for {
			hi := w.shared.hiWatermark.Load()
			if uint64(wm) <= hi || w.shared.hiWatermark.CompareAndSwap(hi, uint64(wm)) {
				break
			}
		}
		return nil
	}
	_, err = w.db.Get(key)
	if errors.Is(err, kv.ErrNotFound) {
		return fmt.Errorf("record %s missing", key)
	}
	return err
}

// enqueue buffers a batch op, flushing at BatchSize.
func (w *kvWorker) enqueue(op kv.Op) error {
	w.pending = append(w.pending, op)
	if len(w.pending) >= w.spec.BatchSize {
		return w.drain()
	}
	return nil
}

// drain flushes any pending batch.
func (w *kvWorker) drain() error {
	if len(w.pending) == 0 {
		return nil
	}
	ops := w.pending
	w.pending = w.pending[:0]
	results, err := w.db.Batch(ops)
	if err != nil {
		return err
	}
	w.shared.batches.Add(1)
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("batch op %d (%s): %w", i, ops[i].Key, r.Err)
		}
	}
	return nil
}

// readLatest is mix d's read: ranks are latest-skewed — rank 0 is the most
// recently inserted record — per YCSB's SkewedLatestGenerator. A miss on a
// freshly inserted id is tolerated (its Put may still be in flight).
func (w *kvWorker) readLatest() error {
	cur := w.records()
	rank := w.zipf.next(w.rng)
	if rank >= cur {
		rank %= cur
	}
	key := ycsbKey(cur - 1 - rank)
	_, err := w.db.Get(key)
	if errors.Is(err, kv.ErrNotFound) {
		if cur-1-rank >= w.spec.Records {
			return nil // racing a concurrent insert: benign
		}
		return fmt.Errorf("record %s missing", key)
	}
	return err
}

// insert adds a new record past the loaded key space (mixes d and e). When
// the arena cannot hold more records (time-based runs can outgrow any
// sizing), the insert degrades to an overwrite of an existing record so the
// run keeps its operation mix instead of failing.
func (w *kvWorker) insert() error {
	if w.buf == nil {
		w.buf = make([]byte, w.spec.ValueBytes)
	}
	w.rng.Read(w.buf)
	id := w.spec.Records + int(w.shared.inserts.Add(1)) - 1
	err := w.db.Put(ycsbKey(id), w.buf)
	if errors.Is(err, kv.ErrArenaFull) {
		w.shared.inserts.Add(-1)
		w.shared.insertFallbacks.Add(1)
		return w.db.Put(ycsbKey(w.rng.Intn(w.spec.Records)), w.buf)
	}
	return err
}

// scan is mix e's short ordered scan: a uniform length in [1, ScanMax]
// starting at a drawn record key, through the kv.Scan cursor.
func (w *kvWorker) scan() error {
	cur := w.records()
	var start int
	if w.zipf != nil {
		start = int(scramble(uint64(w.zipf.next(w.rng))) % uint64(cur))
	} else {
		start = w.rng.Intn(cur)
	}
	length := 1 + w.rng.Intn(w.spec.ScanMax)
	it := w.db.Scan(ycsbKey(start), nil, length)
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		return err
	}
	if n == 0 && start < w.spec.Records {
		// A start key at or past the loaded range can race an in-flight
		// insert to an empty tail; a loaded record always has successors.
		return fmt.Errorf("scan from %s yielded nothing", ycsbKey(start))
	}
	w.shared.scans.Add(1)
	w.shared.scanned.Add(uint64(n))
	return nil
}

// crossKeys draws CrossKeys distinct records. On a multi-System backend it
// redraws a bounded number of times until the keys span at least two
// Systems; a degenerate keyspace falls back to whatever the last draw
// placed (the transaction then simply takes the local path).
func (w *kvWorker) crossKeys() [][]byte {
	var keys [][]byte
	multi := w.be.SystemFor(ycsbKey(0)) >= 0 || w.be.SystemFor(ycsbKey(1)) >= 0
	for round := 0; round < 16; round++ {
		seen := map[int]bool{}
		systems := map[int]bool{}
		keys = keys[:0]
		for len(keys) < w.spec.CrossKeys {
			rec := w.record()
			if seen[rec] {
				continue
			}
			seen[rec] = true
			k := ycsbKey(rec)
			keys = append(keys, k)
			systems[w.be.SystemFor(k)] = true
		}
		if !multi || len(systems) > 1 {
			break
		}
	}
	return keys
}

// crossOp runs one multi-key transaction: a snapshot read of the keys, or a
// write over all of them. The write mirrors the mix's single-key semantics
// — blind puts for a/b, read-modify-write counter increments for f — so the
// accesses/op delta between x=0 and x>0 measures the commit protocol, not a
// change in operation shape.
func (w *kvWorker) crossOp(isRead bool) error {
	keys := w.crossKeys()
	if isRead {
		return w.db.Update(func(tx kv.Txn) error {
			for _, k := range keys {
				if _, err := tx.Get(k); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if w.spec.Mix == "f" {
		err := w.db.Update(func(tx kv.Txn) error {
			for _, k := range keys {
				v, err := tx.Get(k)
				if err != nil {
					return err
				}
				binary.LittleEndian.PutUint64(v, binary.LittleEndian.Uint64(v)+1)
				if err := tx.Put(k, v); err != nil {
					return err
				}
			}
			return nil
		})
		if err == nil {
			w.shared.updates.Add(uint64(len(keys)))
		}
		return err
	}
	// Values are drawn before the transaction so a commit retry does not
	// consume extra randomness (Update bodies re-execute on conflict).
	vals := make([][]byte, len(keys))
	for i := range vals {
		vals[i] = make([]byte, w.spec.ValueBytes)
		w.rng.Read(vals[i])
	}
	return w.db.Update(func(tx kv.Txn) error {
		for i, k := range keys {
			if err := tx.Put(k, vals[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// transfer is one bank operation: move a random amount between two
// accounts, multi-System for CrossPct of operations on the cluster.
// Redraws for the wanted placement are bounded: a degenerate account set
// must not hang the run, so after the bound the last distinct pair is used
// with whatever placement it has.
func (w *kvWorker) transfer() error {
	multi := w.be.SystemFor(ycsbKey(0)) >= 0 || w.be.SystemFor(ycsbKey(1)) >= 0
	wantCross := multi && w.rng.Intn(100) < w.spec.CrossPct
	a := w.record()
	b := (a + 1) % w.spec.Records
	for round := 0; round < 64; round++ {
		x, y := w.record(), w.record()
		if x == y {
			continue
		}
		a, b = x, y
		if !multi ||
			(w.be.SystemFor(ycsbKey(a)) != w.be.SystemFor(ycsbKey(b))) == wantCross {
			break
		}
	}
	from, to := ycsbKey(a), ycsbKey(b)
	amt := uint64(w.rng.Intn(10))
	return w.db.Update(func(tx kv.Txn) error {
		fv, err := tx.Get(from)
		if err != nil {
			return err
		}
		f := binary.LittleEndian.Uint64(fv)
		if f < amt {
			return nil // insufficient funds: read-only commit
		}
		tv, err := tx.Get(to)
		if err != nil {
			return err
		}
		t := binary.LittleEndian.Uint64(tv)
		var nf, nt [8]byte
		binary.LittleEndian.PutUint64(nf[:], f-amt)
		binary.LittleEndian.PutUint64(nt[:], t+amt)
		if err := tx.Put(from, nf[:]); err != nil {
			return err
		}
		return tx.Put(to, nt[:])
	})
}

// kvEngines is the series set of the KV experiments: the full RH1 stack
// against the software baseline and the other hybrids.
var kvEngines = []string{EngRH1Mix2, EngStdHy, EngTL2, EngNoRec}

// SweepKV measures every KV engine at every thread count for one spec, on
// whichever backend the spec selects.
func SweepKV(sc Scale, spec KVSpec) []Result {
	out := make([]Result, 0, len(kvEngines)*len(sc.Threads))
	for _, eng := range kvEngines {
		for _, th := range sc.Threads {
			out = append(out, MustRunKV(spec, eng, sc.cfg(th)))
		}
	}
	return out
}
