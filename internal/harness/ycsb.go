package harness

import (
	"fmt"
	"math"
	"math/rand"
)

// YCSB-style workloads over the unified kv.DB interface: the classic
// cloud-serving mixes (A 50/50 read/update, B 95/5, C read-only, D
// latest-distribution read/insert, E short ordered scans, F 50/50
// read/read-modify-write) plus a bank-transfer invariant mix, with uniform
// and zipfian request distributions. One spec, one worker, and one runner
// drive both data-layer backends — the single-System sharded store and the
// share-nothing multi-System cluster — so a workload written once measures
// any engine at any scale (see kvrun.go).

// Request distributions accepted by KVSpec.Dist.
const (
	DistUniform = "uniform"
	DistZipfian = "zipfian"
)

// Backends accepted by KVSpec.Backend.
const (
	// BackendStore runs on one System: an rhtm engine over a sharded store.
	BackendStore = "store"
	// BackendCluster runs on N independent Systems behind the 2PC router.
	BackendCluster = "cluster"
)

// KVSpec parameterizes one KV workload, on either backend.
type KVSpec struct {
	// Mix is the YCSB workload letter — "a" (50% reads / 50% updates),
	// "b" (95/5), "c" (read-only), "d" (95% latest-skewed reads / 5%
	// inserts), "e" (95% short ordered scans / 5% inserts), "f" (50% reads
	// / 50% read-modify-writes) — or "bank": every operation transfers
	// between two 8-byte balances and the run fails if the total is not
	// conserved. The table mixes run the table/ record layer instead of
	// raw records: "eidx" re-serves YCSB-E's short ordered scans from a
	// secondary index, "query" is a planner-driven point/range/order-limit
	// mix (see tablerun.go).
	Mix string
	// Records is the number of pre-loaded records (or bank accounts).
	Records int
	// ValueBytes is the value size (keys are the 12-byte "user%08d" form).
	ValueBytes int
	// Dist selects the request distribution. Default: DistZipfian on the
	// store backend (as YCSB specifies), DistUniform on the cluster (the
	// scaling claims are about balanced load).
	Dist string
	// Theta is the zipfian skew; 0 selects YCSB's 0.99.
	Theta float64
	// Backend selects the data layer: BackendStore (default while
	// Systems <= 1) or BackendCluster (forced when Systems > 1).
	Backend string
	// Shards is the store backend's shard count (0 = 8).
	Shards int
	// Systems is the cluster backend's System count (default 1).
	Systems int
	// CrossPct is the percentage of operations run as multi-key
	// transactions of CrossKeys keys — cross-System 2PC on the cluster,
	// cross-shard local transactions on the store.
	CrossPct int
	// CrossKeys is how many keys a multi-key transaction touches
	// (default 2).
	CrossKeys int
	// ScanMax bounds mix "e" scan lengths: each scan draws a uniform
	// length in [1, ScanMax] (default 100). The table mixes draw their
	// query limits from the same bound.
	ScanMax int
	// Tables spreads the table mixes' rows over this many tables — each
	// with its own keyspace, secondary index, and statistics (default 1).
	Tables int
	// IdxSel is the table mixes' index selectivity: the indexed bucket
	// field cycles through this many distinct values per table, so an
	// equality on the index matches about Records/(Tables×IdxSel) rows
	// (default 100).
	IdxSel int
	// TTL is the lease time-to-live in virtual clock ticks for the
	// coordination mixes "session" and "lock" (default 16).
	TTL int
	// PumpEvery is the coordination mixes' expiry cadence: every PumpEvery
	// operations (across all workers) the virtual clock advances one tick
	// and ExpireLeases runs (default 32).
	PumpEvery int
	// BatchSize, when > 1, groups the single-key operations of mixes
	// a/b/c into kv.DB.Batch calls of this size — the batching
	// amortization experiment.
	BatchSize int
	// Net serves the backend over loopback TCP and drives the workload
	// through the network client, so the run measures the full server/
	// wire path — framing, pipelining, the cross-connection batcher —
	// instead of in-process calls.
	Net bool
	// Conns is the client's connection-pool size for Net runs (default 4).
	Conns int
	// Pipeline allows many in-flight requests per pooled connection. Off,
	// the run is a classic closed loop: at most Conns outstanding
	// requests, each waiting out its round trip. Requires Net.
	Pipeline bool
	// WAL attaches a write-ahead log to the backend (in-memory device):
	// the run populates through the DB so every record is logged, and the
	// notes report the log counters (txns, syncs, bytes — group-commit
	// amortization shows as txns/sync > 1).
	WAL bool
	// SyncEvery relaxes the WAL's durability barrier to every N logged
	// transactions (0/1 = every group commit). Requires WAL.
	SyncEvery int
	// Replicas attaches this many WAL-shipping replicas to the primary
	// (each a full System tailing the log through repl.Group) and routes
	// the single-key reads of mixes a/b/c/f to them round-robin as
	// follower reads. Requires WAL; store backend, in-process only.
	Replicas int
	// Staleness bounds how far behind a follower read may be: each read
	// demands floor = hi - Staleness, where hi is the highest watermark
	// any worker has observed, and falls back to the primary (counted)
	// when the replica answers kv.ErrTooStale. 0 accepts any staleness.
	// Requires Replicas.
	Staleness int
	// TraceSample enables end-to-end request tracing at 1/N: every N-th
	// Update or Batch opens an obs.Trace whose typed stages (engine,
	// wal_sync, 2PC phases, replica apply — DESIGN.md §14) land in the
	// backend's flight recorder; the run's Counters then carry per-stage
	// quantile summaries under trace.*. On Net runs the client owns the
	// sampling decision and propagates the trace id over the wire, so the
	// summaries split into the server's stages (trace.*) and the client's
	// net stage (client.trace.*). 0 disables tracing entirely.
	TraceSample int
}

// readPct returns the percentage of plain reads (or, for "e", scans) in
// the mix.
func (sp KVSpec) readPct() (int, error) {
	switch sp.Mix {
	case "a", "f":
		return 50, nil
	case "b", "d", "e", "eidx":
		return 95, nil
	case "c":
		return 100, nil
	case "bank", "lock":
		return 0, nil
	case "session":
		return 95, nil
	case "query":
		return 90, nil
	default:
		return 0, fmt.Errorf("harness: unknown KV mix %q (want a, b, c, d, e, f, eidx, query, bank, session or lock)", sp.Mix)
	}
}

// tableMix reports whether the workload runs through the table/ record
// layer (typed rows, secondary indexes, the planner) rather than raw
// ycsbKey records.
func (sp KVSpec) tableMix() bool { return sp.Mix == "eidx" || sp.Mix == "query" }

// withDefaults fills unset (zero or negative) fields.
func (sp KVSpec) withDefaults() KVSpec {
	if sp.Records <= 0 {
		sp.Records = 10_000
	}
	if sp.ValueBytes <= 0 {
		sp.ValueBytes = 64
	}
	if sp.Mix == "bank" || sp.Mix == "lock" {
		sp.ValueBytes = 8
	}
	if sp.TTL <= 0 {
		sp.TTL = 16
	}
	if sp.PumpEvery <= 0 {
		sp.PumpEvery = 32
	}
	if sp.Systems <= 0 {
		sp.Systems = 1
	}
	if sp.Backend == "" {
		if sp.Systems > 1 {
			sp.Backend = BackendCluster
		} else {
			sp.Backend = BackendStore
		}
	}
	if sp.Dist == "" {
		if sp.Backend == BackendCluster {
			sp.Dist = DistUniform
		} else {
			sp.Dist = DistZipfian
		}
	}
	if sp.Theta <= 0 {
		sp.Theta = 0.99
	}
	if sp.Shards <= 0 {
		sp.Shards = 8
	}
	if sp.CrossKeys <= 0 {
		sp.CrossKeys = 2
	}
	if sp.ScanMax <= 0 {
		sp.ScanMax = 100
	}
	if sp.Tables <= 0 {
		sp.Tables = 1
	}
	if sp.IdxSel <= 0 {
		sp.IdxSel = 100
	}
	if sp.Net && sp.Conns <= 0 {
		sp.Conns = 4
	}
	return sp
}

// Name identifies the workload in output rows.
func (sp KVSpec) Name() string {
	sp = sp.withDefaults()
	name := fmt.Sprintf("ycsb-%s/%s", sp.Mix, sp.Dist)
	switch sp.Mix {
	case "bank":
		name = "bank/" + sp.Dist
	case "session":
		name = "session-cache/" + sp.Dist
	case "lock":
		name = "lock-service/" + sp.Dist
	case "eidx":
		name = "ycsb-e-index/" + sp.Dist
	case "query":
		name = "table-query/" + sp.Dist
	}
	if sp.Backend == BackendCluster {
		name = fmt.Sprintf("cluster-%s/%s/s=%d/x=%d", sp.Mix, sp.Dist, sp.Systems, sp.CrossPct)
	}
	if sp.tableMix() {
		name += fmt.Sprintf("/tables=%d/idxsel=%d", sp.Tables, sp.IdxSel)
	}
	if sp.BatchSize > 1 {
		name += fmt.Sprintf("/batch=%d", sp.BatchSize)
	}
	if sp.WAL {
		name += "/wal"
		if sp.SyncEvery > 1 {
			name += fmt.Sprintf("/sync=%d", sp.SyncEvery)
		}
	}
	if sp.Net {
		name += fmt.Sprintf("/net/c=%d", sp.Conns)
		if sp.Pipeline {
			name += "/pipe"
		}
	}
	if sp.Replicas > 0 {
		name += fmt.Sprintf("/repl=%d", sp.Replicas)
		if sp.Staleness > 0 {
			name += fmt.Sprintf("/stale=%d", sp.Staleness)
		}
	}
	if sp.TraceSample > 0 {
		name += fmt.Sprintf("/trace=%d", sp.TraceSample)
	}
	return name
}

// validate rejects bad specs with a clean error before any System is built.
func (sp KVSpec) validate() error {
	if _, err := sp.readPct(); err != nil {
		return err
	}
	if sp.Backend != BackendStore && sp.Backend != BackendCluster {
		return fmt.Errorf("harness: unknown backend %q (want %s or %s)", sp.Backend, BackendStore, BackendCluster)
	}
	if sp.Backend == BackendStore && sp.Systems > 1 {
		return fmt.Errorf("harness: Systems = %d needs the cluster backend", sp.Systems)
	}
	if sp.Dist != DistUniform && sp.Dist != DistZipfian {
		return fmt.Errorf("harness: unknown distribution %q (want %s or %s)", sp.Dist, DistUniform, DistZipfian)
	}
	if sp.Dist == DistZipfian && sp.Theta >= 1 {
		return fmt.Errorf("harness: zipfian theta must be in (0,1), got %g", sp.Theta)
	}
	if sp.CrossPct < 0 || sp.CrossPct > 100 {
		return fmt.Errorf("harness: CrossPct must be in [0,100], got %d", sp.CrossPct)
	}
	if sp.CrossKeys*2 > sp.Records {
		return fmt.Errorf("harness: CrossKeys %d too large for %d records", sp.CrossKeys, sp.Records)
	}
	if sp.Mix == "f" && sp.ValueBytes < 8 {
		return fmt.Errorf("harness: YCSB F needs ValueBytes >= 8 for its counter, got %d", sp.ValueBytes)
	}
	if sp.BatchSize > 1 {
		switch sp.Mix {
		case "a", "b", "c":
		default:
			return fmt.Errorf("harness: BatchSize applies to mixes a/b/c, not %q", sp.Mix)
		}
	}
	if sp.SyncEvery > 1 && !sp.WAL {
		return fmt.Errorf("harness: SyncEvery needs WAL")
	}
	if sp.Replicas < 0 || sp.Staleness < 0 {
		return fmt.Errorf("harness: Replicas and Staleness must be non-negative")
	}
	if sp.Replicas > 0 {
		if !sp.WAL {
			return fmt.Errorf("harness: Replicas needs WAL (replicas tail the primary's log)")
		}
		if sp.Backend != BackendStore {
			return fmt.Errorf("harness: Replicas runs on the store backend")
		}
		if sp.Net {
			return fmt.Errorf("harness: Replicas is in-process (no Net)")
		}
	}
	if sp.Staleness > 0 && sp.Replicas == 0 {
		return fmt.Errorf("harness: Staleness needs Replicas")
	}
	if sp.tableMix() {
		if sp.Tables > 64 {
			return fmt.Errorf("harness: Tables must be at most 64, got %d", sp.Tables)
		}
		if sp.Records < sp.Tables {
			return fmt.Errorf("harness: %d tables need at least as many records, got %d", sp.Tables, sp.Records)
		}
		if sp.CrossPct != 0 {
			return fmt.Errorf("harness: CrossPct applies to the raw KV mixes, not %q", sp.Mix)
		}
		if sp.Replicas > 0 {
			return fmt.Errorf("harness: follower reads serve the raw single-key mixes, not %q", sp.Mix)
		}
	}
	if !sp.Net && (sp.Conns != 0 || sp.Pipeline) {
		return fmt.Errorf("harness: Conns/Pipeline need Net")
	}
	if sp.TraceSample < 0 {
		return fmt.Errorf("harness: TraceSample must be non-negative, got %d", sp.TraceSample)
	}
	return nil
}

// Check applies defaults and validates the spec — for drivers that want to
// reject bad flags with a clean message before starting a sweep.
func (sp KVSpec) Check() error {
	return sp.withDefaults().validate()
}

// ycsbKey formats the i-th record's key.
func ycsbKey(i int) []byte {
	return []byte(fmt.Sprintf("user%08d", i))
}

// drawRecord picks a record index: scrambled zipfian when zipf is non-nil
// (as YCSB's ScrambledZipfianGenerator — the skew applies to hashed ranks
// so the hot keys spread over the key space, and therefore over shards and
// Systems), uniform otherwise.
func drawRecord(rng *rand.Rand, zipf *zipfian, records int) int {
	if zipf != nil {
		return int(scramble(uint64(zipf.next(rng))) % uint64(records))
	}
	return rng.Intn(records)
}

// --- zipfian request distribution ---

// zipfian draws ranks in [0, n) with P(rank) proportional to
// 1/(rank+1)^theta — the ZipfianGenerator of Gray et al. ("Quickly
// Generating Billion-Record Synthetic Databases", SIGMOD '94) that YCSB
// uses, with YCSB's default theta = 0.99. Note math/rand.Zipf cannot
// express theta < 1, which is exactly the regime YCSB runs in.
type zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // pow(0.5, theta), hoisted out of next
}

// newZipfian precomputes the constants for n items with skew theta in (0,1).
func newZipfian(n int, theta float64) *zipfian {
	if n <= 0 || theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("harness: zipfian needs n>0 and 0<theta<1, got n=%d theta=%g", n, theta))
	}
	zetan := zeta(n, theta)
	zeta2 := zeta(2, theta)
	return &zipfian{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
		half:  math.Pow(0.5, theta),
	}
}

// next draws one rank; rank 0 is the most popular.
func (z *zipfian) next(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	rank := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}

// p returns the theoretical probability of a rank (tests).
func (z *zipfian) p(rank int) float64 {
	return 1 / (math.Pow(float64(rank+1), z.theta) * z.zetan)
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n int, theta float64) float64 {
	s := 0.0
	for i := 1; i <= n; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	return s
}

// scramble is the 64-bit FNV-1a hash of a rank, used to spread the zipfian
// head over the whole key space (YCSB's ScrambledZipfianGenerator).
func scramble(v uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}
