package harness

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"rhtm"
	"rhtm/containers"
	"rhtm/store"
)

// YCSB-style workloads over the sharded transactional store: the classic
// cloud-serving mixes (A 50/50 read/update, B 95/5, C read-only, F 50/50
// read/read-modify-write) with uniform and zipfian request distributions.
// Where the paper's Constant workloads measure the engines on fixed-shape
// structures, these measure them under a realistic storage stack — varlen
// codec, free-list arena, ordered index — with the skewed key popularity
// real KV traffic has.

// Request distributions accepted by YCSBSpec.Dist.
const (
	DistUniform = "uniform"
	DistZipfian = "zipfian"
)

// YCSBSpec parameterizes one YCSB-style workload.
type YCSBSpec struct {
	// Mix is the YCSB workload letter: "a" (50% reads / 50% updates),
	// "b" (95/5), "c" (read-only), or "f" (50% reads / 50% read-modify-
	// writes: the update reads the record and increments its leading
	// 8-byte counter in place, stressing the in-place update path).
	Mix string
	// Records is the number of pre-loaded records.
	Records int
	// ValueBytes is the value size (keys are the 12-byte "user%08d" form).
	ValueBytes int
	// Dist selects the request distribution (DistUniform or DistZipfian).
	Dist string
	// Shards is the store's shard count (0 = 8).
	Shards int
	// Theta is the zipfian skew; 0 selects YCSB's 0.99.
	Theta float64
}

// readPct returns the read percentage of the mix.
func (sp YCSBSpec) readPct() (int, error) {
	switch sp.Mix {
	case "a", "f":
		return 50, nil
	case "b":
		return 95, nil
	case "c":
		return 100, nil
	default:
		return 0, fmt.Errorf("harness: unknown YCSB mix %q (want a, b, c or f)", sp.Mix)
	}
}

// withDefaults fills unset (zero or negative) fields.
func (sp YCSBSpec) withDefaults() YCSBSpec {
	if sp.Records <= 0 {
		sp.Records = 10_000
	}
	if sp.ValueBytes <= 0 {
		sp.ValueBytes = 64
	}
	if sp.Dist == "" {
		sp.Dist = DistZipfian
	}
	if sp.Shards <= 0 {
		sp.Shards = 8
	}
	if sp.Theta <= 0 {
		sp.Theta = 0.99
	}
	return sp
}

// ycsbKey formats the i-th record's key.
func ycsbKey(i int) []byte {
	return []byte(fmt.Sprintf("user%08d", i))
}

// drawRecord picks a record index: scrambled zipfian when zipf is non-nil
// (as YCSB's ScrambledZipfianGenerator — the skew applies to hashed ranks
// so the hot keys spread over the key space, and therefore over shards and
// Systems), uniform otherwise.
func drawRecord(rng *rand.Rand, zipf *zipfian, records int) int {
	if zipf != nil {
		return int(scramble(uint64(zipf.next(rng))) % uint64(records))
	}
	return rng.Intn(records)
}

// YCSBWorkload builds the workload for a spec. The sharded store's arenas
// are sized for steady state: update values keep their size class, so the
// free lists recycle blocks and the arena frontier stops moving once every
// record has churned once.
func YCSBWorkload(spec YCSBSpec) Workload {
	spec = spec.withDefaults()
	readPct, err := spec.readPct()
	if err != nil {
		panic(err)
	}
	if spec.Dist != DistUniform && spec.Dist != DistZipfian {
		panic(fmt.Sprintf("harness: unknown YCSB distribution %q (want %s or %s)",
			spec.Dist, DistUniform, DistZipfian))
	}
	if spec.Dist == DistZipfian && spec.Theta >= 1 {
		// Fail at workload construction, not later inside Build, so a bad
		// spec surfaces like a bad Mix or Dist does.
		panic(fmt.Sprintf("harness: zipfian theta must be in (0,1), got %g", spec.Theta))
	}
	if spec.Mix == "f" && spec.ValueBytes < 8 {
		panic(fmt.Sprintf("harness: YCSB F needs ValueBytes >= 8 for its counter, got %d", spec.ValueBytes))
	}
	perRecord := store.RecordFootprintWords(len(ycsbKey(0)), spec.ValueBytes)
	recordsPerShard := (spec.Records + spec.Shards - 1) / spec.Shards
	arenaWords := recordsPerShard*perRecord*2 + 4096
	// kv is the current run's store, shared between Build and Observe (a
	// Workload value is measured sequentially; see Workload.Observe).
	var kv *store.Sharded
	return Workload{
		Name:      fmt.Sprintf("ycsb-%s/%s", spec.Mix, spec.Dist),
		DataWords: spec.Shards*(arenaWords+64) + 8192,
		Observe: func(s *rhtm.System) string {
			tx := containers.SetupTx(s)
			note := "store: " + kv.Stats(tx).String()
			if spec.Mix == "f" {
				// Sum of the leading counters: grows by exactly one per
				// committed update, so lost updates are a visible shortfall.
				var sum uint64
				for i := 0; i < spec.Records; i++ {
					if v, ok := kv.Get(tx, ycsbKey(i)); ok {
						sum += binary.LittleEndian.Uint64(v)
					}
				}
				note += fmt.Sprintf(" fsum=%d", sum)
			}
			return note
		},
		Build: func(s *rhtm.System) OpFactory {
			kv = store.NewSharded(s, spec.Shards, store.Options{ArenaWords: arenaWords})
			setup := containers.SetupTx(s)
			loadRng := rand.New(rand.NewSource(loaderSeed))
			val := make([]byte, spec.ValueBytes)
			for i := 0; i < spec.Records; i++ {
				loadRng.Read(val)
				if err := kv.Put(setup, ycsbKey(i), val); err != nil {
					panic(fmt.Sprintf("harness: YCSB load: %v", err))
				}
			}
			var zipf *zipfian
			if spec.Dist == DistZipfian {
				zipf = newZipfian(spec.Records, spec.Theta)
			}
			kv := kv // pin this run's store for the op closures
			return func(threadID int, rng *rand.Rand) func() Op {
				buf := make([]byte, spec.ValueBytes)
				return func() Op {
					key := ycsbKey(drawRecord(rng, zipf, spec.Records))
					if rng.Intn(100) < readPct {
						return func(tx rhtm.Tx) error {
							if _, ok := kv.Get(tx, key); !ok {
								return fmt.Errorf("harness: YCSB record %s missing", key)
							}
							return nil
						}
					}
					if spec.Mix == "f" {
						// Read-modify-write: bump the record's leading
						// counter in place, preserving the payload tail.
						return func(tx rhtm.Tx) error {
							cur, ok := kv.Get(tx, key)
							if !ok {
								return fmt.Errorf("harness: YCSB record %s missing", key)
							}
							binary.LittleEndian.PutUint64(cur, binary.LittleEndian.Uint64(cur)+1)
							return kv.Put(tx, key, cur)
						}
					}
					rng.Read(buf)
					return func(tx rhtm.Tx) error {
						return kv.Put(tx, key, buf)
					}
				}
			}
		},
	}
}

// ycsbEngines is the series set of the YCSB experiments: the full RH1
// stack against the software baseline and the other hybrids.
var ycsbEngines = []string{EngRH1Mix2, EngStdHy, EngTL2, EngNoRec}

// YCSB measures every engine at every thread count for one YCSB spec.
func YCSB(sc Scale, spec YCSBSpec) []Result {
	return sweep(YCSBWorkload(spec), ycsbEngines, sc)
}

// --- zipfian request distribution ---

// zipfian draws ranks in [0, n) with P(rank) proportional to
// 1/(rank+1)^theta — the ZipfianGenerator of Gray et al. ("Quickly
// Generating Billion-Record Synthetic Databases", SIGMOD '94) that YCSB
// uses, with YCSB's default theta = 0.99. Note math/rand.Zipf cannot
// express theta < 1, which is exactly the regime YCSB runs in.
type zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // pow(0.5, theta), hoisted out of next
}

// newZipfian precomputes the constants for n items with skew theta in (0,1).
func newZipfian(n int, theta float64) *zipfian {
	if n <= 0 || theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("harness: zipfian needs n>0 and 0<theta<1, got n=%d theta=%g", n, theta))
	}
	zetan := zeta(n, theta)
	zeta2 := zeta(2, theta)
	return &zipfian{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
		half:  math.Pow(0.5, theta),
	}
}

// next draws one rank; rank 0 is the most popular.
func (z *zipfian) next(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	rank := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}

// p returns the theoretical probability of a rank (tests).
func (z *zipfian) p(rank int) float64 {
	return 1 / (math.Pow(float64(rank+1), z.theta) * z.zetan)
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n int, theta float64) float64 {
	s := 0.0
	for i := 1; i <= n; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	return s
}

// scramble is the 64-bit FNV-1a hash of a rank, used to spread the zipfian
// head over the whole key space (YCSB's ScrambledZipfianGenerator).
func scramble(v uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}
