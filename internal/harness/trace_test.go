package harness

import (
	"strings"
	"testing"
)

// TestTraceSampleCounters: TraceSample wires the flight recorder through
// both rig shapes, and the per-stage quantile summaries land in the flat
// counter map — in-process runs under trace.*, net runs splitting the
// server's handling stages (trace.*) from the client's net stage
// (client.trace.*).
func TestTraceSampleCounters(t *testing.T) {
	// In-process with a WAL: a sampled closure update's trace spans the
	// engine attempts and the group-commit sync. Mix f's updates are
	// closure transactions, the path the kv-level sampler covers.
	spec := KVSpec{Mix: "f", Records: 256, ValueBytes: 32, Shards: 4,
		WAL: true, TraceSample: 4}
	r := MustRunKV(spec, EngTL2, RunConfig{Threads: 2, OpsPerThread: 60, Seed: 1})
	if !strings.HasSuffix(r.Workload, "/trace=4") {
		t.Fatalf("workload name %q does not carry the trace tag", r.Workload)
	}
	if r.Counters["trace.update.count"] <= 0 {
		t.Fatalf("no sampled update traces in counters: %v", r.Counters)
	}
	for _, name := range []string{
		"trace.update.engine.count",
		"trace.update.engine.p99_ns",
		"trace.update.wal_sync.count",
	} {
		if r.Counters[name] <= 0 {
			t.Fatalf("counter %s missing or zero: %v", name, r.Counters)
		}
	}

	// Untraced runs carry no trace.* keys at all — the rows stay what they
	// were before tracing existed.
	spec.TraceSample = 0
	r0 := MustRunKV(spec, EngTL2, RunConfig{Threads: 2, OpsPerThread: 60, Seed: 1})
	for name := range r0.Counters {
		if strings.HasPrefix(name, "trace.") {
			t.Fatalf("untraced run leaked counter %s", name)
		}
	}

	// Over the wire the client owns the sampling decision: the server's
	// flight carries the typed stages, the client's the net stage, and the
	// two halves of each trace share a wire id.
	nspec := KVSpec{Mix: "a", Records: 256, ValueBytes: 32, Shards: 4,
		Net: true, Conns: 2, Pipeline: true, TraceSample: 2}
	nr := MustRunKV(nspec, EngTL2, RunConfig{Threads: 2, OpsPerThread: 60, Seed: 1})
	var traced, clientTraced bool
	for name, v := range nr.Counters {
		if strings.HasPrefix(name, "trace.") && strings.HasSuffix(name, ".count") && v > 0 {
			traced = true
		}
		if strings.HasPrefix(name, "client.trace.") && strings.Contains(name, ".net.") && v > 0 {
			clientTraced = true
		}
	}
	if !traced || !clientTraced {
		t.Fatalf("net run missing trace summaries (server=%v client=%v): %v",
			traced, clientTraced, nr.Counters)
	}
}
