package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// JSONResult is one Result rendered machine-readable — the schema of the
// BENCH_*.json trajectory files rhbench's -json flag emits (one JSON object
// per line).
type JSONResult struct {
	Experiment      string  `json:"experiment"`
	Workload        string  `json:"workload"`
	Engine          string  `json:"engine"`
	Threads         int     `json:"threads"`
	Ops             uint64  `json:"ops"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	OpsPerKAccess   float64 `json:"ops_per_kacc"`
	OpsPerKInterval float64 `json:"ops_per_kinterval,omitempty"`
	AbortsPerCommit float64 `json:"aborts_per_commit"`
	Notes           string  `json:"notes,omitempty"`
	// Counters embeds the run's structured observations (the flattened
	// obs.Snapshot plus harness.* workload counters) when the emitter asks
	// for them — rhbench's -metrics flag.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// WriteResultsJSON emits one JSON line per result (JSONL: trivially
// appendable and `jq`-able), tagged with the experiment id so a whole
// rhbench invocation lands in one trajectory file.
func WriteResultsJSON(w io.Writer, experiment string, results []Result) error {
	return WriteResultsJSONCounters(w, experiment, results, false)
}

// WriteResultsJSONCounters is WriteResultsJSON with the structured counter
// map optionally embedded per row (rhbench -metrics).
func WriteResultsJSONCounters(w io.Writer, experiment string, results []Result, counters bool) error {
	enc := json.NewEncoder(w)
	for _, r := range results {
		jr := JSONResult{
			Experiment:      experiment,
			Workload:        r.Workload,
			Engine:          r.Engine,
			Threads:         r.Threads,
			Ops:             r.Ops,
			ElapsedSec:      r.Elapsed.Seconds(),
			OpsPerSec:       r.Throughput,
			OpsPerKAccess:   r.OpsPerKAccess,
			OpsPerKInterval: r.OpsPerKInterval,
			AbortsPerCommit: r.Stats.AbortRatio(),
			Notes:           r.Notes,
		}
		if counters {
			jr.Counters = r.Counters
		}
		if err := enc.Encode(jr); err != nil {
			return err
		}
	}
	return nil
}

// PrintThroughputSeries renders thread-sweep results as one column per
// engine and one row per thread count — the shape of the paper's throughput
// graphs (total operations versus number of threads).
func PrintThroughputSeries(w io.Writer, title string, results []Result) {
	fmt.Fprintf(w, "# %s\n", title)
	engines := engineOrder(results)
	threads := threadOrder(results)
	byKey := map[string]Result{}
	for _, r := range results {
		byKey[key(r.Engine, r.Threads)] = r
	}
	printGrid := func(w io.Writer, engines []string, threads []int, metric func(Result) float64) {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "threads")
		for _, e := range engines {
			fmt.Fprintf(tw, "\t%s", e)
		}
		fmt.Fprintln(tw)
		for _, t := range threads {
			fmt.Fprintf(tw, "%d", t)
			for _, e := range engines {
				if r, ok := byKey[key(e, t)]; ok {
					fmt.Fprintf(tw, "\t%.2f", metric(r))
				} else {
					fmt.Fprint(tw, "\t-")
				}
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	fmt.Fprintln(w, "## committed ops per 1000 simulated shared accesses (architectural metric)")
	printGrid(w, engines, threads, func(r Result) float64 { return r.OpsPerKAccess })
	cluster := false
	for _, r := range results {
		if r.OpsPerKInterval > 0 {
			cluster = true
			break
		}
	}
	if cluster {
		fmt.Fprintln(w, "## committed ops per 1000 critical-path accesses (busiest System; cluster scaling metric)")
		printGrid(w, engines, threads, func(r Result) float64 { return r.OpsPerKInterval })
	}
	fmt.Fprintln(w, "## committed ops per second (host wall clock; measures the simulator)")
	printGrid(w, engines, threads, func(r Result) float64 { return r.Throughput })
	fmt.Fprintln(w, "# abort ratios:")
	for _, e := range engines {
		last := byKey[key(e, threads[len(threads)-1])]
		fmt.Fprintf(w, "#   %-16s abort-ratio=%.3f at %d threads (%s)\n",
			e, last.Stats.AbortRatio(), last.Threads, last.Stats.String())
	}
	notes := false
	for _, e := range engines {
		if byKey[key(e, threads[len(threads)-1])].Notes != "" {
			notes = true
			break
		}
	}
	if notes {
		fmt.Fprintf(w, "# notes (at %d threads):\n", threads[len(threads)-1])
		for _, e := range engines {
			if last := byKey[key(e, threads[len(threads)-1])]; last.Notes != "" {
				fmt.Fprintf(w, "#   %-16s %s\n", e, last.Notes)
			}
		}
	}
}

// PrintSpeedupBars renders single-thread results normalized to a baseline
// engine (the paper's single-thread speedup chart, normalized to TL2). Both
// the architectural (per-access) and wall-clock speedups are shown; shape
// claims use the former.
func PrintSpeedupBars(w io.Writer, title, baseline string, results []Result) {
	fmt.Fprintf(w, "# %s (normalized to %s)\n", title, baseline)
	var baseWall, baseArch float64
	for _, r := range results {
		if r.Engine == baseline {
			baseWall = r.Throughput
			baseArch = r.OpsPerKAccess
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tarch-speedup\twall-speedup\tops/kacc\tops/sec")
	for _, r := range results {
		spw, spa := 0.0, 0.0
		if baseWall > 0 {
			spw = r.Throughput / baseWall
		}
		if baseArch > 0 {
			spa = r.OpsPerKAccess / baseArch
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.0f\n", r.Engine, spa, spw, r.OpsPerKAccess, r.Throughput)
	}
	tw.Flush()
}

// PrintBreakdownTable renders the Figure 2 breakdown tables: per-engine
// phase-time percentages and operation counters.
func PrintBreakdownTable(w io.Writer, title string, results []Result) {
	fmt.Fprintf(w, "# %s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tread%\twrite%\tcommit%\tprivate%\tinterTX%\treads\twrites\taborts\tcommit-ratio")
	for _, r := range results {
		b := r.Breakdown
		if b == nil {
			b = &Breakdown{}
		}
		ratio := 1.0
		if c := r.Stats.Commits(); c > 0 {
			ratio = float64(c+r.Stats.Aborts()) / float64(c)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%d\t%d\t%d\t%.6f\n",
			r.Engine, b.ReadPct, b.WritePct, b.CommitPct, b.PrivatePct, b.InterTxPct,
			r.Stats.Reads, r.Stats.Writes, r.Stats.Aborts(), ratio)
	}
	tw.Flush()
}

// PrintFig3c renders the Random Array speedup matrix: one row per write
// percentage, one column per transaction length, matching the paper's
// right-hand Figure 3 graph.
func PrintFig3c(w io.Writer, points []Fig3cPoint) {
	fmt.Fprintln(w, "# 128K Random Array: RH1 Fast speedup vs Standard HyTM")
	lengths := []int{}
	writes := []int{}
	seenL := map[int]bool{}
	seenW := map[int]bool{}
	for _, p := range points {
		if !seenL[p.TxLen] {
			seenL[p.TxLen] = true
			lengths = append(lengths, p.TxLen)
		}
		if !seenW[p.WritePct] {
			seenW[p.WritePct] = true
			writes = append(writes, p.WritePct)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	sort.Ints(writes)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "writes%")
	for _, l := range lengths {
		fmt.Fprintf(tw, "\tlen=%d", l)
	}
	fmt.Fprintln(tw)
	for _, wp := range writes {
		fmt.Fprintf(tw, "%d", wp)
		for _, l := range lengths {
			for _, p := range points {
				if p.TxLen == l && p.WritePct == wp {
					fmt.Fprintf(tw, "\t%.2f", p.Speedup)
				}
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// PrintCapacity renders the capacity-extension experiment.
func PrintCapacity(w io.Writer, points []ExtCapacityPoint, limitLines int) {
	fmt.Fprintf(w, "# Capacity extension: HTM footprint capped at %d lines\n", limitLines)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "txlen\tops/sec\tfast-share\tslow-share\trh2-fallbacks")
	for _, p := range points {
		fmt.Fprintf(tw, "%d\t%.0f\t%.3f\t%.3f\t%d\n",
			p.TxLen, p.Result.Throughput, p.FastShare, p.SlowShare, p.RH2Fallbacks)
	}
	tw.Flush()
}

// engineOrder returns engines in first-appearance order.
func engineOrder(results []Result) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.Engine] {
			seen[r.Engine] = true
			out = append(out, r.Engine)
		}
	}
	return out
}

// threadOrder returns thread counts sorted ascending.
func threadOrder(results []Result) []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range results {
		if !seen[r.Threads] {
			seen[r.Threads] = true
			out = append(out, r.Threads)
		}
	}
	sort.Ints(out)
	return out
}

func key(engine string, threads int) string {
	return fmt.Sprintf("%s|%d", engine, threads)
}
