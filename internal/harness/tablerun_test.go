package harness

import (
	"fmt"
	"strings"
	"testing"

	"rhtm/obs"
)

// requireCounter fails unless res carries the named counter with a
// positive value.
func requireCounter(t *testing.T, res Result, name string) {
	t.Helper()
	v, ok := res.Counters[name]
	if !ok {
		t.Errorf("Result.Counters missing %q", name)
	} else if v <= 0 {
		t.Errorf("Result.Counters[%q] = %d, want > 0", name, v)
	}
}

// TestKVTableMixes runs both table mixes on the store backend and checks
// that the run's Result carries the record layer's counters: the
// harness-side op tallies, the table.* instruments of every table, the
// index.* maintenance counters, and the planner's pick taxonomy.
func TestKVTableMixes(t *testing.T) {
	spec := KVSpec{Records: 240, ValueBytes: 32, Shards: 4,
		Tables: 2, IdxSel: 8, ScanMax: 8}
	cfg := RunConfig{Threads: 2, OpsPerThread: 120, Seed: 1}

	t.Run("eidx", func(t *testing.T) {
		s := spec
		s.Mix = "eidx"
		res, err := RunKV(s, EngTL2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops != 240 {
			t.Errorf("Ops = %d, want 240", res.Ops)
		}
		requireCounter(t, res, "harness.scans")
		requireCounter(t, res, "harness.scanned")
		for i := 0; i < s.Tables; i++ {
			name := fmt.Sprintf("kv%d", i)
			requireCounter(t, res, obs.Name("table.selects", "table", name))
			requireCounter(t, res, obs.Name("table.ops", "table", name, "op", "insert"))
			requireCounter(t, res, obs.Name("table.planner.picks", "table", name, "plan", "index"))
			requireCounter(t, res,
				obs.Name("index.maintain.ops", "idx", name+".by_bucket", "op", "insert"))
		}
		if !strings.Contains(res.Workload, "ycsb-e-index") ||
			!strings.Contains(res.Workload, "tables=2") {
			t.Errorf("workload name %q missing table-mix markers", res.Workload)
		}
	})

	t.Run("query", func(t *testing.T) {
		s := spec
		s.Mix = "query"
		res, err := RunKV(s, EngTL2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireCounter(t, res, "harness.point_queries")
		requireCounter(t, res, "harness.range_queries")
		requireCounter(t, res, "harness.order_queries")
		requireCounter(t, res, "harness.upserts")
		requireCounter(t, res, obs.Name("table.planner.picks", "table", "kv0", "plan", "point"))
		requireCounter(t, res, obs.Name("table.planner.picks", "table", "kv0", "plan", "covering"))
		requireCounter(t, res, obs.Name("table.planner.picks", "table", "kv0", "plan", "index"))
		requireCounter(t, res, obs.Name("table.ops", "table", "kv0", "op", "upsert"))
		requireCounter(t, res, obs.Name("table.rows.scanned", "table", "kv0"))
		// The upsert churn moves index entries: update maintenance ops.
		requireCounter(t, res,
			obs.Name("index.maintain.ops", "idx", "kv1.by_bucket", "op", "insert"))
	})

	// The same mix must run unchanged on the 2PC cluster backend — the
	// record layer only sees kv.DB.
	t.Run("query/cluster", func(t *testing.T) {
		s := spec
		s.Mix = "query"
		s.Records, s.Tables, s.Backend, s.Systems = 120, 1, BackendCluster, 2
		res, err := RunKV(s, EngTL2, RunConfig{Threads: 2, OpsPerThread: 40, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		requireCounter(t, res, "harness.point_queries")
		requireCounter(t, res, obs.Name("table.selects", "table", "kv0"))
	})
}

// TestIndexLookupBeatsScan is the PR's acceptance gate: on a 10k-row
// table, the planner's index-served bucket-equality lookup must beat the
// same query forced through a full scan by at least 10x in throughput,
// on two engines. (The architectural gap is larger still: the index scan
// visits ~rows/IdxSel entries where the full scan visits every row.)
func TestIndexLookupBeatsScan(t *testing.T) {
	const rows, queries = 10_000, 60
	for _, eng := range []string{EngRH1Mix2, EngTL2} {
		t.Run(eng, func(t *testing.T) {
			results, err := IndexLookup(eng, rows, queries)
			if err != nil {
				t.Fatal(err)
			}
			idx, full := results[0], results[1]
			if !strings.HasPrefix(idx.Notes, "plan: index(by_bucket") {
				t.Errorf("indexed handle planned %q, want an index scan", idx.Notes)
			}
			if !strings.HasPrefix(full.Notes, "plan: scan(kv0)") {
				t.Errorf("bare handle planned %q, want a full scan", full.Notes)
			}
			if idx.Throughput < 10*full.Throughput {
				t.Errorf("index lookup %.0f ops/s vs full scan %.0f ops/s: want >= 10x",
					idx.Throughput, full.Throughput)
			}
			if idx.Accesses*10 > full.Accesses {
				t.Errorf("index lookup cost %d accesses vs full scan %d: want >= 10x gap",
					idx.Accesses, full.Accesses)
			}
		})
	}
}
