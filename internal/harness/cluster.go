package harness

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rhtm"
	"rhtm/cluster"
	"rhtm/store"
)

// Cluster workloads drive the share-nothing multi-System router: the YCSB
// mixes (plus a bank-transfer variant) with a configurable fraction of
// operations turned into cross-System transactions that must run two-phase
// commit. They answer the question the single-System experiments cannot:
// how does throughput scale when Systems stop sharing a clock and an
// interconnect, and what does distributed atomicity cost per engine?

// ClusterSpec parameterizes one cluster workload.
type ClusterSpec struct {
	// Mix is "a", "b", "c", "f" (as YCSBSpec.Mix), or "bank": every
	// operation transfers between two 8-byte balances and the run fails if
	// the total is not conserved.
	Mix string
	// Records is the number of pre-loaded records (or bank accounts).
	Records int
	// ValueBytes is the value size (>= 8; bank always uses 8).
	ValueBytes int
	// Dist selects the request distribution (default DistUniform — the
	// scaling claims are about balanced load; DistZipfian concentrates it).
	Dist string
	// Theta is the zipfian skew; 0 selects 0.99.
	Theta float64
	// Systems is the number of independent simulated machines (default 1).
	Systems int
	// CrossPct is the percentage of operations that run as cross-System
	// transactions (ignored when Systems == 1; bank transfers between
	// same-System accounts otherwise).
	CrossPct int
	// CrossKeys is how many keys a cross-System transaction touches
	// (default 2).
	CrossKeys int
}

// withDefaults fills unset fields.
func (sp ClusterSpec) withDefaults() ClusterSpec {
	if sp.Records <= 0 {
		sp.Records = 10_000
	}
	if sp.ValueBytes <= 0 {
		sp.ValueBytes = 64
	}
	if sp.Mix == "bank" {
		sp.ValueBytes = 8
	}
	if sp.Dist == "" {
		sp.Dist = DistUniform
	}
	if sp.Theta <= 0 {
		sp.Theta = 0.99
	}
	if sp.Systems <= 0 {
		sp.Systems = 1
	}
	if sp.CrossKeys <= 0 {
		sp.CrossKeys = 2
	}
	return sp
}

// Name identifies the workload in output rows.
func (sp ClusterSpec) Name() string {
	sp = sp.withDefaults()
	return fmt.Sprintf("cluster-%s/%s/s=%d/x=%d", sp.Mix, sp.Dist, sp.Systems, sp.CrossPct)
}

// validate rejects bad specs the way YCSBWorkload does.
func (sp ClusterSpec) validate() error {
	if sp.Mix != "bank" {
		if _, err := sp.readPctOf(); err != nil {
			return err
		}
	}
	if sp.Dist != DistUniform && sp.Dist != DistZipfian {
		return fmt.Errorf("harness: unknown cluster distribution %q", sp.Dist)
	}
	if sp.Dist == DistZipfian && sp.Theta >= 1 {
		return fmt.Errorf("harness: zipfian theta must be in (0,1), got %g", sp.Theta)
	}
	if sp.CrossPct < 0 || sp.CrossPct > 100 {
		return fmt.Errorf("harness: CrossPct must be in [0,100], got %d", sp.CrossPct)
	}
	if sp.Mix != "bank" && sp.ValueBytes < 8 {
		return fmt.Errorf("harness: cluster mixes need ValueBytes >= 8, got %d", sp.ValueBytes)
	}
	if sp.CrossKeys*2 > sp.Records {
		return fmt.Errorf("harness: CrossKeys %d too large for %d records", sp.CrossKeys, sp.Records)
	}
	return nil
}

// readPctOf maps the mix letter to its read percentage.
func (sp ClusterSpec) readPctOf() (int, error) {
	return YCSBSpec{Mix: sp.Mix}.readPct()
}

// Check applies defaults and validates the spec — for drivers that want to
// reject bad flags with a clean message before starting a sweep instead of
// panicking mid-run.
func (sp ClusterSpec) Check() error {
	return sp.withDefaults().validate()
}

// bankInitial is the starting balance of every bank account.
const bankInitial = 1000

// RunCluster executes one cluster measurement: build spec.Systems
// independent Systems each running the named engine, populate the records
// through the router, and drive cfg.Threads clients. For Mix "bank" the
// conserved-total invariant is checked after the run; every run validates
// store invariants and intent quiescence.
func RunCluster(spec ClusterSpec, engineName string, cfg RunConfig) (Result, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return Result{}, err
	}
	if cfg.Threads <= 0 {
		return Result{}, fmt.Errorf("harness: Threads must be positive")
	}
	if cfg.Duration <= 0 && cfg.OpsPerThread <= 0 {
		return Result{}, fmt.Errorf("harness: need Duration or OpsPerThread")
	}

	keyBytes := len(ycsbKey(0))
	recordsPerSys := (spec.Records + spec.Systems - 1) / spec.Systems
	perRecord := store.RecordFootprintWords(keyBytes, spec.ValueBytes)
	// In-flight intents: every client can hold CrossKeys of them, plus the
	// same again mid-apply; round up generously — intent blocks recycle.
	intentSlack := (cfg.Threads*spec.CrossKeys*2 + 64) *
		store.IntentFootprintWords(keyBytes, spec.ValueBytes)
	arenaWords := recordsPerSys*perRecord*2 + intentSlack + 4096

	c, err := cluster.New(cluster.Config{
		Systems:    spec.Systems,
		ArenaWords: arenaWords,
		DataWords:  arenaWords + 1<<13,
		NewEngine: func(s *rhtm.System) (rhtm.Engine, error) {
			return Build(s, engineName, cfg.InjectPct)
		},
	})
	if err != nil {
		return Result{}, err
	}

	// Populate through the router.
	loadRng := rand.New(rand.NewSource(loaderSeed))
	val := make([]byte, spec.ValueBytes)
	for i := 0; i < spec.Records; i++ {
		if spec.Mix == "bank" {
			binary.LittleEndian.PutUint64(val, bankInitial)
		} else {
			loadRng.Read(val)
		}
		if err := c.Load(ycsbKey(i), val); err != nil {
			return Result{}, fmt.Errorf("harness: cluster load: %w", err)
		}
	}

	var zipf *zipfian
	if spec.Dist == DistZipfian {
		zipf = newZipfian(spec.Records, spec.Theta)
	}

	var stop atomic.Bool
	var totalOps atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Threads; i++ {
		client := c.NewClient()
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := clusterWorker{spec: spec, c: c, client: client, rng: rng, zipf: zipf}
			totalOps.Add(driveWorker(cfg, &stop, func() {
				if err := w.step(); err != nil {
					// Client bodies never return user errors here; failures
					// are protocol or capacity bugs, surfaced via panic as
					// the single-System runner does.
					panic(fmt.Sprintf("harness: cluster op: %v", err))
				}
			}))
		}()
	}
	if cfg.Duration > 0 {
		time.Sleep(cfg.Duration)
		stop.Store(true)
	}
	wg.Wait()
	elapsed := time.Since(start)

	cs := c.Stats()
	res := Result{
		Workload: spec.Name(),
		Engine:   c.Node(0).Engine().Name(),
		Threads:  cfg.Threads,
		Ops:      totalOps.Load(),
		Elapsed:  elapsed,
		Stats:    cs.Engines,
	}
	res.Throughput = float64(res.Ops) / elapsed.Seconds()
	for _, a := range cs.PerSystemAccesses {
		res.Accesses += a
		if a > res.CriticalAccesses {
			res.CriticalAccesses = a
		}
	}
	if res.Accesses > 0 {
		res.OpsPerKAccess = 1000 * float64(res.Ops) / float64(res.Accesses)
	}
	if res.CriticalAccesses > 0 {
		res.OpsPerKInterval = 1000 * float64(res.Ops) / float64(res.CriticalAccesses)
	}
	res.Notes = fmt.Sprintf(
		"2pc: cross=%d commit=%d abort=%d prep-conflicts=%d local=%d local-conflicts=%d intent-waits=%d | store: %s",
		cs.CrossTxns, cs.CrossCommits, cs.CrossAborts, cs.PrepareConflicts,
		cs.LocalTxns, cs.LocalConflicts, cs.IntentWaits, cs.Store.String())

	if spec.Mix == "bank" {
		var total uint64
		for i := 0; i < spec.Records; i++ {
			v, ok := c.Peek(ycsbKey(i))
			if !ok {
				return res, fmt.Errorf("harness: bank account %d missing after run", i)
			}
			total += binary.LittleEndian.Uint64(v)
		}
		if want := uint64(spec.Records) * bankInitial; total != want {
			return res, fmt.Errorf("harness: bank total %d != %d — cross-System atomicity violated", total, want)
		}
	}
	if err := c.Validate(); err != nil {
		return res, err
	}
	return res, nil
}

// MustRunCluster is RunCluster for experiment drivers.
func MustRunCluster(spec ClusterSpec, engineName string, cfg RunConfig) Result {
	r, err := RunCluster(spec, engineName, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// clusterWorker generates and executes one client's operations.
type clusterWorker struct {
	spec   ClusterSpec
	c      *cluster.Cluster
	client *cluster.Client
	rng    *rand.Rand
	zipf   *zipfian
	buf    []byte
}

// record draws one record index per the spec's distribution.
func (w *clusterWorker) record() int {
	return drawRecord(w.rng, w.zipf, w.spec.Records)
}

// step runs one operation.
func (w *clusterWorker) step() error {
	if w.spec.Mix == "bank" {
		return w.transfer()
	}
	cross := w.spec.Systems > 1 && w.rng.Intn(100) < w.spec.CrossPct
	readPct, _ := w.spec.readPctOf()
	isRead := w.rng.Intn(100) < readPct
	if cross {
		return w.crossOp(isRead)
	}
	return w.singleOp(isRead)
}

// singleOp is one single-key operation on the record's own System.
func (w *clusterWorker) singleOp(isRead bool) error {
	key := ycsbKey(w.record())
	if isRead {
		_, ok, err := w.client.Get(key)
		if err == nil && !ok {
			return fmt.Errorf("record %s missing", key)
		}
		return err
	}
	if w.spec.Mix == "f" {
		// Single-key read-modify-write still needs a transaction.
		return w.client.Txn(func(tx *cluster.Txn) error {
			cur, ok, err := tx.Get(key)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("record %s missing", key)
			}
			binary.LittleEndian.PutUint64(cur, binary.LittleEndian.Uint64(cur)+1)
			tx.Put(key, cur)
			return nil
		})
	}
	if w.buf == nil {
		w.buf = make([]byte, w.spec.ValueBytes)
	}
	w.rng.Read(w.buf)
	return w.client.Put(key, w.buf)
}

// crossKeys draws CrossKeys distinct records, redrawing a bounded number
// of times until they span at least two Systems. If the keyspace is so
// degenerate that no redraw spans (all sampled records hash to one
// System), the last draw is used anyway — the transaction then simply
// takes the local path.
func (w *clusterWorker) crossKeys() [][]byte {
	r := w.c.Router()
	var keys [][]byte
	for round := 0; round < 16; round++ {
		seen := map[int]bool{}
		systems := map[int]bool{}
		keys = keys[:0]
		for len(keys) < w.spec.CrossKeys {
			rec := w.record()
			if seen[rec] {
				continue
			}
			seen[rec] = true
			k := ycsbKey(rec)
			keys = append(keys, k)
			systems[r.SystemFor(k)] = true
		}
		if len(systems) > 1 {
			break
		}
	}
	return keys
}

// crossOp runs one cross-System transaction: a snapshot read of the keys,
// or a write over all of them. The write mirrors the mix's single-key
// semantics — blind puts for a/b, read-modify-write counter increments for
// f — so the accesses/op delta between x=0 and x>0 measures the commit
// protocol, not a change in operation shape.
func (w *clusterWorker) crossOp(isRead bool) error {
	keys := w.crossKeys()
	if isRead {
		vals, err := w.client.ReadMulti(keys)
		if err != nil {
			return err
		}
		for i, v := range vals {
			if v == nil {
				return fmt.Errorf("record %s missing", keys[i])
			}
		}
		return nil
	}
	if w.spec.Mix == "f" {
		return w.client.Update(keys, func(vals [][]byte) ([][]byte, error) {
			out := make([][]byte, len(vals))
			for i, v := range vals {
				if v == nil {
					return nil, fmt.Errorf("record %s missing", keys[i])
				}
				binary.LittleEndian.PutUint64(v, binary.LittleEndian.Uint64(v)+1)
				out[i] = v
			}
			return out, nil
		})
	}
	// Values are drawn before the transaction so a commit retry does not
	// consume extra randomness (Txn bodies re-execute on conflict).
	vals := make([][]byte, len(keys))
	for i := range vals {
		vals[i] = make([]byte, w.spec.ValueBytes)
		w.rng.Read(vals[i])
	}
	return w.client.Txn(func(tx *cluster.Txn) error {
		for i, k := range keys {
			tx.Put(k, vals[i])
		}
		return nil
	})
}

// transfer is one bank operation: move a random amount between two
// accounts, cross-System for CrossPct of operations. Redraws for the
// wanted placement are bounded: a degenerate account set (say, every
// account hashed to its own System when a same-System pair is wanted) must
// not hang the run, so after the bound the last distinct pair is used with
// whatever placement it has.
func (w *clusterWorker) transfer() error {
	r := w.c.Router()
	wantCross := w.spec.Systems > 1 && w.rng.Intn(100) < w.spec.CrossPct
	a := w.record()
	b := (a + 1) % w.spec.Records
	for round := 0; round < 64; round++ {
		x, y := w.record(), w.record()
		if x == y {
			continue
		}
		a, b = x, y
		if w.spec.Systems == 1 ||
			(r.SystemFor(ycsbKey(a)) != r.SystemFor(ycsbKey(b))) == wantCross {
			break
		}
	}
	from, to := ycsbKey(a), ycsbKey(b)
	amt := uint64(w.rng.Intn(10))
	return w.client.Update([][]byte{from, to}, func(vals [][]byte) ([][]byte, error) {
		if vals[0] == nil || vals[1] == nil {
			return nil, fmt.Errorf("bank account missing")
		}
		f := binary.LittleEndian.Uint64(vals[0])
		t := binary.LittleEndian.Uint64(vals[1])
		if f < amt {
			return nil, nil // insufficient funds: read-only commit
		}
		var nf, nt [8]byte
		binary.LittleEndian.PutUint64(nf[:], f-amt)
		binary.LittleEndian.PutUint64(nt[:], t+amt)
		return [][]byte{nf[:], nt[:]}, nil
	})
}

// clusterEngines is the series set of the cluster experiments — the same
// engines as the single-System YCSB series, so the 2PC cost is directly
// comparable.
var clusterEngines = ycsbEngines

// ClusterYCSB measures every cluster engine at every thread count for one
// spec.
func ClusterYCSB(sc Scale, spec ClusterSpec) []Result {
	out := make([]Result, 0, len(clusterEngines)*len(sc.Threads))
	for _, eng := range clusterEngines {
		for _, th := range sc.Threads {
			out = append(out, MustRunCluster(spec, eng, sc.cfg(th)))
		}
	}
	return out
}
