package harness

import (
	"testing"
)

// TestClusterScaling is the cluster subsystem's acceptance criterion: on a
// uniform, read-heavy mix with no cross-System transactions, 4 Systems
// must deliver at least twice the 1-System throughput in simulated
// parallel time (ops per critical-path access interval) — the load really
// spreads over independent machines instead of queueing on one. Both runs
// use the cluster backend so the comparison isolates the System count.
func TestClusterScaling(t *testing.T) {
	base := KVSpec{Mix: "b", Records: 2048, ValueBytes: 32,
		Backend: BackendCluster, Dist: DistUniform, CrossPct: 0}
	cfg := RunConfig{Threads: 4, OpsPerThread: 300, Seed: 1}

	base.Systems = 1
	r1 := MustRunKV(base, EngRH1Mix2, cfg)
	base.Systems = 4
	r4 := MustRunKV(base, EngRH1Mix2, cfg)

	if r1.Ops != r4.Ops {
		t.Fatalf("op counts differ: %d vs %d", r1.Ops, r4.Ops)
	}
	if r1.OpsPerKInterval <= 0 || r4.OpsPerKInterval <= 0 {
		t.Fatalf("missing interval metric: s1=%f s4=%f", r1.OpsPerKInterval, r4.OpsPerKInterval)
	}
	if r4.OpsPerKInterval < 2*r1.OpsPerKInterval {
		t.Fatalf("4 Systems = %.2f ops/kinterval, 1 System = %.2f: scaling < 2x",
			r4.OpsPerKInterval, r1.OpsPerKInterval)
	}
}

// TestClusterWorkloadRuns drives each mix through real engines at small
// scale with a high cross-System fraction and sanity-checks the results
// (op counts, commits, and — for cross mixes — that 2PC actually ran).
func TestClusterWorkloadRuns(t *testing.T) {
	for _, mix := range []string{"a", "b", "c", "d", "e", "f", "bank"} {
		spec := KVSpec{Mix: mix, Records: 256, ValueBytes: 32,
			Systems: 3, CrossPct: 50, ScanMax: 10}
		for _, eng := range []string{EngRH1Mix2, EngTL2, EngStdHy} {
			r, err := RunKV(spec, eng, RunConfig{Threads: 2, OpsPerThread: 30, Seed: 1})
			if err != nil {
				t.Fatalf("%s/%s: %v", mix, eng, err)
			}
			if r.Ops != 60 {
				t.Fatalf("%s/%s: ops = %d, want 60", mix, eng, r.Ops)
			}
			if _, ok := r.Counters["cluster.local_txns"]; !ok {
				t.Fatalf("%s/%s: counters missing the cluster.* 2PC set: %v", mix, eng, r.Counters)
			}
			if mix == "e" && r.Counters["harness.scans"] == 0 {
				t.Fatalf("%s/%s: E mix ran no snapshot scans: %v", mix, eng, r.Counters)
			}
		}
	}
}

// TestClusterCrossFractionEngages: with CrossPct > 0 on several Systems,
// cross-System commits must appear in the stats; with CrossPct == 0 the
// decision log must stay empty of cross traffic from single-key mixes.
func TestClusterCrossFractionEngages(t *testing.T) {
	spec := KVSpec{Mix: "a", Records: 512, ValueBytes: 16, Systems: 3, CrossPct: 40}
	r := MustRunKV(spec, EngTL2, RunConfig{Threads: 2, OpsPerThread: 100, Seed: 7})
	if r.Counters["cluster.cross_txns"] == 0 {
		t.Fatalf("cross fraction 40%% produced no 2PC traffic: %v", r.Counters)
	}

	spec.CrossPct = 0
	r0 := MustRunKV(spec, EngTL2, RunConfig{Threads: 2, OpsPerThread: 100, Seed: 7})
	if got, ok := r0.Counters["cluster.cross_txns"]; !ok || got != 0 {
		t.Fatalf("cross fraction 0%% still ran 2PC (cross_txns=%d, present=%v)", got, ok)
	}
}

// TestClusterBankInvariant: the bank mix's conserved-total check runs
// inside RunKV; a clean run must pass it under heavy cross traffic.
func TestClusterBankInvariant(t *testing.T) {
	spec := KVSpec{Mix: "bank", Records: 64, Systems: 4, CrossPct: 80}
	r := MustRunKV(spec, EngRH1Mix2, RunConfig{Threads: 4, OpsPerThread: 60, Seed: 3})
	if r.Ops != 240 {
		t.Fatalf("ops = %d, want 240", r.Ops)
	}
}

// TestStoreCrossOps: CrossPct also engages on the single-System store
// backend, where multi-key transactions are cross-shard engine
// transactions — the same workload shape at the smaller scale.
func TestStoreCrossOps(t *testing.T) {
	spec := KVSpec{Mix: "a", Records: 256, ValueBytes: 16, Shards: 4, CrossPct: 50, CrossKeys: 3}
	r := MustRunKV(spec, EngRH1Mix2, RunConfig{Threads: 2, OpsPerThread: 50, Seed: 2})
	if r.Ops != 100 {
		t.Fatalf("ops = %d, want 100", r.Ops)
	}

	bank := KVSpec{Mix: "bank", Records: 64, Shards: 4, CrossPct: 50}
	if _, err := RunKV(bank, EngTL2, RunConfig{Threads: 2, OpsPerThread: 40, Seed: 4}); err != nil {
		t.Fatalf("store-backend bank: %v", err)
	}
}
