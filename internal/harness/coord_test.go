package harness

import (
	"testing"
)

// TestSessionCacheRuns drives the session-cache scenario on both backends:
// lookups must hit, misses must trigger logins, and the virtual-time pump
// must actually expire leased sessions (the churn the scenario exists for).
func TestSessionCacheRuns(t *testing.T) {
	for _, spec := range []KVSpec{
		{Mix: "session", Records: 128, ValueBytes: 32, Shards: 4, TTL: 4, PumpEvery: 16},
		{Mix: "session", Records: 128, ValueBytes: 32, Systems: 3, TTL: 4, PumpEvery: 16},
	} {
		r, err := RunKV(spec, EngRH1Mix2, RunConfig{Threads: 4, OpsPerThread: 150, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		if r.Ops != 600 {
			t.Fatalf("%s: ops = %d, want 600", spec.Name(), r.Ops)
		}
		logins := noteValue(t, r.Notes, "logins")
		expired := noteValue(t, r.Notes, "expired")
		hits := noteValue(t, r.Notes, "hits")
		if logins == 0 || hits == 0 {
			t.Fatalf("%s: no cache traffic: %q", spec.Name(), r.Notes)
		}
		if expired == 0 {
			t.Fatalf("%s: the expiry pump never reclaimed a session: %q", spec.Name(), r.Notes)
		}
		if deletes := noteValue(t, r.Notes, "watched-deletes"); deletes == 0 {
			t.Fatalf("%s: the watcher saw no expiry deletes: %q", spec.Name(), r.Notes)
		}
	}
}

// TestLockServiceMutualExclusion is the coordination acceptance criterion:
// on both backends, 4 workers hammering a small lock space — with crashes
// reclaimed only by lease expiry — must never produce two overlapping
// lease-valid holds of one lock. The audit runs inside RunKV; this test
// additionally requires that the scenario exercised every interesting
// path: contended acquisitions, crash-expiry reclaims, and watch-observed
// deletes.
func TestLockServiceMutualExclusion(t *testing.T) {
	for _, spec := range []KVSpec{
		{Mix: "lock", Records: 8, Shards: 4, TTL: 6, PumpEvery: 16},
		{Mix: "lock", Records: 8, Systems: 3, TTL: 6, PumpEvery: 16},
	} {
		r, err := RunKV(spec, EngRH1Mix2, RunConfig{Threads: 4, OpsPerThread: 120, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		if r.Ops != 480 {
			t.Fatalf("%s: ops = %d, want 480", spec.Name(), r.Ops)
		}
		acquires := noteValue(t, r.Notes, "acquires")
		contended := noteValue(t, r.Notes, "contended")
		crashes := noteValue(t, r.Notes, "crashes")
		expired := noteValue(t, r.Notes, "expired")
		if acquires == 0 || contended == 0 {
			t.Fatalf("%s: lock space never contended: %q", spec.Name(), r.Notes)
		}
		if crashes == 0 || expired == 0 {
			t.Fatalf("%s: crash-expiry path never exercised: %q", spec.Name(), r.Notes)
		}
		if deletes := noteValue(t, r.Notes, "watched-deletes"); deletes == 0 {
			t.Fatalf("%s: the watcher saw no lock releases: %q", spec.Name(), r.Notes)
		}
	}
}

// TestLockAuditCatchesOverlap sanity-checks the auditor itself: a
// fabricated overlapping pair must be rejected, adjacent intervals must
// pass — so a green mutual-exclusion run means the invariant held, not
// that the check is vacuous.
func TestLockAuditCatchesOverlap(t *testing.T) {
	c := newCoordState(nil)
	c.record(1, holdInterval{token: 1, start: 10, deadline: 20, end: 15})
	c.record(1, holdInterval{token: 2, start: 15, deadline: 30, end: 22})
	if err := c.auditMutualExclusion(); err != nil {
		t.Fatalf("adjacent holds rejected: %v", err)
	}
	c.record(1, holdInterval{token: 3, start: 21, deadline: 40})
	if err := c.auditMutualExclusion(); err == nil {
		t.Fatal("overlapping holds (21 < 22) not detected")
	}
	// A crashed hold's validity ends at its lease deadline, not at release.
	c2 := newCoordState(nil)
	c2.record(7, holdInterval{token: 1, start: 5, deadline: 9})
	c2.record(7, holdInterval{token: 2, start: 8, deadline: 20, end: 12})
	if err := c2.auditMutualExclusion(); err == nil {
		t.Fatal("acquire inside a crashed hold's lease window not detected")
	}
	// Same-tick sequential holds — released within the tie tick, then
	// re-acquired and crashed — are legal whatever order they were
	// recorded in: the tie-break must not fabricate an overlap.
	for _, order := range [][2]holdInterval{
		{{token: 1, start: 11, deadline: 17, end: 11}, {token: 2, start: 11, deadline: 15}},
		{{token: 2, start: 11, deadline: 15}, {token: 1, start: 11, deadline: 17, end: 11}},
	} {
		c3 := newCoordState(nil)
		c3.record(3, order[0])
		c3.record(3, order[1])
		if err := c3.auditMutualExclusion(); err != nil {
			t.Fatalf("legal same-tick hold sequence rejected: %v", err)
		}
	}
	// But two tied holds that both extend past the tie tick cannot both be
	// lease-valid: one acquired while the other still held the key.
	c4 := newCoordState(nil)
	c4.record(9, holdInterval{token: 1, start: 11, deadline: 15})
	c4.record(9, holdInterval{token: 2, start: 11, deadline: 17, end: 14})
	if err := c4.auditMutualExclusion(); err == nil {
		t.Fatal("two extending same-tick holds not detected")
	}
}
