package harness

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rhtm/kv"
	"rhtm/store"
)

// The coordination scenarios: workloads that exercise the kv layer's
// revision/lease/watch surface rather than raw data throughput.
//
//   - "session": a session cache serving zipfian lookups. A miss is a
//     login — grant a lease, store the session under it — and a shared
//     virtual-time pump expires idle sessions, so the cache churns the way
//     a production session store does. Measures gets + lease machinery.
//   - "lock": a lease-based lock service. Workers race PutIf(create-only,
//     WithLease) to acquire locks, do a small transactional critical
//     section, then either release with a guarded delete or "crash" and
//     let lease expiry reclaim the lock. The run records every hold as a
//     virtual-time interval and fails if two lease-valid holds of one lock
//     ever overlap — the mutual-exclusion invariant, audited exactly, with
//     a watch stream counting the release/expiry deletes as they happen.
//
// Both run unchanged on either backend: on the cluster, lock acquisition
// is a cross-System transaction whenever the lock key and its lease record
// hash to different Systems, and expiry revokes ride 2PC.

// leaseSlackWords sizes the arena headroom the coordination mixes need
// beyond their record space: one lease record (and its bookkeeping) per
// live session/lock, plus the critical-section counters of the lock mix.
func leaseSlackWords(spec KVSpec) int {
	if spec.Mix != "session" && spec.Mix != "lock" {
		return 0
	}
	vb := spec.ValueBytes
	if vb < 8 {
		vb = 8
	}
	per := store.RecordFootprintWords(16, 64) + // lease record
		store.RecordFootprintWords(16, vb) + // data / counter key
		64
	return spec.Records*per*2 + 4096
}

// holdInterval is one recorded lock hold in virtual time.
type holdInterval struct {
	token    uint64
	start    uint64 // clock at acquire (recorded after the CAS commits)
	deadline uint64 // lease deadline: validity never extends past it
	end      uint64 // clock at release (recorded before the delete); 0 = crashed
}

// effectiveEnd is the instant the hold's mutual-exclusion guarantee ends:
// the release when it happened within the lease, the lease deadline
// otherwise — the classic fencing caveat, made checkable by virtual time.
func (h holdInterval) effectiveEnd() uint64 {
	if h.end != 0 && h.end < h.deadline {
		return h.end
	}
	return h.deadline
}

// coordState is the shared coordination-scenario state of one run.
type coordState struct {
	clock *kv.ManualClock

	mu        sync.Mutex
	intervals map[int][]holdInterval
}

func newCoordState(clock *kv.ManualClock) *coordState {
	return &coordState{clock: clock, intervals: map[int][]holdInterval{}}
}

func (c *coordState) record(lock int, iv holdInterval) {
	c.mu.Lock()
	c.intervals[lock] = append(c.intervals[lock], iv)
	c.mu.Unlock()
}

// auditMutualExclusion checks that no two lease-valid holds of one lock
// overlap in virtual time. Starts are recorded after the acquiring CAS
// commits and ends before the releasing delete, so recorded intervals are
// sub-intervals of the true holds: the check can miss an overlap by a
// tick, but it can never report a false one.
//
// Ties need care: the clock only ticks every PumpEvery operations, so two
// *sequential* holds can record the same start. The only legal
// serialization of a tie is release-first — the later acquire needed the
// key absent, so every tied hold but the last must have ended at the tie
// tick, and the clock's monotonicity makes a tied hold with a later
// effective end provably the later acquire. Sorting ties by effective end
// therefore keeps the no-false-positive direction; without it the sort
// order is arbitrary and a crashed hold sorted before a same-tick released
// one reports a phantom overlap.
func (c *coordState) auditMutualExclusion() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for lock, ivs := range c.intervals {
		sorted := append([]holdInterval(nil), ivs...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].start != sorted[j].start {
				return sorted[i].start < sorted[j].start
			}
			return sorted[i].effectiveEnd() < sorted[j].effectiveEnd()
		})
		for i := 1; i < len(sorted); i++ {
			prev, cur := sorted[i-1], sorted[i]
			if cur.start < prev.effectiveEnd() {
				return fmt.Errorf(
					"harness: mutual exclusion violated on lock %d: token %d held [%d,%d) overlaps token %d acquired at %d",
					lock, prev.token, prev.start, prev.effectiveEnd(), cur.token, cur.start)
			}
		}
	}
	return nil
}

// pump advances the shared virtual clock one tick and expires due leases
// every PumpEvery operations, whichever worker's op crosses the boundary.
func (w *kvWorker) pump() error {
	if w.shared.opSeq.Add(1)%uint64(w.spec.PumpEvery) != 0 {
		return nil
	}
	w.coord.clock.Advance(1)
	n, err := w.db.ExpireLeases()
	if err != nil {
		return fmt.Errorf("expire leases: %w", err)
	}
	w.shared.expired.Add(uint64(n))
	return nil
}

// sessionOp is one session-cache operation: a zipfian lookup, with a miss
// handled as a login (lease grant + leased put). The pump's expiry churn
// keeps generating misses, so the login path stays hot for the whole run.
func (w *kvWorker) sessionOp() error {
	if err := w.pump(); err != nil {
		return err
	}
	key := ycsbKey(w.record())
	_, err := w.db.Get(key)
	switch {
	case err == nil:
		w.shared.hits.Add(1)
		return nil
	case errors.Is(err, kv.ErrNotFound):
		w.shared.misses.Add(1)
		lease, err := w.db.Grant(uint64(w.spec.TTL))
		if err != nil {
			return err
		}
		if w.buf == nil {
			w.buf = make([]byte, w.spec.ValueBytes)
		}
		w.rng.Read(w.buf)
		err = w.db.Put(key, w.buf, kv.WithLease(lease))
		if errors.Is(err, kv.ErrLeaseNotFound) {
			// Another worker's pump expired the fresh lease before the
			// attach committed — the login simply failed; the next miss
			// retries it.
			return nil
		}
		if err != nil {
			return err
		}
		w.shared.logins.Add(1)
		return nil
	default:
		return err
	}
}

// lockOp is one lock-service operation: try to acquire a drawn lock with a
// create-only leased CAS; on success run a small transactional critical
// section, then release with a token-guarded delete — or crash for a fifth
// of the holds, leaving reclamation to lease expiry.
func (w *kvWorker) lockOp() error {
	if err := w.pump(); err != nil {
		return err
	}
	lockID := w.rng.Intn(w.spec.Records)
	lockKey := ycsbKey(lockID)
	w.tokenSeq++
	token := uint64(w.id+1)<<32 | w.tokenSeq
	var tok [8]byte
	binary.LittleEndian.PutUint64(tok[:], token)

	// The recorded deadline is anchored before Grant reads the clock, so it
	// can only under-state the lease's true deadline — the audit direction
	// that avoids false violations.
	deadline := w.coord.clock.Now() + uint64(w.spec.TTL)
	lease, err := w.db.Grant(uint64(w.spec.TTL))
	if err != nil {
		return err
	}
	err = w.db.PutIf(lockKey, tok[:], 0, kv.WithLease(lease))
	switch {
	case errors.Is(err, kv.ErrRevisionMismatch):
		w.shared.contended.Add(1)
		// The lease was never used: drop it so records don't accumulate.
		if err := w.db.Revoke(lease); err != nil && !errors.Is(err, kv.ErrLeaseNotFound) {
			return err
		}
		return nil
	case errors.Is(err, kv.ErrLeaseNotFound):
		// The pump expired the fresh lease before the acquire committed:
		// the attempt simply failed.
		w.shared.contended.Add(1)
		return nil
	case err != nil:
		return err
	}
	start := w.coord.clock.Now()
	w.shared.acquires.Add(1)

	// Critical section: bump this lock's work counter transactionally.
	csKey := []byte(fmt.Sprintf("cs-%08d", lockID))
	err = w.db.Update(func(tx kv.Txn) error {
		var v uint64
		cur, err := tx.Get(csKey)
		if err == nil {
			v = binary.LittleEndian.Uint64(cur)
		} else if !errors.Is(err, kv.ErrNotFound) {
			return err
		}
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v+1)
		return tx.Put(csKey, b[:])
	})
	if err != nil {
		return err
	}

	if w.rng.Intn(100) < 20 {
		// Crash while holding: the lock stays until the lease expires.
		w.shared.crashes.Add(1)
		w.coord.record(lockID, holdInterval{token: token, start: start, deadline: deadline})
		return nil
	}

	end := w.coord.clock.Now()
	// Guarded release: delete only our own token at its observed revision —
	// if the lease expired mid-hold and someone else re-acquired, both
	// guards miss and the release becomes a no-op.
	cur, rev, err := w.db.GetRev(lockKey)
	if err == nil && binary.LittleEndian.Uint64(cur) == token {
		err = w.db.DeleteIf(lockKey, rev)
		if err != nil && !errors.Is(err, kv.ErrRevisionMismatch) && !errors.Is(err, kv.ErrNotFound) {
			return err
		}
	} else if err != nil && !errors.Is(err, kv.ErrNotFound) {
		return err
	}
	if err := w.db.Revoke(lease); err != nil && !errors.Is(err, kv.ErrLeaseNotFound) {
		return err
	}
	w.shared.releases.Add(1)
	w.coord.record(lockID, holdInterval{token: token, start: start, deadline: deadline, end: end})
	return nil
}

// watchDeletes subscribes to the run's key prefix and counts delete events
// (releases and expiry reclaims) until ctx ends — the notification half of
// the coordination scenarios, driven by the same commit log both backends
// feed. It returns a drain function that blocks until the stream closes,
// so counts are final before the run reads them.
func watchDeletes(ctx context.Context, db kv.DB, deletes *atomic.Uint64) (func(), error) {
	ch, err := db.Watch(ctx, []byte("user"), 0)
	if err != nil {
		return nil, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range ch {
			if ev.Kind == kv.EventDelete {
				deletes.Add(1)
			}
		}
	}()
	return func() { <-done }, nil
}

// hubDrainGrace is how long RunKV waits after the workers quiesce for the
// watch hub's fallback poll to flush the commit logs' tail.
const hubDrainGrace = 30 * time.Millisecond
