// Package harness drives the experiments of the paper's evaluation section:
// it builds simulated systems, populates workloads, runs engine/thread
// sweeps, and reports throughput, abort ratios, instrumentation counts, and
// the single-thread time breakdown of Figure 2's tables.
package harness

import (
	"fmt"
	"sort"

	"rhtm"
)

// Engine names accepted by Build. They match the series labels in the
// paper's figures.
const (
	EngHTM     = "HTM"
	EngStdHy   = "Standard HyTM"
	EngTL2     = "TL2"
	EngRH1Fast = "RH1 Fast"
	EngRH1Mix0 = "RH1 Mixed 0"
	EngRH1Mix1 = "RH1 Mixed 10"
	EngRH1Mix2 = "RH1 Mixed 100"
	EngRH1Slow = "RH1 Slow"
	EngRH2     = "RH2"
	EngNoRec   = "Hybrid NoRec"
	EngPhased  = "Phased TM"
)

// AllEngines lists every registered engine name.
func AllEngines() []string {
	out := []string{
		EngHTM, EngStdHy, EngTL2, EngRH1Fast,
		EngRH1Mix0, EngRH1Mix1, EngRH1Mix2, EngRH1Slow,
		EngRH2, EngNoRec, EngPhased,
	}
	sort.Strings(out)
	return out
}

// Build constructs the named engine on s. injectPct forces that percentage
// of hardware commits to abort (the paper's emulated abort ratio); it is
// ignored by the software-only TL2.
func Build(s *rhtm.System, name string, injectPct int) (rhtm.Engine, error) {
	switch name {
	case EngHTM:
		return rhtm.NewHTM(s, rhtm.HWOptions{InjectAbortPercent: injectPct}), nil
	case EngStdHy:
		return rhtm.NewStandardHyTM(s, rhtm.HWOptions{InjectAbortPercent: injectPct}), nil
	case EngTL2:
		return rhtm.NewTL2(s), nil
	case EngRH1Fast:
		return rhtm.NewRH1(s, rhtm.RH1Options{FastOnly: true, InjectAbortPercent: injectPct}), nil
	case EngRH1Mix0:
		return rhtm.NewRH1(s, rhtm.RH1Options{MixPercent: 0, InjectAbortPercent: injectPct}), nil
	case EngRH1Mix1:
		return rhtm.NewRH1(s, rhtm.RH1Options{MixPercent: 10, InjectAbortPercent: injectPct}), nil
	case EngRH1Mix2:
		return rhtm.NewRH1(s, rhtm.RH1Options{MixPercent: 100, InjectAbortPercent: injectPct}), nil
	case EngRH1Slow:
		return rhtm.NewRH1(s, rhtm.RH1Options{SlowOnly: true, MixPercent: 100}), nil
	case EngRH2:
		return rhtm.NewRH2(s, rhtm.RH1Options{MixPercent: 100, InjectAbortPercent: injectPct}), nil
	case EngNoRec:
		return rhtm.NewHybridNoRec(s, rhtm.HWOptions{InjectAbortPercent: injectPct}), nil
	case EngPhased:
		return rhtm.NewPhasedTM(s, rhtm.HWOptions{InjectAbortPercent: injectPct}), nil
	default:
		return nil, fmt.Errorf("harness: unknown engine %q", name)
	}
}
