package harness

import (
	"time"

	"rhtm"
)

// Scale holds the workload sizes of the paper's evaluation. DefaultScale is
// the paper's configuration; Scaled shrinks everything for quick runs and
// unit tests.
type Scale struct {
	// RBNodes is the red-black tree size (paper: 100K, §3.1).
	RBNodes int
	// HashElems is the hash-table population (the Figure 3 graph says 10K
	// elements; the §3.3 text says 1000K — the graph is authoritative here
	// and the -elems flag overrides).
	HashElems int
	// ListElems is the sorted-list size (paper: 1K, §3.4).
	ListElems int
	// ArrayWords is the random-array size (paper: 128K, §3.5).
	ArrayWords int
	// Threads is the thread sweep (paper: 1..20 on a 20-way Xeon).
	Threads []int
	// Duration is the per-point measuring time for time-based runs.
	Duration time.Duration
	// OpsPerThread, when Duration is zero, makes runs deterministic.
	OpsPerThread int
	// Seed derives every RNG.
	Seed int64
}

// DefaultScale reproduces the paper's sizes.
func DefaultScale() Scale {
	return Scale{
		RBNodes:    100_000,
		HashElems:  10_000,
		ListElems:  1_000,
		ArrayWords: 128 * 1024,
		Threads:    []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20},
		Duration:   time.Second,
		Seed:       1,
	}
}

// SmallScale is a fast configuration for tests and smoke runs.
func SmallScale() Scale {
	return Scale{
		RBNodes:      512,
		HashElems:    256,
		ListElems:    64,
		ArrayWords:   4096,
		Threads:      []int{1, 2},
		OpsPerThread: 60,
		Seed:         1,
	}
}

// cfg builds the RunConfig for one point.
func (sc Scale) cfg(threads int) RunConfig {
	return RunConfig{
		Threads:      threads,
		Duration:     sc.Duration,
		OpsPerThread: sc.OpsPerThread,
		Seed:         sc.Seed,
	}
}

// sweep measures every engine at every thread count for one workload.
func sweep(w Workload, engines []string, sc Scale) []Result {
	out := make([]Result, 0, len(engines)*len(sc.Threads))
	for _, eng := range engines {
		for _, th := range sc.Threads {
			out = append(out, MustRun(w, eng, sc.cfg(th)))
		}
	}
	return out
}

// Fig1 reproduces Figure 1: Constant RB-Tree throughput at 20% writes for
// HTM, Standard HyTM, TL2 and RH1 Fast (hardware retries only — the figure
// isolates instrumentation cost, §3.2).
func Fig1(sc Scale) []Result {
	w := RBTreeWorkload(sc.RBNodes, 20)
	return sweep(w, []string{EngHTM, EngStdHy, EngTL2, EngRH1Fast}, sc)
}

// fig2Engines is the series set of Figure 2's throughput graphs.
var fig2Engines = []string{EngHTM, EngStdHy, EngTL2, EngRH1Fast, EngRH1Mix1, EngRH1Mix2}

// Fig2a reproduces Figure 2 top-left: RB-Tree, 20% writes, including the
// RH1 Mixed 10/100 configurations.
func Fig2a(sc Scale) []Result {
	return sweep(RBTreeWorkload(sc.RBNodes, 20), fig2Engines, sc)
}

// Fig2b reproduces Figure 2 top-right: RB-Tree, 80% writes.
func Fig2b(sc Scale) []Result {
	return sweep(RBTreeWorkload(sc.RBNodes, 80), fig2Engines, sc)
}

// fig2SingleEngines is the row set of the single-thread speedup chart and
// the breakdown tables ("RH1 Slow" is the pure slow-path configuration).
var fig2SingleEngines = []string{EngRH1Slow, EngTL2, EngStdHy, EngRH1Fast, EngHTM}

// Fig2c reproduces Figure 2 middle: single-thread speedup, normalized to
// TL2, at the given write percentage (the paper shows 20% and 80%).
func Fig2c(sc Scale, writePct int) []Result {
	w := RBTreeWorkload(sc.RBNodes, writePct)
	c := sc.cfg(1)
	out := make([]Result, 0, len(fig2SingleEngines))
	for _, eng := range fig2SingleEngines {
		out = append(out, MustRun(w, eng, c))
	}
	return out
}

// Tables reproduces the embedded single-thread breakdown tables of Figure 2
// (the `20_100_R` and `80_100_R` blocks): per-engine read/write/commit/
// private/inter-transaction time shares plus operation counters, at the
// given write percentage (20 for tab1, 80 for tab2).
func Tables(sc Scale, writePct int) []Result {
	w := RBTreeWorkload(sc.RBNodes, writePct)
	c := sc.cfg(1)
	c.Breakdown = true
	out := make([]Result, 0, len(fig2SingleEngines))
	for _, eng := range fig2SingleEngines {
		out = append(out, MustRun(w, eng, c))
	}
	return out
}

// Fig3a reproduces Figure 3 left: Constant Hash Table, 20% writes.
func Fig3a(sc Scale) []Result {
	w := HashTableWorkload(sc.HashElems, 20)
	return sweep(w, []string{EngHTM, EngStdHy, EngTL2, EngRH1Mix2}, sc)
}

// Fig3b reproduces Figure 3 middle: Constant Sorted List, 5% writes.
func Fig3b(sc Scale) []Result {
	w := SortedListWorkload(sc.ListElems, 5)
	return sweep(w, fig2Engines, sc)
}

// Fig3cPoint is one cell of Figure 3 right: the speedup of RH1 Fast over
// Standard HyTM for a given transaction length and write percentage.
// Speedup is computed on the architectural metric (ops per shared access);
// WallSpeedup on host wall clock.
type Fig3cPoint struct {
	TxLen       int
	WritePct    int
	RH1         Result
	StdHyTM     Result
	Speedup     float64
	WallSpeedup float64
}

// Fig3c reproduces Figure 3 right: the Random Array speedup matrix over
// transaction lengths {400,200,100,40} and write ratios {0,20,50,90} at the
// maximum thread count.
func Fig3c(sc Scale) []Fig3cPoint {
	lengths := []int{400, 200, 100, 40}
	writes := []int{0, 20, 50, 90}
	threads := sc.Threads[len(sc.Threads)-1]
	out := make([]Fig3cPoint, 0, len(lengths)*len(writes))
	for _, l := range lengths {
		for _, wp := range writes {
			w := RandomArrayWorkload(sc.ArrayWords, l, wp)
			rh1 := MustRun(w, EngRH1Fast, sc.cfg(threads))
			std := MustRun(w, EngStdHy, sc.cfg(threads))
			p := Fig3cPoint{TxLen: l, WritePct: wp, RH1: rh1, StdHyTM: std}
			if std.OpsPerKAccess > 0 {
				p.Speedup = rh1.OpsPerKAccess / std.OpsPerKAccess
			}
			if std.Throughput > 0 {
				p.WallSpeedup = rh1.Throughput / std.Throughput
			}
			out = append(out, p)
		}
	}
	return out
}

// ExtClock is the GV6-vs-GV5 ablation (DESIGN.md ext1): RH1 Mixed 100 on
// the RB-Tree at 20% writes under both clock disciplines.
func ExtClock(sc Scale) []Result {
	w := RBTreeWorkload(sc.RBNodes, 20)
	out := make([]Result, 0, 2*len(sc.Threads))
	for _, gv5 := range []bool{false, true} {
		for _, th := range sc.Threads {
			c := sc.cfg(th)
			c.GV5 = gv5
			r := MustRun(w, EngRH1Mix2, c)
			if gv5 {
				r.Engine += " (GV5)"
			} else {
				r.Engine += " (GV6)"
			}
			out = append(out, r)
		}
	}
	return out
}

// ExtCapacityPoint is one row of the capacity-extension experiment.
type ExtCapacityPoint struct {
	TxLen        int
	Result       Result
	FastShare    float64 // fraction of commits on the pure hardware path
	SlowShare    float64 // fraction on the mixed slow path
	RH2Fallbacks uint64
}

// ExtCapacity quantifies the paper's §1.2 claim that the mixed slow path
// extends the feasible transaction length well beyond the hardware limit
// (for the red-black tree the paper estimates 4x; with one stripe version
// covering 8 data words the metadata footprint here is ~8x smaller). The
// hardware footprint is capped at limitLines; transactions of growing
// length first saturate the fast path, then run mostly on the slow path,
// and only fall back to RH2 when even the commit transaction's metadata
// footprint overflows.
func ExtCapacity(sc Scale, limitLines int) []ExtCapacityPoint {
	lengths := []int{16, 32, 64, 128, 256, 512}
	htm := CapacityHTMConfig(limitLines)
	var out []ExtCapacityPoint
	for _, l := range lengths {
		w := RandomArrayWorkload(sc.ArrayWords, l, 10)
		c := sc.cfg(1)
		c.HTMOverride = &htm
		r := MustRun(w, EngRH1Mix2, c)
		commits := float64(r.Stats.Commits())
		p := ExtCapacityPoint{TxLen: l, Result: r, RH2Fallbacks: r.Stats.RH2Fallbacks}
		if commits > 0 {
			p.FastShare = float64(r.Stats.FastCommits) / commits
			p.SlowShare = float64(r.Stats.SlowCommits+r.Stats.ReadOnlyCommits) / commits
		}
		out = append(out, p)
	}
	return out
}

// CapacityHTMConfig returns an HTM configuration capped at limit lines for
// both the total footprint and the write set (capacity experiments).
func CapacityHTMConfig(limit int) rhtm.HTMConfig {
	return rhtm.HTMConfig{MaxFootprintLines: limit, MaxWriteLines: limit}
}

// ExtHybrids compares the full RH1 stack against the other hybrid designs
// discussed in the paper's introduction (DESIGN.md ext3).
func ExtHybrids(sc Scale) []Result {
	w := RBTreeWorkload(sc.RBNodes, 20)
	return sweep(w, []string{EngRH1Mix2, EngStdHy, EngNoRec, EngPhased}, sc)
}
