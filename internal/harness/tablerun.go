package harness

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"rhtm"
	"rhtm/kv"
	"rhtm/obs"
	"rhtm/store"
	"rhtm/table"
)

// The table mixes run the table/ record layer over the same backends as
// the raw KV mixes: "eidx" re-serves YCSB-E's short ordered scans from a
// secondary index (the planner turns each query into a bounded index
// range scan with base-row fetches), and "query" is a planner-driven
// point/range/order-limit mix with upsert churn. Every operation pays
// the record layer's real costs — ordered-codec encoding, write-through
// index maintenance, statistics shards, planner-chosen scans — so the
// architectural metric compares the layered store against the raw one.
// The tables report through their own registry; RunKV merges the
// table.* / index.* counters into Result.Counters next to the DB's.

// tableState carries one run's table handles and their metrics registry.
type tableState struct {
	spec   KVSpec
	reg    *obs.Registry
	tables []*table.Table
	pad    string
}

// tableSchema is the i-th table of the mix: an integer primary key, an
// indexed low-cardinality bucket (IdxSel sets its domain), and a payload
// string sized by ValueBytes.
func tableSchema(i int) table.Schema {
	return table.Schema{
		Name: fmt.Sprintf("kv%d", i),
		Fields: []table.Field{
			{Name: "id", Type: table.TInt64},
			{Name: "bucket", Type: table.TInt64},
			{Name: "pad", Type: table.TString},
		},
		Key:     []string{"id"},
		Indexes: []table.Index{{Name: "by_bucket", Fields: []string{"bucket"}}},
	}
}

// openTables binds the run's tables over db — all reporting through one
// fresh registry — and populates the Records rows through Table.Insert,
// so every row gets its index entry and statistics on the way in.
func openTables(spec KVSpec, db kv.DB) (*tableState, error) {
	ts := &tableState{spec: spec, reg: obs.NewRegistry(),
		pad: strings.Repeat("x", spec.ValueBytes)}
	for i := 0; i < spec.Tables; i++ {
		tbl, err := table.New(db, tableSchema(i), table.WithMetrics(ts.reg))
		if err != nil {
			return nil, err
		}
		ts.tables = append(ts.tables, tbl)
	}
	for i := 0; i < spec.Records; i++ {
		if err := ts.tableFor(i).Insert(ts.row(i)); err != nil {
			return nil, err
		}
	}
	return ts, nil
}

// row materializes the i-th record: the bucket cycles through the
// IdxSel-value domain within the row's table, so every table holds all
// buckets at equal depth.
func (ts *tableState) row(i int) []table.Value {
	return []table.Value{
		table.Int64(int64(i)),
		table.Int64(int64((i / ts.spec.Tables) % ts.spec.IdxSel)),
		table.String(ts.pad),
	}
}

// tableFor places record i (records round-robin over the tables).
func (ts *tableState) tableFor(i int) *table.Table {
	return ts.tables[i%ts.spec.Tables]
}

// tableSizing inflates the spec the backends size their arenas and
// intent slack from: a table row costs more than a raw record — prefixed
// row and index keys, codec overhead, statistics shards — and one row
// transaction holds several write intents at once on the cluster.
func tableSizing(spec KVSpec) KVSpec {
	spec.Records = spec.Records*3 + 64
	spec.ValueBytes += 64
	if spec.CrossKeys < 8 {
		spec.CrossKeys = 8
	}
	return spec
}

// tableStep dispatches one table-mix operation.
func (w *kvWorker) tableStep() error {
	if w.spec.Mix == "eidx" {
		if w.rng.Intn(100) < 95 {
			return w.eidxScan()
		}
		return w.tableInsert()
	}
	switch r := w.rng.Intn(100); {
	case r < 45:
		return w.tablePoint()
	case r < 70:
		return w.tableRange()
	case r < 90:
		return w.tableOrderLimit()
	default:
		return w.tableUpsert()
	}
}

// eidxScan is the index-served YCSB-E scan: a short ordered read of the
// secondary index starting at a drawn bucket. The lower bound, order,
// and limit let the planner bound the index scan at the limit — the
// record-layer analog of mix "e"'s raw range cursor.
func (w *kvWorker) eidxScan() error {
	t := w.tables.tableFor(w.record())
	lo := int64(w.rng.Intn(w.spec.IdxSel))
	rows, err := t.Select(table.Query{
		Conds: []table.Cond{table.Ge("bucket", table.Int64(lo))},
		Order: "bucket",
		Limit: 1 + w.rng.Intn(w.spec.ScanMax),
	})
	if err != nil {
		return err
	}
	if len(rows) == 0 && lo == 0 {
		return fmt.Errorf("index scan from bucket 0 yielded nothing")
	}
	w.shared.scans.Add(1)
	w.shared.scanned.Add(uint64(len(rows)))
	return nil
}

// tableInsert appends one new row past the loaded id space. When the
// arena cannot hold more rows, the insert degrades to an upsert of an
// existing row (counted), keeping the op mix alive — same contract as
// the raw mixes' insert.
func (w *kvWorker) tableInsert() error {
	id := w.spec.Records + int(w.shared.inserts.Add(1)) - 1
	err := w.tables.tableFor(id).Insert(w.tables.row(id))
	if errors.Is(err, kv.ErrArenaFull) {
		w.shared.inserts.Add(-1)
		w.shared.insertFallbacks.Add(1)
		rid := w.record()
		return w.tables.tableFor(rid).Upsert(w.tables.row(rid))
	}
	return err
}

// tablePoint is a planner-served point read: the filter pins the primary
// key, so the plan must be the cost-1 point get.
func (w *kvWorker) tablePoint() error {
	id := w.record()
	rows, err := w.tables.tableFor(id).Select(table.Query{
		Conds: []table.Cond{table.Eq("id", table.Int64(int64(id)))},
	})
	if err != nil {
		return err
	}
	if len(rows) != 1 {
		return fmt.Errorf("point query id=%d yielded %d rows, want 1", id, len(rows))
	}
	w.shared.pointQs.Add(1)
	return nil
}

// tableRange is a bounded bucket-range read: Between on the indexed
// field plus order and limit, which the planner serves from the index
// with the limit bounding the scan.
func (w *kvWorker) tableRange() error {
	lo := int64(w.rng.Intn(w.spec.IdxSel))
	rows, err := w.tables.tableFor(w.record()).Select(table.Query{
		Conds: []table.Cond{table.Between("bucket",
			table.Int64(lo), table.Int64(lo+1+int64(w.rng.Intn(4))))},
		Order: "bucket",
		Limit: 1 + w.rng.Intn(w.spec.ScanMax),
	})
	if err != nil {
		return err
	}
	w.shared.rangeQs.Add(1)
	w.shared.scanned.Add(uint64(len(rows)))
	return nil
}

// tableOrderLimit is the covering top-K read: order by the indexed
// bucket, projecting only fields the index entries (plus the primary
// key) carry, so the planner answers from the index alone with no
// base-row fetches.
func (w *kvWorker) tableOrderLimit() error {
	rows, err := w.tables.tableFor(w.record()).Select(table.Query{
		Order:  "bucket",
		Limit:  1 + w.rng.Intn(w.spec.ScanMax),
		Fields: []string{"id", "bucket"},
	})
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("order-limit query yielded nothing")
	}
	w.shared.orderQs.Add(1)
	w.shared.scanned.Add(uint64(len(rows)))
	return nil
}

// tableUpsert rewrites an existing row with a freshly drawn bucket: the
// index entry moves and the cardinality statistics adjust inside the
// row's own transaction.
func (w *kvWorker) tableUpsert() error {
	id := w.record()
	row := []table.Value{
		table.Int64(int64(id)),
		table.Int64(int64(w.rng.Intn(w.spec.IdxSel))),
		table.String(w.tables.pad),
	}
	if err := w.tables.tableFor(id).Upsert(row); err != nil {
		return err
	}
	w.shared.updates.Add(1)
	return nil
}

// --- the index-lookup experiment ---

// IndexLookup measures what the secondary index buys on a selective
// query: one store, one table of rows rows, and two schema bindings of
// the same keyspace — one declaring by_bucket, one not — so the planner
// serves the identical bucket-equality query as an index scan on the
// first handle and a full table scan on the second. Returns one Result
// per mode ("index" then "fullscan"); throughput and the architectural
// metric both carry the gap.
func IndexLookup(engineName string, rows, queries int) ([]Result, error) {
	if rows <= 0 || queries <= 0 {
		return nil, fmt.Errorf("harness: IndexLookup needs positive rows and queries")
	}
	spec := KVSpec{Mix: "query", Records: rows, ValueBytes: 64, Shards: 8}.withDefaults()
	sizing := tableSizing(spec)
	perRecord := store.RecordFootprintWords(len(ycsbKey(0)), sizing.ValueBytes)
	arenaWords := (sizing.Records/spec.Shards+1)*perRecord*2 + 4096
	s, err := rhtm.NewSystem(rhtm.DefaultConfig(spec.Shards*(arenaWords+store.DefaultLogWords+64) + 8192))
	if err != nil {
		return nil, err
	}
	eng, err := Build(s, engineName, 0)
	if err != nil {
		return nil, err
	}
	sh := store.NewSharded(s, spec.Shards, store.Options{ArenaWords: arenaWords})
	db := kv.NewLocal(eng, sh)

	indexed, err := openTables(spec, db)
	if err != nil {
		return nil, err
	}
	bare := tableSchema(0)
	bare.Indexes = nil
	full, err := table.New(db, bare, table.WithMetrics(indexed.reg))
	if err != nil {
		return nil, err
	}

	accesses := func() uint64 {
		st := eng.Snapshot()
		return st.Reads + st.Writes + st.MetadataReads + st.MetadataWrites
	}
	run := func(mode string, tbl *table.Table) (Result, error) {
		q := table.Query{Conds: []table.Cond{table.Eq("bucket", table.Int64(0))}}
		plan, err := tbl.Explain(q)
		if err != nil {
			return Result{}, err
		}
		before := accesses()
		start := time.Now()
		for i := 0; i < queries; i++ {
			q.Conds[0] = table.Eq("bucket", table.Int64(int64(i%spec.IdxSel)))
			if rs, err := tbl.Select(q); err != nil {
				return Result{}, err
			} else if len(rs) == 0 {
				return Result{}, fmt.Errorf("harness: IndexLookup %s: bucket %d empty", mode, i%spec.IdxSel)
			}
		}
		elapsed := time.Since(start)
		res := Result{
			Workload: "index-lookup/" + mode,
			Engine:   eng.Name(),
			Threads:  1,
			Ops:      uint64(queries),
			Elapsed:  elapsed,
			Stats:    eng.Snapshot(),
			Accesses: accesses() - before,
			Notes:    "plan: " + plan,
		}
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
		res.OpsPerKAccess = 1000 * float64(res.Ops) / float64(res.Accesses)
		return res, nil
	}
	idxRes, err := run("index", indexed.tables[0])
	if err != nil {
		return nil, err
	}
	fullRes, err := run("fullscan", full)
	if err != nil {
		return nil, err
	}
	for _, r := range []*Result{&idxRes, &fullRes} {
		r.Counters = map[string]int64{}
		for k, v := range indexed.reg.Snapshot().Flatten() {
			r.Counters[k] = v
		}
	}
	return []Result{idxRes, fullRes}, sh.Validate()
}
