package harness

import (
	"math"
	"math/rand"
	"testing"
)

// TestZipfianStatistics checks the generator against the closed-form
// distribution: every draw in range, the head ranks' empirical frequencies
// within tolerance of 1/((rank+1)^theta * zeta(n)), and clear skew (the
// most popular rank far above the uniform rate).
func TestZipfianStatistics(t *testing.T) {
	const n = 1000
	const draws = 200_000
	z := newZipfian(n, 0.99)
	rng := rand.New(rand.NewSource(11))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		r := z.next(rng)
		if r < 0 || r >= n {
			t.Fatalf("draw %d out of range [0,%d)", r, n)
		}
		counts[r]++
	}
	// Ranks 0 and 1 are drawn exactly per the pmf by Gray's algorithm; the
	// deeper ranks come from a continuous inversion and carry a known
	// approximation error, so they get a looser band.
	for rank := 0; rank < 10; rank++ {
		want := z.p(rank)
		got := float64(counts[rank]) / draws
		tol := 0.40
		if rank < 2 {
			tol = 0.10
		}
		if math.Abs(got-want) > tol*want {
			t.Errorf("rank %d: frequency %.5f, want %.5f ±%.0f%%", rank, got, want, tol*100)
		}
	}
	// Skew: rank 0 must dwarf the uniform rate 1/n.
	if f0 := float64(counts[0]) / draws; f0 < 5.0/n {
		t.Errorf("rank 0 frequency %.5f shows no zipfian skew (uniform would be %.5f)", f0, 1.0/n)
	}
	// The tail must still be covered: a majority of ranks drawn at least once.
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero < n/2 {
		t.Errorf("only %d of %d ranks ever drawn", nonzero, n)
	}
}

// TestZipfianUniformDiffer ensures the two distributions are wired up
// distinctly in the workload: zipfian concentrates mass, uniform does not.
func TestZipfianUniformDiffer(t *testing.T) {
	const n = 500
	const draws = 50_000
	z := newZipfian(n, 0.99)
	rng := rand.New(rand.NewSource(5))
	zc := make([]int, n)
	uc := make([]int, n)
	for i := 0; i < draws; i++ {
		zc[z.next(rng)]++
		uc[rng.Intn(n)]++
	}
	zmax, umax := 0, 0
	for i := 0; i < n; i++ {
		if zc[i] > zmax {
			zmax = zc[i]
		}
		if uc[i] > umax {
			umax = uc[i]
		}
	}
	if zmax < 3*umax {
		t.Errorf("zipfian max count %d not clearly above uniform max %d", zmax, umax)
	}
}

// TestScrambleSpreads: hashing consecutive ranks must spread them (no two
// of the first 100 ranks may collide modulo a small key space).
func TestScrambleSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 100; i++ {
		seen[scramble(i)%1024] = true
	}
	if len(seen) < 90 {
		t.Errorf("scramble mapped 100 ranks onto only %d of 1024 slots", len(seen))
	}
}

// TestYCSBWorkloadRuns drives each mix and both distributions through real
// engines at small scale and sanity-checks the results.
func TestYCSBWorkloadRuns(t *testing.T) {
	for _, mix := range []string{"a", "b", "c"} {
		for _, dist := range []string{DistUniform, DistZipfian} {
			spec := YCSBSpec{Mix: mix, Records: 256, ValueBytes: 32, Dist: dist, Shards: 4}
			for _, eng := range []string{EngRH1Mix2, EngTL2, EngStdHy} {
				r := MustRun(YCSBWorkload(spec), eng, RunConfig{Threads: 2, OpsPerThread: 40, Seed: 1})
				if r.Ops != 80 {
					t.Fatalf("%s/%s/%s: ops = %d, want 80", mix, dist, eng, r.Ops)
				}
				if r.Stats.Commits() < r.Ops {
					t.Fatalf("%s/%s/%s: commits %d < ops %d", mix, dist, eng, r.Stats.Commits(), r.Ops)
				}
				if mix == "c" && r.Stats.Writes > 0 && dist == DistUniform {
					// Read-only mix: no data writes from the workload itself.
					// (Engines may still write metadata; Stats.Writes counts
					// transactional data stores.)
					t.Fatalf("%s/%s/%s: read-only mix performed %d data writes", mix, dist, eng, r.Stats.Writes)
				}
			}
		}
	}
}

// TestYCSBRejectsBadSpecs documents that invalid specs fail at workload
// construction, not later inside Build.
func TestYCSBRejectsBadSpecs(t *testing.T) {
	cases := map[string]YCSBSpec{
		"mix":   {Mix: "z"},
		"dist":  {Mix: "a", Dist: "banana"},
		"theta": {Mix: "a", Dist: DistZipfian, Theta: 1.5},
	}
	for name, spec := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("YCSBWorkload accepted bad %s: %+v", name, spec)
				}
			}()
			YCSBWorkload(spec)
		}()
	}
}
