package harness

import (
	"encoding/binary"
	"math"
	"math/rand"
	"regexp"
	"strconv"
	"testing"

	"rhtm"
	"rhtm/containers"
)

// TestZipfianStatistics checks the generator against the closed-form
// distribution: every draw in range, the head ranks' empirical frequencies
// within tolerance of 1/((rank+1)^theta * zeta(n)), and clear skew (the
// most popular rank far above the uniform rate).
func TestZipfianStatistics(t *testing.T) {
	const n = 1000
	const draws = 200_000
	z := newZipfian(n, 0.99)
	rng := rand.New(rand.NewSource(11))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		r := z.next(rng)
		if r < 0 || r >= n {
			t.Fatalf("draw %d out of range [0,%d)", r, n)
		}
		counts[r]++
	}
	// Ranks 0 and 1 are drawn exactly per the pmf by Gray's algorithm; the
	// deeper ranks come from a continuous inversion and carry a known
	// approximation error, so they get a looser band.
	for rank := 0; rank < 10; rank++ {
		want := z.p(rank)
		got := float64(counts[rank]) / draws
		tol := 0.40
		if rank < 2 {
			tol = 0.10
		}
		if math.Abs(got-want) > tol*want {
			t.Errorf("rank %d: frequency %.5f, want %.5f ±%.0f%%", rank, got, want, tol*100)
		}
	}
	// Skew: rank 0 must dwarf the uniform rate 1/n.
	if f0 := float64(counts[0]) / draws; f0 < 5.0/n {
		t.Errorf("rank 0 frequency %.5f shows no zipfian skew (uniform would be %.5f)", f0, 1.0/n)
	}
	// The tail must still be covered: a majority of ranks drawn at least once.
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero < n/2 {
		t.Errorf("only %d of %d ranks ever drawn", nonzero, n)
	}
}

// TestZipfianUniformDiffer ensures the two distributions are wired up
// distinctly in the workload: zipfian concentrates mass, uniform does not.
func TestZipfianUniformDiffer(t *testing.T) {
	const n = 500
	const draws = 50_000
	z := newZipfian(n, 0.99)
	rng := rand.New(rand.NewSource(5))
	zc := make([]int, n)
	uc := make([]int, n)
	for i := 0; i < draws; i++ {
		zc[z.next(rng)]++
		uc[rng.Intn(n)]++
	}
	zmax, umax := 0, 0
	for i := 0; i < n; i++ {
		if zc[i] > zmax {
			zmax = zc[i]
		}
		if uc[i] > umax {
			umax = uc[i]
		}
	}
	if zmax < 3*umax {
		t.Errorf("zipfian max count %d not clearly above uniform max %d", zmax, umax)
	}
}

// TestScrambleSpreads: hashing consecutive ranks must spread them (no two
// of the first 100 ranks may collide modulo a small key space).
func TestScrambleSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 100; i++ {
		seen[scramble(i)%1024] = true
	}
	if len(seen) < 90 {
		t.Errorf("scramble mapped 100 ranks onto only %d of 1024 slots", len(seen))
	}
}

// TestYCSBFGenerator checks the F mix's generated ops executed
// sequentially (no engine) through a recording Tx: roughly half the ops
// must be updates, and every update must load record state before storing
// — the read-modify-write property that distinguishes F from A's blind
// writes.
func TestYCSBFGenerator(t *testing.T) {
	spec := YCSBSpec{Mix: "f", Records: 64, ValueBytes: 16, Dist: DistUniform, Shards: 2}
	w := YCSBWorkload(spec)
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(w.DataWords))
	factory := w.Build(s)
	rec := &recordingTx{Tx: containers.SetupTx(s)}
	gen := factory(0, rand.New(rand.NewSource(99)))

	const ops = 400
	updates := 0
	for i := 0; i < ops; i++ {
		rec.loads, rec.stores = 0, 0
		op := gen()
		if err := op(rec); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if rec.stores > 0 {
			updates++
			if rec.loads == 0 {
				t.Fatalf("op %d: F update stored without reading (not an RMW)", i)
			}
		} else if rec.loads == 0 {
			t.Fatalf("op %d: op neither read nor wrote", i)
		}
	}
	// ~50% updates: allow a generous band around the binomial mean.
	if updates < ops*30/100 || updates > ops*70/100 {
		t.Errorf("updates = %d of %d, outside the 50%% band", updates, ops)
	}
}

// recordingTx counts data loads and stores flowing through a Tx.
type recordingTx struct {
	Tx     rhtm.Tx
	loads  int
	stores int
}

func (r *recordingTx) Load(a rhtm.Addr) uint64 {
	r.loads++
	return r.Tx.Load(a)
}

func (r *recordingTx) Store(a rhtm.Addr, v uint64) {
	r.stores++
	r.Tx.Store(a, v)
}

func (r *recordingTx) Unsupported() { r.Tx.Unsupported() }

// TestYCSBFIncrements runs the F mix through a real engine under
// concurrency and verifies the RMW semantics end to end: the total of all
// leading counters (reported by the workload's Observe hook as "fsum=")
// grows by exactly the number of update operations — each increments one
// record by one, atomically, so a lost update shows as a shortfall. Both
// the initial counter total and the update count are reproduced from the
// workload's fixed seeds.
func TestYCSBFIncrements(t *testing.T) {
	const records, valueBytes = 128, 16
	const threads, opsPerThread = 4, 100
	const seed = 5
	spec := YCSBSpec{Mix: "f", Records: records, ValueBytes: valueBytes, Dist: DistUniform, Shards: 2}

	// Initial counter total: replay the loader (seed fixed in YCSBWorkload).
	loadRng := rand.New(rand.NewSource(loaderSeed))
	val := make([]byte, valueBytes)
	var initial uint64
	for i := 0; i < records; i++ {
		loadRng.Read(val)
		initial += binary.LittleEndian.Uint64(val)
	}
	// Update count: replay each thread's generator draws (record, then
	// read-or-update; the F mix consumes no further randomness per op).
	updates := uint64(0)
	for th := 0; th < threads; th++ {
		rng := rand.New(rand.NewSource(seed + int64(th)*7919))
		for op := 0; op < opsPerThread; op++ {
			_ = rng.Intn(records)
			if rng.Intn(100) >= 50 {
				updates++
			}
		}
	}

	r := MustRun(YCSBWorkload(spec), EngRH1Mix2,
		RunConfig{Threads: threads, OpsPerThread: opsPerThread, Seed: seed})
	if r.Ops != threads*opsPerThread {
		t.Fatalf("ops = %d, want %d", r.Ops, threads*opsPerThread)
	}
	m := regexp.MustCompile(`fsum=(\d+)`).FindStringSubmatch(r.Notes)
	if m == nil {
		t.Fatalf("notes missing fsum: %q", r.Notes)
	}
	final, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := final - initial; got != updates {
		t.Fatalf("counter total grew by %d, want %d updates (lost or phantom RMWs)", got, updates)
	}
}

// TestYCSBWorkloadRuns drives each mix and both distributions through real
// engines at small scale and sanity-checks the results.
func TestYCSBWorkloadRuns(t *testing.T) {
	for _, mix := range []string{"a", "b", "c", "f"} {
		for _, dist := range []string{DistUniform, DistZipfian} {
			spec := YCSBSpec{Mix: mix, Records: 256, ValueBytes: 32, Dist: dist, Shards: 4}
			for _, eng := range []string{EngRH1Mix2, EngTL2, EngStdHy} {
				r := MustRun(YCSBWorkload(spec), eng, RunConfig{Threads: 2, OpsPerThread: 40, Seed: 1})
				if r.Ops != 80 {
					t.Fatalf("%s/%s/%s: ops = %d, want 80", mix, dist, eng, r.Ops)
				}
				if r.Stats.Commits() < r.Ops {
					t.Fatalf("%s/%s/%s: commits %d < ops %d", mix, dist, eng, r.Stats.Commits(), r.Ops)
				}
				if mix == "c" && r.Stats.Writes > 0 && dist == DistUniform {
					// Read-only mix: no data writes from the workload itself.
					// (Engines may still write metadata; Stats.Writes counts
					// transactional data stores.)
					t.Fatalf("%s/%s/%s: read-only mix performed %d data writes", mix, dist, eng, r.Stats.Writes)
				}
			}
		}
	}
}

// TestYCSBRejectsBadSpecs documents that invalid specs fail at workload
// construction, not later inside Build.
func TestYCSBRejectsBadSpecs(t *testing.T) {
	cases := map[string]YCSBSpec{
		"mix":   {Mix: "z"},
		"dist":  {Mix: "a", Dist: "banana"},
		"theta": {Mix: "a", Dist: DistZipfian, Theta: 1.5},
	}
	for name, spec := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("YCSBWorkload accepted bad %s: %+v", name, spec)
				}
			}()
			YCSBWorkload(spec)
		}()
	}
}
