package harness

import (
	"encoding/binary"
	"math"
	"math/rand"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestZipfianStatistics checks the generator against the closed-form
// distribution: every draw in range, the head ranks' empirical frequencies
// within tolerance of 1/((rank+1)^theta * zeta(n)), and clear skew (the
// most popular rank far above the uniform rate).
func TestZipfianStatistics(t *testing.T) {
	const n = 1000
	const draws = 200_000
	z := newZipfian(n, 0.99)
	rng := rand.New(rand.NewSource(11))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		r := z.next(rng)
		if r < 0 || r >= n {
			t.Fatalf("draw %d out of range [0,%d)", r, n)
		}
		counts[r]++
	}
	// Ranks 0 and 1 are drawn exactly per the pmf by Gray's algorithm; the
	// deeper ranks come from a continuous inversion and carry a known
	// approximation error, so they get a looser band.
	for rank := 0; rank < 10; rank++ {
		want := z.p(rank)
		got := float64(counts[rank]) / draws
		tol := 0.40
		if rank < 2 {
			tol = 0.10
		}
		if math.Abs(got-want) > tol*want {
			t.Errorf("rank %d: frequency %.5f, want %.5f ±%.0f%%", rank, got, want, tol*100)
		}
	}
	// Skew: rank 0 must dwarf the uniform rate 1/n.
	if f0 := float64(counts[0]) / draws; f0 < 5.0/n {
		t.Errorf("rank 0 frequency %.5f shows no zipfian skew (uniform would be %.5f)", f0, 1.0/n)
	}
	// The tail must still be covered: a majority of ranks drawn at least once.
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero < n/2 {
		t.Errorf("only %d of %d ranks ever drawn", nonzero, n)
	}
}

// TestZipfianUniformDiffer ensures the two distributions are wired up
// distinctly in the workload: zipfian concentrates mass, uniform does not.
func TestZipfianUniformDiffer(t *testing.T) {
	const n = 500
	const draws = 50_000
	z := newZipfian(n, 0.99)
	rng := rand.New(rand.NewSource(5))
	zc := make([]int, n)
	uc := make([]int, n)
	for i := 0; i < draws; i++ {
		zc[z.next(rng)]++
		uc[rng.Intn(n)]++
	}
	zmax, umax := 0, 0
	for i := 0; i < n; i++ {
		if zc[i] > zmax {
			zmax = zc[i]
		}
		if uc[i] > umax {
			umax = uc[i]
		}
	}
	if zmax < 3*umax {
		t.Errorf("zipfian max count %d not clearly above uniform max %d", zmax, umax)
	}
}

// TestScrambleSpreads: hashing consecutive ranks must spread them (no two
// of the first 100 ranks may collide modulo a small key space).
func TestScrambleSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 100; i++ {
		seen[scramble(i)%1024] = true
	}
	if len(seen) < 90 {
		t.Errorf("scramble mapped 100 ranks onto only %d of 1024 slots", len(seen))
	}
}

// noteValue extracts an integer "name=N" observation from Result.Notes.
func noteValue(t *testing.T, notes, name string) uint64 {
	t.Helper()
	m := regexp.MustCompile(name + `=(\d+)`).FindStringSubmatch(notes)
	if m == nil {
		t.Fatalf("notes missing %s=: %q", name, notes)
	}
	v, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestYCSBFIncrements runs the F mix through a real engine under
// concurrency and verifies the RMW semantics end to end: the total of all
// leading counters (reported as "fsum=") grows by exactly the number of
// committed updates (reported as "updates="): each increments one record
// by one, atomically, so a lost update shows as a shortfall. The initial
// counter total is reproduced from the loader's fixed seed.
func TestYCSBFIncrements(t *testing.T) {
	const records, valueBytes = 128, 16
	spec := KVSpec{Mix: "f", Records: records, ValueBytes: valueBytes, Dist: DistUniform, Shards: 2}

	// Initial counter total: replay the loader (seed fixed in RunKV).
	loadRng := rand.New(rand.NewSource(loaderSeed))
	val := make([]byte, valueBytes)
	var initial uint64
	for i := 0; i < records; i++ {
		loadRng.Read(val)
		initial += binary.LittleEndian.Uint64(val)
	}

	r := MustRunKV(spec, EngRH1Mix2, RunConfig{Threads: 4, OpsPerThread: 100, Seed: 5})
	if r.Ops != 400 {
		t.Fatalf("ops = %d, want 400", r.Ops)
	}
	final := noteValue(t, r.Notes, "fsum")
	updates := noteValue(t, r.Notes, "updates")
	if updates == 0 {
		t.Fatal("F run committed no updates")
	}
	if got := final - initial; got != updates {
		t.Fatalf("counter total grew by %d, want %d updates (lost or phantom RMWs)", got, updates)
	}
}

// TestKVWorkloadRuns drives each mix and both distributions through real
// engines at small scale and sanity-checks the results.
func TestKVWorkloadRuns(t *testing.T) {
	for _, mix := range []string{"a", "b", "c", "d", "e", "f"} {
		for _, dist := range []string{DistUniform, DistZipfian} {
			spec := KVSpec{Mix: mix, Records: 256, ValueBytes: 32, Dist: dist, Shards: 4, ScanMax: 20}
			for _, eng := range []string{EngRH1Mix2, EngTL2, EngStdHy} {
				r := MustRunKV(spec, eng, RunConfig{Threads: 2, OpsPerThread: 40, Seed: 1})
				if r.Ops != 80 {
					t.Fatalf("%s/%s/%s: ops = %d, want 80", mix, dist, eng, r.Ops)
				}
				if r.Stats.Commits() < r.Ops {
					t.Fatalf("%s/%s/%s: commits %d < ops %d", mix, dist, eng, r.Stats.Commits(), r.Ops)
				}
				if mix == "c" && dist == DistUniform && r.Stats.Writes > 0 {
					// Read-only mix: no data writes from the workload itself.
					t.Fatalf("%s/%s/%s: read-only mix performed %d data writes", mix, dist, eng, r.Stats.Writes)
				}
				if mix == "e" {
					if scans := noteValue(t, r.Notes, "scans"); scans == 0 {
						t.Fatalf("%s/%s/%s: E mix ran no scans: %q", mix, dist, eng, r.Notes)
					}
					if scanned := noteValue(t, r.Notes, "scanned"); scanned == 0 {
						t.Fatalf("%s/%s/%s: E mix scanned no entries", mix, dist, eng)
					}
				}
				if mix == "d" || mix == "e" {
					if inserts := noteValue(t, r.Notes, "inserts"); inserts == 0 {
						t.Fatalf("%s/%s/%s: %s mix inserted nothing: %q", mix, dist, eng, mix, r.Notes)
					}
				}
			}
		}
	}
}

// TestYCSBDReadsSkewLatest: the D mix's reads must concentrate on recently
// inserted records. With inserts disabled by a tiny op budget this cannot
// be observed directly, so run a larger count-based budget and require
// that inserts happened and reads succeeded (the latest-draw path).
func TestYCSBDReadsSkewLatest(t *testing.T) {
	spec := KVSpec{Mix: "d", Records: 128, ValueBytes: 16, Shards: 2}
	r := MustRunKV(spec, EngTL2, RunConfig{Threads: 2, OpsPerThread: 200, Seed: 3})
	inserts := noteValue(t, r.Notes, "inserts")
	if inserts == 0 {
		t.Fatalf("D run inserted nothing: %q", r.Notes)
	}
	if r.Ops != 400 {
		t.Fatalf("ops = %d, want 400", r.Ops)
	}
}

// TestKVBatchedRuns: BatchSize groups single-key ops into Batch
// transactions; the run must report flushes and commit fewer transactions
// per operation than the unbatched run (the amortization the batching
// item exists for).
func TestKVBatchedRuns(t *testing.T) {
	// One thread isolates the per-transaction overhead the batch
	// amortizes; under contention the larger footprint trades some of the
	// gain back in aborts (the bench sweep quantifies that). The hardware
	// fast path is where the claim is crisp: its only per-transaction
	// metadata is the speculative clock read, so accesses fall strictly
	// with batch size. (On TL2 the picture inverts for read-heavy mixes:
	// single gets commit read-only without validation, but batched with a
	// put the whole read set re-validates — see EXPERIMENTS.md.)
	base := KVSpec{Mix: "a", Records: 256, ValueBytes: 32, Dist: DistUniform, Shards: 4}
	cfg := RunConfig{Threads: 1, OpsPerThread: 240, Seed: 1}
	single := MustRunKV(base, EngRH1Mix2, cfg)

	batched := base
	batched.BatchSize = 16
	b := MustRunKV(batched, EngRH1Mix2, cfg)
	if b.Ops != single.Ops {
		t.Fatalf("ops differ: %d vs %d", b.Ops, single.Ops)
	}
	if noteValue(t, b.Notes, "batches") == 0 {
		t.Fatalf("batched run flushed no batches: %q", b.Notes)
	}
	if b.Accesses >= single.Accesses {
		t.Fatalf("batch=16 cost %d accesses, unbatched %d: no amortization", b.Accesses, single.Accesses)
	}
	if !strings.Contains(b.Workload, "batch=16") {
		t.Fatalf("batched workload name %q missing batch size", b.Workload)
	}
}

// TestKVReplicatedRun: Replicas attaches WAL-shipping followers and routes
// the mix's reads to them; the run must serve reads from replicas, report
// the harness.follower_* counters, and merge the repl.* schema (applied
// watermarks, lag, promotions) into the structured counter map.
func TestKVReplicatedRun(t *testing.T) {
	spec := KVSpec{Mix: "b", Records: 256, ValueBytes: 32, Dist: DistUniform,
		Shards: 2, WAL: true, Replicas: 2, Staleness: 1 << 20}
	r := MustRunKV(spec, EngTL2, RunConfig{Threads: 2, OpsPerThread: 200, Seed: 1})
	if r.Ops != 400 {
		t.Fatalf("ops = %d, want 400", r.Ops)
	}
	if !strings.Contains(r.Workload, "repl=2") {
		t.Fatalf("workload name %q missing replica count", r.Workload)
	}
	if got := r.Counters["harness.follower_reads"]; got == 0 {
		t.Fatalf("no reads served by replicas: %q", r.Notes)
	}
	// The drained run's repl.* gauges: both replicas fully applied, no
	// promotions or fencing, and a non-empty apply-batch histogram.
	if lag := r.Counters["repl.lag_frames"]; lag != 0 {
		t.Fatalf("drained run reports lag_frames = %d", lag)
	}
	if r.Counters["repl.promotions"] != 0 || r.Counters["repl.fenced_frames"] != 0 {
		t.Fatalf("steady-state run promoted or fenced: %v", r.Counters)
	}
	if r.Counters["repl.apply_batch.count"] == 0 {
		t.Fatal("apply-batch histogram empty")
	}
	for _, replica := range []string{"replica-0", "replica-1"} {
		name := "repl.applied_lsn{replica=" + replica + ",stream=wal}"
		if r.Counters[name] == 0 {
			t.Fatalf("%s missing or zero in counters", name)
		}
	}
	// The critical path is the primary: offloaded reads must make the run
	// cheaper per primary access than per fleet access.
	if r.OpsPerKInterval <= r.OpsPerKAccess {
		t.Fatalf("ops/kinterval %.1f <= ops/kaccess %.1f: reads not offloaded",
			r.OpsPerKInterval, r.OpsPerKAccess)
	}
}

// TestKVRejectsBadSpecs documents that invalid specs fail with a clean
// error from RunKV (the old workload constructors panicked instead).
func TestKVRejectsBadSpecs(t *testing.T) {
	cases := map[string]KVSpec{
		"mix":       {Mix: "z"},
		"dist":      {Mix: "a", Dist: "banana"},
		"theta":     {Mix: "a", Dist: DistZipfian, Theta: 1.5},
		"crosspct":  {Mix: "a", CrossPct: 140},
		"crosskeys": {Mix: "a", Records: 8, CrossKeys: 6},
		"vbytes":    {Mix: "f", ValueBytes: 4},
		"batchmix":  {Mix: "f", BatchSize: 8},
		"backend":   {Mix: "a", Backend: "paper"},
		"systems":   {Mix: "a", Backend: BackendStore, Systems: 3},
		"replicas":  {Mix: "b", Replicas: 2},
		"staleness": {Mix: "b", WAL: true, Staleness: 8},
		"replnet":   {Mix: "b", WAL: true, Replicas: 1, Net: true},
		"replclust": {Mix: "b", WAL: true, Replicas: 1, Backend: BackendCluster, Systems: 2},
	}
	for name, spec := range cases {
		if _, err := RunKV(spec, EngTL2, RunConfig{Threads: 1, OpsPerThread: 1}); err == nil {
			t.Errorf("RunKV accepted bad %s: %+v", name, spec)
		}
	}
}
