package harness

import (
	"fmt"
	"io"
	"time"

	"rhtm"
	"rhtm/kv"
	"rhtm/store"
	"rhtm/wal"
)

// The recovery experiment: how replay time scales with log size, and what
// a mid-run checkpoint buys. Each point writes a transaction stream
// through a durable Local DB (cycling over a bounded key set, so state
// stays fixed while the log grows), crashes at the end of the log, and
// times a cold open — scan, replay, writer bring-up — of a fresh System
// over the crashed image.

// RecoveryPoint is one measured recovery.
type RecoveryPoint struct {
	// Ops is the number of logged transactions; Checkpoint whether one was
	// written at the midpoint.
	Ops        int
	Checkpoint bool
	// LogBytes is the crashed log's size; ReplayedTxns the committed
	// groups the recovery scan yielded (post-checkpoint suffix).
	LogBytes     uint64
	ReplayedTxns int
	// OpenTime is the cold-open wall time; Keys the recovered live keys.
	OpenTime time.Duration
	Keys     int
}

// recoveryKeys bounds the key set a recovery point cycles over.
const recoveryKeys = 512

// MustRecoveryPoint measures one (ops, checkpoint) recovery point.
func MustRecoveryPoint(ops int, valueBytes int, checkpoint bool) RecoveryPoint {
	build := func(stg *wal.MemStorage) (*kv.Local, *store.Sharded) {
		perRecord := store.RecordFootprintWords(len(ycsbKey(0)), valueBytes)
		arenaWords := recoveryKeys*perRecord*2/4 + 4096
		s := rhtm.MustNewSystem(rhtm.DefaultConfig(4*(arenaWords+store.DefaultLogWords+64) + 8192))
		eng, err := Build(s, EngTL2, 0)
		if err != nil {
			panic(err)
		}
		sh := store.NewSharded(s, 4, store.Options{ArenaWords: arenaWords})
		dev, err := stg.Device("wal")
		if err != nil {
			panic(err)
		}
		db, err := kv.OpenLocal(eng, sh, dev, kv.WithSyncEvery(64))
		if err != nil {
			panic(err)
		}
		return db, sh
	}
	stg := wal.NewMemStorage()
	db, _ := build(stg)
	val := make([]byte, valueBytes)
	for i := 0; i < ops; i++ {
		val[0] = byte(i)
		if err := db.Put(ycsbKey(i%recoveryKeys), val); err != nil {
			panic(fmt.Sprintf("harness: recovery populate: %v", err))
		}
		if checkpoint && i == ops/2 {
			if err := db.Checkpoint(); err != nil {
				panic(fmt.Sprintf("harness: recovery checkpoint: %v", err))
			}
		}
	}
	img := stg.CrashImage(stg.Appended())
	dev, err := img.Device("wal")
	if err != nil {
		panic(err)
	}
	data, err := dev.Contents()
	if err != nil {
		panic(err)
	}
	sr := wal.Scan(data)

	start := time.Now()
	db2, sh2 := build(img)
	open := time.Since(start)

	keys := 0
	it := db2.Scan(nil, nil, 0)
	for it.Next() {
		keys++
	}
	if err := it.Err(); err != nil {
		panic(err)
	}
	if err := sh2.Validate(); err != nil {
		panic(fmt.Sprintf("harness: recovered store invalid: %v", err))
	}
	return RecoveryPoint{
		Ops:          ops,
		Checkpoint:   checkpoint,
		LogBytes:     uint64(len(data)),
		ReplayedTxns: len(sr.Txns),
		OpenTime:     open,
		Keys:         keys,
	}
}

// RecoveryExperiment sweeps log sizes with and without a midpoint
// checkpoint.
func RecoveryExperiment(opsList []int, valueBytes int) []RecoveryPoint {
	var out []RecoveryPoint
	for _, ops := range opsList {
		for _, ckpt := range []bool{false, true} {
			out = append(out, MustRecoveryPoint(ops, valueBytes, ckpt))
		}
	}
	return out
}

// PrintRecovery renders the recovery sweep.
func PrintRecovery(w io.Writer, points []RecoveryPoint) {
	fmt.Fprintf(w, "# Recovery: log size vs cold-open replay time (TL2, %d-key working set, sync every 64)\n", recoveryKeys)
	fmt.Fprintf(w, "%10s  %10s  %12s  %14s  %12s  %6s\n",
		"ops", "checkpoint", "log bytes", "replayed txns", "open time", "keys")
	for _, p := range points {
		fmt.Fprintf(w, "%10d  %10v  %12d  %14d  %12s  %6d\n",
			p.Ops, p.Checkpoint, p.LogBytes, p.ReplayedTxns,
			p.OpenTime.Round(10*time.Microsecond), p.Keys)
	}
}

// RecoveryResults adapts the sweep to Result rows for the JSON trajectory:
// Ops counts logged transactions, Elapsed is the cold-open time, Notes
// carries the log size and replayed-suffix length.
func RecoveryResults(points []RecoveryPoint) []Result {
	out := make([]Result, len(points))
	for i, p := range points {
		name := fmt.Sprintf("recovery/ops=%d", p.Ops)
		if p.Checkpoint {
			name += "/ckpt"
		}
		out[i] = Result{
			Workload: name,
			Engine:   EngTL2,
			Threads:  1,
			Ops:      uint64(p.Ops),
			Elapsed:  p.OpenTime,
			Notes: fmt.Sprintf("log-bytes=%d replayed-txns=%d keys=%d",
				p.LogBytes, p.ReplayedTxns, p.Keys),
		}
	}
	return out
}
