package harness

import "math"

// EstimateAbortPct reproduces the paper's §3.1 emulation methodology: "We
// estimate the expected abort ratio for a given execution by first executing
// with the usual TL2 STM implementation. Then, we force the same abort ratio
// for the hybrid execution by aborting HTM transactions when they arrive at
// the commit."
//
// It runs the workload under TL2 with the given configuration and returns
// the observed abort percentage (aborted attempts per total attempts,
// rounded), suitable for RunConfig.InjectPct on the hardware engines.
func EstimateAbortPct(w Workload, cfg RunConfig) (int, error) {
	cfg.InjectPct = 0
	cfg.Breakdown = false
	r, err := Run(w, EngTL2, cfg)
	if err != nil {
		return 0, err
	}
	commits := float64(r.Stats.Commits())
	aborts := float64(r.Stats.Aborts())
	if commits+aborts == 0 {
		return 0, nil
	}
	return int(math.Round(100 * aborts / (commits + aborts))), nil
}
