package harness

import (
	"strings"
	"testing"
	"time"
)

func TestBuildAllEngines(t *testing.T) {
	for _, name := range AllEngines() {
		w := RBTreeWorkload(64, 20)
		r, err := Run(w, name, RunConfig{Threads: 1, OpsPerThread: 10, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Ops != 10 {
			t.Fatalf("%s: ops = %d, want 10", name, r.Ops)
		}
		if r.Stats.Commits() < 10 {
			t.Fatalf("%s: commits = %d, want >= 10", name, r.Stats.Commits())
		}
	}
}

func TestBuildUnknownEngine(t *testing.T) {
	if _, err := Run(RBTreeWorkload(64, 20), "nope",
		RunConfig{Threads: 1, OpsPerThread: 1}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestRunValidatesConfig(t *testing.T) {
	w := RBTreeWorkload(64, 0)
	if _, err := Run(w, EngTL2, RunConfig{Threads: 0, OpsPerThread: 1}); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := Run(w, EngTL2, RunConfig{Threads: 1}); err == nil {
		t.Fatal("no duration and no ops accepted")
	}
}

func TestTimeBasedRunStops(t *testing.T) {
	w := HashTableWorkload(128, 20)
	start := time.Now()
	r, err := Run(w, EngRH1Mix2, RunConfig{Threads: 2, Duration: 50 * time.Millisecond, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("time-based run overran grossly")
	}
	if r.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if r.Throughput <= 0 {
		t.Fatal("throughput not computed")
	}
}

func TestBreakdownRun(t *testing.T) {
	w := RBTreeWorkload(256, 20)
	r, err := Run(w, EngTL2, RunConfig{Threads: 1, OpsPerThread: 50, Seed: 3, Breakdown: true})
	if err != nil {
		t.Fatal(err)
	}
	b := r.Breakdown
	if b == nil {
		t.Fatal("breakdown missing")
	}
	total := b.ReadPct + b.WritePct + b.CommitPct + b.PrivatePct + b.InterTxPct
	if total < 50 || total > 140 {
		t.Fatalf("breakdown percentages sum to %.1f, want ~100", total)
	}
	if b.ReadPct <= 0 {
		t.Fatal("TL2 tree workload must show read time")
	}
}

func TestAllWorkloadsRun(t *testing.T) {
	workloads := []Workload{
		RBTreeWorkload(128, 20),
		RBTreeRealWorkload(128, 20),
		HashTableWorkload(128, 20),
		SortedListWorkload(32, 5),
		RandomArrayWorkload(1024, 20, 50),
	}
	for _, w := range workloads {
		r, err := Run(w, EngRH1Mix2, RunConfig{Threads: 2, OpsPerThread: 25, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if r.Ops != 50 {
			t.Fatalf("%s: ops = %d, want 50", w.Name, r.Ops)
		}
	}
}

func TestDeterministicSeeds(t *testing.T) {
	w := RandomArrayWorkload(512, 10, 30)
	a := MustRun(w, EngTL2, RunConfig{Threads: 1, OpsPerThread: 40, Seed: 9})
	b := MustRun(w, EngTL2, RunConfig{Threads: 1, OpsPerThread: 40, Seed: 9})
	if a.Stats.Reads != b.Stats.Reads || a.Stats.Writes != b.Stats.Writes {
		t.Fatalf("same seed, different op streams: %d/%d vs %d/%d reads/writes",
			a.Stats.Reads, a.Stats.Writes, b.Stats.Reads, b.Stats.Writes)
	}
}

func TestExperimentsSmall(t *testing.T) {
	sc := SmallScale()
	sc.OpsPerThread = 25
	if got := len(Fig1(sc)); got != 4*len(sc.Threads) {
		t.Fatalf("Fig1 points = %d", got)
	}
	if got := len(Fig2c(sc, 20)); got != 5 {
		t.Fatalf("Fig2c points = %d", got)
	}
	tabs := Tables(sc, 20)
	if len(tabs) != 5 {
		t.Fatalf("Tables rows = %d", len(tabs))
	}
	for _, r := range tabs {
		if r.Breakdown == nil {
			t.Fatalf("%s: no breakdown", r.Engine)
		}
	}
	points := Fig3c(sc)
	if len(points) != 16 {
		t.Fatalf("Fig3c points = %d, want 16", len(points))
	}
	for _, p := range points {
		if p.Speedup <= 0 {
			t.Fatalf("Fig3c len=%d w=%d: speedup %.2f", p.TxLen, p.WritePct, p.Speedup)
		}
	}
}

func TestExtExperimentsSmall(t *testing.T) {
	sc := SmallScale()
	sc.OpsPerThread = 20
	clockRes := ExtClock(sc)
	if len(clockRes) != 2*len(sc.Threads) {
		t.Fatalf("ExtClock points = %d", len(clockRes))
	}
	capRes := ExtCapacity(sc, 32)
	if len(capRes) == 0 {
		t.Fatal("ExtCapacity empty")
	}
	// Short transactions must run mostly fast; long ones mostly slow.
	first, last := capRes[0], capRes[len(capRes)-1]
	if first.FastShare < 0.5 {
		t.Fatalf("txlen=%d fast share %.2f, want mostly fast", first.TxLen, first.FastShare)
	}
	if last.SlowShare < 0.5 {
		t.Fatalf("txlen=%d slow share %.2f, want mostly slow", last.TxLen, last.SlowShare)
	}
	if len(ExtHybrids(sc)) != 4*len(sc.Threads) {
		t.Fatal("ExtHybrids wrong size")
	}
}

func TestFormatters(t *testing.T) {
	sc := SmallScale()
	sc.Threads = []int{1}
	sc.OpsPerThread = 10
	res := Fig1(sc)
	var sb strings.Builder
	PrintThroughputSeries(&sb, "fig1", res)
	out := sb.String()
	for _, want := range []string{"fig1", "threads", "HTM", "TL2", "RH1 Fast"} {
		if !strings.Contains(out, want) {
			t.Fatalf("series output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	PrintSpeedupBars(&sb, "speedup", EngTL2, Fig2c(sc, 20))
	if !strings.Contains(sb.String(), "speedup") {
		t.Fatal("speedup output malformed")
	}
	sb.Reset()
	PrintBreakdownTable(&sb, "tab1", Tables(sc, 20))
	if !strings.Contains(sb.String(), "commit-ratio") {
		t.Fatal("breakdown output malformed")
	}
	sb.Reset()
	PrintFig3c(&sb, Fig3c(sc))
	if !strings.Contains(sb.String(), "len=400") {
		t.Fatal("fig3c output malformed")
	}
	sb.Reset()
	PrintCapacity(&sb, ExtCapacity(sc, 32), 32)
	if !strings.Contains(sb.String(), "rh2-fallbacks") {
		t.Fatal("capacity output malformed")
	}
}
