package harness

import (
	"context"
	"fmt"

	"rhtm/client"
	"rhtm/kv"
	"rhtm/obs"
	"rhtm/server"
)

// The network backend: any KV workload, served over loopback TCP. The
// spec's inner backend (store or cluster) is wrapped by a real server and
// driven through the network client, so a run measures the whole wire path
// — framing, pipelining, the cross-connection batcher — under the same
// closed-loop load generator the in-process backends use. Setup loads,
// quiescent peeks, and invariant validation still go straight to the inner
// backend: the network is under test, not the verification.

// netBackend fronts an inner kvBackend with a server/ + client/ rig.
type netBackend struct {
	inner kvBackend
	reg   *obs.Registry // the server's instruments (server.*)
	srv   *server.Server
	cl    *client.Client
	db    kv.DB
	spec  KVSpec
}

func openNetBackend(spec KVSpec, engineName string, cfg RunConfig) (*netBackend, error) {
	// On a net run the client owns the sampling decision (the trace rides
	// the wire frame); DB-level sampling would double-trace every N-th op.
	innerSpec := spec
	innerSpec.TraceSample = 0
	var inner kvBackend
	var err error
	if spec.Backend == BackendCluster {
		inner, err = openClusterBackend(innerSpec, engineName, cfg)
	} else {
		inner, err = openStoreBackend(innerSpec, engineName, cfg)
	}
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	srv := server.New(inner.DB(),
		server.WithMetrics(reg), server.WithEngineName(engineName))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	clOpts := []client.Option{client.WithConns(spec.Conns)}
	if spec.TraceSample > 0 {
		clOpts = append(clOpts, client.WithTraceSampling(spec.TraceSample))
	}
	cl, err := client.Dial(addr.String(), clOpts...)
	if err != nil {
		srv.Close()
		return nil, err
	}
	b := &netBackend{inner: inner, reg: reg, srv: srv, cl: cl, db: cl, spec: spec}
	if !spec.Pipeline {
		// Unpipelined: at most one outstanding request per pooled
		// connection — the classic closed loop the scaling experiment
		// baselines against.
		b.db = &closedLoopDB{cl: cl, slots: make(chan struct{}, spec.Conns)}
	}
	return b, nil
}

func (b *netBackend) DB() kv.DB { return b.db }

func (b *netBackend) Clock() *kv.ManualClock { return b.inner.Clock() }

func (b *netBackend) Load(key, value []byte) error { return b.inner.Load(key, value) }

func (b *netBackend) Peek(key []byte) ([]byte, bool) { return b.inner.Peek(key) }

func (b *netBackend) SystemFor(key []byte) int { return b.inner.SystemFor(key) }

func (b *netBackend) Finish(res *Result) {
	b.inner.Finish(res)
	if res.Counters == nil {
		res.Counters = map[string]int64{}
	}
	// The server's registry is separate from the DB's, so its counters
	// merge in under their own server.* names without collisions.
	for k, v := range b.reg.Snapshot().Flatten() {
		res.Counters[k] = v
	}
	if b.spec.TraceSample > 0 {
		// The server's flight carries the typed handling stages; the
		// client's carries the other half of each trace — the net stage.
		traceCounters(b.srv.Flight(), "trace.", res.Counters)
		traceCounters(b.cl.Flight(), "client.trace.", res.Counters)
	}
	mode := "closed-loop"
	if b.spec.Pipeline {
		mode = "pipelined"
	}
	res.Notes = fmt.Sprintf("net: conns=%d %s | %s", b.spec.Conns, mode, res.Notes)
}

func (b *netBackend) Validate() error { return b.inner.Validate() }

// Close tears the rig down client-first, so the server sees orderly
// disconnects instead of racing its own drain.
func (b *netBackend) Close() {
	b.cl.Close()
	b.srv.Close()
}

// closedLoopDB caps in-flight requests at one per pooled connection by
// gating every operation through a Conns-wide slot channel. Watches,
// clock reads and metrics stay ungated: they are measurement plumbing,
// not offered load.
type closedLoopDB struct {
	cl    *client.Client
	slots chan struct{}
}

func (d *closedLoopDB) acquire() func() {
	d.slots <- struct{}{}
	return func() { <-d.slots }
}

func (d *closedLoopDB) Get(key []byte) ([]byte, error) {
	defer d.acquire()()
	return d.cl.Get(key)
}

func (d *closedLoopDB) GetRev(key []byte) ([]byte, kv.Revision, error) {
	defer d.acquire()()
	return d.cl.GetRev(key)
}

func (d *closedLoopDB) Put(key, value []byte, opts ...kv.PutOption) error {
	defer d.acquire()()
	return d.cl.Put(key, value, opts...)
}

func (d *closedLoopDB) PutIf(key, value []byte, rev kv.Revision, opts ...kv.PutOption) error {
	defer d.acquire()()
	return d.cl.PutIf(key, value, rev, opts...)
}

func (d *closedLoopDB) Delete(key []byte) error {
	defer d.acquire()()
	return d.cl.Delete(key)
}

func (d *closedLoopDB) DeleteIf(key []byte, rev kv.Revision) error {
	defer d.acquire()()
	return d.cl.DeleteIf(key, rev)
}

func (d *closedLoopDB) Update(fn func(tx kv.Txn) error) error {
	defer d.acquire()()
	return d.cl.Update(fn)
}

func (d *closedLoopDB) Batch(ops []kv.Op) ([]kv.OpResult, error) {
	defer d.acquire()()
	return d.cl.Batch(ops)
}

func (d *closedLoopDB) Scan(start, end []byte, limit int) kv.Iterator {
	// The client fetches the whole bounded result inside Scan; iteration
	// afterwards is local, so gating the call gates the wire work.
	defer d.acquire()()
	return d.cl.Scan(start, end, limit)
}

func (d *closedLoopDB) Grant(ttl uint64) (kv.LeaseID, error) {
	defer d.acquire()()
	return d.cl.Grant(ttl)
}

func (d *closedLoopDB) KeepAlive(id kv.LeaseID) error {
	defer d.acquire()()
	return d.cl.KeepAlive(id)
}

func (d *closedLoopDB) Revoke(id kv.LeaseID) error {
	defer d.acquire()()
	return d.cl.Revoke(id)
}

func (d *closedLoopDB) ExpireLeases() (int, error) {
	defer d.acquire()()
	return d.cl.ExpireLeases()
}

func (d *closedLoopDB) Clock() kv.Clock { return d.cl.Clock() }

func (d *closedLoopDB) Watch(ctx context.Context, prefix []byte, fromRev kv.Revision) (<-chan kv.Event, error) {
	return d.cl.Watch(ctx, prefix, fromRev)
}

func (d *closedLoopDB) Checkpoint() error {
	defer d.acquire()()
	return d.cl.Checkpoint()
}

func (d *closedLoopDB) Metrics() obs.Snapshot { return d.cl.Metrics() }

// WaitWatchIdle forwards the client's stream-drain barrier, keeping the
// runner's quiesce step working on unpipelined rigs.
func (d *closedLoopDB) WaitWatchIdle() { d.cl.WaitWatchIdle() }

var _ kv.DB = (*closedLoopDB)(nil)
