package harness

import (
	"math/rand"

	"rhtm"
	"rhtm/containers"
)

// Op is one transaction body instance.
type Op = func(tx rhtm.Tx) error

// OpFactory builds the per-thread operation generator: every call to the
// returned function yields the next transaction body for that thread.
type OpFactory func(threadID int, rng *rand.Rand) func() Op

// Workload describes one benchmark scenario: how much simulated memory it
// needs, how to populate it, and how threads generate operations.
type Workload struct {
	// Name identifies the workload in output rows.
	Name string
	// DataWords sizes the simulated heap.
	DataWords int
	// Build populates the structure on s and returns the operation factory.
	Build func(s *rhtm.System) OpFactory
	// Observe, when non-nil, is called by Run after the workers have
	// drained (the run's System is quiescent); its report lands in
	// Result.Notes. Builders that need per-run state (the YCSB store)
	// share it with Observe through a variable captured by both closures:
	// Run guarantees Build, the workers, and Observe run sequentially, and
	// a Workload value is never measured concurrently with itself.
	Observe func(s *rhtm.System) string
}

// RBTreeWorkload is the paper's Constant Red-Black Tree (§3.1): nodes keys,
// writePct percent rb-update operations, the rest rb-lookup.
func RBTreeWorkload(nodes, writePct int) Workload {
	return Workload{
		Name:      "rbtree",
		DataWords: nodes*containers.RBNodeWords*5/4 + 4096,
		Build: func(s *rhtm.System) OpFactory {
			tree := containers.NewRBTree(s)
			keys := make([]uint64, nodes)
			for i := range keys {
				keys[i] = uint64(i + 1)
			}
			shuffle(keys)
			tree.Populate(keys)
			return func(threadID int, rng *rand.Rand) func() Op {
				return func() Op {
					key := uint64(rng.Intn(nodes) + 1)
					if rng.Intn(100) < writePct {
						val := rng.Uint64()
						return func(tx rhtm.Tx) error {
							tree.ConstUpdate(tx, key, val, rng)
							return nil
						}
					}
					return func(tx rhtm.Tx) error {
						tree.ConstLookup(tx, key)
						return nil
					}
				}
			}
		},
	}
}

// RBTreeRealWorkload exercises the real mutating tree (insert/delete/lookup
// mix) — the extension workload the paper's emulation could not run. The
// heap is sized for roughly 100x the initial population; for open-ended runs
// (testing.B with large N) use RBTreeRealWorkloadOps.
func RBTreeRealWorkload(nodes, writePct int) Workload {
	return RBTreeRealWorkloadOps(nodes, writePct, nodes*100)
}

// RBTreeRealWorkloadOps is RBTreeRealWorkload with an explicit expected
// total-operation budget. Deleted nodes are not recycled (reclamation under
// aborting transactions is out of scope — see containers.RBTree.Delete), so
// the heap must hold the initial population plus one node per potential
// insert: inserts are at most half the write ratio of all operations, plus
// slack for allocations repeated by aborted attempts.
func RBTreeRealWorkloadOps(nodes, writePct, expectedOps int) Workload {
	inserts := expectedOps*writePct/200 + expectedOps/10 + 1024
	return Workload{
		Name:      "rbtree-real",
		DataWords: (nodes + inserts) * containers.RBNodeWords * 2,
		Build: func(s *rhtm.System) OpFactory {
			tree := containers.NewRBTree(s)
			keys := make([]uint64, nodes)
			for i := range keys {
				keys[i] = uint64(i + 1)
			}
			shuffle(keys)
			tree.Populate(keys)
			keyRange := nodes * 2
			return func(threadID int, rng *rand.Rand) func() Op {
				return func() Op {
					key := uint64(rng.Intn(keyRange) + 1)
					r := rng.Intn(200)
					switch {
					case r < writePct: // half of the write budget inserts
						return func(tx rhtm.Tx) error {
							tree.Insert(tx, key, key)
							return nil
						}
					case r < 2*writePct: // the other half deletes
						return func(tx rhtm.Tx) error {
							tree.Delete(tx, key)
							return nil
						}
					default:
						return func(tx rhtm.Tx) error {
							tree.Lookup(tx, key)
							return nil
						}
					}
				}
			}
		},
	}
}

// HashTableWorkload is the paper's Constant Hash Table (§3.3).
func HashTableWorkload(elems, writePct int) Workload {
	return Workload{
		Name:      "hashtable",
		DataWords: elems*containers.HTNodeWords*2 + elems*2 + 4096,
		Build: func(s *rhtm.System) OpFactory {
			ht := containers.NewHashTable(s, elems)
			keys := make([]uint64, elems)
			for i := range keys {
				keys[i] = uint64(i + 1)
			}
			ht.Populate(keys)
			return func(threadID int, rng *rand.Rand) func() Op {
				return func() Op {
					key := uint64(rng.Intn(elems) + 1)
					if rng.Intn(100) < writePct {
						val := rng.Uint64()
						return func(tx rhtm.Tx) error {
							ht.ConstUpdate(tx, key, val)
							return nil
						}
					}
					return func(tx rhtm.Tx) error {
						ht.ConstQuery(tx, key)
						return nil
					}
				}
			}
		},
	}
}

// SortedListWorkload is the paper's Constant Sorted List (§3.4).
func SortedListWorkload(elems, writePct int) Workload {
	return Workload{
		Name:      "sortedlist",
		DataWords: elems*containers.SLNodeWords*2 + 4096,
		Build: func(s *rhtm.System) OpFactory {
			l := containers.NewSortedList(s)
			keys := make([]uint64, elems)
			for i := range keys {
				keys[i] = uint64(i + 1)
			}
			l.Populate(keys)
			return func(threadID int, rng *rand.Rand) func() Op {
				return func() Op {
					key := uint64(rng.Intn(elems) + 1)
					if rng.Intn(100) < writePct {
						val := rng.Uint64()
						return func(tx rhtm.Tx) error {
							l.ConstUpdate(tx, key, val)
							return nil
						}
					}
					return func(tx rhtm.Tx) error {
						l.ConstSearch(tx, key)
						return nil
					}
				}
			}
		},
	}
}

// RandomArrayWorkload is the paper's Random Array (§3.5): transactions of
// txLen random accesses with writePct percent writes over a size-word array.
func RandomArrayWorkload(size, txLen, writePct int) Workload {
	return Workload{
		Name:      "randarray",
		DataWords: size + 4096,
		Build: func(s *rhtm.System) OpFactory {
			arr := containers.NewRandomArray(s, size)
			arr.Fill(1)
			return func(threadID int, rng *rand.Rand) func() Op {
				return func() Op {
					return func(tx rhtm.Tx) error {
						arr.Op(tx, rng, txLen, writePct)
						return nil
					}
				}
			}
		},
	}
}

// loaderSeed seeds every workload loader/shuffle RNG (the paper's TRANSACT
// date), making populated state reproducible across runs — tests replay the
// loaders against it (see TestYCSBFIncrements).
const loaderSeed = 20130317

// shuffle permutes keys with a fixed seed so runs are reproducible.
func shuffle(keys []uint64) {
	rng := rand.New(rand.NewSource(loaderSeed))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
}
