package harness

import (
	"testing"
)

// TestNetWorkloadRuns drives a spread of mixes through the network rig —
// client over loopback TCP, server in front of a real backend — and
// asserts the run works end to end and its counters carry the server.*
// instrument set in the flat schema, alongside the backend's own.
func TestNetWorkloadRuns(t *testing.T) {
	for _, tc := range []struct {
		mix      string
		pipeline bool
	}{
		{"a", true},
		{"a", false},
		{"e", true},
		{"f", true},
		{"session", true},
		{"lock", false},
	} {
		spec := KVSpec{Mix: tc.mix, Records: 256, ValueBytes: 32, Shards: 4,
			ScanMax: 10, Net: true, Conns: 2, Pipeline: tc.pipeline}
		r, err := RunKV(spec, EngRH1Mix2, RunConfig{Threads: 2, OpsPerThread: 30, Seed: 1})
		if err != nil {
			t.Fatalf("%s/pipeline=%v: %v", tc.mix, tc.pipeline, err)
		}
		if r.Ops != 60 {
			t.Fatalf("%s/pipeline=%v: ops = %d, want 60", tc.mix, tc.pipeline, r.Ops)
		}
		// The server's instruments must ride in the same flat counter map
		// as the engine.*/store.*/harness.* sets (DESIGN.md §10/§11).
		for _, name := range []string{"server.bytes_in", "server.bytes_out",
			"server.request_ns.count"} {
			if r.Counters[name] <= 0 {
				t.Fatalf("%s/pipeline=%v: counter %s missing or zero: %v",
					tc.mix, tc.pipeline, name, r.Counters)
			}
		}
		if got := r.Counters["server.connections"]; got != 2 {
			t.Fatalf("%s/pipeline=%v: server.connections = %d at finish, want 2",
				tc.mix, tc.pipeline, got)
		}
	}
}

// TestNetBatcherEngages: the a-mix's Gets and Puts are batchable, so the
// cross-connection batcher must have formed batches, and its per-kind
// request counters must sit under their labeled names.
func TestNetBatcherEngages(t *testing.T) {
	spec := KVSpec{Mix: "a", Records: 512, ValueBytes: 32, Shards: 4,
		Net: true, Conns: 4, Pipeline: true}
	r := MustRunKV(spec, EngTL2, RunConfig{Threads: 4, OpsPerThread: 100, Seed: 3})
	if r.Counters["server.batch_fill.count"] <= 0 {
		t.Fatalf("batcher formed no batches: %v", r.Counters)
	}
	if r.Counters["server.batch_fill.sum"] < r.Counters["server.batch_fill.count"] {
		t.Fatalf("batch fill sum %d < count %d",
			r.Counters["server.batch_fill.sum"], r.Counters["server.batch_fill.count"])
	}
	gets := r.Counters["server.requests{kind=get}"]
	puts := r.Counters["server.requests{kind=put}"]
	if gets <= 0 || puts <= 0 {
		t.Fatalf("per-kind request counters missing: gets=%d puts=%d (%v)", gets, puts, r.Counters)
	}
}

// TestNetClusterBackend: Net composes with the cluster backend — the
// server fronts the 2PC coordinator and both counter sets appear.
func TestNetClusterBackend(t *testing.T) {
	spec := KVSpec{Mix: "bank", Records: 64, Systems: 2, CrossPct: 50,
		Net: true, Conns: 2, Pipeline: true}
	r := MustRunKV(spec, EngRH1Mix2, RunConfig{Threads: 2, OpsPerThread: 40, Seed: 5})
	if r.Ops != 80 {
		t.Fatalf("ops = %d, want 80", r.Ops)
	}
	if _, ok := r.Counters["cluster.local_txns"]; !ok {
		t.Fatalf("cluster.* counters missing behind the net rig: %v", r.Counters)
	}
	if r.Counters["server.requests{kind=txn}"] <= 0 {
		t.Fatalf("bank transfers sent no Txn frames: %v", r.Counters)
	}
}

// TestNetConnectionScaling is the network front end's acceptance
// criterion: on the read-only mix, 16 pipelined connections must deliver
// at least 4x the ops/sec of the 1-connection closed loop. The baseline
// pays a full round trip plus the batch window per op; the pipelined rig
// overlaps round trips and amortizes execution across merged batches.
func TestNetConnectionScaling(t *testing.T) {
	base := KVSpec{Mix: "c", Records: 1024, ValueBytes: 32, Shards: 4, Net: true}

	slow := base
	slow.Conns = 1
	r1 := MustRunKV(slow, EngTL2, RunConfig{Threads: 1, OpsPerThread: 400, Seed: 1})

	fast := base
	fast.Conns = 16
	fast.Pipeline = true
	r16 := MustRunKV(fast, EngTL2, RunConfig{Threads: 16, OpsPerThread: 400, Seed: 1})

	if r1.Throughput <= 0 || r16.Throughput <= 0 {
		t.Fatalf("missing throughput: c1=%f c16=%f", r1.Throughput, r16.Throughput)
	}
	if r16.Throughput < 4*r1.Throughput {
		t.Fatalf("16 conns pipelined = %.0f ops/s, 1 conn closed-loop = %.0f ops/s: scaling < 4x",
			r16.Throughput, r1.Throughput)
	}
}
