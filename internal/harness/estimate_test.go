package harness

import (
	"testing"

	"rhtm/internal/memsim"
)

func TestEstimateAbortPctBounds(t *testing.T) {
	w := SortedListWorkload(64, 50) // contended: every scan shares the prefix
	pct, err := EstimateAbortPct(w, RunConfig{Threads: 4, OpsPerThread: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if pct < 0 || pct > 100 {
		t.Fatalf("estimate = %d, want a percentage", pct)
	}
}

func TestEstimateFeedsInjection(t *testing.T) {
	// The round trip of the paper's methodology: estimate under TL2, inject
	// into a hardware engine, observe injected aborts.
	w := RBTreeWorkload(256, 20)
	pct, err := EstimateAbortPct(w, RunConfig{Threads: 2, OpsPerThread: 50, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if pct == 0 {
		pct = 10 // uncontended estimate; still exercise the injection path
	}
	r, err := Run(w, EngHTM, RunConfig{Threads: 2, OpsPerThread: 50, Seed: 6, InjectPct: pct})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.FastAbortsByReason[memsim.AbortInjected] == 0 {
		t.Fatalf("no injected aborts at %d%%: %v", pct, r.Stats)
	}
}
