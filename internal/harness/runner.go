package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rhtm"
)

// RunConfig parameterizes one measurement point.
type RunConfig struct {
	// Threads is the number of worker goroutines.
	Threads int
	// Duration, when positive, runs time-based; otherwise each thread
	// executes OpsPerThread operations (deterministic, used by tests and
	// the testing.B benchmarks).
	Duration time.Duration
	// OpsPerThread is the per-thread operation count for count-based runs.
	OpsPerThread int
	// Seed derives per-thread RNGs; equal seeds give equal op streams.
	Seed int64
	// InjectPct forces a hardware-commit abort percentage.
	InjectPct int
	// Breakdown enables the per-phase timing instrumentation of Figure 2's
	// tables (adds timer overhead to every operation).
	Breakdown bool
	// GV5 switches the system's global clock to the GV5 discipline
	// (increment on every commit) for the clock ablation.
	GV5 bool
	// HTMOverride, when non-nil, replaces the simulated HTM capacity limits
	// (the capacity-extension experiment).
	HTMOverride *rhtm.HTMConfig
}

// Breakdown is the paper's single-thread time decomposition: the share of
// wall-clock time spent in transactional reads, writes, commit, private
// (in-transaction, non-shared) work, and inter-transaction code.
type Breakdown struct {
	ReadPct    float64
	WritePct   float64
	CommitPct  float64
	PrivatePct float64
	InterTxPct float64
}

// Result is one measured point.
type Result struct {
	Workload   string
	Engine     string
	Threads    int
	Ops        uint64
	Elapsed    time.Duration
	Throughput float64 // committed operations per second (host wall clock)
	Stats      rhtm.Stats
	Breakdown  *Breakdown

	// Accesses is the total number of simulated shared-memory accesses the
	// run issued (data + metadata, including work on aborted attempts).
	Accesses uint64
	// OpsPerKAccess is the architectural cost metric: committed operations
	// per thousand simulated shared accesses. Host wall-clock time measures
	// the *simulator*; this metric measures the *simulated machine* — each
	// shared access stands for one cache access, so engines that instrument
	// reads/writes or redo work after aborts score lower. The figure-shape
	// claims in EXPERIMENTS.md are made against this metric.
	OpsPerKAccess float64

	// CriticalAccesses is, for cluster runs, the largest per-System access
	// count: independent Systems progress in parallel, so the busiest one
	// is the run's simulated critical path. (A 1-System cluster run sets
	// it to its only System's count.) Zero for non-cluster runs.
	CriticalAccesses uint64
	// OpsPerKInterval is committed operations per thousand critical-path
	// accesses — the cluster scaling metric: adding Systems raises it when
	// (and only when) the load actually spreads. It equals OpsPerKAccess
	// on a 1-System cluster run; zero for non-cluster runs.
	OpsPerKInterval float64

	// Counters is the run's structured observation set: the kv.DB's
	// obs.Snapshot flattened to name→value (engine.*, store.*, wal.*,
	// cluster.* — see DESIGN.md §10) plus the workload's own harness.*
	// counters. Tests and tooling read these; Notes below renders a
	// human-readable digest of the same data. Nil for runs whose workload
	// has no kv.DB (the raw structure workloads).
	Counters map[string]int64

	// Notes carries workload-level observations (store occupancy, 2PC
	// counters) reported after the run as a rendered view of Counters;
	// empty when the workload has none.
	Notes string
}

// String renders a compact summary line.
func (r Result) String() string {
	return fmt.Sprintf("%-12s %-14s t=%-2d ops=%-9d %8.0f ops/s %6.2f ops/kacc abort-ratio=%.3f",
		r.Workload, r.Engine, r.Threads, r.Ops, r.Throughput, r.OpsPerKAccess, r.Stats.AbortRatio())
}

// Run executes one measurement: build a fresh system, populate the
// workload, spin up cfg.Threads workers on the named engine, and measure.
func Run(w Workload, engineName string, cfg RunConfig) (Result, error) {
	if cfg.Threads <= 0 {
		return Result{}, fmt.Errorf("harness: Threads must be positive")
	}
	if cfg.Duration <= 0 && cfg.OpsPerThread <= 0 {
		return Result{}, fmt.Errorf("harness: need Duration or OpsPerThread")
	}
	scfg := rhtm.DefaultConfig(w.DataWords)
	if cfg.GV5 {
		scfg.ClockMode = rhtm.GV5
	}
	if cfg.HTMOverride != nil {
		scfg.HTM = *cfg.HTMOverride
	}
	s := rhtm.MustNewSystem(scfg)
	factory := w.Build(s)
	eng, err := Build(s, engineName, cfg.InjectPct)
	if err != nil {
		return Result{}, err
	}

	var stop atomic.Bool
	var totalOps atomic.Uint64
	accs := make([]*timeAcc, cfg.Threads)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Threads; i++ {
		th := eng.NewThread()
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		gen := factory(i, rng)
		acc := &timeAcc{}
		accs[i] = acc
		wg.Add(1)
		go func() {
			defer wg.Done()
			totalOps.Add(driveWorker(cfg, &stop, func() {
				op := gen()
				if cfg.Breakdown {
					runTimed(th, op, acc)
				} else if err := th.Atomic(op); err != nil {
					// Workload bodies never return errors; an error here is
					// an engine bug surfaced to the caller via panic.
					panic(fmt.Sprintf("harness: Atomic failed: %v", err))
				}
			}))
		}()
	}
	if cfg.Duration > 0 {
		time.Sleep(cfg.Duration)
		stop.Store(true)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		Workload: w.Name,
		Engine:   eng.Name(),
		Threads:  cfg.Threads,
		Ops:      totalOps.Load(),
		Elapsed:  elapsed,
		Stats:    eng.Snapshot(),
	}
	res.Throughput = float64(res.Ops) / elapsed.Seconds()
	res.Accesses = res.Stats.Reads + res.Stats.Writes +
		res.Stats.MetadataReads + res.Stats.MetadataWrites
	if res.Accesses > 0 {
		res.OpsPerKAccess = 1000 * float64(res.Ops) / float64(res.Accesses)
	}
	if cfg.Breakdown {
		res.Breakdown = mergeBreakdown(accs, elapsed)
	}
	if w.Observe != nil {
		res.Notes = w.Observe(s)
	}
	return res, nil
}

// driveWorker executes step until the run's limit: OpsPerThread iterations
// for count-based runs, or the stop flag for time-based ones. It returns
// the operation count. Run and RunCluster share it so the drive semantics
// cannot drift between the single-System and cluster runners.
func driveWorker(cfg RunConfig, stop *atomic.Bool, step func()) uint64 {
	ops := uint64(0)
	for n := 0; ; n++ {
		if cfg.Duration > 0 {
			if stop.Load() {
				break
			}
		} else if n >= cfg.OpsPerThread {
			break
		}
		step()
		ops++
	}
	return ops
}

// MustRun is Run for the experiment drivers, where a config error is a bug.
func MustRun(w Workload, engineName string, cfg RunConfig) Result {
	r, err := Run(w, engineName, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// --- breakdown instrumentation ---

// timeAcc accumulates per-thread phase times (nanoseconds).
type timeAcc struct {
	read   int64
	write  int64
	body   int64
	atomic int64
}

// runTimed executes one operation with phase timing.
func runTimed(th rhtm.Thread, op Op, acc *timeAcc) {
	t0 := time.Now()
	err := th.Atomic(func(tx rhtm.Tx) error {
		b0 := time.Now()
		err := op(&timedTx{inner: tx, acc: acc})
		acc.body += int64(time.Since(b0))
		return err
	})
	acc.atomic += int64(time.Since(t0))
	if err != nil {
		panic(fmt.Sprintf("harness: Atomic failed: %v", err))
	}
}

// timedTx wraps a Tx with read/write timers.
type timedTx struct {
	inner rhtm.Tx
	acc   *timeAcc
}

// Load implements rhtm.Tx.
func (t *timedTx) Load(a rhtm.Addr) uint64 {
	t0 := time.Now()
	v := t.inner.Load(a)
	t.acc.read += int64(time.Since(t0))
	return v
}

// Store implements rhtm.Tx.
func (t *timedTx) Store(a rhtm.Addr, v uint64) {
	t0 := time.Now()
	t.inner.Store(a, v)
	t.acc.write += int64(time.Since(t0))
}

// Unsupported implements rhtm.Tx.
func (t *timedTx) Unsupported() { t.inner.Unsupported() }

// mergeBreakdown converts accumulated phase times into the paper's
// percentage decomposition. Commit time is the part of Atomic not spent in
// the body; private time is body time not spent in shared reads/writes;
// inter-transaction time is wall time outside Atomic.
func mergeBreakdown(accs []*timeAcc, elapsed time.Duration) *Breakdown {
	var read, write, body, at int64
	for _, a := range accs {
		read += a.read
		write += a.write
		body += a.body
		at += a.atomic
	}
	wall := int64(elapsed) * int64(len(accs))
	if wall == 0 {
		return &Breakdown{}
	}
	commit := at - body
	private := body - read - write
	inter := wall - at
	pct := func(v int64) float64 {
		if v < 0 {
			v = 0
		}
		return 100 * float64(v) / float64(wall)
	}
	return &Breakdown{
		ReadPct:    pct(read),
		WritePct:   pct(write),
		CommitPct:  pct(commit),
		PrivatePct: pct(private),
		InterTxPct: pct(inter),
	}
}
