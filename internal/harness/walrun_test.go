package harness

import (
	"strings"
	"testing"
)

// TestKVWALRuns pins the -wal path of RunKV on both backends: populate
// goes through the DB (the log's sequence gate forbids setup-path writes),
// the run completes with the usual invariants (bank total conserved,
// structural validation including the checkpoint/durable watermark check),
// and the notes report the log counters.
func TestKVWALRuns(t *testing.T) {
	for _, spec := range []KVSpec{
		{Mix: "a", Records: 128, ValueBytes: 16, Shards: 2, WAL: true},
		{Mix: "bank", Records: 32, Systems: 2, CrossPct: 50, WAL: true, SyncEvery: 4},
	} {
		res, err := RunKV(spec, EngTL2, RunConfig{Threads: 2, OpsPerThread: 60, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name(), err)
		}
		if !strings.Contains(res.Notes, "wal[") {
			t.Errorf("%s: notes missing wal counters: %s", spec.Name(), res.Notes)
		}
	}
}

// TestRecoveryPointCheckpointBounds: the recovery experiment's midpoint
// checkpoint must shrink the replayed suffix versus the checkpoint-free
// run of the same length.
func TestRecoveryPointCheckpointBounds(t *testing.T) {
	plain := MustRecoveryPoint(600, 32, false)
	ckpt := MustRecoveryPoint(600, 32, true)
	if plain.ReplayedTxns != 600 {
		t.Fatalf("plain run replayed %d txns, want 600", plain.ReplayedTxns)
	}
	if ckpt.ReplayedTxns >= plain.ReplayedTxns*2/3 {
		t.Fatalf("checkpoint did not bound replay: %d vs %d txns", ckpt.ReplayedTxns, plain.ReplayedTxns)
	}
	if plain.Keys != ckpt.Keys {
		t.Fatalf("recovered key counts diverge: %d vs %d", plain.Keys, ckpt.Keys)
	}
}
