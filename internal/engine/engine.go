// Package engine defines the interfaces and shared plumbing every
// transactional-memory engine in this repository implements: the
// user-visible Tx surface, the per-worker Thread abstraction, the panic
// sentinel used to unwind a transaction body on abort, and the statistics
// engines report. The public rhtm package re-exports these types.
package engine

import (
	"errors"
	"fmt"
	"sync/atomic"

	"rhtm/internal/memsim"
)

// Tx is the operation surface a transaction body sees. Load and Store do not
// return errors: when the enclosing transaction aborts, the engine unwinds
// the body with a retry panic (see Retry) and re-executes it under its retry
// policy, so container code can be written in a direct style with no error
// plumbing through tree traversals.
type Tx interface {
	// Load reads one simulated word transactionally.
	Load(a memsim.Addr) uint64
	// Store writes one simulated word transactionally.
	Store(a memsim.Addr, v uint64)
	// Unsupported marks the body as containing an operation hardware
	// transactions cannot execute (system call, protected instruction).
	// Hardware paths abort persistently and the engine falls back to a
	// software path; software paths treat it as a no-op.
	Unsupported()
}

// Thread is a per-worker transaction context. A Thread is not safe for
// concurrent use: each goroutine obtains its own from Engine.NewThread.
type Thread interface {
	// Atomic executes fn as a transaction, retrying per the engine's policy
	// until the transaction commits or fn returns a non-nil error. A non-nil
	// error from fn aborts the transaction and is returned as-is.
	Atomic(fn func(tx Tx) error) error
}

// Engine is one transactional-memory implementation over a System.
type Engine interface {
	// Name identifies the engine in harness output ("RH1 Fast", "TL2", ...).
	Name() string
	// NewThread registers a worker and returns its transaction context.
	NewThread() Thread
	// Snapshot returns the accumulated statistics of all threads created so
	// far. It must only be called while no thread is inside Atomic.
	Snapshot() Stats
	// Live returns statistics that are safe to read while transactions are
	// running: each thread publishes its per-thread counters into an atomic
	// accumulator once per completed Atomic call, so Live lags Snapshot by
	// at most the transactions currently in flight and never races their
	// unsynchronized per-thread counters.
	Live() Stats
}

// retrySignal is the panic payload used to unwind a transaction body when
// the underlying attempt aborted. It never escapes Atomic.
type retrySignal struct{ reason memsim.AbortReason }

// Retry unwinds the current transaction body with the given abort reason.
// Only engine implementations call it.
func Retry(reason memsim.AbortReason) {
	panic(retrySignal{reason: reason})
}

// RunBody invokes fn(tx) converting a retry panic into (aborted=true,
// reason). Engines call it to execute the user body; any other panic
// propagates unchanged.
func RunBody(fn func(tx Tx) error, tx Tx) (err error, aborted bool, reason memsim.AbortReason) {
	defer func() {
		if r := recover(); r != nil {
			rs, ok := r.(retrySignal)
			if !ok {
				panic(r)
			}
			aborted = true
			reason = rs.reason
		}
	}()
	err = fn(tx)
	return err, false, memsim.AbortNone
}

// ErrTooManyThreads is returned (via panic from NewThread) when an engine's
// bounded thread-ID space (one read-mask bit per thread) is oversubscribed.
var ErrTooManyThreads = errors.New("engine: thread-ID space exhausted")

// MaxThreads is the default number of worker threads an engine supports:
// one bit per thread in a single 64-bit read-mask word, as in the paper's
// implementation (§4.1). Systems configured with a larger limit allocate
// additional mask words per stripe.
const MaxThreads = 64

// Stats aggregates engine activity. Counters are maintained per Thread
// without synchronization and merged by Snapshot.
type Stats struct {
	// Commits counts committed transactions by path.
	FastCommits     uint64 // pure hardware fast path
	SlowCommits     uint64 // mixed (mostly software) slow path
	SlowSlowCommits uint64 // all-software path
	ReadOnlyCommits uint64 // software commits that skipped the commit phase

	// Aborts counts aborted attempts by path.
	FastAborts uint64
	SlowAborts uint64

	// FastAbortsByReason breaks down hardware fast-path aborts.
	FastAbortsByReason [8]uint64

	// CommitHTMRetries counts retries of the slow-path commit-time hardware
	// transaction (RH1/RH2 specific).
	CommitHTMRetries uint64

	// RH2Fallbacks counts RH1 slow-path commits that fell back to RH2.
	RH2Fallbacks uint64
	// AllSoftwareWritebacks counts RH2 slow-path commits that fell back to
	// the all-software write-back (the slow-slow path trigger).
	AllSoftwareWritebacks uint64

	// UserErrors counts bodies that returned a non-nil error.
	UserErrors uint64

	// Reads/Writes count transactional data operations (all paths).
	Reads  uint64
	Writes uint64
	// MetadataReads/MetadataWrites count accesses to TM metadata (stripe
	// versions, read masks, global counters) — the instrumentation cost the
	// paper's Figures compare. Fast-path metadata traffic is what separates
	// "Standard HyTM" from "RH1 Fast" from "HTM".
	MetadataReads  uint64
	MetadataWrites uint64
}

// Live is the concurrency-safe Stats accumulator behind Engine.Live. Per-
// thread counters stay unsynchronized on the transaction hot path; at the
// end of every Atomic call the thread flushes the delta since its previous
// flush into its engine's Live with one atomic add per field that moved —
// a handful of adds per whole transaction, not per access. Readers get a
// Stats that is exact up to the transactions currently in flight.
type Live struct {
	fastCommits, slowCommits, slowSlowCommits, readOnlyCommits atomic.Uint64
	fastAborts, slowAborts                                     atomic.Uint64
	fastAbortsByReason                                         [8]atomic.Uint64
	commitHTMRetries                                           atomic.Uint64
	rh2Fallbacks, allSoftwareWritebacks                        atomic.Uint64
	userErrors                                                 atomic.Uint64
	reads, writes                                              atomic.Uint64
	metadataReads, metadataWrites                              atomic.Uint64
}

// liveAdd publishes a field's delta, skipping the atomic when nothing
// moved (most fields are untouched by most transactions).
func liveAdd(w *atomic.Uint64, cur, prev uint64) {
	if d := cur - prev; d != 0 {
		w.Add(d)
	}
}

// Flush publishes cur−prev into l and advances prev to cur. Engines call
// it once per Atomic return with the thread's private counters; prev is
// the thread's equally private high-water copy, so Flush itself needs no
// synchronization beyond the per-field atomic adds.
func (l *Live) Flush(prev, cur *Stats) {
	liveAdd(&l.fastCommits, cur.FastCommits, prev.FastCommits)
	liveAdd(&l.slowCommits, cur.SlowCommits, prev.SlowCommits)
	liveAdd(&l.slowSlowCommits, cur.SlowSlowCommits, prev.SlowSlowCommits)
	liveAdd(&l.readOnlyCommits, cur.ReadOnlyCommits, prev.ReadOnlyCommits)
	liveAdd(&l.fastAborts, cur.FastAborts, prev.FastAborts)
	liveAdd(&l.slowAborts, cur.SlowAborts, prev.SlowAborts)
	for i := range l.fastAbortsByReason {
		liveAdd(&l.fastAbortsByReason[i], cur.FastAbortsByReason[i], prev.FastAbortsByReason[i])
	}
	liveAdd(&l.commitHTMRetries, cur.CommitHTMRetries, prev.CommitHTMRetries)
	liveAdd(&l.rh2Fallbacks, cur.RH2Fallbacks, prev.RH2Fallbacks)
	liveAdd(&l.allSoftwareWritebacks, cur.AllSoftwareWritebacks, prev.AllSoftwareWritebacks)
	liveAdd(&l.userErrors, cur.UserErrors, prev.UserErrors)
	liveAdd(&l.reads, cur.Reads, prev.Reads)
	liveAdd(&l.writes, cur.Writes, prev.Writes)
	liveAdd(&l.metadataReads, cur.MetadataReads, prev.MetadataReads)
	liveAdd(&l.metadataWrites, cur.MetadataWrites, prev.MetadataWrites)
	*prev = *cur
}

// Stats reads the accumulator.
func (l *Live) Stats() Stats {
	var s Stats
	s.FastCommits = l.fastCommits.Load()
	s.SlowCommits = l.slowCommits.Load()
	s.SlowSlowCommits = l.slowSlowCommits.Load()
	s.ReadOnlyCommits = l.readOnlyCommits.Load()
	s.FastAborts = l.fastAborts.Load()
	s.SlowAborts = l.slowAborts.Load()
	for i := range l.fastAbortsByReason {
		s.FastAbortsByReason[i] = l.fastAbortsByReason[i].Load()
	}
	s.CommitHTMRetries = l.commitHTMRetries.Load()
	s.RH2Fallbacks = l.rh2Fallbacks.Load()
	s.AllSoftwareWritebacks = l.allSoftwareWritebacks.Load()
	s.UserErrors = l.userErrors.Load()
	s.Reads = l.reads.Load()
	s.Writes = l.writes.Load()
	s.MetadataReads = l.metadataReads.Load()
	s.MetadataWrites = l.metadataWrites.Load()
	return s
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.FastCommits += other.FastCommits
	s.SlowCommits += other.SlowCommits
	s.SlowSlowCommits += other.SlowSlowCommits
	s.ReadOnlyCommits += other.ReadOnlyCommits
	s.FastAborts += other.FastAborts
	s.SlowAborts += other.SlowAborts
	for i := range s.FastAbortsByReason {
		s.FastAbortsByReason[i] += other.FastAbortsByReason[i]
	}
	s.CommitHTMRetries += other.CommitHTMRetries
	s.RH2Fallbacks += other.RH2Fallbacks
	s.AllSoftwareWritebacks += other.AllSoftwareWritebacks
	s.UserErrors += other.UserErrors
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.MetadataReads += other.MetadataReads
	s.MetadataWrites += other.MetadataWrites
}

// Commits returns total committed transactions across all paths.
func (s Stats) Commits() uint64 {
	return s.FastCommits + s.SlowCommits + s.SlowSlowCommits + s.ReadOnlyCommits
}

// Aborts returns total aborted attempts across all paths.
func (s Stats) Aborts() uint64 { return s.FastAborts + s.SlowAborts }

// AbortRatio returns aborts per commit (the paper's "Abort Counter" column
// normalizes the same way: attempts/commits).
func (s Stats) AbortRatio() float64 {
	c := s.Commits()
	if c == 0 {
		return 0
	}
	return float64(s.Aborts()) / float64(c)
}

// String summarizes the stats compactly for harness logs.
func (s Stats) String() string {
	return fmt.Sprintf(
		"commits=%d (fast=%d slow=%d slowslow=%d ro=%d) aborts=%d (fast=%d slow=%d) rh2fb=%d sw-wb=%d",
		s.Commits(), s.FastCommits, s.SlowCommits, s.SlowSlowCommits, s.ReadOnlyCommits,
		s.Aborts(), s.FastAborts, s.SlowAborts, s.RH2Fallbacks, s.AllSoftwareWritebacks)
}
