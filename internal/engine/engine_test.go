package engine

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"rhtm/internal/memsim"
)

func TestStatsAddAndTotals(t *testing.T) {
	a := Stats{FastCommits: 1, SlowCommits: 2, SlowSlowCommits: 3, ReadOnlyCommits: 4,
		FastAborts: 5, SlowAborts: 6, RH2Fallbacks: 7, Reads: 8, Writes: 9,
		MetadataReads: 10, MetadataWrites: 11, CommitHTMRetries: 12,
		AllSoftwareWritebacks: 13, UserErrors: 14}
	a.FastAbortsByReason[memsim.AbortConflict] = 2
	b := a
	a.Add(b)
	if a.FastCommits != 2 || a.SlowCommits != 4 || a.SlowSlowCommits != 6 || a.ReadOnlyCommits != 8 {
		t.Fatalf("Add commits wrong: %+v", a)
	}
	if a.Commits() != 20 {
		t.Fatalf("Commits = %d, want 20", a.Commits())
	}
	if a.Aborts() != 22 {
		t.Fatalf("Aborts = %d, want 22", a.Aborts())
	}
	if a.FastAbortsByReason[memsim.AbortConflict] != 4 {
		t.Fatalf("reason breakdown not added: %v", a.FastAbortsByReason)
	}
	if a.RH2Fallbacks != 14 || a.AllSoftwareWritebacks != 26 || a.UserErrors != 28 {
		t.Fatalf("Add misc wrong: %+v", a)
	}
}

func TestAbortRatio(t *testing.T) {
	var s Stats
	if s.AbortRatio() != 0 {
		t.Fatal("empty stats should have ratio 0")
	}
	s.FastCommits = 10
	s.FastAborts = 5
	if got := s.AbortRatio(); got != 0.5 {
		t.Fatalf("ratio = %v, want 0.5", got)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{FastCommits: 3, SlowCommits: 1}
	str := s.String()
	for _, want := range []string{"commits=4", "fast=3", "slow=1"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
}

func TestRunBodyPassesThroughErrors(t *testing.T) {
	sentinel := errors.New("boom")
	err, aborted, _ := RunBody(func(tx Tx) error { return sentinel }, nil)
	if !errors.Is(err, sentinel) || aborted {
		t.Fatalf("err=%v aborted=%v, want sentinel,false", err, aborted)
	}
}

func TestRunBodyCatchesRetry(t *testing.T) {
	err, aborted, reason := RunBody(func(tx Tx) error {
		Retry(memsim.AbortCapacity)
		return nil
	}, nil)
	if err != nil || !aborted || reason != memsim.AbortCapacity {
		t.Fatalf("got err=%v aborted=%v reason=%v", err, aborted, reason)
	}
}

func TestRunBodyPropagatesForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	_, _, _ = RunBody(func(tx Tx) error { panic("user bug") }, nil)
}

func TestBackoffBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	start := time.Now()
	for attempt := 0; attempt < 20; attempt++ {
		Backoff(rng, attempt)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("20 backoffs took %v, want bounded", elapsed)
	}
}
