package engine

import (
	"math/rand"
	"runtime"
	"time"
)

// Backoff applies bounded randomized exponential backoff after the attempt-th
// consecutive abort of a transaction. The first few retries only yield the
// processor (cheap, keeps the pipeline hot); later retries sleep for a
// randomized, exponentially growing interval to break conflict convoys. This
// is the simple contention management the paper assumes ("some kind of
// contention management mechanism can be applied", §2.3).
func Backoff(rng *rand.Rand, attempt int) {
	if attempt < 3 {
		runtime.Gosched()
		return
	}
	shift := attempt - 2
	if shift > 10 {
		shift = 10
	}
	max := 1 << shift // microseconds
	d := time.Duration(1+rng.Intn(max)) * time.Microsecond
	time.Sleep(d)
}
