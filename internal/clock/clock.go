// Package clock implements the global version clock used by every
// timestamp-based protocol in this repository (TL2, RH1, RH2, Standard
// HyTM).
//
// The clock is a single word of simulated memory, so hardware transactions
// that read it speculatively are subject to conflict detection on its line —
// the property the paper exploits. Two advancement disciplines are provided:
//
//   - GV6 (the paper's choice, from Avni & Shavit and TL2): GVNext does NOT
//     modify the clock; committers install clock+1 and only *aborting*
//     software transactions advance the clock. The clock line therefore stays
//     quiescent while transactions succeed, so hardware transactions that
//     speculatively read it almost never conflict on it.
//
//   - GV5 (ablation): every GVNext atomically increments the clock. Correct,
//     but every increment is a plain store to the clock line, aborting every
//     in-flight hardware transaction that read it. The ext-clock experiment
//     quantifies the damage.
package clock

import (
	"fmt"

	"rhtm/internal/memsim"
)

// Mode selects the clock advancement discipline.
type Mode int

const (
	// GV6 advances only on aborts; GVNext is clock+1 without a store.
	GV6 Mode = iota
	// GV5 advances on every GVNext with an atomic increment.
	GV5
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case GV6:
		return "GV6"
	case GV5:
		return "GV5"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Clock is a global version clock stored in one simulated word.
type Clock struct {
	mem  *memsim.Memory
	addr memsim.Addr
	mode Mode
}

// New allocates a clock word in its own line of m (so clock traffic never
// false-shares with data) and returns the clock.
func New(m *memsim.Memory, mode Mode) (*Clock, error) {
	reg, err := m.AllocRegion(m.Config().WordsPerLine)
	if err != nil {
		return nil, err
	}
	return &Clock{mem: m, addr: reg.Base, mode: mode}, nil
}

// Addr returns the clock word's address. Hardware transactions read the
// clock through their own speculative loads of this address.
func (c *Clock) Addr() memsim.Addr { return c.addr }

// Mode returns the advancement discipline.
func (c *Clock) Mode() Mode { return c.mode }

// Read returns the current global version (the paper's GVRead). It is a
// plain load; under GV6 the word changes only when software transactions
// abort.
func (c *Clock) Read() uint64 { return c.mem.Load(c.addr) }

// Next returns the version a committing transaction should install (the
// paper's GVNext). Under GV6 this is Read()+1 with no store. Under GV5 it
// atomically increments the clock and returns the new value.
func (c *Clock) Next() uint64 {
	if c.mode == GV5 {
		return c.mem.FetchAdd(c.addr, 1)
	}
	return c.mem.Load(c.addr) + 1
}

// NextFromSample returns the install version corresponding to a previously
// sampled clock value. Hardware fast paths use this: they speculatively load
// the clock word inside the transaction (so the load participates in
// conflict detection) and derive the install version without any store.
func (c *Clock) NextFromSample(sample uint64) uint64 { return sample + 1 }

// AdvanceOnAbort publishes the version an aborting transaction observed, so
// that the observed-but-never-stored version sampled by Next becomes properly
// ordered for the retry. Under GV6 an aborting software transaction calls
// this with its start version; the CAS advances the clock at most once per
// observed value, keeping clock stores rare. Under GV5 it is a no-op (the
// clock already advanced at Next).
func (c *Clock) AdvanceOnAbort(observed uint64) {
	if c.mode == GV5 {
		return
	}
	// CAS from the observed value to observed+1. If it fails, someone else
	// already advanced the clock past the observed value — good enough.
	c.mem.CAS(c.addr, observed, observed+1)
}
