package clock

import (
	"sync"
	"testing"

	"rhtm/internal/memsim"
)

func newClock(t *testing.T, mode Mode) (*memsim.Memory, *Clock) {
	t.Helper()
	m := memsim.New(memsim.DefaultConfig(256))
	c, err := New(m, mode)
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

func TestGV6NextDoesNotStore(t *testing.T) {
	_, c := newClock(t, GV6)
	if got := c.Read(); got != 0 {
		t.Fatalf("initial Read = %d, want 0", got)
	}
	if got := c.Next(); got != 1 {
		t.Fatalf("Next = %d, want 1", got)
	}
	if got := c.Read(); got != 0 {
		t.Fatalf("Read after GV6 Next = %d, want 0 (no store)", got)
	}
}

func TestGV5NextIncrements(t *testing.T) {
	_, c := newClock(t, GV5)
	if got := c.Next(); got != 1 {
		t.Fatalf("first GV5 Next = %d, want 1", got)
	}
	if got := c.Next(); got != 2 {
		t.Fatalf("second GV5 Next = %d, want 2", got)
	}
	if got := c.Read(); got != 2 {
		t.Fatalf("Read after GV5 Next = %d, want 2", got)
	}
}

func TestAdvanceOnAbortGV6(t *testing.T) {
	_, c := newClock(t, GV6)
	start := c.Read()
	c.AdvanceOnAbort(start)
	if got := c.Read(); got != start+1 {
		t.Fatalf("Read after AdvanceOnAbort = %d, want %d", got, start+1)
	}
	// Stale observation: the clock already moved past it; must not regress.
	c.AdvanceOnAbort(start)
	if got := c.Read(); got != start+1 {
		t.Fatalf("stale AdvanceOnAbort changed clock to %d, want %d", got, start+1)
	}
}

func TestAdvanceOnAbortGV5NoOp(t *testing.T) {
	_, c := newClock(t, GV5)
	c.Next()
	before := c.Read()
	c.AdvanceOnAbort(before)
	if got := c.Read(); got != before {
		t.Fatalf("GV5 AdvanceOnAbort changed clock: %d -> %d", before, got)
	}
}

func TestNextFromSample(t *testing.T) {
	_, c := newClock(t, GV6)
	if got := c.NextFromSample(41); got != 42 {
		t.Fatalf("NextFromSample(41) = %d, want 42", got)
	}
}

func TestClockOwnLine(t *testing.T) {
	m, c := newClock(t, GV6)
	reg := m.MustAllocRegion(1)
	if m.LineOf(c.Addr()) == m.LineOf(reg.Base) {
		t.Fatal("clock shares a line with a subsequently allocated region")
	}
}

func TestModeString(t *testing.T) {
	if GV6.String() != "GV6" || GV5.String() != "GV5" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Fatalf("unknown mode string = %q", Mode(9).String())
	}
}

// TestConcurrentAdvanceMonotonic checks that concurrent aborters never move
// the clock backwards and that it advances at least once.
func TestConcurrentAdvanceMonotonic(t *testing.T) {
	_, c := newClock(t, GV6)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.AdvanceOnAbort(c.Read())
			}
		}()
	}
	wg.Wait()
	final := c.Read()
	if final == 0 {
		t.Fatal("clock never advanced")
	}
	if final > 8*500 {
		t.Fatalf("clock advanced more than once per AdvanceOnAbort call: %d", final)
	}
}
