package dbtest

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rhtm/kv"
)

// The crash-injection conformance section. A RecoveryRig wraps one durable
// DB (OpenLocal / OpenCluster over crash-injectable storage) with the
// hooks the battery needs: the log's crash-point coordinate space, a
// recover-at-cut constructor that opens a fresh backend over the crashed
// image, and an independent committed-prefix map oracle decoded from the
// same image. The section then checks, for a clean stop and for fuzzed
// crash offsets under a concurrent workload, that post-recovery state
// equals the oracle exactly — no torn transaction, the transfer invariant
// intact, revisions monotone across the crash, leases still attached.

// RecoveryRig is one durable DB under crash test.
type RecoveryRig struct {
	// DB is the running durable DB; Clock its virtual-time source.
	DB    kv.DB
	Clock *kv.ManualClock
	// LogBytes reports the storage's global append position — the
	// coordinate space crash cuts are taken in. A cut at LogBytes() is a
	// clean stop: everything appended survives.
	LogBytes func() uint64
	// RecoverAt clones the storage as of a crash at cut and opens a fresh
	// backend over the clone (the original DB keeps running). It returns
	// the recovered DB and its post-quiescence validate hook.
	RecoverAt func(cut uint64) (kv.DB, func() error, error)
	// OracleAt decodes the same crashed image with an independent
	// committed-prefix replayer into a plain map (reserved keys included).
	OracleAt func(cut uint64) (map[string][]byte, error)
}

// RecoveryFactory builds a fresh rig.
type RecoveryFactory func(t *testing.T) *RecoveryRig

// diffRecovered compares a recovered DB's full user keyspace against the
// oracle's user keys.
func diffRecovered(db kv.DB, oracle map[string][]byte) error {
	got := map[string][]byte{}
	it := db.Scan(nil, nil, 0)
	for it.Next() {
		got[string(it.Key())] = append([]byte(nil), it.Value()...)
	}
	if err := it.Err(); err != nil {
		return fmt.Errorf("recovered scan: %w", err)
	}
	want := map[string][]byte{}
	for k, v := range oracle {
		if len(k) > 0 && k[0] != 0x00 {
			want[k] = v
		}
	}
	for k, v := range want {
		gv, ok := got[k]
		if !ok {
			return fmt.Errorf("recovered state misses %q (oracle %x)", k, v)
		}
		if !bytes.Equal(gv, v) {
			return fmt.Errorf("recovered %q = %x, oracle %x", k, gv, v)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			return fmt.Errorf("recovered state has phantom key %q", k)
		}
	}
	return nil
}

// testDBRecovery is the DBRecovery section.
func testDBRecovery(t *testing.T, rf RecoveryFactory) {
	t.Run("CleanStop", func(t *testing.T) { testRecoveryCleanStop(t, rf) })
	t.Run("CrashFuzz", func(t *testing.T) { testRecoveryCrashFuzz(t, rf) })
}

// testRecoveryCleanStop runs a deterministic sequential workload — one-shot
// ops, pair transactions, a mid-run checkpoint, lease traffic — then
// recovers at the clean-stop cut and demands exact equality with both a Go
// map oracle tracked alongside the run and the log-decoded oracle, plus
// monotone revisions, live watches, and working lease expiry across the
// crash.
func testRecoveryCleanStop(t *testing.T, rf RecoveryFactory) {
	rig := rf(t)
	db := rig.DB
	oracle := map[string][]byte{}
	rng := rand.New(rand.NewSource(42))
	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("rec-%02d", i)) }
	const keys = 12

	put := func(k, v []byte) {
		if err := db.Put(k, v); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
		oracle[string(k)] = v
	}
	for op := 0; op < 90; op++ {
		switch rng.Intn(5) {
		case 0, 1:
			v := make([]byte, rng.Intn(40)+1)
			rng.Read(v)
			put(keyOf(rng.Intn(keys)), v)
		case 2:
			k := keyOf(rng.Intn(keys))
			err := db.Delete(k)
			if _, ok := oracle[string(k)]; ok != (err == nil) {
				t.Fatalf("Delete(%s) err=%v, oracle present=%v", k, err, ok)
			}
			delete(oracle, string(k))
		case 3: // pair transaction: both halves carry the same payload
			a := []byte(fmt.Sprintf("pair-%02d-a", rng.Intn(4)))
			b := append(append([]byte(nil), a[:len(a)-1]...), 'b')
			v := make([]byte, 8)
			rng.Read(v)
			err := db.Update(func(tx kv.Txn) error {
				if err := tx.Put(a, v); err != nil {
					return err
				}
				return tx.Put(b, v)
			})
			if err != nil {
				t.Fatalf("pair update: %v", err)
			}
			oracle[string(a)], oracle[string(b)] = v, v
		default: // batch
			var ops []kv.Op
			for i := 0; i < 3; i++ {
				k := keyOf(rng.Intn(keys))
				v := make([]byte, 16)
				rng.Read(v)
				ops = append(ops, kv.Op{Kind: kv.OpPut, Key: k, Value: v})
				oracle[string(k)] = v
			}
			if _, err := db.Batch(ops); err != nil {
				t.Fatalf("batch: %v", err)
			}
		}
		if op == 45 {
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("mid-run checkpoint: %v", err)
			}
		}
	}

	// Lease traffic: one lease that must survive recovery with its key,
	// one revoked before the crash whose key must stay gone.
	live, err := db.Grant(1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("leased-live"), []byte("v"), kv.WithLease(live)); err != nil {
		t.Fatal(err)
	}
	oracle["leased-live"] = []byte("v")
	dead, err := db.Grant(1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("leased-dead"), []byte("v"), kv.WithLease(dead)); err != nil {
		t.Fatal(err)
	}
	if err := db.Revoke(dead); err != nil {
		t.Fatal(err)
	}

	preRev := map[string]kv.Revision{}
	for i := 0; i < keys; i++ {
		if _, rev, err := db.GetRev(keyOf(i)); err == nil {
			preRev[string(keyOf(i))] = rev
		}
	}

	cut := rig.LogBytes()
	db2, validate, err := rig.RecoverAt(cut)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	logOracle, err := rig.OracleAt(cut)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if err := diffRecovered(db2, logOracle); err != nil {
		t.Fatalf("recovered state vs log oracle: %v", err)
	}
	for k, v := range oracle {
		got, err := db2.Get([]byte(k))
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("recovered %q = %x, %v; want %x", k, got, err, v)
		}
	}
	if _, err := db2.Get([]byte("leased-dead")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("revoked lease's key resurrected: %v", err)
	}

	// Revisions are monotone across the crash: recovered keys report their
	// pre-crash revision, and a fresh write advances past it.
	for k, want := range preRev {
		_, rev, err := db2.GetRev([]byte(k))
		if err != nil {
			t.Fatalf("GetRev(%s): %v", k, err)
		}
		if rev != want {
			t.Fatalf("recovered %q at revision %d, pre-crash %d", k, rev, want)
		}
	}
	if err := db2.Put(keyOf(0), []byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	_, rev, err := db2.GetRev(keyOf(0))
	if err != nil || rev <= preRev[string(keyOf(0))] {
		t.Fatalf("post-recovery write revision %d (err %v) not past pre-crash %d",
			rev, err, preRev[string(keyOf(0))])
	}

	// A replay reaching into the recovered range must lead with an
	// explicit EventLost: the rebuilt rings cannot prove that history
	// complete (checkpoints fold overwritten revisions and deletes away),
	// and silent thinning would break the watch contract.
	histCtx, histCancel := context.WithCancel(context.Background())
	histCh, err := db2.Watch(histCtx, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-histCh:
		if ev.Kind != kv.EventLost {
			t.Fatalf("fromRev replay into recovered history led with %+v, want EventLost", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fromRev replay into recovered history delivered nothing")
	}
	histCancel()

	// Watches resume on the recovered event plumbing.
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := db2.Watch(ctx, []byte("watch-"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Put([]byte("watch-k"), []byte("w")); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-ch:
		if ev.Kind != kv.EventPut || string(ev.Key) != "watch-k" {
			t.Fatalf("post-recovery watch event %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("post-recovery watch delivered nothing")
	}
	cancel()
	if w, ok := db2.(interface{ WaitWatchIdle() }); ok {
		w.WaitWatchIdle()
	}

	// The recovered lease still expires on the recovered clock.
	clock2, ok := db2.Clock().(*kv.ManualClock)
	if !ok {
		t.Fatal("recovered DB lost its manual clock")
	}
	clock2.Advance(2000)
	if _, err := db2.ExpireLeases(); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Get([]byte("leased-live")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("recovered lease did not expire its key: %v", err)
	}
	if err := validate(); err != nil {
		t.Fatal(err)
	}
}

// testRecoveryCrashFuzz drives a concurrent transfer workload (conserved
// pair totals — the transfer invariant) plus an insert/delete toggler,
// then recovers at fuzz-chosen crash offsets, including cuts mid-record
// and cuts inside 2PC windows on the cluster. Every recovery must equal
// the log oracle exactly, keep the invariant (the initial funding batch
// and each transfer are atomic: totals are all-or-nothing), and pass the
// backend's structural validation.
func testRecoveryCrashFuzz(t *testing.T, rf RecoveryFactory) {
	for _, seed := range []int64{7, 8} {
		rig := rf(t)
		db := rig.DB
		const accounts = 8
		const initial = 1000
		acct := func(i int) []byte { return []byte(fmt.Sprintf("acct-%d", i)) }
		enc := func(v uint64) []byte {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], v)
			return b[:]
		}
		dec := func(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

		setup := make([]kv.Op, accounts)
		for i := range setup {
			setup[i] = kv.Op{Kind: kv.OpPut, Key: acct(i), Value: enc(initial)}
		}
		if _, err := db.Batch(setup); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			rng := rand.New(rand.NewSource(seed*100 + int64(w)))
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					from, to := rng.Intn(accounts), rng.Intn(accounts)
					if from == to {
						continue
					}
					amt := uint64(rng.Intn(5) + 1)
					err := db.Update(func(tx kv.Txn) error {
						fv, err := tx.Get(acct(from))
						if err != nil {
							return err
						}
						f := dec(fv)
						if f < amt {
							return nil
						}
						tv, err := tx.Get(acct(to))
						if err != nil {
							return err
						}
						if err := tx.Put(acct(from), enc(f-amt)); err != nil {
							return err
						}
						return tx.Put(acct(to), enc(dec(tv)+amt))
					})
					if err != nil {
						t.Errorf("transfer: %v", err)
						return
					}
				}
			}()
		}
		// Toggler: marker pairs appear and vanish atomically.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				mA := []byte(fmt.Sprintf("mk-%d-a", i%3))
				mB := []byte(fmt.Sprintf("mk-%d-b", i%3))
				err := db.Update(func(tx kv.Txn) error {
					if err := tx.Put(mA, enc(uint64(i))); err != nil {
						return err
					}
					return tx.Put(mB, enc(uint64(i)))
				})
				if err == nil && i%2 == 1 {
					err = db.Update(func(tx kv.Txn) error {
						if err := tx.Delete(mA); err != nil {
							return err
						}
						return tx.Delete(mB)
					})
				}
				if err != nil {
					t.Errorf("toggler: %v", err)
					return
				}
			}
		}()
		wg.Wait()
		if t.Failed() {
			return
		}

		total := rig.LogBytes()
		rng := rand.New(rand.NewSource(seed))
		cuts := []uint64{0, total}
		for i := 0; i < 5; i++ {
			cuts = append(cuts, uint64(rng.Int63n(int64(total)+1)))
		}
		for _, cut := range cuts {
			db2, validate, err := rig.RecoverAt(cut)
			if err != nil {
				t.Fatalf("seed %d cut %d: recover: %v", seed, cut, err)
			}
			oracle, err := rig.OracleAt(cut)
			if err != nil {
				t.Fatalf("seed %d cut %d: oracle: %v", seed, cut, err)
			}
			if err := diffRecovered(db2, oracle); err != nil {
				t.Fatalf("seed %d cut %d: %v", seed, cut, err)
			}
			// Transfer invariant: the funding batch and every transfer are
			// atomic, so account totals are all-or-nothing.
			present, sum := 0, uint64(0)
			for i := 0; i < accounts; i++ {
				v, err := db2.Get(acct(i))
				if errors.Is(err, kv.ErrNotFound) {
					continue
				}
				if err != nil {
					t.Fatalf("seed %d cut %d: %v", seed, cut, err)
				}
				present++
				sum += dec(v)
			}
			if present != 0 && present != accounts {
				t.Fatalf("seed %d cut %d: funding batch torn: %d of %d accounts", seed, cut, present, accounts)
			}
			if present == accounts && sum != accounts*initial {
				t.Fatalf("seed %d cut %d: total %d, want %d — transfer torn by recovery",
					seed, cut, sum, accounts*initial)
			}
			// Marker pairs are atomic too.
			for i := 0; i < 3; i++ {
				_, errA := db2.Get([]byte(fmt.Sprintf("mk-%d-a", i)))
				_, errB := db2.Get([]byte(fmt.Sprintf("mk-%d-b", i)))
				if errors.Is(errA, kv.ErrNotFound) != errors.Is(errB, kv.ErrNotFound) {
					t.Fatalf("seed %d cut %d: phantom marker %d", seed, cut, i)
				}
			}
			if err := validate(); err != nil {
				t.Fatalf("seed %d cut %d: validate: %v", seed, cut, err)
			}
		}
	}
}
