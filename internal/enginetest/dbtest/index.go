package dbtest

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"rhtm/index"
	"rhtm/table"
)

// The DBIndex section exercises the record layer over the DB under test:
// secondary-index maintenance inside concurrent closures (diffed against a
// map oracle and audited both directions by index.Verify), unique-violation
// atomicity, and online backfill racing live writers. It runs against the
// same factories as every other section, so the battery covers Local, the
// 2PC cluster, and the network client with one body.

// idxSchema is the section's table: integer primary key, a low-cardinality
// category (shared across workers — the cardinality probes contend), and a
// per-row unique tag.
func idxSchema(withCat bool) table.Schema {
	s := table.Schema{
		Name: "items",
		Fields: []table.Field{
			{Name: "id", Type: table.TInt64},
			{Name: "cat", Type: table.TString},
			{Name: "tag", Type: table.TString},
			{Name: "n", Type: table.TInt64},
		},
		Key: []string{"id"},
		Indexes: []table.Index{
			{Name: "by_tag", Fields: []string{"tag"}, Unique: true},
		},
	}
	if withCat {
		s.Indexes = append(s.Indexes, table.Index{Name: "by_cat", Fields: []string{"cat"}})
	}
	return s
}

func itemRow(id int64, cat string, n int64) []table.Value {
	return []table.Value{
		table.Int64(id), table.String(cat),
		table.String(fmt.Sprintf("tag-%d", id)), table.Int64(n),
	}
}

// verifyClean fails the test when the named index disagrees with the base
// rows in either direction.
func verifyClean(t *testing.T, tbl *table.Table, name string) {
	t.Helper()
	diffs, err := tbl.VerifyIndex(name)
	if err != nil {
		t.Fatalf("VerifyIndex(%s): %v", name, err)
	}
	for _, d := range diffs {
		t.Errorf("index %s: %s: key %x", name, d.Reason, d.Key)
	}
}

func testDBIndex(t *testing.T, factory DBFactory) {
	t.Run("ConcurrentCRUD", func(t *testing.T) { testDBIndexConcurrentCRUD(t, factory) })
	t.Run("UniqueAtomic", func(t *testing.T) { testDBIndexUniqueAtomic(t, factory) })
	t.Run("OnlineBackfill", func(t *testing.T) { testDBIndexOnlineBackfill(t, factory) })
}

// testDBIndexConcurrentCRUD runs striped concurrent insert/upsert/delete
// workers (each owning a private primary-key stripe, all sharing one small
// category pool, so index pages and statistics shards contend) and then
// diffs: every row against the per-worker oracles, both indexes against the
// base rows, statistics against ground truth, and an index-served Select
// against an oracle filter.
func testDBIndexConcurrentCRUD(t *testing.T, factory DBFactory) {
	db, _, validate := factory(t)
	tbl, err := table.New(db, idxSchema(true))
	if err != nil {
		t.Fatal(err)
	}
	cats := []string{"c0", "c1", "c2", "c3"}

	const workers, ops, stripe = 3, 24, 10
	oracles := make([]map[int64][]table.Value, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		oracles[w] = map[int64][]table.Value{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			oracle := oracles[w]
			for op := 0; op < ops; op++ {
				id := int64(w*1000 + rng.Intn(stripe))
				row := itemRow(id, cats[rng.Intn(len(cats))], int64(op))
				switch rng.Intn(3) {
				case 0:
					err := tbl.Insert(row)
					if _, exists := oracle[id]; exists {
						if !errors.Is(err, table.ErrDuplicateKey) {
							t.Errorf("worker %d: Insert(dup %d) err=%v", w, id, err)
						}
					} else if err != nil {
						t.Errorf("worker %d: Insert(%d): %v", w, id, err)
					} else {
						oracle[id] = row
					}
				case 1:
					if err := tbl.Upsert(row); err != nil {
						t.Errorf("worker %d: Upsert(%d): %v", w, id, err)
					} else {
						oracle[id] = row
					}
				default:
					err := tbl.Delete(table.Int64(id))
					if _, exists := oracle[id]; exists {
						if err != nil {
							t.Errorf("worker %d: Delete(%d): %v", w, id, err)
						}
						delete(oracle, id)
					} else if !errors.Is(err, table.ErrRowNotFound) {
						t.Errorf("worker %d: Delete(absent %d) err=%v", w, id, err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := validate(); err != nil {
		t.Fatal(err)
	}

	// Base rows against the oracles (stripes are disjoint, so the union is
	// exact), then both indexes against the base rows.
	var total int64
	distinct := map[string]bool{}
	byCat := map[string]map[int64]bool{}
	for w := 0; w < workers; w++ {
		for id := int64(w * 1000); id < int64(w*1000+stripe); id++ {
			want, ok := oracles[w][id]
			got, err := tbl.Get(table.Int64(id))
			if !ok {
				if !errors.Is(err, table.ErrRowNotFound) {
					t.Errorf("Get(absent %d) err=%v", id, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("Get(%d): %v", id, err)
			}
			total++
			cat := want[1].Text()
			distinct[cat] = true
			if byCat[cat] == nil {
				byCat[cat] = map[int64]bool{}
			}
			byCat[cat][id] = true
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Errorf("row %d field %d = %v, want %v", id, i, got[i], want[i])
				}
			}
		}
	}
	verifyClean(t, tbl, "by_cat")
	verifyClean(t, tbl, "by_tag")

	if rows, err := tbl.RowCount(); err != nil || rows != total {
		t.Errorf("RowCount = %d (err %v), oracle %d", rows, err, total)
	}
	if card, err := tbl.Cardinality("by_cat"); err != nil || card != int64(len(distinct)) {
		t.Errorf("Cardinality(by_cat) = %d (err %v), oracle %d", card, err, len(distinct))
	}
	if card, err := tbl.Cardinality("by_tag"); err != nil || card != total {
		t.Errorf("Cardinality(by_tag) = %d (err %v), oracle %d", card, err, total)
	}

	// An index-served query must agree with the oracle filter.
	for _, cat := range cats {
		rows, err := tbl.Select(table.Query{Conds: []table.Cond{table.Eq("cat", table.String(cat))}})
		if err != nil {
			t.Fatalf("Select(cat=%s): %v", cat, err)
		}
		if len(rows) != len(byCat[cat]) {
			t.Errorf("Select(cat=%s) yielded %d rows, oracle %d", cat, len(rows), len(byCat[cat]))
		}
		for _, r := range rows {
			if !byCat[cat][r[0].Int()] {
				t.Errorf("Select(cat=%s) yielded unexpected row %v", cat, r[0].Int())
			}
		}
	}
}

// testDBIndexUniqueAtomic checks that a refused unique insert leaves no
// trace — no row, no index entries, no statistics drift — sequentially and
// under a concurrent race to one tag where exactly one writer may win.
func testDBIndexUniqueAtomic(t *testing.T, factory DBFactory) {
	db, _, validate := factory(t)
	tbl, err := table.New(db, idxSchema(true))
	if err != nil {
		t.Fatal(err)
	}
	dup := func(id int64, tag string) []table.Value {
		return []table.Value{table.Int64(id), table.String("c0"), table.String(tag), table.Int64(0)}
	}
	if err := tbl.Insert(dup(1, "shared")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(dup(2, "shared")); !errors.Is(err, index.ErrUniqueViolation) {
		t.Fatalf("duplicate tag insert err=%v, want ErrUniqueViolation", err)
	}
	if _, err := tbl.Get(table.Int64(2)); !errors.Is(err, table.ErrRowNotFound) {
		t.Errorf("refused insert left a row: err=%v", err)
	}
	if rows, err := tbl.RowCount(); err != nil || rows != 1 {
		t.Errorf("RowCount after refusal = %d (err %v), want 1", rows, err)
	}
	if card, err := tbl.Cardinality("by_tag"); err != nil || card != 1 {
		t.Errorf("Cardinality after refusal = %d (err %v), want 1", card, err)
	}

	// The race: several writers, one tag, exactly one winner.
	const racers = 4
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = tbl.Insert(dup(int64(10+i), "contested"))
		}()
	}
	wg.Wait()
	if err := validate(); err != nil {
		t.Fatal(err)
	}
	wins := 0
	for i, err := range errs {
		switch {
		case err == nil:
			wins++
		case errors.Is(err, index.ErrUniqueViolation):
		default:
			t.Errorf("racer %d: unexpected error %v", i, err)
		}
	}
	if wins != 1 {
		t.Errorf("%d racers won the unique insert, want exactly 1", wins)
	}
	if rows, err := tbl.RowCount(); err != nil || rows != 2 {
		t.Errorf("RowCount after race = %d (err %v), want 2", rows, err)
	}
	verifyClean(t, tbl, "by_tag")
	verifyClean(t, tbl, "by_cat")
}

// testDBIndexOnlineBackfill seeds rows through a schema without the
// category index, then backfills it in bounded slices while a live writer
// keeps mutating rows through the indexed schema, and audits the result.
func testDBIndexOnlineBackfill(t *testing.T, factory DBFactory) {
	db, _, validate := factory(t)
	old, err := table.New(db, idxSchema(false))
	if err != nil {
		t.Fatal(err)
	}
	const seeded = 40
	for i := 0; i < seeded; i++ {
		if err := old.Insert(itemRow(int64(i), fmt.Sprintf("c%d", i%5), int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	tbl, err := table.New(db, idxSchema(true))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := int64(rng.Intn(seeded))
			if i%4 == 3 {
				if err := tbl.Delete(table.Int64(id)); err != nil && !errors.Is(err, table.ErrRowNotFound) {
					t.Errorf("writer: Delete(%d): %v", id, err)
				}
			} else if err := tbl.Upsert(itemRow(id, fmt.Sprintf("c%d", rng.Intn(5)), int64(i))); err != nil {
				t.Errorf("writer: Upsert(%d): %v", id, err)
			}
		}
	}()
	stats, err := tbl.BuildIndex("by_cat", 8)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	if stats.Batches < 2 {
		t.Errorf("backfill ran %d batch(es), want bounded slices (>= 2)", stats.Batches)
	}
	if err := validate(); err != nil {
		t.Fatal(err)
	}
	verifyClean(t, tbl, "by_cat")
	verifyClean(t, tbl, "by_tag")

	// The backfilled index must serve queries that agree with a ground-truth
	// pass over the base rows.
	want := map[string]int{}
	for i := 0; i < seeded; i++ {
		row, err := tbl.Get(table.Int64(int64(i)))
		if errors.Is(err, table.ErrRowNotFound) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		want[row[1].Text()]++
	}
	for c := 0; c < 5; c++ {
		cat := fmt.Sprintf("c%d", c)
		rows, err := tbl.Select(table.Query{Conds: []table.Cond{table.Eq("cat", table.String(cat))}})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != want[cat] {
			t.Errorf("Select(cat=%s) yielded %d rows, ground truth %d", cat, len(rows), want[cat])
		}
	}
}
