// Package dbtest holds the kv.DB conformance battery — the enginetest-style
// suite for the unified data-layer contract. It lives beside enginetest
// rather than inside it because the raw engine batteries are imported by
// the engine packages' own tests, below rhtm in the import graph, while
// this battery necessarily imports kv (and through it the whole stack).
package dbtest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rhtm/internal/linearize"
	"rhtm/kv"
)

// errUserAbort is the sentinel user error of the oracle scripts: a closure
// returning it must roll back completely and surface it unchanged.
var errUserAbort = errors.New("dbtest: user abort")

// DBFactory builds a fresh kv.DB under test plus the ManualClock it was
// constructed over (the battery's lease sections drive expiry through it)
// and a validate hook run after a workload quiesces (store invariants,
// intent quiescence, decision-log consistency — whatever the
// implementation can check).
type DBFactory func(t *testing.T) (db kv.DB, clock *kv.ManualClock, validate func() error)

// RunDB executes the key-value conformance battery against any kv.DB — the
// single battery both the store-backed Local and the 2PC cluster
// implementation must pass, across every engine:
//
//   - a sequential map-oracle property test mixing one-shot operations,
//     closure transactions (with user-abort rollback), batches, and scans;
//   - per-key linearizability of concurrent single-key operations;
//   - a multi-key transfer invariant (conserved total under concurrent
//     closure transactions, audited by atomic batch reads);
//   - batch semantics (per-op results, in-order visibility, atomicity);
//   - the scan-snapshot property test: concurrent pair-writers and
//     insert/delete togglers must never make a cursor observe a torn pair
//     or a half-inserted (phantom) pair;
//   - the coordination sections (coord.go): conditional-write semantics
//     plus a concurrent CAS lost-update race, lease grant / attach /
//     keep-alive / revoke / virtual-time expiry atomicity under a map
//     oracle and a concurrent pair audit, and the watch section — per-key
//     ordering, completeness against committed write counts, and fromRev
//     replay;
//   - the observability sections (obs.go): DB.Metrics sampled concurrently
//     with a write workload must stay race-free and monotone and agree
//     with ground truth at quiescence, and the tracer must emit exactly
//     one span per closure attempt with the contracted outcome sequence;
//   - with WithRecovery, the crash-injection section (recovery.go): a
//     clean-stop recovery diffed against a map oracle, then fuzzed crash
//     offsets under a concurrent transfer workload — post-recovery state
//     must equal the committed-prefix oracle with the transfer invariant
//     intact, revisions monotone, and leases preserved.
func RunDB(t *testing.T, name string, factory DBFactory, opts ...BatteryOption) {
	var bo batteryOptions
	for _, fn := range opts {
		fn(&bo)
	}
	t.Run(name+"/DBSequentialOracle", func(t *testing.T) { testDBSequentialOracle(t, factory) })
	t.Run(name+"/DBLinearizability", func(t *testing.T) { testDBLinearizability(t, factory) })
	t.Run(name+"/DBAtomicTransfer", func(t *testing.T) { testDBAtomicTransfer(t, factory) })
	t.Run(name+"/DBBatch", func(t *testing.T) { testDBBatch(t, factory) })
	t.Run(name+"/DBScanSnapshot", func(t *testing.T) { testDBScanSnapshot(t, factory) })
	t.Run(name+"/DBRevisionCAS", func(t *testing.T) { testDBRevisionCAS(t, factory) })
	t.Run(name+"/DBLeaseExpiry", func(t *testing.T) { testDBLeaseExpiry(t, factory) })
	t.Run(name+"/DBWatch", func(t *testing.T) { testDBWatch(t, factory) })
	t.Run(name+"/DBWatchCoalesce", func(t *testing.T) { testDBWatchCoalesce(t, factory) })
	t.Run(name+"/DBMetrics", func(t *testing.T) { testDBMetrics(t, factory) })
	t.Run(name+"/DBTrace", func(t *testing.T) { testDBTrace(t, factory) })
	t.Run(name+"/DBIndex", func(t *testing.T) { testDBIndex(t, factory) })
	if bo.recovery != nil {
		t.Run(name+"/DBRecovery", func(t *testing.T) { testDBRecovery(t, bo.recovery) })
	}
	if bo.repl != nil {
		t.Run(name+"/DBReplication", func(t *testing.T) { testDBReplication(t, bo.repl) })
	}
}

// BatteryOption extends RunDB with optional sections.
type BatteryOption func(*batteryOptions)

type batteryOptions struct {
	recovery RecoveryFactory
	repl     ReplFactory
}

// WithRecovery enables the DBRecovery crash-injection section against rigs
// built by rf (durable DBs over crash-injectable storage).
func WithRecovery(rf RecoveryFactory) BatteryOption {
	return func(o *batteryOptions) { o.recovery = rf }
}

// WithReplication enables the DBReplication section — live follower-read
// staleness audits and kill-the-primary failover — against replication
// groups built by rf.
func WithReplication(rf ReplFactory) BatteryOption {
	return func(o *batteryOptions) { o.repl = rf }
}

// testDBSequentialOracle runs a random single-client operation stream — a
// mix of one-shot ops, Update scripts (a quarter of which user-abort, whose
// writes must vanish), batches, and full scans — against a Go map oracle.
func testDBSequentialOracle(t *testing.T, factory DBFactory) {
	for _, seed := range []int64{1, 2, 3} {
		db, _, validate := factory(t)
		oracle := map[string][]byte{}
		rng := rand.New(rand.NewSource(seed))
		keyOf := func(i int) []byte { return []byte(fmt.Sprintf("key-%02d", i)) }
		const keys = 14

		randVal := func(n int) []byte {
			v := make([]byte, rng.Intn(n))
			rng.Read(v)
			return v
		}
		for op := 0; op < 140; op++ {
			switch rng.Intn(6) {
			case 0: // one-shot put
				k := keyOf(rng.Intn(keys))
				v := randVal(40)
				if err := db.Put(k, v); err != nil {
					t.Fatalf("seed %d op %d: Put: %v", seed, op, err)
				}
				oracle[string(k)] = v
			case 1: // one-shot get
				k := keyOf(rng.Intn(keys))
				got, err := db.Get(k)
				want, wok := oracle[string(k)]
				if wok != (err == nil) || (err != nil && !errors.Is(err, kv.ErrNotFound)) {
					t.Fatalf("seed %d op %d: Get(%s) err=%v, oracle present=%v", seed, op, k, err, wok)
				}
				if wok && !bytes.Equal(got, want) {
					t.Fatalf("seed %d op %d: Get(%s) = %x, want %x", seed, op, k, got, want)
				}
			case 2: // one-shot delete
				k := keyOf(rng.Intn(keys))
				err := db.Delete(k)
				_, wok := oracle[string(k)]
				if wok != (err == nil) || (err != nil && !errors.Is(err, kv.ErrNotFound)) {
					t.Fatalf("seed %d op %d: Delete(%s) err=%v, oracle present=%v", seed, op, k, err, wok)
				}
				delete(oracle, string(k))
			case 3: // closure transaction script, sometimes aborting
				steps := rng.Intn(5) + 1
				fail := rng.Intn(4) == 0
				type step struct {
					op  int // 0 put, 1 get, 2 delete
					key int
					val []byte
				}
				script := make([]step, steps)
				for i := range script {
					script[i] = step{op: rng.Intn(3), key: rng.Intn(keys)}
					if script[i].op == 0 {
						script[i].val = randVal(40)
					}
				}
				// Interpret over a shadow first: reads inside the closure are
				// checked against in-flight state whether or not it commits.
				shadow := map[string][]byte{}
				for k, v := range oracle {
					shadow[k] = v
				}
				wants := make([]struct {
					val []byte
					ok  bool
				}, steps)
				for i, st := range script {
					k := string(keyOf(st.key))
					switch st.op {
					case 0:
						shadow[k] = st.val
					case 1:
						wants[i].val, wants[i].ok = shadow[k]
					default:
						_, wants[i].ok = shadow[k]
						delete(shadow, k)
					}
				}
				err := db.Update(func(tx kv.Txn) error {
					for i, st := range script {
						k := keyOf(st.key)
						switch st.op {
						case 0:
							if err := tx.Put(k, st.val); err != nil {
								return err
							}
						case 1:
							got, err := tx.Get(k)
							if wants[i].ok != (err == nil) || (err != nil && !errors.Is(err, kv.ErrNotFound)) {
								return fmt.Errorf("step %d: Get err=%v, want present=%v", i, err, wants[i].ok)
							}
							if wants[i].ok && !bytes.Equal(got, wants[i].val) {
								return fmt.Errorf("step %d: Get = %x, want %x", i, got, wants[i].val)
							}
						default:
							err := tx.Delete(k)
							if wants[i].ok != (err == nil) || (err != nil && !errors.Is(err, kv.ErrNotFound)) {
								return fmt.Errorf("step %d: Delete err=%v, want present=%v", i, err, wants[i].ok)
							}
						}
					}
					if fail {
						return errUserAbort
					}
					return nil
				})
				if fail {
					if err != errUserAbort {
						t.Fatalf("seed %d op %d: err = %v, want oracle abort", seed, op, err)
					}
					continue // rollback: oracle unchanged
				}
				if err != nil {
					t.Fatalf("seed %d op %d: Update: %v", seed, op, err)
				}
				oracle = shadow
			case 4: // batch of independent ops
				n := rng.Intn(4) + 2
				ops := make([]kv.Op, n)
				for i := range ops {
					k := keyOf(rng.Intn(keys))
					switch rng.Intn(3) {
					case 0:
						ops[i] = kv.Op{Kind: kv.OpPut, Key: k, Value: randVal(24)}
					case 1:
						ops[i] = kv.Op{Kind: kv.OpGet, Key: k}
					default:
						ops[i] = kv.Op{Kind: kv.OpDelete, Key: k}
					}
				}
				results, err := db.Batch(ops)
				if err != nil {
					t.Fatalf("seed %d op %d: Batch: %v", seed, op, err)
				}
				for i, bop := range ops {
					k := string(bop.Key)
					want, wok := oracle[k]
					switch bop.Kind {
					case kv.OpPut:
						oracle[k] = bop.Value
					case kv.OpGet:
						if wok != (results[i].Err == nil) ||
							(wok && !bytes.Equal(results[i].Value, want)) {
							t.Fatalf("seed %d op %d batch %d: Get(%s) = %x,%v want %x,%v",
								seed, op, i, k, results[i].Value, results[i].Err, want, wok)
						}
					default:
						if wok != (results[i].Err == nil) {
							t.Fatalf("seed %d op %d batch %d: Delete(%s) err=%v, want present=%v",
								seed, op, i, k, results[i].Err, wok)
						}
						delete(oracle, k)
					}
				}
			default: // full ordered scan
				it := db.Scan(nil, nil, 0)
				var prev []byte
				seen := 0
				for it.Next() {
					if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
						t.Fatalf("seed %d op %d: scan keys out of order: %q then %q", seed, op, prev, it.Key())
					}
					prev = append(prev[:0], it.Key()...)
					want, wok := oracle[string(it.Key())]
					if !wok || !bytes.Equal(it.Value(), want) {
						t.Fatalf("seed %d op %d: scan %s = %x, oracle %x,%v",
							seed, op, it.Key(), it.Value(), want, wok)
					}
					seen++
				}
				if err := it.Err(); err != nil {
					t.Fatalf("seed %d op %d: scan: %v", seed, op, err)
				}
				if seen != len(oracle) {
					t.Fatalf("seed %d op %d: scan saw %d entries, oracle %d", seed, op, seen, len(oracle))
				}
			}
		}
		// Final state must match the oracle exactly.
		for i := 0; i < keys; i++ {
			got, err := db.Get(keyOf(i))
			want, wok := oracle[string(keyOf(i))]
			if wok != (err == nil) || (wok && !bytes.Equal(got, want)) {
				t.Fatalf("seed %d final key %d: got %x,%v want %x,%v", seed, i, got, err, want, wok)
			}
		}
		if err := validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// testDBLinearizability drives concurrent one-shot operations on a small
// key set and checks each key's history with the Wing & Gong register
// checker. Absent keys read as value 0.
func testDBLinearizability(t *testing.T, factory DBFactory) {
	db, _, validate := factory(t)
	const workers = 4
	const opsPerWorker = 12
	keys := [][]byte{[]byte("alpha"), []byte("beta-longer-key"), []byte("g")}

	var clk atomic.Int64
	var mu sync.Mutex
	histories := make([][]linearize.Op, len(keys))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		id := uint64(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 100))
			for i := 0; i < opsPerWorker; i++ {
				ki := rng.Intn(len(keys))
				isWrite := (uint64(i)+id)%2 == 0
				writeVal := (id+1)*1000 + uint64(i) // globally unique, nonzero
				var readVal uint64
				start := clk.Add(1)
				var err error
				if isWrite {
					var buf [8]byte
					binary.LittleEndian.PutUint64(buf[:], writeVal)
					err = db.Put(keys[ki], buf[:])
				} else {
					var v []byte
					v, err = db.Get(keys[ki])
					if errors.Is(err, kv.ErrNotFound) {
						readVal, err = 0, nil
					} else if err == nil {
						readVal = binary.LittleEndian.Uint64(v)
					}
				}
				end := clk.Add(1)
				if err != nil {
					t.Errorf("op: %v", err)
					return
				}
				op := linearize.Op{Start: start, End: end, IsWrite: isWrite, Val: writeVal}
				if !isWrite {
					op.Val = readVal
				}
				mu.Lock()
				histories[ki] = append(histories[ki], op)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for ki, h := range histories {
		ok, err := linearize.CheckRegister(h, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("key %q: history not linearizable:\n%v", keys[ki], h)
		}
	}
	if err := validate(); err != nil {
		t.Fatal(err)
	}
}

// testDBAtomicTransfer moves units between per-key balances with closure
// transactions while auditors take atomic batch reads of every account: a
// torn commit (cross-shard or cross-System, depending on the backend)
// shows up as a non-conserved total.
func testDBAtomicTransfer(t *testing.T, factory DBFactory) {
	db, _, validate := factory(t)
	const accounts = 8
	const initial = 1000
	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("acct-%d", i)) }
	enc := func(v uint64) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		return b[:]
	}
	dec := func(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

	setup := make([]kv.Op, accounts)
	gets := make([]kv.Op, accounts)
	for i := 0; i < accounts; i++ {
		setup[i] = kv.Op{Kind: kv.OpPut, Key: keyOf(i), Value: enc(initial)}
		gets[i] = kv.Op{Kind: kv.OpGet, Key: keyOf(i)}
	}
	if _, err := db.Batch(setup); err != nil {
		t.Fatal(err)
	}

	audit := func() error {
		results, err := db.Batch(gets)
		if err != nil {
			return err
		}
		var total uint64
		for i, r := range results {
			if r.Err != nil {
				return fmt.Errorf("account %d: %v", i, r.Err)
			}
			total += dec(r.Value)
		}
		if total != accounts*initial {
			return fmt.Errorf("total %d, want %d (money not conserved)", total, accounts*initial)
		}
		return nil
	}

	stop := make(chan struct{})
	var auditWg sync.WaitGroup
	auditWg.Add(1)
	go func() {
		defer auditWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := audit(); err != nil {
				t.Errorf("audit: %v", err)
				return
			}
			// An atomic batch read pins every account at once (on the
			// cluster: exclusive read intents across all Systems), so a hot
			// audit loop would starve the transfers it audits. Yield between
			// audits; plenty still run within the workload's lifetime.
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const workers, transfers = 4, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(w) + 7))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amt := uint64(rng.Intn(10))
				err := db.Update(func(tx kv.Txn) error {
					fv, err := tx.Get(keyOf(from))
					if err != nil {
						return err
					}
					f := dec(fv)
					if f < amt {
						return nil
					}
					if err := tx.Put(keyOf(from), enc(f-amt)); err != nil {
						return err
					}
					tv, err := tx.Get(keyOf(to))
					if err != nil {
						return err
					}
					return tx.Put(keyOf(to), enc(dec(tv)+amt))
				})
				if err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	auditWg.Wait()

	if err := audit(); err != nil {
		t.Fatal(err)
	}
	if err := validate(); err != nil {
		t.Fatal(err)
	}
}

// testDBBatch pins the batch contract: per-op results, in-batch-order
// visibility (a Get after a Put of the same key sees the Put), ErrNotFound
// as a per-op result rather than a batch failure, and result ordering.
func testDBBatch(t *testing.T, factory DBFactory) {
	db, _, validate := factory(t)

	if res, err := db.Batch(nil); err != nil || len(res) != 0 {
		t.Fatalf("empty batch = %v, %v", res, err)
	}

	results, err := db.Batch([]kv.Op{
		{Kind: kv.OpGet, Key: []byte("missing")},
		{Kind: kv.OpPut, Key: []byte("a"), Value: []byte("1")},
		{Kind: kv.OpGet, Key: []byte("a")},
		{Kind: kv.OpDelete, Key: []byte("a")},
		{Kind: kv.OpGet, Key: []byte("a")},
		{Kind: kv.OpDelete, Key: []byte("never")},
		{Kind: kv.OpPut, Key: []byte("b"), Value: []byte("2")},
	})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if !errors.Is(results[0].Err, kv.ErrNotFound) {
		t.Fatalf("get missing: %+v", results[0])
	}
	if results[2].Err != nil || !bytes.Equal(results[2].Value, []byte("1")) {
		t.Fatalf("get-after-put saw %+v", results[2])
	}
	if results[3].Err != nil {
		t.Fatalf("delete-after-put: %+v", results[3])
	}
	if !errors.Is(results[4].Err, kv.ErrNotFound) {
		t.Fatalf("get-after-delete saw %+v", results[4])
	}
	if !errors.Is(results[5].Err, kv.ErrNotFound) {
		t.Fatalf("delete missing: %+v", results[5])
	}
	if _, err := db.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("key a survived its in-batch delete: %v", err)
	}
	if v, err := db.Get([]byte("b")); err != nil || !bytes.Equal(v, []byte("2")) {
		t.Fatalf("key b = %x, %v", v, err)
	}

	// A wide batch of puts lands completely, spread over shards/Systems.
	var wide []kv.Op
	for i := 0; i < 24; i++ {
		wide = append(wide, kv.Op{Kind: kv.OpPut,
			Key:   []byte(fmt.Sprintf("wide-%02d", i)),
			Value: []byte(fmt.Sprintf("val-%d", i))})
	}
	if _, err := db.Batch(wide); err != nil {
		t.Fatal(err)
	}
	it := db.Scan([]byte("wide-"), []byte("wide-~"), 0)
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil || n != 24 {
		t.Fatalf("wide batch: scan found %d entries, err %v", n, err)
	}
	if err := validate(); err != nil {
		t.Fatal(err)
	}
}

// testDBScanSnapshot is the scan-consistency property test: writers keep
// pairs of keys equal (incrementing both in one transaction) while a
// toggler atomically inserts and deletes marker pairs; concurrent cursors
// must observe strictly ascending keys, never a torn pair (unequal
// counters), and never a phantom (exactly one half of a marker pair).
func testDBScanSnapshot(t *testing.T, factory DBFactory) {
	db, _, validate := factory(t)
	const pairs = 8
	enc := func(v uint64) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		return b[:]
	}
	dec := func(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }
	keyA := func(i int) []byte { return []byte(fmt.Sprintf("pair-%02d-a", i)) }
	keyB := func(i int) []byte { return []byte(fmt.Sprintf("pair-%02d-b", i)) }

	var setup []kv.Op
	for i := 0; i < pairs; i++ {
		setup = append(setup,
			kv.Op{Kind: kv.OpPut, Key: keyA(i), Value: enc(0)},
			kv.Op{Kind: kv.OpPut, Key: keyB(i), Value: enc(0)})
	}
	if _, err := db.Batch(setup); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		rng := rand.New(rand.NewSource(int64(w) + 31))
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := rng.Intn(pairs)
				err := db.Update(func(tx kv.Txn) error {
					va, err := tx.Get(keyA(p))
					if err != nil {
						return err
					}
					vb, err := tx.Get(keyB(p))
					if err != nil {
						return err
					}
					if dec(va) != dec(vb) {
						// Optimistic backends only guarantee mutually
						// consistent reads at commit; an observed tear means
						// validation would fail, so request the retry — the
						// kv contract's ErrConflict escape hatch.
						return kv.ErrConflict
					}
					if err := tx.Put(keyA(p), enc(dec(va)+1)); err != nil {
						return err
					}
					return tx.Put(keyB(p), enc(dec(vb)+1))
				})
				if err != nil {
					t.Errorf("pair writer: %v", err)
					return
				}
			}
		}()
	}
	// Toggler: marker pairs appear and disappear atomically — any cursor
	// catching exactly one half saw a phantom.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mA := []byte(fmt.Sprintf("marker-%02d-a", i%4))
			mB := []byte(fmt.Sprintf("marker-%02d-b", i%4))
			err := db.Update(func(tx kv.Txn) error {
				if err := tx.Put(mA, enc(uint64(i))); err != nil {
					return err
				}
				return tx.Put(mB, enc(uint64(i)))
			})
			if err == nil {
				err = db.Update(func(tx kv.Txn) error {
					if err := tx.Delete(mA); err != nil {
						return err
					}
					return tx.Delete(mB)
				})
			}
			if err != nil {
				t.Errorf("toggler: %v", err)
				return
			}
		}
	}()

	check := func(entries []kv.Entry) error {
		byKey := map[string]uint64{}
		var prev []byte
		for _, e := range entries {
			if prev != nil && bytes.Compare(prev, e.Key) >= 0 {
				return fmt.Errorf("keys out of order: %q then %q", prev, e.Key)
			}
			prev = e.Key
			byKey[string(e.Key)] = dec(e.Value)
		}
		for i := 0; i < pairs; i++ {
			a, aok := byKey[string(keyA(i))]
			b, bok := byKey[string(keyB(i))]
			// Bounded cursors can cut between the halves of a pair, so only
			// pairs fully inside the prefix are comparable.
			if aok && bok && a != b {
				return fmt.Errorf("torn pair %d: %d != %d", i, a, b)
			}
		}
		for i := 0; i < 4; i++ {
			a, aok := byKey[fmt.Sprintf("marker-%02d-a", i)]
			b, bok := byKey[fmt.Sprintf("marker-%02d-b", i)]
			if aok != bok {
				return fmt.Errorf("phantom marker %d: a=%v b=%v", i, aok, bok)
			}
			if aok && a != b {
				return fmt.Errorf("torn marker %d: %d != %d", i, a, b)
			}
		}
		return nil
	}

	const scans = 30
	var scanErr error
	for s := 0; s < scans && scanErr == nil; s++ {
		limit := 0
		if s%3 == 1 {
			limit = pairs // bounded cursor: a consistent prefix
		}
		it := db.Scan(nil, []byte("q"), limit)
		var entries []kv.Entry
		for it.Next() {
			entries = append(entries,
				kv.Entry{Key: append([]byte(nil), it.Key()...), Value: append([]byte(nil), it.Value()...)})
		}
		if err := it.Err(); err != nil {
			scanErr = err
			break
		}
		if limit > 0 && len(entries) > limit {
			scanErr = fmt.Errorf("limit %d scan yielded %d entries", limit, len(entries))
			break
		}
		scanErr = check(entries)
	}
	close(stop)
	writers.Wait()
	if scanErr != nil {
		t.Fatal(scanErr)
	}
	// Full scans on a full-pair snapshot must contain both halves of every
	// pair once the writers quiesce.
	it := db.Scan([]byte("pair-"), []byte("pair-~"), 0)
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil || n != 2*pairs {
		t.Fatalf("final pair scan: %d entries, err %v", n, err)
	}
	if err := validate(); err != nil {
		t.Fatal(err)
	}
}
