package dbtest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rhtm/kv"
	"rhtm/repl"
)

// The replication conformance section. A ReplRig wraps one durable primary
// DB inside a repl.Group with a hook to grow same-shaped replicas, plus the
// same independent committed-prefix oracle the recovery section uses — so
// a promotion's outcome is diffed against a replayer that shares only the
// frame codec with the code under test. The section checks, live:
//
//   - follower reads never observe a revision above the watermark they
//     advertise, and a floor taken from a completed primary write is
//     honored (the returned revision is at least the floor) or refused
//     with ErrTooStale — never silently violated;
//   - after a drain, follower state equals primary state exactly;
//   - killing the primary mid-transfer-workload and promoting a replica
//     loses zero acknowledged writes, keeps the transfer invariant intact
//     across the promotion (all-or-nothing for in-flight cross-System
//     transactions), agrees with the independent oracle, rejects the
//     zombie primary's post-fence commits, and leaves the surviving
//     replica following the new primary.

// ReplRig is one replication group under test.
type ReplRig struct {
	// DB is the running durable primary; Group the replication group
	// wrapping it.
	DB    kv.DB
	Group *repl.Group
	// AddReplica grows the group with a fresh same-shaped replica and
	// returns it with its post-quiescence validate hook.
	AddReplica func() (*repl.Follower, func() error, error)
	// OracleNow decodes the primary's storage with an independent
	// committed-prefix replayer into a plain map (reserved keys included).
	OracleNow func() (map[string][]byte, error)
}

// ReplFactory builds a fresh rig.
type ReplFactory func(t *testing.T) *ReplRig

func testDBReplication(t *testing.T, rf ReplFactory) {
	t.Run("FollowerReads", func(t *testing.T) { testFollowerReads(t, rf) })
	t.Run("Failover", func(t *testing.T) { testFailover(t, rf) })
}

// testFollowerReads audits the staleness contract under live traffic, then
// diffs the drained replica against the primary exactly.
func testFollowerReads(t *testing.T, rf ReplFactory) {
	rig := rf(t)
	defer rig.Group.Close()
	f, validate, err := rig.AddReplica()
	if err != nil {
		t.Fatal(err)
	}

	const keys = 16
	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("rk-%02d", i)) }
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writes atomic.Uint64
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := keyOf(rng.Intn(keys))
				var err error
				if rng.Intn(8) == 0 {
					if err = rig.DB.Delete(k); errors.Is(err, kv.ErrNotFound) {
						err = nil // the other writer got there first
					}
				} else {
					err = rig.DB.Put(k, []byte(fmt.Sprintf("w%d-%d", w, i)))
				}
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				writes.Add(1)
			}
		}(w)
	}

	// The auditor races the writers: every successful ReadAt with a floor
	// taken from a completed primary write must return rev in [floor,
	// watermark] — never a future revision, never a pre-floor value.
	wg.Add(1)
	var audits, stales uint64
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := keyOf(rng.Intn(keys))
			_, floor, err := rig.DB.GetRev(k)
			if errors.Is(err, kv.ErrNotFound) {
				continue
			}
			if err != nil {
				t.Errorf("auditor GetRev: %v", err)
				return
			}
			val, rev, wm, err := f.ReadAt(k, floor)
			audits++
			switch {
			case errors.Is(err, kv.ErrTooStale):
				stales++
			case errors.Is(err, kv.ErrNotFound):
				if wm < floor {
					t.Errorf("ReadAt(%s, %d): ErrNotFound with watermark %d below floor", k, floor, wm)
					return
				}
			case err != nil:
				t.Errorf("ReadAt(%s, %d): %v", k, floor, err)
				return
			default:
				if rev > wm {
					t.Errorf("ReadAt(%s): rev %d above watermark %d", k, rev, wm)
					return
				}
				if rev < floor {
					t.Errorf("ReadAt(%s): rev %d below honored floor %d (value %q)", k, rev, floor, val)
					return
				}
			}
		}
	}()

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if writes.Load() == 0 || audits == 0 {
		t.Fatalf("workload did not run: %d writes, %d audits", writes.Load(), audits)
	}
	t.Logf("%d writes, %d audits (%d provably stale refusals)", writes.Load(), audits, stales)

	// Drained, the replica is the primary: every key identical in value
	// and revision, and the deterministic staleness refusal holds.
	if err := f.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		k := keyOf(i)
		pv, prev, perr := rig.DB.GetRev(k)
		fv, frev, _, ferr := f.FollowerGet(k)
		if errors.Is(perr, kv.ErrNotFound) {
			if !errors.Is(ferr, kv.ErrNotFound) {
				t.Fatalf("%s: absent on primary, %v on follower", k, ferr)
			}
			continue
		}
		if perr != nil || ferr != nil {
			t.Fatalf("%s: primary %v, follower %v", k, perr, ferr)
		}
		if prev != frev || !bytes.Equal(pv, fv) {
			t.Fatalf("%s: primary (%x, rev %d) != follower (%x, rev %d)", k, pv, prev, fv, frev)
		}
	}
	if _, _, _, err := f.ReadAt(keyOf(0), kv.Revision(1)<<40); !errors.Is(err, kv.ErrTooStale) {
		t.Fatalf("ReadAt(future floor): %v, want ErrTooStale", err)
	}
	snap := rig.Group.Metrics().Flatten()
	if snap["repl.lag_frames"] != 0 {
		t.Fatalf("drained replica lags %d frames", snap["repl.lag_frames"])
	}
	if validate != nil {
		if err := validate(); err != nil {
			t.Fatalf("replica validate: %v", err)
		}
	}
}

// testFailover kills the primary under a concurrent transfer workload,
// promotes a replica, and audits the committed state three ways: value
// conservation (all-or-nothing transfers), the independent committed-prefix
// oracle, and the surviving replica's view of the new primary.
func testFailover(t *testing.T, rf ReplFactory) {
	rig := rf(t)
	defer rig.Group.Close()
	fA, valA, err := rig.AddReplica()
	if err != nil {
		t.Fatal(err)
	}
	fB, valB, err := rig.AddReplica()
	if err != nil {
		t.Fatal(err)
	}

	const accounts = 8
	const unit = 100
	acct := func(i int) []byte { return []byte(fmt.Sprintf("acct-%d", i)) }
	for i := 0; i < accounts; i++ {
		if err := rig.DB.Put(acct(i), []byte{unit}); err != nil {
			t.Fatal(err)
		}
	}

	var transfers atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			for {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				err := rig.DB.Update(func(tx kv.Txn) error {
					a, err := tx.Get(acct(from))
					if err != nil {
						return err
					}
					b, err := tx.Get(acct(to))
					if err != nil {
						return err
					}
					if a[0] == 0 {
						return nil
					}
					if err := tx.Put(acct(from), []byte{a[0] - 1}); err != nil {
						return err
					}
					return tx.Put(acct(to), []byte{b[0] + 1})
				})
				if errors.Is(err, kv.ErrFenced) {
					return // the kill landed mid-workload: this primary is done
				}
				if err != nil {
					t.Errorf("transfer worker %d: %v", w, err)
					return
				}
				transfers.Add(1)
			}
		}(w)
	}

	// Kill mid-workload, once the transfer traffic is provably in flight.
	deadline := time.Now().Add(30 * time.Second)
	for transfers.Load() < 30 && !t.Failed() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	rig.Group.Kill()
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := rig.DB.Put([]byte("zombie"), []byte("x")); !errors.Is(err, kv.ErrFenced) {
		t.Fatalf("zombie primary Put: %v, want ErrFenced", err)
	}

	newDB, promoted, err := rig.Group.Promote()
	if err != nil {
		t.Fatal(err)
	}
	survivor, survivorValidate := fA, valA
	promotedValidate := valB
	if promoted == fA {
		survivor, survivorValidate = fB, valB
		promotedValidate = valA
	}

	// All-or-nothing across the promotion: an in-flight transfer either
	// moved the unit on both accounts or on neither.
	total := 0
	for i := 0; i < accounts; i++ {
		v, err := newDB.Get(acct(i))
		if err != nil {
			t.Fatalf("promoted Get(acct-%d): %v", i, err)
		}
		total += int(v[0])
	}
	if total != accounts*unit {
		t.Fatalf("transfer invariant broken by failover: total %d, want %d (after %d transfers)",
			total, accounts*unit, transfers.Load())
	}
	// The independent committed-prefix replayer agrees with the promoted DB.
	oracle, err := rig.OracleNow()
	if err != nil {
		t.Fatal(err)
	}
	if err := diffRecovered(newDB, oracle); err != nil {
		t.Fatalf("promoted state vs oracle: %v", err)
	}
	if _, err := newDB.Get([]byte("zombie")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("zombie write survived the fence: %v", err)
	}

	// The new primary serves; the survivor follows it at a fresh watermark.
	if err := newDB.Put([]byte("post-promo"), []byte("ok")); err != nil {
		t.Fatalf("promoted primary Put: %v", err)
	}
	if err := survivor.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if v, _, _, err := survivor.FollowerGet([]byte("post-promo")); err != nil || string(v) != "ok" {
		t.Fatalf("survivor after failover: %q, %v", v, err)
	}

	m := rig.Group.Membership()
	if m.Epoch != 2 || m.Primary != promoted.Name() {
		t.Fatalf("membership after promotion: %+v", m)
	}
	snap := rig.Group.Metrics().Flatten()
	if snap["repl.promotions"] != 1 {
		t.Fatalf("repl.promotions = %d, want 1", snap["repl.promotions"])
	}
	if snap["repl.fenced_frames"] == 0 {
		t.Fatal("repl.fenced_frames = 0: the zombie rejection went uncounted")
	}
	for _, v := range []struct {
		name string
		fn   func() error
	}{{"promoted", promotedValidate}, {"survivor", survivorValidate}} {
		if v.fn != nil {
			if err := v.fn(); err != nil {
				t.Fatalf("%s validate: %v", v.name, err)
			}
		}
	}
}
