package dbtest

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rhtm/kv"
)

// The coordination sections of the battery: conditional writes, leases, and
// watch streams — the etcd-grade surface both backends must implement with
// identical semantics.

func enc64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

func dec64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// testDBRevisionCAS pins conditional-write semantics sequentially, then
// races CAS increments from several workers: with compare-and-swap doing
// the locking, every successful PutIf is one lost-update-free increment, so
// the final counter must equal the number of successes — which the workers
// drive to an exact total by retrying mismatches.
func testDBRevisionCAS(t *testing.T, factory DBFactory) {
	db, _, validate := factory(t)
	key := []byte("cas-key")

	// Create-only semantics: rev 0 means "must be absent".
	if err := db.PutIf(key, []byte("v1"), 7); !errors.Is(err, kv.ErrRevisionMismatch) {
		t.Fatalf("PutIf(nonzero) on absent key: %v, want ErrRevisionMismatch", err)
	}
	if err := db.PutIf(key, []byte("v1"), 0); err != nil {
		t.Fatalf("create PutIf: %v", err)
	}
	if err := db.PutIf(key, []byte("v2"), 0); !errors.Is(err, kv.ErrRevisionMismatch) {
		t.Fatalf("create PutIf on present key: %v, want ErrRevisionMismatch", err)
	}
	v, rev1, err := db.GetRev(key)
	if err != nil || !bytes.Equal(v, []byte("v1")) || rev1 == 0 {
		t.Fatalf("GetRev = (%q, %d, %v)", v, rev1, err)
	}
	// Guarded overwrite advances the revision; the stale guard then fails.
	if err := db.PutIf(key, []byte("v2"), rev1); err != nil {
		t.Fatalf("guarded PutIf: %v", err)
	}
	_, rev2, err := db.GetRev(key)
	if err != nil || rev2 <= rev1 {
		t.Fatalf("rev after CAS = %d (was %d), err %v", rev2, rev1, err)
	}
	if err := db.PutIf(key, []byte("v3"), rev1); !errors.Is(err, kv.ErrRevisionMismatch) {
		t.Fatalf("stale PutIf: %v, want ErrRevisionMismatch", err)
	}
	// Txn.Revision sees the same version the one-shot surface reports.
	if err := db.Update(func(tx kv.Txn) error {
		r, err := tx.Revision(key)
		if err != nil {
			return err
		}
		if r != rev2 {
			return fmt.Errorf("tx.Revision = %d, want %d", r, rev2)
		}
		if r, err = tx.Revision([]byte("never-written")); err != nil || r != 0 {
			return fmt.Errorf("tx.Revision(absent) = %d, %v", r, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Conditional delete.
	if err := db.DeleteIf(key, rev1); !errors.Is(err, kv.ErrRevisionMismatch) {
		t.Fatalf("stale DeleteIf: %v, want ErrRevisionMismatch", err)
	}
	if err := db.DeleteIf(key, rev2); err != nil {
		t.Fatalf("DeleteIf: %v", err)
	}
	if err := db.DeleteIf(key, rev2); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("DeleteIf on absent key: %v, want ErrNotFound", err)
	}
	// Reinsertion never reuses an old revision (no ABA across delete).
	if err := db.PutIf(key, []byte("back"), 0); err != nil {
		t.Fatal(err)
	}
	if _, rev3, _ := db.GetRev(key); rev3 <= rev2 {
		t.Fatalf("reinserted rev %d not past deleted rev %d", rev3, rev2)
	}

	// The CAS race: every increment must land exactly once.
	const workers, increments = 4, 12
	counter := []byte("cas-counter")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				for {
					cur, rev, err := db.GetRev(counter)
					var next uint64
					switch {
					case errors.Is(err, kv.ErrNotFound):
						rev, next = 0, 1
					case err == nil:
						next = dec64(cur) + 1
					default:
						t.Errorf("GetRev: %v", err)
						return
					}
					err = db.PutIf(counter, enc64(next), rev)
					if err == nil {
						break
					}
					if !errors.Is(err, kv.ErrRevisionMismatch) {
						t.Errorf("PutIf: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	final, err := db.Get(counter)
	if err != nil || dec64(final) != workers*increments {
		t.Fatalf("CAS counter = %v (err %v), want %d", final, err, workers*increments)
	}
	if err := validate(); err != nil {
		t.Fatal(err)
	}
}

// testDBLeaseExpiry drives grants, attachments, keep-alives, revokes and
// virtual-time expiry against a map oracle, then audits expiry atomicity
// under concurrency: a lease's keys must vanish together, detached keys
// must survive, and a kept-alive lease must outlive the pump.
func testDBLeaseExpiry(t *testing.T, factory DBFactory) {
	db, clock, validate := factory(t)

	expire := func() int {
		n, err := db.ExpireLeases()
		if err != nil {
			t.Fatalf("ExpireLeases: %v", err)
		}
		return n
	}
	mustPut := func(key string, lease kv.LeaseID) {
		var err error
		if lease == 0 {
			err = db.Put([]byte(key), []byte("v-"+key))
		} else {
			err = db.Put([]byte(key), []byte("v-"+key), kv.WithLease(lease))
		}
		if err != nil {
			t.Fatalf("Put %s: %v", key, err)
		}
	}
	present := func(key string) bool {
		_, err := db.Get([]byte(key))
		if err != nil && !errors.Is(err, kv.ErrNotFound) {
			t.Fatalf("Get %s: %v", key, err)
		}
		return err == nil
	}

	// Dead-lease operations fail cleanly.
	if err := db.Put([]byte("x"), []byte("v"), kv.WithLease(999)); !errors.Is(err, kv.ErrLeaseNotFound) {
		t.Fatalf("attach to unknown lease: %v, want ErrLeaseNotFound", err)
	}
	if err := db.KeepAlive(999); !errors.Is(err, kv.ErrLeaseNotFound) {
		t.Fatalf("KeepAlive unknown lease: %v", err)
	}
	if err := db.Revoke(999); !errors.Is(err, kv.ErrLeaseNotFound) {
		t.Fatalf("Revoke unknown lease: %v", err)
	}

	short, err := db.Grant(10)
	if err != nil {
		t.Fatal(err)
	}
	long, err := db.Grant(100)
	if err != nil {
		t.Fatal(err)
	}
	mustPut("s1", short)
	mustPut("s2", short)
	mustPut("s3", short)
	mustPut("l1", long)
	mustPut("plain", 0)
	mustPut("s3", 0) // overwrite without the lease: detaches

	if n := expire(); n != 0 {
		t.Fatalf("expired %d leases before the deadline", n)
	}
	clock.Advance(11)
	if n := expire(); n != 1 {
		t.Fatalf("expired %d leases, want 1", n)
	}
	for key, want := range map[string]bool{
		"s1": false, "s2": false, // attached: gone with the lease
		"s3": true, "l1": true, "plain": true, // detached / other lease / no lease
	} {
		if present(key) != want {
			t.Fatalf("after expiry, present(%s) = %v, want %v", key, !want, want)
		}
	}
	// The dead lease is unusable; the survivor still works.
	if err := db.KeepAlive(short); !errors.Is(err, kv.ErrLeaseNotFound) {
		t.Fatalf("KeepAlive expired lease: %v", err)
	}

	// KeepAlive extends: advance close to the deadline, refresh, cross the
	// old deadline — the lease must survive; let it lapse — it must go.
	clock.Advance(80) // t ≈ 92, long deadline ≈ 101
	if err := db.KeepAlive(long); err != nil {
		t.Fatal(err)
	}
	clock.Advance(60) // past the original deadline, inside the refreshed one
	if n := expire(); n != 0 {
		t.Fatalf("refreshed lease expired (%d)", n)
	}
	if !present("l1") {
		t.Fatal("kept-alive lease lost its key")
	}
	clock.Advance(100)
	if n := expire(); n != 1 {
		t.Fatalf("lapsed lease not expired (%d)", n)
	}
	if present("l1") {
		t.Fatal("lapsed lease kept its key")
	}

	// Revoke deletes the lease's keys atomically, honoring detachment.
	lease, err := db.Grant(1000)
	if err != nil {
		t.Fatal(err)
	}
	mustPut("r1", lease)
	mustPut("r2", lease)
	mustPut("r2", 0)
	if err := db.Revoke(lease); err != nil {
		t.Fatal(err)
	}
	if present("r1") || !present("r2") {
		t.Fatalf("revoke: r1 present=%v r2 present=%v, want false/true", present("r1"), present("r2"))
	}

	// Concurrency: pairs attached to one lease expire atomically — an
	// auditor's snapshot scans must never see half a pair.
	stop := make(chan struct{})
	var auditWg sync.WaitGroup
	auditWg.Add(1)
	go func() {
		defer auditWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			it := db.Scan([]byte("pair-"), []byte("pair-~"), 0)
			seen := map[string]bool{}
			for it.Next() {
				seen[string(it.Key())] = true
			}
			if err := it.Err(); err != nil {
				t.Errorf("audit scan: %v", err)
				return
			}
			for k := range seen {
				var other string
				if k[len(k)-1] == 'a' {
					other = k[:len(k)-1] + "b"
				} else {
					other = k[:len(k)-1] + "a"
				}
				if !seen[other] {
					t.Errorf("torn lease expiry: %s present without %s", k, other)
					return
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	for round := 0; round < 8 && !t.Failed(); round++ {
		l, err := db.Grant(5)
		if err != nil {
			t.Fatal(err)
		}
		a := fmt.Sprintf("pair-%02d-a", round)
		b := fmt.Sprintf("pair-%02d-b", round)
		// Attach both halves in one transaction so they appear together.
		err = db.Update(func(tx kv.Txn) error {
			if err := tx.Put([]byte(a), []byte("1"), kv.WithLease(l)); err != nil {
				return err
			}
			return tx.Put([]byte(b), []byte("1"), kv.WithLease(l))
		})
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(6)
		expire()
	}
	close(stop)
	auditWg.Wait()
	if t.Failed() {
		return
	}
	it := db.Scan([]byte("pair-"), []byte("pair-~"), 0)
	for it.Next() {
		t.Fatalf("lease-held pair key %q survived expiry", it.Key())
	}
	if err := validate(); err != nil {
		t.Fatal(err)
	}
}

// collectEvents drains ch until want events arrive (or the timeout), then
// returns them.
func collectEvents(t *testing.T, ch <-chan kv.Event, want int, timeout time.Duration) []kv.Event {
	t.Helper()
	var out []kv.Event
	deadline := time.After(timeout)
	for len(out) < want {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("watch channel closed after %d/%d events", len(out), want)
			}
			out = append(out, ev)
		case <-deadline:
			t.Fatalf("timed out with %d/%d events: %+v", len(out), want, out)
		}
	}
	return out
}

// testDBWatch checks the watch contract: prefix filtering, per-key
// ordering, delivery of exactly the committed writes (at-least-once with
// no silent drops — the buffers here are sized so no EventLost fires), and
// fromRev replay of retained history.
func testDBWatch(t *testing.T, factory DBFactory) {
	db, _, validate := factory(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ch, err := db.Watch(ctx, []byte("w-"), 0)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}

	// Sequential semantics: four matching events, one filtered out.
	steps := []func() error{
		func() error { return db.Put([]byte("w-a"), []byte("1")) },
		func() error { return db.Put([]byte("w-b"), []byte("2")) },
		func() error { return db.Put([]byte("w-a"), []byte("3")) },
		func() error { return db.Delete([]byte("w-b")) },
		func() error { return db.Put([]byte("other"), []byte("x")) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	events := collectEvents(t, ch, 4, 10*time.Second)
	perKey := map[string][]kv.Event{}
	for _, ev := range events {
		if ev.Kind == kv.EventLost {
			t.Fatalf("unexpected EventLost in %+v", events)
		}
		if !bytes.HasPrefix(ev.Key, []byte("w-")) {
			t.Fatalf("event outside the watched prefix: %+v", ev)
		}
		perKey[string(ev.Key)] = append(perKey[string(ev.Key)], ev)
	}
	wantA := perKey["w-a"]
	if len(wantA) != 2 || wantA[0].Kind != kv.EventPut || string(wantA[0].Value) != "1" ||
		wantA[1].Kind != kv.EventPut || string(wantA[1].Value) != "3" || wantA[1].Rev <= wantA[0].Rev {
		t.Fatalf("w-a events: %+v", wantA)
	}
	wantB := perKey["w-b"]
	if len(wantB) != 2 || wantB[0].Kind != kv.EventPut || wantB[1].Kind != kv.EventDelete ||
		wantB[1].Rev <= wantB[0].Rev {
		t.Fatalf("w-b events: %+v", wantB)
	}

	// fromRev replay: a fresh watcher asking for history from revision 1
	// receives the same four events from the retained log.
	rctx, rcancel := context.WithCancel(context.Background())
	rch, err := db.Watch(rctx, []byte("w-"), 1)
	if err != nil {
		t.Fatal(err)
	}
	replayed := collectEvents(t, rch, 4, 10*time.Second)
	for i, ev := range replayed {
		if ev.Kind == kv.EventLost {
			t.Fatalf("replay reported loss on an intact log: %+v", replayed)
		}
		if i > 0 && bytes.Equal(ev.Key, replayed[i-1].Key) && ev.Rev <= replayed[i-1].Rev {
			t.Fatalf("replay out of order: %+v", replayed)
		}
	}
	rcancel()

	// Concurrent completeness: writers hammer a small key set (single-key
	// puts, multi-key closure transactions, batches); the watcher must see
	// exactly one event per committed write, per-key revisions strictly
	// ascending.
	const writers, opsPerWriter, watchKeys = 3, 20, 5
	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("w-live-%d", i)) }
	var committed [watchKeys]atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				k1 := (w + i) % watchKeys
				switch i % 3 {
				case 0: // one-shot put
					if err := db.Put(keyOf(k1), enc64(uint64(w<<16|i))); err != nil {
						t.Errorf("put: %v", err)
						return
					}
					committed[k1].Add(1)
				case 1: // multi-key closure transaction
					k2 := (k1 + 1) % watchKeys
					err := db.Update(func(tx kv.Txn) error {
						if err := tx.Put(keyOf(k1), enc64(uint64(i))); err != nil {
							return err
						}
						return tx.Put(keyOf(k2), enc64(uint64(i)))
					})
					if err != nil {
						t.Errorf("update: %v", err)
						return
					}
					committed[k1].Add(1)
					committed[k2].Add(1)
				default: // batch
					if _, err := db.Batch([]kv.Op{
						{Kind: kv.OpPut, Key: keyOf(k1), Value: enc64(uint64(i))},
					}); err != nil {
						t.Errorf("batch: %v", err)
						return
					}
					committed[k1].Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	total := 0
	for i := range committed {
		total += int(committed[i].Load())
	}
	live := collectEvents(t, ch, total, 20*time.Second)
	counts := map[string]int{}
	lastRev := map[string]uint64{}
	for _, ev := range live {
		k := string(ev.Key)
		if ev.Kind == kv.EventLost {
			t.Fatalf("EventLost under a sized buffer: %+v", ev)
		}
		if !bytes.HasPrefix(ev.Key, []byte("w-live-")) {
			continue // stragglers from the sequential phase
		}
		if ev.Rev <= lastRev[k] {
			t.Fatalf("per-key order violated for %s: rev %d after %d", k, ev.Rev, lastRev[k])
		}
		lastRev[k] = ev.Rev
		counts[k]++
	}
	for i := range committed {
		if counts[string(keyOf(i))] != int(committed[i].Load()) {
			t.Fatalf("key %d: %d events for %d committed writes",
				i, counts[string(keyOf(i))], committed[i].Load())
		}
	}
	cancel()
	rcancel()
	// The channel must close after cancellation; quiesce the hub before
	// raw-memory validation.
	deadline := time.After(10 * time.Second)
	for closed := false; !closed; {
		select {
		case _, ok := <-ch:
			closed = !ok
		case <-deadline:
			t.Fatal("watch channel did not close after ctx cancellation")
		}
	}
	if w, ok := db.(interface{ WaitWatchIdle() }); ok {
		w.WaitWatchIdle()
	}
	if err := validate(); err != nil {
		t.Fatal(err)
	}
}

// testDBWatchCoalesce pins the overflow ladder under sustained pressure: a
// stalled consumer behind a deliberately tiny delivery queue must degrade
// to latest-value-per-key — older same-key events coalesce away — and as
// long as every overflowing event finds a same-key victim, no EventLost
// marker may fire. The subscriber's terminal view of each key must be the
// last committed value.
func testDBWatchCoalesce(t *testing.T, factory DBFactory) {
	orig := kv.MaxWatchQueue
	kv.MaxWatchQueue = 16
	defer func() { kv.MaxWatchQueue = orig }()

	db, _, validate := factory(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ch, err := db.Watch(ctx, []byte("co-"), 0)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}

	// 4 keys round-robin for 100 rounds while the consumer stalls: far
	// more events than the 16-slot queue holds, but never more than 4
	// distinct keys, so coalescing can always absorb the overflow.
	const keys, rounds = 4, 100
	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("co-%d", i)) }
	var final [keys]uint64
	for r := 1; r <= rounds; r++ {
		for k := 0; k < keys; k++ {
			v := uint64(r<<8 | k)
			if err := db.Put(keyOf(k), enc64(v)); err != nil {
				t.Fatalf("round %d key %d: %v", r, k, err)
			}
			final[k] = v
		}
	}

	// Drain until the final value of every key has been seen; every event
	// must be a Put under the prefix, per-key revisions strictly ascend,
	// and EventLost is a failure — coalescing had victims available.
	last := map[string]uint64{}
	lastRev := map[string]uint64{}
	seenFinal := 0
	deadline := time.After(20 * time.Second)
	for seenFinal < keys {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("watch channel closed early")
			}
			if ev.Kind == kv.EventLost {
				t.Fatalf("EventLost despite coalescible overflow (last=%v)", last)
			}
			if ev.Kind != kv.EventPut || !bytes.HasPrefix(ev.Key, []byte("co-")) {
				t.Fatalf("unexpected event %+v", ev)
			}
			k := string(ev.Key)
			if ev.Rev <= lastRev[k] {
				t.Fatalf("per-key order violated for %s: rev %d after %d", k, ev.Rev, lastRev[k])
			}
			lastRev[k] = ev.Rev
			v := dec64(ev.Value)
			if prev, ok := last[k]; ok && v <= prev {
				t.Fatalf("stale value resurfaced for %s: %#x after %#x", k, v, prev)
			}
			last[k] = v
			if v == final[int(v)&0xff] {
				seenFinal++
			}
		case <-deadline:
			t.Fatalf("timed out waiting for final values; last=%v final=%v", last, final)
		}
	}
	for k := 0; k < keys; k++ {
		if last[string(keyOf(k))] != final[k] {
			t.Fatalf("key %d terminal value %#x, want %#x", k, last[string(keyOf(k))], final[k])
		}
	}
	cancel()
	deadline = time.After(10 * time.Second)
	for closed := false; !closed; {
		select {
		case _, ok := <-ch:
			closed = !ok
		case <-deadline:
			t.Fatal("watch channel did not close after ctx cancellation")
		}
	}
	if w, ok := db.(interface{ WaitWatchIdle() }); ok {
		w.WaitWatchIdle()
	}
	if err := validate(); err != nil {
		t.Fatal(err)
	}
}
