package dbtest

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"rhtm/kv"
	"rhtm/obs"
)

// The observability sections of the battery. DBMetrics drives a concurrent
// read-modify-write workload while sampling DB.Metrics from a racing
// reader — the snapshot must be safe to take mid-run, its commit counters
// must be monotone between samples, and the quiesced snapshot must agree
// with ground truth the test can compute (live keys, lease churn).
// DBTrace pins the tracer contract: one span per closure attempt with the
// attempt index, outcome, engine name, and commit revision — identical on
// both backends by construction, because retries are driven by the
// closure itself.

// tracerSetter is the optional surface a DB exposes for installing a
// tracer after construction; both in-tree backends implement it.
type tracerSetter interface {
	SetTracer(t obs.Tracer)
}

// engineCommits sums the four engine.commits paths of a snapshot.
func engineCommits(s obs.Snapshot) uint64 {
	var total uint64
	for _, path := range []string{"fast", "slow", "slowslow", "readonly"} {
		total += s.Counter(obs.Name("engine.commits", "path", path))
	}
	return total
}

// testDBMetrics checks the Metrics surface under concurrency and against
// ground truth after quiescence.
func testDBMetrics(t *testing.T, factory DBFactory) {
	db, _, validate := factory(t)

	// Baseline: a fresh DB must already expose the full fixed-name schema.
	base := db.Metrics()
	for _, name := range []string{
		obs.Name("engine.commits", "path", "fast"),
		obs.Name("engine.aborts", "path", "slow"),
		"engine.reads", "engine.writes",
	} {
		if _, ok := base.Counters[name]; !ok {
			t.Fatalf("fresh snapshot missing counter %q", name)
		}
	}
	for _, name := range []string{"store.live_keys", "store.pending_intents",
		"store.arena.live_words", "watch.queue_depth"} {
		if _, ok := base.Gauges[name]; !ok {
			t.Fatalf("fresh snapshot missing gauge %q", name)
		}
	}

	// Concurrent phase: writers run a YCSB-A-style read-modify-write mix
	// while a sampler takes snapshots. The race detector guards the
	// safety claim; the monotonicity check guards the semantics.
	const (
		workers = 4
		opsPer  = 120
		keys    = 8
	)
	var writersWg, samplerWg sync.WaitGroup
	stop := make(chan struct{})
	samples := make([]obs.Snapshot, 0, 64)
	samplerWg.Add(1)
	go func() {
		defer samplerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				samples = append(samples, db.Metrics())
			}
		}
	}()
	var werr error
	var werrMu sync.Mutex
	for w := 0; w < workers; w++ {
		writersWg.Add(1)
		go func(w int) {
			defer writersWg.Done()
			for i := 0; i < opsPer; i++ {
				k := []byte(fmt.Sprintf("m-%d", (w+i)%keys))
				err := db.Update(func(tx kv.Txn) error {
					v, err := tx.Get(k)
					if err != nil && !errors.Is(err, kv.ErrNotFound) {
						return err
					}
					return tx.Put(k, append(v[:len(v):len(v)], byte(i)))
				})
				if err != nil {
					werrMu.Lock()
					werr = err
					werrMu.Unlock()
					return
				}
			}
		}(w)
	}
	// The sampler stops only after the writers are done, so the last
	// sample windows still see live traffic.
	writersWg.Wait()
	close(stop)
	samplerWg.Wait()
	if werr != nil {
		t.Fatalf("workload: %v", werr)
	}

	var prev uint64
	for i, s := range samples {
		c := engineCommits(s)
		if c < prev {
			t.Fatalf("sample %d: engine commits went backwards: %d -> %d", i, prev, c)
		}
		prev = c
	}

	// Quiesced ground truth. Every Update committed exactly once, so the
	// engine must report at least workers*opsPer commits (the stores'
	// internal traffic — watch setup, metrics sampling — only adds).
	snap := db.Metrics()
	if got := engineCommits(snap); got < workers*opsPer {
		t.Fatalf("engine commits %d < %d committed updates", got, workers*opsPer)
	}
	if got := snap.Gauge("store.live_keys"); got != keys {
		t.Fatalf("store.live_keys = %d, want %d", got, keys)
	}

	// Lease churn is counted at the kv layer, identically on both
	// backends.
	id, err := db.Grant(100)
	if err != nil {
		t.Fatalf("Grant: %v", err)
	}
	if err := db.KeepAlive(id); err != nil {
		t.Fatalf("KeepAlive: %v", err)
	}
	if err := db.Revoke(id); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	after := db.Metrics()
	for name, delta := range map[string]uint64{
		"lease.grants": 1, "lease.keepalives": 1, "lease.revokes": 1,
	} {
		if got := after.Counter(name) - snap.Counter(name); got != delta {
			t.Fatalf("%s moved by %d, want %d", name, got, delta)
		}
	}

	// The flattened view must agree with the structured one.
	flat := after.Flatten()
	if flat["lease.grants"] != int64(after.Counter("lease.grants")) {
		t.Fatalf("Flatten disagrees with Counter on lease.grants")
	}

	// Net rigs share one registry between the DB and its server, so the
	// same snapshot also carries the server.* taxonomy. The presence of
	// the connections gauge identifies such a backend; the rest of the
	// schema must then be populated and consistent with the workload that
	// just ran over the wire.
	if _, net := after.Gauges["server.connections"]; net {
		if after.Gauge("server.connections") <= 0 {
			t.Fatalf("server.connections = %d with a live client attached", after.Gauge("server.connections"))
		}
		for _, name := range []string{"server.bytes_in", "server.bytes_out"} {
			if after.Counter(name) == 0 {
				t.Fatalf("%s = 0 after a wire workload", name)
			}
		}
		for _, name := range []string{"server.request_ns", "server.batch_fill"} {
			if _, ok := after.Histograms[name]; !ok {
				t.Fatalf("net snapshot missing histogram %q", name)
			}
		}
		var reqs uint64
		for name, v := range after.Counters {
			if len(name) > len("server.requests") && name[:len("server.requests")] == "server.requests" {
				reqs += v
			}
		}
		if reqs == 0 {
			t.Fatalf("no server.requests{kind=...} counters moved during the workload")
		}
	}
	if validate != nil {
		if err := validate(); err != nil {
			t.Fatalf("validate: %v", err)
		}
	}
}

// testDBTrace pins the tracer contract: spans per closure attempt, with
// deterministic retries driven by the closure returning ErrConflict.
func testDBTrace(t *testing.T, factory DBFactory) {
	db, _, _ := factory(t)
	ts, ok := db.(tracerSetter)
	if !ok {
		t.Fatalf("%T does not support SetTracer", db)
	}
	rec := obs.NewRecordingTracer(0)
	ts.SetTracer(rec)

	// Three closure-requested conflicts, then a commit: exactly four
	// spans, attempts 0..3, outcomes conflict×3 then commit. This is the
	// substitution argument at the tracing layer — the schedule is driven
	// by the closure, so every engine and both backends must produce the
	// identical span sequence.
	tries := 0
	err := db.Update(func(tx kv.Txn) error {
		if err := tx.Put([]byte("traced"), []byte{byte(tries)}); err != nil {
			return err
		}
		tries++
		if tries <= 3 {
			return kv.ErrConflict
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(spans), spans)
	}
	for i, sp := range spans {
		if sp.Attempt != i {
			t.Errorf("span %d: attempt %d", i, sp.Attempt)
		}
		if sp.Engine == "" {
			t.Errorf("span %d: empty engine name", i)
		}
		want := obs.OutcomeConflict
		if i == 3 {
			want = obs.OutcomeCommit
		}
		if sp.Outcome != want {
			t.Errorf("span %d: outcome %q, want %q", i, sp.Outcome, want)
		}
		if sp.Outcome == obs.OutcomeCommit && sp.CommitRev == 0 {
			t.Errorf("span %d: committed write reported CommitRev 0", i)
		}
		if sp.Outcome != obs.OutcomeCommit && sp.CommitRev != 0 {
			t.Errorf("span %d: aborted attempt reported CommitRev %d", i, sp.CommitRev)
		}
	}

	// A user error ends the loop with one "error" span carrying the text.
	rec.Reset()
	boom := errors.New("boom")
	if err := db.Update(func(tx kv.Txn) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Update: %v, want boom", err)
	}
	spans = rec.Spans()
	if len(spans) != 1 || spans[0].Outcome != obs.OutcomeError || spans[0].Err != "boom" {
		t.Fatalf("error spans = %+v, want one error span with text", spans)
	}

	// Detaching the tracer stops span emission.
	ts.SetTracer(nil)
	rec.Reset()
	if err := db.Put([]byte("untraced"), []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := db.Update(func(tx kv.Txn) error { return nil }); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if got := rec.Spans(); len(got) != 0 {
		t.Fatalf("detached tracer still received %d spans", len(got))
	}
}
