package enginetest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// ClusterKV is the client surface the cross-System conformance battery
// drives. cluster.Client satisfies it. The battery is defined against this
// interface (rather than the cluster package) so that in-package store
// tests can keep importing enginetest without an import cycle through
// cluster → store.
type ClusterKV interface {
	Get(key []byte) ([]byte, bool, error)
	Put(key, value []byte) error
	Delete(key []byte) (bool, error)
	// ReadMulti returns an atomic snapshot of keys (nil = absent).
	ReadMulti(keys [][]byte) ([][]byte, error)
	// Update atomically transforms keys: fn maps current values (nil =
	// absent) to new ones (nil = delete); a fn error aborts unchanged.
	Update(keys [][]byte, fn func(vals [][]byte) ([][]byte, error)) error
}

// ClusterFactory builds a fresh cluster for one test and returns a session
// spawner (sessions are per-goroutine, like engine threads) plus a validate
// hook run after the workload quiesces (store invariants, no orphaned
// intents, decision-log consistency).
type ClusterFactory func(t *testing.T) (newSession func() ClusterKV, validate func() error)

// RunClusterKV executes the cross-System conformance battery: a sequential
// map-oracle property test over single- and multi-key operations
// (including user-abort rollback of multi-key updates), and the
// cross-System transfer invariant — total balance conserved under
// concurrent multi-key transfers and snapshot audits. Factories should
// induce aborts (engine abort injection and enough contention that 2PC
// prepares conflict) so both decision paths are exercised.
func RunClusterKV(t *testing.T, name string, factory ClusterFactory) {
	t.Run(name+"/ClusterSequentialOracle", func(t *testing.T) { testClusterSequentialOracle(t, factory) })
	t.Run(name+"/ClusterTransferInvariant", func(t *testing.T) { testClusterTransferInvariant(t, factory) })
}

// testClusterSequentialOracle runs random single- and multi-key operations
// against a Go map oracle. Multi-key updates span Systems (keys are spread
// by the cluster's own router); a quarter of them abort with a user error,
// whose buffered writes must vanish completely.
func testClusterSequentialOracle(t *testing.T, factory ClusterFactory) {
	for _, seed := range []int64{1, 2, 3} {
		newSession, validate := factory(t)
		kv := newSession()
		oracle := map[string][]byte{}
		rng := rand.New(rand.NewSource(seed))
		keyOf := func(i int) []byte { return []byte(fmt.Sprintf("key-%02d", i)) }
		const keys = 16

		for op := 0; op < 150; op++ {
			switch rng.Intn(5) {
			case 0: // single put
				k := keyOf(rng.Intn(keys))
				v := make([]byte, rng.Intn(32))
				rng.Read(v)
				if err := kv.Put(k, v); err != nil {
					t.Fatalf("seed %d op %d: Put: %v", seed, op, err)
				}
				oracle[string(k)] = v
			case 1: // single get
				k := keyOf(rng.Intn(keys))
				got, ok, err := kv.Get(k)
				if err != nil {
					t.Fatalf("seed %d op %d: Get: %v", seed, op, err)
				}
				want, wok := oracle[string(k)]
				if ok != wok || !bytes.Equal(got, want) {
					t.Fatalf("seed %d op %d: Get(%s) = %x,%v want %x,%v", seed, op, k, got, ok, want, wok)
				}
			case 2: // single delete
				k := keyOf(rng.Intn(keys))
				present, err := kv.Delete(k)
				if err != nil {
					t.Fatalf("seed %d op %d: Delete: %v", seed, op, err)
				}
				if _, wok := oracle[string(k)]; present != wok {
					t.Fatalf("seed %d op %d: Delete(%s) = %v, want %v", seed, op, k, present, wok)
				}
				delete(oracle, string(k))
			case 3: // multi-key snapshot read
				n := rng.Intn(4) + 2
				var ks [][]byte
				for i := 0; i < n; i++ {
					ks = append(ks, keyOf(rng.Intn(keys)))
				}
				vals, err := kv.ReadMulti(ks)
				if err != nil {
					t.Fatalf("seed %d op %d: ReadMulti: %v", seed, op, err)
				}
				for i, k := range ks {
					want, wok := oracle[string(k)]
					if wok != (vals[i] != nil) || (wok && !bytes.Equal(vals[i], want)) {
						t.Fatalf("seed %d op %d: snapshot[%s] = %x, want %x,%v",
							seed, op, k, vals[i], want, wok)
					}
				}
			default: // multi-key update, sometimes aborting
				n := rng.Intn(3) + 2
				seen := map[int]bool{}
				var ks [][]byte
				for len(ks) < n {
					i := rng.Intn(keys)
					if !seen[i] {
						seen[i] = true
						ks = append(ks, keyOf(i))
					}
				}
				fail := rng.Intn(4) == 0
				newVals := make([][]byte, len(ks))
				for i := range newVals {
					if rng.Intn(5) == 0 {
						newVals[i] = nil // delete
					} else {
						v := make([]byte, rng.Intn(24)+1)
						rng.Read(v)
						newVals[i] = v
					}
				}
				err := kv.Update(ks, func(vals [][]byte) ([][]byte, error) {
					// Current values must match the oracle (sequential run).
					for i, k := range ks {
						want, wok := oracle[string(k)]
						if wok != (vals[i] != nil) || (wok && !bytes.Equal(vals[i], want)) {
							return nil, fmt.Errorf("update saw %x for %s, oracle %x,%v",
								vals[i], k, want, wok)
						}
					}
					if fail {
						return nil, errOracleAbort
					}
					return newVals, nil
				})
				if fail {
					if err != errOracleAbort {
						t.Fatalf("seed %d op %d: err = %v, want oracle abort", seed, op, err)
					}
					continue // oracle unchanged: rollback must be complete
				}
				if err != nil {
					t.Fatalf("seed %d op %d: Update: %v", seed, op, err)
				}
				for i, k := range ks {
					if newVals[i] == nil {
						delete(oracle, string(k))
					} else {
						oracle[string(k)] = newVals[i]
					}
				}
			}
		}
		// Final state must match the oracle exactly.
		for i := 0; i < keys; i++ {
			got, ok, err := kv.Get(keyOf(i))
			if err != nil {
				t.Fatal(err)
			}
			want, wok := oracle[string(keyOf(i))]
			if ok != wok || !bytes.Equal(got, want) {
				t.Fatalf("seed %d final key %d: got %x,%v want %x,%v", seed, i, got, ok, want, wok)
			}
		}
		if err := validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// testClusterTransferInvariant moves units between per-key balances with
// multi-key transactions whose keys scatter over Systems, while auditors
// take snapshot reads of every account: any torn cross-System commit shows
// up as a non-conserved total. Run it under -race with abort injection.
func testClusterTransferInvariant(t *testing.T, factory ClusterFactory) {
	newSession, validate := factory(t)
	kv := newSession()
	const accounts = 10
	const initial = 1000
	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("acct-%d", i)) }
	enc := func(v uint64) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		return b[:]
	}
	dec := func(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }
	allKeys := make([][]byte, accounts)
	for i := range allKeys {
		allKeys[i] = keyOf(i)
		if err := kv.Put(keyOf(i), enc(initial)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var auditWg sync.WaitGroup
	auditWg.Add(1)
	audit := newSession()
	go func() {
		defer auditWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			vals, err := audit.ReadMulti(allKeys)
			if err != nil {
				t.Errorf("audit: %v", err)
				return
			}
			var total uint64
			for i, v := range vals {
				if v == nil {
					t.Errorf("audit: account %d missing", i)
					return
				}
				total += dec(v)
			}
			if total != accounts*initial {
				t.Errorf("audit saw total %d, want %d (torn cross-System commit)",
					total, accounts*initial)
				return
			}
		}
	}()

	const workers, transfers = 4, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(w) + 11))
		session := newSession()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amt := uint64(rng.Intn(10))
				err := session.Update([][]byte{keyOf(from), keyOf(to)},
					func(vals [][]byte) ([][]byte, error) {
						f, tv := dec(vals[0]), dec(vals[1])
						if f < amt {
							return nil, nil // read-only commit: insufficient funds
						}
						return [][]byte{enc(f - amt), enc(tv + amt)}, nil
					})
				if err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	auditWg.Wait()

	var total uint64
	for i := 0; i < accounts; i++ {
		v, ok, err := kv.Get(keyOf(i))
		if err != nil || !ok {
			t.Fatalf("final account %d: ok=%v err=%v", i, ok, err)
		}
		total += dec(v)
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d (money not conserved)", total, accounts*initial)
	}
	if err := validate(); err != nil {
		t.Fatal(err)
	}
}
