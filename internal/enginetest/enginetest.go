// Package enginetest is a conformance suite run against every
// transactional-memory engine in the repository. The properties checked here
// are the ones the paper's correctness arguments rest on: atomicity,
// isolation, snapshot consistency (opacity), serializability of write skew,
// and clean error semantics. Engine-specific behaviour (fallback paths,
// instrumentation counts) is tested in each engine's own package.
package enginetest

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"rhtm/internal/engine"
	"rhtm/internal/memsim"
	"rhtm/internal/sys"
)

// Factory builds a fresh engine and the system it runs on for one test.
type Factory func(t *testing.T, cfg sys.Config) (engine.Engine, *sys.System)

// Capabilities declares optional engine behaviours the suite conditions on.
type Capabilities struct {
	// Unsupported is true if the engine can commit transactions whose body
	// calls Tx.Unsupported (i.e. it has a software path). Pure-hardware
	// engines cannot.
	Unsupported bool
}

// Run executes the full conformance battery.
func Run(t *testing.T, name string, factory Factory, caps Capabilities) {
	t.Run(name+"/Counter", func(t *testing.T) { testCounter(t, factory) })
	t.Run(name+"/ReadYourWrites", func(t *testing.T) { testReadYourWrites(t, factory) })
	t.Run(name+"/UserErrorAborts", func(t *testing.T) { testUserErrorAborts(t, factory) })
	t.Run(name+"/SnapshotConsistency", func(t *testing.T) { testSnapshotConsistency(t, factory) })
	t.Run(name+"/BankTransfer", func(t *testing.T) { testBankTransfer(t, factory) })
	t.Run(name+"/WriteSkew", func(t *testing.T) { testWriteSkew(t, factory) })
	t.Run(name+"/MultiWordAtomicity", func(t *testing.T) { testMultiWordAtomicity(t, factory) })
	t.Run(name+"/Linearizability", func(t *testing.T) { testLinearizability(t, factory) })
	t.Run(name+"/SequentialOracle", func(t *testing.T) { testSequentialOracle(t, factory) })
	if caps.Unsupported {
		t.Run(name+"/Unsupported", func(t *testing.T) { testUnsupported(t, factory) })
	}
}

func smallSys(t *testing.T, factory Factory) (engine.Engine, *sys.System) {
	t.Helper()
	return factory(t, sys.DefaultConfig(1<<12))
}

// testCounter: concurrent read-modify-write increments must all be applied
// exactly once.
func testCounter(t *testing.T, factory Factory) {
	eng, s := smallSys(t, factory)
	ctr := s.Heap.MustAlloc(1)
	const workers, incs = 6, 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := eng.NewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				err := th.Atomic(func(tx engine.Tx) error {
					tx.Store(ctr, tx.Load(ctr)+1)
					return nil
				})
				if err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Mem.Load(ctr); got != workers*incs {
		t.Fatalf("counter = %d, want %d", got, workers*incs)
	}
}

// testReadYourWrites: a transaction observes its own buffered writes.
func testReadYourWrites(t *testing.T, factory Factory) {
	eng, s := smallSys(t, factory)
	a := s.Heap.MustAlloc(1)
	s.Mem.Poke(a, 5)
	th := eng.NewThread()
	err := th.Atomic(func(tx engine.Tx) error {
		if v := tx.Load(a); v != 5 {
			return fmt.Errorf("initial load = %d, want 5", v)
		}
		tx.Store(a, 6)
		if v := tx.Load(a); v != 6 {
			return fmt.Errorf("load after store = %d, want 6", v)
		}
		tx.Store(a, 7)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Mem.Load(a); got != 7 {
		t.Fatalf("final value = %d, want 7", got)
	}
}

// testUserErrorAborts: a body error must surface unchanged and leave memory
// untouched.
func testUserErrorAborts(t *testing.T, factory Factory) {
	eng, s := smallSys(t, factory)
	a := s.Heap.MustAlloc(1)
	th := eng.NewThread()
	sentinel := errors.New("user abort")
	err := th.Atomic(func(tx engine.Tx) error {
		tx.Store(a, 99)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got := s.Mem.Load(a); got != 0 {
		t.Fatalf("aborted store reached memory: %d", got)
	}
}

// testSnapshotConsistency: writers keep two distant words equal; reader
// transactions must never commit having seen unequal values. This is the
// paper's "consistent snapshot" invariant (§2).
func testSnapshotConsistency(t *testing.T, factory Factory) {
	eng, s := smallSys(t, factory)
	a := s.Heap.MustAlloc(1)
	// Force b far away so a and b live in different stripes and lines.
	s.Heap.MustAlloc(256)
	b := s.Heap.MustAlloc(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var violations sync.Map
	for r := 0; r < 3; r++ {
		th := eng.NewThread()
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var va, vb uint64
				if err := th.Atomic(func(tx engine.Tx) error {
					va = tx.Load(a)
					vb = tx.Load(b)
					return nil
				}); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if va != vb {
					violations.Store(fmt.Sprintf("%d!=%d", va, vb), true)
				}
				runtime.Gosched()
			}
		}(r)
	}
	wth := eng.NewThread()
	for i := uint64(1); i <= 80; i++ {
		if err := wth.Atomic(func(tx engine.Tx) error {
			tx.Store(a, i)
			tx.Store(b, i)
			return nil
		}); err != nil {
			t.Fatalf("writer: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	violations.Range(func(k, _ any) bool {
		t.Errorf("torn snapshot observed: %v", k)
		return true
	})
}

// testBankTransfer: random transfers among accounts must conserve the total.
func testBankTransfer(t *testing.T, factory Factory) {
	eng, s := smallSys(t, factory)
	const accounts = 32
	const initial = 1000
	base := s.Heap.MustAlloc(accounts)
	for i := 0; i < accounts; i++ {
		s.Mem.Poke(base+memsim.Addr(i), initial)
	}
	const workers, transfers = 4, 120
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := eng.NewThread()
		seed := uint64(w + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rnd := seed
			next := func(n uint64) uint64 {
				rnd = rnd*6364136223846793005 + 1442695040888963407
				return (rnd >> 33) % n
			}
			for i := 0; i < transfers; i++ {
				from := base + memsim.Addr(next(accounts))
				to := base + memsim.Addr(next(accounts))
				amt := next(10)
				if err := th.Atomic(func(tx engine.Tx) error {
					f := tx.Load(from)
					if f < amt {
						return nil // insufficient funds: plain commit, no-op
					}
					tx.Store(from, f-amt)
					tx.Store(to, tx.Load(to)+amt)
					return nil
				}); err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var total uint64
	for i := 0; i < accounts; i++ {
		total += s.Mem.Load(base + memsim.Addr(i))
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d (money not conserved)", total, accounts*initial)
	}
}

// testWriteSkew: two transactions each read {x,y} and write one of them;
// under serializability the constraint x+y <= 1 (starting from 0,0, each
// writer sets its cell to 1 only if x+y == 0) can be violated at most by one
// cell — i.e. x+y must end ≤ 1. Snapshot-isolation-only systems fail this.
func testWriteSkew(t *testing.T, factory Factory) {
	for round := 0; round < 20; round++ {
		eng, s := smallSys(t, factory)
		x := s.Heap.MustAlloc(1)
		s.Heap.MustAlloc(64)
		y := s.Heap.MustAlloc(1)
		var wg sync.WaitGroup
		run := func(write memsim.Addr) {
			defer wg.Done()
			th := eng.NewThread()
			if err := th.Atomic(func(tx engine.Tx) error {
				if tx.Load(x)+tx.Load(y) == 0 {
					tx.Store(write, 1)
				}
				return nil
			}); err != nil {
				t.Errorf("writer: %v", err)
			}
		}
		wg.Add(2)
		go run(x)
		go run(y)
		wg.Wait()
		if got := s.Mem.Load(x) + s.Mem.Load(y); got > 1 {
			t.Fatalf("round %d: write skew admitted: x+y = %d", round, got)
		}
	}
}

// testMultiWordAtomicity: transactions write k words spread across stripes;
// readers must observe every group entirely old or entirely new.
func testMultiWordAtomicity(t *testing.T, factory Factory) {
	eng, s := smallSys(t, factory)
	const k = 8
	addrs := make([]memsim.Addr, k)
	for i := range addrs {
		addrs[i] = s.Heap.MustAlloc(1)
		s.Heap.MustAlloc(32) // spacing across stripes
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	bad := make(chan string, 1)
	for r := 0; r < 2; r++ {
		th := eng.NewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals := make([]uint64, k)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := th.Atomic(func(tx engine.Tx) error {
					for i, a := range addrs {
						vals[i] = tx.Load(a)
					}
					return nil
				}); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				for i := 1; i < k; i++ {
					if vals[i] != vals[0] {
						select {
						case bad <- fmt.Sprintf("mixed generation: %v", vals):
						default:
						}
					}
				}
				runtime.Gosched()
			}
		}()
	}
	wth := eng.NewThread()
	for gen := uint64(1); gen <= 60; gen++ {
		if err := wth.Atomic(func(tx engine.Tx) error {
			for _, a := range addrs {
				tx.Store(a, gen)
			}
			return nil
		}); err != nil {
			t.Fatalf("writer: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-bad:
		t.Fatal(msg)
	default:
	}
}

// testUnsupported: a body using Tx.Unsupported must still commit (through a
// software path) with its effects intact.
func testUnsupported(t *testing.T, factory Factory) {
	eng, s := smallSys(t, factory)
	a := s.Heap.MustAlloc(1)
	th := eng.NewThread()
	err := th.Atomic(func(tx engine.Tx) error {
		tx.Unsupported()
		tx.Store(a, tx.Load(a)+1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Mem.Load(a); got != 1 {
		t.Fatalf("value = %d, want 1", got)
	}
}
