package enginetest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rhtm/internal/engine"
	"rhtm/internal/memsim"
)

// testSequentialOracle is a property test: random single-threaded
// transaction scripts executed through the engine must behave exactly like
// the same script interpreted over a plain array. Each script is a sequence
// of transactions; each transaction is a sequence of read/write steps; a
// transaction may end in a user error, in which case none of its writes may
// survive. Script generation is driven by testing/quick.
func testSequentialOracle(t *testing.T, factory Factory) {
	f := func(seed int64) bool {
		return runOracleScript(t, factory, seed)
	}
	cfg := &quick.Config{MaxCount: 12}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// runOracleScript executes one random script and compares against the
// oracle. Returns false (failing the property) on divergence.
func runOracleScript(t *testing.T, factory Factory, seed int64) bool {
	t.Helper()
	eng, s := smallSys(t, factory)
	const cells = 24
	base := s.Heap.MustAlloc(cells)
	oracle := make([]uint64, cells)
	rng := rand.New(rand.NewSource(seed))
	th := eng.NewThread()

	for txn := 0; txn < 25; txn++ {
		steps := rng.Intn(8) + 1
		fail := rng.Intn(4) == 0 // a quarter of transactions user-abort
		type step struct {
			write bool
			cell  int
			val   uint64
		}
		script := make([]step, steps)
		for i := range script {
			script[i] = step{
				write: rng.Intn(2) == 0,
				cell:  rng.Intn(cells),
				val:   rng.Uint64() % 1000,
			}
		}
		// Execute through the engine, recording reads.
		var got []uint64
		err := th.Atomic(func(tx engine.Tx) error {
			got = got[:0]
			for _, st := range script {
				a := base + memsim.Addr(st.cell)
				if st.write {
					tx.Store(a, st.val)
				} else {
					got = append(got, tx.Load(a))
				}
			}
			if fail {
				return errOracleAbort
			}
			return nil
		})
		// Interpret over the oracle.
		shadow := append([]uint64(nil), oracle...)
		var want []uint64
		for _, st := range script {
			if st.write {
				shadow[st.cell] = st.val
			} else {
				want = append(want, shadow[st.cell])
			}
		}
		if fail {
			if err != errOracleAbort {
				t.Errorf("seed %d txn %d: err = %v, want oracle abort", seed, txn, err)
				return false
			}
			// Writes discarded; oracle unchanged.
		} else {
			if err != nil {
				t.Errorf("seed %d txn %d: err = %v", seed, txn, err)
				return false
			}
			copy(oracle, shadow)
		}
		if len(got) != len(want) {
			t.Errorf("seed %d txn %d: %d reads, want %d", seed, txn, len(got), len(want))
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("seed %d txn %d read %d: got %d, want %d", seed, txn, i, got[i], want[i])
				return false
			}
		}
	}
	// Final memory must match the oracle exactly.
	for i := 0; i < cells; i++ {
		if got := s.Mem.Load(base + memsim.Addr(i)); got != oracle[i] {
			t.Errorf("seed %d: cell %d = %d, want %d", seed, i, got, oracle[i])
			return false
		}
	}
	return true
}

// errOracleAbort is the sentinel user error used by the oracle scripts.
var errOracleAbort = errSentinel("oracle abort")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }
