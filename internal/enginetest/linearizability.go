package enginetest

import (
	"sync"
	"sync/atomic"
	"testing"

	"rhtm/internal/engine"
	"rhtm/internal/linearize"
)

// testLinearizability drives concurrent single-register transactions and
// verifies the resulting history with the Wing & Gong checker: every
// committed transaction must appear to take effect atomically between its
// invocation and response.
func testLinearizability(t *testing.T, factory Factory) {
	eng, s := smallSys(t, factory)
	reg := s.Heap.MustAlloc(1)

	const workers = 4
	const opsPerWorker = 12 // 48 total ops ≤ the checker's 64-op limit
	var clk atomic.Int64
	var mu sync.Mutex
	var history []linearize.Op
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := eng.NewThread()
		id := uint64(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				isWrite := (uint64(i)+id)%2 == 0
				writeVal := (id+1)*1000 + uint64(i) // globally unique
				var readVal uint64
				start := clk.Add(1)
				err := th.Atomic(func(tx engine.Tx) error {
					if isWrite {
						tx.Store(reg, writeVal)
					} else {
						readVal = tx.Load(reg)
					}
					return nil
				})
				end := clk.Add(1)
				if err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
				op := linearize.Op{Start: start, End: end, IsWrite: isWrite, Val: writeVal}
				if !isWrite {
					op.Val = readVal
				}
				mu.Lock()
				history = append(history, op)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	ok, err := linearize.CheckRegister(history, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("history not linearizable:\n%v", history)
	}
}
