package enginetest

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rhtm/internal/engine"
	"rhtm/internal/linearize"
)

// KV is the transactional key-value surface the store conformance suite
// drives. The store package's Store and Sharded types satisfy it (engine.Tx
// and rhtm.Tx are the same type).
type KV interface {
	Get(tx engine.Tx, key []byte) ([]byte, bool)
	Put(tx engine.Tx, key, value []byte) error
	Delete(tx engine.Tx, key []byte) bool
}

// KVFactory builds a fresh engine and an empty store under test.
type KVFactory func(t *testing.T) (engine.Engine, KV)

// RunKV executes the key-value conformance battery: a sequential
// map-oracle property test (transactional semantics, user-abort rollback),
// per-key linearizability of concurrent single-op transactions, and a
// multi-key transfer invariant exercising cross-key (and, for a sharded
// store, cross-shard) atomicity.
func RunKV(t *testing.T, name string, factory KVFactory) {
	t.Run(name+"/KVSequentialOracle", func(t *testing.T) { testKVSequentialOracle(t, factory) })
	t.Run(name+"/KVLinearizability", func(t *testing.T) { testKVLinearizability(t, factory) })
	t.Run(name+"/KVAtomicTransfer", func(t *testing.T) { testKVAtomicTransfer(t, factory) })
}

// testKVSequentialOracle runs random transaction scripts of Put/Get/Delete
// steps against a Go map oracle. A quarter of the transactions end in a
// user error, whose writes (including allocator state) must be rolled back
// completely.
func testKVSequentialOracle(t *testing.T, factory KVFactory) {
	for _, seed := range []int64{1, 2, 3, 4} {
		eng, kv := factory(t)
		th := eng.NewThread()
		oracle := map[string][]byte{}
		rng := rand.New(rand.NewSource(seed))
		keyOf := func(i int) []byte { return []byte(fmt.Sprintf("key-%02d", i)) }
		const keys = 12

		for txn := 0; txn < 120; txn++ {
			steps := rng.Intn(5) + 1
			fail := rng.Intn(4) == 0
			type step struct {
				op   int // 0 put, 1 get, 2 delete
				key  int
				val  []byte
				got  []byte
				ok   bool
				want []byte
				wok  bool
			}
			script := make([]step, steps)
			for i := range script {
				script[i] = step{op: rng.Intn(3), key: rng.Intn(keys)}
				if script[i].op == 0 {
					// Variable-length values, including empty, exercise the
					// codec and the in-place/realloc Put paths.
					v := make([]byte, rng.Intn(40))
					rng.Read(v)
					script[i].val = v
				}
			}
			err := th.Atomic(func(tx engine.Tx) error {
				for i := range script {
					st := &script[i]
					switch st.op {
					case 0:
						if err := kv.Put(tx, keyOf(st.key), st.val); err != nil {
							return err
						}
					case 1:
						st.got, st.ok = kv.Get(tx, keyOf(st.key))
					default:
						st.ok = kv.Delete(tx, keyOf(st.key))
					}
				}
				if fail {
					return errOracleAbort
				}
				return nil
			})
			// Interpret the same script over a shadow of the oracle.
			shadow := map[string][]byte{}
			for k, v := range oracle {
				shadow[k] = v
			}
			for i := range script {
				st := &script[i]
				k := string(keyOf(st.key))
				switch st.op {
				case 0:
					shadow[k] = st.val
				case 1:
					st.want, st.wok = shadow[k]
				default:
					_, st.wok = shadow[k]
					delete(shadow, k)
				}
			}
			if fail {
				if err != errOracleAbort {
					t.Fatalf("seed %d txn %d: err = %v, want oracle abort", seed, txn, err)
				}
			} else {
				if err != nil {
					t.Fatalf("seed %d txn %d: %v", seed, txn, err)
				}
				oracle = shadow
			}
			// Reads inside the transaction saw the in-flight state, so they
			// are checked against the shadow regardless of the outcome.
			for i := range script {
				st := &script[i]
				if st.op == 0 {
					continue
				}
				if st.ok != st.wok {
					t.Fatalf("seed %d txn %d step %d: present=%v, oracle %v", seed, txn, i, st.ok, st.wok)
				}
				if st.op == 1 && st.ok && !bytes.Equal(st.got, st.want) {
					t.Fatalf("seed %d txn %d step %d: got %x, want %x", seed, txn, i, st.got, st.want)
				}
			}
		}
		// Final state must match the oracle exactly.
		err := th.Atomic(func(tx engine.Tx) error {
			for i := 0; i < keys; i++ {
				got, ok := kv.Get(tx, keyOf(i))
				want, wok := oracle[string(keyOf(i))]
				if ok != wok || !bytes.Equal(got, want) {
					return fmt.Errorf("seed %d final key %d: got %x,%v want %x,%v", seed, i, got, ok, want, wok)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// testKVLinearizability drives concurrent single-op transactions on a small
// key set and checks each key's history with the Wing & Gong register
// checker: Puts write globally unique values, Gets must read consistently
// with some linearization. Absent keys read as value 0.
func testKVLinearizability(t *testing.T, factory KVFactory) {
	eng, kv := factory(t)
	const workers = 4
	const opsPerWorker = 12
	keys := [][]byte{[]byte("alpha"), []byte("beta-longer-key"), []byte("g")}

	var clk atomic.Int64
	var mu sync.Mutex
	histories := make([][]linearize.Op, len(keys))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := eng.NewThread()
		id := uint64(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 100))
			for i := 0; i < opsPerWorker; i++ {
				ki := rng.Intn(len(keys))
				isWrite := (uint64(i)+id)%2 == 0
				writeVal := (id+1)*1000 + uint64(i) // globally unique, nonzero
				var readVal uint64
				start := clk.Add(1)
				err := th.Atomic(func(tx engine.Tx) error {
					if isWrite {
						var buf [8]byte
						binary.LittleEndian.PutUint64(buf[:], writeVal)
						return kv.Put(tx, keys[ki], buf[:])
					}
					v, ok := kv.Get(tx, keys[ki])
					if !ok {
						readVal = 0
					} else {
						readVal = binary.LittleEndian.Uint64(v)
					}
					return nil
				})
				end := clk.Add(1)
				if err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
				op := linearize.Op{Start: start, End: end, IsWrite: isWrite, Val: writeVal}
				if !isWrite {
					op.Val = readVal
				}
				mu.Lock()
				histories[ki] = append(histories[ki], op)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for ki, h := range histories {
		ok, err := linearize.CheckRegister(h, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("key %q: history not linearizable:\n%v", keys[ki], h)
		}
	}
}

// testKVAtomicTransfer moves units between per-key balances with multi-key
// transactions while auditors assert the conserved total. Against a sharded
// store the keys scatter over shards, making every transfer a cross-shard
// transaction.
func testKVAtomicTransfer(t *testing.T, factory KVFactory) {
	eng, kv := factory(t)
	const accounts = 8
	const initial = 1000
	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("acct-%d", i)) }
	enc := func(v uint64) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		return b[:]
	}
	dec := func(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

	setup := eng.NewThread()
	if err := setup.Atomic(func(tx engine.Tx) error {
		for i := 0; i < accounts; i++ {
			if err := kv.Put(tx, keyOf(i), enc(initial)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var auditWg sync.WaitGroup
	for a := 0; a < 2; a++ {
		th := eng.NewThread()
		auditWg.Add(1)
		go func() {
			defer auditWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var total uint64
				if err := th.Atomic(func(tx engine.Tx) error {
					total = 0
					for i := 0; i < accounts; i++ {
						v, ok := kv.Get(tx, keyOf(i))
						if !ok {
							return fmt.Errorf("account %d missing", i)
						}
						total += dec(v)
					}
					return nil
				}); err != nil {
					t.Errorf("audit: %v", err)
					return
				}
				if total != accounts*initial {
					t.Errorf("audit saw total %d, want %d", total, accounts*initial)
					return
				}
			}
		}()
	}

	const workers, transfers = 4, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := eng.NewThread()
		rng := rand.New(rand.NewSource(int64(w) + 7))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				amt := uint64(rng.Intn(10))
				if err := th.Atomic(func(tx engine.Tx) error {
					fv, _ := kv.Get(tx, keyOf(from))
					f := dec(fv)
					if f < amt {
						return nil
					}
					if err := kv.Put(tx, keyOf(from), enc(f-amt)); err != nil {
						return err
					}
					tv, _ := kv.Get(tx, keyOf(to))
					return kv.Put(tx, keyOf(to), enc(dec(tv)+amt))
				}); err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	auditWg.Wait()

	th := eng.NewThread()
	var total uint64
	if err := th.Atomic(func(tx engine.Tx) error {
		total = 0
		for i := 0; i < accounts; i++ {
			v, ok := kv.Get(tx, keyOf(i))
			if !ok {
				return fmt.Errorf("account %d missing", i)
			}
			total += dec(v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d (money not conserved)", total, accounts*initial)
	}
}
