package htm

import (
	"testing"

	"rhtm/internal/memsim"
)

// TestFalseSharingAtLineGranularity pins the DESIGN.md ablation knob #2:
// with 8-word conflict lines, two transactions touching *different* words of
// the same line conflict (false sharing, as on real hardware); with 1-word
// lines they do not.
func TestFalseSharingAtLineGranularity(t *testing.T) {
	run := func(wordsPerLine int) (conflict bool) {
		cfg := memsim.DefaultConfig(256)
		cfg.WordsPerLine = wordsPerLine
		m := memsim.New(cfg)
		a := NewTxn(m, DefaultConfig())
		b := NewTxn(m, DefaultConfig())
		a.Begin()
		b.Begin()
		// Adjacent words: same 8-word line, different 1-word lines.
		if _, ok := a.Read(8); !ok {
			t.Fatal("a.Read failed")
		}
		if !b.Write(9, 1) {
			t.Fatal("b.Write failed")
		}
		conflict = !a.Running()
		a.Abort(memsim.AbortExplicit)
		b.Abort(memsim.AbortExplicit)
		return conflict
	}
	if !run(8) {
		t.Error("8-word lines: adjacent-word accesses did not false-share")
	}
	if run(1) {
		t.Error("1-word lines: adjacent-word accesses conflicted")
	}
}

// TestCommitterWinsEndToEnd verifies that the committer-wins policy resolves
// the same collision by aborting the requester instead.
func TestCommitterWinsEndToEnd(t *testing.T) {
	cfg := memsim.DefaultConfig(256)
	cfg.Policy = memsim.CommitterWins
	m := memsim.New(cfg)
	a := NewTxn(m, DefaultConfig())
	b := NewTxn(m, DefaultConfig())
	a.Begin()
	b.Begin()
	if _, ok := a.Read(8); !ok {
		t.Fatal("a.Read failed")
	}
	if b.Write(8, 1) {
		t.Fatal("committer-wins: requester write succeeded over established reader")
	}
	b.Fini()
	if !a.Running() {
		t.Fatal("committer-wins: established reader was aborted")
	}
	if r := b.AbortReason(); r != memsim.AbortConflict {
		t.Fatalf("requester reason = %v, want conflict", r)
	}
	if !a.Commit() {
		t.Fatal("survivor failed to commit")
	}
}
