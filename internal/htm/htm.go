// Package htm simulates best-effort hardware transactions on top of the
// memsim coherence model.
//
// A Txn provides the programming surface of an RTM-style hardware
// transaction: Begin, speculative Read/Write, Commit, explicit Abort, and an
// abort reason usable for fallback decisions. Like real best-effort HTM it
// guarantees nothing: any transaction can abort at any point due to
// conflicts (detected at cache-line granularity by memsim), capacity
// overflow (configurable read/write footprint limits modelling the L1), or
// an unsupported instruction (Unsupported, modelling syscalls and protected
// instructions that abort real hardware transactions).
//
// Fidelity notes:
//
//   - Speculative writes are invisible until Commit publishes the entire
//     write set atomically (memsim.CommitTxn locks the whole footprint), so
//     other hardware transactions observe all-or-nothing — the property RH1's
//     uninstrumented fast-path reads rely on.
//   - Conflicts are eager: declaring a write invalidates other monitors of
//     the line immediately (requester-wins by default), like the coherence
//     request a real store issues.
//   - Plain (non-transactional) stores abort conflicting transactions via
//     memsim; this simulator adds no extra machinery for that because all
//     memory traffic flows through the same Memory.
//
// Txn values are not safe for concurrent use by multiple goroutines; each
// worker owns one and reuses it across attempts (Begin resets it).
package htm

import (
	"sync/atomic"

	"rhtm/internal/memsim"
)

// Config bounds a transaction's speculative footprint, in lines.
type Config struct {
	// MaxFootprintLines caps the total number of distinct lines a
	// transaction may touch (read or write) before aborting with
	// AbortCapacity. Models the read-tracking capacity (L1/L2 in TSX).
	MaxFootprintLines int
	// MaxWriteLines caps the distinct written lines (the L1 write buffer in
	// TSX, which is the binding constraint on real hardware).
	MaxWriteLines int
}

// DefaultConfig models a 32 KiB, 64-byte-line L1 for writes (512 lines) with
// a 4x larger read-tracking structure.
func DefaultConfig() Config {
	return Config{MaxFootprintLines: 2048, MaxWriteLines: 512}
}

// Transaction states. Idle is the parked state between attempts; only
// Running transactions can be aborted by remote agents.
const (
	stateIdle uint32 = iota
	stateRunning
	stateAborted
	stateCommitted
)

const (
	flagReader uint8 = 1 << iota
	flagWriter
)

// Txn is one reusable simulated hardware-transaction context.
type Txn struct {
	mem *memsim.Memory
	cfg Config

	state  atomic.Uint32
	reason atomic.Uint32

	lineFlags  map[uint64]uint8
	footprint  []uint64 // every registered line, unsorted
	writeLines int

	writes   []memsim.WriteEntry
	writeIdx map[memsim.Addr]int

	stats Stats
}

// Stats counts outcomes across the lifetime of a Txn (i.e. per worker
// thread). Aborts are broken down by reason.
type Stats struct {
	Starts    uint64
	Commits   uint64
	Aborts    uint64
	ByReason  [8]uint64
	ReadOps   uint64
	WriteOps  uint64
	PeakLines int
}

// NewTxn creates a parked transaction context on mem.
func NewTxn(mem *memsim.Memory, cfg Config) *Txn {
	if cfg.MaxFootprintLines <= 0 || cfg.MaxWriteLines <= 0 {
		panic("htm: footprint limits must be positive")
	}
	return &Txn{
		mem:       mem,
		cfg:       cfg,
		lineFlags: make(map[uint64]uint8, 64),
		writeIdx:  make(map[memsim.Addr]int, 32),
	}
}

// Memory returns the memory the transaction runs on.
func (t *Txn) Memory() *memsim.Memory { return t.mem }

// Stats returns a copy of the accumulated statistics.
func (t *Txn) Stats() Stats { return t.stats }

// --- memsim.Handle / memsim.CommitterHandle ---

// TryAbort implements memsim.Handle. It is called by remote agents under
// memsim line locks; it must only transition Running transactions.
func (t *Txn) TryAbort(r memsim.AbortReason) bool {
	if t.state.CompareAndSwap(stateRunning, stateAborted) {
		t.reason.Store(uint32(r))
		return true
	}
	return false
}

// Running implements memsim.Handle.
func (t *Txn) Running() bool { return t.state.Load() == stateRunning }

// TryCommit implements memsim.CommitterHandle; memsim calls it at the
// linearization point inside CommitTxn.
func (t *Txn) TryCommit() bool {
	return t.state.CompareAndSwap(stateRunning, stateCommitted)
}

// --- transaction lifecycle ---

// Begin starts a fresh speculative attempt. The previous attempt, if any,
// must have ended (Commit, Abort, or a failed operation followed by Fini).
func (t *Txn) Begin() {
	if t.state.Load() == stateRunning {
		panic("htm: Begin while running")
	}
	t.resetBuffers()
	t.reason.Store(uint32(memsim.AbortNone))
	t.state.Store(stateRunning)
	t.stats.Starts++
}

func (t *Txn) resetBuffers() {
	clear(t.lineFlags)
	t.footprint = t.footprint[:0]
	t.writes = t.writes[:0]
	clear(t.writeIdx)
	t.writeLines = 0
}

// Read performs a speculative load. ok is false if the transaction is
// (or became) aborted; the caller must then stop and call Fini.
func (t *Txn) Read(a memsim.Addr) (v uint64, ok bool) {
	if t.state.Load() != stateRunning {
		return 0, false
	}
	t.stats.ReadOps++
	if i, hit := t.writeIdx[a]; hit {
		return t.writes[i].Val, true
	}
	lid := t.mem.LineOf(a)
	flags, seen := t.lineFlags[lid]
	if !seen && len(t.footprint) >= t.cfg.MaxFootprintLines {
		t.selfAbort(memsim.AbortCapacity)
		return 0, false
	}
	v, ok = t.mem.SpecLoad(a, t, !seen)
	if !ok {
		return 0, false
	}
	if !seen {
		t.lineFlags[lid] = flags | flagReader
		t.footprint = append(t.footprint, lid)
		if len(t.footprint) > t.stats.PeakLines {
			t.stats.PeakLines = len(t.footprint)
		}
	}
	return v, true
}

// Write performs a speculative store (buffered until Commit). ok is false if
// the transaction is (or became) aborted.
func (t *Txn) Write(a memsim.Addr, v uint64) (ok bool) {
	if t.state.Load() != stateRunning {
		return false
	}
	t.stats.WriteOps++
	lid := t.mem.LineOf(a)
	flags, seen := t.lineFlags[lid]
	if flags&flagWriter == 0 {
		if t.writeLines >= t.cfg.MaxWriteLines ||
			(!seen && len(t.footprint) >= t.cfg.MaxFootprintLines) {
			t.selfAbort(memsim.AbortCapacity)
			return false
		}
		if !t.mem.SpecDeclareWrite(a, t) {
			return false
		}
		t.lineFlags[lid] = flags | flagWriter
		if !seen {
			t.footprint = append(t.footprint, lid)
			if len(t.footprint) > t.stats.PeakLines {
				t.stats.PeakLines = len(t.footprint)
			}
		}
		t.writeLines++
	}
	if i, hit := t.writeIdx[a]; hit {
		t.writes[i].Val = v
		return true
	}
	t.writes = append(t.writes, memsim.WriteEntry{Addr: a, Val: v})
	t.writeIdx[a] = len(t.writes) - 1
	return true
}

// Unsupported models executing an instruction hardware transactions cannot
// run (system call, page fault, protected instruction): the transaction
// aborts with the persistent AbortUnsupported reason.
func (t *Txn) Unsupported() {
	if t.state.Load() == stateRunning {
		t.selfAbort(memsim.AbortUnsupported)
	}
}

// Abort explicitly aborts the transaction with the given reason (the
// XABORT analogue). Safe to call when already aborted.
func (t *Txn) Abort(r memsim.AbortReason) {
	if t.state.Load() == stateRunning {
		t.selfAbort(r)
	}
}

// Commit attempts to atomically publish the write set. On success it returns
// true and the transaction is finished. On failure it returns false;
// AbortReason reports why. Either way the transaction is parked and ready
// for Begin.
func (t *Txn) Commit() bool {
	if t.state.Load() != stateRunning {
		t.finishAbort()
		return false
	}
	fp := memsim.SortFootprint(t.footprint)
	t.footprint = fp
	if t.mem.CommitTxn(t, fp, t.writes) {
		t.stats.Commits++
		t.state.Store(stateIdle)
		return true
	}
	t.finishAbort()
	return false
}

// Fini parks an aborted transaction: it unregisters any remaining monitor
// entries and accounts the abort. Callers invoke it after an operation
// returned ok=false. Idempotent; calling it on an idle Txn is a no-op.
func (t *Txn) Fini() {
	if t.state.Load() == stateAborted {
		t.finishAbort()
	}
}

// selfAbort aborts the transaction from its own goroutine and cleans up.
func (t *Txn) selfAbort(r memsim.AbortReason) {
	t.TryAbort(r)
	t.finishAbort()
}

// finishAbort unregisters from all monitored lines and parks the Txn.
// The handle must not remain registered anywhere once the state leaves
// stateAborted, because the Txn will be reused for the next attempt.
func (t *Txn) finishAbort() {
	if t.state.Load() != stateAborted {
		return
	}
	t.mem.Unregister(t, t.footprint)
	t.stats.Aborts++
	r := t.AbortReason()
	if int(r) < len(t.stats.ByReason) {
		t.stats.ByReason[r]++
	}
	t.state.Store(stateIdle)
}

// AbortReason returns the reason of the most recent abort (AbortNone if the
// last attempt committed).
func (t *Txn) AbortReason() memsim.AbortReason {
	return memsim.AbortReason(t.reason.Load())
}

// FootprintLines returns the number of distinct lines touched by the current
// attempt (diagnostics and capacity experiments).
func (t *Txn) FootprintLines() int { return len(t.footprint) }

// WriteSetLines returns the number of distinct lines written by the current
// attempt.
func (t *Txn) WriteSetLines() int { return t.writeLines }
