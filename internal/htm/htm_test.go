package htm

import (
	"sync"
	"testing"

	"rhtm/internal/memsim"
)

func newMem(words int) *memsim.Memory {
	return memsim.New(memsim.DefaultConfig(words))
}

func TestCommitPublishesWrites(t *testing.T) {
	m := newMem(1024)
	tx := NewTxn(m, DefaultConfig())
	tx.Begin()
	if !tx.Write(8, 1) || !tx.Write(64, 2) {
		t.Fatal("Write failed")
	}
	if m.Peek(8) != 0 || m.Peek(64) != 0 {
		t.Fatal("speculative writes visible before commit")
	}
	if !tx.Commit() {
		t.Fatalf("Commit failed: %v", tx.AbortReason())
	}
	if m.Load(8) != 1 || m.Load(64) != 2 {
		t.Fatal("writes not published at commit")
	}
	if s := tx.Stats(); s.Commits != 1 || s.Starts != 1 {
		t.Fatalf("stats = %+v, want 1 start 1 commit", s)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	m := newMem(1024)
	tx := NewTxn(m, DefaultConfig())
	m.Store(8, 10)
	tx.Begin()
	if v, ok := tx.Read(8); !ok || v != 10 {
		t.Fatalf("Read = %d,%v, want 10,true", v, ok)
	}
	tx.Write(8, 20)
	if v, ok := tx.Read(8); !ok || v != 20 {
		t.Fatalf("Read after own write = %d,%v, want 20,true", v, ok)
	}
	tx.Write(8, 30)
	if !tx.Commit() {
		t.Fatal("Commit failed")
	}
	if m.Load(8) != 30 {
		t.Fatalf("final value = %d, want 30 (last write wins)", m.Load(8))
	}
}

func TestPlainStoreAbortsTransaction(t *testing.T) {
	m := newMem(1024)
	tx := NewTxn(m, DefaultConfig())
	tx.Begin()
	if _, ok := tx.Read(8); !ok {
		t.Fatal("Read failed")
	}
	m.Store(8, 99)
	if _, ok := tx.Read(16); ok {
		t.Fatal("Read succeeded in aborted transaction")
	}
	tx.Fini()
	if r := tx.AbortReason(); r != memsim.AbortNonTxConflict {
		t.Fatalf("reason = %v, want nontx-conflict", r)
	}
	if tx.Commit() {
		t.Fatal("Commit succeeded after abort")
	}
}

func TestConflictBetweenTransactions(t *testing.T) {
	m := newMem(1024)
	a := NewTxn(m, DefaultConfig())
	b := NewTxn(m, DefaultConfig())
	a.Begin()
	b.Begin()
	if _, ok := a.Read(8); !ok {
		t.Fatal("a.Read failed")
	}
	// b writes the line a read: requester wins, a dies.
	if !b.Write(8, 5) {
		t.Fatal("b.Write failed")
	}
	if a.Running() {
		t.Fatal("a still running after conflicting write")
	}
	if !b.Commit() {
		t.Fatal("b.Commit failed")
	}
	a.Fini()
	if r := a.AbortReason(); r != memsim.AbortConflict {
		t.Fatalf("a reason = %v, want conflict", r)
	}
}

func TestCapacityAbortOnFootprint(t *testing.T) {
	m := newMem(1 << 14)
	cfg := Config{MaxFootprintLines: 4, MaxWriteLines: 4}
	tx := NewTxn(m, cfg)
	tx.Begin()
	lineWords := memsim.Addr(m.Config().WordsPerLine)
	for i := memsim.Addr(0); i < 4; i++ {
		if _, ok := tx.Read(8 + i*lineWords); !ok {
			t.Fatalf("Read %d failed early", i)
		}
	}
	if _, ok := tx.Read(8 + 4*lineWords); ok {
		t.Fatal("fifth line read should exceed capacity")
	}
	tx.Fini()
	r := tx.AbortReason()
	if r != memsim.AbortCapacity {
		t.Fatalf("reason = %v, want capacity", r)
	}
	if !r.Persistent() {
		t.Fatal("capacity abort must be persistent")
	}
}

func TestCapacityAbortOnWriteSet(t *testing.T) {
	m := newMem(1 << 14)
	cfg := Config{MaxFootprintLines: 64, MaxWriteLines: 2}
	tx := NewTxn(m, cfg)
	tx.Begin()
	lineWords := memsim.Addr(m.Config().WordsPerLine)
	if !tx.Write(8, 1) || !tx.Write(8+lineWords, 2) {
		t.Fatal("writes within capacity failed")
	}
	if tx.Write(8+2*lineWords, 3) {
		t.Fatal("third write line should exceed write capacity")
	}
	tx.Fini()
	if r := tx.AbortReason(); r != memsim.AbortCapacity {
		t.Fatalf("reason = %v, want capacity", r)
	}
}

func TestRepeatedAccessSameLineNoCapacityGrowth(t *testing.T) {
	m := newMem(1024)
	cfg := Config{MaxFootprintLines: 1, MaxWriteLines: 1}
	tx := NewTxn(m, cfg)
	tx.Begin()
	for i := 0; i < 10; i++ {
		if _, ok := tx.Read(8); !ok {
			t.Fatal("repeated Read failed")
		}
		if !tx.Write(9, uint64(i)) { // same line as 8
			t.Fatal("repeated Write failed")
		}
	}
	if tx.FootprintLines() != 1 || tx.WriteSetLines() != 1 {
		t.Fatalf("footprint=%d writeLines=%d, want 1,1",
			tx.FootprintLines(), tx.WriteSetLines())
	}
	if !tx.Commit() {
		t.Fatal("Commit failed")
	}
}

func TestUnsupportedInstructionAborts(t *testing.T) {
	m := newMem(1024)
	tx := NewTxn(m, DefaultConfig())
	tx.Begin()
	tx.Unsupported()
	if tx.Running() {
		t.Fatal("running after Unsupported")
	}
	if r := tx.AbortReason(); r != memsim.AbortUnsupported {
		t.Fatalf("reason = %v, want unsupported", r)
	}
	if tx.Commit() {
		t.Fatal("Commit succeeded after Unsupported")
	}
}

func TestExplicitAbort(t *testing.T) {
	m := newMem(1024)
	tx := NewTxn(m, DefaultConfig())
	tx.Begin()
	tx.Write(8, 1)
	tx.Abort(memsim.AbortExplicit)
	if tx.Commit() {
		t.Fatal("Commit succeeded after explicit abort")
	}
	if m.Load(8) != 0 {
		t.Fatal("aborted write reached memory")
	}
}

func TestReuseAfterAbortLeavesNoStaleMonitors(t *testing.T) {
	m := newMem(1024)
	tx := NewTxn(m, DefaultConfig())
	tx.Begin()
	tx.Read(8)
	tx.Abort(memsim.AbortExplicit)
	if n := m.MonitorCount(8); n != 0 {
		t.Fatalf("stale monitors after abort: %d", n)
	}
	// Reuse: a plain store to the old line must not kill the new attempt.
	tx.Begin()
	if _, ok := tx.Read(128); !ok {
		t.Fatal("Read failed after reuse")
	}
	m.Store(8, 1) // old line, not in new footprint
	if !tx.Running() {
		t.Fatal("new incarnation aborted via stale registration")
	}
	if !tx.Commit() {
		t.Fatal("Commit failed after reuse")
	}
}

func TestBeginWhileRunningPanics(t *testing.T) {
	m := newMem(1024)
	tx := NewTxn(m, DefaultConfig())
	tx.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("Begin while running did not panic")
		}
	}()
	tx.Begin()
}

func TestNewTxnValidatesConfig(t *testing.T) {
	m := newMem(64)
	defer func() {
		if recover() == nil {
			t.Fatal("NewTxn with zero limits did not panic")
		}
	}()
	NewTxn(m, Config{})
}

func TestStatsAbortBreakdown(t *testing.T) {
	m := newMem(1024)
	tx := NewTxn(m, DefaultConfig())
	tx.Begin()
	tx.Abort(memsim.AbortExplicit)
	tx.Begin()
	tx.Unsupported()
	s := tx.Stats()
	if s.Aborts != 2 {
		t.Fatalf("aborts = %d, want 2", s.Aborts)
	}
	if s.ByReason[memsim.AbortExplicit] != 1 || s.ByReason[memsim.AbortUnsupported] != 1 {
		t.Fatalf("abort breakdown wrong: %v", s.ByReason)
	}
}

// TestAtomicIncrementsUnderContention: N workers transactionally increment a
// shared counter; the final value must equal the number of successful
// commits. This is the fundamental isolation property.
func TestAtomicIncrementsUnderContention(t *testing.T) {
	m := newMem(1024)
	const workers, attempts = 8, 300
	var mu sync.Mutex
	totalCommits := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := NewTxn(m, DefaultConfig())
			commits := 0
			for i := 0; i < attempts; i++ {
				tx.Begin()
				v, ok := tx.Read(8)
				if ok {
					ok = tx.Write(8, v+1)
				}
				if ok && tx.Commit() {
					commits++
				} else {
					tx.Fini()
				}
			}
			mu.Lock()
			totalCommits += commits
			mu.Unlock()
		}()
	}
	wg.Wait()
	if got := m.Load(8); got != uint64(totalCommits) {
		t.Fatalf("counter = %d, want %d (commits)", got, totalCommits)
	}
	if totalCommits == 0 {
		t.Fatal("no transaction ever committed")
	}
}

// TestSnapshotConsistency: writers keep two distant words equal; readers that
// commit must never have seen differing values.
func TestSnapshotConsistency(t *testing.T) {
	m := newMem(4096)
	a, b := memsim.Addr(8), memsim.Addr(2048)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	violations := make(chan [2]uint64, 64)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := NewTxn(m, DefaultConfig())
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx.Begin()
				va, ok := tx.Read(a)
				if !ok {
					tx.Fini()
					continue
				}
				vb, ok := tx.Read(b)
				if !ok {
					tx.Fini()
					continue
				}
				if tx.Commit() && va != vb {
					select {
					case violations <- [2]uint64{va, vb}:
					default:
					}
				}
			}
		}()
	}
	wtx := NewTxn(m, DefaultConfig())
	for i := uint64(1); i <= 500; i++ {
		wtx.Begin()
		if wtx.Write(a, i) && wtx.Write(b, i) {
			if !wtx.Commit() {
				wtx.Fini()
			}
		} else {
			wtx.Fini()
		}
	}
	close(stop)
	wg.Wait()
	select {
	case v := <-violations:
		t.Fatalf("committed reader saw torn snapshot: %d != %d", v[0], v[1])
	default:
	}
}
