// Package sys assembles a complete simulated machine for the hybrid-TM
// protocols: one memsim.Memory laid out with a data heap, the per-stripe
// metadata arrays (versions and read masks), the global version clock, and
// the protocol-global counter words (is_RH2_fallback,
// is_all_software_slow_path).
//
// All engines attached to one System share this state, exactly as the
// paper's fast and slow paths share the stripe version array: conflicts
// between a hardware transaction's metadata writes and a software
// transaction's metadata reads are detected by the same simulated coherence
// that covers the data.
package sys

import (
	"fmt"

	"rhtm/internal/clock"
	"rhtm/internal/htm"
	"rhtm/internal/memsim"
)

// Config sizes and parameterizes a System.
type Config struct {
	// DataWords is the size of the data heap in 64-bit words.
	DataWords int
	// WordsPerStripe is the TM metadata granularity: one stripe version (and
	// one read mask) covers this many data words. Must be a power of two.
	// The default matches the line size so that one stripe = one cache line.
	WordsPerStripe int
	// WordsPerLine is the conflict-detection granularity (see memsim).
	WordsPerLine int
	// Policy is the HTM conflict policy (see memsim).
	Policy memsim.ConflictPolicy
	// NonTxLoadAbortsWriters mirrors memsim.Config.
	NonTxLoadAbortsWriters bool
	// ClockMode selects GV6 (paper) or GV5 (ablation).
	ClockMode clock.Mode
	// HTM bounds hardware-transaction footprints.
	HTM htm.Config
	// MaxThreads bounds worker threads per engine. Each stripe carries
	// ceil(MaxThreads/64) read-mask words — "for larger thread numbers,
	// additional read masks are required" (paper §4.1). Default 64.
	MaxThreads int
}

// DefaultConfig returns the configuration used by the benchmarks for a heap
// of the given word count.
func DefaultConfig(dataWords int) Config {
	return Config{
		DataWords:              dataWords,
		WordsPerStripe:         8,
		WordsPerLine:           8,
		Policy:                 memsim.RequesterWins,
		NonTxLoadAbortsWriters: true,
		ClockMode:              clock.GV6,
		HTM:                    htm.DefaultConfig(),
		MaxThreads:             64,
	}
}

// System is one simulated machine: memory, heap, metadata, clock, globals.
type System struct {
	Mem   *memsim.Memory
	Heap  *memsim.Heap
	Clock *clock.Clock

	// Versions is the global stripe version array (one word per stripe).
	Versions memsim.Region
	// Masks is the stripe read mask array (MaskWords words per stripe; bit
	// k%64 of word k/64 set means thread k's committing software
	// transaction is reading the stripe — RH2 §4.1).
	Masks memsim.Region
	// MaskWords is the number of read-mask words per stripe.
	MaskWords int

	// RH2FallbackAddr is the is_RH2_fallback counter word (RH1 Alg. 3).
	RH2FallbackAddr memsim.Addr
	// AllSoftwareAddr is the is_all_software_slow_path counter word
	// (RH2 Alg. 4/5).
	AllSoftwareAddr memsim.Addr

	cfg         Config
	data        memsim.Region
	stripeShift uint
	stripeCount int
	maxThreads  int
}

// New builds a System from cfg.
func New(cfg Config) (*System, error) {
	if cfg.DataWords <= 0 {
		return nil, fmt.Errorf("sys: DataWords must be positive, got %d", cfg.DataWords)
	}
	if cfg.WordsPerStripe <= 0 || cfg.WordsPerStripe&(cfg.WordsPerStripe-1) != 0 {
		return nil, fmt.Errorf("sys: WordsPerStripe must be a positive power of two, got %d", cfg.WordsPerStripe)
	}
	shift := uint(0)
	for 1<<shift != cfg.WordsPerStripe {
		shift++
	}
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = 64
	}
	maskWords := (cfg.MaxThreads + 63) / 64
	stripes := (cfg.DataWords + cfg.WordsPerStripe - 1) / cfg.WordsPerStripe
	// Total memory: heap + versions + masks + clock line + two global lines,
	// plus alignment slack for each region boundary.
	line := cfg.WordsPerLine
	total := cfg.DataWords + stripes + maskWords*stripes + 8*line + 8*line
	mcfg := memsim.Config{
		Words:                  total,
		WordsPerLine:           line,
		Policy:                 cfg.Policy,
		NonTxLoadAbortsWriters: cfg.NonTxLoadAbortsWriters,
	}
	mem := memsim.New(mcfg)

	clk, err := clock.New(mem, cfg.ClockMode)
	if err != nil {
		return nil, err
	}
	// Each global counter gets its own line: these words are monitored
	// speculatively by every fast-path transaction and must not false-share
	// with anything.
	rh2fb, err := mem.AllocRegion(line)
	if err != nil {
		return nil, err
	}
	allsw, err := mem.AllocRegion(line)
	if err != nil {
		return nil, err
	}
	versions, err := mem.AllocRegion(stripes)
	if err != nil {
		return nil, err
	}
	masks, err := mem.AllocRegion(maskWords * stripes)
	if err != nil {
		return nil, err
	}
	heap, err := memsim.NewHeap(mem, cfg.DataWords)
	if err != nil {
		return nil, err
	}
	return &System{
		Mem:             mem,
		Heap:            heap,
		Clock:           clk,
		Versions:        versions,
		Masks:           masks,
		MaskWords:       maskWords,
		RH2FallbackAddr: rh2fb.Base,
		AllSoftwareAddr: allsw.Base,
		cfg:             cfg,
		data:            heap.Region(),
		stripeShift:     shift,
		stripeCount:     stripes,
		maxThreads:      cfg.MaxThreads,
	}, nil
}

// MustNew is New for setup code.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// StripeCount returns the number of metadata stripes.
func (s *System) StripeCount() int { return s.stripeCount }

// StripeOf returns the stripe index of data address a (the paper's
// get_stripe_index).
func (s *System) StripeOf(a memsim.Addr) int {
	if !s.data.Contains(a) {
		panic(fmt.Sprintf("sys: address %d outside the data heap", a))
	}
	return int(a-s.data.Base) >> s.stripeShift
}

// VersionAddr returns the address of the stripe version word covering a.
func (s *System) VersionAddr(a memsim.Addr) memsim.Addr {
	return s.Versions.Addr(s.StripeOf(a))
}

// MaskAddr returns the address of the first read-mask word of the stripe
// covering a (the complete mask is MaskWords consecutive words starting
// there).
func (s *System) MaskAddr(a memsim.Addr) memsim.Addr {
	return s.MaskBase(s.StripeOf(a))
}

// MaskBase returns the address of the first read-mask word of a stripe.
func (s *System) MaskBase(stripe int) memsim.Addr {
	return s.Masks.Addr(stripe * s.MaskWords)
}

// MaskWordFor returns the mask word address and bit a thread uses on a
// stripe.
func (s *System) MaskWordFor(stripe, threadID int) (memsim.Addr, uint64) {
	return s.Masks.Addr(stripe*s.MaskWords + threadID/64), uint64(1) << uint(threadID%64)
}

// MaxThreads returns the per-engine worker-thread bound.
func (s *System) MaxThreads() int { return s.maxThreads }

// --- stripe version word encoding ---
//
// The low bit of a stripe version word is the lock bit (RH2 §4.2): an
// unlocked word holds version<<1; a locked word holds thread_id<<1|1, the
// paper's "ctx.thread_id * 2 + 1" lock value.

// PackVersion encodes an unlocked timestamp.
func PackVersion(v uint64) uint64 { return v << 1 }

// UnpackVersion decodes the timestamp of an unlocked word.
func UnpackVersion(w uint64) uint64 { return w >> 1 }

// IsLocked reports whether the word's lock bit is set.
func IsLocked(w uint64) bool { return w&1 == 1 }

// LockWord encodes the lock value of a thread.
func LockWord(threadID int) uint64 { return uint64(threadID)<<1 | 1 }

// LockOwner decodes the owner of a locked word.
func LockOwner(w uint64) int { return int(w >> 1) }
