package sys

import (
	"testing"

	"rhtm/internal/memsim"
)

func TestNewLayoutDisjointRegions(t *testing.T) {
	s := MustNew(DefaultConfig(1 << 12))
	regions := []memsim.Region{s.Versions, s.Masks, s.Heap.Region()}
	singles := []memsim.Addr{s.Clock.Addr(), s.RH2FallbackAddr, s.AllSoftwareAddr}
	for i, r := range regions {
		for j, q := range regions {
			if i != j && r.Contains(q.Base) {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
		for _, a := range singles {
			if r.Contains(a) {
				t.Fatalf("global word %d inside region %v", a, r)
			}
		}
	}
	// Globals must not share conflict lines with each other.
	seen := map[uint64]bool{}
	for _, a := range singles {
		l := s.Mem.LineOf(a)
		if seen[l] {
			t.Fatalf("global words share line %d", l)
		}
		seen[l] = true
	}
}

func TestStripeMapping(t *testing.T) {
	s := MustNew(DefaultConfig(1 << 10))
	base := s.Heap.Region().Base
	if got := s.StripeOf(base); got != 0 {
		t.Fatalf("StripeOf(base) = %d, want 0", got)
	}
	per := s.Config().WordsPerStripe
	if got := s.StripeOf(base + memsim.Addr(per)); got != 1 {
		t.Fatalf("StripeOf(base+%d) = %d, want 1", per, got)
	}
	if s.VersionAddr(base) != s.Versions.Addr(0) {
		t.Fatal("VersionAddr mapping wrong")
	}
	if s.MaskAddr(base+memsim.Addr(per)) != s.Masks.Addr(1) {
		t.Fatal("MaskAddr mapping wrong")
	}
	if s.StripeCount() != (1<<10)/per {
		t.Fatalf("StripeCount = %d, want %d", s.StripeCount(), (1<<10)/per)
	}
}

func TestStripeOfOutsideHeapPanics(t *testing.T) {
	s := MustNew(DefaultConfig(256))
	defer func() {
		if recover() == nil {
			t.Fatal("StripeOf outside heap did not panic")
		}
	}()
	s.StripeOf(s.Clock.Addr())
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig(0)
	if _, err := New(cfg); err == nil {
		t.Fatal("DataWords=0 accepted")
	}
	cfg = DefaultConfig(64)
	cfg.WordsPerStripe = 3
	if _, err := New(cfg); err == nil {
		t.Fatal("WordsPerStripe=3 accepted")
	}
}

func TestVersionWordEncoding(t *testing.T) {
	if IsLocked(PackVersion(7)) {
		t.Fatal("packed version reads as locked")
	}
	if UnpackVersion(PackVersion(7)) != 7 {
		t.Fatal("version round trip failed")
	}
	lw := LockWord(5)
	if !IsLocked(lw) {
		t.Fatal("lock word not locked")
	}
	if LockOwner(lw) != 5 {
		t.Fatalf("LockOwner = %d, want 5", LockOwner(lw))
	}
	// The paper's literal encoding: thread_id*2+1.
	if lw != 5*2+1 {
		t.Fatalf("LockWord(5) = %d, want 11", lw)
	}
}

func TestHeapAllocationWithinDataRegion(t *testing.T) {
	s := MustNew(DefaultConfig(1 << 10))
	a := s.Heap.MustAlloc(16)
	if !s.Heap.Region().Contains(a) {
		t.Fatal("allocation outside heap region")
	}
	// Stripe mapping must accept every allocated word.
	for i := 0; i < 16; i++ {
		_ = s.StripeOf(a + memsim.Addr(i))
	}
}
