// Package benchdiff compares two bench-trajectory JSONL files (the
// BENCH_*.json format rhbench -json emits) and reports per-point
// regressions on the simulated-machine metrics. CI runs it via
// cmd/benchdiff against the committed BENCH_smoke.json to catch
// performance cliffs: the comparison is on architectural metrics
// (operations per thousand simulated accesses), which measure the
// simulated machine rather than the host, so it is stable across runner
// hardware — only a real change in the engines' access behavior moves it.
package benchdiff

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Row is the subset of a trajectory line the comparison reads.
type Row struct {
	Experiment      string  `json:"experiment"`
	Workload        string  `json:"workload"`
	Engine          string  `json:"engine"`
	Threads         int     `json:"threads"`
	Ops             uint64  `json:"ops"`
	OpsPerKAccess   float64 `json:"ops_per_kacc"`
	OpsPerKInterval float64 `json:"ops_per_kinterval"`
}

// Key identifies one measured point across files.
func (r Row) Key() string {
	return fmt.Sprintf("%s|%s|%s|t=%d", r.Experiment, r.Workload, r.Engine, r.Threads)
}

// Metric returns the point's comparison metric and its name: the cluster
// scaling metric (ops per thousand critical-path accesses) when the run
// produced one, else the single-System architectural metric (ops per
// thousand accesses).
func (r Row) Metric() (float64, string) {
	if r.OpsPerKInterval > 0 {
		return r.OpsPerKInterval, "ops_per_kinterval"
	}
	return r.OpsPerKAccess, "ops_per_kacc"
}

// ParseRows reads a JSONL trajectory stream. Blank lines are skipped; a
// malformed line is an error (a truncated trajectory should fail loudly,
// not silently narrow the comparison).
func ParseRows(r io.Reader) ([]Row, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var rows []Row
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var row Row
		if err := json.Unmarshal(b, &row); err != nil {
			return nil, fmt.Errorf("benchdiff: line %d: %w", line, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchdiff: %w", err)
	}
	return rows, nil
}

// Regression is one point whose fresh metric fell below the committed
// baseline by more than the threshold.
type Regression struct {
	Key    string
	Metric string // which metric compared: ops_per_kinterval or ops_per_kacc
	Base   float64
	Fresh  float64
	Drop   float64 // fractional drop, e.g. 0.31 for -31%
}

func (rg Regression) String() string {
	return fmt.Sprintf("%s: %s %.2f -> %.2f (-%.0f%%)",
		rg.Key, rg.Metric, rg.Base, rg.Fresh, 100*rg.Drop)
}

// Compare evaluates fresh against base: every base point must appear in
// fresh (a vanished point is a regression to zero) with its metric no more
// than threshold below the baseline. threshold is fractional (0.25 =
// tolerate a 25% drop). Points only in fresh are ignored — adding coverage
// is never a failure. Returned regressions are sorted by severity.
func Compare(base, fresh []Row, threshold float64) []Regression {
	freshByKey := map[string]Row{}
	for _, r := range fresh {
		freshByKey[r.Key()] = r
	}
	var out []Regression
	for _, b := range base {
		bm, name := b.Metric()
		if bm <= 0 {
			continue // nothing measurable to regress from
		}
		f, ok := freshByKey[b.Key()]
		if !ok {
			out = append(out, Regression{Key: b.Key(), Metric: name, Base: bm, Fresh: 0, Drop: 1})
			continue
		}
		fm, _ := f.Metric()
		if fm >= (1-threshold)*bm {
			continue
		}
		out = append(out, Regression{
			Key: b.Key(), Metric: name, Base: bm, Fresh: fm, Drop: (bm - fm) / bm,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Drop > out[j].Drop })
	return out
}
