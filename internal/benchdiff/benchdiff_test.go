package benchdiff

import (
	"os"
	"strings"
	"testing"
)

func row(exp, eng string, threads int, kacc, kint float64) Row {
	return Row{Experiment: exp, Workload: exp + "/w", Engine: eng, Threads: threads,
		OpsPerKAccess: kacc, OpsPerKInterval: kint}
}

func TestCompare(t *testing.T) {
	base := []Row{
		row("ycsb-a", "RH1", 2, 10, 0),
		row("cluster-ycsb-a", "RH1", 2, 10, 40),
		row("ycsb-a", "TL2", 2, 8, 0),
	}

	// Identical trajectories never regress.
	if regs := Compare(base, base, 0.25); len(regs) != 0 {
		t.Fatalf("self-compare regressed: %v", regs)
	}

	// A drop within threshold passes; beyond it fails, on the right metric.
	fresh := []Row{
		row("ycsb-a", "RH1", 2, 8, 0),           // -20%: within 25%
		row("cluster-ycsb-a", "RH1", 2, 10, 25), // kinterval -37.5%: regression
		row("ycsb-a", "TL2", 2, 8.5, 0),         // improved
	}
	regs := Compare(base, fresh, 0.25)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	if regs[0].Metric != "ops_per_kinterval" || regs[0].Fresh != 25 {
		t.Fatalf("wrong regression picked: %+v", regs[0])
	}
	if !strings.Contains(regs[0].String(), "cluster-ycsb-a") {
		t.Fatalf("rendering lost the key: %s", regs[0])
	}

	// A vanished baseline point is a total regression; extra fresh points
	// are fine.
	fresh2 := []Row{
		row("ycsb-a", "RH1", 2, 10, 0),
		row("cluster-ycsb-a", "RH1", 2, 10, 40),
		row("new-exp", "RH1", 2, 99, 0),
	}
	regs = Compare(base, fresh2, 0.25)
	if len(regs) != 1 || regs[0].Drop != 1 {
		t.Fatalf("vanished point not flagged: %v", regs)
	}
}

func TestParseRows(t *testing.T) {
	rows, err := ParseRows(strings.NewReader(
		`{"experiment":"e","workload":"w","engine":"x","threads":2,"ops_per_kacc":5}` + "\n\n" +
			`{"experiment":"e2","workload":"w","engine":"x","threads":4,"ops_per_kinterval":7}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("parsed %d rows, want 2", len(rows))
	}
	if m, name := rows[0].Metric(); m != 5 || name != "ops_per_kacc" {
		t.Fatalf("row 0 metric = %v %s", m, name)
	}
	if m, name := rows[1].Metric(); m != 7 || name != "ops_per_kinterval" {
		t.Fatalf("row 1 metric = %v %s", m, name)
	}
	if _, err := ParseRows(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line parsed silently")
	}
}

// TestCommittedTrajectory gates the committed baseline itself: it must
// parse, cover both backends (a point with the cluster scaling metric and
// one without), embed structured counters, and self-compare clean — the
// invariants the CI bench gate depends on.
func TestCommittedTrajectory(t *testing.T) {
	f, err := os.Open("../../BENCH_smoke.json")
	if err != nil {
		t.Fatalf("committed trajectory missing: %v", err)
	}
	defer f.Close()
	rows, err := ParseRows(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("committed trajectory is empty")
	}
	var sawCluster, sawLocal bool
	for _, r := range rows {
		m, _ := r.Metric()
		if m <= 0 {
			t.Fatalf("point %s has no positive metric", r.Key())
		}
		if r.OpsPerKInterval > 0 {
			sawCluster = true
		} else {
			sawLocal = true
		}
	}
	if !sawCluster || !sawLocal {
		t.Fatalf("trajectory must cover both backends: cluster=%v local=%v", sawCluster, sawLocal)
	}
	if regs := Compare(rows, rows, 0.25); len(regs) != 0 {
		t.Fatalf("self-compare regressed: %v", regs)
	}

	// The -metrics flag was used: rows embed the structured counter map.
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	n, _ := f.Read(buf)
	if !strings.Contains(string(buf[:n]), `"counters"`) {
		t.Fatal("committed trajectory has no embedded counters — regenerate with rhbench -json -metrics")
	}
}
