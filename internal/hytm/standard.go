package hytm

import (
	"math/rand"
	"sync"

	"rhtm/internal/engine"
	"rhtm/internal/htm"
	"rhtm/internal/memsim"
	"rhtm/internal/sys"
	"rhtm/internal/tl2"
)

// StandardHyTM is the traditional hybrid TM the paper benchmarks against:
// every hardware read and write is instrumented with a stripe-metadata load
// and a conditional branch (the lock test needed to coordinate with software
// transactions), and hardware writes additionally update the metadata. The
// software slow path is TL2 over the same stripe array.
type StandardHyTM struct {
	sys  *sys.System
	opts Options
	tl2  *tl2.Engine

	mu      sync.Mutex
	threads []*stdThread
	live    engine.Live
}

// NewStandard creates a Standard HyTM engine on s.
func NewStandard(s *sys.System, opts Options) *StandardHyTM {
	if opts.MaxFastAttempts <= 0 {
		opts.MaxFastAttempts = 8
	}
	return &StandardHyTM{sys: s, opts: opts, tl2: tl2.New(s)}
}

// Name implements engine.Engine.
func (e *StandardHyTM) Name() string { return "Standard HyTM" }

// NewThread implements engine.Engine.
func (e *StandardHyTM) NewThread() engine.Thread {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := &stdThread{
		eng:  e,
		sys:  e.sys,
		htx:  htm.NewTxn(e.sys.Mem, e.sys.Config().HTM),
		slow: e.tl2.NewThread(),
		rng:  rand.New(rand.NewSource(int64(len(e.threads))*69621 + 11)),
	}
	e.threads = append(e.threads, t)
	return t
}

// Snapshot implements engine.Engine. It merges the hardware-side counters
// with the TL2 slow path's.
func (e *StandardHyTM) Snapshot() engine.Stats {
	e.mu.Lock()
	var s engine.Stats
	for _, t := range e.threads {
		s.Add(t.stats)
	}
	e.mu.Unlock()
	s.Add(e.tl2.Snapshot())
	return s
}

// Live implements engine.Engine. Slow-path attempts flush into the
// embedded TL2 engine's accumulator, so — mirroring Snapshot — the two
// are merged.
func (e *StandardHyTM) Live() engine.Stats {
	s := e.live.Stats()
	s.Add(e.tl2.Live())
	return s
}

type stdThread struct {
	eng       *StandardHyTM
	sys       *sys.System
	htx       *htm.Txn
	slow      engine.Thread
	nextVer   uint64
	rng       *rand.Rand
	stats     engine.Stats
	published engine.Stats // high-water mark of stats flushed into eng.live
}

// Atomic implements engine.Thread: instrumented hardware attempts, with the
// TL2 slow path taken on persistent failure (always) and after the attempt
// budget (Mixed mode only; the paper's benchmark configuration retries in
// hardware indefinitely).
func (t *stdThread) Atomic(fn func(tx engine.Tx) error) error {
	defer t.eng.live.Flush(&t.published, &t.stats)
	for attempt := 0; ; attempt++ {
		done, err, reason := t.tryFast(fn)
		if done {
			return err
		}
		t.stats.FastAborts++
		if int(reason) < len(t.stats.FastAbortsByReason) {
			t.stats.FastAbortsByReason[reason]++
		}
		if reason.Persistent() ||
			(t.eng.opts.Mixed && attempt+1 >= t.eng.opts.MaxFastAttempts) {
			return t.slow.Atomic(fn)
		}
		engine.Backoff(t.rng, attempt)
	}
}

// tryFast is one instrumented hardware attempt.
func (t *stdThread) tryFast(fn func(tx engine.Tx) error) (done bool, err error, reason memsim.AbortReason) {
	htx := t.htx
	htx.Begin()
	// Like the RH1 fast path, writers need an install version; the clock is
	// sampled speculatively (GV6: no store).
	sample, ok := htx.Read(t.sys.Clock.Addr())
	if !ok {
		return t.fastAbort()
	}
	t.nextVer = t.sys.Clock.NextFromSample(sample)
	t.stats.MetadataReads++

	err, aborted, reason := engine.RunBody(fn, (*stdTx)(t))
	if aborted {
		htx.Fini()
		return false, nil, reason
	}
	if err != nil {
		htx.Abort(memsim.AbortExplicit)
		htx.Fini()
		t.stats.UserErrors++
		return true, err, memsim.AbortNone
	}
	if p := t.eng.opts.InjectAbortPercent; p > 0 && t.rng.Intn(100) < p {
		htx.Abort(memsim.AbortInjected)
		return t.fastAbort()
	}
	// "The commit is immediate without any work" (§3.2): all coordination
	// happened inline on each access.
	if !htx.Commit() {
		return false, nil, htx.AbortReason()
	}
	t.stats.FastCommits++
	return true, nil, memsim.AbortNone
}

func (t *stdThread) fastAbort() (bool, error, memsim.AbortReason) {
	t.htx.Fini()
	return false, nil, t.htx.AbortReason()
}

type stdTx stdThread

// Load implements engine.Tx: the instrumented hardware read the paper's
// Figure 1 measures — a metadata load and a branch before the data load.
func (tx *stdTx) Load(a memsim.Addr) uint64 {
	t := (*stdThread)(tx)
	t.stats.Reads++
	htx := t.htx
	w, ok := htx.Read(t.sys.VersionAddr(a))
	if !ok {
		engine.Retry(htx.AbortReason())
	}
	t.stats.MetadataReads++
	if sys.IsLocked(w) {
		// A software transaction holds the stripe: the hardware transaction
		// cannot read consistently and must abort.
		htx.Abort(memsim.AbortExplicit)
		engine.Retry(memsim.AbortExplicit)
	}
	v, ok := htx.Read(a)
	if !ok {
		engine.Retry(htx.AbortReason())
	}
	return v
}

// Store implements engine.Tx: metadata load, branch, metadata update, then
// the data store.
func (tx *stdTx) Store(a memsim.Addr, v uint64) {
	t := (*stdThread)(tx)
	t.stats.Writes++
	htx := t.htx
	va := t.sys.VersionAddr(a)
	w, ok := htx.Read(va)
	if !ok {
		engine.Retry(htx.AbortReason())
	}
	t.stats.MetadataReads++
	if sys.IsLocked(w) {
		htx.Abort(memsim.AbortExplicit)
		engine.Retry(memsim.AbortExplicit)
	}
	if !htx.Write(va, sys.PackVersion(t.nextVer)) {
		engine.Retry(htx.AbortReason())
	}
	t.stats.MetadataWrites++
	if !htx.Write(a, v) {
		engine.Retry(htx.AbortReason())
	}
}

// Unsupported implements engine.Tx: aborts to the software slow path.
func (tx *stdTx) Unsupported() {
	t := (*stdThread)(tx)
	t.htx.Unsupported()
	engine.Retry(memsim.AbortUnsupported)
}
