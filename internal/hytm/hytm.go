// Package hytm provides the two hardware baselines of the paper's
// evaluation:
//
//   - PureHTM — uninstrumented hardware transactions, retried on transient
//     aborts. "This represents the best performance that HTM can achieve"
//     (§3.2). It has no software fallback: bodies that cannot run in
//     hardware (capacity, unsupported instructions) fail with
//     ErrHardwareOnly after a retry budget.
//
//   - StandardHyTM — the classic hybrid design the paper argues against:
//     the hardware fast path instruments *every* read and write with a
//     stripe-metadata access and a conditional branch, coordinating with a
//     TL2-style software slow path over the same metadata. Unlike the
//     paper's emulation (which used a fake "if" on metadata), this is a
//     fully functional hybrid: the metadata check is the real lock test the
//     coordination requires, so the instrumentation cost is identical and
//     the engine is correct under concurrent software transactions.
package hytm

import (
	"errors"
	"math/rand"
	"sync"

	"rhtm/internal/engine"
	"rhtm/internal/htm"
	"rhtm/internal/memsim"
	"rhtm/internal/sys"
)

// ErrHardwareOnly is returned by PureHTM when a transaction persistently
// cannot execute in hardware.
var ErrHardwareOnly = errors.New("hytm: transaction cannot run as a pure hardware transaction")

// --- PureHTM ---

// PureHTM is the uninstrumented hardware-only engine.
type PureHTM struct {
	sys  *sys.System
	opts Options

	mu      sync.Mutex
	threads []*pureThread
	live    engine.Live
}

// Options configures the hardware engines.
type Options struct {
	// InjectAbortPercent forces this percentage of hardware commits to
	// abort (the paper's §3.1 emulation methodology). 0 disables.
	InjectAbortPercent int
	// MaxPersistentRetries bounds consecutive persistent hardware failures
	// before PureHTM gives up with ErrHardwareOnly (default 3).
	MaxPersistentRetries int
	// Mixed switches StandardHyTM to take the software slow path after
	// MaxFastAttempts transient aborts; when false (the paper's benchmark
	// configuration) the hardware path retries indefinitely.
	Mixed bool
	// MaxFastAttempts bounds hardware attempts in Mixed mode (default 8).
	MaxFastAttempts int
}

// DefaultOptions returns the paper's benchmark configuration: hardware-only
// retries, no injection.
func DefaultOptions() Options {
	return Options{MaxPersistentRetries: 3, MaxFastAttempts: 8}
}

// NewPureHTM creates the uninstrumented hardware engine on s.
func NewPureHTM(s *sys.System, opts Options) *PureHTM {
	if opts.MaxPersistentRetries <= 0 {
		opts.MaxPersistentRetries = 3
	}
	return &PureHTM{sys: s, opts: opts}
}

// Name implements engine.Engine.
func (e *PureHTM) Name() string { return "HTM" }

// NewThread implements engine.Engine.
func (e *PureHTM) NewThread() engine.Thread {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := &pureThread{
		eng: e,
		htx: htm.NewTxn(e.sys.Mem, e.sys.Config().HTM),
		rng: rand.New(rand.NewSource(int64(len(e.threads))*48271 + 7)),
	}
	e.threads = append(e.threads, t)
	return t
}

// Snapshot implements engine.Engine.
func (e *PureHTM) Snapshot() engine.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	var s engine.Stats
	for _, t := range e.threads {
		s.Add(t.stats)
	}
	return s
}

// Live implements engine.Engine.
func (e *PureHTM) Live() engine.Stats { return e.live.Stats() }

type pureThread struct {
	eng       *PureHTM
	htx       *htm.Txn
	rng       *rand.Rand
	stats     engine.Stats
	published engine.Stats // high-water mark of stats flushed into eng.live
}

// Atomic implements engine.Thread.
func (t *pureThread) Atomic(fn func(tx engine.Tx) error) error {
	defer t.eng.live.Flush(&t.published, &t.stats)
	persistent := 0
	for attempt := 0; ; attempt++ {
		htx := t.htx
		htx.Begin()
		err, aborted, _ := engine.RunBody(fn, (*pureTx)(t))
		if !aborted {
			if err != nil {
				htx.Abort(memsim.AbortExplicit)
				htx.Fini()
				t.stats.UserErrors++
				return err
			}
			if p := t.eng.opts.InjectAbortPercent; p > 0 && t.rng.Intn(100) < p {
				htx.Abort(memsim.AbortInjected)
			}
			if htx.Commit() {
				t.stats.FastCommits++
				return nil
			}
		} else {
			htx.Fini()
		}
		reason := htx.AbortReason()
		t.stats.FastAborts++
		if int(reason) < len(t.stats.FastAbortsByReason) {
			t.stats.FastAbortsByReason[reason]++
		}
		if reason.Persistent() {
			persistent++
			if persistent >= t.eng.opts.MaxPersistentRetries {
				return ErrHardwareOnly
			}
		}
		engine.Backoff(t.rng, attempt)
	}
}

type pureTx pureThread

// Load implements engine.Tx: a raw speculative read, no instrumentation.
func (tx *pureTx) Load(a memsim.Addr) uint64 {
	t := (*pureThread)(tx)
	t.stats.Reads++
	v, ok := t.htx.Read(a)
	if !ok {
		engine.Retry(t.htx.AbortReason())
	}
	return v
}

// Store implements engine.Tx: a raw speculative write.
func (tx *pureTx) Store(a memsim.Addr, v uint64) {
	t := (*pureThread)(tx)
	t.stats.Writes++
	if !t.htx.Write(a, v) {
		engine.Retry(t.htx.AbortReason())
	}
}

// Unsupported implements engine.Tx: pure hardware cannot execute it.
func (tx *pureTx) Unsupported() {
	t := (*pureThread)(tx)
	t.htx.Unsupported()
	engine.Retry(memsim.AbortUnsupported)
}
