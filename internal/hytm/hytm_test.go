package hytm

import (
	"errors"
	"testing"

	"rhtm/internal/engine"
	"rhtm/internal/enginetest"
	"rhtm/internal/htm"
	"rhtm/internal/memsim"
	"rhtm/internal/sys"
)

func pureFactory(t *testing.T, cfg sys.Config) (engine.Engine, *sys.System) {
	t.Helper()
	s := sys.MustNew(cfg)
	return NewPureHTM(s, DefaultOptions()), s
}

func stdFactory(opts Options) enginetest.Factory {
	return func(t *testing.T, cfg sys.Config) (engine.Engine, *sys.System) {
		t.Helper()
		s := sys.MustNew(cfg)
		return NewStandard(s, opts), s
	}
}

func TestConformancePureHTM(t *testing.T) {
	enginetest.Run(t, "HTM", pureFactory, enginetest.Capabilities{Unsupported: false})
}

func TestConformanceStandardHyTM(t *testing.T) {
	enginetest.Run(t, "StdHyTM", stdFactory(DefaultOptions()),
		enginetest.Capabilities{Unsupported: true})
}

func TestConformanceStandardHyTMMixed(t *testing.T) {
	opts := DefaultOptions()
	opts.Mixed = true
	opts.MaxFastAttempts = 2
	enginetest.Run(t, "StdHyTM-Mixed", stdFactory(opts),
		enginetest.Capabilities{Unsupported: true})
}

func TestNames(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(256))
	if NewPureHTM(s, DefaultOptions()).Name() != "HTM" {
		t.Fatal("PureHTM name wrong")
	}
	if NewStandard(s, DefaultOptions()).Name() != "Standard HyTM" {
		t.Fatal("StandardHyTM name wrong")
	}
}

func TestPureHTMFailsOnUnsupported(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := NewPureHTM(s, DefaultOptions())
	th := e.NewThread()
	err := th.Atomic(func(tx engine.Tx) error {
		tx.Unsupported()
		return nil
	})
	if !errors.Is(err, ErrHardwareOnly) {
		t.Fatalf("err = %v, want ErrHardwareOnly", err)
	}
}

func TestPureHTMFailsOnCapacity(t *testing.T) {
	cfg := sys.DefaultConfig(1 << 12)
	cfg.HTM = htm.Config{MaxFootprintLines: 2, MaxWriteLines: 2}
	s := sys.MustNew(cfg)
	e := NewPureHTM(s, DefaultOptions())
	addrs := make([]memsim.Addr, 6)
	for i := range addrs {
		addrs[i] = s.Heap.MustAlloc(1)
		s.Heap.MustAlloc(15)
	}
	th := e.NewThread()
	err := th.Atomic(func(tx engine.Tx) error {
		for _, a := range addrs {
			_ = tx.Load(a)
		}
		return nil
	})
	if !errors.Is(err, ErrHardwareOnly) {
		t.Fatalf("err = %v, want ErrHardwareOnly", err)
	}
}

func TestStandardHyTMFallsBackOnUnsupported(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := NewStandard(s, DefaultOptions())
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	if err := th.Atomic(func(tx engine.Tx) error {
		tx.Unsupported()
		tx.Store(a, 3)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Snapshot()
	if st.SlowCommits != 1 {
		t.Fatalf("stats = %v, want one TL2 slow commit", st)
	}
	if got := s.Mem.Load(a); got != 3 {
		t.Fatalf("value = %d, want 3", got)
	}
}

func TestStandardHyTMInstrumentationCounts(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := NewStandard(s, DefaultOptions())
	a := s.Heap.MustAlloc(2)
	th := e.NewThread()
	if err := th.Atomic(func(tx engine.Tx) error {
		_ = tx.Load(a)
		tx.Store(a+1, 5)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Snapshot()
	// 1 clock sample + 1 per read + 1 per write = 3 metadata reads;
	// 1 metadata write for the written stripe.
	if st.MetadataReads != 3 {
		t.Fatalf("metadata reads = %d, want 3", st.MetadataReads)
	}
	if st.MetadataWrites != 1 {
		t.Fatalf("metadata writes = %d, want 1", st.MetadataWrites)
	}
}

func TestPureHTMNoMetadataTraffic(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := NewPureHTM(s, DefaultOptions())
	a := s.Heap.MustAlloc(2)
	th := e.NewThread()
	if err := th.Atomic(func(tx engine.Tx) error {
		_ = tx.Load(a)
		tx.Store(a+1, 5)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Snapshot()
	if st.MetadataReads != 0 || st.MetadataWrites != 0 {
		t.Fatalf("HTM produced metadata traffic: %d reads, %d writes",
			st.MetadataReads, st.MetadataWrites)
	}
}

func TestStandardFastPathAbortsOnLockedStripe(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	opts := DefaultOptions()
	opts.Mixed = true
	opts.MaxFastAttempts = 1 // one hardware try, then TL2
	e := NewStandard(s, opts)
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	locked := true
	err := th.Atomic(func(tx engine.Tx) error {
		if locked {
			// Lock the stripe mid-body so the instrumented read trips.
			s.Mem.Poke(s.VersionAddr(a), sys.LockWord(9))
			locked = false
			defer s.Mem.Poke(s.VersionAddr(a), sys.PackVersion(0))
		}
		_ = tx.Load(a)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Snapshot()
	if st.FastAbortsByReason[memsim.AbortExplicit] == 0 {
		t.Fatalf("stats = %v, want an explicit fast abort on the lock test", st)
	}
}

func TestInjectedAborts(t *testing.T) {
	opts := DefaultOptions()
	opts.InjectAbortPercent = 100
	opts.Mixed = true
	opts.MaxFastAttempts = 2
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := NewStandard(s, opts)
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	if err := th.Atomic(func(tx engine.Tx) error {
		tx.Store(a, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Snapshot()
	if st.FastAbortsByReason[memsim.AbortInjected] == 0 {
		t.Fatal("no injected aborts with 100% injection")
	}
	if st.SlowCommits != 1 {
		t.Fatalf("stats = %v, want commit via slow path", st)
	}
}
