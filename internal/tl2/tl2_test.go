package tl2

import (
	"testing"

	"rhtm/internal/engine"
	"rhtm/internal/enginetest"
	"rhtm/internal/memsim"
	"rhtm/internal/sys"
)

func factory(t *testing.T, cfg sys.Config) (engine.Engine, *sys.System) {
	t.Helper()
	s := sys.MustNew(cfg)
	return New(s), s
}

func TestConformance(t *testing.T) {
	enginetest.Run(t, "TL2", factory, enginetest.Capabilities{Unsupported: true})
}

func TestName(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(256))
	if New(s).Name() != "TL2" {
		t.Fatal("wrong name")
	}
}

func TestReadOnlyCommitSkipsLocks(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := New(s)
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	if err := th.Atomic(func(tx engine.Tx) error {
		_ = tx.Load(a)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Snapshot()
	if st.ReadOnlyCommits != 1 || st.SlowCommits != 0 {
		t.Fatalf("stats = %+v, want 1 read-only commit", st)
	}
	// Version word untouched by a read-only commit.
	if got := s.Mem.Load(s.VersionAddr(a)); got != 0 {
		t.Fatalf("stripe version = %d after read-only tx, want 0", got)
	}
}

func TestCommitInstallsNewVersion(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := New(s)
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	if err := th.Atomic(func(tx engine.Tx) error {
		tx.Store(a, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	w := s.Mem.Load(s.VersionAddr(a))
	if sys.IsLocked(w) {
		t.Fatal("stripe left locked after commit")
	}
	if sys.UnpackVersion(w) == 0 {
		t.Fatal("stripe version not advanced by write commit")
	}
}

func TestReaderAbortsOnNewerVersion(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := New(s)
	a := s.Heap.MustAlloc(1)
	// Pretend another thread committed far in the future.
	s.Mem.Poke(s.VersionAddr(a), sys.PackVersion(100))
	th := e.NewThread().(*Thread)
	attempts := 0
	err := th.Atomic(func(tx engine.Tx) error {
		attempts++
		if attempts == 1 {
			// First attempt must abort on the stale read below; after the
			// retry the clock has advanced past 100 and the read succeeds.
			_ = tx.Load(a)
		}
		_ = tx.Load(a)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (version-based abort + retry)", attempts)
	}
	if e.Snapshot().SlowAborts == 0 {
		t.Fatal("no abort recorded")
	}
}

func TestReaderAbortsOnLockedStripe(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := New(s)
	a := s.Heap.MustAlloc(1)
	th := e.NewThread().(*Thread)
	attempts := 0
	err := th.Atomic(func(tx engine.Tx) error {
		attempts++
		if attempts == 1 {
			s.Mem.Poke(s.VersionAddr(a), sys.LockWord(7)) // someone else holds it
		} else {
			s.Mem.Poke(s.VersionAddr(a), sys.PackVersion(0)) // released
		}
		_ = tx.Load(a)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}

func TestFailedCommitRestoresVersions(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 12))
	e := New(s)
	a := s.Heap.MustAlloc(1)
	s.Heap.MustAlloc(64)
	b := s.Heap.MustAlloc(1)
	s.Mem.Poke(s.VersionAddr(a), sys.PackVersion(3))
	th := e.NewThread().(*Thread)
	attempts := 0
	err := th.Atomic(func(tx engine.Tx) error {
		attempts++
		tx.Store(a, 1)
		if attempts == 1 {
			// Invalidate the read set after it is built: read b, then bump
			// b's version so commit-time validation fails.
			_ = tx.Load(b)
			s.Mem.Poke(s.VersionAddr(b), sys.PackVersion(1<<40))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2", attempts)
	}
	final := s.Mem.Load(s.VersionAddr(a))
	if sys.IsLocked(final) {
		t.Fatal("failed commit left stripe a locked")
	}
	if s.Mem.Load(a) != 1 {
		t.Fatal("retried transaction's write missing")
	}
}

func TestThreadIDsAndLimit(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(256))
	e := New(s)
	for i := 0; i < engine.MaxThreads; i++ {
		e.NewThread()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("65th thread did not panic")
		}
	}()
	e.NewThread()
}

func TestStatsCountOps(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := New(s)
	a := s.Heap.MustAlloc(2)
	th := e.NewThread()
	if err := th.Atomic(func(tx engine.Tx) error {
		_ = tx.Load(a)
		tx.Store(a+memsim.Addr(1), 9)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Snapshot()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("reads/writes = %d/%d, want 1/1", st.Reads, st.Writes)
	}
	if st.MetadataReads == 0 {
		t.Fatal("TL2 reads must touch metadata")
	}
}
