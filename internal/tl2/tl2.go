// Package tl2 implements the TL2 software transactional memory of Dice,
// Shalev and Shavit (DISC 2006), the paper's STM baseline and the style of
// its all-software fallback.
//
// TL2 here is word-based over the shared stripe metadata of a sys.System:
// each stripe has a version word whose low bit is a lock bit. Transactions
// read the global version clock at start, validate on every read that the
// location's stripe version is unlocked and no newer than the start version
// (with a version-load / data-load / version-reload sandwich), buffer writes,
// and at commit lock the write set, revalidate the read set, write back, and
// release the locks to the next clock version. The clock follows the GV6
// discipline by default (advance on abort only).
package tl2

import (
	"math/rand"
	"sync"

	"rhtm/internal/engine"
	"rhtm/internal/memsim"
	"rhtm/internal/sys"
)

// Engine is a TL2 STM over a System.
type Engine struct {
	sys *sys.System

	mu      sync.Mutex
	threads []*Thread
	live    engine.Live
}

// New creates a TL2 engine on s.
func New(s *sys.System) *Engine { return &Engine{sys: s} }

// Name implements engine.Engine.
func (e *Engine) Name() string { return "TL2" }

// NewThread implements engine.Engine.
func (e *Engine) NewThread() engine.Thread {
	e.mu.Lock()
	defer e.mu.Unlock()
	id := len(e.threads)
	if id >= e.sys.MaxThreads() {
		panic(engine.ErrTooManyThreads)
	}
	t := &Thread{
		eng:      e,
		sys:      e.sys,
		id:       id,
		writeIdx: make(map[memsim.Addr]int, 32),
		rng:      rand.New(rand.NewSource(int64(id)*2654435761 + 1)),
	}
	e.threads = append(e.threads, t)
	return t
}

// Snapshot implements engine.Engine.
func (e *Engine) Snapshot() engine.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	var s engine.Stats
	for _, t := range e.threads {
		s.Add(t.stats)
	}
	return s
}

// Live implements engine.Engine.
func (e *Engine) Live() engine.Stats { return e.live.Stats() }

// writeEntry is one buffered transactional store.
type writeEntry struct {
	addr memsim.Addr
	val  uint64
}

// Thread is a per-worker TL2 context. Not safe for concurrent use.
type Thread struct {
	eng *Engine
	sys *sys.System
	id  int

	txVersion uint64
	readSet   []memsim.Addr
	writeSet  []writeEntry
	writeIdx  map[memsim.Addr]int

	rng       *rand.Rand
	stats     engine.Stats
	published engine.Stats // high-water mark of stats flushed into eng.live
}

// Atomic implements engine.Thread.
func (t *Thread) Atomic(fn func(tx engine.Tx) error) error {
	defer t.eng.live.Flush(&t.published, &t.stats)
	for attempt := 0; ; attempt++ {
		t.begin()
		err, aborted, _ := engine.RunBody(fn, (*tl2Tx)(t))
		if aborted {
			t.onAbort(attempt)
			continue
		}
		if err != nil {
			t.stats.UserErrors++
			return err
		}
		if t.commit() {
			return nil
		}
		t.onAbort(attempt)
	}
}

func (t *Thread) begin() {
	t.txVersion = t.sys.Clock.Read()
	t.readSet = t.readSet[:0]
	t.writeSet = t.writeSet[:0]
	clear(t.writeIdx)
}

func (t *Thread) onAbort(attempt int) {
	t.stats.SlowAborts++
	t.sys.Clock.AdvanceOnAbort(t.txVersion)
	engine.Backoff(t.rng, attempt)
}

// read implements the TL2 instrumented load.
func (t *Thread) read(a memsim.Addr) uint64 {
	if i, hit := t.writeIdx[a]; hit {
		return t.writeSet[i].val
	}
	mem := t.sys.Mem
	va := t.sys.VersionAddr(a)
	before := mem.Load(va)
	v := mem.Load(a)
	after := mem.Load(va)
	t.stats.MetadataReads += 2
	t.stats.Reads++
	if sys.IsLocked(before) || before != after || sys.UnpackVersion(before) > t.txVersion {
		engine.Retry(memsim.AbortConflict)
	}
	t.readSet = append(t.readSet, a)
	return v
}

// write buffers a transactional store.
func (t *Thread) write(a memsim.Addr, v uint64) {
	t.stats.Writes++
	if i, hit := t.writeIdx[a]; hit {
		t.writeSet[i].val = v
		return
	}
	t.writeSet = append(t.writeSet, writeEntry{addr: a, val: v})
	t.writeIdx[a] = len(t.writeSet) - 1
}

// commit runs the TL2 commit: lock write set, validate read set, write back,
// release. Returns false (and releases everything) on validation failure.
func (t *Thread) commit() bool {
	if len(t.writeSet) == 0 {
		// Read-only transactions were validated on the fly; done.
		t.stats.ReadOnlyCommits++
		return true
	}
	mem := t.sys.Mem
	lockWord := sys.LockWord(t.id)

	// Phase 1: lock the write set (deduplicated by stripe via CAS-from-
	// unlocked; re-locking an already-owned stripe is a no-op).
	locked := make([]lockedStripe, 0, len(t.writeSet))
	for _, w := range t.writeSet {
		va := t.sys.VersionAddr(w.addr)
		cur := mem.Load(va)
		t.stats.MetadataReads++
		if cur == lockWord {
			continue // another word of an already-locked stripe
		}
		if sys.IsLocked(cur) || sys.UnpackVersion(cur) > t.txVersion ||
			!mem.CAS(va, cur, lockWord) {
			t.restoreLocks(locked)
			return false
		}
		t.stats.MetadataWrites++
		locked = append(locked, lockedStripe{va: va, old: cur})
	}

	// Phase 2: validate the read set.
	for _, a := range t.readSet {
		va := t.sys.VersionAddr(a)
		cur := mem.Load(va)
		t.stats.MetadataReads++
		if cur == lockWord {
			continue // we hold the lock: the stripe is also written by us
		}
		if sys.IsLocked(cur) || sys.UnpackVersion(cur) > t.txVersion {
			t.restoreLocks(locked)
			return false
		}
	}

	// Phase 3: write back and release to the next version.
	next := sys.PackVersion(t.sys.Clock.Next())
	for _, w := range t.writeSet {
		mem.Store(w.addr, w.val)
	}
	for _, l := range locked {
		mem.Store(l.va, next)
	}
	t.stats.MetadataWrites += uint64(len(locked))
	t.stats.SlowCommits++
	return true
}

// lockedStripe remembers a locked version word and its pre-lock contents so
// a failed commit can restore it exactly.
type lockedStripe struct {
	va  memsim.Addr
	old uint64
}

// restoreLocks releases locks acquired by a failing commit, restoring each
// stripe's original version word.
func (t *Thread) restoreLocks(locked []lockedStripe) {
	for _, l := range locked {
		t.sys.Mem.Store(l.va, l.old)
	}
}

// tl2Tx adapts Thread to engine.Tx. A distinct type keeps the Tx methods off
// the Thread API.
type tl2Tx Thread

// Load implements engine.Tx.
func (tx *tl2Tx) Load(a memsim.Addr) uint64 { return (*Thread)(tx).read(a) }

// Store implements engine.Tx.
func (tx *tl2Tx) Store(a memsim.Addr, v uint64) { (*Thread)(tx).write(a, v) }

// Unsupported implements engine.Tx; software transactions execute protected
// instructions natively, so this is a no-op.
func (tx *tl2Tx) Unsupported() {}
