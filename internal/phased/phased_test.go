package phased

import (
	"sync"
	"testing"

	"rhtm/internal/engine"
	"rhtm/internal/enginetest"
	"rhtm/internal/htm"
	"rhtm/internal/memsim"
	"rhtm/internal/sys"
)

func factory(t *testing.T, cfg sys.Config) (engine.Engine, *sys.System) {
	t.Helper()
	s := sys.MustNew(cfg)
	return MustNew(s, DefaultOptions()), s
}

func TestConformance(t *testing.T) {
	enginetest.Run(t, "PhasedTM", factory, enginetest.Capabilities{Unsupported: true})
}

func TestConformanceTinyHTM(t *testing.T) {
	tiny := func(t *testing.T, cfg sys.Config) (engine.Engine, *sys.System) {
		t.Helper()
		cfg.HTM = htm.Config{MaxFootprintLines: 4, MaxWriteLines: 2}
		s := sys.MustNew(cfg)
		return MustNew(s, DefaultOptions()), s
	}
	enginetest.Run(t, "PhasedTM-Tiny", tiny, enginetest.Capabilities{Unsupported: true})
}

func TestName(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(256))
	if MustNew(s, DefaultOptions()).Name() != "Phased TM" {
		t.Fatal("wrong name")
	}
}

func TestUnsupportedFlipsPhaseAndRestores(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := MustNew(s, DefaultOptions())
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	if err := th.Atomic(func(tx engine.Tx) error {
		tx.Unsupported()
		tx.Store(a, 4)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.Mem.Load(a); got != 4 {
		t.Fatalf("value = %d, want 4", got)
	}
	if got := s.Mem.Load(e.phase); got != phaseHardware {
		t.Fatalf("phase = %d after drain, want hardware", got)
	}
	if got := s.Mem.Load(e.swCnt); got != 0 {
		t.Fatalf("software count = %d after drain, want 0", got)
	}
	st := e.Snapshot()
	if st.SlowCommits != 1 {
		t.Fatalf("stats = %v, want one software commit", st)
	}
}

func TestPhaseFlipAbortsHardwarePeers(t *testing.T) {
	// One thread forces the software phase while others run hardware
	// transactions; the peers must abort (via the phase-word subscription)
	// and then complete in software, keeping the counter exact.
	s := sys.MustNew(sys.DefaultConfig(1 << 12))
	e := MustNew(s, DefaultOptions())
	ctr := s.Heap.MustAlloc(1)
	const workers, iters = 4, 80
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := e.NewThread()
		flip := w == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := th.Atomic(func(tx engine.Tx) error {
					if flip && i%10 == 0 {
						tx.Unsupported()
					}
					tx.Store(ctr, tx.Load(ctr)+1)
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Mem.Load(ctr); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := s.Mem.Load(e.swCnt); got != 0 {
		t.Fatalf("software count = %d after drain, want 0", got)
	}
}

func TestHardwarePhaseUninstrumentedData(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := MustNew(s, DefaultOptions())
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	if err := th.Atomic(func(tx engine.Tx) error {
		tx.Store(a, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Stripe versions untouched by the hardware phase (no instrumentation).
	if v := s.Mem.Load(s.VersionAddr(memsim.Addr(a))); v != 0 {
		t.Fatalf("stripe version = %d, want 0", v)
	}
	st := e.Snapshot()
	// Phase + swCnt subscriptions only.
	if st.MetadataReads != 2 {
		t.Fatalf("metadata reads = %d, want 2 (phase/count subscription)", st.MetadataReads)
	}
}
