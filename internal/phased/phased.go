// Package phased implements Phased TM (Lev, Moir & Nussbaum, TRANSACT 2007),
// the first of the prior approaches discussed in the paper's introduction:
// execution proceeds in global phases that are either all-hardware or
// all-software. In the hardware phase every transaction runs as a pure
// hardware transaction subscribed to the phase word; a transaction that
// cannot complete in hardware flips the phase, which aborts every in-flight
// hardware transaction and sends the whole system through the software (TL2)
// path until the instigators drain. This engine exists to reproduce the
// behaviour the paper criticizes: "poor performance if even a single
// transaction needs to be executed in software" (§1).
package phased

import (
	"math/rand"
	"sync"

	"rhtm/internal/engine"
	"rhtm/internal/htm"
	"rhtm/internal/memsim"
	"rhtm/internal/sys"
	"rhtm/internal/tl2"
)

// Phase word values.
const (
	phaseHardware = 0
	phaseSoftware = 1
)

// Options configures the Phased TM engine.
type Options struct {
	// MaxFastAttempts bounds hardware attempts before requesting a phase
	// switch (default 8).
	MaxFastAttempts int
	// InjectAbortPercent forces hardware commit aborts (§3.1 emulation).
	InjectAbortPercent int
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{MaxFastAttempts: 8} }

// Engine is a Phased TM over a System.
type Engine struct {
	sys   *sys.System
	opts  Options
	tl2   *tl2.Engine
	phase memsim.Addr // phaseHardware / phaseSoftware
	swCnt memsim.Addr // software transactions in flight

	mu      sync.Mutex
	threads []*Thread
	live    engine.Live
}

// New creates a Phased TM engine on s.
func New(s *sys.System, opts Options) (*Engine, error) {
	if opts.MaxFastAttempts <= 0 {
		opts.MaxFastAttempts = 8
	}
	line := s.Mem.Config().WordsPerLine
	phaseReg, err := s.Mem.AllocRegion(line)
	if err != nil {
		return nil, err
	}
	cntReg, err := s.Mem.AllocRegion(line)
	if err != nil {
		return nil, err
	}
	return &Engine{
		sys:   s,
		opts:  opts,
		tl2:   tl2.New(s),
		phase: phaseReg.Base,
		swCnt: cntReg.Base,
	}, nil
}

// MustNew is New for setup code.
func MustNew(s *sys.System, opts Options) *Engine {
	e, err := New(s, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "Phased TM" }

// NewThread implements engine.Engine.
func (e *Engine) NewThread() engine.Thread {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := &Thread{
		eng:  e,
		sys:  e.sys,
		htx:  htm.NewTxn(e.sys.Mem, e.sys.Config().HTM),
		slow: e.tl2.NewThread(),
		rng:  rand.New(rand.NewSource(int64(len(e.threads))*40692 + 5)),
	}
	e.threads = append(e.threads, t)
	return t
}

// Snapshot implements engine.Engine.
func (e *Engine) Snapshot() engine.Stats {
	e.mu.Lock()
	var s engine.Stats
	for _, t := range e.threads {
		s.Add(t.stats)
	}
	e.mu.Unlock()
	s.Add(e.tl2.Snapshot())
	return s
}

// Live implements engine.Engine. Software-phase attempts flush into the
// embedded TL2 engine's accumulator, so — mirroring Snapshot — the two
// are merged.
func (e *Engine) Live() engine.Stats {
	s := e.live.Stats()
	s.Add(e.tl2.Live())
	return s
}

// Thread is a per-worker Phased TM context.
type Thread struct {
	eng       *Engine
	sys       *sys.System
	htx       *htm.Txn
	slow      engine.Thread
	rng       *rand.Rand
	stats     engine.Stats
	published engine.Stats // high-water mark of stats flushed into eng.live
}

// Atomic implements engine.Thread.
func (t *Thread) Atomic(fn func(tx engine.Tx) error) error {
	defer t.eng.live.Flush(&t.published, &t.stats)
	for attempt := 0; ; attempt++ {
		// Enter the software path if the phase says so OR software
		// transactions are still draining after a phase flip raced back:
		// hardware may never overlap an in-flight software write-back.
		if t.sys.Mem.Load(t.eng.phase) == phaseSoftware ||
			t.sys.Mem.Load(t.eng.swCnt) > 0 {
			return t.runSoftware(fn)
		}
		done, err, reason := t.tryHW(fn)
		if done {
			return err
		}
		t.stats.FastAborts++
		if int(reason) < len(t.stats.FastAbortsByReason) {
			t.stats.FastAbortsByReason[reason]++
		}
		if reason.Persistent() || attempt+1 >= t.eng.opts.MaxFastAttempts {
			// Flip the whole system to the software phase. The plain store
			// aborts every hardware transaction subscribed to the phase
			// word — the global disruption Phased TM is known for.
			t.sys.Mem.Store(t.eng.phase, phaseSoftware)
			return t.runSoftware(fn)
		}
		engine.Backoff(t.rng, attempt)
	}
}

// runSoftware executes fn under TL2 while registered in the software count;
// the last software transaction out restores the hardware phase.
func (t *Thread) runSoftware(fn func(tx engine.Tx) error) error {
	mem := t.sys.Mem
	mem.FetchAdd(t.eng.swCnt, 1)
	err := t.slow.Atomic(fn)
	if mem.AddInt(t.eng.swCnt, -1) == 0 {
		// Best-effort phase restoration; racing decrementers may both see
		// zero, in which case both stores write the same value.
		mem.Store(t.eng.phase, phaseHardware)
	}
	return err
}

// tryHW is one pure hardware attempt subscribed to the phase word.
func (t *Thread) tryHW(fn func(tx engine.Tx) error) (done bool, err error, reason memsim.AbortReason) {
	htx := t.htx
	htx.Begin()
	p, ok := htx.Read(t.eng.phase)
	if !ok {
		htx.Fini()
		return false, nil, htx.AbortReason()
	}
	// Subscribe to the software count as well: a software transaction that
	// sneaks in after the phase check increments it with a plain
	// fetch-and-add, which aborts this hardware transaction through
	// coherence before any non-atomic software write-back can be observed.
	cnt, ok := htx.Read(t.eng.swCnt)
	if !ok {
		htx.Fini()
		return false, nil, htx.AbortReason()
	}
	t.stats.MetadataReads += 2
	if p != phaseHardware || cnt > 0 {
		htx.Abort(memsim.AbortExplicit)
		return false, nil, memsim.AbortExplicit
	}
	err, aborted, reason := engine.RunBody(fn, (*phasedTx)(t))
	if aborted {
		htx.Fini()
		return false, nil, reason
	}
	if err != nil {
		htx.Abort(memsim.AbortExplicit)
		htx.Fini()
		t.stats.UserErrors++
		return true, err, memsim.AbortNone
	}
	if pct := t.eng.opts.InjectAbortPercent; pct > 0 && t.rng.Intn(100) < pct {
		htx.Abort(memsim.AbortInjected)
		htx.Fini()
		return false, nil, memsim.AbortInjected
	}
	if !htx.Commit() {
		return false, nil, htx.AbortReason()
	}
	t.stats.FastCommits++
	return true, nil, memsim.AbortNone
}

type phasedTx Thread

// Load implements engine.Tx: uninstrumented in the hardware phase.
func (tx *phasedTx) Load(a memsim.Addr) uint64 {
	t := (*Thread)(tx)
	t.stats.Reads++
	v, ok := t.htx.Read(a)
	if !ok {
		engine.Retry(t.htx.AbortReason())
	}
	return v
}

// Store implements engine.Tx: uninstrumented in the hardware phase.
func (tx *phasedTx) Store(a memsim.Addr, v uint64) {
	t := (*Thread)(tx)
	t.stats.Writes++
	if !t.htx.Write(a, v) {
		engine.Retry(t.htx.AbortReason())
	}
}

// Unsupported implements engine.Tx.
func (tx *phasedTx) Unsupported() {
	t := (*Thread)(tx)
	t.htx.Unsupported()
	engine.Retry(memsim.AbortUnsupported)
}
