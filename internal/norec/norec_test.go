package norec

import (
	"testing"

	"rhtm/internal/engine"
	"rhtm/internal/enginetest"
	"rhtm/internal/memsim"
	"rhtm/internal/sys"
)

func factory(t *testing.T, cfg sys.Config) (engine.Engine, *sys.System) {
	t.Helper()
	s := sys.MustNew(cfg)
	return MustNew(s, DefaultOptions()), s
}

func TestConformance(t *testing.T) {
	enginetest.Run(t, "HybridNoRec", factory, enginetest.Capabilities{Unsupported: true})
}

func TestName(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(256))
	if MustNew(s, DefaultOptions()).Name() != "Hybrid NoRec" {
		t.Fatal("wrong name")
	}
}

func TestHWWriteCommitBumpsCounter(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := MustNew(s, DefaultOptions())
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	before := s.Mem.Load(e.seq)
	if err := th.Atomic(func(tx engine.Tx) error {
		tx.Store(a, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	after := s.Mem.Load(e.seq)
	if after != before+2 {
		t.Fatalf("seq = %d -> %d, want +2 on hardware write commit", before, after)
	}
	if after&1 != 0 {
		t.Fatal("seq left odd")
	}
}

func TestHWReadOnlyCommitLeavesCounter(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := MustNew(s, DefaultOptions())
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	before := s.Mem.Load(e.seq)
	if err := th.Atomic(func(tx engine.Tx) error {
		_ = tx.Load(a)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.Mem.Load(e.seq); got != before {
		t.Fatalf("read-only hardware commit moved seq: %d -> %d", before, got)
	}
}

func TestSWCommitViaUnsupported(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := MustNew(s, DefaultOptions())
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	if err := th.Atomic(func(tx engine.Tx) error {
		tx.Unsupported()
		tx.Store(a, 2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Snapshot()
	if st.SlowCommits != 1 {
		t.Fatalf("stats = %v, want one software commit", st)
	}
	if got := s.Mem.Load(a); got != 2 {
		t.Fatalf("value = %d, want 2", got)
	}
	if got := s.Mem.Load(e.seq); got&1 != 0 {
		t.Fatal("seq left odd after software commit")
	}
}

func TestNoStripeMetadataTouched(t *testing.T) {
	// NoRec's defining property: no per-location metadata. The stripe
	// version array must stay all-zero whatever the engine does.
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := MustNew(s, DefaultOptions())
	a := s.Heap.MustAlloc(4)
	th := e.NewThread()
	for i := 0; i < 5; i++ {
		if err := th.Atomic(func(tx engine.Tx) error {
			if i%2 == 0 {
				tx.Unsupported() // exercise the software path too
			}
			tx.Store(a+memsim.Addr(i%4), uint64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < s.StripeCount(); i++ {
		if v := s.Mem.Load(s.Versions.Addr(i)); v != 0 {
			t.Fatalf("stripe version %d = %d, want 0 (NoRec must not touch it)", i, v)
		}
	}
}

func TestSWValueValidationAllowsSilentRestore(t *testing.T) {
	// Value-based validation: if memory returns to the logged value before
	// commit, the software transaction may commit (ABA is benign in NoRec).
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := MustNew(s, DefaultOptions())
	a := s.Heap.MustAlloc(1)
	b := s.Heap.MustAlloc(1)
	s.Mem.Poke(a, 7)
	th := e.NewThread().(*Thread)
	err := th.Atomic(func(tx engine.Tx) error {
		tx.Unsupported() // software path
		v := tx.Load(a)
		// Concurrent writer commits a change and a restoration via the
		// hardware path of another thread.
		other := e.NewThread()
		for _, val := range []uint64{8, 7} {
			if err := other.Atomic(func(tx2 engine.Tx) error {
				tx2.Store(a, val)
				return nil
			}); err != nil {
				return err
			}
		}
		tx.Store(b, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Mem.Load(b); got != 7 {
		t.Fatalf("b = %d, want 7", got)
	}
}
