// Package norec implements Hybrid NoRec (Dalessandro et al., PPoPP 2011),
// the second of the three prior approaches the paper's introduction
// discusses. NoRec keeps no per-location ownership records: a single global
// sequence counter orders write commits, and software transactions validate
// by value.
//
//   - The software path is the NoRec STM: reads are logged with their
//     values; whenever the global counter moves, the read log is revalidated
//     by re-reading values under a stable counter. Write commits take the
//     counter to odd (a sequence lock), write back, and release to even.
//
//   - The hardware path subscribes to the counter by reading it
//     speculatively at begin (aborting if a software commit is in flight)
//     and, if it wrote anything, increments it at commit to trigger software
//     revalidation. The counter write serializes hardware write commits on
//     one line — exactly the scalability ceiling the paper ascribes to this
//     design ("conflicts cannot be detected at a sufficiently low
//     granularity", §1).
package norec

import (
	"math/rand"
	"sync"

	"rhtm/internal/engine"
	"rhtm/internal/htm"
	"rhtm/internal/memsim"
	"rhtm/internal/sys"
)

// Options configures the Hybrid NoRec engine.
type Options struct {
	// MaxFastAttempts bounds hardware attempts before the software path
	// (default 8).
	MaxFastAttempts int
	// InjectAbortPercent forces hardware commit aborts (§3.1 emulation).
	InjectAbortPercent int
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{MaxFastAttempts: 8} }

// Engine is a Hybrid NoRec TM over a System. It uses only the system's
// memory and one global counter word — NoRec's defining property is that the
// stripe metadata arrays stay untouched.
type Engine struct {
	sys  *sys.System
	opts Options
	seq  memsim.Addr // global sequence counter; odd = software commit active

	mu      sync.Mutex
	threads []*Thread
	live    engine.Live
}

// New creates a Hybrid NoRec engine on s.
func New(s *sys.System, opts Options) (*Engine, error) {
	if opts.MaxFastAttempts <= 0 {
		opts.MaxFastAttempts = 8
	}
	reg, err := s.Mem.AllocRegion(s.Mem.Config().WordsPerLine)
	if err != nil {
		return nil, err
	}
	return &Engine{sys: s, opts: opts, seq: reg.Base}, nil
}

// MustNew is New for setup code.
func MustNew(s *sys.System, opts Options) *Engine {
	e, err := New(s, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "Hybrid NoRec" }

// NewThread implements engine.Engine.
func (e *Engine) NewThread() engine.Thread {
	e.mu.Lock()
	defer e.mu.Unlock()
	t := &Thread{
		eng:      e,
		sys:      e.sys,
		htx:      htm.NewTxn(e.sys.Mem, e.sys.Config().HTM),
		writeIdx: make(map[memsim.Addr]int, 32),
		rng:      rand.New(rand.NewSource(int64(len(e.threads))*16807 + 3)),
	}
	e.threads = append(e.threads, t)
	return t
}

// Snapshot implements engine.Engine.
func (e *Engine) Snapshot() engine.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	var s engine.Stats
	for _, t := range e.threads {
		s.Add(t.stats)
	}
	return s
}

// Live implements engine.Engine.
func (e *Engine) Live() engine.Stats { return e.live.Stats() }

// readLogEntry is a value-logged software read.
type readLogEntry struct {
	addr memsim.Addr
	val  uint64
}

type writeEntry struct {
	addr memsim.Addr
	val  uint64
}

// Thread is a per-worker Hybrid NoRec context.
type Thread struct {
	eng *Engine
	sys *sys.System
	htx *htm.Txn

	hw bool // current path

	snapshot uint64
	readLog  []readLogEntry
	writeSet []writeEntry
	writeIdx map[memsim.Addr]int

	rng       *rand.Rand
	stats     engine.Stats
	published engine.Stats // high-water mark of stats flushed into eng.live
}

// Atomic implements engine.Thread.
func (t *Thread) Atomic(fn func(tx engine.Tx) error) error {
	defer t.eng.live.Flush(&t.published, &t.stats)
	for attempt := 0; ; attempt++ {
		done, err, reason := t.tryHW(fn)
		if done {
			return err
		}
		t.stats.FastAborts++
		if int(reason) < len(t.stats.FastAbortsByReason) {
			t.stats.FastAbortsByReason[reason]++
		}
		if reason.Persistent() || attempt+1 >= t.eng.opts.MaxFastAttempts {
			return t.runSW(fn)
		}
		engine.Backoff(t.rng, attempt)
	}
}

// tryHW is one hardware attempt with counter subscription.
func (t *Thread) tryHW(fn func(tx engine.Tx) error) (done bool, err error, reason memsim.AbortReason) {
	htx := t.htx
	htx.Begin()
	c, ok := htx.Read(t.eng.seq)
	if !ok {
		htx.Fini()
		return false, nil, htx.AbortReason()
	}
	t.stats.MetadataReads++
	if c&1 == 1 {
		// A software commit is writing back; hardware cannot proceed.
		htx.Abort(memsim.AbortExplicit)
		return false, nil, memsim.AbortExplicit
	}
	t.hw = true
	t.writeSet = t.writeSet[:0]
	err, aborted, reason := engine.RunBody(fn, (*norecTx)(t))
	if aborted {
		htx.Fini()
		return false, nil, reason
	}
	if err != nil {
		htx.Abort(memsim.AbortExplicit)
		htx.Fini()
		t.stats.UserErrors++
		return true, err, memsim.AbortNone
	}
	if len(t.writeSet) > 0 {
		// Notify software transactions: bump the counter by 2 (stays even)
		// inside the hardware transaction. This is the write that serializes
		// hardware write commits globally.
		if !htx.Write(t.eng.seq, c+2) {
			htx.Fini()
			return false, nil, htx.AbortReason()
		}
		t.stats.MetadataWrites++
	}
	if p := t.eng.opts.InjectAbortPercent; p > 0 && t.rng.Intn(100) < p {
		htx.Abort(memsim.AbortInjected)
		htx.Fini()
		return false, nil, memsim.AbortInjected
	}
	if !htx.Commit() {
		return false, nil, htx.AbortReason()
	}
	t.stats.FastCommits++
	return true, nil, memsim.AbortNone
}

// runSW executes the transaction on the NoRec software path until commit.
func (t *Thread) runSW(fn func(tx engine.Tx) error) error {
	for attempt := 0; ; attempt++ {
		done, err := t.trySW(fn)
		if done {
			return err
		}
		t.stats.SlowAborts++
		engine.Backoff(t.rng, attempt)
	}
}

// trySW is one NoRec software attempt.
func (t *Thread) trySW(fn func(tx engine.Tx) error) (done bool, err error) {
	t.hw = false
	t.snapshot = t.waitEven()
	t.readLog = t.readLog[:0]
	t.writeSet = t.writeSet[:0]
	clear(t.writeIdx)

	err, aborted, _ := engine.RunBody(fn, (*norecTx)(t))
	if aborted {
		return false, nil
	}
	if err != nil {
		t.stats.UserErrors++
		return true, err
	}
	if len(t.writeSet) == 0 {
		t.stats.ReadOnlyCommits++
		return true, nil
	}
	// Sequence-lock acquisition: even snapshot -> odd.
	mem := t.sys.Mem
	for !mem.CAS(t.eng.seq, t.snapshot, t.snapshot+1) {
		if !t.revalidate() {
			return false, nil
		}
	}
	t.stats.MetadataWrites++
	for _, w := range t.writeSet {
		mem.Store(w.addr, w.val)
	}
	mem.Store(t.eng.seq, t.snapshot+2)
	t.stats.MetadataWrites++
	t.stats.SlowCommits++
	return true, nil
}

// waitEven spins until the global counter is even and returns it.
func (t *Thread) waitEven() uint64 {
	for spin := 0; ; spin++ {
		c := t.sys.Mem.Load(t.eng.seq)
		t.stats.MetadataReads++
		if c&1 == 0 {
			return c
		}
		engine.Backoff(t.rng, spin)
	}
}

// revalidate re-reads the whole value log under a stable counter, updating
// the snapshot on success (NoRec's value-based validation).
func (t *Thread) revalidate() bool {
	for {
		c := t.waitEven()
		ok := true
		for _, r := range t.readLog {
			if t.sys.Mem.Load(r.addr) != r.val {
				ok = false
				break
			}
		}
		if !ok {
			return false
		}
		t.stats.MetadataReads++
		if t.sys.Mem.Load(t.eng.seq) == c {
			t.snapshot = c
			return true
		}
		// The counter moved during revalidation; try again.
	}
}

type norecTx Thread

// Load implements engine.Tx.
func (tx *norecTx) Load(a memsim.Addr) uint64 {
	t := (*Thread)(tx)
	t.stats.Reads++
	if t.hw {
		v, ok := t.htx.Read(a)
		if !ok {
			engine.Retry(t.htx.AbortReason())
		}
		return v
	}
	if i, hit := t.writeIdx[a]; hit {
		return t.writeSet[i].val
	}
	// Consistent read: value is valid only if the counter did not move; if
	// it moved, revalidate the log (which re-reads this location too).
	for {
		v := t.sys.Mem.Load(a)
		t.stats.MetadataReads++
		if t.sys.Mem.Load(t.eng.seq) == t.snapshot {
			t.readLog = append(t.readLog, readLogEntry{addr: a, val: v})
			return v
		}
		if !t.revalidate() {
			engine.Retry(memsim.AbortConflict)
		}
	}
}

// Store implements engine.Tx.
func (tx *norecTx) Store(a memsim.Addr, v uint64) {
	t := (*Thread)(tx)
	t.stats.Writes++
	if t.hw {
		if !t.htx.Write(a, v) {
			engine.Retry(t.htx.AbortReason())
		}
		t.writeSet = append(t.writeSet, writeEntry{addr: a, val: v})
		return
	}
	if i, hit := t.writeIdx[a]; hit {
		t.writeSet[i].val = v
		return
	}
	t.writeSet = append(t.writeSet, writeEntry{addr: a, val: v})
	t.writeIdx[a] = len(t.writeSet) - 1
}

// Unsupported implements engine.Tx.
func (tx *norecTx) Unsupported() {
	t := (*Thread)(tx)
	if t.hw {
		t.htx.Unsupported()
		engine.Retry(memsim.AbortUnsupported)
	}
}
