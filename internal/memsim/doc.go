// Package memsim implements the simulated shared memory that every other
// component of this repository runs on top of.
//
// The paper's protocols (RH1, RH2, TL2, Standard HyTM, ...) coordinate
// through hardware cache coherence: a best-effort hardware transaction is
// aborted whenever another agent — a concurrent hardware transaction or a
// plain (non-transactional) store — touches a cache line the transaction has
// speculatively read or written. Go has no hardware transactional memory, so
// this package models the relevant slice of a coherent memory system in
// software:
//
//   - Memory is a flat array of 64-bit words. All shared state, including TM
//     metadata (stripe versions, read masks, the global clock), lives inside
//     one Memory so that conflicts on metadata and data are detected by the
//     same mechanism, exactly as they would be by real coherence hardware.
//
//   - Words are grouped into lines (default 8 words = 64 bytes). The line is
//     the conflict-detection granularity, mirroring cache-line granularity in
//     real HTM; this deliberately reproduces false-sharing aborts.
//
//   - Each line has a monitor set: the set of in-flight speculative
//     transactions (htm.Txn values, seen here through the Handle interface)
//     that have read or declared a write to the line. Plain stores abort every
//     monitor of the line; plain loads abort speculative writers (a read snoop
//     downgrades an exclusively-held speculative line, which kills the
//     speculation on real hardware — configurable via Config).
//
//   - Speculative writes are buffered by the owning transaction and published
//     atomically by CommitTxn, which locks the transaction's entire footprint
//     (all read and written lines, in sorted order), re-checks that the
//     transaction is still running, sweeps conflicting monitors, applies the
//     writes, and only then marks the transaction committed. Holding the whole
//     footprint makes the commit a single linearization point: no concurrent
//     agent can observe a partially applied write set, and no store to a read
//     line can slip "into the middle" of the commit. This is the all-or-nothing
//     property the RH1 protocol's uninstrumented fast-path reads rely on.
//
// Every word access takes the line's mutex, so the words array itself needs
// no atomics; the mutex doubles as the coherence serialization point. This is
// a simulator, not a production allocator: clarity and fidelity of the
// conflict semantics take priority over raw memory bandwidth.
package memsim
