package memsim

import (
	"fmt"
	"sync"
)

// Heap is a word allocator over a Region. Containers allocate their nodes
// from a Heap so that every field of every node is a simulated word subject
// to conflict detection.
//
// The allocator is a size-segregated free list over a bump pointer: Free
// returns blocks to a per-size list and Alloc reuses them before bumping.
// Allocation is line-aligned when the block is at least a line long, so that
// two nodes never share a line unless they are smaller than a line (matching
// how a real slab allocator interacts with false sharing).
type Heap struct {
	mem *Memory
	reg Region

	mu    sync.Mutex
	next  Addr
	free  map[int][]Addr
	alloc int // words currently allocated (for diagnostics)
}

// NewHeap creates a Heap over a fresh region of the given size.
func NewHeap(m *Memory, words int) (*Heap, error) {
	reg, err := m.AllocRegion(words)
	if err != nil {
		return nil, err
	}
	return &Heap{
		mem:  m,
		reg:  reg,
		next: reg.Base,
		free: make(map[int][]Addr),
	}, nil
}

// Region returns the heap's backing region. The TM metadata layout (stripe
// versions, read masks) is sized from it.
func (h *Heap) Region() Region { return h.reg }

// Alloc returns the address of a fresh zeroed block of n words.
func (h *Heap) Alloc(n int) (Addr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("memsim: alloc size %d must be positive", n)
	}
	h.mu.Lock()
	if list := h.free[n]; len(list) > 0 {
		a := list[len(list)-1]
		h.free[n] = list[:len(list)-1]
		h.alloc += n
		h.mu.Unlock()
		h.zero(a, n)
		return a, nil
	}
	a := h.next
	if n >= h.mem.cfg.WordsPerLine {
		lw := Addr(h.mem.cfg.WordsPerLine)
		a = (a + lw - 1) &^ (lw - 1)
	}
	end := a + Addr(n)
	if end > h.reg.Base+Addr(h.reg.Size) {
		h.mu.Unlock()
		return 0, fmt.Errorf("memsim: heap exhausted: need %d words, %d remain",
			n, int64(h.reg.Base)+int64(h.reg.Size)-int64(h.next))
	}
	h.next = end
	h.alloc += n
	h.mu.Unlock()
	return a, nil
}

// MustAlloc is Alloc for setup code.
func (h *Heap) MustAlloc(n int) Addr {
	a, err := h.Alloc(n)
	if err != nil {
		panic(err)
	}
	return a
}

// Free returns a block of n words (previously obtained from Alloc with the
// same n) to the allocator.
func (h *Heap) Free(a Addr, n int) {
	h.mu.Lock()
	h.free[n] = append(h.free[n], a)
	h.alloc -= n
	h.mu.Unlock()
}

// AllocatedWords returns the number of words currently allocated.
func (h *Heap) AllocatedWords() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.alloc
}

// zero clears a block with plain stores so that recycled memory does not leak
// stale values into fresh nodes. Zeroing uses Store (not Poke): a recycled
// block may still be monitored by doomed speculative readers, which must be
// snooped out exactly as real coherence traffic would.
func (h *Heap) zero(a Addr, n int) {
	for i := 0; i < n; i++ {
		h.mem.Store(a+Addr(i), 0)
	}
}
