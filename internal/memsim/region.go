package memsim

import "fmt"

// Region is a contiguous range of words carved out of a Memory. Regions give
// each subsystem (globals, TM metadata arrays, the data heap) its own address
// range, the way a linker script lays out segments.
type Region struct {
	// Base is the first word of the region.
	Base Addr
	// Size is the region length in words.
	Size int
}

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool {
	return a >= r.Base && a < r.Base+Addr(r.Size)
}

// Addr returns the address of the i-th word of the region, panicking on
// out-of-range indices (an out-of-region access is a bug, not a condition).
func (r Region) Addr(i int) Addr {
	if i < 0 || i >= r.Size {
		panic(fmt.Sprintf("memsim: region index %d out of range [0,%d)", i, r.Size))
	}
	return r.Base + Addr(i)
}

// Index returns the offset of a within the region.
func (r Region) Index(a Addr) int {
	if !r.Contains(a) {
		panic(fmt.Sprintf("memsim: address %d outside region [%d,%d)", a, r.Base, r.Base+Addr(r.Size)))
	}
	return int(a - r.Base)
}

// AllocRegion reserves a fresh region of the given size, aligned to a line
// boundary so that distinct regions never share a conflict-detection line.
// It returns an error when the memory is exhausted.
func (m *Memory) AllocRegion(size int) (Region, error) {
	if size <= 0 {
		return Region{}, fmt.Errorf("memsim: region size %d must be positive", size)
	}
	m.regionMu.Lock()
	defer m.regionMu.Unlock()
	lineWords := Addr(m.cfg.WordsPerLine)
	base := (m.nextFree + lineWords - 1) &^ (lineWords - 1)
	if base == 0 {
		base = lineWords // keep the null word out of any region
	}
	end := base + Addr(size)
	if end > Addr(m.cfg.Words) {
		return Region{}, fmt.Errorf("memsim: out of memory: need %d words at %d, have %d",
			size, base, m.cfg.Words)
	}
	m.nextFree = end
	return Region{Base: base, Size: size}, nil
}

// MustAllocRegion is AllocRegion for setup code where exhaustion is a
// configuration bug.
func (m *Memory) MustAllocRegion(size int) Region {
	r, err := m.AllocRegion(size)
	if err != nil {
		panic(err)
	}
	return r
}
