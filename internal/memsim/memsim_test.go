package memsim

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// fakeTxn is a minimal CommitterHandle for driving the memory directly.
type fakeTxn struct {
	state  atomic.Uint32 // 0 running, 1 aborted, 2 committed
	reason atomic.Uint32
}

func (f *fakeTxn) TryAbort(r AbortReason) bool {
	if f.state.CompareAndSwap(0, 1) {
		f.reason.Store(uint32(r))
		return true
	}
	return false
}
func (f *fakeTxn) Running() bool   { return f.state.Load() == 0 }
func (f *fakeTxn) TryCommit() bool { return f.state.CompareAndSwap(0, 2) }
func (f *fakeTxn) aborted() bool   { return f.state.Load() == 1 }

func newMem(t testing.TB, words int) *Memory {
	t.Helper()
	return New(DefaultConfig(words))
}

func TestNewValidatesConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Words: 0, WordsPerLine: 8},
		{Words: -1, WordsPerLine: 8},
		{Words: 64, WordsPerLine: 0},
		{Words: 64, WordsPerLine: 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestPlainLoadStoreRoundTrip(t *testing.T) {
	m := newMem(t, 128)
	m.Store(5, 42)
	if got := m.Load(5); got != 42 {
		t.Fatalf("Load(5) = %d, want 42", got)
	}
	if got := m.Load(6); got != 0 {
		t.Fatalf("Load(6) = %d, want 0 (fresh word)", got)
	}
}

func TestCASSemantics(t *testing.T) {
	m := newMem(t, 64)
	m.Store(3, 10)
	if !m.CAS(3, 10, 11) {
		t.Fatal("CAS(3, 10, 11) failed, want success")
	}
	if m.CAS(3, 10, 12) {
		t.Fatal("CAS(3, 10, 12) succeeded, want failure")
	}
	if got := m.Load(3); got != 11 {
		t.Fatalf("after CAS, Load(3) = %d, want 11", got)
	}
}

func TestFetchAddReturnsNewValue(t *testing.T) {
	m := newMem(t, 64)
	if got := m.FetchAdd(1, 5); got != 5 {
		t.Fatalf("FetchAdd = %d, want 5", got)
	}
	if got := m.AddInt(1, -2); got != 3 {
		t.Fatalf("AddInt = %d, want 3", got)
	}
}

func TestPlainStoreAbortsMonitors(t *testing.T) {
	m := newMem(t, 64)
	reader, writer := &fakeTxn{}, &fakeTxn{}
	if _, ok := m.SpecLoad(8, reader, true); !ok {
		t.Fatal("SpecLoad failed for fresh reader")
	}
	if !m.SpecDeclareWrite(16, writer) {
		t.Fatal("SpecDeclareWrite failed for fresh writer")
	}
	m.Store(8, 1)
	m.Store(16, 1)
	if !reader.aborted() {
		t.Error("plain store did not abort speculative reader of the line")
	}
	if !writer.aborted() {
		t.Error("plain store did not abort speculative writer of the line")
	}
	if AbortReason(reader.reason.Load()) != AbortNonTxConflict {
		t.Errorf("reader abort reason = %v, want nontx-conflict", AbortReason(reader.reason.Load()))
	}
}

func TestPlainLoadSnoopsWriters(t *testing.T) {
	m := newMem(t, 64)
	writer := &fakeTxn{}
	if !m.SpecDeclareWrite(8, writer) {
		t.Fatal("SpecDeclareWrite failed")
	}
	m.Load(8)
	if !writer.aborted() {
		t.Error("plain load did not abort speculative writer (TSX snoop model)")
	}
}

func TestPlainLoadSnoopDisabled(t *testing.T) {
	cfg := DefaultConfig(64)
	cfg.NonTxLoadAbortsWriters = false
	m := New(cfg)
	writer := &fakeTxn{}
	if !m.SpecDeclareWrite(8, writer) {
		t.Fatal("SpecDeclareWrite failed")
	}
	m.Load(8)
	if writer.aborted() {
		t.Error("plain load aborted writer despite NonTxLoadAbortsWriters=false")
	}
}

func TestSpecWriteConflictRequesterWins(t *testing.T) {
	m := newMem(t, 64)
	first, second := &fakeTxn{}, &fakeTxn{}
	if _, ok := m.SpecLoad(8, first, true); !ok {
		t.Fatal("SpecLoad failed")
	}
	if !m.SpecDeclareWrite(8, second) {
		t.Fatal("requester-wins write should succeed")
	}
	if !first.aborted() {
		t.Error("requester-wins: established reader not aborted by new writer")
	}
	if second.aborted() {
		t.Error("requester-wins: requester was aborted")
	}
}

func TestSpecWriteConflictCommitterWins(t *testing.T) {
	cfg := DefaultConfig(64)
	cfg.Policy = CommitterWins
	m := New(cfg)
	first, second := &fakeTxn{}, &fakeTxn{}
	if _, ok := m.SpecLoad(8, first, true); !ok {
		t.Fatal("SpecLoad failed")
	}
	if m.SpecDeclareWrite(8, second) {
		t.Fatal("committer-wins write into monitored line should fail")
	}
	if first.aborted() {
		t.Error("committer-wins: established reader was aborted")
	}
	if !second.aborted() {
		t.Error("committer-wins: requester not aborted")
	}
}

func TestSpecReadOfSpeculativeWriterAborts(t *testing.T) {
	m := newMem(t, 64)
	writer, reader := &fakeTxn{}, &fakeTxn{}
	if !m.SpecDeclareWrite(8, writer) {
		t.Fatal("SpecDeclareWrite failed")
	}
	if _, ok := m.SpecLoad(8, reader, true); !ok {
		t.Fatal("requester-wins read should proceed")
	}
	if !writer.aborted() {
		t.Error("speculative read did not abort conflicting speculative writer")
	}
}

func TestReaderUpgradeToWriterNoSelfConflict(t *testing.T) {
	m := newMem(t, 64)
	txn := &fakeTxn{}
	if _, ok := m.SpecLoad(8, txn, true); !ok {
		t.Fatal("SpecLoad failed")
	}
	if !m.SpecDeclareWrite(8, txn) {
		t.Fatal("upgrade to writer failed")
	}
	if txn.aborted() {
		t.Error("transaction aborted by its own read→write upgrade")
	}
	if n := m.MonitorCount(8); n != 1 {
		t.Errorf("monitor entries after upgrade = %d, want 1 (in-place upgrade)", n)
	}
}

func TestCommitPublishesAtomically(t *testing.T) {
	m := newMem(t, 256)
	w := &fakeTxn{}
	// Two addresses on distinct lines.
	a, b := Addr(8), Addr(64)
	if !m.SpecDeclareWrite(a, w) || !m.SpecDeclareWrite(b, w) {
		t.Fatal("SpecDeclareWrite failed")
	}
	fp := SortFootprint([]uint64{m.LineOf(a), m.LineOf(b)})
	ok := m.CommitTxn(w, fp, []WriteEntry{{a, 1}, {b, 2}})
	if !ok {
		t.Fatal("CommitTxn failed for running transaction")
	}
	if m.Load(a) != 1 || m.Load(b) != 2 {
		t.Errorf("post-commit values = %d,%d, want 1,2", m.Load(a), m.Load(b))
	}
	if w.state.Load() != 2 {
		t.Error("writer not committed")
	}
	if n := m.MonitorCount(a); n != 0 {
		t.Errorf("monitors remain on line after commit: %d", n)
	}
}

// TestCommitSweepAbortsLateReaders exercises the commit-time monitor sweep in
// isolation: a reader registered on a written line when the commit publishes
// must be aborted, because it may have observed pre-commit values. (Under the
// eager requester-wins policy this situation only arises through races, so the
// test drives CommitTxn directly rather than through SpecDeclareWrite.)
func TestCommitSweepAbortsLateReaders(t *testing.T) {
	m := newMem(t, 256)
	reader := &fakeTxn{}
	a := Addr(8)
	if _, ok := m.SpecLoad(a, reader, true); !ok {
		t.Fatal("SpecLoad failed")
	}
	w := &fakeTxn{}
	if !m.CommitTxn(w, []uint64{m.LineOf(a)}, []WriteEntry{{a, 7}}) {
		t.Fatal("CommitTxn failed")
	}
	if !reader.aborted() {
		t.Error("reader registered on a committed write line was not aborted")
	}
	if m.Load(a) != 7 {
		t.Errorf("post-commit value = %d, want 7", m.Load(a))
	}
}

func TestCommitAfterAbortFails(t *testing.T) {
	m := newMem(t, 64)
	w := &fakeTxn{}
	if !m.SpecDeclareWrite(8, w) {
		t.Fatal("SpecDeclareWrite failed")
	}
	w.TryAbort(AbortExplicit)
	fp := []uint64{m.LineOf(8)}
	if m.CommitTxn(w, fp, []WriteEntry{{8, 99}}) {
		t.Fatal("CommitTxn succeeded for aborted transaction")
	}
	if m.Load(8) != 0 {
		t.Error("aborted transaction's write reached memory")
	}
}

func TestSpecLoadAfterAbortFails(t *testing.T) {
	m := newMem(t, 64)
	txn := &fakeTxn{}
	txn.TryAbort(AbortExplicit)
	if _, ok := m.SpecLoad(8, txn, true); ok {
		t.Fatal("SpecLoad succeeded for aborted transaction")
	}
	if m.SpecDeclareWrite(8, txn) {
		t.Fatal("SpecDeclareWrite succeeded for aborted transaction")
	}
}

func TestUnregisterRemovesEntries(t *testing.T) {
	m := newMem(t, 64)
	txn := &fakeTxn{}
	if _, ok := m.SpecLoad(8, txn, true); !ok {
		t.Fatal("SpecLoad failed")
	}
	txn.TryAbort(AbortExplicit)
	m.Unregister(txn, []uint64{m.LineOf(8)})
	if n := m.MonitorCount(8); n != 0 {
		t.Errorf("monitors after Unregister = %d, want 0", n)
	}
}

func TestSortFootprint(t *testing.T) {
	got := SortFootprint([]uint64{5, 1, 5, 3, 1})
	want := []uint64{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("SortFootprint = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortFootprint = %v, want %v", got, want)
		}
	}
	if out := SortFootprint(nil); len(out) != 0 {
		t.Errorf("SortFootprint(nil) = %v, want empty", out)
	}
}

func TestRegionAllocationDisjointAndAligned(t *testing.T) {
	m := newMem(t, 1024)
	r1 := m.MustAllocRegion(10)
	r2 := m.MustAllocRegion(20)
	if r1.Base%Addr(m.cfg.WordsPerLine) != 0 || r2.Base%Addr(m.cfg.WordsPerLine) != 0 {
		t.Error("regions not line-aligned")
	}
	if r1.Base+Addr(r1.Size) > r2.Base {
		t.Error("regions overlap")
	}
	if r1.Contains(0) {
		t.Error("region contains the null address")
	}
}

func TestRegionExhaustion(t *testing.T) {
	m := newMem(t, 64)
	if _, err := m.AllocRegion(1 << 20); err == nil {
		t.Fatal("AllocRegion of oversized region succeeded")
	}
	if _, err := m.AllocRegion(0); err == nil {
		t.Fatal("AllocRegion(0) succeeded")
	}
}

func TestRegionAddrBoundsPanics(t *testing.T) {
	m := newMem(t, 128)
	r := m.MustAllocRegion(4)
	defer func() {
		if recover() == nil {
			t.Error("Region.Addr out of range did not panic")
		}
	}()
	r.Addr(4)
}

func TestHeapAllocFreeReuse(t *testing.T) {
	m := newMem(t, 4096)
	h, err := NewHeap(m, 1024)
	if err != nil {
		t.Fatal(err)
	}
	a := h.MustAlloc(16)
	m.Store(a, 7)
	h.Free(a, 16)
	b := h.MustAlloc(16)
	if a != b {
		t.Errorf("free list not reused: got %d, want %d", b, a)
	}
	if m.Load(b) != 0 {
		t.Error("recycled block not zeroed")
	}
	if h.AllocatedWords() != 16 {
		t.Errorf("AllocatedWords = %d, want 16", h.AllocatedWords())
	}
}

func TestHeapExhaustion(t *testing.T) {
	m := newMem(t, 256)
	h, err := NewHeap(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(64); err == nil {
		t.Fatal("oversized Alloc succeeded")
	}
	if _, err := h.Alloc(-1); err == nil {
		t.Fatal("negative Alloc succeeded")
	}
}

func TestHeapLineAlignmentForLargeBlocks(t *testing.T) {
	m := newMem(t, 4096)
	h, err := NewHeap(m, 2048)
	if err != nil {
		t.Fatal(err)
	}
	h.MustAlloc(3) // misalign the bump pointer
	big := h.MustAlloc(16)
	if uint64(big)%uint64(m.cfg.WordsPerLine) != 0 {
		t.Errorf("block of %d words allocated at %d, not line-aligned", 16, big)
	}
}

func TestAbortReasonStringAndPersistence(t *testing.T) {
	cases := map[AbortReason]string{
		AbortNone:          "none",
		AbortConflict:      "conflict",
		AbortNonTxConflict: "nontx-conflict",
		AbortCapacity:      "capacity",
		AbortExplicit:      "explicit",
		AbortUnsupported:   "unsupported",
		AbortInjected:      "injected",
		AbortReason(99):    "reason(99)",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", uint32(r), r.String(), want)
		}
	}
	if !AbortCapacity.Persistent() || !AbortUnsupported.Persistent() {
		t.Error("capacity/unsupported must be persistent")
	}
	if AbortConflict.Persistent() || AbortInjected.Persistent() {
		t.Error("conflict/injected must be transient")
	}
}

// TestConcurrentPlainOpsRace hammers plain operations from many goroutines to
// give the race detector a target and to verify FetchAdd atomicity.
func TestConcurrentPlainOpsRace(t *testing.T) {
	m := newMem(t, 64)
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.FetchAdd(8, 1)
				m.Load(8)
			}
		}()
	}
	wg.Wait()
	if got := m.Load(8); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
}

// TestConcurrentCommitDisjointLines verifies that commits over disjoint
// footprints proceed in parallel without interference: each transaction's
// write lands and each commits.
func TestConcurrentCommitDisjointLines(t *testing.T) {
	m := newMem(t, 1<<12)
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := Addr(8 * (w + 1))
			txn := &fakeTxn{}
			if !m.SpecDeclareWrite(a, txn) {
				errs <- "declare failed"
				return
			}
			if !m.CommitTxn(txn, []uint64{m.LineOf(a)}, []WriteEntry{{a, uint64(w + 1)}}) {
				errs <- "commit failed"
				return
			}
			if m.Load(a) != uint64(w+1) {
				errs <- "value lost"
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestCommitAtomicityUnderContention is the core opacity property: concurrent
// speculative readers of a two-word write set must never observe one new and
// one old value and still be allowed to commit.
func TestCommitAtomicityUnderContention(t *testing.T) {
	m := newMem(t, 1024)
	a, b := Addr(8), Addr(512) // distinct lines
	stop := make(chan struct{})
	var inconsistent atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				txn := &fakeTxn{}
				va, ok := m.SpecLoad(a, txn, true)
				if !ok {
					continue
				}
				vb, ok := m.SpecLoad(b, txn, true)
				if !ok {
					m.Unregister(txn, []uint64{m.LineOf(a)})
					continue
				}
				fp := SortFootprint([]uint64{m.LineOf(a), m.LineOf(b)})
				if m.CommitTxn(txn, fp, nil) {
					if va != vb {
						inconsistent.Add(1)
					}
				} else {
					m.Unregister(txn, fp)
				}
			}
		}()
	}
	for i := uint64(1); i <= 300; i++ {
		w := &fakeTxn{}
		if !m.SpecDeclareWrite(a, w) || !m.SpecDeclareWrite(b, w) {
			continue
		}
		fp := SortFootprint([]uint64{m.LineOf(a), m.LineOf(b)})
		if !m.CommitTxn(w, fp, []WriteEntry{{a, i}, {b, i}}) {
			m.Unregister(w, fp)
		}
	}
	close(stop)
	wg.Wait()
	if n := inconsistent.Load(); n != 0 {
		t.Fatalf("%d committed readers observed a torn write set", n)
	}
}

// Property: Load after Store returns the stored value for arbitrary
// address/value pairs within bounds.
func TestQuickStoreLoad(t *testing.T) {
	m := newMem(t, 1<<12)
	f := func(rawAddr uint16, val uint64) bool {
		a := Addr(uint64(rawAddr) % uint64(m.Words()))
		m.Store(a, val)
		return m.Load(a) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SortFootprint output is sorted, deduplicated, and a subset of the
// input multiset.
func TestQuickSortFootprint(t *testing.T) {
	f := func(in []uint64) bool {
		seen := make(map[uint64]bool, len(in))
		for _, v := range in {
			seen[v] = true
		}
		cp := append([]uint64(nil), in...)
		out := SortFootprint(cp)
		if len(out) != len(seen) {
			return false
		}
		for i, v := range out {
			if !seen[v] {
				return false
			}
			if i > 0 && out[i-1] >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
