package memsim

import "sort"

// CommitterHandle extends Handle with the commit transition. CommitTxn
// requires it so that the switch to "committed" happens at the linearization
// point, while the transaction's whole footprint is locked.
type CommitterHandle interface {
	Handle
	// TryCommit moves the transaction from running to committed, returning
	// true if this call performed the transition (false if it lost a race
	// with an abort).
	TryCommit() bool
}

// SpecLoad performs a speculative load of a on behalf of transaction h.
//
// If register is true, h is added to the line's monitor set as a reader (the
// caller, htm.Txn, tracks which lines it already monitors and passes false on
// repeat accesses to keep the set duplicate-free).
//
// Conflicting speculative writers of the line are resolved per the configured
// policy: under RequesterWins they are aborted; under CommitterWins h aborts
// itself instead. The returned ok is false if h is no longer running on
// entry or aborted itself during the access; the value is then meaningless.
func (m *Memory) SpecLoad(a Addr, h Handle, register bool) (v uint64, ok bool) {
	ln := m.lineFor(a)
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if !h.Running() {
		return 0, false
	}
	for i := range ln.mons {
		e := &ln.mons[i]
		if e.h == h || !e.writer || !e.h.Running() {
			continue
		}
		if m.cfg.Policy == RequesterWins {
			e.h.TryAbort(AbortConflict)
		} else {
			h.TryAbort(AbortConflict)
			return 0, false
		}
	}
	if register {
		ln.mons = append(ln.mons, monEntry{h: h, writer: false})
	}
	return m.words[a], true
}

// SpecDeclareWrite records h as a speculative writer of a's line. The value
// itself is buffered by the transaction and only reaches memory at CommitTxn.
//
// Any other active monitor of the line (reader or writer) conflicts: a
// speculative write needs the line exclusively. Resolution follows the
// configured policy. If h already monitors the line as a reader, its entry is
// upgraded in place rather than duplicated. Returns false if h is no longer
// running or aborted itself.
func (m *Memory) SpecDeclareWrite(a Addr, h Handle) bool {
	ln := m.lineFor(a)
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if !h.Running() {
		return false
	}
	if m.cfg.Policy == CommitterWins && hasOtherActiveMonitor(ln, h) {
		h.TryAbort(AbortConflict)
		return false
	}
	abortMonitors(ln, h, AbortConflict)
	for i := range ln.mons {
		if ln.mons[i].h == h {
			ln.mons[i].writer = true
			return true
		}
	}
	ln.mons = append(ln.mons, monEntry{h: h, writer: true})
	return true
}

// WriteEntry is one buffered speculative write, applied at CommitTxn.
type WriteEntry struct {
	Addr Addr
	Val  uint64
}

// CommitTxn atomically publishes the transaction's buffered writes and marks
// it committed.
//
// footprint must contain every line h is registered on — reads and writes —
// sorted ascending and deduplicated; writes may be in any order. The method:
//
//  1. locks every line of the footprint in order (total order ⇒ no deadlock
//     against other commits, and single-line operations cannot interleave),
//  2. re-checks that h is still running (an abort that raced in loses here),
//  3. aborts every other monitor of each written line — a reader that saw
//     pre-commit values of this write set is necessarily still registered and
//     dies here, which is what makes the publication all-or-nothing,
//  4. applies the writes,
//  5. transitions h to committed and unregisters it from all lines.
//
// It returns true if the commit happened, false if h had been aborted.
func (m *Memory) CommitTxn(h CommitterHandle, footprint []uint64, writes []WriteEntry) bool {
	for _, id := range footprint {
		m.lineByID(id).mu.Lock()
	}
	committed := false
	if h.Running() {
		for _, w := range writes {
			abortMonitors(m.lineFor(w.Addr), h, AbortConflict)
		}
		for _, w := range writes {
			m.words[w.Addr] = w.Val
		}
		committed = h.TryCommit()
	}
	if committed {
		for _, id := range footprint {
			removeMonitor(m.lineByID(id), h)
		}
	}
	// Unlock in reverse order (not required for correctness, but keeps the
	// critical sections properly nested for lock-order tooling).
	for i := len(footprint) - 1; i >= 0; i-- {
		m.lineByID(footprint[i]).mu.Unlock()
	}
	return committed
}

// Unregister removes h from the monitor sets of the given lines. Aborted
// transactions call it during cleanup; it is idempotent.
func (m *Memory) Unregister(h Handle, lineIDs []uint64) {
	for _, id := range lineIDs {
		ln := m.lineByID(id)
		ln.mu.Lock()
		removeMonitor(ln, h)
		ln.mu.Unlock()
	}
}

// removeMonitor drops every entry of h from ln. Callers must hold ln.mu.
func removeMonitor(ln *line, h Handle) {
	kept := ln.mons[:0]
	for _, e := range ln.mons {
		if e.h != h {
			kept = append(kept, e)
		}
	}
	clearTail(ln, len(kept))
}

// SortFootprint sorts and deduplicates a slice of line IDs in place,
// returning the shortened slice. CommitTxn requires this canonical form.
func SortFootprint(ids []uint64) []uint64 {
	if len(ids) < 2 {
		return ids
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// MonitorCount returns the number of registered monitor entries on the line
// containing a. It exists for tests and diagnostics.
func (m *Memory) MonitorCount(a Addr) int {
	ln := m.lineFor(a)
	ln.mu.Lock()
	n := len(ln.mons)
	ln.mu.Unlock()
	return n
}
