package memsim

import (
	"fmt"
	"sync"
)

// Addr is the index of a 64-bit word in a Memory. Address 0 is reserved as
// the null address: regions are allocated starting at word 1 so that
// containers can use 0 as a nil pointer.
type Addr uint64

// NilAddr is the reserved null word address.
const NilAddr Addr = 0

// AbortReason classifies why a speculative transaction was aborted. The
// values mirror the abort status codes reported by best-effort HTM
// implementations (Intel TSX EAX codes, POWER TEXASR), reduced to the
// categories the hybrid-TM protocols dispatch on.
type AbortReason uint32

const (
	// AbortNone means the transaction has not been aborted.
	AbortNone AbortReason = iota
	// AbortConflict: another speculative transaction touched a line in this
	// transaction's footprint (transactional conflict).
	AbortConflict
	// AbortNonTxConflict: a plain, non-transactional access touched a line in
	// this transaction's footprint (coherence snoop from regular code).
	AbortNonTxConflict
	// AbortCapacity: the transaction exceeded the simulated L1 read or write
	// capacity. This is the persistent failure mode the paper's fallback
	// logic keys on.
	AbortCapacity
	// AbortExplicit: the transaction executed an explicit abort instruction
	// (protocol-level validation failure, e.g. the RH1 fallback-counter check).
	AbortExplicit
	// AbortUnsupported: the transaction attempted an operation that hardware
	// transactions cannot execute (system call, protected instruction). Like
	// AbortCapacity this is persistent: retrying in hardware cannot succeed.
	AbortUnsupported
	// AbortInjected: the harness injected an abort to force a target abort
	// ratio, reproducing the emulation methodology of the paper's §3.1.
	AbortInjected
)

// String returns a short human-readable name for the reason.
func (r AbortReason) String() string {
	switch r {
	case AbortNone:
		return "none"
	case AbortConflict:
		return "conflict"
	case AbortNonTxConflict:
		return "nontx-conflict"
	case AbortCapacity:
		return "capacity"
	case AbortExplicit:
		return "explicit"
	case AbortUnsupported:
		return "unsupported"
	case AbortInjected:
		return "injected"
	default:
		return fmt.Sprintf("reason(%d)", uint32(r))
	}
}

// Persistent reports whether retrying in hardware is pointless: the abort is
// structural (capacity overflow or an unsupported instruction) rather than a
// result of concurrency. The hybrid protocols use this to decide between
// "retry the hardware path" and "take the next fallback level".
func (r AbortReason) Persistent() bool {
	return r == AbortCapacity || r == AbortUnsupported
}

// Handle is the view the memory has of an in-flight speculative transaction.
// It is implemented by htm.Txn. All methods must be safe for concurrent use.
type Handle interface {
	// TryAbort moves the transaction from running to aborted with the given
	// reason. It returns true if this call performed the transition, false if
	// the transaction had already committed or aborted.
	TryAbort(reason AbortReason) bool
	// Running reports whether the transaction is still speculating (neither
	// committed nor aborted).
	Running() bool
}

// ConflictPolicy selects which transaction dies when two speculative
// transactions collide on a line.
type ConflictPolicy int

const (
	// RequesterWins: the transaction issuing the new access aborts the
	// transactions already monitoring the line. This mirrors the coherence
	// behaviour of eager HTM designs: the incoming request invalidates or
	// downgrades the line, killing the speculation that held it.
	RequesterWins ConflictPolicy = iota
	// CommitterWins: the transaction issuing the new access aborts itself,
	// leaving established monitors untouched. Available as an ablation knob.
	CommitterWins
)

// Config parameterizes a Memory.
type Config struct {
	// Words is the total number of 64-bit words.
	Words int
	// WordsPerLine is the conflict-detection granularity in words. Must be a
	// power of two. The default (8 words = 64 bytes) matches common cache
	// lines; 1 disables false sharing.
	WordsPerLine int
	// Policy selects the conflict-resolution policy between speculative
	// transactions.
	Policy ConflictPolicy
	// NonTxLoadAbortsWriters controls whether a plain load aborts speculative
	// writers of the line. True mirrors Intel TSX, where any snoop of a line
	// in the write set aborts the transaction.
	NonTxLoadAbortsWriters bool
}

// DefaultConfig returns the configuration used throughout the benchmarks: a
// memory of the given size with 64-byte lines, requester-wins conflicts, and
// TSX-like snoop behaviour.
func DefaultConfig(words int) Config {
	return Config{
		Words:                  words,
		WordsPerLine:           8,
		Policy:                 RequesterWins,
		NonTxLoadAbortsWriters: true,
	}
}

// monEntry records one transaction monitoring a line. writer is true if the
// transaction declared a speculative write to the line (the line is in its
// write set); a reader that later writes has its entry upgraded in place.
type monEntry struct {
	h      Handle
	writer bool
}

// line is the per-line coherence state: a mutex serializing every access to
// the line's words, and the monitor set of speculative transactions.
type line struct {
	mu   sync.Mutex
	mons []monEntry
}

// Memory is a flat simulated word memory with line-granularity conflict
// detection. See the package documentation for the model.
type Memory struct {
	cfg       Config
	lineShift uint
	words     []uint64
	lines     []line

	regionMu sync.Mutex
	nextFree Addr
}

// New creates a Memory from cfg. It panics if the configuration is invalid;
// a malformed memory is a programming error, not a runtime condition.
func New(cfg Config) *Memory {
	if cfg.Words <= 0 {
		panic("memsim: Config.Words must be positive")
	}
	if cfg.WordsPerLine <= 0 || cfg.WordsPerLine&(cfg.WordsPerLine-1) != 0 {
		panic("memsim: Config.WordsPerLine must be a positive power of two")
	}
	shift := uint(0)
	for 1<<shift != cfg.WordsPerLine {
		shift++
	}
	nLines := (cfg.Words + cfg.WordsPerLine - 1) / cfg.WordsPerLine
	return &Memory{
		cfg:       cfg,
		lineShift: shift,
		words:     make([]uint64, cfg.Words),
		lines:     make([]line, nLines),
		nextFree:  1, // word 0 is the reserved null address
	}
}

// Config returns the memory's configuration.
func (m *Memory) Config() Config { return m.cfg }

// Words returns the total number of words in the memory.
func (m *Memory) Words() int { return m.cfg.Words }

// LineOf returns the line index containing address a.
func (m *Memory) LineOf(a Addr) uint64 { return uint64(a) >> m.lineShift }

// lineFor returns the line state for address a, bounds-checking a.
func (m *Memory) lineFor(a Addr) *line {
	return &m.lines[uint64(a)>>m.lineShift]
}

// lineByID returns the line state for a line index.
func (m *Memory) lineByID(id uint64) *line { return &m.lines[id] }

// abortMonitors aborts every active monitor of ln except self, with the given
// reason, and prunes entries that are no longer running. Callers must hold
// ln.mu.
func abortMonitors(ln *line, self Handle, reason AbortReason) {
	kept := ln.mons[:0]
	for _, e := range ln.mons {
		if e.h == self {
			kept = append(kept, e)
			continue
		}
		if e.h.TryAbort(reason) || !e.h.Running() {
			// Aborted now, or already finished: drop the entry.
			continue
		}
		kept = append(kept, e)
	}
	clearTail(ln, len(kept))
}

// abortWriters aborts active writers of ln except self and prunes dead
// entries. Callers must hold ln.mu.
func abortWriters(ln *line, self Handle, reason AbortReason) {
	kept := ln.mons[:0]
	for _, e := range ln.mons {
		if e.h != self && e.writer {
			if e.h.TryAbort(reason) || !e.h.Running() {
				continue
			}
		} else if !e.h.Running() {
			continue
		}
		kept = append(kept, e)
	}
	clearTail(ln, len(kept))
}

// clearTail zeroes the dropped suffix of the monitor slice so handles do not
// leak through the backing array, then truncates.
func clearTail(ln *line, n int) {
	for i := n; i < len(ln.mons); i++ {
		ln.mons[i] = monEntry{}
	}
	ln.mons = ln.mons[:n]
}

// hasOtherActiveMonitor reports whether any transaction other than self
// actively monitors ln. Callers must hold ln.mu.
func hasOtherActiveMonitor(ln *line, self Handle) bool {
	for _, e := range ln.mons {
		if e.h != self && e.h.Running() {
			return true
		}
	}
	return false
}

// Load performs a plain (non-transactional) load of a. Depending on the
// configuration it aborts speculative writers of the line, modelling the
// read snoop a regular load issues on real hardware.
func (m *Memory) Load(a Addr) uint64 {
	ln := m.lineFor(a)
	ln.mu.Lock()
	if m.cfg.NonTxLoadAbortsWriters {
		abortWriters(ln, nil, AbortNonTxConflict)
	}
	v := m.words[a]
	ln.mu.Unlock()
	return v
}

// Store performs a plain (non-transactional) store to a. It aborts every
// speculative transaction monitoring the line: a store issues an invalidating
// snoop, which kills both speculative readers and writers of the line. This
// property is load-bearing for the protocols — e.g. RH2's switch to the
// all-software write-back aborts hardware transactions precisely because they
// speculatively read the is_all_software counter word.
func (m *Memory) Store(a Addr, v uint64) {
	ln := m.lineFor(a)
	ln.mu.Lock()
	abortMonitors(ln, nil, AbortNonTxConflict)
	m.words[a] = v
	ln.mu.Unlock()
}

// CAS atomically compares-and-swaps the word at a. Like Store it aborts every
// monitor of the line regardless of outcome: even a failed CAS issued a
// request-for-ownership snoop.
func (m *Memory) CAS(a Addr, old, new uint64) bool {
	ln := m.lineFor(a)
	ln.mu.Lock()
	abortMonitors(ln, nil, AbortNonTxConflict)
	ok := m.words[a] == old
	if ok {
		m.words[a] = new
	}
	ln.mu.Unlock()
	return ok
}

// FetchAdd atomically adds delta to the word at a and returns the new value,
// aborting every monitor of the line. delta may be negative via two's
// complement (pass ^uint64(0) to subtract one, or use AddInt for clarity).
func (m *Memory) FetchAdd(a Addr, delta uint64) uint64 {
	ln := m.lineFor(a)
	ln.mu.Lock()
	abortMonitors(ln, nil, AbortNonTxConflict)
	m.words[a] += delta
	v := m.words[a]
	ln.mu.Unlock()
	return v
}

// AddInt is FetchAdd with a signed delta.
func (m *Memory) AddInt(a Addr, delta int64) uint64 {
	return m.FetchAdd(a, uint64(delta))
}

// Peek reads the word at a without taking the line lock or issuing a snoop.
// It is intended for single-threaded setup and for test assertions after all
// workers have stopped; using it concurrently with writers is a data race.
func (m *Memory) Peek(a Addr) uint64 { return m.words[a] }

// Poke writes the word at a without snooping, under the same single-threaded
// contract as Peek. Containers use it to populate structures before the
// concurrent phase starts.
func (m *Memory) Poke(a Addr, v uint64) { m.words[a] = v }
