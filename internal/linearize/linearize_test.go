package linearize

import "testing"

func mustCheck(t *testing.T, h []Op, initial uint64) bool {
	t.Helper()
	ok, err := CheckRegister(h, initial)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func TestEmptyHistory(t *testing.T) {
	if !mustCheck(t, nil, 0) {
		t.Fatal("empty history not linearizable")
	}
}

func TestSequentialReadsWrites(t *testing.T) {
	h := []Op{
		{Start: 0, End: 1, IsWrite: true, Val: 5},
		{Start: 2, End: 3, IsWrite: false, Val: 5},
		{Start: 4, End: 5, IsWrite: true, Val: 7},
		{Start: 6, End: 7, IsWrite: false, Val: 7},
	}
	if !mustCheck(t, h, 0) {
		t.Fatal("valid sequential history rejected")
	}
}

func TestStaleReadRejected(t *testing.T) {
	h := []Op{
		{Start: 0, End: 1, IsWrite: true, Val: 5},
		{Start: 2, End: 3, IsWrite: false, Val: 0}, // reads the initial value after the write completed
	}
	if mustCheck(t, h, 0) {
		t.Fatal("stale read accepted")
	}
}

func TestConcurrentWriteEitherOrder(t *testing.T) {
	// Two overlapping writes; a later read may see either.
	for _, readVal := range []uint64{1, 2} {
		h := []Op{
			{Start: 0, End: 10, IsWrite: true, Val: 1},
			{Start: 0, End: 10, IsWrite: true, Val: 2},
			{Start: 11, End: 12, IsWrite: false, Val: readVal},
		}
		if !mustCheck(t, h, 0) {
			t.Fatalf("read of %d after concurrent writes rejected", readVal)
		}
	}
	h := []Op{
		{Start: 0, End: 10, IsWrite: true, Val: 1},
		{Start: 0, End: 10, IsWrite: true, Val: 2},
		{Start: 11, End: 12, IsWrite: false, Val: 3},
	}
	if mustCheck(t, h, 0) {
		t.Fatal("read of never-written value accepted")
	}
}

func TestConcurrentReadDuringWrite(t *testing.T) {
	// A read overlapping a write may return old or new, but two
	// non-overlapping reads must not observe new-then-old.
	ok := mustCheck(t, []Op{
		{Start: 0, End: 10, IsWrite: true, Val: 9},
		{Start: 1, End: 2, IsWrite: false, Val: 0},
		{Start: 3, End: 4, IsWrite: false, Val: 9},
	}, 0)
	if !ok {
		t.Fatal("old-then-new reads during write rejected")
	}
	ok = mustCheck(t, []Op{
		{Start: 0, End: 10, IsWrite: true, Val: 9},
		{Start: 1, End: 2, IsWrite: false, Val: 9},
		{Start: 3, End: 4, IsWrite: false, Val: 0},
	}, 0)
	if ok {
		t.Fatal("new-then-old reads accepted (violates linearizability)")
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// Write 1 completes before write 2 starts; read after both must be 2.
	h := []Op{
		{Start: 0, End: 1, IsWrite: true, Val: 1},
		{Start: 2, End: 3, IsWrite: true, Val: 2},
		{Start: 4, End: 5, IsWrite: false, Val: 1},
	}
	if mustCheck(t, h, 0) {
		t.Fatal("read reordered a completed write")
	}
}

func TestMalformedOpRejected(t *testing.T) {
	if _, err := CheckRegister([]Op{{Start: 5, End: 1}}, 0); err == nil {
		t.Fatal("op with End < Start accepted")
	}
}

func TestTooLongHistoryRejected(t *testing.T) {
	h := make([]Op, 65)
	for i := range h {
		h[i] = Op{Start: int64(i), End: int64(i), IsWrite: true, Val: 1}
	}
	if _, err := CheckRegister(h, 0); err == nil {
		t.Fatal("65-op history accepted")
	}
}

func TestDeepConcurrentHistory(t *testing.T) {
	// All ops mutually concurrent: any permutation is allowed, so a read of
	// any written value (or the initial value) must pass.
	h := []Op{
		{Start: 0, End: 100, IsWrite: true, Val: 1},
		{Start: 0, End: 100, IsWrite: true, Val: 2},
		{Start: 0, End: 100, IsWrite: true, Val: 3},
		{Start: 0, End: 100, IsWrite: false, Val: 0},
		{Start: 0, End: 100, IsWrite: false, Val: 3},
	}
	if !mustCheck(t, h, 0) {
		t.Fatal("fully concurrent history rejected")
	}
}
