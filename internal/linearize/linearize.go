// Package linearize implements a Wing & Gong style linearizability checker
// for single-register histories, used by the engine test suites to verify
// that committed transactions appear to take effect atomically at some
// point between their invocation and their response.
//
// A history is a set of operations, each bracketed by logical invocation and
// response timestamps taken outside the transaction. The checker searches
// for a total order that (a) respects real-time precedence (an operation
// that responded before another was invoked must be ordered first) and
// (b) makes every read return the value of the latest preceding write.
// Search state is memoized on the (remaining-operations, register-value)
// pair, which keeps the worst case well-behaved for the history sizes the
// tests generate (≤ 64 operations).
package linearize

import "fmt"

// Op is one completed register operation.
type Op struct {
	// Start is the logical time just before the operation was invoked.
	Start int64
	// End is the logical time just after the operation responded.
	End int64
	// IsWrite distinguishes writes from reads.
	IsWrite bool
	// Val is the value written (writes) or returned (reads).
	Val uint64
}

// String renders the op for failure messages.
func (o Op) String() string {
	k := "R"
	if o.IsWrite {
		k = "W"
	}
	return fmt.Sprintf("%s(%d)@[%d,%d]", k, o.Val, o.Start, o.End)
}

// CheckRegister reports whether the history is linearizable for a register
// with the given initial value. Histories longer than 64 operations are
// rejected with an error (the memoization key is a 64-bit op set).
func CheckRegister(history []Op, initial uint64) (bool, error) {
	n := len(history)
	if n == 0 {
		return true, nil
	}
	if n > 64 {
		return false, fmt.Errorf("linearize: history of %d ops exceeds the 64-op limit", n)
	}
	for _, o := range history {
		if o.End < o.Start {
			return false, fmt.Errorf("linearize: op %v responds before invocation", o)
		}
	}
	full := uint64(1)<<uint(n) - 1
	if n == 64 {
		full = ^uint64(0)
	}
	c := &checker{ops: history, memo: make(map[memoKey]bool)}
	return c.search(full, initial), nil
}

type memoKey struct {
	remaining uint64
	state     uint64
}

type checker struct {
	ops  []Op
	memo map[memoKey]bool
}

// search tries to linearize the remaining set given the register state.
func (c *checker) search(remaining uint64, state uint64) bool {
	if remaining == 0 {
		return true
	}
	key := memoKey{remaining: remaining, state: state}
	if v, ok := c.memo[key]; ok {
		return v
	}
	// The next linearized operation must not be preceded (in real time) by
	// any other remaining operation: its Start must be ≤ the minimal End.
	minEnd := int64(1<<63 - 1)
	for i := 0; i < len(c.ops); i++ {
		if remaining&(1<<uint(i)) != 0 && c.ops[i].End < minEnd {
			minEnd = c.ops[i].End
		}
	}
	ok := false
	for i := 0; i < len(c.ops) && !ok; i++ {
		bit := uint64(1) << uint(i)
		if remaining&bit == 0 {
			continue
		}
		op := c.ops[i]
		if op.Start > minEnd {
			continue // some remaining op finished before this one began
		}
		if op.IsWrite {
			ok = c.search(remaining&^bit, op.Val)
		} else if op.Val == state {
			ok = c.search(remaining&^bit, state)
		}
	}
	c.memo[key] = ok
	return ok
}
