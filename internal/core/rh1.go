package core

import (
	"rhtm/internal/clock"
	"rhtm/internal/engine"
	"rhtm/internal/memsim"
	"rhtm/internal/sys"
)

// tryHardware runs one hardware attempt, selecting the mode the current
// global state demands (Alg. 3 lines 2-5, Alg. 4 lines 2-5):
//
//	is_RH2_fallback == 0                          → RH1 fast path
//	is_RH2_fallback  > 0, is_all_software == 0    → RH2 fast path
//	is_all_software  > 0                          → RH2 fast-path-slow-read
//
// For ProtocolRH2 the RH1 level does not exist and the choice is between the
// last two. done is true when the transaction committed or the body returned
// an error; otherwise reason explains the hardware abort.
func (t *Thread) tryHardware(fn func(tx engine.Tx) error) (done bool, err error, reason memsim.AbortReason) {
	mem := t.sys.Mem
	if mem.Load(t.sys.AllSoftwareAddr) > 0 {
		return t.trySR(fn)
	}
	if t.eng.opts.Protocol == ProtocolRH2 || mem.Load(t.sys.RH2FallbackAddr) > 0 {
		return t.tryRH2Fast(fn)
	}
	return t.tryRH1Fast(fn)
}

// tryRH1Fast is one attempt of the RH1 fast path (Alg. 1 with the Alg. 3
// switching prologue).
func (t *Thread) tryRH1Fast(fn func(tx engine.Tx) error) (done bool, err error, reason memsim.AbortReason) {
	htx := t.htx
	htx.Begin()

	// Monitor is_RH2_fallback for the duration of the transaction by
	// loading it speculatively: any RH2 fallback activation (a plain
	// fetch-and-add on the counter word) aborts us through coherence
	// (Alg. 3 lines 6-9).
	fb, ok := htx.Read(t.sys.RH2FallbackAddr)
	if !ok {
		return t.fastAbort()
	}
	if fb > 0 {
		htx.Abort(memsim.AbortExplicit)
		return false, nil, memsim.AbortExplicit
	}

	// ctx.next_ver ← GVNext(): a speculative read of the clock word plus
	// one — no store, per the GV6 discipline (Alg. 1 line 3). The clock
	// line joins the footprint, so a (rare) clock advance aborts us.
	next, ok := t.speculativeGVNext()
	if !ok {
		return t.fastAbort()
	}
	t.nextVer = next

	t.path = pathRH1Fast
	err, aborted, reason := engine.RunBody(fn, (*coreTx)(t))
	if aborted {
		htx.Fini()
		return false, nil, reason
	}
	if err != nil {
		htx.Abort(memsim.AbortExplicit)
		htx.Fini()
		t.stats.UserErrors++
		return true, err, memsim.AbortNone
	}
	if t.injectAbort() {
		htx.Abort(memsim.AbortInjected)
		return t.fastAbort()
	}
	if !htx.Commit() {
		return false, nil, htx.AbortReason()
	}
	t.stats.FastCommits++
	return true, nil, memsim.AbortNone
}

// rh1FastWrite is the RH1 fast path's minimally instrumented store: update
// the stripe version to next_ver, then write the value (Alg. 1 lines 6-9).
// Both stores are speculative and publish atomically at commit.
func (t *Thread) rh1FastWrite(a memsim.Addr, v uint64) {
	htx := t.htx
	if !htx.Write(t.sys.VersionAddr(a), sys.PackVersion(t.nextVer)) {
		engine.Retry(htx.AbortReason())
	}
	t.stats.MetadataWrites++
	if !htx.Write(a, v) {
		engine.Retry(htx.AbortReason())
	}
}

// speculativeGVNext performs GVNext inside the current hardware transaction
// and returns the version to install. Under GV6 (the paper's choice) it is a
// speculative *read* of the clock plus one — no store, so concurrent
// hardware transactions sharing the clock line do not conflict. Under GV5
// (ablation) GVNext must actually increment the clock, which puts the clock
// line in every writer's speculative write set and serializes them — the
// cost the paper's GV6 choice avoids (§2.2).
func (t *Thread) speculativeGVNext() (next uint64, ok bool) {
	htx := t.htx
	clk := t.sys.Clock
	sample, ok := htx.Read(clk.Addr())
	if !ok {
		return 0, false
	}
	t.stats.MetadataReads++
	next = clk.NextFromSample(sample)
	if clk.Mode() == clock.GV5 {
		if !htx.Write(clk.Addr(), next) {
			return 0, false
		}
		t.stats.MetadataWrites++
	}
	return next, true
}

// fastAbort finalizes an aborted hardware attempt and reports its reason.
func (t *Thread) fastAbort() (bool, error, memsim.AbortReason) {
	t.htx.Fini()
	return false, nil, t.htx.AbortReason()
}

// injectAbort applies the configured forced-abort ratio (§3.1 emulation).
func (t *Thread) injectAbort() bool {
	p := t.eng.opts.InjectAbortPercent
	return p > 0 && t.rng.Intn(100) < p
}

// --- the mixed (mostly software) slow path ---

// trySlow runs one complete slow-path attempt: software body, then the
// protocol-appropriate commit. done is true on commit or user error; false
// means the attempt aborted and the caller should retry.
func (t *Thread) trySlow(fn func(tx engine.Tx) error) (done bool, err error) {
	t.beginSlow()
	err, aborted, _ := engine.RunBody(fn, (*coreTx)(t))
	if aborted {
		return false, nil
	}
	if err != nil {
		t.stats.UserErrors++
		return true, err
	}
	if len(t.writeSet) == 0 {
		// Read-only transactions commit immediately (Alg. 2 lines 26-28):
		// every read was validated against tx_version when performed.
		t.stats.ReadOnlyCommits++
		return true, nil
	}
	if t.eng.opts.Protocol == ProtocolRH2 {
		if !t.rh2SlowCommit() {
			return false, nil
		}
		t.stats.SlowCommits++
		return true, nil
	}
	if !t.rh1SlowCommit() {
		return false, nil
	}
	t.stats.SlowCommits++
	return true, nil
}

// beginSlow resets the software transaction state (Alg. 2 lines 1-3).
func (t *Thread) beginSlow() {
	t.path = pathSlow
	t.txVersion = t.sys.Clock.Read()
	t.readSet = t.readSet[:0]
	t.writeSet = t.writeSet[:0]
	clear(t.writeIdx)
}

// slowRead implements the software read with write-set lookup and the
// version-sandwich consistency check (Alg. 2 lines 9-23). The lock check
// comes from RH2's variant (Alg. 5 line 18); it is vacuous while no RH2
// committer is active and necessary while one is.
func (t *Thread) slowRead(a memsim.Addr) uint64 {
	if i, hit := t.writeIdx[a]; hit {
		return t.writeSet[i].val
	}
	mem := t.sys.Mem
	va := t.sys.VersionAddr(a)
	before := mem.Load(va)
	v := mem.Load(a)
	after := mem.Load(va)
	t.stats.MetadataReads += 2
	if sys.IsLocked(before) || before != after || sys.UnpackVersion(before) > t.txVersion {
		engine.Retry(memsim.AbortConflict)
	}
	t.readSet = append(t.readSet, a)
	return v
}

// slowWrite buffers the store in the write set (Alg. 2 lines 5-7).
func (t *Thread) slowWrite(a memsim.Addr, v uint64) {
	if i, hit := t.writeIdx[a]; hit {
		t.writeSet[i].val = v
		return
	}
	t.writeSet = append(t.writeSet, writeEntry{addr: a, val: v})
	t.writeIdx[a] = len(t.writeSet) - 1
}

// rh1SlowCommit is the heart of RH1 (Alg. 2 lines 25-50): a single hardware
// transaction that revalidates the read set and performs the write-back.
// There are no locks; obstruction freedom follows. Returns false if the
// transaction must be retried from scratch.
func (t *Thread) rh1SlowCommit() bool {
	htx := t.htx
	for {
		htx.Begin()
		committed, validationFailed := t.rh1CommitAttempt()
		if committed {
			return true
		}
		if validationFailed {
			// The snapshot is stale; the whole transaction restarts.
			return false
		}
		htx.Fini() // park the aborted hardware transaction
		reason := htx.AbortReason()
		if reason.Persistent() {
			// The commit transaction's footprint (read-set metadata +
			// write-back) exceeds hardware capacity: fall back to RH2 for
			// this commit (Alg. 3 lines 35-39).
			t.stats.RH2Fallbacks++
			mem := t.sys.Mem
			mem.FetchAdd(t.sys.RH2FallbackAddr, 1)
			ok := t.rh2SlowCommit()
			mem.AddInt(t.sys.RH2FallbackAddr, -1)
			return ok
		}
		// Contention: restart the commit hardware transaction. The
		// validation inside the new attempt re-checks everything.
		t.stats.CommitHTMRetries++
	}
}

// rh1CommitAttempt executes the body of the commit hardware transaction:
// read-set revalidation, then write-back with version install (Alg. 2
// lines 29-43). It reports (committed, validationFailed); when both are
// false the hardware transaction aborted for an environmental reason and
// htx.AbortReason explains it.
func (t *Thread) rh1CommitAttempt() (committed, validationFailed bool) {
	htx := t.htx
	// Read-set revalidation: every read stripe must still be unlocked and
	// no newer than tx_version.
	for _, a := range t.readSet {
		w, ok := htx.Read(t.sys.VersionAddr(a))
		if !ok {
			return false, false
		}
		t.stats.MetadataReads++
		if sys.IsLocked(w) || sys.UnpackVersion(w) > t.txVersion {
			htx.Abort(memsim.AbortExplicit)
			htx.Fini()
			return false, true
		}
	}
	// Write-set stripes must be unlocked (deviation documented in the
	// package comment: protects a concurrent RH2 committer's locks).
	for _, w := range t.writeSet {
		ver, ok := htx.Read(t.sys.VersionAddr(w.addr))
		if !ok {
			return false, false
		}
		t.stats.MetadataReads++
		if sys.IsLocked(ver) {
			htx.Abort(memsim.AbortExplicit)
			htx.Fini()
			return false, true
		}
	}
	// next_ver ← GVNext() inside the hardware transaction (Alg. 2 line 37).
	nextVer, ok := t.speculativeGVNext()
	if !ok {
		return false, false
	}
	next := sys.PackVersion(nextVer)
	// Write-back: install the new version and the value for every write.
	for _, w := range t.writeSet {
		if !htx.Write(t.sys.VersionAddr(w.addr), next) {
			return false, false
		}
		if !htx.Write(w.addr, w.val) {
			return false, false
		}
		t.stats.MetadataWrites++
	}
	if !htx.Commit() {
		return false, false
	}
	return true, false
}
