package core

import (
	"sync"
	"testing"

	"rhtm/internal/engine"
	"rhtm/internal/htm"
	"rhtm/internal/memsim"
	"rhtm/internal/sys"
)

// TestManyThreadsReadMasks exercises the paper's §4.1 extension: with more
// than 64 configured threads, each stripe carries multiple read-mask words
// and thread k uses bit k%64 of word k/64. 100 threads run RH2 slow-path
// commits (forced by a tiny HTM) concurrently with fast-path increments; the
// counter invariant and full mask reset prove the multi-word visibility
// protocol works.
func TestManyThreadsReadMasks(t *testing.T) {
	cfg := sys.DefaultConfig(1 << 12)
	cfg.MaxThreads = 128
	cfg.HTM = htm.Config{MaxFootprintLines: 6, MaxWriteLines: 4}
	s := sys.MustNew(cfg)
	if s.MaskWords != 2 {
		t.Fatalf("MaskWords = %d, want 2 for 128 threads", s.MaskWords)
	}
	e := New(s, DefaultOptions())
	ctr := s.Heap.MustAlloc(1)
	// Words spread across stripes so slow commits carry multi-stripe read
	// sets (and therefore multi-stripe visibility).
	words := make([]memsim.Addr, 6)
	for i := range words {
		words[i] = s.Heap.MustAlloc(1)
		s.Heap.MustAlloc(15)
	}

	const workers, iters = 100, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := e.NewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := th.Atomic(func(tx engine.Tx) error {
					// Read several stripes (a visible read set on the slow
					// path) and increment the counter.
					var sum uint64
					for _, a := range words {
						sum += tx.Load(a)
					}
					_ = sum
					tx.Store(ctr, tx.Load(ctr)+1)
					return nil
				})
				if err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Mem.Load(ctr); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	for i := 0; i < s.StripeCount()*s.MaskWords; i++ {
		if m := s.Mem.Load(s.Masks.Addr(i)); m != 0 {
			t.Fatalf("mask word %d = %d after quiescence, want 0", i, m)
		}
	}
}

// TestThreadLimitHonorsConfig verifies engines accept exactly MaxThreads
// workers.
func TestThreadLimitHonorsConfig(t *testing.T) {
	cfg := sys.DefaultConfig(256)
	cfg.MaxThreads = 70
	s := sys.MustNew(cfg)
	e := New(s, DefaultOptions())
	for i := 0; i < 70; i++ {
		e.NewThread()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("71st thread did not panic")
		}
	}()
	e.NewThread()
}
