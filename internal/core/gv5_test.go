package core

import (
	"testing"
	"time"

	"rhtm/internal/clock"
	"rhtm/internal/engine"
	"rhtm/internal/sys"
)

// TestGV5FastPathAdvancesClock pins the GV6-vs-GV5 ablation semantics: under
// GV5 every hardware write commit performs a real GVNext, publishing the
// incremented clock; under GV6 the clock word never moves while transactions
// succeed (the property that keeps hardware transactions off each other's
// toes, §2.2).
func TestGV5FastPathAdvancesClock(t *testing.T) {
	for _, mode := range []clock.Mode{clock.GV6, clock.GV5} {
		cfg := sys.DefaultConfig(1 << 10)
		cfg.ClockMode = mode
		s := sys.MustNew(cfg)
		e := New(s, DefaultOptions())
		a := s.Heap.MustAlloc(1)
		th := e.NewThread()
		const commits = 5
		for i := 0; i < commits; i++ {
			if err := th.Atomic(func(tx engine.Tx) error {
				tx.Store(a, uint64(i))
				return nil
			}); err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
		}
		got := s.Clock.Read()
		switch mode {
		case clock.GV6:
			if got != 0 {
				t.Fatalf("GV6: clock = %d after %d commits, want 0 (no stores)", got, commits)
			}
		case clock.GV5:
			if got != commits {
				t.Fatalf("GV5: clock = %d after %d commits, want %d", got, commits, commits)
			}
		}
		// Versions must stay consistent in both modes.
		if v := sys.UnpackVersion(s.Mem.Load(s.VersionAddr(a))); v == 0 {
			t.Fatalf("%v: stripe version not installed", mode)
		}
	}
}

// TestGV5SlowPathProgressAfterFastCommit is a regression test for a
// livelock: under GV5, AdvanceOnAbort is a no-op, so if fast-path commits
// installed version clock+1 *without publishing the increment*, a subsequent
// slow-path transaction would abort on every read (version > tx_version)
// with no way for the clock to catch up. The fix: under GV5 the fast path's
// GVNext performs a real speculative increment, published at commit.
func TestGV5SlowPathProgressAfterFastCommit(t *testing.T) {
	cfg := sys.DefaultConfig(1 << 10)
	cfg.ClockMode = clock.GV5
	s := sys.MustNew(cfg)
	e := New(s, DefaultOptions())
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	// Fast-path commit installs a new stripe version.
	if err := th.Atomic(func(tx engine.Tx) error {
		tx.Store(a, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Force the next transaction through the slow path; it must terminate.
	done := make(chan error, 1)
	go func() {
		done <- th.Atomic(func(tx engine.Tx) error {
			tx.Unsupported()
			tx.Store(a, tx.Load(a)+1)
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("GV5 slow path livelocked after a fast commit")
	}
	if got := s.Mem.Load(a); got != 2 {
		t.Fatalf("value = %d, want 2", got)
	}
}

// TestGV5SlowCommitAlsoIncrements covers the slow-path commit transaction's
// GVNext under GV5.
func TestGV5SlowCommitAlsoIncrements(t *testing.T) {
	cfg := sys.DefaultConfig(1 << 10)
	cfg.ClockMode = clock.GV5
	s := sys.MustNew(cfg)
	opts := DefaultOptions()
	opts.Mode = ModeSlowOnly
	e := New(s, opts)
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	before := s.Clock.Read()
	if err := th.Atomic(func(tx engine.Tx) error {
		tx.Store(a, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.Clock.Read(); got != before+1 {
		t.Fatalf("GV5 slow commit: clock %d -> %d, want +1", before, got)
	}
}
