package core

import (
	"rhtm/internal/engine"
	"rhtm/internal/memsim"
	"rhtm/internal/sys"
)

// tryRH2Fast is one attempt of the RH2 fast path (Alg. 4): reads are
// uninstrumented, writes are logged, and the commit speculatively checks the
// write set's read masks, acquires the write-set locks inside the hardware
// transaction, and releases them non-speculatively afterwards.
func (t *Thread) tryRH2Fast(fn func(tx engine.Tx) error) (done bool, err error, reason memsim.AbortReason) {
	htx := t.htx
	htx.Begin()

	// Monitor is_all_software_slow_path == 0 for the duration of the
	// transaction (Alg. 4 lines 6-9).
	sw, ok := htx.Read(t.sys.AllSoftwareAddr)
	if !ok {
		return t.fastAbort()
	}
	if sw > 0 {
		htx.Abort(memsim.AbortExplicit)
		return false, nil, memsim.AbortExplicit
	}

	t.path = pathRH2Fast
	t.fastWrSet = t.fastWrSet[:0]
	err, aborted, reason := engine.RunBody(fn, (*coreTx)(t))
	if aborted {
		htx.Fini()
		return false, nil, reason
	}
	if err != nil {
		htx.Abort(memsim.AbortExplicit)
		htx.Fini()
		t.stats.UserErrors++
		return true, err, memsim.AbortNone
	}
	return t.rh2FastCommit()
}

// trySR is one attempt of the RH2 fast-path-slow-read mode (Alg. 6), the
// hardware half of the all-software slow-slow path: reads carry a TL2-style
// consistency check against a pre-transaction clock sample, so they stay
// correct even while a software transaction writes back with plain stores.
func (t *Thread) trySR(fn func(tx engine.Tx) error) (done bool, err error, reason memsim.AbortReason) {
	// ctx.tx_version ← GVRead() before the hardware transaction starts
	// (Alg. 6 lines 1-3).
	t.txVersion = t.sys.Clock.Read()
	htx := t.htx
	htx.Begin()

	t.path = pathRH2FastSR
	t.fastWrSet = t.fastWrSet[:0]
	err, aborted, reason := engine.RunBody(fn, (*coreTx)(t))
	if aborted {
		htx.Fini()
		return false, nil, reason
	}
	if err != nil {
		htx.Abort(memsim.AbortExplicit)
		htx.Fini()
		t.stats.UserErrors++
		return true, err, memsim.AbortNone
	}
	done, err, reason = t.rh2FastCommit()
	if done && err == nil {
		// Re-attribute: an SR commit belongs to the slow-slow path.
		t.stats.FastCommits--
		t.stats.SlowSlowCommits++
	}
	return done, err, reason
}

// rh2FastWrite logs the written address and stores speculatively
// (Alg. 4 lines 12-15).
func (t *Thread) rh2FastWrite(a memsim.Addr, v uint64) {
	if !t.htx.Write(a, v) {
		engine.Retry(t.htx.AbortReason())
	}
	t.fastWrSet = append(t.fastWrSet, a)
}

// srRead is the instrumented read of the fast-path-slow-read mode
// (Alg. 6 lines 11-20).
func (t *Thread) srRead(a memsim.Addr) uint64 {
	htx := t.htx
	ver, ok := htx.Read(t.sys.VersionAddr(a))
	if !ok {
		engine.Retry(htx.AbortReason())
	}
	t.stats.MetadataReads++
	v, ok := htx.Read(a)
	if !ok {
		engine.Retry(htx.AbortReason())
	}
	if sys.IsLocked(ver) || sys.UnpackVersion(ver) > t.txVersion {
		htx.Abort(memsim.AbortExplicit)
		engine.Retry(memsim.AbortExplicit)
	}
	return v
}

// rh2FastCommit finishes an RH2 fast-path or slow-read hardware transaction
// (Alg. 4 lines 21-57): verify that no committing software transaction is
// reading the write set (read masks all zero), speculatively lock the write
// set, commit the hardware transaction — which publishes data and locks
// atomically — and then install the next global version to release.
func (t *Thread) rh2FastCommit() (done bool, err error, reason memsim.AbortReason) {
	htx := t.htx
	if len(t.fastWrSet) == 0 {
		if t.injectAbort() {
			htx.Abort(memsim.AbortInjected)
			return t.fastAbort()
		}
		if !htx.Commit() {
			return false, nil, htx.AbortReason()
		}
		t.stats.FastCommits++
		return true, nil, memsim.AbortNone
	}

	wStripes := t.distinctFastWriteStripes()

	// Read-mask check: any bit set means a software transaction is holding
	// its read set visible over one of our write stripes (Alg. 4 lines
	// 25-33). The mask words join our speculative footprint, so a software
	// transaction that sets a bit *after* this check aborts us through
	// coherence — that is the race the visibility mechanism exists for.
	var total uint64
	for _, s := range wStripes {
		base := t.sys.MaskBase(s)
		for w := 0; w < t.sys.MaskWords; w++ {
			m, ok := htx.Read(base + memsim.Addr(w))
			if !ok {
				return t.fastAbort()
			}
			t.stats.MetadataReads++
			total |= m
		}
	}
	if total != 0 {
		htx.Abort(memsim.AbortExplicit)
		return false, nil, memsim.AbortExplicit
	}

	// Speculatively lock the write set (Alg. 4 lines 34-46).
	lockWord := sys.LockWord(t.id)
	for _, s := range wStripes {
		va := t.sys.Versions.Addr(s)
		cur, ok := htx.Read(va)
		if !ok {
			return t.fastAbort()
		}
		t.stats.MetadataReads++
		if cur == lockWord {
			continue // already locked by this transaction's own buffered write
		}
		if sys.IsLocked(cur) {
			htx.Abort(memsim.AbortExplicit)
			return false, nil, memsim.AbortExplicit
		}
		if !htx.Write(va, lockWord) {
			return t.fastAbort()
		}
		t.stats.MetadataWrites++
	}

	if t.injectAbort() {
		htx.Abort(memsim.AbortInjected)
		return t.fastAbort()
	}
	if !htx.Commit() {
		return false, nil, htx.AbortReason()
	}

	// The write set is now published and locked. Install the next global
	// version to release the locks (Alg. 4 lines 48-55).
	next := sys.PackVersion(t.sys.Clock.Next())
	for _, s := range wStripes {
		t.sys.Mem.Store(t.sys.Versions.Addr(s), next)
		t.stats.MetadataWrites++
	}
	t.stats.FastCommits++
	return true, nil, memsim.AbortNone
}

// distinctFastWriteStripes returns the deduplicated stripe indices of the
// fast-path write log, reusing the thread's scratch map.
func (t *Thread) distinctFastWriteStripes() []int {
	clear(t.stripes)
	out := make([]int, 0, len(t.fastWrSet))
	for _, a := range t.fastWrSet {
		s := t.sys.StripeOf(a)
		if _, dup := t.stripes[s]; dup {
			continue
		}
		t.stripes[s] = struct{}{}
		out = append(out, s)
	}
	return out
}

// --- RH2 slow-path commit (Alg. 5 lines 25-47, Alg. 7) ---

// lockedStripe remembers a locked stripe version word and its previous
// contents for exact restoration on failure.
type lockedStripe struct {
	va  memsim.Addr
	old uint64
}

// rh2SlowCommit commits the current software read/write sets under the RH2
// protocol: lock the write set, make the read set visible, revalidate, and
// write back — in a short hardware transaction if possible, in software
// (raising is_all_software_slow_path) if not. Returns false if the
// transaction must restart; the write sets are then untouched in memory and
// all locks and visibility bits have been rolled back.
func (t *Thread) rh2SlowCommit() bool {
	mem := t.sys.Mem
	lockWord := sys.LockWord(t.id)

	// Phase 1: lock the write set (Alg. 7 LOCK_WRITE_SET). The version a
	// lock replaces must itself be no newer than tx_version: phase 3 skips
	// read-set stripes we hold the lock on, so this check is what rules out
	// a commit that slipped in between the body's read of a stripe and our
	// lock of it (locking blindly and skipping validation would write back
	// over it — a lost update). TL2's lock phase makes the same check for
	// the same reason.
	locked := make([]lockedStripe, 0, len(t.writeSet))
	clear(t.stripes)
	for _, w := range t.writeSet {
		s := t.sys.StripeOf(w.addr)
		if _, dup := t.stripes[s]; dup {
			continue
		}
		t.stripes[s] = struct{}{}
		va := t.sys.Versions.Addr(s)
		cur := mem.Load(va)
		t.stats.MetadataReads++
		if cur == lockWord {
			continue
		}
		if sys.IsLocked(cur) || sys.UnpackVersion(cur) > t.txVersion ||
			!mem.CAS(va, cur, lockWord) {
			t.restoreLocks(locked)
			return false
		}
		t.stats.MetadataWrites++
		locked = append(locked, lockedStripe{va: va, old: cur})
	}

	// Phase 2: make the read set visible (Alg. 7 MAKE_VISIBLE_READ_SET).
	// The fetch-and-add on each mask word also aborts, through coherence,
	// every hardware transaction whose commit already read that mask. With
	// more than 64 configured threads, the thread's bit lives in mask word
	// id/64 of the stripe ("more threads require more read masks per
	// stripe", §4.1).
	bit := uint64(1) << uint(t.id%64)
	visible := make([]memsim.Addr, 0, len(t.readSet))
	clear(t.stripes)
	for _, a := range t.readSet {
		s := t.sys.StripeOf(a)
		if _, dup := t.stripes[s]; dup {
			continue
		}
		t.stripes[s] = struct{}{}
		ma, _ := t.sys.MaskWordFor(s, t.id)
		mem.FetchAdd(ma, bit)
		t.stats.MetadataWrites++
		visible = append(visible, ma)
	}

	// Phase 3: revalidate the read set (Alg. 7 REVALIDATE_READ_SET).
	for _, a := range t.readSet {
		w := mem.Load(t.sys.VersionAddr(a))
		t.stats.MetadataReads++
		if w == lockWord {
			continue // locked by this transaction: also in our write set
		}
		if sys.IsLocked(w) || sys.UnpackVersion(w) > t.txVersion {
			t.resetVisibility(visible, bit)
			t.restoreLocks(locked)
			return false
		}
	}

	// Phase 4: write back atomically (Alg. 5 lines 32-43). Prefer a short
	// write-only hardware transaction; if it cannot commit, raise
	// is_all_software_slow_path (which aborts and re-routes every hardware
	// fast path) and write back with plain stores.
	t.rh2WriteBack()

	// Phase 5: release locks to the next version, drop visibility
	// (Alg. 5 lines 44-46).
	next := sys.PackVersion(t.sys.Clock.Next())
	for _, l := range locked {
		mem.Store(l.va, next)
		t.stats.MetadataWrites++
	}
	t.resetVisibility(visible, bit)
	return true
}

// rh2WriteBack publishes the write set: hardware if possible, software
// otherwise. It cannot fail — the transaction is already committed
// logically (validation passed under locks and visibility).
func (t *Thread) rh2WriteBack() {
	htx := t.htx
	mem := t.sys.Mem
	for retries := 0; ; retries++ {
		htx.Begin()
		ok := true
		for _, w := range t.writeSet {
			if !htx.Write(w.addr, w.val) {
				ok = false
				break
			}
		}
		if ok && htx.Commit() {
			return
		}
		htx.Fini()
		reason := htx.AbortReason()
		if !reason.Persistent() && retries < t.eng.opts.CommitHTMRetries {
			t.stats.CommitHTMRetries++
			continue
		}
		// All-software write-back: the fetch-and-add both announces the
		// switch and aborts every hardware transaction speculating on the
		// counter word (Alg. 5 lines 39-41).
		t.stats.AllSoftwareWritebacks++
		mem.FetchAdd(t.sys.AllSoftwareAddr, 1)
		for _, w := range t.writeSet {
			mem.Store(w.addr, w.val)
		}
		mem.AddInt(t.sys.AllSoftwareAddr, -1)
		return
	}
}

// restoreLocks rolls back write-set locks to their exact previous contents.
func (t *Thread) restoreLocks(locked []lockedStripe) {
	for _, l := range locked {
		t.sys.Mem.Store(l.va, l.old)
	}
}

// resetVisibility clears this thread's bit on the given mask words
// (Alg. 7 RESET_VISIBLE_READ_SET).
func (t *Thread) resetVisibility(visible []memsim.Addr, bit uint64) {
	for _, ma := range visible {
		t.sys.Mem.FetchAdd(ma, ^(bit - 1)) // two's-complement subtraction of bit
	}
}
