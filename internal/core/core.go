// Package core implements the paper's contribution: reduced hardware (RH)
// transactions. One Engine provides the full multi-level protocol stack:
//
//	RH1 fast path    — pure hardware transaction; reads uninstrumented,
//	                   writes add a single stripe-version store (Alg. 1+3).
//	RH1 slow path    — "mixed" transaction: body fully in software, commit in
//	                   one short hardware transaction that revalidates the
//	                   read set and performs the write-back (Alg. 2).
//	RH2 fallback     — taken when the RH1 commit hardware transaction fails
//	                   persistently: write-set locking + commit-time visible
//	                   read masks; only the write-back runs in hardware
//	                   (Alg. 4, 5, 7).
//	slow-slow path   — all-software write-back plus the fast-path-slow-read
//	                   hardware mode with TL2-style instrumented reads
//	                   (Alg. 6), entered when even the RH2 write-back
//	                   hardware transaction cannot commit.
//
// The Engine can also be configured as a standalone RH2 protocol
// (ProtocolRH2), which the paper describes as usable in its own right.
//
// One documented deviation from the paper's pseudo-code: the unified
// slow-path commit validates that *write-set* stripes are unlocked in
// addition to revalidating the read set. In the paper's presentation of RH1
// in isolation no locks exist, so the check is vacuous; once the RH2
// fallback is integrated, a concurrent RH2 committer may hold locks, and an
// RH1 commit that blindly overwrote a locked stripe version would corrupt
// the lock protocol. The check costs one speculative load per write stripe,
// already resident in the commit transaction's footprint.
package core

import (
	"math/rand"
	"sync"

	"rhtm/internal/engine"
	"rhtm/internal/htm"
	"rhtm/internal/memsim"
	"rhtm/internal/sys"
)

// Protocol selects which level of the stack is the entry point.
type Protocol int

const (
	// ProtocolRH1 is the full stack: RH1 fast/slow with RH2 fallback.
	ProtocolRH1 Protocol = iota
	// ProtocolRH2 runs RH2 as the primary protocol (no RH1 level).
	ProtocolRH2
)

// Mode selects the retry policy of the fast path.
type Mode int

const (
	// ModeMixed falls back to the slow path for a configurable percentage of
	// fast-path aborts (the paper's "RH1 Mix N" configurations), and always
	// after a persistent hardware failure.
	ModeMixed Mode = iota
	// ModeFastOnly retries the fast path indefinitely on transient aborts
	// (the paper's "RH1 Fast" configuration). Persistent failures (capacity,
	// unsupported instruction) still take the slow path: unlike the paper's
	// emulated benchmarks, a library cannot spin forever on an abort that
	// can never succeed.
	ModeFastOnly
	// ModeSlowOnly sends every transaction straight to the mixed slow path
	// (the paper's "RH1 Slow" row in the Figure 2 breakdown tables).
	ModeSlowOnly
)

// Options configures an Engine.
type Options struct {
	// Protocol selects RH1 (full stack) or standalone RH2.
	Protocol Protocol
	// Mode selects the fast-path retry policy.
	Mode Mode
	// MixPercent is the percentage (0..100) of transient fast-path aborts
	// that are retried on the slow path when Mode == ModeMixed. The paper's
	// RH1 Mixed 10 and RH1 Mixed 100 correspond to 10 and 100.
	MixPercent int
	// MaxFastAttempts, when positive, bounds consecutive fast-path attempts
	// in ModeMixed regardless of MixPercent (a deterministic attempt-count
	// contention policy; 0 disables).
	MaxFastAttempts int
	// InjectAbortPercent forces this percentage of fast-path hardware
	// transactions to abort at commit, reproducing the paper's §3.1
	// emulation methodology of imposing a measured abort ratio. 0 disables.
	InjectAbortPercent int
	// CommitHTMRetries bounds retries of the RH2 write-back hardware
	// transaction before switching to the all-software write-back. The
	// paper retries on contention and falls back on hardware limitation;
	// a bound additionally protects against pathological livelock.
	CommitHTMRetries int
}

// DefaultOptions returns the full RH1 stack with the paper's Mixed-100
// policy.
func DefaultOptions() Options {
	return Options{
		Protocol:         ProtocolRH1,
		Mode:             ModeMixed,
		MixPercent:       100,
		MaxFastAttempts:  16,
		CommitHTMRetries: 8,
	}
}

// Engine is a reduced-hardware-transactions engine over a System.
type Engine struct {
	sys  *sys.System
	opts Options

	mu      sync.Mutex
	threads []*Thread
	live    engine.Live
}

// New creates an Engine on s with the given options.
func New(s *sys.System, opts Options) *Engine {
	if opts.CommitHTMRetries <= 0 {
		opts.CommitHTMRetries = 8
	}
	if opts.MixPercent < 0 {
		opts.MixPercent = 0
	}
	if opts.MixPercent > 100 {
		opts.MixPercent = 100
	}
	return &Engine{sys: s, opts: opts}
}

// Name implements engine.Engine.
func (e *Engine) Name() string {
	base := "RH1"
	if e.opts.Protocol == ProtocolRH2 {
		base = "RH2"
	}
	switch e.opts.Mode {
	case ModeFastOnly:
		return base + " Fast"
	case ModeSlowOnly:
		return base + " Slow"
	default:
		if e.opts.MixPercent == 100 {
			return base + " Mixed 100"
		}
		if e.opts.MixPercent == 0 {
			return base + " Mixed 0"
		}
		return base + " Mixed " + itoa(e.opts.MixPercent)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// NewThread implements engine.Engine.
func (e *Engine) NewThread() engine.Thread {
	e.mu.Lock()
	defer e.mu.Unlock()
	id := len(e.threads)
	if id >= e.sys.MaxThreads() {
		panic(engine.ErrTooManyThreads)
	}
	t := &Thread{
		eng:      e,
		sys:      e.sys,
		id:       id,
		htx:      htm.NewTxn(e.sys.Mem, e.sys.Config().HTM),
		writeIdx: make(map[memsim.Addr]int, 32),
		stripes:  make(map[int]struct{}, 32),
		rng:      rand.New(rand.NewSource(int64(id)*1103515245 + 12345)),
	}
	e.threads = append(e.threads, t)
	return t
}

// Snapshot implements engine.Engine.
func (e *Engine) Snapshot() engine.Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	var s engine.Stats
	for _, t := range e.threads {
		s.Add(t.stats)
	}
	return s
}

// Live implements engine.Engine.
func (e *Engine) Live() engine.Stats { return e.live.Stats() }

// path identifies which protocol level the currently executing body runs on;
// the Tx dispatch methods switch on it.
type path int

const (
	pathRH1Fast path = iota
	pathRH2Fast
	pathRH2FastSR
	pathSlow
)

// writeEntry is one buffered software-path store.
type writeEntry struct {
	addr memsim.Addr
	val  uint64
}

// Thread is a per-worker context for the full protocol stack. Not safe for
// concurrent use.
type Thread struct {
	eng *Engine
	sys *sys.System
	id  int

	htx  *htm.Txn
	path path

	// Fast-path state.
	nextVer   uint64 // version hardware writes install (Alg. 1 line 3)
	fastWrSet []memsim.Addr

	// Slow-path state.
	txVersion uint64
	readSet   []memsim.Addr
	writeSet  []writeEntry
	writeIdx  map[memsim.Addr]int
	stripes   map[int]struct{} // scratch: distinct stripe set

	rng       *rand.Rand
	stats     engine.Stats
	published engine.Stats // high-water mark of stats flushed into eng.live
}

// Atomic implements engine.Thread. It drives the multi-level retry policy:
// hardware attempts first, then — per mode, or forced by a persistent
// hardware failure — the mixed slow path, which internally escalates
// through RH2 and the all-software write-back.
func (t *Thread) Atomic(fn func(tx engine.Tx) error) error {
	defer t.eng.live.Flush(&t.published, &t.stats)
	if t.eng.opts.Mode == ModeSlowOnly {
		return t.runSlow(fn)
	}
	for attempt := 0; ; attempt++ {
		done, err, reason := t.tryHardware(fn)
		if done {
			return err
		}
		t.stats.FastAborts++
		if int(reason) < len(t.stats.FastAbortsByReason) {
			t.stats.FastAbortsByReason[reason]++
		}
		if reason.Persistent() || t.shouldGoSlow(attempt) {
			return t.runSlow(fn)
		}
		engine.Backoff(t.rng, attempt)
	}
}

// shouldGoSlow applies the mode's policy to a transient fast-path abort.
func (t *Thread) shouldGoSlow(attempt int) bool {
	opts := &t.eng.opts
	if opts.Mode == ModeFastOnly {
		return false
	}
	if opts.MaxFastAttempts > 0 && attempt+1 >= opts.MaxFastAttempts {
		return true
	}
	if opts.MixPercent == 0 {
		return false
	}
	return t.rng.Intn(100) < opts.MixPercent
}

// runSlow executes the transaction on the slow path until it commits or the
// body returns an error.
func (t *Thread) runSlow(fn func(tx engine.Tx) error) error {
	for attempt := 0; ; attempt++ {
		done, err := t.trySlow(fn)
		if done {
			return err
		}
		t.stats.SlowAborts++
		t.sys.Clock.AdvanceOnAbort(t.txVersion)
		engine.Backoff(t.rng, attempt)
	}
}

// coreTx adapts Thread to engine.Tx, dispatching on the active path.
type coreTx Thread

// Load implements engine.Tx.
func (tx *coreTx) Load(a memsim.Addr) uint64 {
	t := (*Thread)(tx)
	t.stats.Reads++
	switch t.path {
	case pathRH1Fast, pathRH2Fast:
		// Uninstrumented hardware read (Alg. 1 line 13, Alg. 4 line 18).
		v, ok := t.htx.Read(a)
		if !ok {
			engine.Retry(t.htx.AbortReason())
		}
		return v
	case pathRH2FastSR:
		return t.srRead(a)
	default:
		return t.slowRead(a)
	}
}

// Store implements engine.Tx.
func (tx *coreTx) Store(a memsim.Addr, v uint64) {
	t := (*Thread)(tx)
	t.stats.Writes++
	switch t.path {
	case pathRH1Fast:
		t.rh1FastWrite(a, v)
	case pathRH2Fast, pathRH2FastSR:
		t.rh2FastWrite(a, v)
	default:
		t.slowWrite(a, v)
	}
}

// Unsupported implements engine.Tx. On any hardware path it aborts the
// hardware transaction with the persistent "unsupported" reason, sending the
// transaction to the software slow path; on the slow path the body runs in
// plain software where such operations are legal, so it is a no-op.
func (tx *coreTx) Unsupported() {
	t := (*Thread)(tx)
	if t.path != pathSlow {
		t.htx.Unsupported()
		engine.Retry(memsim.AbortUnsupported)
	}
}
