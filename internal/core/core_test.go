package core

import (
	"sync"
	"testing"

	"rhtm/internal/engine"
	"rhtm/internal/enginetest"
	"rhtm/internal/htm"
	"rhtm/internal/memsim"
	"rhtm/internal/sys"
)

func factoryWith(opts Options, mutate func(*sys.Config)) enginetest.Factory {
	return func(t *testing.T, cfg sys.Config) (engine.Engine, *sys.System) {
		t.Helper()
		if mutate != nil {
			mutate(&cfg)
		}
		s := sys.MustNew(cfg)
		return New(s, opts), s
	}
}

// tinyHTM constrains hardware transactions so severely that fast paths and
// the RH1 commit transaction fail persistently, forcing traffic through the
// RH2 fallback and the all-software write-back.
func tinyHTM(cfg *sys.Config) {
	cfg.HTM = htm.Config{MaxFootprintLines: 4, MaxWriteLines: 2}
}

func TestConformanceRH1Mixed(t *testing.T) {
	enginetest.Run(t, "RH1-Mixed100", factoryWith(DefaultOptions(), nil),
		enginetest.Capabilities{Unsupported: true})
}

func TestConformanceRH1Mixed10(t *testing.T) {
	opts := DefaultOptions()
	opts.MixPercent = 10
	enginetest.Run(t, "RH1-Mixed10", factoryWith(opts, nil),
		enginetest.Capabilities{Unsupported: true})
}

func TestConformanceRH1FastOnly(t *testing.T) {
	opts := DefaultOptions()
	opts.Mode = ModeFastOnly
	enginetest.Run(t, "RH1-Fast", factoryWith(opts, nil),
		enginetest.Capabilities{Unsupported: true})
}

func TestConformanceRH1TinyHTM(t *testing.T) {
	enginetest.Run(t, "RH1-TinyHTM", factoryWith(DefaultOptions(), tinyHTM),
		enginetest.Capabilities{Unsupported: true})
}

func TestConformanceRH2(t *testing.T) {
	opts := DefaultOptions()
	opts.Protocol = ProtocolRH2
	enginetest.Run(t, "RH2", factoryWith(opts, nil),
		enginetest.Capabilities{Unsupported: true})
}

func TestConformanceRH2TinyHTM(t *testing.T) {
	opts := DefaultOptions()
	opts.Protocol = ProtocolRH2
	enginetest.Run(t, "RH2-TinyHTM", factoryWith(opts, tinyHTM),
		enginetest.Capabilities{Unsupported: true})
}

func TestConformanceRH1Injected(t *testing.T) {
	opts := DefaultOptions()
	opts.InjectAbortPercent = 50
	enginetest.Run(t, "RH1-Inject50", factoryWith(opts, nil),
		enginetest.Capabilities{Unsupported: true})
}

func TestEngineNames(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(256))
	cases := []struct {
		opts Options
		want string
	}{
		{Options{Protocol: ProtocolRH1, Mode: ModeFastOnly}, "RH1 Fast"},
		{Options{Protocol: ProtocolRH1, Mode: ModeMixed, MixPercent: 100}, "RH1 Mixed 100"},
		{Options{Protocol: ProtocolRH1, Mode: ModeMixed, MixPercent: 10}, "RH1 Mixed 10"},
		{Options{Protocol: ProtocolRH1, Mode: ModeMixed, MixPercent: 0}, "RH1 Mixed 0"},
		{Options{Protocol: ProtocolRH2, Mode: ModeMixed, MixPercent: 100}, "RH2 Mixed 100"},
		{Options{Protocol: ProtocolRH2, Mode: ModeFastOnly}, "RH2 Fast"},
	}
	for _, c := range cases {
		if got := New(s, c.opts).Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestFastPathCommitsInHardware(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := New(s, DefaultOptions())
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	if err := th.Atomic(func(tx engine.Tx) error {
		tx.Store(a, tx.Load(a)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Snapshot()
	if st.FastCommits != 1 {
		t.Fatalf("stats = %v, want exactly one fast commit", st)
	}
	if st.SlowCommits+st.SlowSlowCommits != 0 {
		t.Fatalf("uncontended transaction took a slow path: %v", st)
	}
}

func TestFastPathWriteInstallsVersion(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := New(s, DefaultOptions())
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	if err := th.Atomic(func(tx engine.Tx) error {
		tx.Store(a, 9)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	w := s.Mem.Load(s.VersionAddr(a))
	if sys.IsLocked(w) {
		t.Fatal("fast path left stripe locked")
	}
	if sys.UnpackVersion(w) != s.Clock.Read()+1 {
		t.Fatalf("stripe version = %d, want clock+1 = %d",
			sys.UnpackVersion(w), s.Clock.Read()+1)
	}
}

func TestUnsupportedRoutesToSlowPath(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := New(s, DefaultOptions())
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	if err := th.Atomic(func(tx engine.Tx) error {
		tx.Unsupported()
		tx.Store(a, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Snapshot()
	if st.SlowCommits != 1 {
		t.Fatalf("stats = %v, want one slow commit", st)
	}
	if st.FastAbortsByReason[memsim.AbortUnsupported] == 0 {
		t.Fatal("no unsupported-instruction abort recorded")
	}
	if got := s.Mem.Load(a); got != 1 {
		t.Fatalf("value = %d, want 1", got)
	}
}

func TestReadOnlySlowCommitImmediate(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	e := New(s, DefaultOptions())
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	if err := th.Atomic(func(tx engine.Tx) error {
		tx.Unsupported() // force the slow path
		_ = tx.Load(a)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Snapshot()
	if st.ReadOnlyCommits != 1 {
		t.Fatalf("stats = %v, want one read-only commit", st)
	}
}

func TestCapacityForcesFallbackChain(t *testing.T) {
	cfg := sys.DefaultConfig(1 << 12)
	tinyHTM(&cfg)
	s := sys.MustNew(cfg)
	e := New(s, DefaultOptions())
	// 8 words spread across 8 stripes: the fast path dies on footprint, the
	// RH1 commit transaction dies on footprint (8 data lines + metadata),
	// and the RH2 write-back dies on write capacity (8 > 2 lines).
	addrs := make([]memsim.Addr, 8)
	for i := range addrs {
		addrs[i] = s.Heap.MustAlloc(1)
		s.Heap.MustAlloc(15) // pad to the next stripe
	}
	th := e.NewThread()
	if err := th.Atomic(func(tx engine.Tx) error {
		for i, a := range addrs {
			tx.Store(a, uint64(i)+100)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		if got := s.Mem.Load(a); got != uint64(i)+100 {
			t.Fatalf("addrs[%d] = %d, want %d", i, got, i+100)
		}
		if w := s.Mem.Load(s.VersionAddr(a)); sys.IsLocked(w) {
			t.Fatalf("stripe %d left locked", i)
		}
	}
	st := e.Snapshot()
	if st.RH2Fallbacks == 0 {
		t.Fatalf("stats = %v, want RH2 fallback taken", st)
	}
	if st.AllSoftwareWritebacks == 0 {
		t.Fatalf("stats = %v, want all-software write-back taken", st)
	}
	if got := s.Mem.Load(s.RH2FallbackAddr); got != 0 {
		t.Fatalf("is_RH2_fallback = %d after quiescence, want 0", got)
	}
	if got := s.Mem.Load(s.AllSoftwareAddr); got != 0 {
		t.Fatalf("is_all_software = %d after quiescence, want 0", got)
	}
	// Read masks must be fully reset.
	for i := 0; i < s.StripeCount(); i++ {
		if m := s.Mem.Load(s.Masks.Addr(i)); m != 0 {
			t.Fatalf("read mask %d = %d after quiescence, want 0", i, m)
		}
	}
}

func TestRH2SlowCommitVisibilityBlocksFastWriters(t *testing.T) {
	// Directly exercise the mask interlock: with a reader's visibility bit
	// set on a stripe, an RH2 fast-path transaction writing that stripe
	// must abort rather than commit.
	cfg := sys.DefaultConfig(1 << 10)
	s := sys.MustNew(cfg)
	opts := DefaultOptions()
	opts.Protocol = ProtocolRH2
	opts.MaxFastAttempts = 2
	e := New(s, opts)
	a := s.Heap.MustAlloc(1)
	s.Mem.Poke(s.MaskAddr(a), 1<<5) // thread 5 is "reading" the stripe
	th := e.NewThread()
	done := make(chan error, 1)
	go func() {
		done <- th.Atomic(func(tx engine.Tx) error {
			tx.Store(a, 7)
			return nil
		})
	}()
	err := <-done
	if err != nil {
		t.Fatal(err)
	}
	// The transaction can only have committed through the slow path (mask
	// blocks the fast path; slow-path locking is mask-agnostic).
	st := e.Snapshot()
	if st.FastCommits != 0 {
		t.Fatalf("fast path committed despite visible reader: %v", st)
	}
	if st.SlowCommits != 1 {
		t.Fatalf("stats = %v, want one slow commit", st)
	}
	if got := s.Mem.Load(a); got != 7 {
		t.Fatalf("value = %d, want 7", got)
	}
}

func TestInjectedAbortsAreTransient(t *testing.T) {
	s := sys.MustNew(sys.DefaultConfig(1 << 10))
	opts := DefaultOptions()
	opts.Mode = ModeFastOnly
	opts.InjectAbortPercent = 90
	e := New(s, opts)
	a := s.Heap.MustAlloc(1)
	th := e.NewThread()
	for i := 0; i < 20; i++ {
		if err := th.Atomic(func(tx engine.Tx) error {
			tx.Store(a, tx.Load(a)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Snapshot()
	if st.FastAbortsByReason[memsim.AbortInjected] == 0 {
		t.Fatalf("stats = %v, want injected aborts at 90%%", st)
	}
	if st.FastCommits != 20 {
		t.Fatalf("fast commits = %d, want 20 (fast-only mode)", st.FastCommits)
	}
	if got := s.Mem.Load(a); got != 20 {
		t.Fatalf("value = %d, want 20", got)
	}
}

func TestConcurrentFallbackStorm(t *testing.T) {
	// Several threads run transactions that straddle the capacity limit so
	// the engine continually oscillates between RH1 fast, RH1 slow, RH2
	// fallback, and software write-back — while others run small fast-path
	// transactions. The shared counter invariant must survive the storm.
	cfg := sys.DefaultConfig(1 << 13)
	cfg.HTM = htm.Config{MaxFootprintLines: 8, MaxWriteLines: 3}
	s := sys.MustNew(cfg)
	e := New(s, DefaultOptions())
	big := make([]memsim.Addr, 8)
	for i := range big {
		big[i] = s.Heap.MustAlloc(1)
		s.Heap.MustAlloc(31)
	}
	ctr := s.Heap.MustAlloc(1)
	const workers, iters = 6, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := e.NewThread()
		heavy := w%2 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := th.Atomic(func(tx engine.Tx) error {
					if heavy {
						v := tx.Load(big[0])
						for _, a := range big {
							tx.Store(a, v+1)
						}
					}
					tx.Store(ctr, tx.Load(ctr)+1)
					return nil
				})
				if err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Mem.Load(ctr); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	// All big words stay equal (each heavy tx writes the same value to all).
	v0 := s.Mem.Load(big[0])
	for i, a := range big {
		if got := s.Mem.Load(a); got != v0 {
			t.Fatalf("big[%d] = %d, want %d (torn heavy write)", i, got, v0)
		}
	}
	if got := s.Mem.Load(s.RH2FallbackAddr); got != 0 {
		t.Fatalf("is_RH2_fallback = %d after quiescence", got)
	}
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		in   int
		want string
	}{{0, "0"}, {7, "7"}, {10, "10"}, {100, "100"}} {
		if got := itoa(c.in); got != c.want {
			t.Errorf("itoa(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
