package index

import "rhtm/obs"

// Metrics instruments one index's maintenance, backfill, and audit in
// the flat obs schema (DESIGN.md §10/§13):
//
//	index.entries{idx=NAME}         gauge    live entry count
//	index.maintain.ops{idx=NAME,op=insert|delete|update}
//	index.unique.violations{idx=NAME}
//	index.build.rows{idx=NAME}      backfill rows visited
//	index.build.batches{idx=NAME}   backfill closure transactions
//	index.verify.runs{idx=NAME}, index.verify.diffs{idx=NAME}
//
// A nil *Metrics is a valid no-op, so uninstrumented callers pay
// nothing.
type Metrics struct {
	entries    *obs.Gauge
	insertOps  *obs.Counter
	deleteOps  *obs.Counter
	updateOps  *obs.Counter
	uniqueViol *obs.Counter
	buildRows  *obs.Counter
	buildBatch *obs.Counter
	verifyRuns *obs.Counter
	verifyDiff *obs.Counter
}

// NewMetrics resolves the index's instruments in reg under label
// idx=name.
func NewMetrics(reg *obs.Registry, name string) *Metrics {
	l := func(base string) string { return obs.Name(base, "idx", name) }
	return &Metrics{
		entries:    reg.Gauge(l("index.entries")),
		insertOps:  reg.Counter(obs.Name("index.maintain.ops", "idx", name, "op", "insert")),
		deleteOps:  reg.Counter(obs.Name("index.maintain.ops", "idx", name, "op", "delete")),
		updateOps:  reg.Counter(obs.Name("index.maintain.ops", "idx", name, "op", "update")),
		uniqueViol: reg.Counter(l("index.unique.violations")),
		buildRows:  reg.Counter(l("index.build.rows")),
		buildBatch: reg.Counter(l("index.build.batches")),
		verifyRuns: reg.Counter(l("index.verify.runs")),
		verifyDiff: reg.Counter(l("index.verify.diffs")),
	}
}

func (m *Metrics) entriesAdd(d int64) {
	if m != nil {
		m.entries.Add(d)
	}
}

func (m *Metrics) maintained(old, new *Entry) {
	if m == nil {
		return
	}
	switch {
	case old == nil && new != nil:
		m.insertOps.Inc()
	case old != nil && new == nil:
		m.deleteOps.Inc()
	case old != nil && new != nil:
		m.updateOps.Inc()
	}
}

func (m *Metrics) uniqueViolation() {
	if m != nil {
		m.uniqueViol.Inc()
	}
}

func (m *Metrics) buildBatchDone(rows int) {
	if m != nil {
		m.buildRows.Add(uint64(rows))
		m.buildBatch.Inc()
	}
}

func (m *Metrics) verified(diffs int) {
	if m != nil {
		m.verifyRuns.Inc()
		m.verifyDiff.Add(uint64(diffs))
	}
}
