// Package index implements transactional secondary indexes over any
// kv.DB. An index entry is an ordinary record in the kv index namespace:
//
//	kv.IndexSpace ‖ indexID (8 bytes big-endian) ‖ encoded value ‖ primary key
//
// with the entry's value holding the primary key again, so readers never
// need to split the key. Because the namespace is ordered and the value
// encodings callers supply are memcmp-comparable and prefix-free (see
// package table's ordered codec), a kv.Scan range cursor over the
// namespace IS an index scan — ordered by value, then by primary key.
//
// Entries are maintained inside the caller's own Update closure by Map,
// which makes row write + index write one atomic transaction on every
// engine with no new locking: the hybrid TM paths below already make
// arbitrary multi-word transactions atomic, and an index update is just
// two more words. The same property carries through cluster 2PC, the
// WAL, replication, and the network client unchanged, because an index
// entry is just a key.
//
// Build backfills an index online: it snapshots the base range in
// bounded slices and indexes each slice inside one closure that re-reads
// every row — rows that changed since the snapshot are indexed at their
// current value (the closure's own validation is the revision guard),
// rows deleted since are skipped, and overlap with concurrent writers'
// own Map calls is idempotent (same entry key, same value). Verify
// audits the result: it diffs index against base in both directions.
package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"rhtm/kv"
)

// ErrUniqueViolation reports an insert or update that would give two
// rows the same value in a unique index. Returned from inside the
// caller's Update closure, it aborts the transaction — the row write and
// any partial index maintenance vanish together.
var ErrUniqueViolation = errors.New("index: unique constraint violation")

// Def identifies one secondary index: where its entries live (ID) and
// how it behaves. Defs are plain values — derive ID deterministically
// (package table hashes "table.index") and the same entries are
// addressable from any process with no catalog.
type Def struct {
	// ID is the index's stable 64-bit identity; entries live under
	// kv.IndexSpace ‖ ID.
	ID uint64
	// Name labels the index in errors and metrics.
	Name string
	// Unique rejects two entries with the same value and different
	// primary keys.
	Unique bool
	// Metrics instruments maintenance; nil is a no-op.
	Metrics *Metrics
}

// Entry is one index entry: the encoded field value (memcmp-ordered,
// self-delimiting) and the primary key it points at.
type Entry struct {
	Val []byte
	PK  []byte
}

// prefixLen is len(kv.IndexSpace) + 8 id bytes.
const prefixLen = 2 + 8

// Prefix returns the key prefix all of def's entries share.
func Prefix(def Def) []byte {
	p := make([]byte, 0, prefixLen)
	p = append(p, kv.IndexSpace...)
	var id [8]byte
	binary.BigEndian.PutUint64(id[:], def.ID)
	return append(p, id[:]...)
}

// Key composes the entry key for (val, pk).
func Key(def Def, val, pk []byte) []byte {
	k := make([]byte, 0, prefixLen+len(val)+len(pk))
	k = append(k, Prefix(def)...)
	k = append(k, val...)
	return append(k, pk...)
}

// PrefixSuccessor returns the smallest key greater than every key with
// prefix p — the exclusive end bound of a prefix scan. nil means
// unbounded (p was all 0xFF); kv clamps index-space scans at
// kv.IndexSpaceEnd, so nil is always safe as an end bound here.
func PrefixSuccessor(p []byte) []byte {
	e := bytes.Clone(p)
	for i := len(e) - 1; i >= 0; i-- {
		if e[i] < 0xFF {
			e[i]++
			return e[:i+1]
		}
	}
	return nil
}

// Range returns the entry-key range covering values in [loVal, hiVal).
// A nil loVal starts at the index's first entry; a nil hiVal ends after
// its last.
func Range(def Def, loVal, hiVal []byte) (start, end []byte) {
	p := Prefix(def)
	start = append(bytes.Clone(p), loVal...)
	if hiVal == nil {
		return start, PrefixSuccessor(p)
	}
	return start, append(bytes.Clone(p), hiVal...)
}

// ValueRange returns the entry-key range covering exactly the entries
// with encoded value val — valid because value encodings are prefix-free
// (no other value's encoding extends val's).
func ValueRange(def Def, val []byte) (start, end []byte) {
	start = Key(def, val, nil)
	return start, PrefixSuccessor(start)
}

// Map maintains def's entries for one record mutation inside tx: old is
// the record's previous indexed entry (nil on insert), new its next
// (nil on delete). Call it in the same Update closure as the row write;
// the engine commits or aborts the pair atomically. A missing old entry
// is tolerated (the row may predate an online backfill still in flight).
func Map(tx kv.Txn, def Def, old, new *Entry) error {
	if old != nil && new != nil && bytes.Equal(old.Val, new.Val) && bytes.Equal(old.PK, new.PK) {
		return nil
	}
	if new != nil {
		added, err := putEntry(tx, def, new)
		if err != nil {
			return err
		}
		if added {
			def.Metrics.entriesAdd(1)
		}
	}
	if old != nil {
		err := tx.Delete(Key(def, old.Val, old.PK))
		switch {
		case err == nil:
			def.Metrics.entriesAdd(-1)
		case !errors.Is(err, kv.ErrNotFound):
			return err
		}
	}
	def.Metrics.maintained(old, new)
	return nil
}

// putEntry writes new's entry, enforcing uniqueness for unique indexes,
// and reports whether the entry was newly created (vs overwritten — the
// idempotent-backfill case).
func putEntry(tx kv.Txn, def Def, new *Entry) (added bool, err error) {
	if def.Unique {
		if err := checkUnique(tx, def, new); err != nil {
			return false, err
		}
	}
	key := Key(def, new.Val, new.PK)
	rev, err := tx.Revision(key)
	if err != nil {
		return false, err
	}
	pk := bytes.Clone(new.PK)
	if err := tx.Put(key, pk); err != nil {
		return false, err
	}
	return rev == 0, nil
}

// checkUnique scans the value's entry range for an entry belonging to a
// different primary key. The scan joins the transaction's read set, so
// a concurrent insert of the same value conflicts at commit instead of
// slipping past the check (on the cluster this is the scanned-range
// revalidation; on a single System the scan's structural reads conflict
// with any insert into the range).
func checkUnique(tx kv.Txn, def Def, new *Entry) error {
	start, end := ValueRange(def, new.Val)
	it := tx.Scan(start, end, 2)
	for it.Next() {
		pk := it.Key()[prefixLen+len(new.Val):]
		if !bytes.Equal(pk, new.PK) {
			def.Metrics.uniqueViolation()
			return fmt.Errorf("index %s: value already present: %w", def.Name, ErrUniqueViolation)
		}
	}
	return it.Err()
}

// Iter decomposes a kv cursor over def's entry range into (Val, PK)
// pairs.
type Iter struct {
	it  kv.Iterator
	def Def
	val []byte
	pk  []byte
	err error
}

// Entries wraps it, which must range over def's entry keys only.
func Entries(def Def, it kv.Iterator) *Iter { return &Iter{it: it, def: def} }

// Next advances to the next entry.
func (i *Iter) Next() bool {
	if i.err != nil || !i.it.Next() {
		return false
	}
	key, pk := i.it.Key(), i.it.Value()
	if len(key) < prefixLen+len(pk) || !bytes.HasSuffix(key, pk) {
		i.err = fmt.Errorf("index %s: malformed entry key %x", i.def.Name, key)
		return false
	}
	i.val = key[prefixLen : len(key)-len(pk)]
	i.pk = pk
	return true
}

// Val returns the current entry's encoded value (valid until Next).
func (i *Iter) Val() []byte { return i.val }

// PK returns the current entry's primary key (valid until Next).
func (i *Iter) PK() []byte { return i.pk }

// Err reports a failed scan or a malformed entry after Next returns
// false.
func (i *Iter) Err() error {
	if i.err != nil {
		return i.err
	}
	return i.it.Err()
}

// Scan opens a snapshot cursor over def's entries with values in
// [loVal, hiVal) (nil bounds = whole index), yielding at most limit
// entries (0 = unbounded).
func Scan(db kv.DB, def Def, loVal, hiVal []byte, limit int) *Iter {
	start, end := Range(def, loVal, hiVal)
	return Entries(def, db.Scan(start, end, limit))
}

// Lookup returns the primary keys of entries with exactly value val, in
// primary-key order, at most limit (0 = unbounded).
func Lookup(db kv.DB, def Def, val []byte, limit int) ([][]byte, error) {
	start, end := ValueRange(def, val)
	it := Entries(def, db.Scan(start, end, limit))
	var pks [][]byte
	for it.Next() {
		pks = append(pks, bytes.Clone(it.PK()))
	}
	return pks, it.Err()
}
