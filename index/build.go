package index

import (
	"bytes"
	"errors"
	"fmt"

	"rhtm/kv"
)

// Source describes how a base-table key range maps into an index: the
// row range to read and how each row yields its entry. Extract returns
// nil for rows the index does not cover.
type Source struct {
	Start, End []byte
	Extract    func(key, value []byte) (*Entry, error)
}

// BuildStats summarizes an online backfill.
type BuildStats struct {
	Rows    int // base rows visited (including ones skipped as deleted)
	Batches int // closure transactions committed
}

// Build backfills def's entries from src while traffic continues. It
// snapshots the base range in slices of at most batch keys, then indexes
// each slice inside one Update closure that re-reads every row: a row
// that changed since the snapshot is indexed at its current value (the
// closure's commit validation is the revision guard), a row deleted
// since is skipped, and a row a concurrent writer already indexed via
// Map is overwritten with the identical entry — idempotent. Writers must
// already be running Map for this index when Build starts (the standard
// online-build contract: enable maintenance first, then backfill).
func Build(db kv.DB, def Def, src Source, batch int) (BuildStats, error) {
	if batch <= 0 {
		batch = 256
	}
	var stats BuildStats
	cursor := src.Start
	for {
		var keys [][]byte
		it := db.Scan(cursor, src.End, batch)
		for it.Next() {
			keys = append(keys, bytes.Clone(it.Key()))
		}
		if err := it.Err(); err != nil {
			return stats, fmt.Errorf("index %s: backfill scan: %w", def.Name, err)
		}
		if len(keys) == 0 {
			return stats, nil
		}
		err := db.Update(func(tx kv.Txn) error {
			for _, k := range keys {
				v, err := tx.Get(k)
				if errors.Is(err, kv.ErrNotFound) {
					continue
				}
				if err != nil {
					return err
				}
				e, err := src.Extract(k, v)
				if err != nil {
					return err
				}
				if e == nil {
					continue
				}
				added, err := putEntry(tx, def, e)
				if err != nil {
					return err
				}
				if added {
					def.Metrics.entriesAdd(1)
				}
			}
			return nil
		})
		if err != nil {
			return stats, fmt.Errorf("index %s: backfill batch: %w", def.Name, err)
		}
		stats.Rows += len(keys)
		stats.Batches++
		def.Metrics.buildBatchDone(len(keys))
		cursor = append(keys[len(keys)-1], 0x00) // succ(last): resume after it
	}
}

// Mismatch is one inconsistency Verify found.
type Mismatch struct {
	Key    []byte // the index entry key (orphans) or base row key (missing)
	Reason string // "missing entry", "orphan entry", or "entry value mismatch"
}

// Verify audits def against src in both directions: every base row's
// expected entry must exist with the right value, and every entry in the
// index's range must correspond to a base row. The two scans are
// separate snapshots, so run it quiesced (or retry on transient diffs)
// for an exact audit; dbtest runs it after workers stop.
func Verify(db kv.DB, def Def, src Source) ([]Mismatch, error) {
	expected := map[string][]byte{} // entry key → pk
	it := db.Scan(src.Start, src.End, 0)
	for it.Next() {
		e, err := src.Extract(it.Key(), it.Value())
		if err != nil {
			return nil, fmt.Errorf("index %s: verify extract: %w", def.Name, err)
		}
		if e != nil {
			expected[string(Key(def, e.Val, e.PK))] = bytes.Clone(e.PK)
		}
	}
	if err := it.Err(); err != nil {
		return nil, fmt.Errorf("index %s: verify base scan: %w", def.Name, err)
	}

	var diffs []Mismatch
	start, end := Range(def, nil, nil)
	ix := db.Scan(start, end, 0)
	for ix.Next() {
		k := string(ix.Key())
		pk, ok := expected[k]
		switch {
		case !ok:
			diffs = append(diffs, Mismatch{Key: bytes.Clone(ix.Key()), Reason: "orphan entry"})
		case !bytes.Equal(ix.Value(), pk):
			diffs = append(diffs, Mismatch{Key: bytes.Clone(ix.Key()), Reason: "entry value mismatch"})
		}
		delete(expected, k)
	}
	if err := ix.Err(); err != nil {
		return nil, fmt.Errorf("index %s: verify index scan: %w", def.Name, err)
	}
	for k := range expected {
		diffs = append(diffs, Mismatch{Key: []byte(k), Reason: "missing entry"})
	}
	def.Metrics.verified(len(diffs))
	return diffs, nil
}
