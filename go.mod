module rhtm

go 1.22
