package table

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"rhtm/index"
	"rhtm/kv"
	"rhtm/obs"
)

// Cond is one conjunct of a query's filter: an equality or a half-open
// range on a single field. Exactly one of Eq or (Lo and/or Hi) is set.
type Cond struct {
	Field string
	Eq    *Value
	Lo    *Value // inclusive lower bound
	Hi    *Value // exclusive upper bound
}

// Eq builds an equality condition.
func Eq(field string, v Value) Cond { return Cond{Field: field, Eq: &v} }

// Ge builds a lower-bound condition (field >= v).
func Ge(field string, v Value) Cond { return Cond{Field: field, Lo: &v} }

// Lt builds an upper-bound condition (field < v).
func Lt(field string, v Value) Cond { return Cond{Field: field, Hi: &v} }

// Between builds a range condition (lo <= field < hi).
func Between(field string, lo, hi Value) Cond {
	return Cond{Field: field, Lo: &lo, Hi: &hi}
}

func (c Cond) String() string {
	switch {
	case c.Eq != nil:
		return fmt.Sprintf("%s=%s", c.Field, *c.Eq)
	case c.Lo != nil && c.Hi != nil:
		return fmt.Sprintf("%s in [%s,%s)", c.Field, *c.Lo, *c.Hi)
	case c.Lo != nil:
		return fmt.Sprintf("%s>=%s", c.Field, *c.Lo)
	case c.Hi != nil:
		return fmt.Sprintf("%s<%s", c.Field, *c.Hi)
	default:
		return c.Field + "=?"
	}
}

// matches evaluates the condition against a value of the field.
func (c Cond) matches(v Value) bool {
	if c.Eq != nil {
		return v.Equal(*c.Eq)
	}
	if c.Lo != nil && v.Compare(*c.Lo) < 0 {
		return false
	}
	if c.Hi != nil && v.Compare(*c.Hi) >= 0 {
		return false
	}
	return true
}

// Query is a declarative read: ANDed filter conditions, an optional
// ascending order field, an optional limit, and an optional projection.
// The planner — not the caller — decides how it executes.
type Query struct {
	Conds  []Cond
	Order  string   // order by this field ascending; "" = unspecified
	Limit  int      // 0 = unbounded
	Fields []string // projection, nil = all fields in schema order
}

// PlanKind is how a query executes.
type PlanKind uint8

const (
	// PlanPoint is a direct primary-key Get (filter pins every key field).
	PlanPoint PlanKind = iota
	// PlanCovering scans index entries and answers from them alone.
	PlanCovering
	// PlanIndex scans index entries and fetches each base row.
	PlanIndex
	// PlanFull scans the whole table.
	PlanFull
)

func (k PlanKind) String() string {
	switch k {
	case PlanPoint:
		return "point"
	case PlanCovering:
		return "covering"
	case PlanIndex:
		return "index"
	default:
		return "full"
	}
}

// Plan is a chosen execution strategy. Explain renders the pinned,
// test-stable description.
type Plan struct {
	Kind  PlanKind
	Index string // index name, for PlanCovering/PlanIndex
	Cost  int64  // the planner's cost estimate (see DESIGN.md §13)

	t     *Table
	ix    *runtimeIdx
	eqPfx []Value // ordered-codec prefix the index scan pins
	lo    *Value  // range bound on the field after the pinned prefix
	hi    *Value
	resid []Cond // conditions the scan does not subsume
	sort  bool   // results must be sorted by q.Order after collection
	q     Query
}

// Explain renders the plan, e.g.
//
//	index(users.by_city eq "ams") fetch filter(age>=30) cost=12
//	scan(users) filter(city="ams") order(age) cost=10000
func (p *Plan) Explain() string {
	var b strings.Builder
	switch p.Kind {
	case PlanPoint:
		fmt.Fprintf(&b, "point(%s)", p.t.schema.Name)
	case PlanCovering, PlanIndex:
		fmt.Fprintf(&b, "index(%s", p.Index)
		if len(p.eqPfx) > 0 {
			parts := make([]string, len(p.eqPfx))
			for i, v := range p.eqPfx {
				parts[i] = v.String()
			}
			fmt.Fprintf(&b, " eq %s", strings.Join(parts, ","))
		}
		if p.lo != nil || p.hi != nil {
			lo, hi := "-inf", "+inf"
			if p.lo != nil {
				lo = p.lo.String()
			}
			if p.hi != nil {
				hi = p.hi.String()
			}
			fmt.Fprintf(&b, " range [%s,%s)", lo, hi)
		}
		b.WriteString(")")
		if p.Kind == PlanCovering {
			b.WriteString(" covering")
		} else {
			b.WriteString(" fetch")
		}
	default:
		fmt.Fprintf(&b, "scan(%s)", p.t.schema.Name)
	}
	if len(p.resid) > 0 {
		parts := make([]string, len(p.resid))
		for i, c := range p.resid {
			parts[i] = c.String()
		}
		fmt.Fprintf(&b, " filter(%s)", strings.Join(parts, " and "))
	}
	if p.q.Order != "" {
		if p.sort {
			fmt.Fprintf(&b, " sort(%s)", p.q.Order)
		} else {
			fmt.Fprintf(&b, " order(%s)", p.q.Order)
		}
	}
	if p.q.Limit > 0 {
		fmt.Fprintf(&b, " limit(%d)", p.q.Limit)
	}
	fmt.Fprintf(&b, " cost=%d", p.Cost)
	return b.String()
}

// rangeFraction is the planner's selectivity guess for a range
// condition with no better information: one third of the rows.
const rangeFraction = 3

// Plan chooses how q executes, using the table's statistics (row count,
// per-index distinct values). The cost rule (DESIGN.md §13):
//
//	point get                      cost 1
//	index scan    matches × 2      (entry + base-row fetch per match)
//	covering scan matches × 1      (entries answer the query alone)
//	full scan     rows × 1
//
// where matches = rows ÷ cardinality for an equality on the index's
// fields, and rows ÷ 3 for a range on its first field. A plan whose scan
// order already satisfies q.Order skips the sort; when it also has no
// residual filter, the limit bounds the scan and caps the cost. Lowest
// cost wins; ties prefer point < covering < index < full, then index
// name.
func (t *Table) Plan(q Query) (*Plan, error) {
	if err := t.checkQuery(q); err != nil {
		return nil, err
	}
	rows, err := t.RowCount()
	if err != nil {
		return nil, err
	}
	if rows < 1 {
		rows = 1
	}

	conds := make(map[string]Cond, len(q.Conds))
	for _, c := range q.Conds {
		conds[c.Field] = c
	}

	var best *Plan
	consider := func(p *Plan) {
		if best == nil || p.Cost < best.Cost ||
			(p.Cost == best.Cost && (p.Kind < best.Kind ||
				(p.Kind == best.Kind && p.Index < best.Index))) {
			best = p
		}
	}

	// An order field pinned by an equality is trivially satisfied by any
	// scan order.
	orderPinned := func() bool {
		c, ok := conds[q.Order]
		return ok && c.Eq != nil
	}

	// Point get: every primary-key field pinned by an equality.
	if eq, ok := t.pinned(conds, t.schema.Key); ok {
		consider(&Plan{
			Kind: PlanPoint, Cost: 1, t: t, eqPfx: eq,
			resid: t.residual(q.Conds, t.schema.Key), q: q,
		})
	}

	// Full scan: row keys are ordered by the primary key, so ordering by
	// its first field comes free.
	fullOrderOK := q.Order == "" || q.Order == t.schema.Key[0] || orderPinned()
	consider(&Plan{
		Kind: PlanFull, t: t, resid: q.Conds, q: q,
		sort: !fullOrderOK,
		Cost: t.scanCost(rows, len(q.Conds) == 0, q, fullOrderOK, 1),
	})

	// One candidate per index: pin the longest equality prefix of the
	// index's fields, then an optional range on the next field.
	for i := range t.idxs {
		ix := &t.idxs[i]
		var eqPfx []Value
		var used []string
		for _, f := range ix.decl.Fields {
			c, ok := conds[f]
			if !ok || c.Eq == nil {
				break
			}
			eqPfx = append(eqPfx, *c.Eq)
			used = append(used, f)
		}
		var lo, hi *Value
		if len(used) < len(ix.decl.Fields) {
			next := ix.decl.Fields[len(used)]
			if c, ok := conds[next]; ok && c.Eq == nil {
				lo, hi = c.Lo, c.Hi
				used = append(used, next)
			}
		}
		if len(eqPfx) == 0 && lo == nil && hi == nil && q.Order != ix.decl.Fields[0] {
			continue // index helps neither the filter nor the order
		}

		card, err := t.Cardinality(ix.decl.Name)
		if err != nil {
			return nil, err
		}
		if card < 1 {
			card = 1
		}
		matches := rows
		if len(eqPfx) > 0 {
			matches = (rows + card - 1) / card
		}
		if lo != nil || hi != nil {
			matches = matches / rangeFraction
		}
		if matches < 1 {
			matches = 1
		}

		resid := t.residual(q.Conds, used)
		// The scan yields entries ordered by the indexed fields (then
		// primary key). With a pinned equality prefix, the next indexed
		// field is the scan's order.
		orderOK := q.Order == "" || orderPinned()
		if !orderOK && len(eqPfx) < len(ix.decl.Fields) &&
			q.Order == ix.decl.Fields[len(eqPfx)] {
			orderOK = true // the field after the pinned prefix is the scan order
		}

		kind := PlanIndex
		factor := int64(2)
		if t.covered(ix, q) {
			kind, factor = PlanCovering, 1
		}
		consider(&Plan{
			Kind: kind, Index: ix.decl.Name, t: t, ix: ix,
			eqPfx: eqPfx, lo: lo, hi: hi, resid: resid, q: q,
			sort: q.Order != "" && !orderOK,
			Cost: t.scanCost(matches, len(resid) == 0, q, orderOK, factor),
		})
	}
	t.met.picked(best.Kind)
	return best, nil
}

// scanCost applies the shared cost shape: visited × factor, capped by
// the limit when the scan can stop early (order satisfied, no residual
// filter), plus the sort's extra pass when it cannot.
func (t *Table) scanCost(visited int64, noResid bool, q Query, orderOK bool, factor int64) int64 {
	if q.Limit > 0 && orderOK && noResid && int64(q.Limit) < visited {
		visited = int64(q.Limit)
	}
	cost := visited * factor
	if q.Order != "" && !orderOK {
		cost += visited // the in-memory sort pass
	}
	return cost
}

// pinned returns the equality values for fields, in order, when every
// one of them has an equality condition.
func (t *Table) pinned(conds map[string]Cond, fields []string) ([]Value, bool) {
	vals := make([]Value, 0, len(fields))
	for _, f := range fields {
		c, ok := conds[f]
		if !ok || c.Eq == nil {
			return nil, false
		}
		vals = append(vals, *c.Eq)
	}
	return vals, true
}

// residual returns the conditions not on any of the used fields.
func (t *Table) residual(conds []Cond, used []string) []Cond {
	var out []Cond
	for _, c := range conds {
		subsumed := false
		for _, f := range used {
			if c.Field == f {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, c)
		}
	}
	return out
}

// covered reports whether every field the query needs — projection,
// residual filters, order — is among ix's fields or the primary key,
// so index entries answer the query without base-row fetches.
func (t *Table) covered(ix *runtimeIdx, q Query) bool {
	avail := map[string]bool{}
	for _, f := range ix.decl.Fields {
		avail[f] = true
	}
	for _, f := range t.schema.Key {
		avail[f] = true
	}
	need := q.Fields
	if need == nil {
		for _, f := range t.schema.Fields {
			need = append(need, f.Name)
		}
	}
	for _, f := range need {
		if !avail[f] {
			return false
		}
	}
	for _, c := range q.Conds {
		if !avail[c.Field] {
			return false
		}
	}
	if q.Order != "" && !avail[q.Order] {
		return false
	}
	return true
}

// checkQuery validates field references and condition shapes.
func (t *Table) checkQuery(q Query) error {
	for _, c := range q.Conds {
		if _, ok := t.fieldPos[c.Field]; !ok {
			return fmt.Errorf("table %s: unknown field %q in filter", t.schema.Name, c.Field)
		}
		if c.Eq != nil && (c.Lo != nil || c.Hi != nil) {
			return fmt.Errorf("table %s: condition on %s mixes equality and range", t.schema.Name, c.Field)
		}
		if c.Eq == nil && c.Lo == nil && c.Hi == nil {
			return fmt.Errorf("table %s: empty condition on %s", t.schema.Name, c.Field)
		}
	}
	if q.Order != "" {
		if _, ok := t.fieldPos[q.Order]; !ok {
			return fmt.Errorf("table %s: unknown order field %q", t.schema.Name, q.Order)
		}
	}
	for _, f := range q.Fields {
		if _, ok := t.fieldPos[f]; !ok {
			return fmt.Errorf("table %s: unknown projected field %q", t.schema.Name, f)
		}
	}
	if q.Limit < 0 {
		return fmt.Errorf("table %s: negative limit", t.schema.Name)
	}
	return nil
}

// Select plans and executes q, returning the projected rows.
func (t *Table) Select(q Query) ([][]Value, error) {
	p, err := t.Plan(q)
	if err != nil {
		return nil, err
	}
	return p.Run()
}

// Explain plans q and returns the pinned plan description.
func (t *Table) Explain(q Query) (string, error) {
	p, err := t.Plan(q)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Run executes the plan against the table's DB.
func (p *Plan) Run() ([][]Value, error) {
	t := p.t
	t.met.op(func(m *metrics) *obs.Counter { return m.selects })
	var rows [][]Value
	var visited int
	var err error
	switch p.Kind {
	case PlanPoint:
		rows, visited, err = p.runPoint()
	case PlanFull:
		rows, visited, err = p.runFull()
	default:
		rows, visited, err = p.runIndex()
	}
	if err != nil {
		return nil, err
	}
	t.met.scanned(visited)
	if p.sort && p.q.Order != "" {
		pos := t.fieldPos[p.q.Order]
		sort.SliceStable(rows, func(i, j int) bool {
			return rows[i][pos].Compare(rows[j][pos]) < 0
		})
	}
	if p.q.Limit > 0 && len(rows) > p.q.Limit {
		rows = rows[:p.q.Limit]
	}
	return p.project(rows), nil
}

// runPoint fetches the single pinned row.
func (p *Plan) runPoint() ([][]Value, int, error) {
	row, err := p.t.Get(p.eqPfx...)
	if errors.Is(err, kv.ErrNotFound) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	if !p.accept(row) {
		return nil, 1, nil
	}
	return [][]Value{row}, 1, nil
}

// runFull scans the whole row range, filtering as it goes. When the scan
// order already satisfies the query, it stops at the limit.
func (p *Plan) runFull() ([][]Value, int, error) {
	start, end := p.t.rowRange()
	it := p.t.db.Scan(start, end, 0)
	var rows [][]Value
	visited := 0
	for it.Next() {
		visited++
		row, err := p.t.decodeRow(it.Value())
		if err != nil {
			return nil, visited, err
		}
		if !p.accept(row) {
			continue
		}
		rows = append(rows, row)
		if p.q.Limit > 0 && !p.sort && len(rows) >= p.q.Limit {
			break
		}
	}
	return rows, visited, it.Err()
}

// runIndex scans the chosen index range; covering plans reconstruct the
// needed fields from the entry alone, fetch plans read each base row
// (an entry whose row vanished concurrently is skipped).
func (p *Plan) runIndex() ([][]Value, int, error) {
	t := p.t
	loVal := AppendTuple(nil, p.eqPfx...)
	var hiVal []byte
	switch {
	case p.lo != nil || p.hi != nil:
		if p.lo != nil {
			loVal = AppendOrdered(loVal, *p.lo)
		}
		if p.hi != nil {
			hiVal = AppendOrdered(AppendTuple(nil, p.eqPfx...), *p.hi)
		} else if len(p.eqPfx) > 0 {
			hiVal = index.PrefixSuccessor(AppendTuple(nil, p.eqPfx...))
		}
	case len(p.eqPfx) > 0:
		hiVal = index.PrefixSuccessor(loVal)
	}
	// A nil hiVal (no upper bound) makes Range end at the index's last
	// entry.
	start, end := index.Range(p.ix.def, loVal, hiVal)

	it := index.Entries(p.ix.def, t.db.Scan(start, end, 0))
	var rows [][]Value
	visited := 0
	for it.Next() {
		visited++
		var row []Value
		if p.Kind == PlanCovering {
			r, err := p.rowFromEntry(it.Val(), it.PK())
			if err != nil {
				return nil, visited, err
			}
			row = r
		} else {
			v, err := t.db.Get(t.rowKey(it.PK()))
			if errors.Is(err, kv.ErrNotFound) {
				continue // row vanished between entry read and fetch
			}
			if err != nil {
				return nil, visited, err
			}
			row, err = t.decodeRow(v)
			if err != nil {
				return nil, visited, err
			}
		}
		if !p.accept(row) {
			continue
		}
		rows = append(rows, row)
		if p.q.Limit > 0 && !p.sort && len(p.resid) == 0 && len(rows) >= p.q.Limit {
			break
		}
	}
	return rows, visited, it.Err()
}

// rowFromEntry reconstructs a partial row (indexed fields + primary key;
// everything else the invalid zero Value) from one covering entry.
func (p *Plan) rowFromEntry(val, pk []byte) ([]Value, error) {
	t := p.t
	row := make([]Value, len(t.schema.Fields))
	vals, rest, err := DecodeTuple(val, len(p.ix.fieldPos))
	if err != nil {
		return nil, fmt.Errorf("index %s: entry value: %w", p.ix.def.Name, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("index %s: %d trailing bytes in entry value", p.ix.def.Name, len(rest))
	}
	for i, pos := range p.ix.fieldPos {
		row[pos] = vals[i]
	}
	pkVals, rest, err := DecodeTuple(pk, len(t.keyPos))
	if err != nil {
		return nil, fmt.Errorf("index %s: entry pk: %w", p.ix.def.Name, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("index %s: %d trailing bytes in entry pk", p.ix.def.Name, len(rest))
	}
	for i, pos := range t.keyPos {
		row[pos] = pkVals[i]
	}
	return row, nil
}

// accept applies the residual filter. Point plans also re-check their
// pinned equalities (the Get already guarantees them; this keeps accept
// total).
func (p *Plan) accept(row []Value) bool {
	for _, c := range p.resid {
		if !c.matches(row[p.t.fieldPos[c.Field]]) {
			return false
		}
	}
	return true
}

// project applies the query's projection.
func (p *Plan) project(rows [][]Value) [][]Value {
	if p.q.Fields == nil {
		return rows
	}
	pos := make([]int, len(p.q.Fields))
	for i, f := range p.q.Fields {
		pos[i] = p.t.fieldPos[f]
	}
	out := make([][]Value, len(rows))
	for i, r := range rows {
		pr := make([]Value, len(pos))
		for j, x := range pos {
			pr[j] = r[x]
		}
		out[i] = pr
	}
	return out
}
