package table_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rhtm"
	"rhtm/index"
	"rhtm/kv"
	"rhtm/obs"
	"rhtm/store"
	"rhtm/table"
)

// newDB builds a sharded Local DB on a fresh System with the named
// engine.
func newDB(t testing.TB, engine string, arenaWords int) kv.DB {
	t.Helper()
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 18))
	var eng rhtm.Engine
	switch engine {
	case "RH1":
		eng = rhtm.NewRH1(s, rhtm.RH1Options{MixPercent: 100})
	case "TL2":
		eng = rhtm.NewTL2(s)
	default:
		t.Fatalf("unknown engine %q", engine)
	}
	sh := store.NewSharded(s, 4, store.Options{ArenaWords: arenaWords})
	return kv.NewLocal(eng, sh)
}

// usersSchema is the shared test schema: pk id, a non-unique city index,
// and a unique email index.
func usersSchema() table.Schema {
	return table.Schema{
		Name: "users",
		Fields: []table.Field{
			{Name: "id", Type: table.TInt64},
			{Name: "city", Type: table.TString},
			{Name: "email", Type: table.TString},
			{Name: "age", Type: table.TInt64},
		},
		Key: []string{"id"},
		Indexes: []table.Index{
			{Name: "by_city", Fields: []string{"city"}},
			{Name: "by_email", Fields: []string{"email"}, Unique: true},
		},
	}
}

func user(id int64, city, email string, age int64) []table.Value {
	return []table.Value{table.Int64(id), table.String(city), table.String(email), table.Int64(age)}
}

func openUsers(t testing.TB, db kv.DB, reg *obs.Registry) *table.Table {
	t.Helper()
	var opts []table.Option
	if reg != nil {
		opts = append(opts, table.WithMetrics(reg))
	}
	tb, err := table.New(db, usersSchema(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestTableCRUDAndIndexes(t *testing.T) {
	db := newDB(t, "TL2", 1<<13)
	reg := obs.NewRegistry()
	tb := openUsers(t, db, reg)

	for i := int64(0); i < 20; i++ {
		city := fmt.Sprintf("city%d", i%4)
		if err := tb.Insert(user(i, city, fmt.Sprintf("u%d@x", i), 20+i%5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Insert(user(3, "x", "dup@x", 1)); !errors.Is(err, table.ErrDuplicateKey) {
		t.Fatalf("duplicate insert: %v, want ErrDuplicateKey", err)
	}

	row, err := tb.Get(table.Int64(7))
	if err != nil {
		t.Fatal(err)
	}
	if row[1].Text() != "city3" {
		t.Fatalf("Get(7) city = %v", row[1])
	}

	// Statistics: 20 rows, 4 distinct cities, 20 distinct emails.
	if n, _ := tb.RowCount(); n != 20 {
		t.Fatalf("RowCount = %d, want 20", n)
	}
	if c, _ := tb.Cardinality("by_city"); c != 4 {
		t.Fatalf("Cardinality(by_city) = %d, want 4", c)
	}
	if c, _ := tb.Cardinality("by_email"); c != 20 {
		t.Fatalf("Cardinality(by_email) = %d, want 20", c)
	}

	// Upsert moves the index entry and keeps cardinality exact.
	if err := tb.Upsert(user(7, "moved", "u7@x", 99)); err != nil {
		t.Fatal(err)
	}
	if c, _ := tb.Cardinality("by_city"); c != 5 {
		t.Fatalf("Cardinality(by_city) after move = %d, want 5", c)
	}

	// Delete removes row, entries, and stats.
	if err := tb.Delete(table.Int64(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Get(table.Int64(7)); !errors.Is(err, table.ErrRowNotFound) {
		t.Fatalf("Get deleted: %v", err)
	}
	if n, _ := tb.RowCount(); n != 19 {
		t.Fatalf("RowCount after delete = %d, want 19", n)
	}
	if c, _ := tb.Cardinality("by_city"); c != 4 {
		t.Fatalf("Cardinality(by_city) after delete = %d, want 4", c)
	}

	// Both indexes audit clean.
	for _, ix := range []string{"by_city", "by_email"} {
		diffs, err := tb.VerifyIndex(ix)
		if err != nil {
			t.Fatal(err)
		}
		if len(diffs) != 0 {
			t.Fatalf("VerifyIndex(%s): %d diffs: %+v", ix, len(diffs), diffs[0])
		}
	}

	// Metrics flow into the flat schema.
	flat := reg.Snapshot().Flatten()
	if flat["table.rows{table=users}"] != 19 {
		t.Errorf("table.rows gauge = %d, want 19", flat["table.rows{table=users}"])
	}
	if flat["index.entries{idx=users.by_city}"] != 19 {
		t.Errorf("index.entries{by_city} = %d, want 19", flat["index.entries{idx=users.by_city}"])
	}
	if flat["index.maintain.ops{idx=users.by_city,op=insert}"] == 0 {
		t.Error("no insert maintenance ops recorded")
	}
}

func TestUniqueViolationAtomic(t *testing.T) {
	db := newDB(t, "TL2", 1<<13)
	tb := openUsers(t, db, nil)
	if err := tb.Insert(user(1, "ams", "a@x", 30)); err != nil {
		t.Fatal(err)
	}
	// Same email, different pk: the insert must fail and leave nothing —
	// no row, no city entry, no stats drift.
	err := tb.Insert(user(2, "ber", "a@x", 40))
	if !errors.Is(err, index.ErrUniqueViolation) {
		t.Fatalf("duplicate email insert: %v, want ErrUniqueViolation", err)
	}
	if _, err := tb.Get(table.Int64(2)); !errors.Is(err, table.ErrRowNotFound) {
		t.Fatal("failed insert left the row behind")
	}
	if n, _ := tb.RowCount(); n != 1 {
		t.Fatalf("RowCount = %d, want 1", n)
	}
	if c, _ := tb.Cardinality("by_city"); c != 1 {
		t.Fatalf("Cardinality(by_city) = %d, want 1 (no turd from aborted insert)", c)
	}
	for _, ix := range []string{"by_city", "by_email"} {
		diffs, err := tb.VerifyIndex(ix)
		if err != nil || len(diffs) != 0 {
			t.Fatalf("VerifyIndex(%s) after aborted insert: %v %v", ix, diffs, err)
		}
	}
}

// TestPlannerPinnedPlans pins the planner's choices and EXPLAIN strings
// on a known statistics state.
func TestPlannerPinnedPlans(t *testing.T) {
	db := newDB(t, "TL2", 1<<14)
	tb := openUsers(t, db, nil)
	for i := int64(0); i < 100; i++ {
		city := fmt.Sprintf("c%02d", i%10)
		if err := tb.Insert(user(i, city, fmt.Sprintf("u%d@x", i), i%50)); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name    string
		q       table.Query
		explain string
	}{
		{
			"point get",
			table.Query{Conds: []table.Cond{table.Eq("id", table.Int64(5))}},
			`point(users) cost=1`,
		},
		{
			"selective index fetch",
			table.Query{Conds: []table.Cond{table.Eq("city", table.String("c03"))}},
			`index(by_city eq "c03") fetch cost=20`,
		},
		{
			"covering projection",
			table.Query{
				Conds:  []table.Cond{table.Eq("city", table.String("c03"))},
				Fields: []string{"id", "city"},
			},
			`index(by_city eq "c03") covering cost=10`,
		},
		{
			"full scan on unindexed field",
			table.Query{Conds: []table.Cond{table.Eq("age", table.Int64(3))}},
			`scan(users) filter(age=3) cost=100`,
		},
		{
			"order limit via index",
			table.Query{Order: "city", Limit: 5, Fields: []string{"id", "city"}},
			`index(by_city) covering order(city) limit(5) cost=5`,
		},
		{
			"full scan when filter residual",
			table.Query{
				Conds: []table.Cond{table.Eq("city", table.String("c03")), table.Ge("age", table.Int64(10))},
			},
			`index(by_city eq "c03") fetch filter(age>=10) cost=20`,
		},
	}
	for _, c := range cases {
		got, err := tb.Explain(c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.explain {
			t.Errorf("%s:\n  got  %s\n  want %s", c.name, got, c.explain)
		}
	}
}

func TestSelectResults(t *testing.T) {
	db := newDB(t, "TL2", 1<<14)
	tb := openUsers(t, db, nil)
	for i := int64(0); i < 60; i++ {
		city := fmt.Sprintf("c%d", i%3)
		if err := tb.Insert(user(i, city, fmt.Sprintf("u%d@x", i), i)); err != nil {
			t.Fatal(err)
		}
	}

	// Index path and full-scan path must agree.
	q := table.Query{Conds: []table.Cond{table.Eq("city", table.String("c1"))}}
	viaIndex, err := tb.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaIndex) != 20 {
		t.Fatalf("index select: %d rows, want 20", len(viaIndex))
	}
	for _, r := range viaIndex {
		if r[1].Text() != "c1" {
			t.Fatalf("index select returned city %v", r[1])
		}
	}

	// Range + order + limit.
	rows, err := tb.Select(table.Query{
		Conds: []table.Cond{table.Between("age", table.Int64(10), table.Int64(20))},
		Order: "age", Limit: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("range select: %d rows, want 4", len(rows))
	}
	for i, r := range rows {
		if want := int64(10 + i); r[3].Int() != want {
			t.Fatalf("range select row %d age = %d, want %d", i, r[3].Int(), want)
		}
	}

	// Projection keeps field order.
	proj, err := tb.Select(table.Query{
		Conds:  []table.Cond{table.Eq("id", table.Int64(5))},
		Fields: []string{"email", "id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(proj) != 1 || proj[0][0].Text() != "u5@x" || proj[0][1].Int() != 5 {
		t.Fatalf("projection = %v", proj)
	}
}

// TestOnlineBackfill declares an index after the data exists, backfills
// it while writers keep mutating, and audits the result.
func TestOnlineBackfill(t *testing.T) {
	db := newDB(t, "TL2", 1<<14)
	// Open the same keyspace twice: old schema (no by_city) for the
	// pre-existing data, new schema (with it) for the migration.
	old, err := table.New(db, table.Schema{
		Name:   "users",
		Fields: usersSchema().Fields,
		Key:    []string{"id"},
		Indexes: []table.Index{
			{Name: "by_email", Fields: []string{"email"}, Unique: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		if err := old.Insert(user(i, fmt.Sprintf("c%d", i%7), fmt.Sprintf("u%d@x", i), i)); err != nil {
			t.Fatal(err)
		}
	}

	// New schema: writers start maintaining by_city immediately.
	tb := openUsers(t, db, nil)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		defer close(done)
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := i % 200
			switch i % 3 {
			case 0:
				if err := tb.Upsert(user(id, fmt.Sprintf("m%d", i%5), fmt.Sprintf("u%d@x", id), id)); err != nil {
					done <- err
					return
				}
			case 1:
				if err := tb.Delete(table.Int64(id)); err != nil && !errors.Is(err, table.ErrRowNotFound) {
					done <- err
					return
				}
			default:
				if err := tb.Upsert(user(id, fmt.Sprintf("c%d", id%7), fmt.Sprintf("u%d@x", id), id)); err != nil {
					done <- err
					return
				}
			}
			time.Sleep(time.Millisecond / 4)
		}
	}()

	stats, err := tb.BuildIndex("by_city", 32)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batches < 2 {
		t.Fatalf("backfill ran in %d batches, want bounded slices", stats.Batches)
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	diffs, err := tb.VerifyIndex("by_city")
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("backfilled index has %d diffs: %+v", len(diffs), diffs[0])
	}
}
