package table

import (
	"fmt"
	"hash/fnv"
)

// Field declares one typed column of a schema.
type Field struct {
	Name string
	Type Type
}

// Index declares one secondary index over a schema's fields. Entries are
// maintained transactionally with every row write; Unique additionally
// rejects two rows sharing the indexed value.
type Index struct {
	Name   string
	Fields []string // indexed fields, in significance order
	Unique bool
}

// Schema declares a table: its fields, the primary key, and the
// secondary indexes. Field, key, and index names must be non-empty
// identifiers ([A-Za-z_][A-Za-z0-9_]*) so that table names can never
// collide inside composed keys.
type Schema struct {
	Name    string
	Fields  []Field
	Key     []string // primary key fields, in significance order
	Indexes []Index
}

// ident reports whether s is a valid identifier.
func ident(s string) bool {
	if len(s) == 0 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Validate checks the schema's internal consistency: identifier names,
// no duplicate fields or indexes, every key/index field declared, a
// non-empty primary key.
func (s *Schema) Validate() error {
	if !ident(s.Name) {
		return fmt.Errorf("table: bad table name %q", s.Name)
	}
	if len(s.Fields) == 0 {
		return fmt.Errorf("table %s: no fields", s.Name)
	}
	fields := make(map[string]Type, len(s.Fields))
	for _, f := range s.Fields {
		if !ident(f.Name) {
			return fmt.Errorf("table %s: bad field name %q", s.Name, f.Name)
		}
		if f.Type < TInt64 || f.Type > TBytes {
			return fmt.Errorf("table %s: field %s has invalid type", s.Name, f.Name)
		}
		if _, dup := fields[f.Name]; dup {
			return fmt.Errorf("table %s: duplicate field %s", s.Name, f.Name)
		}
		fields[f.Name] = f.Type
	}
	if len(s.Key) == 0 {
		return fmt.Errorf("table %s: empty primary key", s.Name)
	}
	seen := map[string]bool{}
	for _, k := range s.Key {
		if _, ok := fields[k]; !ok {
			return fmt.Errorf("table %s: key field %s not declared", s.Name, k)
		}
		if seen[k] {
			return fmt.Errorf("table %s: duplicate key field %s", s.Name, k)
		}
		seen[k] = true
	}
	idxNames := map[string]bool{}
	for _, ix := range s.Indexes {
		if !ident(ix.Name) {
			return fmt.Errorf("table %s: bad index name %q", s.Name, ix.Name)
		}
		if idxNames[ix.Name] {
			return fmt.Errorf("table %s: duplicate index %s", s.Name, ix.Name)
		}
		idxNames[ix.Name] = true
		if len(ix.Fields) == 0 {
			return fmt.Errorf("table %s: index %s has no fields", s.Name, ix.Name)
		}
		ifSeen := map[string]bool{}
		for _, f := range ix.Fields {
			if _, ok := fields[f]; !ok {
				return fmt.Errorf("table %s: index %s field %s not declared", s.Name, ix.Name, f)
			}
			if ifSeen[f] {
				return fmt.Errorf("table %s: index %s duplicate field %s", s.Name, ix.Name, f)
			}
			ifSeen[f] = true
		}
	}
	return nil
}

// indexID derives the stable 64-bit id an index's entries are keyed
// under: FNV-64a of "table.index". Stable across processes, so a Table
// reopened elsewhere (or over the network client) addresses the same
// entries with no catalog lookup.
func indexID(table, index string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(table))
	h.Write([]byte{'.'})
	h.Write([]byte(index))
	return h.Sum64()
}
