package table

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"

	"rhtm/index"
	"rhtm/kv"
	"rhtm/obs"
)

// ErrDuplicateKey reports an Insert whose primary key already exists.
var ErrDuplicateKey = errors.New("table: row already exists")

// ErrRowNotFound reports a Get or Delete of an absent primary key.
// It aliases kv.ErrNotFound so errors.Is matches either layer.
var ErrRowNotFound = kv.ErrNotFound

// statShards spreads each statistics counter over this many keys so the
// counters don't become a serialization point under concurrent writers.
const statShards = 8

// Option configures a Table.
type Option func(*Table)

// WithMetrics instruments the table and its indexes in reg (see
// metrics.go and index.Metrics for the name schema).
func WithMetrics(reg *obs.Registry) Option {
	return func(t *Table) { t.reg = reg }
}

// runtimeIdx is one declared index resolved against the schema.
type runtimeIdx struct {
	decl     Index
	def      index.Def
	fieldPos []int // positions of decl.Fields in the schema
}

// Table binds a Schema to a kv.DB. All methods are safe for concurrent
// use; several Tables (in several processes, or over the network client)
// may bind the same schema to the same keyspace.
type Table struct {
	schema   Schema
	db       kv.DB
	reg      *obs.Registry
	fieldPos map[string]int
	keyPos   []int
	idxs     []runtimeIdx
	rowPfx   []byte // 'r' ‖ name ‖ 0x00
	statPfx  []byte // 's' ‖ name ‖ 0x00
	met      *metrics
}

// New validates schema and binds it to db.
func New(db kv.DB, schema Schema, opts ...Option) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		schema:   schema,
		db:       db,
		fieldPos: make(map[string]int, len(schema.Fields)),
		rowPfx:   append(append([]byte{'r'}, schema.Name...), 0x00),
		statPfx:  append(append([]byte{'s'}, schema.Name...), 0x00),
	}
	for _, o := range opts {
		o(t)
	}
	for i, f := range schema.Fields {
		t.fieldPos[f.Name] = i
	}
	for _, k := range schema.Key {
		t.keyPos = append(t.keyPos, t.fieldPos[k])
	}
	if t.reg != nil {
		t.met = newMetrics(t.reg, schema.Name)
	}
	for _, ix := range schema.Indexes {
		ri := runtimeIdx{
			decl: ix,
			def: index.Def{
				ID:     indexID(schema.Name, ix.Name),
				Name:   schema.Name + "." + ix.Name,
				Unique: ix.Unique,
			},
		}
		if t.reg != nil {
			ri.def.Metrics = index.NewMetrics(t.reg, ri.def.Name)
		}
		for _, f := range ix.Fields {
			ri.fieldPos = append(ri.fieldPos, t.fieldPos[f])
		}
		t.idxs = append(t.idxs, ri)
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// DB returns the table's backing store.
func (t *Table) DB() kv.DB { return t.db }

// IndexDef returns the resolved index.Def of the named index.
func (t *Table) IndexDef(name string) (index.Def, bool) {
	for _, ix := range t.idxs {
		if ix.decl.Name == name {
			return ix.def, true
		}
	}
	return index.Def{}, false
}

// checkRow validates a full row against the schema's field types.
func (t *Table) checkRow(row []Value) error {
	if len(row) != len(t.schema.Fields) {
		return fmt.Errorf("table %s: row has %d values, schema has %d fields",
			t.schema.Name, len(row), len(t.schema.Fields))
	}
	for i, f := range t.schema.Fields {
		if row[i].Type() != f.Type {
			return fmt.Errorf("table %s: field %s wants %s, got %s",
				t.schema.Name, f.Name, f.Type, row[i].Type())
		}
	}
	return nil
}

// pkOf extracts a row's primary-key values in key order.
func (t *Table) pkOf(row []Value) []Value {
	pk := make([]Value, len(t.keyPos))
	for i, p := range t.keyPos {
		pk[i] = row[p]
	}
	return pk
}

// encodePK ordered-encodes primary-key values (already in key order).
func (t *Table) encodePK(pk []Value) ([]byte, error) {
	if len(pk) != len(t.keyPos) {
		return nil, fmt.Errorf("table %s: primary key has %d fields, got %d values",
			t.schema.Name, len(t.keyPos), len(pk))
	}
	for i, p := range t.keyPos {
		if pk[i].Type() != t.schema.Fields[p].Type {
			return nil, fmt.Errorf("table %s: key field %s wants %s, got %s",
				t.schema.Name, t.schema.Fields[p].Name, t.schema.Fields[p].Type, pk[i].Type())
		}
	}
	return AppendTuple(nil, pk...), nil
}

// rowKey composes the kv key of the row with encoded primary key encPK.
func (t *Table) rowKey(encPK []byte) []byte {
	return append(bytes.Clone(t.rowPfx), encPK...)
}

// rowRange is the kv range holding all of the table's rows.
func (t *Table) rowRange() (start, end []byte) {
	return bytes.Clone(t.rowPfx), index.PrefixSuccessor(t.rowPfx)
}

// idxVal ordered-encodes the indexed fields of row for ix.
func (ix *runtimeIdx) idxVal(row []Value) []byte {
	var v []byte
	for _, p := range ix.fieldPos {
		v = AppendOrdered(v, row[p])
	}
	return v
}

// decodeRow decodes a stored row value.
func (t *Table) decodeRow(v []byte) ([]Value, error) {
	return DecodeRow(v, len(t.schema.Fields))
}

// Insert writes a new row, failing with ErrDuplicateKey if the primary
// key exists. Row write, index maintenance, and statistics commit as one
// transaction.
func (t *Table) Insert(row []Value) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	encPK, err := t.encodePK(t.pkOf(row))
	if err != nil {
		return err
	}
	err = t.db.Update(func(tx kv.Txn) error {
		rev, err := tx.Revision(t.rowKey(encPK))
		if err != nil {
			return err
		}
		if rev != 0 {
			return fmt.Errorf("table %s: key %v: %w", t.schema.Name, t.pkOf(row), ErrDuplicateKey)
		}
		return t.writeTx(tx, nil, row, encPK)
	})
	if err != nil {
		return err
	}
	t.met.op(func(m *metrics) *obs.Counter { return m.inserts })
	t.met.rowsAdd(1)
	return nil
}

// Upsert writes a row, replacing any existing row with the same primary
// key (and moving its index entries).
func (t *Table) Upsert(row []Value) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	encPK, err := t.encodePK(t.pkOf(row))
	if err != nil {
		return err
	}
	var created bool
	err = t.db.Update(func(tx kv.Txn) error {
		created = false
		old, err := t.readTx(tx, encPK)
		if err != nil && !errors.Is(err, kv.ErrNotFound) {
			return err
		}
		created = old == nil
		return t.writeTx(tx, old, row, encPK)
	})
	if err != nil {
		return err
	}
	t.met.op(func(m *metrics) *obs.Counter { return m.upserts })
	if created {
		t.met.rowsAdd(1)
	}
	return nil
}

// Delete removes the row with the given primary key, returning
// ErrRowNotFound when absent.
func (t *Table) Delete(pk ...Value) error {
	encPK, err := t.encodePK(pk)
	if err != nil {
		return err
	}
	err = t.db.Update(func(tx kv.Txn) error {
		old, err := t.readTx(tx, encPK)
		if err != nil {
			return err
		}
		return t.writeTx(tx, old, nil, encPK)
	})
	if err != nil {
		return err
	}
	t.met.op(func(m *metrics) *obs.Counter { return m.deletes })
	t.met.rowsAdd(-1)
	return nil
}

// Get returns the row with the given primary key, or ErrRowNotFound.
func (t *Table) Get(pk ...Value) ([]Value, error) {
	encPK, err := t.encodePK(pk)
	if err != nil {
		return nil, err
	}
	v, err := t.db.Get(t.rowKey(encPK))
	if err != nil {
		return nil, err
	}
	t.met.op(func(m *metrics) *obs.Counter { return m.gets })
	return t.decodeRow(v)
}

// readTx reads and decodes the row with encoded key encPK inside tx,
// returning (nil, kv.ErrNotFound) when absent.
func (t *Table) readTx(tx kv.Txn, encPK []byte) ([]Value, error) {
	v, err := tx.Get(t.rowKey(encPK))
	if err != nil {
		return nil, err
	}
	return t.decodeRow(v)
}

// writeTx applies one row mutation inside tx: old == nil inserts, new ==
// nil deletes, both replaces. It writes the row, maintains every index
// via index.Map, and adjusts the row-count and per-index cardinality
// statistics — all in the caller's transaction, so the engine commits or
// aborts the whole set atomically.
func (t *Table) writeTx(tx kv.Txn, old, new []Value, encPK []byte) error {
	key := t.rowKey(encPK)
	switch {
	case new != nil:
		if err := tx.Put(key, AppendRow(nil, new)); err != nil {
			return err
		}
	case old != nil:
		if err := tx.Delete(key); err != nil {
			return err
		}
	default:
		return nil
	}
	for i := range t.idxs {
		ix := &t.idxs[i]
		var oldE, newE *index.Entry
		if old != nil {
			oldE = &index.Entry{Val: ix.idxVal(old), PK: encPK}
		}
		if new != nil {
			newE = &index.Entry{Val: ix.idxVal(new), PK: encPK}
		}
		if oldE != nil && newE != nil && bytes.Equal(oldE.Val, newE.Val) {
			continue // value unchanged: entry and cardinality both stay
		}
		// Cardinality: the insert creates a new distinct value iff no
		// entry with that value exists yet (the probe joins the read set,
		// so two concurrent "first" inserts of one value conflict instead
		// of double-counting).
		if newE != nil {
			first, err := t.valueAbsent(tx, ix.def, newE.Val)
			if err != nil {
				return err
			}
			if first {
				if err := t.statAdd(tx, t.cardKey(ix, newE.Val), 1); err != nil {
					return err
				}
			}
		}
		if err := index.Map(tx, ix.def, oldE, newE); err != nil {
			return err
		}
		// The delete retired a distinct value iff no entry with the old
		// value remains (the cursor observes the transaction's own
		// delete).
		if oldE != nil {
			gone, err := t.valueAbsent(tx, ix.def, oldE.Val)
			if err != nil {
				return err
			}
			if gone {
				if err := t.statAdd(tx, t.cardKey(ix, oldE.Val), -1); err != nil {
					return err
				}
			}
		}
	}
	switch {
	case old == nil && new != nil:
		return t.statAdd(tx, t.rowsKey(encPK), 1)
	case old != nil && new == nil:
		return t.statAdd(tx, t.rowsKey(encPK), -1)
	}
	return nil
}

// valueAbsent reports whether ix has no entry with encoded value val,
// observing tx's own writes.
func (t *Table) valueAbsent(tx kv.Txn, def index.Def, val []byte) (bool, error) {
	start, end := index.ValueRange(def, val)
	it := tx.Scan(start, end, 1)
	if it.Next() {
		return false, nil
	}
	return true, it.Err()
}

// Statistics: each counter is statShards kv records summed on read. The
// shard a transaction touches is chosen by hashing the row's key (row
// count) or the indexed value (cardinality), so concurrent writers to
// different rows rarely collide on a statistics record.

func statShard(b []byte) byte {
	h := fnv.New32a()
	h.Write(b)
	return byte(h.Sum32() % statShards)
}

// rowsKey is the row-count shard key for a row with encoded key encPK:
// statPfx ‖ "rows" ‖ 0x00 ‖ shard.
func (t *Table) rowsKey(encPK []byte) []byte {
	k := append(bytes.Clone(t.statPfx), "rows"...)
	return append(k, 0x00, statShard(encPK))
}

// cardKey is the cardinality shard key of index ix for encoded value
// val: statPfx ‖ "card." ‖ index ‖ 0x00 ‖ shard.
func (t *Table) cardKey(ix *runtimeIdx, val []byte) []byte {
	k := append(bytes.Clone(t.statPfx), "card."...)
	k = append(k, ix.decl.Name...)
	return append(k, 0x00, statShard(val))
}

// statAdd adjusts one statistics shard inside tx.
func (t *Table) statAdd(tx kv.Txn, key []byte, delta int64) error {
	cur, err := tx.Get(key)
	var n int64
	switch {
	case err == nil:
		n = decodeStat(cur)
	case errors.Is(err, kv.ErrNotFound):
	default:
		return err
	}
	return tx.Put(key, encodeStat(n+delta))
}

func encodeStat(n int64) []byte {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(n) >> (56 - 8*i))
	}
	return b[:]
}

func decodeStat(b []byte) int64 {
	if len(b) != 8 {
		return 0
	}
	var u uint64
	for _, c := range b {
		u = u<<8 | uint64(c)
	}
	return int64(u)
}

// statSum reads and sums one counter's shards: all keys with prefix
// statPfx ‖ name ‖ 0x00.
func (t *Table) statSum(name string) (int64, error) {
	pfx := append(bytes.Clone(t.statPfx), name...)
	pfx = append(pfx, 0x00)
	it := t.db.Scan(pfx, index.PrefixSuccessor(pfx), 0)
	var sum int64
	for it.Next() {
		sum += decodeStat(it.Value())
	}
	return sum, it.Err()
}

// RowCount returns the table's statistics row count (exact under the
// transactional maintenance above).
func (t *Table) RowCount() (int64, error) { return t.statSum("rows") }

// Cardinality returns the named index's distinct-value count.
func (t *Table) Cardinality(idx string) (int64, error) {
	return t.statSum("card." + idx)
}

// source describes index ix's view of the base table for backfill and
// audit.
func (t *Table) source(ix *runtimeIdx) index.Source {
	start, end := t.rowRange()
	pfxLen := len(t.rowPfx)
	return index.Source{
		Start: start,
		End:   end,
		Extract: func(key, value []byte) (*index.Entry, error) {
			row, err := t.decodeRow(value)
			if err != nil {
				return nil, err
			}
			return &index.Entry{Val: ix.idxVal(row), PK: bytes.Clone(key[pfxLen:])}, nil
		},
	}
}

// findIdx resolves an index name.
func (t *Table) findIdx(name string) (*runtimeIdx, error) {
	for i := range t.idxs {
		if t.idxs[i].decl.Name == name {
			return &t.idxs[i], nil
		}
	}
	return nil, fmt.Errorf("table %s: no index %q", t.schema.Name, name)
}

// BuildIndex backfills the named index online (see index.Build); batch
// bounds each closure's footprint (0 = default). Concurrent writers keep
// maintaining the index through their own transactions while it runs.
// Cardinality statistics are rebuilt from the finished index.
func (t *Table) BuildIndex(name string, batch int) (index.BuildStats, error) {
	ix, err := t.findIdx(name)
	if err != nil {
		return index.BuildStats{}, err
	}
	stats, err := index.Build(t.db, ix.def, t.source(ix), batch)
	if err != nil {
		return stats, err
	}
	return stats, t.recountCardinality(ix)
}

// recountCardinality recomputes ix's distinct-value shards from the
// index itself: scan entries counting value changes, then write the
// shard records in one transaction. Writers running concurrently keep
// adjusting the shards afterwards, so the result converges as long as
// the recount's snapshot covered a quiesced or newly built index.
func (t *Table) recountCardinality(ix *runtimeIdx) error {
	counts := make([]int64, statShards)
	it := index.Scan(t.db, ix.def, nil, nil, 0)
	var last []byte
	for it.Next() {
		if last == nil || !bytes.Equal(last, it.Val()) {
			last = bytes.Clone(it.Val())
			counts[statShard(last)]++
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	return t.db.Update(func(tx kv.Txn) error {
		for s := 0; s < statShards; s++ {
			k := append(bytes.Clone(t.statPfx), "card."...)
			k = append(k, ix.decl.Name...)
			k = append(k, 0x00, byte(s))
			if err := tx.Put(k, encodeStat(counts[s])); err != nil {
				return err
			}
		}
		return nil
	})
}

// VerifyIndex audits the named index against the base rows in both
// directions (see index.Verify).
func (t *Table) VerifyIndex(name string) ([]index.Mismatch, error) {
	ix, err := t.findIdx(name)
	if err != nil {
		return nil, err
	}
	return index.Verify(t.db, ix.def, t.source(ix))
}
