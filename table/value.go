// Package table is the record layer over kv.DB: typed rows, declared
// schemas with secondary indexes, and a planner-lite query engine that
// picks index scans versus full scans from per-table statistics.
//
// A Table maps typed records onto ordinary kv keys. Row keys live in the
// user keyspace ('r' ‖ table-name ‖ 0x00 ‖ ordered-encoded primary key),
// row values are a self-delimiting field codec, and every declared index
// is an index.Def whose entries the Table maintains inside the same
// Update closure as the row write — any engine makes the pair atomic for
// free. Because the ordered value codec is memcmp-comparable (encoded
// order = logical order) and prefix-free, a kv.Scan range cursor over
// the index namespace IS an ordered index scan, with no comparator
// plumbed anywhere.
//
// The same Table works over every kv.DB implementation — Local, the
// cluster, and the network client — because it speaks nothing but the DB
// contract.
package table

import (
	"bytes"
	"fmt"
	"strconv"
)

// Type identifies a field's type. The numeric order of the type tags is
// the cross-type sort order of the ordered codec (int64 < string <
// bytes), so composite keys mixing types still compare consistently.
type Type uint8

const (
	// TInt64 is a signed 64-bit integer field.
	TInt64 Type = iota + 1
	// TString is a UTF-8 (or arbitrary) string field.
	TString
	// TBytes is an opaque byte-string field.
	TBytes
)

// String names the type for schema listings and errors.
func (t Type) String() string {
	switch t {
	case TInt64:
		return "int64"
	case TString:
		return "string"
	case TBytes:
		return "bytes"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Value is one typed field value. The zero Value is invalid; construct
// with Int64, String, or Bytes.
type Value struct {
	t Type
	i int64
	b []byte // TString and TBytes payload
}

// Int64 returns an int64 Value.
func Int64(v int64) Value { return Value{t: TInt64, i: v} }

// String returns a string Value.
func String(s string) Value { return Value{t: TString, b: []byte(s)} }

// Bytes returns a bytes Value. The slice is not copied; callers that
// mutate it afterwards must pass a copy.
func Bytes(b []byte) Value { return Value{t: TBytes, b: b} }

// Type returns the value's type (0 for the invalid zero Value).
func (v Value) Type() Type { return v.t }

// Int returns the int64 payload; it is 0 for non-integer values.
func (v Value) Int() int64 { return v.i }

// Text returns the string payload; it is "" for non-string values.
func (v Value) Text() string {
	if v.t != TString {
		return ""
	}
	return string(v.b)
}

// Blob returns the bytes payload; it is nil for non-bytes values.
func (v Value) Blob() []byte {
	if v.t != TBytes {
		return nil
	}
	return v.b
}

// String renders the value for EXPLAIN strings and the minisql REPL.
func (v Value) String() string {
	switch v.t {
	case TInt64:
		return strconv.FormatInt(v.i, 10)
	case TString:
		return strconv.Quote(string(v.b))
	case TBytes:
		return fmt.Sprintf("x'%x'", v.b)
	default:
		return "<invalid>"
	}
}

// Compare orders two values: by type tag first (matching the ordered
// codec's cross-type order), then by payload — numeric order for TInt64,
// lexicographic byte order for TString/TBytes. The result is identical
// to bytes.Compare of the two ordered encodings; TestOrderAgreement and
// FuzzRecordCodec pin that equivalence.
func (v Value) Compare(o Value) int {
	if v.t != o.t {
		if v.t < o.t {
			return -1
		}
		return 1
	}
	switch v.t {
	case TInt64:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	default:
		return bytes.Compare(v.b, o.b)
	}
}

// Equal reports whether the two values have the same type and payload.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }
