package table

import "rhtm/obs"

// metrics instruments one Table in the flat obs schema (DESIGN.md §13):
//
//	table.rows{table=NAME}             gauge   live row count
//	table.ops{table=NAME,op=insert|upsert|delete|get}
//	table.selects{table=NAME}
//	table.planner.picks{table=NAME,plan=point|covering|index|full}
//	table.rows.scanned{table=NAME}     rows or entries a Select visited
//
// A nil *metrics is a valid no-op.
type metrics struct {
	rows        *obs.Gauge
	inserts     *obs.Counter
	upserts     *obs.Counter
	deletes     *obs.Counter
	gets        *obs.Counter
	selects     *obs.Counter
	rowsScanned *obs.Counter
	picks       [4]*obs.Counter // indexed by PlanKind
}

func newMetrics(reg *obs.Registry, name string) *metrics {
	l := func(base string) string { return obs.Name(base, "table", name) }
	pick := func(plan string) *obs.Counter {
		return reg.Counter(obs.Name("table.planner.picks", "table", name, "plan", plan))
	}
	return &metrics{
		rows:        reg.Gauge(l("table.rows")),
		inserts:     reg.Counter(obs.Name("table.ops", "table", name, "op", "insert")),
		upserts:     reg.Counter(obs.Name("table.ops", "table", name, "op", "upsert")),
		deletes:     reg.Counter(obs.Name("table.ops", "table", name, "op", "delete")),
		gets:        reg.Counter(obs.Name("table.ops", "table", name, "op", "get")),
		selects:     reg.Counter(l("table.selects")),
		rowsScanned: reg.Counter(l("table.rows.scanned")),
		picks:       [4]*obs.Counter{pick("point"), pick("covering"), pick("index"), pick("full")},
	}
}

func (m *metrics) rowsAdd(d int64) {
	if m != nil {
		m.rows.Add(d)
	}
}

func (m *metrics) op(c func(*metrics) *obs.Counter) {
	if m != nil {
		c(m).Inc()
	}
}

func (m *metrics) picked(k PlanKind) {
	if m != nil && int(k) < len(m.picks) {
		m.picks[k].Inc()
	}
}

func (m *metrics) scanned(n int) {
	if m != nil {
		m.rowsScanned.Add(uint64(n))
	}
}
