package table

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The ordered codec: every Value encodes to a byte string such that
// bytes.Compare(enc(a), enc(b)) == a.Compare(b), and every encoding is
// prefix-free (no encoding is a prefix of another), so concatenated
// composite keys — index entry keys, primary keys — compare field by
// field and decode unambiguously.
//
// Layout: one type-tag byte, then
//
//	int64   8 bytes big-endian with the sign bit flipped
//	        (two's-complement order becomes unsigned byte order)
//	string  payload with 0x00 escaped to 0x00 0xFF, then the
//	bytes   terminator 0x00 0x01
//
// The escape keeps order: an in-payload 0x00 encodes as 0x00 0xFF which
// is greater than the terminator 0x00 0x01, so "a" < "a\x00b" holds in
// the encoding exactly as it does logically; any byte >= 0x01 compares
// against the terminator's 0x00 first and wins, so "a" < "ab" holds too.
// The terminator makes the encoding self-delimiting, which is what lets
// an index entry key carry value ‖ primary-key with no length prefix.

// Ordered-codec type tags. Their numeric order IS the cross-type sort
// order (and matches the Type constants' order).
const (
	tagInt64  = 0x10
	tagString = 0x20
	tagBytes  = 0x30
)

// escape and terminator bytes of the string/bytes encoding.
const (
	escByte  = 0x00
	escAfter = 0xFF // 0x00 in the payload → 0x00 0xFF
	termByte = 0x01 // end of payload     → 0x00 0x01
)

// ErrBadEncoding reports a byte string that is not a valid ordered
// encoding (unknown tag, truncated payload, or bad escape).
var ErrBadEncoding = errors.New("table: invalid ordered encoding")

// AppendOrdered appends v's ordered encoding to dst and returns the
// extended slice.
func AppendOrdered(dst []byte, v Value) []byte {
	switch v.t {
	case TInt64:
		dst = append(dst, tagInt64)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.i)^(1<<63))
		return append(dst, buf[:]...)
	case TString, TBytes:
		if v.t == TString {
			dst = append(dst, tagString)
		} else {
			dst = append(dst, tagBytes)
		}
		for _, b := range v.b {
			if b == escByte {
				dst = append(dst, escByte, escAfter)
			} else {
				dst = append(dst, b)
			}
		}
		return append(dst, escByte, termByte)
	default:
		panic(fmt.Sprintf("table: AppendOrdered of invalid Value (type %d)", v.t))
	}
}

// EncodeOrdered is AppendOrdered into a fresh slice.
func EncodeOrdered(v Value) []byte { return AppendOrdered(nil, v) }

// DecodeOrdered decodes one ordered-encoded value from the front of b,
// returning the value and the remaining bytes. It inverts AppendOrdered
// exactly; anything else fails with ErrBadEncoding.
func DecodeOrdered(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, nil, fmt.Errorf("%w: empty input", ErrBadEncoding)
	}
	switch b[0] {
	case tagInt64:
		if len(b) < 9 {
			return Value{}, nil, fmt.Errorf("%w: truncated int64", ErrBadEncoding)
		}
		u := binary.BigEndian.Uint64(b[1:9]) ^ (1 << 63)
		return Int64(int64(u)), b[9:], nil
	case tagString, tagBytes:
		payload := make([]byte, 0, len(b))
		rest := b[1:]
		for {
			if len(rest) == 0 {
				return Value{}, nil, fmt.Errorf("%w: unterminated payload", ErrBadEncoding)
			}
			c := rest[0]
			if c != escByte {
				payload = append(payload, c)
				rest = rest[1:]
				continue
			}
			if len(rest) < 2 {
				return Value{}, nil, fmt.Errorf("%w: dangling escape", ErrBadEncoding)
			}
			switch rest[1] {
			case escAfter:
				payload = append(payload, escByte)
				rest = rest[2:]
			case termByte:
				rest = rest[2:]
				if b[0] == tagString {
					return Value{t: TString, b: payload}, rest, nil
				}
				return Value{t: TBytes, b: payload}, rest, nil
			default:
				return Value{}, nil, fmt.Errorf("%w: bad escape 0x00 0x%02x", ErrBadEncoding, rest[1])
			}
		}
	default:
		return Value{}, nil, fmt.Errorf("%w: unknown tag 0x%02x", ErrBadEncoding, b[0])
	}
}

// AppendTuple appends the ordered encodings of vals in order — the
// composite-key form used for primary keys and index entry keys.
func AppendTuple(dst []byte, vals ...Value) []byte {
	for _, v := range vals {
		dst = AppendOrdered(dst, v)
	}
	return dst
}

// DecodeTuple decodes exactly n ordered-encoded values from the front of
// b, returning them and the remaining bytes.
func DecodeTuple(b []byte, n int) ([]Value, []byte, error) {
	vals := make([]Value, 0, n)
	for i := 0; i < n; i++ {
		v, rest, err := DecodeOrdered(b)
		if err != nil {
			return nil, nil, fmt.Errorf("tuple field %d: %w", i, err)
		}
		vals = append(vals, v)
		b = rest
	}
	return vals, b, nil
}

// The row codec: a Table stores a full record as the row value. Unlike
// the ordered codec it never needs to be memcmp-comparable, so it uses
// the compact form — per field: one type-tag byte, then 8 bytes fixed
// for int64 or a uvarint length + raw payload for string/bytes. Fields
// appear in schema order, all fields present (the layer has no NULLs).

// AppendRow appends the row encoding of vals to dst.
func AppendRow(dst []byte, vals []Value) []byte {
	for _, v := range vals {
		switch v.t {
		case TInt64:
			dst = append(dst, tagInt64)
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], uint64(v.i))
			dst = append(dst, buf[:]...)
		case TString, TBytes:
			if v.t == TString {
				dst = append(dst, tagString)
			} else {
				dst = append(dst, tagBytes)
			}
			dst = binary.AppendUvarint(dst, uint64(len(v.b)))
			dst = append(dst, v.b...)
		default:
			panic(fmt.Sprintf("table: AppendRow of invalid Value (type %d)", v.t))
		}
	}
	return dst
}

// DecodeRow decodes exactly n row-encoded values, requiring the input to
// be fully consumed.
func DecodeRow(b []byte, n int) ([]Value, error) {
	vals := make([]Value, 0, n)
	for i := 0; i < n; i++ {
		if len(b) == 0 {
			return nil, fmt.Errorf("%w: row truncated at field %d", ErrBadEncoding, i)
		}
		tag := b[0]
		b = b[1:]
		switch tag {
		case tagInt64:
			if len(b) < 8 {
				return nil, fmt.Errorf("%w: truncated int64 field %d", ErrBadEncoding, i)
			}
			vals = append(vals, Int64(int64(binary.BigEndian.Uint64(b[:8]))))
			b = b[8:]
		case tagString, tagBytes:
			l, m := binary.Uvarint(b)
			if m <= 0 || uint64(len(b)-m) < l {
				return nil, fmt.Errorf("%w: truncated payload field %d", ErrBadEncoding, i)
			}
			payload := make([]byte, l)
			copy(payload, b[m:m+int(l)])
			if tag == tagString {
				vals = append(vals, Value{t: TString, b: payload})
			} else {
				vals = append(vals, Value{t: TBytes, b: payload})
			}
			b = b[m+int(l):]
		default:
			return nil, fmt.Errorf("%w: unknown row tag 0x%02x at field %d", ErrBadEncoding, tag, i)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d fields", ErrBadEncoding, len(b), n)
	}
	return vals, nil
}
