package table

import (
	"bytes"
	"math"
	"testing"
)

// TestOrderedGoldenVectors pins the ordered encoding byte-for-byte: the
// on-disk format of every index entry and primary key. Changing any of
// these breaks every persisted index.
func TestOrderedGoldenVectors(t *testing.T) {
	cases := []struct {
		name string
		v    Value
		enc  []byte
	}{
		{"int64 min", Int64(math.MinInt64), []byte{0x10, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"int64 -1", Int64(-1), []byte{0x10, 0x7F, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}},
		{"int64 0", Int64(0), []byte{0x10, 0x80, 0, 0, 0, 0, 0, 0, 0}},
		{"int64 1", Int64(1), []byte{0x10, 0x80, 0, 0, 0, 0, 0, 0, 1}},
		{"int64 max", Int64(math.MaxInt64), []byte{0x10, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}},
		{"empty string", String(""), []byte{0x20, 0x00, 0x01}},
		{"string a", String("a"), []byte{0x20, 'a', 0x00, 0x01}},
		{"string with NUL", String("a\x00b"), []byte{0x20, 'a', 0x00, 0xFF, 'b', 0x00, 0x01}},
		{"string NUL only", String("\x00"), []byte{0x20, 0x00, 0xFF, 0x00, 0x01}},
		{"empty bytes", Bytes(nil), []byte{0x30, 0x00, 0x01}},
		{"bytes ff", Bytes([]byte{0xFF}), []byte{0x30, 0xFF, 0x00, 0x01}},
	}
	for _, c := range cases {
		got := EncodeOrdered(c.v)
		if !bytes.Equal(got, c.enc) {
			t.Errorf("%s: encoded %x, want %x", c.name, got, c.enc)
		}
		dec, rest, err := DecodeOrdered(got)
		if err != nil {
			t.Fatalf("%s: decode: %v", c.name, err)
		}
		if len(rest) != 0 {
			t.Errorf("%s: %d bytes left after decode", c.name, len(rest))
		}
		if !dec.Equal(c.v) {
			t.Errorf("%s: round-trip %v != %v", c.name, dec, c.v)
		}
	}
}

// TestOrderAgreement checks the codec's defining property on a curated
// set: bytes.Compare of encodings == Value.Compare, including the
// classic traps ("a" vs "a\x00", "a" vs "ab", negative ints, cross-type
// pairs).
func TestOrderAgreement(t *testing.T) {
	vals := []Value{
		Int64(math.MinInt64), Int64(-1_000_000), Int64(-2), Int64(-1),
		Int64(0), Int64(1), Int64(255), Int64(256), Int64(math.MaxInt64),
		String(""), String("\x00"), String("\x00\x00"), String("\x00\x01"),
		String("a"), String("a\x00"), String("a\x00b"), String("a\x01"),
		String("ab"), String("b"), String("\xff"), String("\xff\xff"),
		Bytes(nil), Bytes([]byte{0x00}), Bytes([]byte{0x00, 0x01}),
		Bytes([]byte("a")), Bytes([]byte{0xFF}),
	}
	for _, a := range vals {
		for _, b := range vals {
			want := a.Compare(b)
			got := bytes.Compare(EncodeOrdered(a), EncodeOrdered(b))
			if got != want {
				t.Errorf("order mismatch: %v vs %v: encoded %d, logical %d", a, b, got, want)
			}
		}
	}
}

// TestOrderedPrefixFree checks self-delimiting decode: any tuple of
// encodings concatenated decodes back to exactly the same tuple.
func TestOrderedPrefixFree(t *testing.T) {
	tuples := [][]Value{
		{String("a"), String("")},
		{String(""), String("a")},
		{String("a\x00"), Int64(-1)},
		{Int64(0), Bytes([]byte{0x00, 0x01}), String("x")},
		{Bytes(nil), Bytes(nil)},
	}
	for _, tu := range tuples {
		enc := AppendTuple(nil, tu...)
		dec, rest, err := DecodeTuple(enc, len(tu))
		if err != nil {
			t.Fatalf("tuple %v: %v", tu, err)
		}
		if len(rest) != 0 {
			t.Errorf("tuple %v: %d trailing bytes", tu, len(rest))
		}
		for i := range tu {
			if !dec[i].Equal(tu[i]) {
				t.Errorf("tuple %v: field %d decoded %v", tu, i, dec[i])
			}
		}
	}
}

// TestRowCodecRoundTrip pins the row codec on representative rows.
func TestRowCodecRoundTrip(t *testing.T) {
	rows := [][]Value{
		{Int64(42), String("alice"), Bytes([]byte{1, 2, 3})},
		{Int64(-1), String(""), Bytes(nil)},
		{String("k"), Int64(math.MaxInt64)},
	}
	for _, row := range rows {
		enc := AppendRow(nil, row)
		dec, err := DecodeRow(enc, len(row))
		if err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		for i := range row {
			if !dec[i].Equal(row[i]) {
				t.Errorf("row %v: field %d decoded %v", row, i, dec[i])
			}
		}
	}
	if _, err := DecodeRow([]byte{0x10, 1, 2}, 1); err == nil {
		t.Error("truncated row decoded without error")
	}
	if _, err := DecodeRow(AppendRow(nil, []Value{Int64(1)}), 2); err == nil {
		t.Error("short row decoded without error")
	}
}

// corpusValue maps fuzz bytes onto a Value deterministically.
func corpusValue(kind byte, i int64, payload []byte) Value {
	switch kind % 3 {
	case 0:
		return Int64(i)
	case 1:
		return String(string(payload))
	default:
		return Bytes(payload)
	}
}

// FuzzRecordCodec fuzzes the codec's two contracts at once: ordered
// encodings round-trip exactly and compare identically to their logical
// values (including as concatenated two-field tuples), and row encodings
// round-trip.
func FuzzRecordCodec(f *testing.F) {
	f.Add(byte(0), int64(-1), []byte("a"), byte(1), int64(7), []byte("a\x00b"))
	f.Add(byte(1), int64(0), []byte(""), byte(2), int64(math.MinInt64), []byte{0x00, 0xFF})
	f.Add(byte(2), int64(math.MaxInt64), []byte{0xFF}, byte(0), int64(1), []byte{0x00})
	f.Fuzz(func(t *testing.T, ka byte, ia int64, pa []byte, kb byte, ib int64, pb []byte) {
		a, b := corpusValue(ka, ia, pa), corpusValue(kb, ib, pb)

		ea, eb := EncodeOrdered(a), EncodeOrdered(b)
		if got, want := bytes.Compare(ea, eb), a.Compare(b); got != want {
			t.Fatalf("order mismatch: %v vs %v: encoded %d, logical %d", a, b, got, want)
		}

		da, rest, err := DecodeOrdered(ea)
		if err != nil || len(rest) != 0 || !da.Equal(a) {
			t.Fatalf("ordered round-trip of %v: got %v rest=%d err=%v", a, da, len(rest), err)
		}

		// Tuple order: comparing (a,b) against (b,a) encodings must match
		// the field-by-field comparison.
		tab := AppendTuple(nil, a, b)
		tba := AppendTuple(nil, b, a)
		want := a.Compare(b)
		if want == 0 {
			want = b.Compare(a)
		}
		if got := bytes.Compare(tab, tba); got != want {
			t.Fatalf("tuple order mismatch: %v,%v: encoded %d, logical %d", a, b, got, want)
		}
		dec, rest, err := DecodeTuple(tab, 2)
		if err != nil || len(rest) != 0 || !dec[0].Equal(a) || !dec[1].Equal(b) {
			t.Fatalf("tuple round-trip of %v,%v failed: %v %v", a, b, dec, err)
		}

		row := []Value{a, b}
		rdec, err := DecodeRow(AppendRow(nil, row), 2)
		if err != nil || !rdec[0].Equal(a) || !rdec[1].Equal(b) {
			t.Fatalf("row round-trip of %v,%v failed: %v %v", a, b, rdec, err)
		}
	})
}
