package kv

import (
	"fmt"
	"sync/atomic"

	"rhtm"
	"rhtm/cluster"
	"rhtm/containers"
	"rhtm/store"
	"rhtm/wal"
)

// Durability for the kv layer. OpenLocal and OpenCluster are the recovered
// constructors: they scan the WAL stream(s), replay the committed prefix
// into fresh stores — data entries with their original revisions, lease
// records (ordinary reserved-namespace keys, so they ride the same redo
// frames), revision clocks, and commit-event logs, so watches resume at the
// recovered revision — and return a DB whose every committed write is
// published to a group-commit writer before the operation returns.
//
// The commit-order argument is the store's own: a transaction's WAL record
// carries the revisions its writes stamped, and revisions ride the same
// per-store sequence word that orders the EventLog. The writer's sequence
// gate orders frames by those revisions, so log order equals commit order
// per partition on every engine — hardware or software path, the durable
// log is the same. That is the substitution thesis extended to durability.
//
// After an Open, all writes must go through the DB: setup-path writes
// (store.Put under a raw SetupTx) bypass the log and leave a revision hole
// the sequence gate waits on forever.

// ErrNoWAL reports a durability operation (Checkpoint) on a DB constructed
// without a log. Alias of the wal package's sentinel.
var ErrNoWAL = wal.ErrNoWAL

// WithSyncEvery relaxes the durability promise of an Open'd DB: the data
// streams sync only every n logged transactions instead of at every group
// commit, trading a bounded window of losable transactions for fewer
// barriers. The cluster's coordinator decision log and 2PC applies stay
// fully synchronous regardless — a decided cross-System transaction is
// never torn by a crash, whatever n is.
func WithSyncEvery(n int) Option {
	return func(o *dbOptions) { o.syncEvery = n }
}

// localWAL is a Local DB's durability state.
type localWAL struct {
	w   *wal.Writer
	seq atomic.Uint64 // transaction group ids (log-internal)
}

// copyBytes clones b (captured operations outlive the caller's buffers).
func copyBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// walCommit publishes one committed transaction's captured operations.
func (db *Local) walCommit(ops []wal.Op) error {
	if db.wal == nil || len(ops) == 0 {
		return nil
	}
	return db.wal.w.Commit(db.wal.seq.Add(1), 0, ops)
}

// OpenLocal is NewLocal over a durable device: it recovers st from the
// device's committed prefix, then returns a DB that logs every committed
// transaction to it. The store must be freshly constructed (empty) or
// already populated through a previous incarnation of the same log —
// never written behind the log's back.
func OpenLocal(eng rhtm.Engine, st Storer, dev wal.Device, opts ...Option) (*Local, error) {
	sr, err := wal.OpenDevice(dev)
	if err != nil {
		return nil, err
	}
	if err := replayStorer(st, sr); err != nil {
		return nil, fmt.Errorf("kv: recovery replay: %w", err)
	}
	o := applyOptions(opts)
	db := NewLocal(eng, st, opts...)
	db.leaseSeq.Store(maxLeaseID(st))
	tx := containers.SetupTx(st.System())
	startRevs := map[int]uint64{}
	for i, l := range st.EventLogs() {
		startRevs[i] = l.Rev(tx) + 1
	}
	w := wal.NewWriter(dev, sr.NextLSN, startRevs, wal.Options{SyncEvery: o.syncEvery})
	w.SetMetrics(db.met.walBatch, db.met.walInterval)
	db.wal = &localWAL{w: w}
	st.SetWALStats(func() store.WALStats { return cluster.StoreWALStats(w.Stats()) })
	return db, nil
}

// Checkpoint implements DB: it snapshots the full store state (lease
// records included) in one engine transaction and writes it as an in-log
// checkpoint, bounding the next recovery's replay to the post-checkpoint
// suffix. Concurrent commits keep running; their log publication briefly
// queues behind the checkpoint.
func (db *Local) Checkpoint() error {
	if db.wal == nil {
		return ErrNoWAL
	}
	// The session thread is claimed before the writer freezes so a full
	// pool of committers blocked in walCommit cannot deadlock against the
	// checkpoint's own need for a thread.
	th := db.getThread()
	defer db.putThread(th)
	return db.wal.w.Checkpoint(func() ([]wal.Op, error) {
		var ops []wal.Op
		err := th.Atomic(func(tx rhtm.Tx) error {
			ops = ops[:0] // the body re-executes on engine aborts
			db.st.ScanMeta(tx, func(k, v []byte, rev, lease uint64) bool {
				ops = append(ops, wal.Op{
					Part: db.st.PartitionOf(k), Kind: wal.OpPut,
					Key: k, Value: v, Rev: rev, Lease: lease,
				})
				return true
			})
			return nil
		})
		return ops, err
	})
}

// replayStorer applies one stream's recovery view to a store: checkpoint
// entries first, then the committed transaction groups in log order. A
// host-side per-key revision guard makes the replay idempotent and
// order-tolerant — transactions that committed before a checkpoint's
// snapshot but flushed after it re-apply harmlessly.
func replayStorer(st Storer, sr wal.ScanResult) error {
	tx := containers.SetupTx(st.System())
	applied := map[string]uint64{}
	apply := func(op wal.Op) error {
		k := string(op.Key)
		if op.Rev <= applied[k] {
			return nil
		}
		applied[k] = op.Rev
		if op.Kind == wal.OpPut {
			return st.ReplayPut(tx, op.Key, op.Value, op.Rev, op.Lease)
		}
		st.ReplayDelete(tx, op.Key, op.Rev)
		return nil
	}
	for _, op := range sr.Checkpoint {
		if err := apply(op); err != nil {
			return err
		}
	}
	for _, g := range sr.Txns {
		for _, op := range g.Ops {
			if err := apply(op); err != nil {
				return err
			}
		}
	}
	// The rebuilt rings hold only the replayed writes' events — a
	// checkpoint folds overwritten revisions and deletes away — so the
	// recovered range is marked incomplete: a Watch(fromRev) reaching into
	// it gets an explicit EventLost, never a silently thinned history.
	for _, l := range st.EventLogs() {
		l.MarkHistoryFloor(tx, l.Rev(tx))
	}
	return nil
}

// maxLeaseID scans the recovered lease records for the largest granted id,
// so a recovered DB's grants never collide with logged leases.
func maxLeaseID(st Storer) uint64 {
	tx := containers.SetupTx(st.System())
	var max uint64
	st.ScanLimit(tx, leaseKeyPrefix, leaseKeyPrefixEnd, 0, func(k, _ []byte) bool {
		if id := leaseIDOf(k); id > max {
			max = id
		}
		return true
	})
	return max
}

// --- cluster ---

// walDataName names System i's stream inside a Storage.
func walDataName(i int) string { return fmt.Sprintf("sys-%02d", i) }

// walCoordName names the coordinator decision log.
const walCoordName = "coord"

// OpenCluster is NewCluster over durable storage: one stream per System
// plus the coordinator decision log. Recovery replays each System's
// committed prefix independently, then resolves the coordinator's in-doubt
// cross-System transactions forward: a logged commit decision without its
// resolution mark is re-applied — skipping writes the System streams
// already hold (keyed by the cluster transaction id) — and re-logged
// durably before being marked resolved; a decision that never reached the
// log aborted by omission, its intents lost with the volatile memory.
func OpenCluster(c *cluster.Cluster, stg wal.Storage, opts ...Option) (*ClusterDB, error) {
	o := applyOptions(opts)
	n := c.NumSystems()
	dataDevs := make([]wal.Device, n)
	dataSRs := make([]wal.ScanResult, n)
	// applied records, per cross transaction, the keys whose phase-2
	// applies reached a System stream — the redo filter.
	applied := map[uint64]map[string]bool{}
	var maxTxID uint64
	for i := 0; i < n; i++ {
		dev, err := stg.Device(walDataName(i))
		if err != nil {
			return nil, err
		}
		sr, err := wal.OpenDevice(dev)
		if err != nil {
			return nil, err
		}
		if err := replayStorer(c.Node(i).Store(), sr); err != nil {
			return nil, fmt.Errorf("kv: system %d replay: %w", i, err)
		}
		for _, g := range sr.Txns {
			if !g.Cross {
				continue
			}
			keys := applied[g.TxID]
			if keys == nil {
				keys = map[string]bool{}
				applied[g.TxID] = keys
			}
			for _, op := range g.Ops {
				keys[string(op.Key)] = true
			}
		}
		if sr.MaxTxID > maxTxID {
			maxTxID = sr.MaxTxID
		}
		dataDevs[i], dataSRs[i] = dev, sr
	}
	coordDev, err := stg.Device(walCoordName)
	if err != nil {
		return nil, err
	}
	csr, err := wal.OpenDevice(coordDev)
	if err != nil {
		return nil, err
	}
	if csr.MaxTxID > maxTxID {
		maxTxID = csr.MaxTxID
	}

	// Writers come up before the redo pass so re-applied writes are logged
	// through the ordinary gate (their fresh revisions are next in line).
	dataWriters := make([]*wal.Writer, n)
	for i := 0; i < n; i++ {
		st := c.Node(i).Store()
		tx := containers.SetupTx(st.System())
		startRevs := map[int]uint64{0: st.Events().Rev(tx) + 1}
		dataWriters[i] = wal.NewWriter(dataDevs[i], dataSRs[i].NextLSN, startRevs,
			wal.Options{SyncEvery: o.syncEvery})
	}
	// The decision log is always fully synchronous: its sync is the 2PC
	// commit point.
	coordWriter := wal.NewWriter(coordDev, csr.NextLSN, nil, wal.Options{})

	inDoubt, resolved, err := resolveInDoubt(c, dataWriters, coordWriter, csr.Txns, csr.Marks, applied)
	if err != nil {
		return nil, err
	}

	c.RestoreTxID(maxTxID)
	c.AttachWAL(&cluster.WALSet{Data: dataWriters, Coord: coordWriter})
	db := NewCluster(c, opts...)
	// Recovery ran before the registry existed: record its outcome now,
	// and attach the group-commit histograms for the run ahead. Every
	// System's stream feeds the same pair — the batch-size and
	// sync-interval distributions are per DB, like the stats surface.
	db.met.walInDoubt.Add(inDoubt)
	db.met.walResolved.Add(resolved)
	for i := 0; i < n; i++ {
		dataWriters[i].SetMetrics(db.met.walBatch, db.met.walInterval)
	}
	var maxLease uint64
	for i := 0; i < n; i++ {
		if id := maxLeaseID(c.Node(i).Store()); id > maxLease {
			maxLease = id
		}
	}
	db.leaseSeq.Store(maxLease)
	return db, nil
}

// resolveInDoubt replays the coordinator's undecided commit decisions
// forward, in decision order: a logged decision without its resolution mark
// is re-applied — skipping writes the System streams already hold (the
// applied filter, keyed by cluster transaction id) — re-logged durably, and
// marked resolved. Shared by OpenCluster (crash recovery) and
// ClusterDB.Promote (failover), so the two paths cannot drift.
func resolveInDoubt(c *cluster.Cluster, dataWriters []*wal.Writer, coordWriter *wal.Writer,
	decisions []wal.TxnGroup, marks map[uint64]bool, applied map[uint64]map[string]bool) (inDoubt, resolved uint64, err error) {
	n := c.NumSystems()
	for _, g := range decisions {
		if marks[g.TxID] {
			continue
		}
		inDoubt++
		for _, op := range g.Ops {
			if applied[g.TxID][string(op.Key)] {
				continue
			}
			s := op.Part
			if s < 0 || s >= n {
				return 0, 0, fmt.Errorf("kv: decision %d names system %d of %d", g.TxID, s, n)
			}
			st := c.Node(s).Store()
			tx := containers.SetupTx(st.System())
			rec := wal.Op{Kind: op.Kind, Key: op.Key, Value: op.Value, Lease: op.Lease}
			if op.Kind == wal.OpPut {
				rev, err := st.PutStamped(tx, op.Key, op.Value, op.Lease)
				if err != nil {
					return 0, 0, fmt.Errorf("kv: redo decision %d: %w", g.TxID, err)
				}
				rec.Rev = rev
			} else {
				rev, ok := st.DeleteStamped(tx, op.Key)
				if !ok {
					continue // deleting an absent key: nothing to redo
				}
				rec.Rev = rev
			}
			if err := dataWriters[s].Commit(g.TxID, wal.FlagCross, []wal.Op{rec}); err != nil {
				return 0, 0, err
			}
			if err := dataWriters[s].Sync(); err != nil {
				return 0, 0, err
			}
		}
		if err := coordWriter.Mark(g.TxID, 0); err != nil {
			return 0, 0, err
		}
		resolved++
	}
	if err := coordWriter.Sync(); err != nil {
		return 0, 0, err
	}
	return inDoubt, resolved, nil
}

// Checkpoint implements DB: every System's stream gets a full-state
// checkpoint and the coordinator log truncates its resolved history (see
// cluster.Client.CheckpointWAL for the drain-and-order argument).
func (db *ClusterDB) Checkpoint() error {
	if db.c.WAL() == nil {
		return ErrNoWAL
	}
	cl := db.getClient()
	defer db.putClient(cl)
	return cl.CheckpointWAL()
}
