package kv

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rhtm"
	"rhtm/cluster"
	"rhtm/obs"
)

// ClusterDB implements DB over a cluster.Cluster: the share-nothing
// multi-System router. Single-key operations run as local transactions on
// the owning System; Update closures run the cluster's optimistic buffered
// transaction (local commit when one System owns the footprint, two-phase
// commit when several do); Batch splits into per-System groups with one
// 2PC decision (cluster.Client.Batch); Scan is the validated snapshot scan
// (cluster.Client.ScanSnapshot). The coordination surface rides the same
// machinery: revisions are each System's store clock (validated by 2PC
// prepares), lease records route like any other key — a revoke spanning
// Systems is one 2PC commit — and Watch fans in every System's commit log,
// merged by revision.
//
// ClusterDB is safe for concurrent use by any number of goroutines:
// cluster clients are not, so it multiplexes callers over a session pool of
// at most maxSessions clients, exactly as Local does with engine threads —
// excess callers queue for a free session. Each client registers one
// engine thread per System (permanently), so the bound is what keeps a
// concurrency burst within every System's thread limit.
type ClusterDB struct {
	c     *cluster.Cluster
	clock Clock

	reg *obs.Registry
	met kvMetrics
	trc atomic.Pointer[tracerBox]

	// sampler/flight: DB-level tracing hooks; see Local's field comment.
	sampler *obs.Sampler
	flight  *obs.Flight
	traceID atomic.Uint64

	leaseSeq atomic.Uint64
	hub      *watchHub

	// sessions holds maxSessions slots, pre-filled with nil placeholders;
	// a nil slot lazily becomes a registered client on first use.
	sessions chan *cluster.Client

	// frMu serializes the follower-read clock threads (one lazily-registered
	// engine thread per System — see clockRev in repl.go).
	frMu  sync.Mutex
	frThs []rhtm.Thread
}

// NewCluster builds a DB over c. Call during single-threaded setup.
func NewCluster(c *cluster.Cluster, opts ...Option) *ClusterDB {
	o := applyOptions(opts)
	db := &ClusterDB{c: c, clock: o.clock, sessions: make(chan *cluster.Client, maxSessions)}
	for i := 0; i < maxSessions; i++ {
		db.sessions <- nil
	}
	db.hub = newWatchHub(func() []logSource {
		// One dedicated thread per System drains that System's ring.
		var sources []logSource
		for i := 0; i < c.NumSystems(); i++ {
			n := c.Node(i)
			sources = append(sources, logSource{
				log: n.Store().Events(),
				run: n.Engine().NewThread().Atomic,
			})
		}
		return sources
	})
	db.reg = o.metrics
	db.met = newKVMetrics(db.reg)
	db.hub.lost = db.met.watchLost
	registerWatchDepth(db.reg, db.hub)
	db.trc.Store(&tracerBox{o.tracer})
	db.sampler = obs.NewSampler(o.traceSample)
	db.flight = o.flight
	// 2PC phase timings flow from the cluster's commit path into the DB's
	// registry; nil instruments (WithMetrics(nil)) disable the timing.
	c.SetMetrics(db.met.prepare2PC, db.met.finish2PC)
	return db
}

// Cluster returns the underlying cluster (diagnostics, stats).
func (db *ClusterDB) Cluster() *cluster.Cluster { return db.c }

// SetTracer installs (or, with nil, removes) the per-transaction tracer;
// see Local.SetTracer for the contract.
func (db *ClusterDB) SetTracer(t obs.Tracer) { db.trc.Store(&tracerBox{t}) }

func (db *ClusterDB) tracer() obs.Tracer { return db.trc.Load().t }

func (db *ClusterDB) metrics() *kvMetrics { return &db.met }

// Metrics implements DB: the registry's host-side instruments plus the
// live engine taxonomy summed over every System and the 2PC protocol
// counters; store occupancy is sampled with one read-only transaction per
// System on a pooled client.
func (db *ClusterDB) Metrics() obs.Snapshot {
	snap := db.reg.Snapshot()
	var es rhtm.Stats
	for i := 0; i < db.c.NumSystems(); i++ {
		es.Add(db.c.Node(i).Engine().Live())
	}
	mergeEngineStats(&snap, es)
	cl := db.getClient()
	ss, err := cl.StoreStats()
	db.putClient(cl)
	if err == nil {
		mergeStoreStats(&snap, ss)
	}
	mergeClusterCounters(&snap, db.c.Counters())
	return snap
}

// getClient claims a session, registering its client on first use; it
// blocks while all maxSessions sessions are in flight.
func (db *ClusterDB) getClient() *cluster.Client {
	cl := <-db.sessions
	if cl == nil {
		cl = db.c.NewClient()
	}
	return cl
}

func (db *ClusterDB) putClient(cl *cluster.Client) {
	db.sessions <- cl
}

// mapErr translates cluster/store sentinels to the kv surface.
func mapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, cluster.ErrContention) {
		return fmt.Errorf("kv: %v: %w", err, ErrConflict)
	}
	return err
}

// Get implements DB.
func (db *ClusterDB) Get(key []byte) ([]byte, error) {
	if reservedKey(key) {
		return nil, ErrReservedKey
	}
	cl := db.getClient()
	defer db.putClient(cl)
	v, ok, err := cl.Get(key)
	if err != nil {
		return nil, mapErr(err)
	}
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

// GetRev implements DB.
func (db *ClusterDB) GetRev(key []byte) ([]byte, Revision, error) {
	return getRev(db, key)
}

// Put implements DB.
func (db *ClusterDB) Put(key, value []byte, opts ...PutOption) error {
	if reservedKey(key) {
		return ErrReservedKey
	}
	if o := applyPutOptions(opts); o.lease != 0 {
		return db.Update(func(tx Txn) error {
			return tx.Put(key, value, opts...)
		})
	}
	cl := db.getClient()
	defer db.putClient(cl)
	err := mapErr(cl.Put(key, value))
	if err == nil {
		db.hub.wake()
	}
	return err
}

// PutIf implements DB.
func (db *ClusterDB) PutIf(key, value []byte, rev Revision, opts ...PutOption) error {
	return putIf(db, key, value, rev, opts)
}

// Delete implements DB.
func (db *ClusterDB) Delete(key []byte) error {
	if reservedKey(key) {
		return ErrReservedKey
	}
	cl := db.getClient()
	defer db.putClient(cl)
	ok, err := cl.Delete(key)
	if err != nil {
		return mapErr(err)
	}
	if !ok {
		return ErrNotFound
	}
	db.hub.wake()
	return nil
}

// DeleteIf implements DB.
func (db *ClusterDB) DeleteIf(key []byte, rev Revision) error {
	return deleteIf(db, key, rev)
}

// Update implements DB via the cluster's optimistic buffered transaction.
// The cluster retries its own commit conflicts inside Client.Txn, so the
// loop here serves closures that request a retry with ErrConflict.
func (db *ClusterDB) Update(fn func(tx Txn) error) error {
	_, err := db.UpdateRev(fn)
	return err
}

// UpdateRev is Update paired with the highest revision the committed
// closure's writes were stamped with — 0 for a read-only closure; see
// Local.UpdateRev.
func (db *ClusterDB) UpdateRev(fn func(tx Txn) error) (Revision, error) {
	if db.sampler.Sample() {
		t := db.flight.NewTrace(db.traceID.Add(1), "update")
		rev, err := db.updateRevT(t, fn)
		t.Finish(err)
		return rev, err
	}
	return db.updateRevT(nil, fn)
}

// updateRevT is the UpdateRev core; see Local.updateRevT for the sink
// contract. On a cluster the engine stage covers the whole buffered
// transaction — commit machinery included — and the finer 2pc_prepare /
// wal_sync / 2pc_finish stages come from the client's stage sink, wired
// for the duration of the call (clients are single-session, so the field
// cannot race with another request).
func (db *ClusterDB) updateRevT(sink obs.TraceSink, fn func(tx Txn) error) (Revision, error) {
	cl := db.getClient()
	defer db.putClient(cl)
	trc := db.tracer()
	if sink != nil {
		cl.SetStageSink(sink)
		defer cl.SetStageSink(nil)
	}
	var engStart time.Time
	if sink != nil {
		engStart = time.Now()
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		var start time.Time
		if trc != nil || sink != nil {
			start = time.Now()
		}
		err := cl.Txn(func(t *cluster.Txn) error {
			return fn(&clusterTxn{t: t})
		})
		if trc != nil || sink != nil {
			sp := attemptSpan(db.c.Node(0).Engine().Name(), attempt,
				mapErr(err), cl.LastCommitRev(), time.Since(start), db.clock.Now())
			if trc != nil {
				trc.TxnAttempt(sp)
			}
			if sink != nil {
				sink.Attempt(sp)
			}
		}
		if errors.Is(err, ErrConflict) {
			backoff(attempt)
			continue
		}
		if sink != nil {
			sink.Stage(obs.StageEngine, time.Since(engStart))
		}
		if err != nil {
			return 0, mapErr(err)
		}
		if sink != nil {
			sink.SetCommitRev(cl.LastCommitRev())
		}
		db.hub.wake()
		return cl.LastCommitRev(), nil
	}
	return 0, errRetriesExhausted()
}

// Batch implements DB natively: per-System grouped prepares and a single
// 2PC decision, instead of one buffered-transaction read per key. Batches
// carrying lease attachments fall back to the closure path, where the
// lease records ride the same transaction.
func (db *ClusterDB) Batch(ops []Op) ([]OpResult, error) {
	if db.sampler.Sample() {
		t := db.flight.NewTrace(db.traceID.Add(1), "batch")
		res, err := db.BatchTraced(t, ops)
		t.Finish(err)
		return res, err
	}
	return db.BatchTraced(nil, ops)
}

// BatchTraced is Batch reporting through sink (nil: exactly Batch, minus
// the DB-level sampling). The engine stage covers the whole grouped
// prepare/decide sweep; 2PC phase and WAL stages come from the client's
// stage sink, as in updateRevT.
func (db *ClusterDB) BatchTraced(sink obs.TraceSink, ops []Op) ([]OpResult, error) {
	for _, op := range ops {
		if reservedKey(op.Key) {
			return nil, ErrReservedKey
		}
		if op.Lease != 0 {
			results := make([]OpResult, len(ops))
			if _, err := db.updateRevT(sink, batchBody(ops, results)); err != nil {
				return nil, err
			}
			return results, nil
		}
	}
	cl := db.getClient()
	defer db.putClient(cl)
	if sink != nil {
		cl.SetStageSink(sink)
		defer cl.SetStageSink(nil)
	}
	cops := make([]cluster.BatchOp, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case OpGet:
			cops[i] = cluster.BatchOp{Kind: cluster.BatchGet, Key: op.Key}
		case OpPut:
			cops[i] = cluster.BatchOp{Kind: cluster.BatchPut, Key: op.Key, Value: op.Value}
		default:
			cops[i] = cluster.BatchOp{Kind: cluster.BatchDelete, Key: op.Key}
		}
	}
	var engStart time.Time
	if sink != nil {
		engStart = time.Now()
	}
	cres, err := cl.Batch(cops)
	if sink != nil {
		sink.Stage(obs.StageEngine, time.Since(engStart))
	}
	if err != nil {
		return nil, mapErr(err)
	}
	results := make([]OpResult, len(ops))
	wrote := false
	for i, op := range ops {
		switch op.Kind {
		case OpGet:
			if cres[i].Found {
				results[i] = OpResult{Value: cres[i].Value}
			} else {
				results[i] = OpResult{Err: ErrNotFound}
			}
		case OpPut:
			results[i] = OpResult{}
			wrote = true
		default:
			if !cres[i].Found {
				results[i] = OpResult{Err: ErrNotFound}
			}
			wrote = true
		}
	}
	if wrote {
		if sink != nil {
			sink.SetCommitRev(cl.LastCommitRev())
		}
		db.hub.wake()
	}
	return results, nil
}

// Scan implements DB with the cluster's validated snapshot scan, clamped to
// the user keyspace.
func (db *ClusterDB) Scan(start, end []byte, limit int) Iterator {
	start, end, empty := clampUserRange(start, end)
	if empty {
		return emptyIter()
	}
	entries, err := db.rawScan(start, end, limit)
	if err != nil {
		return errIter(err)
	}
	return &entriesIter{entries: entries}
}

// rawScan implements backend: an unclamped validated snapshot scan.
func (db *ClusterDB) rawScan(start, end []byte, limit int) ([]Entry, error) {
	cl := db.getClient()
	defer db.putClient(cl)
	entries, err := cl.ScanSnapshot(start, end, limit)
	if err != nil {
		return nil, mapErr(err)
	}
	return clusterEntries(entries), nil
}

// Grant implements DB.
func (db *ClusterDB) Grant(ttl uint64) (LeaseID, error) {
	return grant(db, &db.leaseSeq, ttl)
}

// KeepAlive implements DB.
func (db *ClusterDB) KeepAlive(id LeaseID) error { return keepAlive(db, id) }

// Revoke implements DB.
func (db *ClusterDB) Revoke(id LeaseID) error { return revoke(db, id) }

// ExpireLeases implements DB.
func (db *ClusterDB) ExpireLeases() (int, error) { return expireLeases(db) }

// Clock implements DB.
func (db *ClusterDB) Clock() Clock { return db.clock }

// Watch implements DB.
func (db *ClusterDB) Watch(ctx context.Context, prefix []byte, fromRev Revision) (<-chan Event, error) {
	return db.hub.watch(ctx, prefix, fromRev)
}

// clusterEntries converts the cluster's entry type.
func clusterEntries(in []cluster.Entry) []Entry {
	out := make([]Entry, len(in))
	for i, e := range in {
		out[i] = Entry{Key: e.Key, Value: e.Value}
	}
	return out
}

// clusterTxn adapts one cluster buffered transaction to the Txn interface.
type clusterTxn struct {
	t *cluster.Txn
}

// Get implements Txn.
func (t *clusterTxn) Get(key []byte) ([]byte, error) {
	if reservedKey(key) {
		return nil, ErrReservedKey
	}
	return t.getRaw(key)
}

// Revision implements Txn.
func (t *clusterTxn) Revision(key []byte) (Revision, error) {
	if reservedKey(key) {
		return 0, ErrReservedKey
	}
	rev, ok, err := t.t.Revision(key)
	if err != nil {
		return 0, mapErr(err)
	}
	if !ok {
		return 0, nil
	}
	return rev, nil
}

// Put implements Txn. Writes are buffered; capacity errors (ErrArenaFull,
// ErrTooLarge) surface at commit.
func (t *clusterTxn) Put(key, value []byte, opts ...PutOption) error {
	return txnPut(t, key, value, opts)
}

// Delete implements Txn. The cluster transaction buffers deletions blindly,
// but the Txn contract reports absence, so this reads the key first (one
// more recorded read that commit validates).
func (t *clusterTxn) Delete(key []byte) error {
	if reservedKey(key) {
		return ErrReservedKey
	}
	return t.deleteRaw(key)
}

// Scan implements Txn: the validated snapshot overlaid with this
// transaction's buffered writes, every yielded committed entry recorded as
// a read for commit validation; clamped to the user keyspace.
func (t *clusterTxn) Scan(start, end []byte, limit int) Iterator {
	start, end, empty := clampUserRange(start, end)
	if empty {
		return emptyIter()
	}
	return t.scanRaw(start, end, limit)
}

// --- coordTxn ---

func (t *clusterTxn) getRaw(key []byte) ([]byte, error) {
	v, ok, err := t.t.Get(key)
	if err != nil {
		return nil, mapErr(err)
	}
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

func (t *clusterTxn) putRaw(key, value []byte, lease LeaseID) error {
	t.t.PutLease(key, value, lease)
	return nil
}

func (t *clusterTxn) deleteRaw(key []byte) error {
	_, ok, err := t.t.Get(key)
	if err != nil {
		return mapErr(err)
	}
	if !ok {
		return ErrNotFound
	}
	t.t.Delete(key)
	return nil
}

func (t *clusterTxn) leaseOf(key []byte) (LeaseID, error) {
	lease, ok, err := t.t.Lease(key)
	if err != nil {
		return 0, mapErr(err)
	}
	if !ok {
		return 0, nil
	}
	return lease, nil
}

func (t *clusterTxn) scanRaw(start, end []byte, limit int) Iterator {
	entries, err := t.t.Scan(start, end, limit)
	if err != nil {
		return errIter(mapErr(err))
	}
	return &entriesIter{entries: clusterEntries(entries)}
}

// WaitWatchIdle blocks until the watch hub's poller has stopped; call it
// after cancelling every Watch before taking engine snapshots or running
// raw-memory validation (the hub's per-System threads are then guaranteed
// outside Atomic).
func (db *ClusterDB) WaitWatchIdle() { db.hub.waitIdle() }
