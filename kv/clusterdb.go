package kv

import (
	"errors"
	"fmt"

	"rhtm/cluster"
)

// Cluster implements DB over a cluster.Cluster: the share-nothing
// multi-System router. Single-key operations run as local transactions on
// the owning System; Update closures run the cluster's optimistic buffered
// transaction (local commit when one System owns the footprint, two-phase
// commit when several do); Batch splits into per-System groups with one
// 2PC decision (cluster.Client.Batch); Scan is the validated snapshot scan
// (cluster.Client.ScanSnapshot).
//
// ClusterDB is safe for concurrent use by any number of goroutines:
// cluster clients are not, so it multiplexes callers over a session pool of
// at most maxSessions clients, exactly as Local does with engine threads —
// excess callers queue for a free session. Each client registers one
// engine thread per System (permanently), so the bound is what keeps a
// concurrency burst within every System's thread limit.
type ClusterDB struct {
	c *cluster.Cluster

	// sessions holds maxSessions slots, pre-filled with nil placeholders;
	// a nil slot lazily becomes a registered client on first use.
	sessions chan *cluster.Client
}

// NewCluster builds a DB over c. Call during single-threaded setup.
func NewCluster(c *cluster.Cluster) *ClusterDB {
	db := &ClusterDB{c: c, sessions: make(chan *cluster.Client, maxSessions)}
	for i := 0; i < maxSessions; i++ {
		db.sessions <- nil
	}
	return db
}

// Cluster returns the underlying cluster (diagnostics, stats).
func (db *ClusterDB) Cluster() *cluster.Cluster { return db.c }

// getClient claims a session, registering its client on first use; it
// blocks while all maxSessions sessions are in flight.
func (db *ClusterDB) getClient() *cluster.Client {
	cl := <-db.sessions
	if cl == nil {
		cl = db.c.NewClient()
	}
	return cl
}

func (db *ClusterDB) putClient(cl *cluster.Client) {
	db.sessions <- cl
}

// mapErr translates cluster/store sentinels to the kv surface.
func mapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, cluster.ErrContention) {
		return fmt.Errorf("kv: %v: %w", err, ErrConflict)
	}
	return err
}

// Get implements DB.
func (db *ClusterDB) Get(key []byte) ([]byte, error) {
	cl := db.getClient()
	defer db.putClient(cl)
	v, ok, err := cl.Get(key)
	if err != nil {
		return nil, mapErr(err)
	}
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

// Put implements DB.
func (db *ClusterDB) Put(key, value []byte) error {
	cl := db.getClient()
	defer db.putClient(cl)
	return mapErr(cl.Put(key, value))
}

// Delete implements DB.
func (db *ClusterDB) Delete(key []byte) error {
	cl := db.getClient()
	defer db.putClient(cl)
	ok, err := cl.Delete(key)
	if err != nil {
		return mapErr(err)
	}
	if !ok {
		return ErrNotFound
	}
	return nil
}

// Update implements DB via the cluster's optimistic buffered transaction.
// The cluster retries its own commit conflicts inside Client.Txn, so the
// loop here serves closures that request a retry with ErrConflict.
func (db *ClusterDB) Update(fn func(tx Txn) error) error {
	cl := db.getClient()
	defer db.putClient(cl)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		err := cl.Txn(func(t *cluster.Txn) error {
			return fn(&clusterTxn{t: t})
		})
		if !errors.Is(err, ErrConflict) {
			return mapErr(err)
		}
		backoff(attempt)
	}
	return errRetriesExhausted()
}

// Batch implements DB natively: per-System grouped prepares and a single
// 2PC decision, instead of one buffered-transaction read per key.
func (db *ClusterDB) Batch(ops []Op) ([]OpResult, error) {
	cl := db.getClient()
	defer db.putClient(cl)
	cops := make([]cluster.BatchOp, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case OpGet:
			cops[i] = cluster.BatchOp{Kind: cluster.BatchGet, Key: op.Key}
		case OpPut:
			cops[i] = cluster.BatchOp{Kind: cluster.BatchPut, Key: op.Key, Value: op.Value}
		default:
			cops[i] = cluster.BatchOp{Kind: cluster.BatchDelete, Key: op.Key}
		}
	}
	cres, err := cl.Batch(cops)
	if err != nil {
		return nil, mapErr(err)
	}
	results := make([]OpResult, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case OpGet:
			if cres[i].Found {
				results[i] = OpResult{Value: cres[i].Value}
			} else {
				results[i] = OpResult{Err: ErrNotFound}
			}
		case OpPut:
			results[i] = OpResult{}
		default:
			if !cres[i].Found {
				results[i] = OpResult{Err: ErrNotFound}
			}
		}
	}
	return results, nil
}

// Scan implements DB with the cluster's validated snapshot scan.
func (db *ClusterDB) Scan(start, end []byte, limit int) Iterator {
	cl := db.getClient()
	defer db.putClient(cl)
	entries, err := cl.ScanSnapshot(start, end, limit)
	if err != nil {
		return errIter(mapErr(err))
	}
	return &entriesIter{entries: clusterEntries(entries)}
}

// clusterEntries converts the cluster's entry type.
func clusterEntries(in []cluster.Entry) []Entry {
	out := make([]Entry, len(in))
	for i, e := range in {
		out[i] = Entry{Key: e.Key, Value: e.Value}
	}
	return out
}

// clusterTxn adapts one cluster buffered transaction to the Txn interface.
type clusterTxn struct {
	t *cluster.Txn
}

// Get implements Txn.
func (t *clusterTxn) Get(key []byte) ([]byte, error) {
	v, ok, err := t.t.Get(key)
	if err != nil {
		return nil, mapErr(err)
	}
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

// Put implements Txn. Writes are buffered; capacity errors (ErrArenaFull,
// ErrTooLarge) surface at commit.
func (t *clusterTxn) Put(key, value []byte) error {
	t.t.Put(key, value)
	return nil
}

// Delete implements Txn. The cluster transaction buffers deletions blindly,
// but the Txn contract reports absence, so this reads the key first (one
// more recorded read that commit validates).
func (t *clusterTxn) Delete(key []byte) error {
	_, ok, err := t.t.Get(key)
	if err != nil {
		return mapErr(err)
	}
	if !ok {
		return ErrNotFound
	}
	t.t.Delete(key)
	return nil
}

// Scan implements Txn: the validated snapshot overlaid with this
// transaction's buffered writes, every yielded committed entry recorded as
// a read for commit validation.
func (t *clusterTxn) Scan(start, end []byte, limit int) Iterator {
	entries, err := t.t.Scan(start, end, limit)
	if err != nil {
		return errIter(mapErr(err))
	}
	return &entriesIter{entries: clusterEntries(entries)}
}
