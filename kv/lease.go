package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// Leases, shared by both backends. A lease is one record in the reserved
// keyspace — key 0x00 'L' <8-byte id>, value (deadline, ttl, attached-key
// list) — written and read with the same closure transactions as user
// data. That placement is the design: grant, keep-alive, attach, revoke and
// expiry are ordinary transactions, so on the cluster a revoke whose keys
// span Systems is one two-phase commit, and an engine abort anywhere rolls
// the whole lease operation back. Expiry is lazy and pump-driven: a lease
// past its deadline stays effective until ExpireLeases (or Revoke) runs —
// etcd behaves the same way — and deadlines are measured on the DB's
// injected virtual Clock, so tests drive expiry deterministically.
//
// The attached-key list grows by one entry per distinct attach and is
// reconciled at revoke time against each key's lease *stamp* (the entry's
// lease word in the store): a key overwritten without the lease option
// detaches, so revoke deletes only keys still stamped with the lease id.
// Stale list entries cost a read at revoke, never a wrong delete.

// leaseKeyPrefix is the reserved-namespace prefix of lease records.
var (
	leaseKeyPrefix    = []byte{0x00, 'L'}
	leaseKeyPrefixEnd = []byte{0x00, 'L' + 1}
)

// leaseKey returns the record key of lease id.
func leaseKey(id LeaseID) []byte {
	k := make([]byte, 0, len(leaseKeyPrefix)+8)
	k = append(k, leaseKeyPrefix...)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	return append(k, b[:]...)
}

// leaseIDOf extracts the id from a lease record key.
func leaseIDOf(key []byte) LeaseID {
	return binary.BigEndian.Uint64(key[len(leaseKeyPrefix):])
}

// leaseRecord is the decoded value of a lease record.
type leaseRecord struct {
	deadline uint64
	ttl      uint64
	keys     [][]byte
}

func (lr *leaseRecord) encode() []byte {
	n := 24
	for _, k := range lr.keys {
		n += 4 + len(k)
	}
	out := make([]byte, 24, n)
	binary.LittleEndian.PutUint64(out[0:], lr.deadline)
	binary.LittleEndian.PutUint64(out[8:], lr.ttl)
	binary.LittleEndian.PutUint64(out[16:], uint64(len(lr.keys)))
	for _, k := range lr.keys {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(k)))
		out = append(out, l[:]...)
		out = append(out, k...)
	}
	return out
}

func decodeLease(b []byte) (leaseRecord, error) {
	if len(b) < 24 {
		return leaseRecord{}, fmt.Errorf("kv: corrupt lease record (%d bytes)", len(b))
	}
	lr := leaseRecord{
		deadline: binary.LittleEndian.Uint64(b[0:]),
		ttl:      binary.LittleEndian.Uint64(b[8:]),
	}
	n := binary.LittleEndian.Uint64(b[16:])
	off := 24
	for i := uint64(0); i < n; i++ {
		if off+4 > len(b) {
			return leaseRecord{}, fmt.Errorf("kv: corrupt lease key list")
		}
		l := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if off+l > len(b) {
			return leaseRecord{}, fmt.Errorf("kv: corrupt lease key list")
		}
		lr.keys = append(lr.keys, b[off:off+l])
		off += l
	}
	return lr, nil
}

func (lr *leaseRecord) hasKey(key []byte) bool {
	for _, k := range lr.keys {
		if string(k) == string(key) {
			return true
		}
	}
	return false
}

// getLease reads and decodes lease id inside a transaction, mapping
// absence to ErrLeaseNotFound.
func getLease(ct coordTxn, id LeaseID) (leaseRecord, error) {
	raw, err := ct.getRaw(leaseKey(id))
	if errors.Is(err, ErrNotFound) {
		return leaseRecord{}, fmt.Errorf("kv: lease %d: %w", id, ErrLeaseNotFound)
	}
	if err != nil {
		return leaseRecord{}, err
	}
	return decodeLease(raw)
}

// leaseAttach is the WithLease half of txnPut: store the key stamped with
// the lease and record it in the lease's key list, all in the caller's
// transaction.
func leaseAttach(ct coordTxn, key, value []byte, id LeaseID) error {
	lr, err := getLease(ct, id)
	if err != nil {
		return err
	}
	if !lr.hasKey(key) {
		lr.keys = append(lr.keys, key)
		if err := ct.putRaw(leaseKey(id), lr.encode(), 0); err != nil {
			return err
		}
	}
	return ct.putRaw(key, value, id)
}

// grant mints a fresh lease: ids come from the DB's host-side sequence
// (uniqueness needs no transaction), the record is one transactional put.
func grant(db backend, seq *atomic.Uint64, ttl uint64) (LeaseID, error) {
	id := seq.Add(1)
	lr := leaseRecord{deadline: db.Clock().Now() + ttl, ttl: ttl}
	err := db.Update(func(tx Txn) error {
		return tx.(coordTxn).putRaw(leaseKey(id), lr.encode(), 0)
	})
	if err != nil {
		return 0, err
	}
	db.metrics().leaseGrants.Inc()
	return id, nil
}

// keepAlive pushes the lease deadline to now + granted ttl.
func keepAlive(db backend, id LeaseID) error {
	err := db.Update(func(tx Txn) error {
		ct := tx.(coordTxn)
		lr, err := getLease(ct, id)
		if err != nil {
			return err
		}
		lr.deadline = db.Clock().Now() + lr.ttl
		return ct.putRaw(leaseKey(id), lr.encode(), 0)
	})
	if err == nil {
		db.metrics().leaseKeepAlives.Inc()
	}
	return err
}

// revoke deletes the lease record and every key still stamped with the
// lease, as one transaction.
func revoke(db backend, id LeaseID) error {
	err := db.Update(func(tx Txn) error {
		return revokeInTxn(tx.(coordTxn), id)
	})
	if err == nil {
		db.metrics().leaseRevokes.Inc()
	}
	return err
}

func revokeInTxn(ct coordTxn, id LeaseID) error {
	lr, err := getLease(ct, id)
	if err != nil {
		return err
	}
	for _, key := range lr.keys {
		stamp, err := ct.leaseOf(key)
		if err != nil {
			return err
		}
		if stamp != id {
			continue // detached by a later un-leased Put, or already gone
		}
		if err := ct.deleteRaw(key); err != nil {
			return err
		}
	}
	return ct.deleteRaw(leaseKey(id))
}

// expireLeases scans the lease records, then revokes each one past its
// deadline in its own transaction — the deadline is re-checked inside, so
// concurrent pumps (or a racing KeepAlive) never double-expire or kill a
// refreshed lease. The listing scan is a snapshot: leases granted after it
// are caught by the next pump.
func expireLeases(db backend) (int, error) {
	entries, err := db.rawScan(leaseKeyPrefix, leaseKeyPrefixEnd, 0)
	if err != nil {
		return 0, err
	}
	now := db.Clock().Now()
	expired := 0
	for _, e := range entries {
		lr, err := decodeLease(e.Value)
		if err != nil {
			return expired, err
		}
		if lr.deadline > now {
			continue
		}
		id := leaseIDOf(e.Key)
		did := false
		err = db.Update(func(tx Txn) error {
			did = false
			ct := tx.(coordTxn)
			cur, err := getLease(ct, id)
			if errors.Is(err, ErrLeaseNotFound) {
				return nil // a concurrent pump won the race
			}
			if err != nil {
				return err
			}
			if cur.deadline > now {
				return nil // refreshed since the listing
			}
			did = true
			return revokeInTxn(ct, id)
		})
		if err != nil {
			return expired, err
		}
		if did {
			expired++
			db.metrics().leaseExpired.Inc()
		}
	}
	return expired, nil
}
