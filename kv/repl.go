package kv

import (
	"errors"
	"fmt"

	"rhtm"
	"rhtm/cluster"
	"rhtm/containers"
	"rhtm/store"
	"rhtm/wal"
)

// Follower reads and failover promotion for the kv layer. The repl package
// tails a primary DB's WAL stream(s) into replica Systems via the replay
// entry points; this file is the kv-side surface that makes those replicas
// useful: provably-stale reads (FollowerReader), the writer accessor the
// tailer hooks, and the Promote constructors that turn a caught-up replica
// into the stream's next primary under a new fenced epoch.

// ErrTooStale reports a ReadAt whose revision floor is above the replica's
// applied watermark: the follower cannot yet prove it has the caller's
// required prefix. Retry against the primary, or wait for the watermark.
var ErrTooStale = errors.New("kv: follower watermark below requested revision floor")

// ErrFenced reports a write on a DB whose WAL writer was fenced by a
// promotion — the deposed primary's commits, rejected before any frame
// reaches the device. Alias of the wal package's sentinel.
var ErrFenced = wal.ErrFenced

// FollowerReader is the follower-read surface. Both DB backends implement
// it, and the repl package's Follower exposes it for replicas.
//
// The staleness contract: the returned watermark is the owning partition's
// revision clock observed no earlier than the read itself, so rev <=
// watermark always — a follower read can never observe a revision above the
// watermark it advertises. Against the primary the watermark is simply the
// current clock; against a replica it is how far the apply pump has
// provably caught up, making staleness measurable with a primary GetRev.
type FollowerReader interface {
	// FollowerGet reads key, returning its value, the revision it was
	// written at, and the watermark the read is provably current to.
	// An absent key returns ErrNotFound with the watermark still valid.
	FollowerGet(key []byte) (value []byte, rev, watermark Revision, err error)
	// ReadAt is FollowerGet with a staleness bound: it fails with
	// ErrTooStale when the watermark has not reached floor, so a caller
	// holding a primary revision (from GetRev) can demand read-your-writes.
	ReadAt(key []byte, floor Revision) (value []byte, rev, watermark Revision, err error)
}

var (
	_ FollowerReader = (*Local)(nil)
	_ FollowerReader = (*ClusterDB)(nil)
)

// WAL returns the DB's group-commit writer, nil when the DB was constructed
// without a log — the replication layer's hook for append wakeups
// (Writer.SetOnAppend) and epoch fencing (Writer.Fence).
func (db *Local) WAL() *wal.Writer {
	if db.wal == nil {
		return nil
	}
	return db.wal.w
}

// WALDataName names System i's stream inside a wal.Storage — exported so
// the replication layer opens the same devices OpenCluster does.
func WALDataName(i int) string { return walDataName(i) }

// WALCoordName names the coordinator decision log inside a wal.Storage.
const WALCoordName = walCoordName

// FollowerGet implements FollowerReader. One engine transaction reads the
// key and its partition's revision clock together, so the pair is a
// consistent snapshot: the clock *is* the watermark, and rev <= watermark
// holds by construction on any engine.
func (db *Local) FollowerGet(key []byte) ([]byte, Revision, Revision, error) {
	return db.followerRead(key, 0)
}

// ReadAt implements FollowerReader.
func (db *Local) ReadAt(key []byte, floor Revision) ([]byte, Revision, Revision, error) {
	return db.followerRead(key, floor)
}

func (db *Local) followerRead(key []byte, floor Revision) ([]byte, Revision, Revision, error) {
	if reservedKey(key) {
		return nil, 0, 0, ErrReservedKey
	}
	th := db.getThread()
	defer db.putThread(th)
	var val []byte
	var rev, wm uint64
	var ok bool
	if err := th.Atomic(func(tx rhtm.Tx) error {
		val, rev, _, ok = db.st.Read(tx, key)
		wm = db.st.EventLogs()[db.st.PartitionOf(key)].Rev(tx)
		return nil
	}); err != nil {
		return nil, 0, 0, err
	}
	if wm < floor {
		return nil, 0, wm, fmt.Errorf("kv: watermark %d below floor %d: %w", wm, floor, ErrTooStale)
	}
	if !ok {
		return nil, 0, wm, ErrNotFound
	}
	return val, rev, wm, nil
}

// FollowerGet implements FollowerReader. The value and revision come from
// the ordinary intent-respecting read path first; the owning System's
// revision clock is read after, so watermark >= rev by ordering (the clock
// only advances).
func (db *ClusterDB) FollowerGet(key []byte) ([]byte, Revision, Revision, error) {
	return db.followerRead(key, 0)
}

// ReadAt implements FollowerReader.
func (db *ClusterDB) ReadAt(key []byte, floor Revision) ([]byte, Revision, Revision, error) {
	return db.followerRead(key, floor)
}

func (db *ClusterDB) followerRead(key []byte, floor Revision) ([]byte, Revision, Revision, error) {
	if reservedKey(key) {
		return nil, 0, 0, ErrReservedKey
	}
	sys := db.c.Router().SystemFor(key)
	if floor > 0 {
		// The floor must be checked against the clock BEFORE the value
		// read: clock >= floor then proves every commit up to floor is
		// already visible to the read that follows. (The watermark
		// returned to the caller is a second read, taken after — that
		// direction proves rev <= watermark.)
		wm, err := db.clockRev(sys)
		if err != nil {
			return nil, 0, 0, err
		}
		if wm < floor {
			return nil, 0, wm, fmt.Errorf("kv: watermark %d below floor %d: %w", wm, floor, ErrTooStale)
		}
	}
	var val []byte
	var rev Revision
	present := false
	err := db.Update(func(tx Txn) error {
		v, gerr := tx.Get(key)
		if errors.Is(gerr, ErrNotFound) {
			present = false
			return nil
		}
		if gerr != nil {
			return gerr
		}
		r, gerr := tx.Revision(key)
		if gerr != nil {
			return gerr
		}
		val, rev, present = v, r, true
		return nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	wm, err := db.clockRev(sys)
	if err != nil {
		return nil, 0, 0, err
	}
	if !present {
		return nil, 0, wm, ErrNotFound
	}
	return val, rev, wm, nil
}

// clockRev reads System sys's revision clock on a lazily-registered
// dedicated thread (engine threads are not concurrency-safe, so the small
// pool is mutex-serialized — watermark reads are single-word transactions).
func (db *ClusterDB) clockRev(sys int) (Revision, error) {
	db.frMu.Lock()
	defer db.frMu.Unlock()
	if db.frThs == nil {
		db.frThs = make([]rhtm.Thread, db.c.NumSystems())
	}
	th := db.frThs[sys]
	if th == nil {
		th = db.c.Node(sys).Engine().NewThread()
		db.frThs[sys] = th
	}
	var wm uint64
	err := th.Atomic(func(tx rhtm.Tx) error {
		wm = db.c.Node(sys).Store().Events().Rev(tx)
		return nil
	})
	return wm, err
}

// --- promotion ---

// PromoteState carries what a promoted Local writer needs to continue the
// stream: the next LSN past the drained log, the new epoch, and the
// membership blob the epoch frame records. SyncEvery mirrors WithSyncEvery.
type PromoteState struct {
	NextLSN    uint64
	Epoch      uint64
	Membership []byte
	SyncEvery  int
}

// Promote attaches a WAL writer to a DB built without one — the failover
// step that turns a caught-up replica into the stream's primary. dev is the
// stream's device, already drained and truncated to a clean frame boundary
// (the repl layer's tailer cursor). The first frame of the new reign is a
// synced epoch record: durable evidence the old epoch's writer was fenced
// before any later frame.
//
// The caller must quiesce the DB first (no in-flight operations): promotion
// swaps the durability hook, marks the event-history floor, and seeds the
// sequence gate from the current clocks, none of which tolerates concurrent
// commits. The repl layer's Group.Promote provides that quiescence.
func (db *Local) Promote(dev wal.Device, s PromoteState) error {
	if db.wal != nil {
		return fmt.Errorf("kv: promote: DB already owns a log")
	}
	th := db.getThread()
	defer db.putThread(th)
	startRevs := map[int]uint64{}
	var maxLease uint64
	if err := th.Atomic(func(tx rhtm.Tx) error {
		// The body re-executes on engine aborts: rebuild from scratch.
		maxLease = 0
		for i, l := range db.st.EventLogs() {
			rev := l.Rev(tx)
			startRevs[i] = rev + 1
			// Replayed rings hold only what the stream carried (checkpoint
			// units fold overwritten history), so the recovered range is
			// marked incomplete — a Watch reaching into it gets an explicit
			// EventLost, exactly as crash recovery promises.
			l.MarkHistoryFloor(tx, rev)
		}
		db.st.ScanLimit(tx, leaseKeyPrefix, leaseKeyPrefixEnd, 0, func(k, _ []byte) bool {
			if id := leaseIDOf(k); id > maxLease {
				maxLease = id
			}
			return true
		})
		return nil
	}); err != nil {
		return err
	}
	w := wal.NewWriter(dev, s.NextLSN, startRevs, wal.Options{SyncEvery: s.SyncEvery})
	if err := w.AppendEpoch(s.Epoch, s.Membership); err != nil {
		return err
	}
	w.SetMetrics(db.met.walBatch, db.met.walInterval)
	db.wal = &localWAL{w: w}
	db.st.SetWALStats(func() store.WALStats { return cluster.StoreWALStats(w.Stats()) })
	if maxLease > db.leaseSeq.Load() {
		db.leaseSeq.Store(maxLease)
	}
	return nil
}

// ClusterPromoteState is PromoteState for a cluster: per-System stream
// cursors, the coordinator cursor, and the coordinator's recovery view as
// the follower's pumps tracked it live — undecided decisions are resolved
// forward exactly as OpenCluster resolves them after a crash.
type ClusterPromoteState struct {
	// DataNextLSN[i] is System i's next LSN; CoordNextLSN the decision
	// log's.
	DataNextLSN  []uint64
	CoordNextLSN uint64
	// MaxTxID floors the promoted coordinator's transaction-id counter.
	MaxTxID uint64
	// Decisions and Marks mirror wal.ScanResult.Txns/Marks for the decision
	// log: commit decisions after the last global mark, and the
	// per-transaction resolutions among them.
	Decisions []wal.TxnGroup
	Marks     map[uint64]bool
	// Applied records, per cross transaction, the keys whose phase-2 applies
	// reached a System stream — the redo filter, tracked live by the data
	// pumps from FlagCross groups.
	Applied map[uint64]map[string]bool

	Epoch      uint64
	Membership []byte
	SyncEvery  int
}

// Promote attaches WAL writers to a cluster DB built without them,
// resolving in-doubt cross-System decisions forward first — the cluster
// failover step. Devices must be drained and truncated to clean frame
// boundaries; the same quiescence contract as Local.Promote applies. Epoch
// frames are the first of the new reign on every stream (the coordinator's
// carries the membership blob).
func (db *ClusterDB) Promote(dataDevs []wal.Device, coordDev wal.Device, s ClusterPromoteState) error {
	if db.c.WAL() != nil {
		return fmt.Errorf("kv: promote: cluster already owns a log")
	}
	n := db.c.NumSystems()
	if len(dataDevs) != n || len(s.DataNextLSN) != n {
		return fmt.Errorf("kv: promote: %d devices / %d cursors for %d systems",
			len(dataDevs), len(s.DataNextLSN), n)
	}
	dataWriters := make([]*wal.Writer, n)
	for i := 0; i < n; i++ {
		st := db.c.Node(i).Store()
		tx := containers.SetupTx(st.System())
		rev := st.Events().Rev(tx)
		st.Events().MarkHistoryFloor(tx, rev)
		dataWriters[i] = wal.NewWriter(dataDevs[i], s.DataNextLSN[i],
			map[int]uint64{0: rev + 1}, wal.Options{SyncEvery: s.SyncEvery})
		if err := dataWriters[i].AppendEpoch(s.Epoch, nil); err != nil {
			return err
		}
	}
	coordWriter := wal.NewWriter(coordDev, s.CoordNextLSN, nil, wal.Options{})
	if err := coordWriter.AppendEpoch(s.Epoch, s.Membership); err != nil {
		return err
	}
	inDoubt, resolved, err := resolveInDoubt(db.c, dataWriters, coordWriter,
		s.Decisions, s.Marks, s.Applied)
	if err != nil {
		return err
	}
	db.c.RestoreTxID(s.MaxTxID)
	db.c.AttachWAL(&cluster.WALSet{Data: dataWriters, Coord: coordWriter})
	db.met.walInDoubt.Add(inDoubt)
	db.met.walResolved.Add(resolved)
	var maxLease uint64
	for i := 0; i < n; i++ {
		dataWriters[i].SetMetrics(db.met.walBatch, db.met.walInterval)
		if id := maxLeaseID(db.c.Node(i).Store()); id > maxLease {
			maxLease = id
		}
	}
	if maxLease > db.leaseSeq.Load() {
		db.leaseSeq.Store(maxLease)
	}
	return nil
}
