package kv

import (
	"errors"
	"time"

	"rhtm"
	"rhtm/cluster"
	"rhtm/obs"
	"rhtm/store"
)

// Metrics for the kv layer. Every DB carries an obs.Registry (a fresh one
// by default, a caller-supplied or nil one via WithMetrics) holding the
// host-side instruments — lease churn, watch loss, WAL group-commit
// amortization, 2PC phase timings — and DB.Metrics folds in the layers
// that keep their own counters: the engines' live commit/abort taxonomy
// (engine.Live, flushed once per completed Atomic) and the stores'
// transactional occupancy counters (read in one read-only transaction per
// call). The result is one flat-named obs.Snapshot whose schema is
// identical on Local and ClusterDB — cluster.* entries simply stay absent
// on a single System. See DESIGN.md §10 for the full name taxonomy.

// WithMetrics injects the instrument registry a DB reports through.
// Passing nil disables host-side instrumentation entirely: every
// instrument becomes the nil no-op of its kind, so the hot path pays one
// predicted branch per site and zero allocations (the overhead benchmark
// pins this down). The default — option absent — is a fresh private
// registry.
func WithMetrics(reg *obs.Registry) Option {
	return func(o *dbOptions) { o.metrics, o.metricsSet = reg, true }
}

// WithTracer installs a per-transaction tracer at construction; see
// SetTracer for the contract.
func WithTracer(t obs.Tracer) Option {
	return func(o *dbOptions) { o.tracer = t }
}

// kvMetrics holds the kv layer's pre-resolved instruments. Resolving at
// construction (rather than by name at use) is what keeps the hot path
// allocation-free; a nil registry yields nil instruments throughout and
// every site degrades to a no-op.
type kvMetrics struct {
	leaseGrants     *obs.Counter // lease.grants
	leaseKeepAlives *obs.Counter // lease.keepalives
	leaseRevokes    *obs.Counter // lease.revokes
	leaseExpired    *obs.Counter // lease.expired

	watchLost *obs.Counter // watch.events_lost: EventLost markers enqueued

	walBatch    *obs.Histogram // wal.batch_txns: transactions per sync barrier
	walInterval *obs.Histogram // wal.sync_interval_ns: wall time between syncs

	prepare2PC *obs.Histogram // cluster.2pc.prepare_ns
	finish2PC  *obs.Histogram // cluster.2pc.finish_ns

	walInDoubt  *obs.Counter // cluster.wal.indoubt: decisions found unresolved at recovery
	walResolved *obs.Counter // cluster.wal.resolved: decisions resolved forward at recovery
}

func newKVMetrics(reg *obs.Registry) kvMetrics {
	return kvMetrics{
		leaseGrants:     reg.Counter("lease.grants"),
		leaseKeepAlives: reg.Counter("lease.keepalives"),
		leaseRevokes:    reg.Counter("lease.revokes"),
		leaseExpired:    reg.Counter("lease.expired"),
		watchLost:       reg.Counter("watch.events_lost"),
		walBatch:        reg.Histogram("wal.batch_txns"),
		walInterval:     reg.Histogram("wal.sync_interval_ns"),
		prepare2PC:      reg.Histogram("cluster.2pc.prepare_ns"),
		finish2PC:       reg.Histogram("cluster.2pc.finish_ns"),
		walInDoubt:      reg.Counter("cluster.wal.indoubt"),
		walResolved:     reg.Counter("cluster.wal.resolved"),
	}
}

// registerWatchDepth samples the hub's total pending-queue depth at
// snapshot time (cheaper than maintaining it per enqueue/dequeue).
func registerWatchDepth(reg *obs.Registry, hub *watchHub) {
	reg.GaugeFunc("watch.queue_depth", hub.queueDepth)
}

// mergeEngineStats renders an engine.Stats into the snapshot's counter
// map under the engine.* names. The fixed names are always present (a
// zero is informative); the per-reason abort breakdown includes only
// reasons that occurred, since the reason space is sparse.
func mergeEngineStats(out *obs.Snapshot, s rhtm.Stats) {
	c := out.Counters
	c[obs.Name("engine.commits", "path", "fast")] = s.FastCommits
	c[obs.Name("engine.commits", "path", "slow")] = s.SlowCommits
	c[obs.Name("engine.commits", "path", "slowslow")] = s.SlowSlowCommits
	c[obs.Name("engine.commits", "path", "readonly")] = s.ReadOnlyCommits
	c[obs.Name("engine.aborts", "path", "fast")] = s.FastAborts
	c[obs.Name("engine.aborts", "path", "slow")] = s.SlowAborts
	for i, n := range s.FastAbortsByReason {
		if n == 0 {
			continue
		}
		c[obs.Name("engine.aborts.fast", "reason", rhtm.AbortReason(i).String())] = n
	}
	c["engine.commit_htm_retries"] = s.CommitHTMRetries
	c["engine.rh2_fallbacks"] = s.RH2Fallbacks
	c["engine.all_software_writebacks"] = s.AllSoftwareWritebacks
	c["engine.user_errors"] = s.UserErrors
	c["engine.reads"] = s.Reads
	c["engine.writes"] = s.Writes
	c["engine.metadata_reads"] = s.MetadataReads
	c["engine.metadata_writes"] = s.MetadataWrites
}

// mergeStoreStats renders a store.Stats into the snapshot: occupancy as
// gauges (they go down), the attached WAL's counters under wal.* (absent
// on volatile DBs — a zero there would imply a log exists).
func mergeStoreStats(out *obs.Snapshot, s store.Stats) {
	g := out.Gauges
	g["store.live_keys"] = int64(s.LiveKeys)
	g["store.pending_intents"] = int64(s.PendingIntents)
	g["store.arena.capacity_words"] = int64(s.Arena.CapacityWords)
	g["store.arena.bumped_words"] = int64(s.Arena.BumpedWords)
	g["store.arena.free_words"] = int64(s.Arena.FreeListWords)
	g["store.arena.live_words"] = int64(s.Arena.LiveWords)
	if s.WAL == (store.WALStats{}) {
		return
	}
	c := out.Counters
	c["wal.txns"] = s.WAL.TxnsLogged
	c["wal.frames"] = s.WAL.FramesAppended
	c["wal.bytes"] = s.WAL.BytesAppended
	c["wal.syncs"] = s.WAL.Syncs
	g["wal.durable_lsn"] = int64(s.WAL.DurableLSN)
	g["wal.checkpoint_lsn"] = int64(s.WAL.CheckpointLSN)
}

// mergeClusterCounters renders the 2PC protocol counters under cluster.*.
func mergeClusterCounters(out *obs.Snapshot, cc cluster.Counters) {
	c := out.Counters
	c["cluster.local_txns"] = cc.LocalTxns
	c["cluster.local_conflicts"] = cc.LocalConflicts
	c["cluster.cross_txns"] = cc.CrossTxns
	c["cluster.cross_commits"] = cc.CrossCommits
	c["cluster.cross_aborts"] = cc.CrossAborts
	c["cluster.prepare_conflicts"] = cc.PrepareConflicts
	c["cluster.intent_waits"] = cc.IntentWaits
	c["cluster.snapshot_scans"] = cc.SnapshotScans
	c["cluster.scan_retries"] = cc.ScanRetries
	c["cluster.phantom_conflicts"] = cc.PhantomConflicts
}

// tracerBox wraps a Tracer for atomic replacement (SetTracer may race
// with in-flight transactions reading the current tracer).
type tracerBox struct{ t obs.Tracer }

// attemptSpan builds the span one Update attempt emits. CommitRev is only
// meaningful on commits; conflict and error attempts report 0 per the
// Span contract.
func attemptSpan(engine string, attempt int, err error, rev uint64, wall time.Duration, virtual uint64) obs.Span {
	sp := obs.Span{Engine: engine, Attempt: attempt, Wall: wall, VirtualTime: virtual}
	switch {
	case err == nil:
		sp.Outcome = obs.OutcomeCommit
		sp.CommitRev = rev
	case errors.Is(err, ErrConflict):
		sp.Outcome = obs.OutcomeConflict
	default:
		sp.Outcome = obs.OutcomeError
		sp.Err = err.Error()
	}
	return sp
}
