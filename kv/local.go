package kv

import (
	"errors"

	"rhtm"
	"rhtm/store"
)

// Storer is the transaction-level store surface a Local DB drives; both
// store.Store and store.Sharded satisfy it.
type Storer interface {
	Get(tx rhtm.Tx, key []byte) ([]byte, bool)
	Put(tx rhtm.Tx, key, value []byte) error
	Delete(tx rhtm.Tx, key []byte) bool
	ScanLimit(tx rhtm.Tx, start, end []byte, limit int, fn func(key, value []byte) bool)
	Len(tx rhtm.Tx) int
}

var (
	_ Storer = (*store.Store)(nil)
	_ Storer = (*store.Sharded)(nil)
)

// Local implements DB over one simulated System: an rhtm engine supplies
// the transactions, a store.Store or store.Sharded supplies the data. Every
// DB operation is one engine transaction (Atomic), so atomicity, isolation
// and rollback come from whichever engine — RH1, RH2, TL2, the hybrids —
// the System runs.
//
// Local is safe for concurrent use by any number of goroutines: engine
// threads are not, so Local multiplexes callers over an internal session
// pool of at most maxSessions threads — excess callers queue for a free
// session. The bound is what keeps a concurrency burst from registering
// more engine threads than the System's MaxThreads allows (thread
// registrations are permanent).
type Local struct {
	eng rhtm.Engine
	st  Storer

	// sessions holds maxSessions slots, pre-filled with nil placeholders;
	// a nil slot lazily becomes a registered engine thread on first use.
	sessions chan rhtm.Thread
}

// maxSessions bounds the engine threads (cluster: clients) a DB registers;
// it is well under the engines' default 64-thread limit so direct engine
// users can coexist with a DB on the same System.
const maxSessions = 32

// NewLocal builds a DB over an engine and a store on the same System. Call
// during single-threaded setup.
func NewLocal(eng rhtm.Engine, st Storer) *Local {
	db := &Local{eng: eng, st: st, sessions: make(chan rhtm.Thread, maxSessions)}
	for i := 0; i < maxSessions; i++ {
		db.sessions <- nil
	}
	return db
}

// getThread claims a session, registering its engine thread on first use;
// it blocks while all maxSessions sessions are in flight.
func (db *Local) getThread() rhtm.Thread {
	th := <-db.sessions
	if th == nil {
		th = db.eng.NewThread()
	}
	return th
}

func (db *Local) putThread(th rhtm.Thread) {
	db.sessions <- th
}

// Update implements DB. The engine retries its own conflicts inside
// Atomic, so the explicit loop here only serves closures that request a
// retry by returning ErrConflict.
func (db *Local) Update(fn func(tx Txn) error) error {
	th := db.getThread()
	defer db.putThread(th)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		err := th.Atomic(func(tx rhtm.Tx) error {
			return fn(&localTxn{tx: tx, st: db.st})
		})
		if !errors.Is(err, ErrConflict) {
			return err
		}
		backoff(attempt)
	}
	return errRetriesExhausted()
}

// Get implements DB.
func (db *Local) Get(key []byte) ([]byte, error) {
	th := db.getThread()
	defer db.putThread(th)
	var val []byte
	var ok bool
	if err := th.Atomic(func(tx rhtm.Tx) error {
		val, ok = db.st.Get(tx, key)
		return nil
	}); err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotFound
	}
	return val, nil
}

// Put implements DB.
func (db *Local) Put(key, value []byte) error {
	th := db.getThread()
	defer db.putThread(th)
	return th.Atomic(func(tx rhtm.Tx) error {
		return db.st.Put(tx, key, value)
	})
}

// Delete implements DB.
func (db *Local) Delete(key []byte) error {
	th := db.getThread()
	defer db.putThread(th)
	var ok bool
	if err := th.Atomic(func(tx rhtm.Tx) error {
		ok = db.st.Delete(tx, key)
		return nil
	}); err != nil {
		return err
	}
	if !ok {
		return ErrNotFound
	}
	return nil
}

// Batch implements DB: one engine transaction executes every op in order.
func (db *Local) Batch(ops []Op) ([]OpResult, error) {
	return batchViaUpdate(db, ops)
}

// Scan implements DB: the prefix is collected inside one engine
// transaction, so it is a committed snapshot by construction.
func (db *Local) Scan(start, end []byte, limit int) Iterator {
	var entries []Entry
	err := db.Update(func(tx Txn) error {
		entries = entries[:0]
		it := tx.Scan(start, end, limit)
		for it.Next() {
			entries = append(entries, Entry{Key: it.Key(), Value: it.Value()})
		}
		return it.Err()
	})
	if err != nil {
		return errIter(err)
	}
	return &entriesIter{entries: entries}
}

// errRetriesExhausted builds the ErrConflict-wrapping failure Update
// returns after maxAttempts.
func errRetriesExhausted() error {
	return &retriesError{}
}

type retriesError struct{}

func (*retriesError) Error() string { return "kv: update exhausted retries: " + ErrConflict.Error() }
func (*retriesError) Unwrap() error { return ErrConflict }

// localTxn adapts one live engine transaction to the Txn interface.
type localTxn struct {
	tx rhtm.Tx
	st Storer
}

// Get implements Txn.
func (t *localTxn) Get(key []byte) ([]byte, error) {
	v, ok := t.st.Get(t.tx, key)
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

// Put implements Txn.
func (t *localTxn) Put(key, value []byte) error {
	return t.st.Put(t.tx, key, value)
}

// Delete implements Txn.
func (t *localTxn) Delete(key []byte) error {
	if !t.st.Delete(t.tx, key) {
		return ErrNotFound
	}
	return nil
}

// Scan implements Txn with a lazy cursor: chunks of the ordered index are
// fetched on demand inside the live transaction, each chunk resuming at the
// successor of the last key seen, so short scans touch only the entries
// they yield. All chunks run in the same transaction, so the cursor is a
// consistent snapshot regardless.
func (t *localTxn) Scan(start, end []byte, limit int) Iterator {
	return &localIter{t: t, next: start, end: end, remaining: limit, unbounded: limit <= 0}
}

// scanChunk is how many entries a cursor fetches per index descent.
const scanChunk = 32

type localIter struct {
	t         *localTxn
	next      []byte // resume bound for the next chunk (nil only before any chunk when start was nil)
	end       []byte
	remaining int
	unbounded bool
	buf       []Entry
	pos       int
	done      bool
	cur       Entry
}

func (it *localIter) Next() bool {
	if it.pos >= len(it.buf) && !it.done {
		it.fill()
	}
	if it.pos >= len(it.buf) {
		return false
	}
	it.cur = it.buf[it.pos]
	it.pos++
	if !it.unbounded {
		it.remaining--
	}
	return true
}

func (it *localIter) fill() {
	want := scanChunk
	if !it.unbounded && it.remaining < want {
		want = it.remaining
	}
	it.buf = it.buf[:0]
	it.pos = 0
	if want == 0 {
		it.done = true
		return
	}
	it.t.st.ScanLimit(it.t.tx, it.next, it.end, want, func(k, v []byte) bool {
		it.buf = append(it.buf, Entry{Key: k, Value: v})
		return true
	})
	if len(it.buf) < want {
		it.done = true
	}
	if n := len(it.buf); n > 0 {
		// Resume strictly after the last yielded key: its immediate
		// successor in bytewise order is the key with a 0x00 appended.
		last := it.buf[n-1].Key
		it.next = append(append(make([]byte, 0, len(last)+1), last...), 0)
	}
}

func (it *localIter) Key() []byte   { return it.cur.Key }
func (it *localIter) Value() []byte { return it.cur.Value }
func (it *localIter) Err() error    { return nil }
