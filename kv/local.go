package kv

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"rhtm"
	"rhtm/obs"
	"rhtm/store"
	"rhtm/wal"
)

// Storer is the transaction-level store surface a Local DB drives; both
// store.Store and store.Sharded satisfy it. The stamped and replay entry
// points, the partition map, and the metadata scan are the durability
// layer's hooks: partitions index EventLogs() — one revision clock each —
// and PartitionOf names the clock a key's revisions come from.
type Storer interface {
	Get(tx rhtm.Tx, key []byte) ([]byte, bool)
	Read(tx rhtm.Tx, key []byte) (value []byte, rev, lease uint64, ok bool)
	PutLease(tx rhtm.Tx, key, value []byte, lease uint64) error
	PutStamped(tx rhtm.Tx, key, value []byte, lease uint64) (uint64, error)
	Delete(tx rhtm.Tx, key []byte) bool
	DeleteStamped(tx rhtm.Tx, key []byte) (uint64, bool)
	ReplayPut(tx rhtm.Tx, key, value []byte, rev, lease uint64) error
	ReplayDelete(tx rhtm.Tx, key []byte, rev uint64) bool
	ScanLimit(tx rhtm.Tx, start, end []byte, limit int, fn func(key, value []byte) bool)
	ScanMeta(tx rhtm.Tx, fn func(key, value []byte, rev, lease uint64) bool)
	Len(tx rhtm.Tx) int
	EventLogs() []*store.EventLog
	PartitionOf(key []byte) int
	System() *rhtm.System
	SetWALStats(fn func() store.WALStats)
	Stats(tx rhtm.Tx) store.Stats
}

var (
	_ Storer = (*store.Store)(nil)
	_ Storer = (*store.Sharded)(nil)
)

// Option configures a DB at construction.
type Option func(*dbOptions)

type dbOptions struct {
	clock       Clock
	syncEvery   int
	metrics     *obs.Registry
	metricsSet  bool // distinguishes WithMetrics(nil) from the default
	tracer      obs.Tracer
	traceSample int
	flight      *obs.Flight
}

// WithClock injects the virtual-time source lease deadlines are measured
// against. The default is a fresh ManualClock (time stands still until the
// caller advances it).
func WithClock(c Clock) Option {
	return func(o *dbOptions) { o.clock = c }
}

func applyOptions(opts []Option) dbOptions {
	o := dbOptions{}
	for _, fn := range opts {
		fn(&o)
	}
	if o.clock == nil {
		o.clock = NewManualClock()
	}
	if !o.metricsSet {
		o.metrics = obs.NewRegistry()
	}
	if o.traceSample > 0 && o.flight == nil {
		// Sampling without an explicit recorder still retains traces: a
		// default-depth flight backs the DB's Flight() accessor.
		o.flight = obs.NewFlight(0)
	}
	return o
}

// Local implements DB over one simulated System: an rhtm engine supplies
// the transactions, a store.Store or store.Sharded supplies the data. Every
// DB operation is one engine transaction (Atomic), so atomicity, isolation
// and rollback come from whichever engine — RH1, RH2, TL2, the hybrids —
// the System runs. Revisions and watch events come from the stores' own
// commit logs; leases live in the reserved keyspace (see the package
// comment).
//
// Local is safe for concurrent use by any number of goroutines: engine
// threads are not, so Local multiplexes callers over an internal session
// pool of at most maxSessions threads — excess callers queue for a free
// session. The bound is what keeps a concurrency burst from registering
// more engine threads than the System's MaxThreads allows (thread
// registrations are permanent).
type Local struct {
	eng   rhtm.Engine
	st    Storer
	clock Clock

	reg *obs.Registry
	met kvMetrics
	trc atomic.Pointer[tracerBox]

	// sampler/flight are the DB-level tracing hooks (WithTraceSampling,
	// WithFlight): a sampled Update or Batch opens its own trace. The
	// network server bypasses them and passes its traces down through
	// UpdateRevTraced/BatchTraced instead.
	sampler *obs.Sampler
	flight  *obs.Flight
	traceID atomic.Uint64

	leaseSeq atomic.Uint64
	hub      *watchHub

	// wal, when non-nil, is the durability hook: committed transactions'
	// captured redo operations are published to the group-commit writer
	// before the operation returns (see OpenLocal and wal.go).
	wal *localWAL

	// sessions holds maxSessions slots, pre-filled with nil placeholders;
	// a nil slot lazily becomes a registered engine thread on first use.
	sessions chan rhtm.Thread
}

// maxSessions bounds the engine threads (cluster: clients) a DB registers;
// it is well under the engines' default 64-thread limit so direct engine
// users can coexist with a DB on the same System.
const maxSessions = 32

// NewLocal builds a DB over an engine and a store on the same System. Call
// during single-threaded setup.
func NewLocal(eng rhtm.Engine, st Storer, opts ...Option) *Local {
	o := applyOptions(opts)
	db := &Local{eng: eng, st: st, clock: o.clock, sessions: make(chan rhtm.Thread, maxSessions)}
	for i := 0; i < maxSessions; i++ {
		db.sessions <- nil
	}
	db.hub = newWatchHub(func() []logSource {
		// One dedicated thread serves every ring: they share the System.
		th := eng.NewThread()
		var sources []logSource
		for _, l := range st.EventLogs() {
			sources = append(sources, logSource{log: l, run: th.Atomic})
		}
		return sources
	})
	db.reg = o.metrics
	db.met = newKVMetrics(db.reg)
	db.hub.lost = db.met.watchLost
	registerWatchDepth(db.reg, db.hub)
	db.trc.Store(&tracerBox{o.tracer})
	db.sampler = obs.NewSampler(o.traceSample)
	db.flight = o.flight
	return db
}

// SetTracer installs (or, with nil, removes) the per-transaction tracer:
// every Update/Batch attempt from then on emits one obs.Span, committed
// or not. Safe to call while transactions run; attempts in flight may
// still report to the previous tracer.
func (db *Local) SetTracer(t obs.Tracer) { db.trc.Store(&tracerBox{t}) }

func (db *Local) tracer() obs.Tracer { return db.trc.Load().t }

func (db *Local) metrics() *kvMetrics { return &db.met }

// Metrics implements DB: the registry's host-side instruments plus the
// engine's live commit/abort taxonomy and the store's occupancy counters
// (sampled in one read-only transaction on a pooled session thread).
func (db *Local) Metrics() obs.Snapshot {
	snap := db.reg.Snapshot()
	mergeEngineStats(&snap, db.eng.Live())
	th := db.getThread()
	var ss store.Stats
	err := th.Atomic(func(tx rhtm.Tx) error {
		ss = db.st.Stats(tx)
		return nil
	})
	db.putThread(th)
	if err == nil {
		mergeStoreStats(&snap, ss)
	}
	return snap
}

// getThread claims a session, registering its engine thread on first use;
// it blocks while all maxSessions sessions are in flight.
func (db *Local) getThread() rhtm.Thread {
	th := <-db.sessions
	if th == nil {
		th = db.eng.NewThread()
	}
	return th
}

func (db *Local) putThread(th rhtm.Thread) {
	db.sessions <- th
}

// Update implements DB. The engine retries its own conflicts inside
// Atomic, so the explicit loop here only serves closures that request a
// retry by returning ErrConflict. With a WAL attached, the closure's
// writes are captured per attempt (a fresh capture every re-execution, so
// aborted attempts log nothing) and published after the engine commit.
func (db *Local) Update(fn func(tx Txn) error) error {
	_, err := db.UpdateRev(fn)
	return err
}

// UpdateRev is Update paired with the highest revision the committed
// closure's writes were stamped with — 0 for a read-only closure. Front
// ends (the network server) use it to report the commit revision over the
// wire without a second transaction.
func (db *Local) UpdateRev(fn func(tx Txn) error) (Revision, error) {
	if db.sampler.Sample() {
		t := db.flight.NewTrace(db.traceID.Add(1), "update")
		rev, err := db.updateRevT(t, fn)
		t.Finish(err)
		return rev, err
	}
	return db.updateRevT(nil, fn)
}

// updateRevT is the UpdateRev core. sink, when non-nil, receives the
// request's trace events: one engine stage spanning every closure attempt
// (retries and backoff included), one span per attempt, the WAL
// group-commit wait, and the commit revision. A nil sink pays one
// predicted branch per site — no stamps, no allocations.
func (db *Local) updateRevT(sink obs.TraceSink, fn func(tx Txn) error) (Revision, error) {
	th := db.getThread()
	defer db.putThread(th)
	trc := db.tracer()
	var ops []wal.Op
	lt := &localTxn{st: db.st}
	var engStart time.Time
	if sink != nil {
		engStart = time.Now()
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		var start time.Time
		if trc != nil || sink != nil {
			start = time.Now()
		}
		err := th.Atomic(func(tx rhtm.Tx) error {
			// The body re-executes on engine aborts: reset the capture
			// state so only the committed attempt's writes survive.
			lt.tx = tx
			lt.maxRev = 0
			if db.wal != nil {
				ops = ops[:0]
				lt.recs = &ops
			}
			return fn(lt)
		})
		if trc != nil || sink != nil {
			sp := attemptSpan(db.eng.Name(), attempt, err,
				lt.maxRev, time.Since(start), db.clock.Now())
			if trc != nil {
				trc.TxnAttempt(sp)
			}
			if sink != nil {
				sink.Attempt(sp)
			}
		}
		if errors.Is(err, ErrConflict) {
			backoff(attempt)
			continue
		}
		if sink != nil {
			sink.Stage(obs.StageEngine, time.Since(engStart))
		}
		if err != nil {
			return 0, err
		}
		// wal_sync is only a stage when there is a durable wait to time:
		// read-only closures and volatile DBs skip the stamp entirely.
		var syncStart time.Time
		traceSync := sink != nil && db.wal != nil && len(ops) > 0
		if traceSync {
			syncStart = time.Now()
		}
		werr := db.walCommit(ops)
		if traceSync {
			sink.Stage(obs.StageWALSync, time.Since(syncStart))
		}
		if werr != nil {
			return 0, werr
		}
		if sink != nil {
			sink.SetCommitRev(lt.maxRev)
		}
		db.hub.wake()
		return lt.maxRev, nil
	}
	return 0, errRetriesExhausted()
}

// Get implements DB.
func (db *Local) Get(key []byte) ([]byte, error) {
	if reservedKey(key) {
		return nil, ErrReservedKey
	}
	th := db.getThread()
	defer db.putThread(th)
	var val []byte
	var ok bool
	if err := th.Atomic(func(tx rhtm.Tx) error {
		val, ok = db.st.Get(tx, key)
		return nil
	}); err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotFound
	}
	return val, nil
}

// GetRev implements DB.
func (db *Local) GetRev(key []byte) ([]byte, Revision, error) {
	return getRev(db, key)
}

// Put implements DB. Lease-attached puts run as closure transactions (the
// lease record rides along); plain puts take the direct path.
func (db *Local) Put(key, value []byte, opts ...PutOption) error {
	if reservedKey(key) {
		return ErrReservedKey
	}
	if o := applyPutOptions(opts); o.lease != 0 {
		return db.Update(func(tx Txn) error {
			return tx.Put(key, value, opts...)
		})
	}
	th := db.getThread()
	defer db.putThread(th)
	var rev uint64
	err := th.Atomic(func(tx rhtm.Tx) error {
		var err error
		rev, err = db.st.PutStamped(tx, key, value, 0)
		return err
	})
	if err == nil {
		if db.wal != nil {
			if werr := db.walCommit([]wal.Op{{
				Part: db.st.PartitionOf(key), Kind: wal.OpPut,
				Key: copyBytes(key), Value: copyBytes(value), Rev: rev,
			}}); werr != nil {
				return werr
			}
		}
		db.hub.wake()
	}
	return err
}

// PutIf implements DB.
func (db *Local) PutIf(key, value []byte, rev Revision, opts ...PutOption) error {
	return putIf(db, key, value, rev, opts)
}

// Delete implements DB.
func (db *Local) Delete(key []byte) error {
	if reservedKey(key) {
		return ErrReservedKey
	}
	th := db.getThread()
	defer db.putThread(th)
	var ok bool
	var rev uint64
	if err := th.Atomic(func(tx rhtm.Tx) error {
		rev, ok = db.st.DeleteStamped(tx, key)
		return nil
	}); err != nil {
		return err
	}
	if !ok {
		return ErrNotFound
	}
	if db.wal != nil {
		if err := db.walCommit([]wal.Op{{
			Part: db.st.PartitionOf(key), Kind: wal.OpDelete,
			Key: copyBytes(key), Rev: rev,
		}}); err != nil {
			return err
		}
	}
	db.hub.wake()
	return nil
}

// DeleteIf implements DB.
func (db *Local) DeleteIf(key []byte, rev Revision) error {
	return deleteIf(db, key, rev)
}

// Batch implements DB: one engine transaction executes every op in order.
func (db *Local) Batch(ops []Op) ([]OpResult, error) {
	if db.sampler.Sample() {
		t := db.flight.NewTrace(db.traceID.Add(1), "batch")
		res, err := db.BatchTraced(t, ops)
		t.Finish(err)
		return res, err
	}
	return db.BatchTraced(nil, ops)
}

// Scan implements DB: the prefix is collected inside one engine
// transaction, so it is a committed snapshot by construction. Reserved
// system keys are outside the user keyspace and never yielded.
func (db *Local) Scan(start, end []byte, limit int) Iterator {
	start, end, empty := clampUserRange(start, end)
	if empty {
		return emptyIter()
	}
	entries, err := db.rawScan(start, end, limit)
	if err != nil {
		return errIter(err)
	}
	return &entriesIter{entries: entries}
}

// rawScan implements backend: an unclamped snapshot scan.
func (db *Local) rawScan(start, end []byte, limit int) ([]Entry, error) {
	var entries []Entry
	err := db.Update(func(tx Txn) error {
		entries = entries[:0]
		it := tx.(*localTxn).scanRaw(start, end, limit)
		for it.Next() {
			entries = append(entries, Entry{Key: it.Key(), Value: it.Value()})
		}
		return it.Err()
	})
	if err != nil {
		return nil, err
	}
	return entries, nil
}

// Grant implements DB.
func (db *Local) Grant(ttl uint64) (LeaseID, error) {
	return grant(db, &db.leaseSeq, ttl)
}

// KeepAlive implements DB.
func (db *Local) KeepAlive(id LeaseID) error { return keepAlive(db, id) }

// Revoke implements DB.
func (db *Local) Revoke(id LeaseID) error { return revoke(db, id) }

// ExpireLeases implements DB.
func (db *Local) ExpireLeases() (int, error) { return expireLeases(db) }

// Clock implements DB.
func (db *Local) Clock() Clock { return db.clock }

// Watch implements DB.
func (db *Local) Watch(ctx context.Context, prefix []byte, fromRev Revision) (<-chan Event, error) {
	return db.hub.watch(ctx, prefix, fromRev)
}

// errRetriesExhausted builds the ErrConflict-wrapping failure Update
// returns after maxAttempts.
func errRetriesExhausted() error {
	return &retriesError{}
}

type retriesError struct{}

func (*retriesError) Error() string { return "kv: update exhausted retries: " + ErrConflict.Error() }
func (*retriesError) Unwrap() error { return ErrConflict }

// localTxn adapts one live engine transaction to the Txn interface. recs,
// when non-nil, captures the attempt's writes (with the revisions the
// store stamped) for WAL publication after the engine commit; the capture
// is reset by the Update loop on every re-execution, so only the committed
// attempt's operations are ever logged.
type localTxn struct {
	tx     rhtm.Tx
	st     Storer
	recs   *[]wal.Op
	maxRev uint64 // highest revision this attempt's writes were stamped with
}

// Get implements Txn.
func (t *localTxn) Get(key []byte) ([]byte, error) {
	if reservedKey(key) {
		return nil, ErrReservedKey
	}
	return t.getRaw(key)
}

// Revision implements Txn.
func (t *localTxn) Revision(key []byte) (Revision, error) {
	if reservedKey(key) {
		return 0, ErrReservedKey
	}
	_, rev, _, ok := t.st.Read(t.tx, key)
	if !ok {
		return 0, nil
	}
	return rev, nil
}

// Put implements Txn.
func (t *localTxn) Put(key, value []byte, opts ...PutOption) error {
	return txnPut(t, key, value, opts)
}

// Delete implements Txn.
func (t *localTxn) Delete(key []byte) error {
	if reservedKey(key) {
		return ErrReservedKey
	}
	return t.deleteRaw(key)
}

// Scan implements Txn, clamped to the user keyspace.
func (t *localTxn) Scan(start, end []byte, limit int) Iterator {
	start, end, empty := clampUserRange(start, end)
	if empty {
		return emptyIter()
	}
	return t.scanRaw(start, end, limit)
}

// --- coordTxn ---

func (t *localTxn) getRaw(key []byte) ([]byte, error) {
	v, ok := t.st.Get(t.tx, key)
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

func (t *localTxn) putRaw(key, value []byte, lease LeaseID) error {
	rev, err := t.st.PutStamped(t.tx, key, value, lease)
	if err != nil {
		return err
	}
	if rev > t.maxRev {
		t.maxRev = rev
	}
	if t.recs != nil {
		*t.recs = append(*t.recs, wal.Op{
			Part: t.st.PartitionOf(key), Kind: wal.OpPut,
			Key: copyBytes(key), Value: copyBytes(value), Rev: rev, Lease: lease,
		})
	}
	return nil
}

func (t *localTxn) deleteRaw(key []byte) error {
	rev, ok := t.st.DeleteStamped(t.tx, key)
	if !ok {
		return ErrNotFound
	}
	if rev > t.maxRev {
		t.maxRev = rev
	}
	if t.recs != nil {
		*t.recs = append(*t.recs, wal.Op{
			Part: t.st.PartitionOf(key), Kind: wal.OpDelete,
			Key: copyBytes(key), Rev: rev,
		})
	}
	return nil
}

func (t *localTxn) leaseOf(key []byte) (LeaseID, error) {
	_, _, lease, ok := t.st.Read(t.tx, key)
	if !ok {
		return 0, nil
	}
	return lease, nil
}

// scanRaw is the unclamped lazy cursor: chunks of the ordered index are
// fetched on demand inside the live transaction, each chunk resuming at the
// successor of the last key seen, so short scans touch only the entries
// they yield. All chunks run in the same transaction, so the cursor is a
// consistent snapshot regardless.
func (t *localTxn) scanRaw(start, end []byte, limit int) Iterator {
	return &localIter{t: t, next: start, end: end, remaining: limit, unbounded: limit <= 0}
}

// scanChunk is how many entries a cursor fetches per index descent.
const scanChunk = 32

type localIter struct {
	t         *localTxn
	next      []byte // resume bound for the next chunk (nil only before any chunk when start was nil)
	end       []byte
	remaining int
	unbounded bool
	buf       []Entry
	pos       int
	done      bool
	cur       Entry
}

func (it *localIter) Next() bool {
	if it.pos >= len(it.buf) && !it.done {
		it.fill()
	}
	if it.pos >= len(it.buf) {
		return false
	}
	it.cur = it.buf[it.pos]
	it.pos++
	if !it.unbounded {
		it.remaining--
	}
	return true
}

func (it *localIter) fill() {
	want := scanChunk
	if !it.unbounded && it.remaining < want {
		want = it.remaining
	}
	it.buf = it.buf[:0]
	it.pos = 0
	if want == 0 {
		it.done = true
		return
	}
	it.t.st.ScanLimit(it.t.tx, it.next, it.end, want, func(k, v []byte) bool {
		it.buf = append(it.buf, Entry{Key: k, Value: v})
		return true
	})
	if len(it.buf) < want {
		it.done = true
	}
	if n := len(it.buf); n > 0 {
		// Resume strictly after the last yielded key: its immediate
		// successor in bytewise order is the key with a 0x00 appended.
		last := it.buf[n-1].Key
		it.next = append(append(make([]byte, 0, len(last)+1), last...), 0)
	}
}

func (it *localIter) Key() []byte   { return it.cur.Key }
func (it *localIter) Value() []byte { return it.cur.Value }
func (it *localIter) Err() error    { return nil }

// WaitWatchIdle blocks until the watch hub's poller has stopped; call it
// after cancelling every Watch before taking engine snapshots or running
// raw-memory validation (the hub's dedicated engine thread is then
// guaranteed outside Atomic).
func (db *Local) WaitWatchIdle() { db.hub.waitIdle() }
