package kv

import "sync/atomic"

// Clock is the virtual-time source lease deadlines are measured against.
// Time is an opaque monotonic tick count: nothing in the kv layer assumes a
// tick is a wall-clock duration, which is what makes lease expiry
// deterministic — tests advance a ManualClock by hand, the harness advances
// it on its own simulated-interval cadence, and a production embedding
// could supply wall time. Injected at construction (WithClock); the default
// is a fresh ManualClock, so leases never expire behind the caller's back.
type Clock interface {
	// Now returns the current tick. It must be monotonic non-decreasing
	// and safe for concurrent use.
	Now() uint64
}

// ManualClock is a Clock advanced explicitly by the caller. The zero value
// is ready to use and starts at tick 1 (tick 0 is reserved as "never").
type ManualClock struct {
	t atomic.Uint64
}

// NewManualClock returns a clock at tick 1.
func NewManualClock() *ManualClock { return &ManualClock{} }

// Now implements Clock.
func (c *ManualClock) Now() uint64 { return c.t.Load() + 1 }

// Advance moves the clock forward by d ticks and returns the new time.
func (c *ManualClock) Advance(d uint64) uint64 { return c.t.Add(d) + 1 }
