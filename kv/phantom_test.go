package kv_test

import (
	"fmt"
	"sync"
	"testing"

	"rhtm"
	"rhtm/cluster"
	"rhtm/kv"
)

// TestClusterScanPhantomProtection is the regression test for phantom
// protection on in-transaction cluster scans: a closure scans a range and
// derives a value from it; mid-transaction a second client inserts a key
// *inside* that range. Without range revalidation the commit sees only its
// per-key reads (all unchanged) and commits a stale derivation; with it the
// commit conflicts, the closure re-runs, and the retry observes the insert.
func TestClusterScanPhantomProtection(t *testing.T) {
	for _, systems := range []int{1, 3} {
		t.Run(fmt.Sprintf("Systems%d", systems), func(t *testing.T) {
			c := cluster.MustNew(cluster.Config{
				Systems:    systems,
				DataWords:  1 << 15,
				ArenaWords: 1 << 13,
				NewEngine: func(s *rhtm.System) (rhtm.Engine, error) {
					return rhtm.NewTL2(s), nil
				},
			})
			db := kv.NewCluster(c, kv.WithClock(kv.NewManualClock()))
			for _, k := range []string{"acct/a", "acct/b"} {
				if err := db.Put([]byte(k), []byte("1")); err != nil {
					t.Fatal(err)
				}
			}

			var once sync.Once
			attempts := 0
			err := db.Update(func(tx kv.Txn) error {
				attempts++
				n := 0
				it := tx.Scan([]byte("acct/"), []byte("acct0"), 0)
				for it.Next() {
					n++
				}
				if err := it.Err(); err != nil {
					return err
				}
				// The phantom: after the scan but before commit, a second
				// client inserts a key inside the scanned range. Exactly
				// once — the retried closure must count it.
				once.Do(func() {
					if err := db.Put([]byte("acct/c"), []byte("1")); err != nil {
						t.Errorf("concurrent insert: %v", err)
					}
				})
				return tx.Put([]byte("total"), []byte(fmt.Sprintf("%d", n)))
			})
			if err != nil {
				t.Fatal(err)
			}

			got, err := db.Get([]byte("total"))
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "3" {
				t.Errorf("committed total = %s, want 3 (phantom key missed)", got)
			}
			if attempts < 2 {
				t.Errorf("closure ran %d time(s), want a conflict-driven retry", attempts)
			}
			if pc := c.Counters().PhantomConflicts; pc == 0 {
				t.Error("PhantomConflicts counter did not advance")
			}
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
