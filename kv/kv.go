// Package kv defines the canonical transactional key-value API of this
// repository: one DB contract that every data-layer engine implements, from
// a single simulated System (store.Store / store.Sharded behind an rhtm
// engine — see NewLocal) to the share-nothing multi-System cluster with
// two-phase commit (cluster.Cluster — see NewCluster). The paper's thesis is
// that hardware and software transaction paths are substitutable behind one
// contract; this package extends the same symmetry up the stack, so one
// workload suite, one conformance battery, and one example can drive any
// engine at any scale.
//
// The surface is deliberately small:
//
//   - Get/Put/Delete are one-shot, single-key transactions.
//   - Update runs a closure transaction: every Txn operation inside fn is
//     atomic with the rest, and the implementation retries the whole closure
//     on conflict (see the retry policy below).
//   - Batch groups independent single-key operations into one transaction,
//     amortizing per-transaction overhead, with per-op results.
//   - Scan returns a cursor over the ordered index: ascending by key, with
//     the snapshot guarantee that every entry the iterator yields was
//     committed state at a single instant.
//
// Failures are errors.Is-able sentinels — ErrNotFound, ErrConflict,
// ErrArenaFull, ErrTooLarge — replacing the mixed bool/error returns of the
// layers below.
//
// # Retry policy
//
// Update re-executes fn when the transaction cannot commit due to
// contention: an engine-level abort storm, a pending cross-System write
// intent, or failed optimistic read validation. fn must therefore be safe
// to re-execute (side effects outside the Txn should be idempotent or
// deferred). A closure can also request a retry itself by returning
// ErrConflict. Any other non-nil error from fn aborts the transaction —
// no write survives — and is returned to the caller as-is. Retries use
// randomized exponential backoff and give up after the implementation's
// attempt bound with an error wrapping ErrConflict.
//
// Isolation inside fn is the standard optimistic contract: each read
// observes committed state, but reads of different keys are only
// guaranteed mutually consistent once the commit validates (the
// single-System implementation is stricter and never shows a torn pair;
// the cluster implementation is not). A closure that checks a cross-key
// invariant mid-flight should treat a violation as contention and return
// ErrConflict — if the snapshot really was torn, the commit would have
// failed validation anyway.
package kv

import (
	"errors"
	"math/rand"
	"runtime"
	"time"

	"rhtm/store"
)

// ErrNotFound reports a Get or Delete of an absent key.
var ErrNotFound = errors.New("kv: key not found")

// ErrConflict reports a transaction that could not commit within the
// implementation's retry bound. Returning it from an Update closure
// requests a retry of the whole closure.
var ErrConflict = errors.New("kv: transaction conflict")

// ErrArenaFull reports storage exhaustion: the owning store's arena has no
// block left for the write. It aliases the store package's sentinel, so
// errors.Is matches errors from either layer.
var ErrArenaFull = store.ErrArenaFull

// ErrTooLarge reports a key or value whose encoded block exceeds the
// largest arena size class. Alias of the store package's sentinel.
var ErrTooLarge = store.ErrTooLarge

// OpKind selects what a batch Op does.
type OpKind uint8

const (
	// OpGet reads Key; the value (or ErrNotFound) lands in the OpResult.
	OpGet OpKind = iota
	// OpPut stores Key→Value.
	OpPut
	// OpDelete removes Key; an absent key yields ErrNotFound in the
	// OpResult without failing the batch.
	OpDelete
)

// Op is one operation of a Batch.
type Op struct {
	Kind  OpKind
	Key   []byte
	Value []byte // OpPut only
}

// OpResult is the outcome of one batch Op. Err is nil on success,
// ErrNotFound for a Get or Delete of an absent key; per-op errors do not
// fail the batch (a batch fails as a whole only on hard errors such as
// ErrArenaFull or retry exhaustion).
type OpResult struct {
	Value []byte // OpGet only: a private copy of the value
	Err   error
}

// Entry is one key-value pair yielded by a Scan.
type Entry struct {
	Key   []byte
	Value []byte
}

// Iterator is a cursor over an ordered key range. Next advances and reports
// whether an entry is available; Key/Value return the current entry (private
// copies, valid until the next call to Next). After Next returns false, Err
// distinguishes normal exhaustion (nil) from a failed scan.
//
//	it := db.Scan(start, end, 0)
//	for it.Next() {
//	    use(it.Key(), it.Value())
//	}
//	if err := it.Err(); err != nil { ... }
type Iterator interface {
	Next() bool
	Key() []byte
	Value() []byte
	Err() error
}

// Txn is the view inside an Update closure. All operations are part of one
// atomic transaction: they commit together when fn returns nil, or vanish
// together when fn errors or the commit conflicts.
type Txn interface {
	// Get returns a private copy of key's value, or ErrNotFound.
	Get(key []byte) ([]byte, error)
	// Put stores key→value (both copied).
	Put(key, value []byte) error
	// Delete removes key, returning ErrNotFound when it was absent.
	Delete(key []byte) error
	// Scan returns a cursor over start <= key < end (nil bounds are
	// unbounded) yielding at most limit entries (0 = unbounded). The cursor
	// observes this transaction's own writes.
	Scan(start, end []byte, limit int) Iterator
}

// DB is the canonical transactional key-value interface. Implementations
// are safe for concurrent use by any number of goroutines: callers
// multiplex over an internal bounded session pool (engine threads /
// cluster clients), with excess callers queueing for a free session.
type DB interface {
	// Get returns a private copy of key's committed value, or ErrNotFound.
	Get(key []byte) ([]byte, error)
	// Put atomically stores key→value.
	Put(key, value []byte) error
	// Delete atomically removes key, returning ErrNotFound when absent.
	Delete(key []byte) error
	// Update runs fn as one closure transaction under the package retry
	// policy (see the package comment).
	Update(fn func(tx Txn) error) error
	// Batch executes independent single-key ops as one transaction and
	// returns per-op results in order. Ops see each other in batch order
	// (a Get after a Put of the same key observes the Put). The whole
	// batch commits atomically.
	Batch(ops []Op) ([]OpResult, error)
	// Scan returns a cursor over start <= key < end (nil bounds are
	// unbounded) in ascending key order, yielding at most limit entries
	// (0 = unbounded). The yielded prefix is a consistent snapshot: no
	// torn multi-key transaction, no phantom, is ever observable in it.
	Scan(start, end []byte, limit int) Iterator
}

// maxAttempts bounds Update/Batch/Scan retries before ErrConflict.
const maxAttempts = 10_000

// backoff yields, then sleeps with randomized exponential growth, between
// conflicting attempts. The global rand functions are locked, so this is
// safe from any goroutine.
func backoff(attempt int) {
	if attempt < 4 {
		runtime.Gosched()
		return
	}
	shift := attempt
	if shift > 10 {
		shift = 10
	}
	time.Sleep(time.Duration(1+rand.Intn(1<<shift)) * time.Microsecond)
}

// execOp applies one batch op through a Txn, mapping ErrNotFound into the
// per-op result and returning only hard errors. Both implementations run
// their Batch through this, so batch semantics cannot drift between them.
func execOp(tx Txn, op Op) (OpResult, error) {
	switch op.Kind {
	case OpGet:
		v, err := tx.Get(op.Key)
		if errors.Is(err, ErrNotFound) {
			return OpResult{Err: ErrNotFound}, nil
		}
		return OpResult{Value: v}, err
	case OpPut:
		return OpResult{}, tx.Put(op.Key, op.Value)
	default:
		err := tx.Delete(op.Key)
		if errors.Is(err, ErrNotFound) {
			return OpResult{Err: ErrNotFound}, nil
		}
		return OpResult{}, err
	}
}

// batchViaUpdate is the shared Batch implementation: one Update transaction
// executing every op in order.
func batchViaUpdate(db DB, ops []Op) ([]OpResult, error) {
	results := make([]OpResult, len(ops))
	err := db.Update(func(tx Txn) error {
		for i, op := range ops {
			r, err := execOp(tx, op)
			if err != nil {
				return err
			}
			results[i] = r
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// entriesIter is a buffered Iterator over pre-collected entries, used for
// snapshot scans that materialize their prefix before yielding.
type entriesIter struct {
	entries []Entry
	pos     int
	err     error
}

func (it *entriesIter) Next() bool {
	if it.err != nil || it.pos >= len(it.entries) {
		return false
	}
	it.pos++
	return true
}

func (it *entriesIter) Key() []byte   { return it.entries[it.pos-1].Key }
func (it *entriesIter) Value() []byte { return it.entries[it.pos-1].Value }
func (it *entriesIter) Err() error    { return it.err }

// errIter is an Iterator that failed before yielding anything.
func errIter(err error) Iterator { return &entriesIter{err: err} }
