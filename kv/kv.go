// Package kv defines the canonical transactional key-value API of this
// repository: one DB contract that every data-layer engine implements, from
// a single simulated System (store.Store / store.Sharded behind an rhtm
// engine — see NewLocal) to the share-nothing multi-System cluster with
// two-phase commit (cluster.Cluster — see NewCluster). The paper's thesis is
// that hardware and software transaction paths are substitutable behind one
// contract; this package extends the same symmetry up the stack, so one
// workload suite, one conformance battery, and one example can drive any
// engine at any scale.
//
// Beyond the transactional map (Get/Put/Delete, Update closures, Batch,
// Scan cursors), the contract is coordination-grade, etcd-style:
//
//   - Revisions: every key carries a monotonic commit version stamped by
//     the owning store's revision clock. PutIf/DeleteIf are conditional
//     writes guarded by it (rev 0 = "key must be absent"), Txn.Revision
//     reads it inside closures, GetRev pairs a read with its version —
//     every engine becomes a CAS machine with no new locking.
//   - Leases: Grant(ttl) mints a lease on the injected virtual-time Clock;
//     Put(..., WithLease(id)) attaches keys; KeepAlive extends; Revoke —
//     and the ExpireLeases pump — atomically delete a lease's keys in one
//     transaction (one 2PC commit on the cluster, however many Systems the
//     keys span).
//   - Watch streams: Watch(ctx, prefix, fromRev) delivers commit events
//     (per-key ordered, at-least-once, with explicit loss markers when a
//     slow consumer outruns the bounded commit log) fed by event rings the
//     data transactions themselves append to at commit time.
//
// Failures are errors.Is-able sentinels — ErrNotFound, ErrConflict,
// ErrRevisionMismatch, ErrLeaseNotFound, ErrReservedKey, ErrArenaFull,
// ErrTooLarge — replacing the mixed bool/error returns of the layers below.
//
// # Revisions
//
// A revision is the value of the owning store's revision clock at the write
// that produced the key's current state; every write (including deletes)
// advances the clock, so a key's revision strictly increases over its
// lifetime and can never repeat across delete/re-insert (no ABA). Clocks
// are per data partition — per shard on a sharded Local, per System on the
// cluster — so revisions order writes per key, not across partitions; on a
// single-store DB they are a total commit order.
//
// # Reserved keys
//
// The empty key and every key whose first byte is 0x00 are reserved for
// system metadata (lease records). User-facing operations reject them with
// ErrReservedKey, and scans skip them; this is what lets lease state ride
// the ordinary transactional keyspace — and therefore the ordinary commit
// paths, including cross-System 2PC — without leaking into user reads.
//
// One carve-out: the index namespace, keys prefixed by IndexSpace
// (0x00 'i'). Index entries are ordinary records a record layer (package
// index) writes inside the caller's own Update closures, so they must be
// reachable through every DB implementation — Local, the cluster, and the
// network client — with no protocol changes. Keys under IndexSpace are
// therefore NOT reserved: user-facing operations accept them, and a Scan
// whose start lies inside the namespace stays inside it (the cursor is
// clamped at the namespace end, never bleeding into user keys). The
// default views are unchanged: a nil-bounded Scan still starts at the
// first user key, and a nil-prefix Watch still delivers user-key events
// only — index traffic is visible exactly to callers that name the
// namespace.
//
// # Retry policy
//
// Update re-executes fn when the transaction cannot commit due to
// contention: an engine-level abort storm, a pending cross-System write
// intent, or failed optimistic read validation. fn must therefore be safe
// to re-execute (side effects outside the Txn should be idempotent or
// deferred). A closure can also request a retry itself by returning
// ErrConflict. Any other non-nil error from fn aborts the transaction —
// no write survives — and is returned to the caller as-is. Retries use
// randomized exponential backoff and give up after the implementation's
// attempt bound with an error wrapping ErrConflict.
//
// Isolation inside fn is the standard optimistic contract: each read
// observes committed state, but reads of different keys are only
// guaranteed mutually consistent once the commit validates (the
// single-System implementation is stricter and never shows a torn pair;
// the cluster implementation is not). A closure that checks a cross-key
// invariant mid-flight should treat a violation as contention and return
// ErrConflict — if the snapshot really was torn, the commit would have
// failed validation anyway.
package kv

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"rhtm/obs"
	"rhtm/store"
)

// ErrNotFound reports a Get or Delete of an absent key.
var ErrNotFound = errors.New("kv: key not found")

// ErrConflict reports a transaction that could not commit within the
// implementation's retry bound. Returning it from an Update closure
// requests a retry of the whole closure.
var ErrConflict = errors.New("kv: transaction conflict")

// ErrRevisionMismatch reports a PutIf/DeleteIf whose revision guard did not
// match the key's current revision (including rev 0 against a present key,
// or a nonzero rev against an absent one).
var ErrRevisionMismatch = errors.New("kv: revision mismatch")

// ErrLeaseNotFound reports an operation against a lease id that was never
// granted, already expired, or was revoked.
var ErrLeaseNotFound = errors.New("kv: lease not found")

// ErrReservedKey reports a user operation on a reserved key (empty, or
// first byte 0x00) — the namespace lease records live in.
var ErrReservedKey = errors.New("kv: key is in the reserved system namespace")

// ErrArenaFull reports storage exhaustion: the owning store's arena has no
// block left for the write. It aliases the store package's sentinel, so
// errors.Is matches errors from either layer.
var ErrArenaFull = store.ErrArenaFull

// ErrTooLarge reports a key or value whose encoded block exceeds the
// largest arena size class. Alias of the store package's sentinel.
var ErrTooLarge = store.ErrTooLarge

// Revision is a key's monotonic commit version (see the package comment).
// 0 is never a live revision: it means "absent" in guards and "no replay"
// in Watch.
type Revision = uint64

// LeaseID names a granted lease; 0 means "no lease".
type LeaseID = uint64

// PutOption modifies a Put (DB- or Txn-level).
type PutOption func(*putOpts)

type putOpts struct {
	lease LeaseID
}

// WithLease attaches the written key to a granted lease: when the lease
// expires or is revoked, the key is deleted atomically with the lease's
// other keys. A later Put without the option detaches the key.
func WithLease(id LeaseID) PutOption {
	return func(o *putOpts) { o.lease = id }
}

func applyPutOptions(opts []PutOption) putOpts {
	var o putOpts
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// LeaseOf resolves opts to the lease they attach (0 = none) — for front
// ends (the network client) that serialize a Put instead of executing it.
func LeaseOf(opts ...PutOption) LeaseID {
	return applyPutOptions(opts).lease
}

// OpKind selects what a batch Op does.
type OpKind uint8

const (
	// OpGet reads Key; the value (or ErrNotFound) lands in the OpResult.
	OpGet OpKind = iota
	// OpPut stores Key→Value (attached to Lease when nonzero).
	OpPut
	// OpDelete removes Key; an absent key yields ErrNotFound in the
	// OpResult without failing the batch.
	OpDelete
)

// Op is one operation of a Batch.
type Op struct {
	Kind  OpKind
	Key   []byte
	Value []byte  // OpPut only
	Lease LeaseID // OpPut only: attach to this lease (0 = none)
}

// OpResult is the outcome of one batch Op. Err is nil on success,
// ErrNotFound for a Get or Delete of an absent key; per-op errors do not
// fail the batch (a batch fails as a whole only on hard errors such as
// ErrArenaFull or retry exhaustion).
type OpResult struct {
	Value []byte // OpGet only: a private copy of the value
	Err   error
}

// Entry is one key-value pair yielded by a Scan.
type Entry struct {
	Key   []byte
	Value []byte
}

// EventKind classifies a Watch event.
type EventKind uint8

const (
	// EventPut reports a key's insert or overwrite.
	EventPut EventKind = iota
	// EventDelete reports a key's removal.
	EventDelete
	// EventLost marks a gap: the bounded commit log (or the watcher's
	// delivery queue) overflowed and an unknown number of events between
	// the previous event and the next one were dropped. Consumers needing
	// exact state re-read with Scan/GetRev and continue.
	EventLost
)

// Event is one commit notification delivered by Watch.
type Event struct {
	Kind EventKind
	Key  []byte
	// Value is the written value for EventPut — nil when the value was too
	// large for the bounded commit log (consumers Get the key on demand).
	Value []byte
	// Rev is the revision the write was stamped with. Per key, delivered
	// revisions strictly increase. Zero for EventLost.
	Rev Revision
}

// Iterator is a cursor over an ordered key range. Next advances and reports
// whether an entry is available; Key/Value return the current entry (private
// copies, valid until the next call to Next). After Next returns false, Err
// distinguishes normal exhaustion (nil) from a failed scan.
//
//	it := db.Scan(start, end, 0)
//	for it.Next() {
//	    use(it.Key(), it.Value())
//	}
//	if err := it.Err(); err != nil { ... }
type Iterator interface {
	Next() bool
	Key() []byte
	Value() []byte
	Err() error
}

// Txn is the view inside an Update closure. All operations are part of one
// atomic transaction: they commit together when fn returns nil, or vanish
// together when fn errors or the commit conflicts.
type Txn interface {
	// Get returns a private copy of key's value, or ErrNotFound.
	Get(key []byte) ([]byte, error)
	// Revision returns key's current revision — 0 (with a nil error) when
	// the key is absent. Pair it with Put/Delete in the same closure for
	// serializable read-modify-writes; use PutIf/DeleteIf for the one-shot
	// optimistic form. Read the revision BEFORE writing the key in the
	// same closure: a write's own revision is assigned at commit, so what
	// Revision reports after a same-transaction write is backend-specific
	// (the eager single-System implementation shows a provisional fresh
	// revision, the cluster's buffered transaction still shows the
	// committed observation). The shared PutIf/DeleteIf helpers follow
	// this rule, which is what keeps conditional-write semantics identical
	// across backends.
	Revision(key []byte) (Revision, error)
	// Put stores key→value (both copied), attaching a lease when the
	// WithLease option is given (which requires the lease to exist).
	Put(key, value []byte, opts ...PutOption) error
	// Delete removes key, returning ErrNotFound when it was absent.
	Delete(key []byte) error
	// Scan returns a cursor over start <= key < end (nil bounds are
	// unbounded) yielding at most limit entries (0 = unbounded). The cursor
	// observes this transaction's own writes.
	Scan(start, end []byte, limit int) Iterator
}

// DB is the canonical transactional key-value interface. Implementations
// are safe for concurrent use by any number of goroutines: callers
// multiplex over an internal bounded session pool (engine threads /
// cluster clients), with excess callers queueing for a free session.
type DB interface {
	// Get returns a private copy of key's committed value, or ErrNotFound.
	Get(key []byte) ([]byte, error)
	// GetRev is Get paired with the key's revision — the token a later
	// PutIf/DeleteIf is guarded by.
	GetRev(key []byte) ([]byte, Revision, error)
	// Put atomically stores key→value; WithLease attaches it to a lease.
	Put(key, value []byte, opts ...PutOption) error
	// PutIf stores key→value only if the key's current revision equals rev
	// (0 = only if absent), failing with ErrRevisionMismatch otherwise —
	// optimistic compare-and-swap on any engine.
	PutIf(key, value []byte, rev Revision, opts ...PutOption) error
	// Delete atomically removes key, returning ErrNotFound when absent.
	Delete(key []byte) error
	// DeleteIf removes key only if its current revision equals rev, failing
	// with ErrRevisionMismatch otherwise (rev 0 never matches a present
	// key; deleting an absent key reports ErrNotFound).
	DeleteIf(key []byte, rev Revision) error
	// Update runs fn as one closure transaction under the package retry
	// policy (see the package comment).
	Update(fn func(tx Txn) error) error
	// Batch executes independent single-key ops as one transaction and
	// returns per-op results in order. Ops see each other in batch order
	// (a Get after a Put of the same key observes the Put). The whole
	// batch commits atomically.
	Batch(ops []Op) ([]OpResult, error)
	// Scan returns a cursor over start <= key < end (nil bounds are
	// unbounded) in ascending key order, yielding at most limit entries
	// (0 = unbounded). The yielded prefix is a consistent snapshot: no
	// torn multi-key transaction, no phantom, is ever observable in it.
	Scan(start, end []byte, limit int) Iterator

	// Grant mints a lease expiring ttl clock ticks from now (see Clock).
	Grant(ttl uint64) (LeaseID, error)
	// KeepAlive pushes the lease's deadline to now+ttl (the granted ttl),
	// failing with ErrLeaseNotFound for a dead lease.
	KeepAlive(id LeaseID) error
	// Revoke deletes the lease and every key still attached to it, as one
	// atomic transaction (one 2PC commit on the cluster).
	Revoke(id LeaseID) error
	// ExpireLeases revokes every lease whose deadline has passed on the
	// DB's clock, one atomic transaction per lease, returning how many it
	// expired. Drivers pump it on their virtual-time cadence; it is safe to
	// run from several goroutines (a lease expires exactly once).
	ExpireLeases() (int, error)
	// Clock returns the DB's virtual-time source (injected at
	// construction; see WithClock and ManualClock).
	Clock() Clock

	// Watch streams commit events for keys under prefix (nil = all user
	// keys) until ctx is cancelled, at which point the channel closes.
	// Delivery is per-key ordered and at-least-once while the consumer
	// keeps up with the bounded commit log; falling behind surfaces as an
	// EventLost marker, never as silent drops. fromRev > 0 first replays
	// the retained history with revisions >= fromRev (per revision clock);
	// 0 streams new events only.
	Watch(ctx context.Context, prefix []byte, fromRev Revision) (<-chan Event, error)

	// Checkpoint writes a full-state snapshot into the DB's write-ahead
	// log, bounding the next recovery's replay to the post-checkpoint
	// suffix. DBs constructed without a log (NewLocal, NewCluster) return
	// ErrNoWAL; recovered DBs come from OpenLocal / OpenCluster.
	Checkpoint() error

	// Metrics captures the DB's observability surface: the registry's
	// host-side instruments (leases, watch loss, WAL amortization, 2PC
	// phase timings) merged with the engines' live commit/abort taxonomy
	// and the stores' occupancy counters. Safe to call while transactions
	// run; the snapshot's schema is identical on every backend (see
	// DESIGN.md §10 for the name taxonomy).
	Metrics() obs.Snapshot
}

// maxAttempts bounds Update/Batch/Scan retries before ErrConflict.
const maxAttempts = 10_000

// backoff yields, then sleeps with randomized exponential growth, between
// conflicting attempts. The global rand functions are locked, so this is
// safe from any goroutine.
func backoff(attempt int) {
	if attempt < 4 {
		runtime.Gosched()
		return
	}
	shift := attempt
	if shift > 10 {
		shift = 10
	}
	time.Sleep(time.Duration(1+rand.Intn(1<<shift)) * time.Microsecond)
}

// IndexSpace is the prefix of the index namespace: the one region of the
// 0x00 system keyspace that user-facing operations may address (see the
// package comment). Secondary-index entries live at
// IndexSpace ‖ indexID ‖ encoded-value ‖ primary-key, so a range Scan
// starting inside the namespace IS an index scan. Treat as read-only.
var IndexSpace = []byte{0x00, 'i'}

// IndexSpaceEnd is the exclusive upper bound of the index namespace:
// every index-entry key k satisfies IndexSpace <= k < IndexSpaceEnd.
// Treat as read-only.
var IndexSpaceEnd = []byte{0x00, 'j'}

// indexSpaceKey reports whether k lies in the index namespace.
func indexSpaceKey(k []byte) bool {
	return len(k) >= 2 && k[0] == 0x00 && k[1] == 'i'
}

// reservedKey reports whether k is in the system namespace (see the
// package comment). Index-namespace keys are deliberately not reserved.
func reservedKey(k []byte) bool {
	return (len(k) == 0 || k[0] == 0x00) && !indexSpaceKey(k)
}

// IsReservedKey reports whether k is in the reserved system namespace
// (empty, or first byte 0x00, excluding the IndexSpace carve-out).
// Exported for front ends — the network server and client — that must
// reject reserved keys with ErrReservedKey before an operation ever
// reaches a transaction.
func IsReservedKey(k []byte) bool { return reservedKey(k) }

// userSpaceStart is the smallest non-reserved key outside the index
// namespace.
var userSpaceStart = []byte{0x01}

// clampUserRange narrows [start, end) to the user-visible keyspace,
// returning empty=true when nothing user-visible remains. A start inside
// the index namespace selects that namespace: the range is clamped at
// IndexSpaceEnd so an index cursor can never bleed into user keys. Any
// other start (nil included) is clamped up to the first user key, so
// default scans never see index entries.
func clampUserRange(start, end []byte) (s, e []byte, empty bool) {
	if indexSpaceKey(start) {
		if end == nil || bytes.Compare(end, IndexSpaceEnd) > 0 {
			end = IndexSpaceEnd
		}
		if bytes.Compare(end, start) <= 0 {
			return nil, nil, true
		}
		return start, end, false
	}
	if start == nil || bytes.Compare(start, userSpaceStart) < 0 {
		start = userSpaceStart
	}
	if end != nil && bytes.Compare(end, start) <= 0 {
		return nil, nil, true
	}
	return start, end, false
}

// coordTxn is the internal transaction surface both backends expose beyond
// Txn: raw (reservation-exempt) access for the lease machinery, which
// stores its records as ordinary transactional keys in the reserved
// namespace.
type coordTxn interface {
	Txn
	getRaw(key []byte) ([]byte, error)
	putRaw(key, value []byte, lease LeaseID) error
	deleteRaw(key []byte) error
	leaseOf(key []byte) (LeaseID, error)
	scanRaw(start, end []byte, limit int) Iterator
}

// backend is the internal DB surface the shared coordination helpers
// (conditional writes, leases) run against.
type backend interface {
	DB
	// rawScan snapshots [start, end) without the user-keyspace clamp.
	rawScan(start, end []byte, limit int) ([]Entry, error)
	// metrics exposes the backend's pre-resolved instruments; with
	// WithMetrics(nil) every instrument is the nil no-op.
	metrics() *kvMetrics
}

// txnPut is the one Put implementation both backends' Txn.Put delegate to:
// it enforces the reserved namespace and maintains the lease record's key
// list atomically with the write.
func txnPut(ct coordTxn, key, value []byte, opts []PutOption) error {
	if reservedKey(key) {
		return ErrReservedKey
	}
	o := applyPutOptions(opts)
	if o.lease == 0 {
		return ct.putRaw(key, value, 0)
	}
	return leaseAttach(ct, key, value, o.lease)
}

// getRev is the shared GetRev implementation: one closure transaction
// pairing the value with the revision it was committed at.
func getRev(db DB, key []byte) ([]byte, Revision, error) {
	var val []byte
	var rev Revision
	err := db.Update(func(tx Txn) error {
		var err error
		if val, err = tx.Get(key); err != nil {
			return err
		}
		rev, err = tx.Revision(key)
		return err
	})
	if err != nil {
		return nil, 0, err
	}
	return val, rev, nil
}

// putIf is the shared PutIf implementation: both backends run it through
// their Update path, so conditional-write semantics cannot drift.
func putIf(db DB, key, value []byte, rev Revision, opts []PutOption) error {
	return db.Update(func(tx Txn) error {
		cur, err := tx.Revision(key)
		if err != nil {
			return err
		}
		if cur != rev {
			return fmt.Errorf("kv: key %q at revision %d, guard %d: %w",
				key, cur, rev, ErrRevisionMismatch)
		}
		return tx.Put(key, value, opts...)
	})
}

// deleteIf is the shared DeleteIf implementation.
func deleteIf(db DB, key []byte, rev Revision) error {
	return db.Update(func(tx Txn) error {
		cur, err := tx.Revision(key)
		if err != nil {
			return err
		}
		if cur == 0 {
			return ErrNotFound
		}
		if cur != rev {
			return fmt.Errorf("kv: key %q at revision %d, guard %d: %w",
				key, cur, rev, ErrRevisionMismatch)
		}
		return tx.Delete(key)
	})
}

// execOp applies one batch op through a Txn, mapping ErrNotFound into the
// per-op result and returning only hard errors. Both implementations run
// their Batch through this, so batch semantics cannot drift between them.
func execOp(tx Txn, op Op) (OpResult, error) {
	switch op.Kind {
	case OpGet:
		v, err := tx.Get(op.Key)
		if errors.Is(err, ErrNotFound) {
			return OpResult{Err: ErrNotFound}, nil
		}
		return OpResult{Value: v}, err
	case OpPut:
		if op.Lease != 0 {
			return OpResult{}, tx.Put(op.Key, op.Value, WithLease(op.Lease))
		}
		return OpResult{}, tx.Put(op.Key, op.Value)
	default:
		err := tx.Delete(op.Key)
		if errors.Is(err, ErrNotFound) {
			return OpResult{Err: ErrNotFound}, nil
		}
		return OpResult{}, err
	}
}

// batchViaUpdate is the shared Batch implementation: one Update transaction
// executing every op in order.
func batchViaUpdate(db DB, ops []Op) ([]OpResult, error) {
	results := make([]OpResult, len(ops))
	err := db.Update(func(tx Txn) error {
		for i, op := range ops {
			r, err := execOp(tx, op)
			if err != nil {
				return err
			}
			results[i] = r
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// entriesIter is a buffered Iterator over pre-collected entries, used for
// snapshot scans that materialize their prefix before yielding.
type entriesIter struct {
	entries []Entry
	pos     int
	err     error
}

func (it *entriesIter) Next() bool {
	if it.err != nil || it.pos >= len(it.entries) {
		return false
	}
	it.pos++
	return true
}

func (it *entriesIter) Key() []byte   { return it.entries[it.pos-1].Key }
func (it *entriesIter) Value() []byte { return it.entries[it.pos-1].Value }
func (it *entriesIter) Err() error    { return it.err }

// emptyIter is an exhausted Iterator (clamped-away ranges).
func emptyIter() Iterator { return &entriesIter{} }

// errIter is an Iterator that failed before yielding anything.
func errIter(err error) Iterator { return &entriesIter{err: err} }
