package kv

import (
	"bytes"
	"context"
	"sort"
	"sync"
	"time"

	"rhtm"
	"rhtm/obs"
	"rhtm/store"
)

// The watch hub turns the stores' commit-event rings into Go channels. One
// hub per DB owns one poller goroutine and one dedicated engine thread per
// System; it drains every ring with read-only transactions (a concurrent
// append that would tear a read aborts and retries it, so each drained
// batch is a consistent ring snapshot), merges the batch across rings by
// revision, and fans events out to subscribers over bounded host-side
// queues. Writers wake the hub after committing; a slow fallback tick
// catches writes made behind the DB's back (direct store/cluster users).
//
// Delivery guarantees, and their boundaries, live in exactly two places:
//
//   - The ring is bounded: if the hub falls behind it (or a subscriber
//     falls behind its queue), the gap surfaces as one EventLost marker in
//     order — never a silent drop, never a reordering. A subscriber queue
//     at its bound first coalesces per key (see MaxWatchQueue): the oldest
//     queued event of the same key is shed for the newest, so sustained
//     slow consumption degrades to latest-value-per-key before it degrades
//     to loss. Within a ring,
//     delivered events preserve log order, so per-key revisions strictly
//     increase (a key lives on one shard/System and therefore one ring).
//   - Merging across rings sorts each drained batch by revision. Ring
//     clocks are independent, so this is a deterministic interleave, not a
//     global happens-before — per-key ordering is the contract, cross-key
//     ordering is best-effort. On a single-store DB there is one ring and
//     delivery order is the commit order.

// logSource is one event ring plus the way to run a transaction on its
// System.
type logSource struct {
	log *store.EventLog
	run func(fn func(tx rhtm.Tx) error) error
}

const (
	// hubPollEvents bounds the records one drain transaction decodes, to
	// keep its read footprint within any engine's reach.
	hubPollEvents = 128
	// hubFallbackPoll is the idle re-poll period covering writes that
	// bypass the DB's wake calls.
	hubFallbackPoll = 25 * time.Millisecond
)

// MaxWatchQueue bounds a subscriber's pending events. At the bound the
// queue coalesces before it loses — see WatchQueue (watchqueue.go) for
// the full overflow ladder. A variable (not a const) so tests can shrink
// it; change it during single-threaded setup only (each subscription
// captures it at Watch time).
var MaxWatchQueue = 8192

// watchHub multiplexes one DB's event rings to its watchers.
type watchHub struct {
	newSources func() []logSource
	wakeCh     chan struct{}

	// lost counts every EventLost marker enqueued to any subscriber
	// (watch.events_lost). Set once at DB construction; nil is a no-op.
	lost *obs.Counter

	mu      sync.Mutex
	idle    *sync.Cond // signalled when the poller stops
	sources []logSource
	offsets []uint64
	dropped []uint64 // per source: ring drop counter at the last poll
	subs    map[*watchSub]struct{}
	running bool
}

func newWatchHub(newSources func() []logSource) *watchHub {
	h := &watchHub{
		newSources: newSources,
		wakeCh:     make(chan struct{}, 1),
		subs:       map[*watchSub]struct{}{},
	}
	h.idle = sync.NewCond(&h.mu)
	return h
}

// waitIdle blocks until the poller goroutine has stopped — which happens
// once every subscriber is gone, so call it only after cancelling every
// Watch context and draining the channels. After it returns, the hub's
// dedicated engine threads are guaranteed outside Atomic, making it safe
// to take engine snapshots or run raw-memory validation.
func (h *watchHub) waitIdle() {
	h.mu.Lock()
	for h.running {
		h.idle.Wait()
	}
	h.mu.Unlock()
}

// wake nudges the poller after a committed write. Non-blocking.
func (h *watchHub) wake() {
	select {
	case h.wakeCh <- struct{}{}:
	default:
	}
}

// watch registers a subscriber and returns its event channel. The channel
// closes when ctx is cancelled.
func (h *watchHub) watch(ctx context.Context, prefix []byte, fromRev Revision) (<-chan Event, error) {
	sub := &watchSub{
		prefix:  append([]byte(nil), prefix...),
		ch:      make(chan Event, 64),
		notify:  make(chan struct{}, 1),
		lost:    h.lost,
		pending: NewWatchQueue(),
	}
	h.mu.Lock()
	if h.sources == nil {
		// Engine threads are permanent registrations: create them once,
		// even if the offset initialization below has to be retried.
		h.sources = h.newSources()
	}
	if h.offsets == nil {
		// Start streaming at the current head of every ring. Offsets are
		// published only when every ring was read — a failure leaves them
		// nil so the next Watch retries instead of streaming stale history
		// from offset 0.
		offsets := make([]uint64, len(h.sources))
		dropped := make([]uint64, len(h.sources))
		for i, src := range h.sources {
			err := src.run(func(tx rhtm.Tx) error {
				offsets[i] = src.log.Head(tx)
				dropped[i] = src.log.Dropped(tx)
				return nil
			})
			if err != nil {
				h.mu.Unlock()
				return nil, err
			}
		}
		h.offsets, h.dropped = offsets, dropped
	}
	if fromRev > 0 {
		if err := h.replayLocked(sub, fromRev); err != nil {
			h.mu.Unlock()
			return nil, err
		}
	}
	h.subs[sub] = struct{}{}
	if !h.running {
		h.running = true
		go h.loop()
	}
	h.mu.Unlock()
	go sub.deliver(ctx, h)
	return sub.ch, nil
}

// replayLocked seeds a new subscriber with the retained history at or past
// fromRev: each ring is read from its oldest retained record up to the
// hub's current offset (events past it arrive through the live stream, so
// the splice point is exact — no gap, no duplicate). History that fromRev
// asks for but the bounded ring no longer holds surfaces as a leading
// EventLost.
func (h *watchHub) replayLocked(sub *watchSub, fromRev Revision) error {
	var replay []Event
	lost := false
	for i, src := range h.sources {
		var srcReplay []Event
		srcLost := false
		// The body may re-execute on engine aborts: reset its side effects
		// up front so only the committed attempt's collection survives.
		err := src.run(func(tx rhtm.Tx) error {
			srcReplay, srcLost = srcReplay[:0], false
			if fromRev <= src.log.HistoryFloor(tx) {
				// The ring was rebuilt by crash recovery: history in the
				// recovered range is incomplete by construction (a
				// checkpoint folds overwritten revisions and deletes away),
				// so the replay must lead with an explicit loss marker.
				srcLost = true
			}
			pos, first := uint64(0), true
			for pos < h.offsets[i] {
				// Bounded at the hub's offset: everything past it arrives
				// through the live stream, so the splice is exact.
				evs, next, _ := src.log.ReadRange(tx, pos, h.offsets[i], hubPollEvents)
				if first {
					first = false
					// Ring revisions are dense (every revision pairs with
					// one append), so retained history starting past
					// fromRev means [fromRev, oldest) was overwritten; an
					// empty ring with an advanced clock lost everything.
					if len(evs) > 0 {
						if fromRev < evs[0].Rev {
							srcLost = true
						}
					} else if rev := src.log.Rev(tx); rev > 0 && fromRev <= rev {
						srcLost = true
					}
				}
				if len(evs) == 0 {
					break
				}
				for _, ev := range evs {
					if ev.Rev >= fromRev && sub.matches(ev.Key) {
						srcReplay = append(srcReplay, eventOf(ev))
					}
				}
				pos = next
			}
			return nil
		})
		if err != nil {
			return err
		}
		replay = append(replay, srcReplay...)
		lost = lost || srcLost
	}
	sort.SliceStable(replay, func(a, b int) bool { return replay[a].Rev < replay[b].Rev })
	if lost {
		sub.pending.PushLost()
		h.lost.Inc()
	}
	for _, ev := range replay {
		sub.pending.Append(ev)
	}
	return nil
}

// loop is the poller: wait for a wake (or the fallback tick), drain every
// ring, dispatch. It exits when the last subscriber unsubscribes.
func (h *watchHub) loop() {
	tick := time.NewTicker(hubFallbackPoll)
	defer tick.Stop()
	for {
		select {
		case <-h.wakeCh:
		case <-tick.C:
		}
		h.mu.Lock()
		if len(h.subs) == 0 {
			h.running = false
			h.idle.Broadcast()
			h.mu.Unlock()
			return
		}
		h.pollLocked()
		h.mu.Unlock()
	}
}

// pollLocked drains every ring once and dispatches the merged batch.
func (h *watchHub) pollLocked() {
	var batch []Event
	gap := false
	for i, src := range h.sources {
		for {
			var evs []store.Ev
			var next, oldest, drops uint64
			err := src.run(func(tx rhtm.Tx) error {
				evs, next, oldest = src.log.Read(tx, h.offsets[i], hubPollEvents)
				drops = src.log.Dropped(tx)
				return nil
			})
			if err != nil {
				// A read failure (engine contention beyond its bound) is
				// indistinguishable from loss; surface it as one.
				gap = true
				break
			}
			if oldest > h.offsets[i] {
				gap = true
			}
			if drops > h.dropped[i] {
				// The ring refused events outright (keys larger than it can
				// hold): the no-silent-drop contract demands a visible gap.
				h.dropped[i] = drops
				gap = true
			}
			h.offsets[i] = next
			for _, ev := range evs {
				batch = append(batch, eventOf(ev))
			}
			if len(evs) < hubPollEvents {
				break
			}
		}
	}
	if !gap && len(batch) == 0 {
		return
	}
	sort.SliceStable(batch, func(a, b int) bool { return batch[a].Rev < batch[b].Rev })
	for sub := range h.subs {
		if gap {
			sub.enqueueLost()
		}
		for _, ev := range batch {
			if sub.matches(ev.Key) {
				sub.enqueue(ev)
			}
		}
	}
}

// eventOf converts a store-level event.
func eventOf(ev store.Ev) Event {
	kind := EventPut
	if ev.Kind == store.EvDelete {
		kind = EventDelete
	}
	return Event{Kind: kind, Key: ev.Key, Value: ev.Value, Rev: ev.Rev}
}

// queueDepth sums the pending events across every subscriber — the
// watch.queue_depth gauge, sampled at snapshot time.
func (h *watchHub) queueDepth() int64 {
	var total int64
	h.mu.Lock()
	for sub := range h.subs {
		sub.mu.Lock()
		total += int64(sub.pending.Len())
		sub.mu.Unlock()
	}
	h.mu.Unlock()
	return total
}

// unsubscribe drops sub; the poller exits on its next round when none
// remain.
func (h *watchHub) unsubscribe(sub *watchSub) {
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
	h.wake()
}

// watchSub is one Watch call: a prefix filter, a bounded pending queue the
// hub appends to, and a delivery goroutine draining it into the user's
// channel.
type watchSub struct {
	prefix []byte
	ch     chan Event
	notify chan struct{}
	lost   *obs.Counter // the hub's loss counter (nil = uninstrumented)

	mu      sync.Mutex
	pending *WatchQueue
}

// matches reports whether key belongs to this subscription. A nil/empty
// prefix means "all user keys": reserved-namespace events (lease records)
// and index-namespace events are only visible to a watcher that names
// their prefix explicitly.
func (s *watchSub) matches(key []byte) bool {
	if len(s.prefix) == 0 {
		return !reservedKey(key) && !indexSpaceKey(key)
	}
	return bytes.HasPrefix(key, s.prefix)
}

// enqueue pushes one live event under the WatchQueue overflow ladder:
// coalesce to latest-value-per-key at the bound, EventLost only when no
// coalescing victim exists.
func (s *watchSub) enqueue(ev Event) {
	s.mu.Lock()
	lost := s.pending.Push(ev)
	s.mu.Unlock()
	if lost {
		s.lost.Inc()
	}
	s.nudge()
}

func (s *watchSub) enqueueLost() {
	s.mu.Lock()
	lost := s.pending.PushLost()
	s.mu.Unlock()
	if lost {
		s.lost.Inc()
	}
	s.nudge()
}

func (s *watchSub) nudge() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// deliver drains the pending queue into the subscriber's channel until ctx
// ends, then unsubscribes and closes it.
func (s *watchSub) deliver(ctx context.Context, h *watchHub) {
	defer func() {
		h.unsubscribe(s)
		close(s.ch)
	}()
	for {
		s.mu.Lock()
		ev, have := s.pending.PopFront()
		s.mu.Unlock()
		if !have {
			select {
			case <-ctx.Done():
				return
			case <-s.notify:
				continue
			}
		}
		select {
		case s.ch <- ev:
		case <-ctx.Done():
			return
		}
	}
}
