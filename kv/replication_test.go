package kv_test

import (
	"testing"

	"rhtm"
	"rhtm/cluster"
	"rhtm/internal/enginetest/dbtest"
	"rhtm/kv"
	"rhtm/repl"
	"rhtm/store"
	"rhtm/wal"
)

// Replication rigs: a durable primary inside a repl.Group over
// crash-imageable MemStorage, with a hook growing same-shaped replicas —
// the DBReplication battery section drives follower-read staleness audits
// and kill-the-primary failover against them, reusing the recovery
// section's independent committed-prefix oracle for the promotion diff.

// localReplFactory rigs a Local primary (shards=0 selects the unsharded
// store) with replicas of the same shard geometry.
func localReplFactory(engineName string, shards, inject int) dbtest.ReplFactory {
	newStore := func(s *rhtm.System) (kv.Storer, func() error) {
		if shards == 0 {
			ss := store.New(s, store.Options{ArenaWords: 1 << 14})
			return ss, ss.Validate
		}
		sh := store.NewSharded(s, shards, store.Options{ArenaWords: 1 << 13})
		return sh, sh.Validate
	}
	return func(t *testing.T) *dbtest.ReplRig {
		stg := wal.NewMemStorage()
		dev, err := stg.Device("wal")
		if err != nil {
			t.Fatal(err)
		}
		s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
		st, _ := newStore(s)
		db, err := kv.OpenLocal(newEngine(t, s, engineName, inject), st, dev)
		if err != nil {
			t.Fatal(err)
		}
		g, err := repl.NewLocalGroup(db, dev)
		if err != nil {
			t.Fatal(err)
		}
		return &dbtest.ReplRig{
			DB:    db,
			Group: g,
			AddReplica: func() (*repl.Follower, func() error, error) {
				rs := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
				rst, validate := newStore(rs)
				f, err := g.AddLocalReplica(newEngine(t, rs, engineName, inject), rst)
				return f, validate, err
			},
			OracleNow: func() (map[string][]byte, error) {
				return localOracle(stg.CrashImage(stg.Appended()))
			},
		}
	}
}

// clusterReplFactory rigs a multi-System primary with same-sized replica
// clusters.
func clusterReplFactory(engineName string, systems, inject int) dbtest.ReplFactory {
	newC := func(t *testing.T) *cluster.Cluster {
		return cluster.MustNew(cluster.Config{
			Systems:    systems,
			DataWords:  1 << 15,
			ArenaWords: 1 << 13,
			NewEngine: func(s *rhtm.System) (rhtm.Engine, error) {
				return newEngine(t, s, engineName, inject), nil
			},
		})
	}
	return func(t *testing.T) *dbtest.ReplRig {
		stg := wal.NewMemStorage()
		c := newC(t)
		db, err := kv.OpenCluster(c, stg)
		if err != nil {
			t.Fatal(err)
		}
		g, err := repl.NewClusterGroup(db, stg)
		if err != nil {
			t.Fatal(err)
		}
		return &dbtest.ReplRig{
			DB:    db,
			Group: g,
			AddReplica: func() (*repl.Follower, func() error, error) {
				rc := newC(t)
				f, err := g.AddClusterReplica(rc)
				return f, rc.Validate, err
			},
			OracleNow: func() (map[string][]byte, error) {
				return clusterOracle(stg.CrashImage(stg.Appended()), systems)
			},
		}
	}
}
