package kv_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"rhtm"
	"rhtm/kv"
	"rhtm/store"
)

// TestIndexSpaceSemantics pins the index-namespace carve-out of the
// reserved keyspace (DESIGN.md §13): keys under kv.IndexSpace are
// user-addressable, default scans and nil-prefix watches never see them,
// a scan cursor started inside the namespace is clamped at
// kv.IndexSpaceEnd so it cannot bleed into user keys, and the rest of the
// 0x00 namespace stays reserved.
func TestIndexSpaceSemantics(t *testing.T) {
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
	db := kv.NewLocal(rhtm.NewTL2(s), store.New(s, store.Options{ArenaWords: 1 << 14}))

	idxKey := append(append([]byte{}, kv.IndexSpace...), []byte("idx-a")...)
	userKey := []byte("user-a")

	// Index-namespace keys accept the full user-facing surface.
	if err := db.Put(idxKey, []byte("entry")); err != nil {
		t.Fatalf("Put(index-space key): %v", err)
	}
	if err := db.Put(userKey, []byte("row")); err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get(idxKey); err != nil || !bytes.Equal(v, []byte("entry")) {
		t.Fatalf("Get(index-space key) = %q, %v", v, err)
	}

	// The neighbouring 0x00 regions stay reserved on both sides of 'i'.
	for _, k := range [][]byte{{0x00, 'h', 1}, {0x00, 'j'}, {0x00}, {}} {
		if err := db.Put(k, []byte("x")); err != kv.ErrReservedKey {
			t.Errorf("Put(%q) err = %v, want ErrReservedKey", k, err)
		}
		if kv.IsReservedKey(append(kv.IndexSpace[:len(kv.IndexSpace):len(kv.IndexSpace)], 'x')) {
			t.Error("IsReservedKey claims an index-space key is reserved")
		}
	}

	// A default (nil-bound) scan sees only user keys; a scan started at
	// IndexSpace sees only index entries, even with an oversized end.
	collect := func(start, end []byte) [][]byte {
		var keys [][]byte
		it := db.Scan(start, end, 0)
		for it.Next() {
			keys = append(keys, append([]byte{}, it.Key()...))
		}
		if err := it.Err(); err != nil {
			t.Fatalf("scan [%q, %q): %v", start, end, err)
		}
		return keys
	}
	for _, k := range collect(nil, nil) {
		if bytes.HasPrefix(k, kv.IndexSpace) {
			t.Errorf("default scan leaked index entry %q", k)
		}
	}
	inIdx := collect(kv.IndexSpace, []byte("zzz"))
	if len(inIdx) != 1 || !bytes.Equal(inIdx[0], idxKey) {
		t.Errorf("index-space scan saw %q, want just %q (clamped at IndexSpaceEnd)", inIdx, idxKey)
	}
	if got := collect(kv.IndexSpace, kv.IndexSpace); len(got) != 0 {
		t.Errorf("empty index-space range yielded %q", got)
	}

	// A nil-prefix watch is user-keyspace only; naming the IndexSpace
	// prefix opts in to index-entry events.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	all, err := db.Watch(ctx, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	idxWatch, err := db.Watch(ctx, kv.IndexSpace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put(idxKey, []byte("entry-2")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(userKey, []byte("row-2")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	select {
	case ev := <-idxWatch:
		if !bytes.Equal(ev.Key, idxKey) {
			t.Errorf("index watch saw %q, want %q", ev.Key, idxKey)
		}
	case <-deadline:
		t.Fatal("index-space watch never delivered the entry event")
	}
	select {
	case ev := <-all:
		if !bytes.Equal(ev.Key, userKey) {
			t.Errorf("nil-prefix watch saw %q, want only user key %q", ev.Key, userKey)
		}
	case <-deadline:
		t.Fatal("nil-prefix watch never delivered the user event")
	}
}
