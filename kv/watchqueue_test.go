package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func wqSetMax(t *testing.T, n int) {
	t.Helper()
	orig := MaxWatchQueue
	MaxWatchQueue = n
	t.Cleanup(func() { MaxWatchQueue = orig })
}

func wqEvents(w *WatchQueue) []Event {
	var out []Event
	for {
		ev, ok := w.PopFront()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

func putEv(key string, rev uint64) Event {
	return Event{Kind: EventPut, Key: []byte(key), Value: []byte(key), Rev: rev}
}

// TestWatchQueueSameKeyCoalesce pins the first rung of the ladder: at the
// bound, the oldest queued event of the incoming key is shed for the
// newest, and no EventLost fires.
func TestWatchQueueSameKeyCoalesce(t *testing.T) {
	wqSetMax(t, 4)
	w := NewWatchQueue()
	for i := 0; i < 4; i++ {
		if lost := w.Push(putEv(fmt.Sprintf("k%d", i), uint64(i+1))); lost {
			t.Fatalf("push %d under the bound reported loss", i)
		}
	}
	if lost := w.Push(putEv("k0", 9)); lost {
		t.Fatal("same-key overflow reported loss")
	}
	got := wqEvents(w)
	want := []string{"k1", "k2", "k3", "k0"}
	if len(got) != len(want) {
		t.Fatalf("queue = %d events, want %d", len(got), len(want))
	}
	for i, k := range want {
		if string(got[i].Key) != k {
			t.Fatalf("event %d key %q, want %q", i, got[i].Key, k)
		}
	}
	if got[3].Rev != 9 {
		t.Fatalf("coalesced k0 rev %d, want the newest (9)", got[3].Rev)
	}
}

// TestWatchQueueCrossKeyEviction pins the second rung: an incoming key
// with nothing queued evicts the oldest superseded event of another key —
// the busy key's stale history absorbs the quiet key's arrival, and every
// key's latest value survives.
func TestWatchQueueCrossKeyEviction(t *testing.T) {
	wqSetMax(t, 4)
	w := NewWatchQueue()
	w.Push(putEv("busy", 1))
	w.Push(putEv("busy", 2))
	w.Push(putEv("busy", 3))
	w.Push(putEv("other", 4))
	if lost := w.Push(putEv("quiet", 5)); lost {
		t.Fatal("cross-key overflow reported loss despite superseded history")
	}
	got := wqEvents(w)
	wantKeys := []string{"busy", "busy", "other", "quiet"}
	wantRevs := []uint64{2, 3, 4, 5}
	for i := range wantKeys {
		if string(got[i].Key) != wantKeys[i] || got[i].Rev != wantRevs[i] {
			t.Fatalf("event %d = %q rev %d, want %q rev %d",
				i, got[i].Key, got[i].Rev, wantKeys[i], wantRevs[i])
		}
	}
}

// TestWatchQueueLossOnlyWhenSole pins the last rung: when every queued
// event is its key's sole entry, the overflow drops the incoming event and
// records exactly one EventLost, never two adjacent markers.
func TestWatchQueueLossOnlyWhenSole(t *testing.T) {
	wqSetMax(t, 2)
	w := NewWatchQueue()
	w.Push(putEv("a", 1))
	w.Push(putEv("b", 2))
	if lost := w.Push(putEv("c", 3)); !lost {
		t.Fatal("sole-entry overflow did not report loss")
	}
	if lost := w.Push(putEv("d", 4)); lost {
		t.Fatal("second overflow appended an adjacent EventLost marker")
	}
	got := wqEvents(w)
	if len(got) != 3 || got[2].Kind != EventLost {
		t.Fatalf("queue = %+v, want a, b, EventLost", got)
	}
}

// TestWatchQueuePopAccounting exercises the incremental per-key counts
// across pops: once the superseded history has been consumed, an overflow
// must declare loss rather than evict a key's sole remaining entry.
func TestWatchQueuePopAccounting(t *testing.T) {
	wqSetMax(t, 3)
	w := NewWatchQueue()
	w.Push(putEv("a", 1))
	w.Push(putEv("a", 2))
	w.Push(putEv("b", 3))
	if ev, _ := w.PopFront(); string(ev.Key) != "a" || ev.Rev != 1 {
		t.Fatalf("popped %+v, want a rev 1", ev)
	}
	w.Push(putEv("c", 4)) // refills to the bound; a's duplicate is gone
	if lost := w.Push(putEv("d", 5)); !lost {
		t.Fatal("overflow after the duplicate was popped must lose, not evict")
	}
}

// refPush is the pre-WatchQueue reference: the hub's original overflow
// ladder with its per-event full rescan (oldest same-key entry first, then
// the oldest event whose key was already seen closer to the tail). One
// deliberate deviation is mirrored: adjacent EventLost markers collapse
// even below the bound, where the original appended uninformative
// duplicates.
func refPush(q []Event, max int, ev Event) []Event {
	if ev.Kind == EventLost {
		if n := len(q); n == 0 || q[n-1].Kind != EventLost {
			q = append(q, Event{Kind: EventLost})
		}
		return q
	}
	if len(q) < max {
		return append(q, ev)
	}
	{
		victim := -1
		for i := range q {
			if q[i].Kind != EventLost && bytes.Equal(q[i].Key, ev.Key) {
				victim = i
				break
			}
		}
		if victim < 0 {
			seen := map[string]struct{}{}
			for i := len(q) - 1; i >= 0; i-- {
				if q[i].Kind == EventLost {
					continue
				}
				if _, dup := seen[string(q[i].Key)]; dup {
					victim = i
				} else {
					seen[string(q[i].Key)] = struct{}{}
				}
			}
		}
		if victim >= 0 {
			copy(q[victim:], q[victim+1:])
			q[len(q)-1] = ev
			return q
		}
	}
	if n := len(q); n == 0 || q[n-1].Kind != EventLost {
		q = append(q, Event{Kind: EventLost})
	}
	return q
}

// TestWatchQueueMatchesReference drives a random push/pop interleaving
// over a small keyspace and asserts the incremental-count implementation
// reproduces the reference ladder event for event.
func TestWatchQueueMatchesReference(t *testing.T) {
	wqSetMax(t, 8)
	rng := rand.New(rand.NewSource(1))
	w := NewWatchQueue()
	var ref []Event
	for step := 0; step < 20000; step++ {
		if rng.Intn(4) == 0 {
			ev, ok := w.PopFront()
			if ok != (len(ref) > 0) {
				t.Fatalf("step %d: pop ok=%v with reference len %d", step, ok, len(ref))
			}
			if ok {
				want := ref[0]
				ref = ref[1:]
				if ev.Kind != want.Kind || !bytes.Equal(ev.Key, want.Key) || ev.Rev != want.Rev {
					t.Fatalf("step %d: popped %+v, want %+v", step, ev, want)
				}
			}
			continue
		}
		var ev Event
		if rng.Intn(50) == 0 {
			ev = Event{Kind: EventLost} // an upstream gap forwarded in
		} else {
			ev = putEv(fmt.Sprintf("k%d", rng.Intn(12)), uint64(step+1))
		}
		w.Push(ev)
		ref = refPush(ref, 8, ev)
		if w.Len() != len(ref) {
			t.Fatalf("step %d: len %d, want %d", step, w.Len(), len(ref))
		}
	}
	got := wqEvents(w)
	for i := range got {
		if got[i].Kind != ref[i].Kind || !bytes.Equal(got[i].Key, ref[i].Key) || got[i].Rev != ref[i].Rev {
			t.Fatalf("final event %d = %+v, want %+v", i, got[i], ref[i])
		}
	}
}
