package kv_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rhtm"
	"rhtm/cluster"
	"rhtm/internal/enginetest/dbtest"
	"rhtm/kv"
	"rhtm/store"
)

// newEngine builds the named engine on s with the given injected hardware
// abort percentage (ignored by the software-only TL2).
func newEngine(t *testing.T, s *rhtm.System, name string, inject int) rhtm.Engine {
	t.Helper()
	switch name {
	case "RH1":
		return rhtm.NewRH1(s, rhtm.RH1Options{MixPercent: 100, InjectAbortPercent: inject})
	case "RH2":
		return rhtm.NewRH2(s, rhtm.RH1Options{MixPercent: 100, InjectAbortPercent: inject})
	case "TL2":
		return rhtm.NewTL2(s)
	case "StdHyTM":
		return rhtm.NewStandardHyTM(s, rhtm.HWOptions{InjectAbortPercent: inject})
	case "NoRec":
		return rhtm.NewHybridNoRec(s, rhtm.HWOptions{InjectAbortPercent: inject})
	case "Phased":
		return rhtm.NewPhasedTM(s, rhtm.HWOptions{InjectAbortPercent: inject})
	default:
		t.Fatalf("unknown engine %q", name)
		return nil
	}
}

// allEngines is the full engine set the shared battery runs against.
var allEngines = []string{"RH1", "RH2", "TL2", "StdHyTM", "NoRec", "Phased"}

// localFactory builds a Local DB over a fresh System; shards=0 selects the
// unsharded Store.
func localFactory(engineName string, shards, inject int) dbtest.DBFactory {
	return func(t *testing.T) (kv.DB, *kv.ManualClock, func() error) {
		s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
		eng := newEngine(t, s, engineName, inject)
		clock := kv.NewManualClock()
		if shards == 0 {
			st := store.New(s, store.Options{ArenaWords: 1 << 14})
			return kv.NewLocal(eng, st, kv.WithClock(clock)), clock, st.Validate
		}
		sh := store.NewSharded(s, shards, store.Options{ArenaWords: 1 << 13})
		return kv.NewLocal(eng, sh, kv.WithClock(clock)), clock, sh.Validate
	}
}

// clusterFactory builds a ClusterDB over a fresh cluster with injected
// hardware aborts, so both the engines' fallback paths and 2PC's abort path
// get exercised.
func clusterFactory(engineName string, systems, inject int) dbtest.DBFactory {
	return func(t *testing.T) (kv.DB, *kv.ManualClock, func() error) {
		c := cluster.MustNew(cluster.Config{
			Systems:    systems,
			DataWords:  1 << 15,
			ArenaWords: 1 << 13,
			NewEngine: func(s *rhtm.System) (rhtm.Engine, error) {
				return newEngine(t, s, engineName, inject), nil
			},
		})
		clock := kv.NewManualClock()
		return kv.NewCluster(c, kv.WithClock(clock)), clock, c.Validate
	}
}

// TestDBConformance is the tentpole acceptance: ONE battery, every engine,
// both implementations — the store-backed Local (sharded and unsharded) and
// the 2PC cluster (multi- and single-System) — with the crash-injection
// recovery section running against the durable Open paths of each.
func TestDBConformance(t *testing.T) {
	for _, eng := range allEngines {
		dbtest.RunDB(t, "Local/Sharded4/"+eng, localFactory(eng, 4, 10),
			dbtest.WithRecovery(localRecoveryFactory(eng, 4, 10)),
			dbtest.WithReplication(localReplFactory(eng, 4, 10)))
		dbtest.RunDB(t, "Cluster3/"+eng, clusterFactory(eng, 3, 20),
			dbtest.WithRecovery(clusterRecoveryFactory(eng, 3, 20)),
			dbtest.WithReplication(clusterReplFactory(eng, 3, 20)))
	}
	// The unsharded store and the degenerate one-System cluster share the
	// same contract; a spot check per family keeps the matrix tractable.
	dbtest.RunDB(t, "Local/Store/RH1", localFactory("RH1", 0, 10),
		dbtest.WithRecovery(localRecoveryFactory("RH1", 0, 10)))
	dbtest.RunDB(t, "Local/Store/TL2", localFactory("TL2", 0, 0),
		dbtest.WithRecovery(localRecoveryFactory("TL2", 0, 0)))
	dbtest.RunDB(t, "Cluster1/RH1", clusterFactory("RH1", 1, 20),
		dbtest.WithRecovery(clusterRecoveryFactory("RH1", 1, 20)))
}

// --- sentinel errors ---

func TestSentinelNotFound(t *testing.T) {
	for _, f := range map[string]dbtest.DBFactory{
		"local":   localFactory("TL2", 2, 0),
		"cluster": clusterFactory("TL2", 2, 0),
	} {
		db, _, _ := f(t)
		if _, err := db.Get([]byte("nope")); !errors.Is(err, kv.ErrNotFound) {
			t.Errorf("Get missing: %v, want ErrNotFound", err)
		}
		if err := db.Delete([]byte("nope")); !errors.Is(err, kv.ErrNotFound) {
			t.Errorf("Delete missing: %v, want ErrNotFound", err)
		}
		err := db.Update(func(tx kv.Txn) error {
			_, err := tx.Get([]byte("nope"))
			if !errors.Is(err, kv.ErrNotFound) {
				return fmt.Errorf("tx.Get missing: %v", err)
			}
			if err := tx.Delete([]byte("nope")); !errors.Is(err, kv.ErrNotFound) {
				return fmt.Errorf("tx.Delete missing: %v", err)
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}
}

func TestSentinelCapacity(t *testing.T) {
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 14))
	st := store.New(s, store.Options{ArenaWords: 256})
	db := kv.NewLocal(rhtm.NewTL2(s), st)
	// Oversized value: the largest class is 1<<15 words of payload.
	huge := make([]byte, 1<<19)
	if err := db.Put([]byte("k"), huge); !errors.Is(err, kv.ErrTooLarge) {
		t.Fatalf("oversized Put: %v, want ErrTooLarge", err)
	}
	// Fill the tiny arena until it reports exhaustion.
	var err error
	for i := 0; i < 64 && err == nil; i++ {
		err = db.Put([]byte(fmt.Sprintf("key-%02d", i)), make([]byte, 64))
	}
	if !errors.Is(err, kv.ErrArenaFull) {
		t.Fatalf("arena fill: %v, want ErrArenaFull", err)
	}
}

// TestUpdateRetriesOnErrConflict: a closure returning ErrConflict is
// re-executed (the explicit retry request of the policy), and nothing it
// wrote in failed attempts survives.
func TestUpdateRetriesOnErrConflict(t *testing.T) {
	for name, f := range map[string]dbtest.DBFactory{
		"local":   localFactory("TL2", 2, 0),
		"cluster": clusterFactory("TL2", 2, 0),
	} {
		db, _, _ := f(t)
		attempts := 0
		err := db.Update(func(tx kv.Txn) error {
			attempts++
			if err := tx.Put([]byte("k"), []byte(fmt.Sprintf("attempt-%d", attempts))); err != nil {
				return err
			}
			if attempts < 3 {
				return kv.ErrConflict
			}
			return nil
		})
		if err != nil || attempts != 3 {
			t.Fatalf("%s: err=%v attempts=%d, want nil/3", name, err, attempts)
		}
		v, err := db.Get([]byte("k"))
		if err != nil || string(v) != "attempt-3" {
			t.Fatalf("%s: k = %q, %v", name, v, err)
		}
	}
}

// --- cursor behavior ---

// TestLocalCursorChunks: the in-transaction cursor fetches the index in
// chunks; entries, order and bounds must be exact across chunk boundaries
// (the chunk size is 32, so 100 keys cross several).
func TestLocalCursorChunks(t *testing.T) {
	db, _, _ := localFactory("TL2", 4, 0)(t)
	const n = 100
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	err := db.Update(func(tx kv.Txn) error {
		it := tx.Scan([]byte("key-010"), []byte("key-090"), 0)
		i := 10
		for it.Next() {
			if want := fmt.Sprintf("key-%03d", i); string(it.Key()) != want {
				return fmt.Errorf("cursor at %q, want %q", it.Key(), want)
			}
			if want := fmt.Sprintf("v%d", i); string(it.Value()) != want {
				return fmt.Errorf("cursor value %q, want %q", it.Value(), want)
			}
			i++
		}
		if err := it.Err(); err != nil {
			return err
		}
		if i != 90 {
			return fmt.Errorf("cursor stopped at %d, want 90", i)
		}
		// Bounded cursor: exactly limit entries.
		it = tx.Scan(nil, nil, 37)
		count := 0
		for it.Next() {
			count++
		}
		if count != 37 {
			return fmt.Errorf("limit 37 cursor yielded %d", count)
		}
		return it.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- batch amortization (acceptance criterion) ---

// TestBatchAmortization: grouping independent puts into one transaction
// must cost measurably fewer simulated shared accesses per operation than
// one transaction per put — the per-transaction overhead (clock reads,
// commit validation, metadata) amortizes over the batch.
func TestBatchAmortization(t *testing.T) {
	const ops = 64
	run := func(batch int) float64 {
		s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
		eng := rhtm.NewTL2(s)
		sh := store.NewSharded(s, 4, store.Options{ArenaWords: 1 << 13})
		db := kv.NewLocal(eng, sh)
		val := bytes.Repeat([]byte{7}, 32)
		if batch <= 1 {
			for i := 0; i < ops; i++ {
				if err := db.Put([]byte(fmt.Sprintf("key-%03d", i)), val); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for i := 0; i < ops; i += batch {
				var group []kv.Op
				for j := i; j < i+batch && j < ops; j++ {
					group = append(group, kv.Op{Kind: kv.OpPut,
						Key: []byte(fmt.Sprintf("key-%03d", j)), Value: val})
				}
				if _, err := db.Batch(group); err != nil {
					t.Fatal(err)
				}
			}
		}
		st := eng.Snapshot()
		total := st.Reads + st.Writes + st.MetadataReads + st.MetadataWrites
		return float64(total) / float64(ops)
	}
	single := run(1)
	batched := run(16)
	t.Logf("accesses/op: single=%.1f batch16=%.1f", single, batched)
	if batched >= single*0.95 {
		t.Fatalf("batching shows no amortization: single=%.1f accesses/op, batch16=%.1f", single, batched)
	}
}

// TestClusterDBHighConcurrency pins the client-pool policy: concurrency far
// above any internal pool size must reuse pooled clients rather than
// registering fresh engine threads per call (a dropped client leaks its
// per-System thread registrations until NewThread panics).
func TestClusterDBHighConcurrency(t *testing.T) {
	db, _, validate := clusterFactory("TL2", 2, 0)(t)
	var wg sync.WaitGroup
	for g := 0; g < 100; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := []byte(fmt.Sprintf("key-%03d", (g*7+i)%50))
				if err := db.Put(key, []byte{byte(i)}); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, err := db.Get(key); err != nil && !errors.Is(err, kv.ErrNotFound) {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := validate(); err != nil {
		t.Fatal(err)
	}
}

// --- coordination surface ---

// TestReservedKeys: the system namespace (empty key, leading 0x00) is
// rejected by every user-facing op and invisible to scans, on both
// backends — lease records must be unreachable from user code.
func TestReservedKeys(t *testing.T) {
	for name, f := range map[string]dbtest.DBFactory{
		"local":   localFactory("TL2", 2, 0),
		"cluster": clusterFactory("TL2", 2, 0),
	} {
		db, _, _ := f(t)
		for _, key := range [][]byte{nil, {}, {0x00}, []byte("\x00lease")} {
			if err := db.Put(key, []byte("v")); !errors.Is(err, kv.ErrReservedKey) {
				t.Errorf("%s: Put(%q) err = %v, want ErrReservedKey", name, key, err)
			}
			if _, err := db.Get(key); !errors.Is(err, kv.ErrReservedKey) {
				t.Errorf("%s: Get(%q) err = %v, want ErrReservedKey", name, key, err)
			}
			if err := db.Delete(key); !errors.Is(err, kv.ErrReservedKey) {
				t.Errorf("%s: Delete(%q) err = %v, want ErrReservedKey", name, key, err)
			}
		}
		err := db.Update(func(tx kv.Txn) error {
			if err := tx.Put([]byte{0}, []byte("v")); !errors.Is(err, kv.ErrReservedKey) {
				return fmt.Errorf("tx.Put reserved: %v", err)
			}
			return nil
		})
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Lease records exist in the keyspace but never leak into scans.
		if _, err := db.Grant(100); err != nil {
			t.Fatal(err)
		}
		if err := db.Put([]byte("visible"), []byte("v")); err != nil {
			t.Fatal(err)
		}
		it := db.Scan(nil, nil, 0)
		for it.Next() {
			if len(it.Key()) == 0 || it.Key()[0] == 0x00 {
				t.Errorf("%s: scan leaked reserved key %q", name, it.Key())
			}
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWatchReportsLoss: a watcher asking for history the bounded commit
// log no longer retains must receive an explicit EventLost marker, then
// the retained tail in order — never a silent gap.
func TestWatchReportsLoss(t *testing.T) {
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
	// A tiny ring (the store enforces its 64-word floor) overflows fast.
	st := store.New(s, store.Options{ArenaWords: 1 << 14, LogWords: 1})
	db := kv.NewLocal(rhtm.NewTL2(s), st)
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k-%02d", i%5)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := db.Watch(ctx, nil, 1) // replay from the beginning of history
	if err != nil {
		t.Fatal(err)
	}
	first := <-ch
	if first.Kind != kv.EventLost {
		t.Fatalf("first replayed event = %+v, want EventLost", first)
	}
	// The retained tail follows, per-key ordered; the newest write appears.
	sawNewest := false
	lastRev := map[string]kv.Revision{}
	deadline := time.After(10 * time.Second)
	for !sawNewest {
		select {
		case ev := <-ch:
			if ev.Kind != kv.EventPut {
				t.Fatalf("unexpected event %+v", ev)
			}
			if ev.Rev <= lastRev[string(ev.Key)] {
				t.Fatalf("per-key order violated after loss: %+v", ev)
			}
			lastRev[string(ev.Key)] = ev.Rev
			if string(ev.Key) == "k-04" && ev.Value[0] == 49 {
				sawNewest = true
			}
		case <-deadline:
			t.Fatal("newest event never replayed")
		}
	}
}

// TestWatchReportsDroppedKey: an event whose key exceeds what the bounded
// commit log can record is refused by the ring; the watcher must still see
// an explicit EventLost marker rather than a silent gap.
func TestWatchReportsDroppedKey(t *testing.T) {
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
	st := store.New(s, store.Options{ArenaWords: 1 << 14, LogWords: 1}) // 64-word floor
	db := kv.NewLocal(rhtm.NewTL2(s), st)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := db.Watch(ctx, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	huge := append([]byte("big-"), bytes.Repeat([]byte{'k'}, 400)...)
	if err := db.Put(huge, []byte("v")); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-ch:
		if ev.Kind != kv.EventLost {
			t.Fatalf("dropped-key write delivered %+v, want EventLost", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dropped-key write produced no EventLost")
	}
}
