package kv

import (
	"rhtm/obs"
)

// Request tracing for the kv layer. A DB built WithTraceSampling(n) opens
// one obs.Trace for every n-th Update or Batch: the trace collects the
// typed stages of DESIGN.md §14 — engine (all closure attempts, with one
// obs.Span each), wal_sync (the group-commit wait), and on a cluster the
// 2pc_prepare/2pc_finish phases reported through the client's stage sink —
// and is retained by the DB's obs.Flight recorder, linked to the replica
// apply that later replays its commit revision.
//
// Front ends that own the sampling decision (the network server, which
// decides per wire frame) bypass the DB's sampler and pass their trace
// down through UpdateRevTraced/BatchTraced; a nil sink there is exactly
// the untraced path — one predicted branch per site, no stamps, no
// allocations (TestMetricsZeroAllocOnHotPath pins this).

// WithTraceSampling enables deterministic head-based trace sampling: one
// request in every n is traced (the first, then every n-th after it, per
// obs.Sampler). n <= 0 — the default — disables sampling entirely.
func WithTraceSampling(n int) Option {
	return func(o *dbOptions) { o.traceSample = n }
}

// WithFlight injects the flight recorder sampled traces are retained in.
// The default — option absent with sampling enabled — is a fresh
// obs.NewFlight(0); without sampling there is no recorder at all.
func WithFlight(f *obs.Flight) Option {
	return func(o *dbOptions) { o.flight = f }
}

// Flight returns the DB's flight recorder (nil when tracing is disabled).
func (db *Local) Flight() *obs.Flight { return db.flight }

// Flight returns the DB's flight recorder (nil when tracing is disabled).
func (db *ClusterDB) Flight() *obs.Flight { return db.flight }

// UpdateRevTraced is UpdateRev reporting through sink instead of the DB's
// own sampler (nil: exactly UpdateRev, minus the DB-level sampling). The
// caller owns the trace's lifecycle — typically the server's dispatch
// path, which opens the trace from the wire frame and finishes it when
// the response is written.
func (db *Local) UpdateRevTraced(sink obs.TraceSink, fn func(tx Txn) error) (Revision, error) {
	return db.updateRevT(sink, fn)
}

// UpdateRevTraced is UpdateRev reporting through sink; see
// Local.UpdateRevTraced.
func (db *ClusterDB) UpdateRevTraced(sink obs.TraceSink, fn func(tx Txn) error) (Revision, error) {
	return db.updateRevT(sink, fn)
}

// BatchTraced is Batch reporting through sink (nil: exactly Batch, minus
// the DB-level sampling); one engine transaction executes every op, so
// the batch's stages are the transaction's.
func (db *Local) BatchTraced(sink obs.TraceSink, ops []Op) ([]OpResult, error) {
	results := make([]OpResult, len(ops))
	if _, err := db.updateRevT(sink, batchBody(ops, results)); err != nil {
		return nil, err
	}
	return results, nil
}

// batchBody is batchViaUpdate's closure, split out so the traced batch
// paths can run it under an explicit sink.
func batchBody(ops []Op, results []OpResult) func(tx Txn) error {
	return func(tx Txn) error {
		for i, op := range ops {
			r, err := execOp(tx, op)
			if err != nil {
				return err
			}
			results[i] = r
		}
		return nil
	}
}
