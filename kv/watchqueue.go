package kv

import "bytes"

// WatchQueue is the bounded pending-event queue behind one watch
// subscriber, implementing the overflow ladder the delivery guarantee in
// watch.go names: at the bound, coalesce to latest-value-per-key first,
// declare an EventLost gap only when even that cannot absorb the overflow.
// It is shared by the in-process hub's subscribers and by remote
// transports (package client re-exposes server-push streams through it),
// so a slow consumer degrades identically wherever it sits.
//
// Victim selection at the bound: drop the oldest queued event for the
// incoming key — shedding exactly the history a latest-value consumer
// would discard anyway, with per-key revisions still strictly increasing.
// When the incoming key has nothing queued (the hub's rev-sorted
// cross-shard batches arrive in per-shard stretches, so a key on a quiet
// shard can meet a queue flooded by a busy one), evict the oldest
// superseded event of any other key instead — an event with a newer
// same-key entry behind it, so no key's terminal view is harmed. Only
// when every queued event is its key's sole (latest) entry does the
// overflow surface as an EventLost marker, i.e. loss requires more
// distinct keys in flight than the queue holds.
//
// Not safe for concurrent use; callers hold their own lock.
type WatchQueue struct {
	max int
	q   []Event

	// counts tracks the live (non-EventLost) queued events per key, and
	// dups the number of superseded events — entries with a newer same-key
	// event queued behind them. Maintained incrementally on every push and
	// pop so the overflow path decides in O(1) whether a coalescing victim
	// exists, instead of rescanning the whole queue per overflowing event
	// (the enqueue path runs under the subscriber's lock on the hub's
	// delivery path — sustained overflow must not throttle fan-out).
	counts map[string]int
	dups   int
}

// NewWatchQueue returns an empty queue bounded by the current
// MaxWatchQueue.
func NewWatchQueue() *WatchQueue {
	return &WatchQueue{max: MaxWatchQueue, counts: make(map[string]int)}
}

// Len reports the pending events, including any EventLost markers.
func (w *WatchQueue) Len() int { return len(w.q) }

// Push enqueues ev under the overflow ladder and reports whether it
// appended an EventLost marker (callers count losses). An incoming
// EventLost (a remote stream forwarding its upstream gap) never coalesces
// real events away; it collapses into the tail marker if one is already
// there.
func (w *WatchQueue) Push(ev Event) bool {
	if ev.Kind == EventLost {
		return w.PushLost()
	}
	if len(w.q) < w.max {
		w.push(ev)
		return false
	}
	if i := w.victim(ev.Key); i >= 0 {
		w.remove(i)
		w.push(ev)
		return false
	}
	return w.PushLost()
}

// PushLost appends one EventLost marker, unless the tail already is one —
// two adjacent markers carry no more information than one. It reports
// whether a marker was appended. The marker may overshoot the bound by
// one slot: a gap must be recorded even into a full queue.
func (w *WatchQueue) PushLost() bool {
	if n := len(w.q); n > 0 && w.q[n-1].Kind == EventLost {
		return false
	}
	w.q = append(w.q, Event{Kind: EventLost})
	return true
}

// Append enqueues ev bypassing the bound. Replay seeding uses it to load
// retained history before live delivery begins; a later Push sees the
// true occupancy and coalesces against it.
func (w *WatchQueue) Append(ev Event) {
	if ev.Kind == EventLost {
		w.q = append(w.q, ev)
		return
	}
	w.push(ev)
}

// PopFront dequeues the oldest pending event.
func (w *WatchQueue) PopFront() (Event, bool) {
	if len(w.q) == 0 {
		return Event{}, false
	}
	ev := w.q[0]
	w.forget(ev)
	w.q = w.q[1:]
	return ev, true
}

// victim returns the index to evict for an incoming event of key, or -1
// when every queued event is its key's sole entry (loss is then
// unavoidable). The counts make both existence checks O(1); the scan runs
// only when an eviction — itself an O(n) shift — is already certain, and
// stops at the first hit.
func (w *WatchQueue) victim(key []byte) int {
	if w.counts[string(key)] > 0 {
		for i := range w.q {
			if w.q[i].Kind != EventLost && bytes.Equal(w.q[i].Key, key) {
				return i
			}
		}
	}
	if w.dups > 0 {
		// The first event of any duplicated key is the frontmost entry of
		// its key, so its duplicate sits behind it: the oldest superseded
		// event in the queue.
		for i := range w.q {
			if w.q[i].Kind != EventLost && w.counts[string(w.q[i].Key)] > 1 {
				return i
			}
		}
	}
	return -1
}

// push appends a non-EventLost event and maintains the counts: a key
// already present gains a superseded entry (its previous newest).
func (w *WatchQueue) push(ev Event) {
	c := w.counts[string(ev.Key)]
	if c > 0 {
		w.dups++
	}
	w.counts[string(ev.Key)] = c + 1
	w.q = append(w.q, ev)
}

// forget reverses push's accounting for a departing event. Removing any
// entry of a key with duplicates retires exactly one superseded slot,
// wherever in the queue it sat.
func (w *WatchQueue) forget(ev Event) {
	if ev.Kind == EventLost {
		return
	}
	if c := w.counts[string(ev.Key)]; c > 1 {
		w.counts[string(ev.Key)] = c - 1
		w.dups--
	} else {
		delete(w.counts, string(ev.Key))
	}
}

// remove evicts the event at index i, preserving order of the rest.
func (w *WatchQueue) remove(i int) {
	w.forget(w.q[i])
	copy(w.q[i:], w.q[i+1:])
	w.q = w.q[:len(w.q)-1]
}
