package kv_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rhtm"
	"rhtm/kv"
	"rhtm/obs"
	"rhtm/store"
)

// The overhead contract of the observability layer: instruments are
// pre-resolved at construction and the hot path touches only atomics, so
// an instrumented Update allocates exactly as much as one with metrics
// disabled (WithMetrics(nil) — every instrument a nil no-op). The
// benchmark quantifies the residual time cost on a YCSB-A-style mix.

// newBenchLocal builds an unsharded RH1 Local with the given metrics
// option, preloaded with n keys.
func newBenchLocal(tb testing.TB, n int, opts ...kv.Option) kv.DB {
	tb.Helper()
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
	eng := rhtm.NewRH1(s, rhtm.RH1Options{MixPercent: 100})
	st := store.New(s, store.Options{ArenaWords: 1 << 15})
	db := kv.NewLocal(eng, st, opts...)
	for i := 0; i < n; i++ {
		if err := db.Put(benchKey(i), []byte("initial-value")); err != nil {
			tb.Fatal(err)
		}
	}
	return db
}

func benchKey(i int) []byte { return []byte(fmt.Sprintf("bench-%03d", i)) }

// updateOnce runs one read-modify-write Update on a preloaded key.
func updateOnce(db kv.DB, i int) error {
	k := benchKey(i % 64)
	return db.Update(func(tx kv.Txn) error {
		v, err := tx.Get(k)
		if err != nil {
			return err
		}
		return tx.Put(k, v)
	})
}

// TestMetricsZeroAllocOnHotPath asserts the instrumented Update hot path
// allocates no more than the fully no-op one. Comparing the two builds —
// rather than demanding an absolute number — keeps the test pinned to
// what obs promises (zero *added* allocations) without freezing the
// unrelated allocation profile of the kv layer itself.
func TestMetricsZeroAllocOnHotPath(t *testing.T) {
	instrumented := newBenchLocal(t, 64)              // default: fresh registry
	noop := newBenchLocal(t, 64, kv.WithMetrics(nil)) // every instrument nil
	run := func(db kv.DB) float64 {
		i := 0
		return testing.AllocsPerRun(200, func() {
			if err := updateOnce(db, i); err != nil {
				t.Fatal(err)
			}
			i++
		})
	}
	base := run(noop)
	got := run(instrumented)
	if got > base {
		t.Fatalf("instrumented Update allocates %.1f allocs/op, no-op %.1f — instrumentation added allocations", got, base)
	}

	// Trace sampling off the sampled path is the same contract: a sampler
	// that never fires within the measured window (the warm-up run absorbs
	// the always-sampled first request) must add nothing over the no-op
	// build, and a DB without WithTraceSampling at all pays only the nil
	// sampler's predicted branch.
	sampled := newBenchLocal(t, 64, kv.WithMetrics(nil), kv.WithTraceSampling(1<<30))
	if got := run(sampled); got > base {
		t.Fatalf("sampling-armed Update allocates %.1f allocs/op off the sampled path, no-op %.1f — tracing added allocations", got, base)
	}

	// The no-op registry's own primitives are additionally pinned to an
	// absolute zero in obs's tests; here pin the one kv-level no-op site
	// reachable without a DB: a nil registry resolving instruments.
	var reg *obs.Registry
	if n := testing.AllocsPerRun(100, func() {
		reg.Counter("x").Inc()
		reg.Gauge("y").Set(1)
		reg.Histogram("z").Observe(1)
	}); n != 0 {
		t.Fatalf("nil registry hot path allocates %.1f allocs/op", n)
	}
}

// BenchmarkMetricsOverhead measures the instrumented vs metrics-disabled
// Update path on a YCSB-A-style 50/50 read/read-modify-write mix.
func BenchmarkMetricsOverhead(b *testing.B) {
	mix := func(b *testing.B, db kv.DB) {
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := benchKey(rng.Intn(64))
			if rng.Intn(2) == 0 {
				if _, err := db.Get(k); err != nil {
					b.Fatal(err)
				}
			} else if err := updateOnce(db, rng.Intn(64)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("instrumented", func(b *testing.B) {
		db := newBenchLocal(b, 64)
		mix(b, db)
	})
	b.Run("noop", func(b *testing.B) {
		db := newBenchLocal(b, 64, kv.WithMetrics(nil))
		mix(b, db)
	})
}
