package kv_test

import (
	"errors"
	"fmt"
	"testing"

	"rhtm"
	"rhtm/cluster"
	"rhtm/internal/enginetest/dbtest"
	"rhtm/kv"
	"rhtm/store"
	"rhtm/wal"
)

// Recovery rigs: durable DBs over crash-injectable MemStorage, plus an
// independent committed-prefix replayer that decodes the crashed image
// into a plain map — the oracle the DBRecovery section diffs recovered
// state against. The replayer shares only the frame codec with the real
// recovery; the apply and in-doubt-resolution logic is its own, so a bug
// in either side shows as a diff.

// localRecoveryFactory rigs a Local DB (shards=0 selects the unsharded
// store) over one WAL device.
func localRecoveryFactory(engineName string, shards, inject int) dbtest.RecoveryFactory {
	build := func(t *testing.T, stg *wal.MemStorage) (kv.DB, *kv.ManualClock, func() error, error) {
		s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
		eng := newEngine(t, s, engineName, inject)
		clock := kv.NewManualClock()
		dev, err := stg.Device("wal")
		if err != nil {
			return nil, nil, nil, err
		}
		var st kv.Storer
		var validate func() error
		if shards == 0 {
			ss := store.New(s, store.Options{ArenaWords: 1 << 14})
			st, validate = ss, ss.Validate
		} else {
			sh := store.NewSharded(s, shards, store.Options{ArenaWords: 1 << 13})
			st, validate = sh, sh.Validate
		}
		db, err := kv.OpenLocal(eng, st, dev, kv.WithClock(clock))
		if err != nil {
			return nil, nil, nil, err
		}
		return db, clock, validate, nil
	}
	return func(t *testing.T) *dbtest.RecoveryRig {
		stg := wal.NewMemStorage()
		db, clock, _, err := build(t, stg)
		if err != nil {
			t.Fatal(err)
		}
		return &dbtest.RecoveryRig{
			DB:       db,
			Clock:    clock,
			LogBytes: stg.Appended,
			RecoverAt: func(cut uint64) (kv.DB, func() error, error) {
				db2, _, validate, err := build(t, stg.CrashImage(cut))
				return db2, validate, err
			},
			OracleAt: func(cut uint64) (map[string][]byte, error) {
				return localOracle(stg.CrashImage(cut))
			},
		}
	}
}

// clusterRecoveryFactory rigs a ClusterDB over per-System streams plus the
// coordinator decision log.
func clusterRecoveryFactory(engineName string, systems, inject int) dbtest.RecoveryFactory {
	build := func(t *testing.T, stg *wal.MemStorage) (kv.DB, *kv.ManualClock, func() error, error) {
		c := cluster.MustNew(cluster.Config{
			Systems:    systems,
			DataWords:  1 << 15,
			ArenaWords: 1 << 13,
			NewEngine: func(s *rhtm.System) (rhtm.Engine, error) {
				return newEngine(t, s, engineName, inject), nil
			},
		})
		clock := kv.NewManualClock()
		db, err := kv.OpenCluster(c, stg, kv.WithClock(clock))
		if err != nil {
			return nil, nil, nil, err
		}
		return db, clock, c.Validate, nil
	}
	return func(t *testing.T) *dbtest.RecoveryRig {
		stg := wal.NewMemStorage()
		db, clock, _, err := build(t, stg)
		if err != nil {
			t.Fatal(err)
		}
		return &dbtest.RecoveryRig{
			DB:       db,
			Clock:    clock,
			LogBytes: stg.Appended,
			RecoverAt: func(cut uint64) (kv.DB, func() error, error) {
				db2, _, validate, err := build(t, stg.CrashImage(cut))
				return db2, validate, err
			},
			OracleAt: func(cut uint64) (map[string][]byte, error) {
				return clusterOracle(stg.CrashImage(cut), systems)
			},
		}
	}
}

// --- the reference committed-prefix replayer ---

type refEntry struct {
	val     []byte
	present bool
	rev     uint64
}

// refApply plays one redo operation with the per-key revision guard
// (operations with revision 0 — coordinator redo — apply unconditionally).
func refApply(state map[string]*refEntry, op wal.Op) {
	e := state[string(op.Key)]
	if e == nil {
		e = &refEntry{}
		state[string(op.Key)] = e
	}
	if op.Rev != 0 && op.Rev <= e.rev {
		return
	}
	if op.Rev > e.rev {
		e.rev = op.Rev
	}
	if op.Kind == wal.OpPut {
		e.val = append([]byte(nil), op.Value...)
		e.present = true
	} else {
		e.val, e.present = nil, false
	}
}

func refStream(sr wal.ScanResult, state map[string]*refEntry) {
	for _, op := range sr.Checkpoint {
		refApply(state, op)
	}
	for _, g := range sr.Txns {
		for _, op := range g.Ops {
			refApply(state, op)
		}
	}
}

func refScan(stg *wal.MemStorage, name string) (wal.ScanResult, error) {
	dev, err := stg.Device(name)
	if err != nil {
		return wal.ScanResult{}, err
	}
	data, err := dev.Contents()
	if err != nil {
		return wal.ScanResult{}, err
	}
	return wal.Scan(data), nil
}

func refResult(state map[string]*refEntry) map[string][]byte {
	out := map[string][]byte{}
	for k, e := range state {
		if e.present {
			out[k] = e.val
		}
	}
	return out
}

func localOracle(img *wal.MemStorage) (map[string][]byte, error) {
	sr, err := refScan(img, "wal")
	if err != nil {
		return nil, err
	}
	state := map[string]*refEntry{}
	refStream(sr, state)
	return refResult(state), nil
}

func clusterOracle(img *wal.MemStorage, systems int) (map[string][]byte, error) {
	state := map[string]*refEntry{}
	applied := map[uint64]map[string]bool{}
	for i := 0; i < systems; i++ {
		sr, err := refScan(img, fmt.Sprintf("sys-%02d", i))
		if err != nil {
			return nil, err
		}
		refStream(sr, state)
		for _, g := range sr.Txns {
			if !g.Cross {
				continue
			}
			if applied[g.TxID] == nil {
				applied[g.TxID] = map[string]bool{}
			}
			for _, op := range g.Ops {
				applied[g.TxID][string(op.Key)] = true
			}
		}
	}
	csr, err := refScan(img, "coord")
	if err != nil {
		return nil, err
	}
	// In-doubt resolution: committed decisions without their resolution
	// mark re-apply forward, skipping writes the System streams hold.
	for _, g := range csr.Txns {
		if csr.Marks[g.TxID] {
			continue
		}
		for _, op := range g.Ops {
			if applied[g.TxID][string(op.Key)] {
				continue
			}
			refApply(state, op)
		}
	}
	return refResult(state), nil
}

// --- durability unit tests outside the battery ---

// TestCheckpointNeedsWAL: volatile DBs refuse Checkpoint with ErrNoWAL.
func TestCheckpointNeedsWAL(t *testing.T) {
	for name, f := range map[string]dbtest.DBFactory{
		"local":   localFactory("TL2", 2, 0),
		"cluster": clusterFactory("TL2", 2, 0),
	} {
		db, _, _ := f(t)
		if err := db.Checkpoint(); !errors.Is(err, kv.ErrNoWAL) {
			t.Errorf("%s: Checkpoint without WAL: %v, want ErrNoWAL", name, err)
		}
	}
}

// TestCheckpointBoundsReplay: a checkpoint folds the prefix, so the next
// recovery's replayed suffix — and the scan's transaction count — shrinks
// to what committed after it.
func TestCheckpointBoundsReplay(t *testing.T) {
	rig := localRecoveryFactory("TL2", 4, 0)(t)
	db := rig.DB
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := db.Put([]byte(fmt.Sprintf("post-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	db2, validate, err := rig.RecoverAt(rig.LogBytes())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	it := db2.Scan(nil, nil, 0)
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil || n != 55 {
		t.Fatalf("recovered %d keys (err %v), want 55", n, err)
	}
	if err := validate(); err != nil {
		t.Fatal(err)
	}
}
