// Package repl is the replication and failover layer: WAL shipping from a
// primary kv.DB into replica Systems, follower reads at a provable revision
// watermark, and crash failover under epoch fencing.
//
// The design rides the repository's central invariant. PR 5's sequence gate
// made log order equal commit order on every engine, so a primary's WAL
// stream is not merely a recovery artifact — it is a replication stream. A
// wal.Tailer turns each stream device into a blocking, cursor-resumable
// feed of whole commit units; a Follower applies them to replica Systems
// through the same ReplayPut/ReplayDelete entry points crash recovery uses,
// so original revisions, event rings, and lease records are rebuilt exactly
// as a recovered primary would hold them. A replica at applied watermark W
// is therefore indistinguishable from the primary at revision W — the
// paper's substitution argument extended across machines, the same way it
// already spans the hardware and software commit paths.
//
// The moving parts:
//
//   - Group: the membership owner. It wraps a live primary (Local or
//     cluster), hooks its writers' append path to wake tailers, grows
//     replicas with AddLocalReplica/AddClusterReplica, and runs failover:
//     Kill fences the primary's writers (every later commit fails with
//     kv.ErrFenced before a byte reaches the device), Promote drains the
//     most-caught-up replica's tail and turns it into the stream's next
//     primary under epoch+1, recording the new role map in a durable
//     epoch frame on the coordinator stream.
//   - Follower: one replica — per-stream apply pumps on dedicated engine
//     threads, per-partition applied watermarks (store.Watermarks), and
//     the follower-read surface (FollowerGet/ReadAt via kv.FollowerReader)
//     whose never-future guarantee comes from reading the key and the
//     partition clock in one engine transaction.
//
// Correctness of failover, briefly (DESIGN.md §12 has the full argument):
// an acknowledged commit was appended before the fence, the promoted
// replica drains the device to EOF before taking over, so zero
// acknowledged writes are lost; a zombie primary's post-fence commits are
// rejected in memory and never reach the device, so the epoch frame — the
// first durable frame of the new reign — proves every later frame came
// from the new primary.
package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"rhtm/kv"
	"rhtm/obs"
	"rhtm/wal"
)

// ErrNoLog reports a Group over a DB constructed without a WAL.
var ErrNoLog = errors.New("repl: primary has no WAL attached")

// ErrKilled reports an operation that needs a live primary after Kill.
var ErrKilled = errors.New("repl: primary is killed")

// ErrNoReplica reports a Promote with no viable replica.
var ErrNoReplica = errors.New("repl: no caught-up replica to promote")

// Membership is the epoch-numbered role map. It is serialized as JSON into
// the epoch frame of the coordinator (or single local) stream at every
// promotion — the durable membership record recovery and operators read.
type Membership struct {
	Epoch    uint64   `json:"epoch"`
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas"`
}

// Option configures a Group.
type Option func(*groupOptions)

type groupOptions struct {
	syncEvery int
}

// WithSyncEvery sets the promoted primary's WAL sync cadence (mirrors
// kv.WithSyncEvery; the default is full group commit).
func WithSyncEvery(n int) Option {
	return func(o *groupOptions) { o.syncEvery = n }
}

// Group owns one replication group: a primary DB, its WAL stream devices,
// and the replicas tailing them. All methods are safe for concurrent use.
type Group struct {
	mu sync.Mutex // serializes Add/Kill/Promote/Close and membership state

	// fmu guards the follower list for the append-hook kick path, which
	// runs under the writers' locks — nothing holding fmu may call into a
	// writer.
	fmu       sync.RWMutex
	followers []*Follower

	// wmu guards the writer lists (a leaf lock).
	wmu sync.Mutex
	ws  []*wal.Writer // current primary's writers, data streams then coord
	all []*wal.Writer // every writer ever attached (fenced-frame accounting)

	primary  kv.DB
	local    *kv.Local     // nil on a cluster group
	cdb      *kv.ClusterDB // nil on a local group
	dev      wal.Device    // local stream device
	dataDevs []wal.Device  // cluster stream devices
	coordDev wal.Device    // cluster decision log

	epoch      uint64
	membership Membership
	killed     bool
	syncEvery  int
	nextID     int

	reg        *obs.Registry
	promotions *obs.Counter
	applyBatch *obs.Histogram

	// flight, when set, closes the tracing loop: every follower apply
	// reports its watermark so traces awaiting their commit revision gain
	// a replica_apply stage (obs.Flight.ReplicaApplied).
	flight atomic.Pointer[obs.Flight]
}

// NewLocalGroup wraps a single-System primary (from kv.OpenLocal) whose log
// lives on dev. The primary keeps serving; its appends now also wake the
// group's tailers.
func NewLocalGroup(primary *kv.Local, dev wal.Device, opts ...Option) (*Group, error) {
	w := primary.WAL()
	if w == nil {
		return nil, ErrNoLog
	}
	g := newGroup(opts)
	g.primary, g.local, g.dev = primary, primary, dev
	g.attachWriters([]*wal.Writer{w})
	return g, nil
}

// NewClusterGroup wraps a multi-System primary (from kv.OpenCluster) whose
// streams live in stg — one device per System plus the coordinator decision
// log, under the same names kv.OpenCluster uses.
func NewClusterGroup(primary *kv.ClusterDB, stg wal.Storage, opts ...Option) (*Group, error) {
	ws := primary.Cluster().WAL()
	if ws == nil {
		return nil, ErrNoLog
	}
	g := newGroup(opts)
	g.primary, g.cdb = primary, primary
	n := primary.Cluster().NumSystems()
	g.dataDevs = make([]wal.Device, n)
	for i := 0; i < n; i++ {
		dev, err := stg.Device(kv.WALDataName(i))
		if err != nil {
			return nil, err
		}
		g.dataDevs[i] = dev
	}
	dev, err := stg.Device(kv.WALCoordName)
	if err != nil {
		return nil, err
	}
	g.coordDev = dev
	g.attachWriters(append(append([]*wal.Writer(nil), ws.Data...), ws.Coord))
	return g, nil
}

func newGroup(opts []Option) *Group {
	var o groupOptions
	for _, fn := range opts {
		fn(&o)
	}
	g := &Group{
		epoch:     1,
		syncEvery: o.syncEvery,
		reg:       obs.NewRegistry(),
	}
	g.membership = Membership{Epoch: 1, Primary: "primary"}
	g.promotions = g.reg.Counter("repl.promotions")
	g.applyBatch = g.reg.Histogram("repl.apply_batch")
	g.reg.GaugeFunc("repl.fenced_frames", g.fencedFrames)
	g.reg.GaugeFunc("repl.lag_frames", g.lagFrames)
	return g
}

// attachWriters records ws as the current primary's writers and hooks their
// append paths to wake every tailer in the group.
func (g *Group) attachWriters(ws []*wal.Writer) {
	g.wmu.Lock()
	g.ws = append([]*wal.Writer(nil), ws...)
	g.all = append(g.all, ws...)
	g.wmu.Unlock()
	for _, w := range ws {
		w.SetOnAppend(g.kickAll)
	}
}

// kickAll wakes every follower's tailers. It runs under the writers' locks
// (SetOnAppend), so it touches only the follower list and tailer locks.
func (g *Group) kickAll() {
	g.fmu.RLock()
	for _, f := range g.followers {
		f.kick()
	}
	g.fmu.RUnlock()
}

// fencedFrames sums fenced-commit rejections over every writer the group
// has ever owned — the zombie writes that never reached a device.
func (g *Group) fencedFrames() int64 {
	g.wmu.Lock()
	ws := append([]*wal.Writer(nil), g.all...)
	g.wmu.Unlock()
	var n int64
	for _, w := range ws {
		n += int64(w.Stats().Fenced)
	}
	return n
}

// lagFrames sums, over every follower and stream, how many LSNs the
// follower's applied cursor trails the primary writer's last append.
func (g *Group) lagFrames() int64 {
	g.wmu.Lock()
	ws := append([]*wal.Writer(nil), g.ws...)
	g.wmu.Unlock()
	lasts := make([]uint64, len(ws))
	for i, w := range ws {
		lasts[i] = w.Stats().LastLSN
	}
	g.fmu.RLock()
	defer g.fmu.RUnlock()
	var lag int64
	for _, f := range g.followers {
		for i, s := range f.allStreams() {
			if i >= len(lasts) {
				break
			}
			if ap := s.lsn(); lasts[i] > ap {
				lag += int64(lasts[i] - ap)
			}
		}
	}
	return lag
}

// ReplicaStatus is one replica stream's applied watermarks and lag — the
// health view Status reports and a server's KindHealth adapter forwards.
type ReplicaStatus struct {
	// Name is the replica's membership name.
	Name string `json:"name"`
	// Stream names the WAL stream within the replica (one per System).
	Stream string `json:"stream"`
	// AppliedLSN is the stream's applied log cursor.
	AppliedLSN uint64 `json:"applied_lsn"`
	// AppliedRev is the stream's applied revision watermark.
	AppliedRev uint64 `json:"applied_rev"`
	// LagFrames is how many LSNs the cursor trails the primary writer's
	// last append at sampling time.
	LagFrames uint64 `json:"lag_frames"`
}

// Status reports every follower stream's applied watermark and lag, in
// registration order — the per-replica breakdown of the lag_frames gauge.
func (g *Group) Status() []ReplicaStatus {
	g.wmu.Lock()
	ws := append([]*wal.Writer(nil), g.ws...)
	g.wmu.Unlock()
	lasts := make([]uint64, len(ws))
	for i, w := range ws {
		lasts[i] = w.Stats().LastLSN
	}
	g.fmu.RLock()
	defer g.fmu.RUnlock()
	var out []ReplicaStatus
	for _, f := range g.followers {
		for i, s := range f.allStreams() {
			st := ReplicaStatus{
				Name:       f.name,
				Stream:     s.name,
				AppliedLSN: s.lsn(),
				AppliedRev: s.rev(),
			}
			if i < len(lasts) && lasts[i] > st.AppliedLSN {
				st.LagFrames = lasts[i] - st.AppliedLSN
			}
			out = append(out, st)
		}
	}
	return out
}

// Membership returns the current epoch-numbered role map.
func (g *Group) Membership() Membership {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.membership
	m.Replicas = append([]string(nil), m.Replicas...)
	return m
}

// Primary returns the group's current primary DB.
func (g *Group) Primary() kv.DB {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.primary
}

// Metrics snapshots the group's repl.* instruments.
func (g *Group) Metrics() obs.Snapshot { return g.reg.Snapshot() }

// SetFlight attaches (or, with nil, detaches) the flight recorder the
// followers' apply pumps report watermarks to. Wire it to the same Flight
// the tracing front end records into — that is what links a trace to the
// replica apply of its commit revision. Safe to call while pumps run.
func (g *Group) SetFlight(f *obs.Flight) { g.flight.Store(f) }

// register adds f to the live follower list and membership.
func (g *Group) register(f *Follower) {
	g.fmu.Lock()
	g.followers = append(g.followers, f)
	g.fmu.Unlock()
	g.membership.Replicas = append(g.membership.Replicas, f.name)
	// Gauges live as long as the group; they keep reporting the follower's
	// last applied cursor after promotion (then tracking it as primary is
	// the lag gauge's job, which reads the live list).
	for _, s := range f.allStreams() {
		s := s
		g.reg.GaugeFunc(obs.Name("repl.applied_lsn", "replica", f.name, "stream", s.name),
			func() int64 { return int64(s.lsn()) })
		g.reg.GaugeFunc(obs.Name("repl.applied_rev", "replica", f.name, "stream", s.name),
			func() int64 { return int64(s.rev()) })
	}
}

// Kill fences the primary's writers: every commit from then on fails with
// kv.ErrFenced before any frame reaches a device, and the primary's memory
// is considered lost. Replicas keep the durable committed prefix. Idempotent.
func (g *Group) Kill() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.killLocked()
}

func (g *Group) killLocked() {
	if g.killed {
		return
	}
	g.killed = true
	g.wmu.Lock()
	ws := append([]*wal.Writer(nil), g.ws...)
	g.wmu.Unlock()
	for _, w := range ws {
		w.Fence()
	}
	// One last kick: the fence wakes committers, not tailers, and the
	// drain below must not depend on further traffic.
	g.kickAll()
}

// Promote runs failover: it fences the primary (if Kill has not already),
// drains the most-caught-up replica's tail, truncates any torn device
// suffix, resolves in-doubt cross-System decisions forward, and re-opens
// the stream under epoch+1 with the replica as primary — the epoch frame,
// synced first, is the durable fencing evidence. The remaining replicas
// keep tailing the same devices and so follow the new primary. Returns the
// promoted DB and its Follower (now retired from the replica list).
func (g *Group) Promote() (kv.DB, *Follower, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.killLocked()

	g.fmu.RLock()
	cands := append([]*Follower(nil), g.followers...)
	g.fmu.RUnlock()
	if len(cands) == 0 {
		return nil, nil, ErrNoReplica
	}
	// Most-caught-up first: highest applied LSN total at fence time. After
	// its drain the choice is exact — the device is the committed prefix.
	best := -1
	var bestLSN uint64
	for i, f := range cands {
		if t := f.appliedTotal(); best == -1 || t > bestLSN {
			best, bestLSN = i, t
		}
	}
	cands[0], cands[best] = cands[best], cands[0]
	var chosen *Follower
	var errs []error
	for _, f := range cands {
		if err := f.drain(); err != nil {
			errs = append(errs, fmt.Errorf("replica %s: %w", f.name, err))
			continue
		}
		chosen = f
		break
	}
	if chosen == nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrNoReplica, errors.Join(errs...))
	}
	chosen.stop()
	for _, s := range chosen.allStreams() {
		if off := s.tl.Offset(); s.dev.Size() > off {
			// A torn suffix past the validated prefix (crash images only —
			// a fenced writer leaves none): drop it before the new writer
			// appends.
			if err := s.dev.Truncate(off); err != nil {
				return nil, nil, err
			}
		}
	}

	g.epoch++
	rest := make([]string, 0, len(g.membership.Replicas))
	for _, name := range g.membership.Replicas {
		if name != chosen.name {
			rest = append(rest, name)
		}
	}
	g.membership = Membership{Epoch: g.epoch, Primary: chosen.name, Replicas: rest}
	blob, err := json.Marshal(g.membership)
	if err != nil {
		return nil, nil, err
	}

	if chosen.localDB != nil {
		err = chosen.localDB.Promote(g.dev, kv.PromoteState{
			NextLSN:    chosen.streams[0].tl.NextLSN(),
			Epoch:      g.epoch,
			Membership: blob,
			SyncEvery:  g.syncEvery,
		})
	} else {
		st := kv.ClusterPromoteState{
			DataNextLSN:  make([]uint64, len(chosen.streams)),
			CoordNextLSN: chosen.coord.tl.NextLSN(),
			Epoch:        g.epoch,
			Membership:   blob,
			SyncEvery:    g.syncEvery,
		}
		for i, s := range chosen.streams {
			st.DataNextLSN[i] = s.tl.NextLSN()
		}
		chosen.bmu.Lock()
		st.MaxTxID = chosen.maxTxID
		st.Decisions = chosen.decisions
		st.Marks = chosen.marks
		st.Applied = chosen.applied
		chosen.bmu.Unlock()
		err = chosen.cdb.Promote(g.dataDevs, g.coordDev, st)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("repl: promote %s: %w", chosen.name, err)
	}

	g.fmu.Lock()
	rest2 := g.followers[:0]
	for _, f := range g.followers {
		if f != chosen {
			rest2 = append(rest2, f)
		}
	}
	g.followers = rest2
	g.fmu.Unlock()

	g.primary = chosen.db
	g.local, g.cdb = chosen.localDB, chosen.cdb
	if chosen.localDB != nil {
		g.attachWriters([]*wal.Writer{chosen.localDB.WAL()})
	} else {
		ws := chosen.cdb.Cluster().WAL()
		g.attachWriters(append(append([]*wal.Writer(nil), ws.Data...), ws.Coord))
	}
	g.killed = false
	g.promotions.Inc()
	// The promotion itself appended frames (epoch records, in-doubt redo)
	// before the hook was attached: wake the surviving tailers once.
	g.kickAll()
	return chosen.db, chosen, nil
}

// Close stops every follower's pumps. The primary keeps running.
func (g *Group) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.fmu.RLock()
	fs := append([]*Follower(nil), g.followers...)
	g.fmu.RUnlock()
	for _, f := range fs {
		f.stop()
	}
	g.fmu.Lock()
	g.followers = nil
	g.fmu.Unlock()
}
