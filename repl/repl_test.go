package repl_test

import (
	"errors"
	"fmt"
	"testing"

	"rhtm"
	"rhtm/cluster"
	"rhtm/kv"
	"rhtm/repl"
	"rhtm/store"
	"rhtm/wal"
)

// The repl battery runs on TL2 (software, deterministic); the full 6-engine
// sweep lives in the kv DBReplication battery.

func newLocalPrimary(t *testing.T) (*kv.Local, *wal.MemStorage, wal.Device) {
	t.Helper()
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
	eng := rhtm.NewTL2(s)
	st := store.New(s, store.Options{ArenaWords: 1 << 14})
	stg := wal.NewMemStorage()
	dev, err := stg.Device("wal")
	if err != nil {
		t.Fatal(err)
	}
	db, err := kv.OpenLocal(eng, st, dev)
	if err != nil {
		t.Fatal(err)
	}
	return db, stg, dev
}

func newLocalReplica(t *testing.T, g *repl.Group) *repl.Follower {
	t.Helper()
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
	eng := rhtm.NewTL2(s)
	st := store.New(s, store.Options{ArenaWords: 1 << 14})
	f, err := g.AddLocalReplica(eng, st)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestLocalReplication: a replica tails the primary's log and serves
// follower reads whose watermark is never ahead of the data and never
// behind a drained log.
func TestLocalReplication(t *testing.T) {
	db, _, dev := newLocalPrimary(t)
	g, err := repl.NewLocalGroup(db, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	f := newLocalReplica(t, g)

	keys := map[string]kv.Revision{}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k-%02d", i)
		if err := db.Put([]byte(k), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k-%02d", i)
		_, rev, err := db.GetRev([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		keys[k] = rev
	}
	if err := f.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	for k, want := range keys {
		val, rev, wm, err := f.FollowerGet([]byte(k))
		if err != nil {
			t.Fatalf("FollowerGet(%s): %v", k, err)
		}
		if rev != want {
			t.Fatalf("%s: follower rev %d, primary rev %d", k, rev, want)
		}
		if rev > wm {
			t.Fatalf("%s: rev %d above watermark %d", k, rev, wm)
		}
		if string(val) != fmt.Sprintf("v-%s", k[2:]) && len(val) == 0 {
			t.Fatalf("%s: empty value", k)
		}
		// Read-your-writes at the primary's revision: a drained follower
		// must prove it.
		if _, _, _, err := f.ReadAt([]byte(k), want); err != nil {
			t.Fatalf("ReadAt(%s, %d): %v", k, want, err)
		}
	}
	// A floor beyond the log is provably too stale.
	if _, _, _, err := f.ReadAt([]byte("k-00"), 1<<40); !errors.Is(err, kv.ErrTooStale) {
		t.Fatalf("ReadAt(future floor): %v, want ErrTooStale", err)
	}
	// Absent key: ErrNotFound, watermark still meaningful.
	if _, _, wm, err := f.FollowerGet([]byte("missing")); !errors.Is(err, kv.ErrNotFound) || wm == 0 {
		t.Fatalf("FollowerGet(missing): wm=%d err=%v", wm, err)
	}

	snap := g.Metrics().Flatten()
	if snap["repl.lag_frames"] != 0 {
		t.Fatalf("drained lag = %d, want 0", snap["repl.lag_frames"])
	}
	if snap["repl.applied_lsn{replica=replica-0,stream=wal}"] == 0 {
		t.Fatalf("applied_lsn gauge missing or zero: %v", snap)
	}
}

// TestLocalFailover: kill the primary mid-life, promote the most-caught-up
// of two replicas, verify zero acknowledged writes lost, zombie commits
// fenced, the epoch frame durable, and the surviving replica following the
// new primary.
func TestLocalFailover(t *testing.T) {
	db, _, dev := newLocalPrimary(t)
	g, err := repl.NewLocalGroup(db, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	f0 := newLocalReplica(t, g)
	f1 := newLocalReplica(t, g)

	acked := map[string]string{}
	for i := 0; i < 40; i++ {
		k, v := fmt.Sprintf("a-%02d", i), fmt.Sprintf("val-%d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		acked[k] = v
	}
	if err := db.Delete([]byte("a-00")); err != nil {
		t.Fatal(err)
	}
	delete(acked, "a-00")

	g.Kill()
	// The zombie's writes are rejected before any frame reaches the device.
	if err := db.Put([]byte("zombie"), []byte("x")); !errors.Is(err, kv.ErrFenced) {
		t.Fatalf("zombie Put: %v, want ErrFenced", err)
	}

	newDB, promoted, err := g.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if promoted != f0 && promoted != f1 {
		t.Fatalf("promoted unknown follower %v", promoted.Name())
	}
	for k, v := range acked {
		got, err := newDB.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("after promotion Get(%s) = %q, %v; want %q", k, got, err, v)
		}
	}
	if _, err := newDB.Get([]byte("a-00")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("deleted key resurrected: %v", err)
	}
	if _, err := newDB.Get([]byte("zombie")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("zombie write survived the fence: %v", err)
	}

	m := g.Membership()
	if m.Epoch != 2 || m.Primary != promoted.Name() || len(m.Replicas) != 1 {
		t.Fatalf("membership after promotion: %+v", m)
	}
	// The epoch frame is the durable membership record.
	sr, err := wal.OpenDevice(dev)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Epoch != 2 {
		t.Fatalf("durable epoch %d, want 2", sr.Epoch)
	}

	// The new primary serves writes; the surviving replica follows it.
	if err := newDB.Put([]byte("after"), []byte("promo")); err != nil {
		t.Fatal(err)
	}
	survivor := f0
	if promoted == f0 {
		survivor = f1
	}
	if err := survivor.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if val, _, _, err := survivor.FollowerGet([]byte("after")); err != nil || string(val) != "promo" {
		t.Fatalf("survivor read after failover: %q, %v", val, err)
	}

	snap := g.Metrics().Flatten()
	if snap["repl.promotions"] != 1 {
		t.Fatalf("promotions = %d, want 1", snap["repl.promotions"])
	}
	if snap["repl.fenced_frames"] == 0 {
		t.Fatalf("fenced_frames = 0, want the zombie rejection counted")
	}
}

func newClusterPrimary(t *testing.T, systems int) (*kv.ClusterDB, *wal.MemStorage) {
	t.Helper()
	c := cluster.MustNew(cluster.Config{
		Systems:    systems,
		DataWords:  1 << 15,
		ArenaWords: 1 << 13,
		NewEngine: func(s *rhtm.System) (rhtm.Engine, error) {
			return rhtm.NewTL2(s), nil
		},
	})
	stg := wal.NewMemStorage()
	db, err := kv.OpenCluster(c, stg)
	if err != nil {
		t.Fatal(err)
	}
	return db, stg
}

func newClusterReplica(t *testing.T, g *repl.Group, systems int) *repl.Follower {
	t.Helper()
	rc := cluster.MustNew(cluster.Config{
		Systems:    systems,
		DataWords:  1 << 15,
		ArenaWords: 1 << 13,
		NewEngine: func(s *rhtm.System) (rhtm.Engine, error) {
			return rhtm.NewTL2(s), nil
		},
	})
	f, err := g.AddClusterReplica(rc)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestClusterFailover: replicate a multi-System primary — including
// cross-System transactions — kill it, promote, and verify the committed
// state (transfer invariant included) survived intact.
func TestClusterFailover(t *testing.T) {
	const systems = 3
	db, stg := newClusterPrimary(t, systems)
	g, err := repl.NewClusterGroup(db, stg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	f := newClusterReplica(t, g, systems)

	// A transfer workload: value conservation across keys that land on
	// different Systems is the all-or-nothing witness.
	const accounts = 8
	key := func(i int) []byte { return []byte(fmt.Sprintf("acct-%d", i)) }
	for i := 0; i < accounts; i++ {
		if err := db.Put(key(i), []byte{100}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		from, to := i%accounts, (i+3)%accounts
		if from == to {
			continue
		}
		err := db.Update(func(tx kv.Txn) error {
			a, err := tx.Get(key(from))
			if err != nil {
				return err
			}
			b, err := tx.Get(key(to))
			if err != nil {
				return err
			}
			if a[0] == 0 {
				return nil
			}
			if err := tx.Put(key(from), []byte{a[0] - 1}); err != nil {
				return err
			}
			return tx.Put(key(to), []byte{b[0] + 1})
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	g.Kill()
	if err := db.Put([]byte("zombie"), []byte("x")); !errors.Is(err, kv.ErrFenced) {
		t.Fatalf("zombie Put: %v, want ErrFenced", err)
	}
	newDB, promoted, err := g.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if promoted != f {
		t.Fatalf("promoted %v", promoted.Name())
	}

	total := 0
	for i := 0; i < accounts; i++ {
		v, err := newDB.Get(key(i))
		if err != nil {
			t.Fatalf("Get(acct-%d): %v", i, err)
		}
		total += int(v[0])
	}
	if total != accounts*100 {
		t.Fatalf("transfer invariant broken across failover: total %d, want %d", total, accounts*100)
	}
	if _, err := newDB.Get([]byte("zombie")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("zombie write survived: %v", err)
	}
	// The new primary accepts cross-System commits under the new epoch.
	if err := newDB.Update(func(tx kv.Txn) error {
		if err := tx.Put([]byte("x-0"), []byte("1")); err != nil {
			return err
		}
		return tx.Put([]byte("x-7"), []byte("2"))
	}); err != nil {
		t.Fatal(err)
	}
	if m := g.Membership(); m.Epoch != 2 {
		t.Fatalf("epoch %d, want 2", m.Epoch)
	}
}
