package repl

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rhtm"
	"rhtm/cluster"
	"rhtm/kv"
	"rhtm/store"
	"rhtm/wal"
)

var (
	errNotLocal     = errors.New("repl: AddLocalReplica on a cluster group")
	errNotCluster   = errors.New("repl: AddClusterReplica on a local group")
	errSizeMismatch = errors.New("repl: replica cluster size differs from primary")
)

// Follower is one replica: a DB built without a log, fed by per-stream
// apply pumps tailing the primary's devices. Until promotion it serves only
// the follower-read surface (FollowerGet/ReadAt); Group.Promote turns it
// into a full primary kv.DB.
type Follower struct {
	g    *Group
	name string

	localDB *kv.Local     // nil on a cluster follower
	cdb     *kv.ClusterDB // nil on a local follower
	db      kv.DB

	streams []*stream // data streams, one per System
	coord   *stream   // cluster decision-log mirror, nil on a local follower
	wms     *store.Watermarks
	wg      sync.WaitGroup

	stopMu  sync.Mutex
	stopped bool

	// Coordinator bookkeeping, mirrored live from the streams so a
	// promotion can resolve in-doubt decisions exactly as crash recovery
	// would from a scan. bmu is shared by the coord pump (decisions, marks)
	// and the data pumps (applied, maxTxID from cross groups).
	bmu       sync.Mutex
	decisions []wal.TxnGroup
	marks     map[uint64]bool
	applied   map[uint64]map[string]bool
	maxTxID   uint64
}

// stream is one device being tailed: the cursor the pump has applied
// through, published under mu for drain waiters and gauges.
type stream struct {
	name string
	dev  wal.Device
	tl   *wal.Tailer

	mu         sync.Mutex
	cond       *sync.Cond
	appliedOff int
	appliedLSN uint64
	appliedRev uint64
	err        error
	done       bool
}

func newStream(name string, dev wal.Device) *stream {
	s := &stream{name: name, dev: dev, tl: wal.NewTailer(dev, 0, 1)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *stream) lsn() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appliedLSN
}

func (s *stream) rev() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appliedRev
}

// advance publishes the cursor past one applied unit.
func (s *stream) advance(u wal.Unit, maxRev uint64) {
	s.mu.Lock()
	s.appliedOff = u.EndOff
	s.appliedLSN = u.EndLSN
	if maxRev > s.appliedRev {
		s.appliedRev = maxRev
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// finish marks the pump done (on close) or failed (on a bad stream or an
// apply error) and wakes drain waiters.
func (s *stream) finish(err error) {
	s.mu.Lock()
	s.done = true
	if err != nil && s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// drained blocks until the pump has applied everything the device holds, or
// has failed. Convergence after a fence is guaranteed: no new frames land,
// so appliedOff catches the (now fixed) device size.
func (s *stream) drained() error {
	target := s.dev.Size()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil {
			return s.err
		}
		if s.appliedOff >= target {
			return nil
		}
		if s.done {
			return wal.ErrTailerClosed
		}
		s.cond.Wait()
	}
}

// AddLocalReplica grows the group with a replica for a single-System
// primary: a fresh engine and store (same shard geometry as the primary)
// that will tail the stream from offset zero. Returns the Follower serving
// follower reads. opts mirror kv.NewLocal's.
func (g *Group) AddLocalReplica(eng rhtm.Engine, st kv.Storer, opts ...kv.Option) (*Follower, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.local == nil {
		return nil, errNotLocal
	}
	if g.killed {
		return nil, ErrKilled
	}
	f := &Follower{g: g, name: g.nextName()}
	f.localDB = kv.NewLocal(eng, st, opts...)
	f.db = f.localDB
	f.wms = store.NewWatermarks(len(st.EventLogs()))
	s := newStream("wal", g.dev)
	f.streams = []*stream{s}
	f.wg.Add(1)
	go f.pumpData(s, eng, st, -1)
	g.register(f)
	return f, nil
}

// AddClusterReplica grows the group with a replica for a cluster primary:
// a fresh cluster of the same size whose Systems tail the per-System
// streams while a coordinator pump mirrors the decision log's bookkeeping.
func (g *Group) AddClusterReplica(rc *cluster.Cluster, opts ...kv.Option) (*Follower, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cdb == nil {
		return nil, errNotCluster
	}
	if g.killed {
		return nil, ErrKilled
	}
	if rc.NumSystems() != len(g.dataDevs) {
		return nil, errSizeMismatch
	}
	f := &Follower{
		g: g, name: g.nextName(),
		marks:   map[uint64]bool{},
		applied: map[uint64]map[string]bool{},
	}
	f.cdb = kv.NewCluster(rc, opts...)
	f.db = f.cdb
	f.wms = store.NewWatermarks(rc.NumSystems())
	for i, dev := range g.dataDevs {
		s := newStream(kv.WALDataName(i), dev)
		f.streams = append(f.streams, s)
		f.wg.Add(1)
		go f.pumpData(s, rc.Node(i).Engine(), rc.Node(i).Store(), i)
	}
	f.coord = newStream(kv.WALCoordName, g.coordDev)
	f.wg.Add(1)
	go f.pumpCoord(f.coord)
	g.register(f)
	return f, nil
}

func (g *Group) nextName() string {
	g.nextID++
	return fmt.Sprintf("replica-%d", g.nextID-1)
}

// Name returns the follower's membership name.
func (f *Follower) Name() string { return f.name }

// FollowerGet implements kv.FollowerReader against the replica: the
// returned watermark is the partition clock the apply pump has provably
// reached, read in the same engine transaction as the key.
func (f *Follower) FollowerGet(key []byte) ([]byte, kv.Revision, kv.Revision, error) {
	return f.db.(kv.FollowerReader).FollowerGet(key)
}

// ReadAt implements kv.FollowerReader against the replica.
func (f *Follower) ReadAt(key []byte, floor kv.Revision) ([]byte, kv.Revision, kv.Revision, error) {
	return f.db.(kv.FollowerReader).ReadAt(key, floor)
}

// DB exposes the replica's DB. Before promotion, anything beyond the
// FollowerReader surface (writes, leases, watches) is the caller's own
// risk: the apply pumps own the replica's mutation path.
func (f *Follower) DB() kv.DB { return f.db }

// AppliedRev returns partition part's applied watermark — advisory lag
// accounting (the follower-read watermark is always read transactionally).
func (f *Follower) AppliedRev(part int) uint64 { return f.wms.Get(part) }

// WaitIdle blocks until the follower has applied every frame its devices
// currently hold — the test hook for deterministic catch-up, and the drain
// step of promotion.
func (f *Follower) WaitIdle() error { return f.drain() }

func (f *Follower) drain() error {
	for _, s := range f.allStreams() {
		if err := s.drained(); err != nil {
			return err
		}
	}
	return nil
}

func (f *Follower) allStreams() []*stream {
	if f.coord == nil {
		return f.streams
	}
	return append(append([]*stream(nil), f.streams...), f.coord)
}

func (f *Follower) appliedTotal() uint64 {
	var t uint64
	for _, s := range f.allStreams() {
		t += s.lsn()
	}
	return t
}

func (f *Follower) kick() {
	for _, s := range f.allStreams() {
		s.tl.Kick()
	}
}

// stop closes the tailers and joins the pumps. Idempotent.
func (f *Follower) stop() {
	f.stopMu.Lock()
	if f.stopped {
		f.stopMu.Unlock()
		return
	}
	f.stopped = true
	f.stopMu.Unlock()
	for _, s := range f.allStreams() {
		s.tl.Close()
	}
	f.wg.Wait()
}

// pumpData tails one data stream and applies whole units to the replica
// System through the replay entry points, on a dedicated engine thread.
// part >= 0 pins the watermark partition (cluster streams log Part 0 for a
// whole System); -1 uses each op's own partition (sharded local stores).
func (f *Follower) pumpData(s *stream, eng rhtm.Engine, st kv.Storer, part int) {
	defer f.wg.Done()
	th := eng.NewThread()
	for {
		u, err := s.tl.Next()
		if err != nil {
			if err == wal.ErrTailerClosed {
				s.finish(nil)
			} else {
				s.finish(err)
			}
			return
		}
		var maxRev uint64
		switch u.Kind {
		case wal.UnitTxn:
			maxRev, err = f.applyOps(th, st, u.Txn.Ops, part)
			if err == nil && u.Txn.Cross {
				f.recordApplied(u.Txn)
			}
		case wal.UnitCheckpoint:
			// Fully redundant for a caught-up follower (snapshots hold only
			// live keys at their current revisions, all <= the applied
			// watermark); the per-key guard in applyOps skips them. A
			// follower attached mid-log uses them as its catch-up base.
			maxRev, err = f.applyOps(th, st, u.Checkpoint, part)
		case wal.UnitMark, wal.UnitEpoch:
			// Resolution marks carry no System state; epoch frames fence
			// the log, not the data. Both just move the cursor.
		}
		if err != nil {
			s.finish(err)
			return
		}
		s.advance(u, maxRev)
	}
}

// applyOps applies one unit's ops in a single engine transaction — the
// unit's atomicity on the replica — with a per-key revision guard making
// re-delivery (checkpoint overlap, reattached cursors) idempotent.
func (f *Follower) applyOps(th rhtm.Thread, st kv.Storer, ops []wal.Op, part int) (uint64, error) {
	if len(ops) == 0 {
		return 0, nil
	}
	fl := f.g.flight.Load()
	var applyStart time.Time
	if fl != nil {
		applyStart = time.Now()
	}
	var maxRev uint64
	err := th.Atomic(func(tx rhtm.Tx) error {
		maxRev = 0 // the body re-executes on engine aborts
		for i := range ops {
			op := &ops[i]
			if op.Rev > maxRev {
				maxRev = op.Rev
			}
			_, cur, _, ok := st.Read(tx, op.Key)
			if ok && op.Rev <= cur {
				continue
			}
			if op.Kind == wal.OpPut {
				if err := st.ReplayPut(tx, op.Key, op.Value, op.Rev, op.Lease); err != nil {
					return err
				}
			} else {
				st.ReplayDelete(tx, op.Key, op.Rev)
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	f.g.applyBatch.Observe(uint64(len(ops)))
	for i := range ops {
		p := part
		if p < 0 {
			p = ops[i].Part
		}
		f.wms.Set(p, ops[i].Rev)
	}
	// Close the tracing loop: traces awaiting a commit revision at or
	// below this unit's watermark gain their replica_apply stage.
	if fl != nil {
		fl.ReplicaApplied(f.name, maxRev, len(ops), time.Since(applyStart))
	}
	return maxRev, nil
}

// recordApplied tracks which keys of a cross-System transaction reached
// this System's stream — the redo filter a promotion's in-doubt resolution
// uses, exactly as OpenCluster rebuilds it from a scan.
func (f *Follower) recordApplied(g wal.TxnGroup) {
	f.bmu.Lock()
	defer f.bmu.Unlock()
	if g.TxID > f.maxTxID {
		f.maxTxID = g.TxID
	}
	if f.applied == nil {
		return // local follower: no coordinator bookkeeping
	}
	keys := f.applied[g.TxID]
	if keys == nil {
		keys = map[string]bool{}
		f.applied[g.TxID] = keys
	}
	for _, op := range g.Ops {
		keys[string(op.Key)] = true
	}
}

// pumpCoord mirrors the decision log into the follower's bookkeeping,
// tracking exactly what a wal.Scan of the same prefix would report:
// commit decisions since the last global mark, their resolution marks, and
// the transaction-id high water.
func (f *Follower) pumpCoord(s *stream) {
	defer f.wg.Done()
	for {
		u, err := s.tl.Next()
		if err != nil {
			if err == wal.ErrTailerClosed {
				s.finish(nil)
			} else {
				s.finish(err)
			}
			return
		}
		f.bmu.Lock()
		switch u.Kind {
		case wal.UnitTxn:
			f.decisions = append(f.decisions, u.Txn)
			if u.Txn.Cross && u.TxID > f.maxTxID {
				f.maxTxID = u.TxID
			}
		case wal.UnitMark:
			if u.TxID > f.maxTxID {
				f.maxTxID = u.TxID
			}
			if u.Flags&wal.FlagGlobal != 0 {
				f.decisions = nil
				f.marks = map[uint64]bool{}
			} else {
				f.marks[u.TxID] = true
			}
		case wal.UnitCheckpoint:
			f.decisions = nil
		case wal.UnitEpoch:
			// Membership history; the group tracks the live view.
		}
		f.bmu.Unlock()
		s.advance(u, 0)
	}
}
