package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the cross-process half of the tracing surface: a sampling
// decision (Sampler), a per-request trace that collects typed child stages
// and per-attempt spans (Trace), and the sink interfaces the data path
// reports through. The trace id travels in server/wire frame headers
// (FlagTraced + a u64 after the body header), so one sampled client
// operation produces one linked trace spanning client send, server
// dispatch, the cross-connection batch window, engine attempts, WAL group
// commit, 2PC phases, and replica apply.

// Stage names of the trace taxonomy. Every stage a trace records uses one
// of these, so renderings and per-stage aggregates are comparable across
// request kinds and backends (see DESIGN.md §14).
const (
	// StageNet is the client-observed network round trip minus the
	// server's handling time — recorded client-side from the server wall
	// duration echoed on traced responses.
	StageNet = "net"
	// StageQueueWait is time between a frame's arrival at the server and
	// its dispatch (reader handoff, inflight-semaphore wait).
	StageQueueWait = "queue_wait"
	// StageBatchWait is time an op spent parked in the cross-connection
	// batcher before its batch executed.
	StageBatchWait = "batch_wait"
	// StageEngine is the engine-transaction portion of the request: every
	// closure attempt, including retries.
	StageEngine = "engine"
	// StageWALSync is the group-commit wait: from handing the commit's ops
	// to the WAL writer until they are durable (log order = commit order,
	// so this is the full sync barrier, queueing included).
	StageWALSync = "wal_sync"
	// Stage2PCPrepare is the phase-1 sweep of a cross-System commit.
	Stage2PCPrepare = "2pc_prepare"
	// Stage2PCFinish is the phase-2 apply sweep of a cross-System commit.
	Stage2PCFinish = "2pc_finish"
	// StageReplicaApply is recorded when a replica's apply loop replays
	// the trace's commit revision — annotated asynchronously, after the
	// response, via the Flight's awaiting-apply link.
	StageReplicaApply = "replica_apply"
)

// Sampler makes the head-based sampling decision: exactly one request in
// every N is traced, decided by an atomic counter, so a fixed workload
// always samples the same requests (deterministic head-based sampling).
// The nil *Sampler never samples — the disabled path is one predicted
// branch, no atomics, no allocation.
type Sampler struct {
	n   uint64
	ctr atomic.Uint64
}

// NewSampler returns a 1-in-n sampler; n <= 0 disables sampling (nil).
func NewSampler(n int) *Sampler {
	if n <= 0 {
		return nil
	}
	return &Sampler{n: uint64(n)}
}

// Sample reports whether this request is traced. The first request is
// always sampled, then every n-th after it.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return (s.ctr.Add(1)-1)%s.n == 0
}

// N returns the sampling period (0 for the nil sampler).
func (s *Sampler) N() int {
	if s == nil {
		return 0
	}
	return int(s.n)
}

// Stage is one typed child stage of a Trace: a named interval with its
// start offset from the trace's begin stamp. Start offsets come from the
// host monotonic clock, so stages recorded later have later offsets —
// the invariant renderings and tests lean on.
type Stage struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
	// Note carries a stage-specific annotation (the applying replica,
	// a cause: conflict retries, fenced writes, lost events).
	Note string `json:"note,omitempty"`
}

// TraceSink receives a request's trace events from the data path. *Trace
// implements it; MultiSink broadcasts to several traces (a server batch
// executes ops from many connections in one DB call — each traced op
// gets the shared engine/WAL/2PC stages).
type TraceSink interface {
	// Stage records a completed stage of duration d ending now.
	Stage(name string, d time.Duration)
	// Attempt records one closure-attempt span (the obs.Span contract).
	Attempt(Span)
	// SetCommitRev records the commit revision, linking the trace to the
	// replica apply that will replay it.
	SetCommitRev(rev uint64)
}

// StageRecorder is the narrow stage-only sink lower layers (the cluster's
// 2PC commit path) report through.
type StageRecorder interface {
	Stage(name string, d time.Duration)
}

// Trace is one sampled request: identity, outcome, child stages, and
// per-attempt spans. All methods are safe for concurrent use — a trace
// stays annotatable (replica apply) after it finished and was handed to
// the Flight.
type Trace struct {
	fl *Flight

	mu     sync.Mutex
	id     uint64
	kind   string
	begin  time.Time
	wall   time.Duration
	err    string
	rev    uint64
	stages []Stage
	spans  []Span
	done   bool
}

// ID returns the trace id (chosen by the sampling side, carried on the
// wire).
func (t *Trace) ID() uint64 { return t.id }

// Begin returns the trace's begin stamp (the sampling point).
func (t *Trace) Begin() time.Time { return t.begin }

// Elapsed returns the time since the trace began — the handling duration
// a server echoes on traced responses (FlagTraced), stamped just before
// the response frame is queued.
func (t *Trace) Elapsed() time.Duration { return time.Since(t.begin) }

// KindName returns the request kind the trace was opened for.
func (t *Trace) KindName() string { return t.kind }

// Stage implements TraceSink: the stage ends now and lasted d.
func (t *Trace) Stage(name string, d time.Duration) {
	t.StageNote(name, d, "")
}

// StageNote is Stage with an annotation.
func (t *Trace) StageNote(name string, d time.Duration, note string) {
	start := time.Since(t.begin) - d
	if start < 0 {
		start = 0
	}
	t.mu.Lock()
	t.stages = append(t.stages, Stage{Name: name, Start: start, Dur: d, Note: note})
	t.mu.Unlock()
}

// StageSince records a stage that started at start and ends now.
func (t *Trace) StageSince(name string, start time.Time) {
	t.Stage(name, time.Since(start))
}

// annotate appends a stage stamped at the annotation point itself —
// used for asynchronous events (replica apply) whose duration belongs to
// another timeline, so subtracting it from now would produce an offset
// before the event was even observable.
func (t *Trace) annotate(name string, d time.Duration, note string) {
	start := time.Since(t.begin)
	t.mu.Lock()
	t.stages = append(t.stages, Stage{Name: name, Start: start, Dur: d, Note: note})
	t.mu.Unlock()
}

// Attempt implements TraceSink.
func (t *Trace) Attempt(sp Span) {
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// SetCommitRev implements TraceSink and registers the trace with its
// Flight's awaiting-apply table: when a replica's apply loop replays
// rev, the trace gains a replica_apply stage.
func (t *Trace) SetCommitRev(rev uint64) {
	t.mu.Lock()
	t.rev = rev
	t.mu.Unlock()
	if t.fl != nil && rev != 0 {
		t.fl.awaitApply(rev, t)
	}
}

// Finish seals the trace's wall time and outcome and records it into its
// Flight. Replica-apply annotations may still arrive afterwards.
func (t *Trace) Finish(err error) {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.wall = time.Since(t.begin)
	if err != nil {
		t.err = err.Error()
	}
	t.mu.Unlock()
	if t.fl != nil {
		t.fl.record(t)
	}
}

// Snapshot copies the trace's current state.
func (t *Trace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TraceSnapshot{
		ID:        t.id,
		Kind:      t.kind,
		WallNS:    uint64(t.wall),
		Err:       t.err,
		CommitRev: t.rev,
		Stages:    append([]Stage(nil), t.stages...),
		Spans:     append([]Span(nil), t.spans...),
	}
	return out
}

// MultiSink broadcasts TraceSink events to every member trace. The server
// batcher uses it to attribute one shared DB call to every traced op the
// batch carried.
type MultiSink []*Trace

// Stage implements TraceSink.
func (m MultiSink) Stage(name string, d time.Duration) {
	for _, t := range m {
		t.Stage(name, d)
	}
}

// Attempt implements TraceSink.
func (m MultiSink) Attempt(sp Span) {
	for _, t := range m {
		t.Attempt(sp)
	}
}

// SetCommitRev implements TraceSink.
func (m MultiSink) SetCommitRev(rev uint64) {
	for _, t := range m {
		t.SetCommitRev(rev)
	}
}

// TraceSnapshot is a trace's captured, serializable state — what
// KindTraceDump frames carry and FlightDump embeds.
type TraceSnapshot struct {
	ID        uint64  `json:"id"`
	Kind      string  `json:"kind"`
	WallNS    uint64  `json:"wall_ns"`
	Err       string  `json:"err,omitempty"`
	CommitRev uint64  `json:"commit_rev,omitempty"`
	Stages    []Stage `json:"stages,omitempty"`
	Spans     []Span  `json:"spans,omitempty"`
}

// Render returns the trace's normalized rendering: kind, stages in start
// order, attempt counts — and no wall-clock values, so a fixed schedule
// renders byte-identically across runs. The engine stage folds in the
// span summary (attempt count and final outcome); annotated stages keep
// their note.
func (ts TraceSnapshot) Render() string {
	stages := append([]Stage(nil), ts.Stages...)
	sort.SliceStable(stages, func(i, j int) bool { return stages[i].Start < stages[j].Start })
	out := "trace " + ts.Kind
	if ts.Err != "" {
		out += " err=" + ts.Err
	}
	out += "\n"
	for _, st := range stages {
		out += "  " + st.Name
		if st.Name == StageEngine && len(ts.Spans) > 0 {
			last := ts.Spans[len(ts.Spans)-1]
			out += fmt.Sprintf(" attempts=%d %s", len(ts.Spans), last.Outcome)
		}
		if st.Note != "" {
			out += " " + st.Note
		}
		out += "\n"
	}
	return out
}
