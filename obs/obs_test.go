package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("re-registering a counter must return the same instrument")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}

	h := r.Histogram("h")
	for _, v := range []uint64{0, 1, 2, 3, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1006 {
		t.Fatalf("hist count=%d sum=%d, want 5/1006", h.Count(), h.Sum())
	}

	snap := r.Snapshot()
	if snap.Counter("c") != 5 || snap.Gauge("g") != 4 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	hs := snap.Histograms["h"]
	var total uint64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != 5 {
		t.Fatalf("bucket counts sum to %d, want 5", total)
	}
	// 0 → bucket le=0; 1 → le=1; 2,3 → le=3; 1000 → le=1023.
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 1023: 1}
	for _, b := range hs.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}

	flat := snap.Flatten()
	if flat["c"] != 5 || flat["g"] != 4 || flat["h.count"] != 5 || flat["h.sum"] != 1006 {
		t.Fatalf("flatten mismatch: %v", flat)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := int64(0)
	r.GaugeFunc("depth", func() int64 { return v })
	v = 42
	if got := r.Snapshot().Gauge("depth"); got != 42 {
		t.Fatalf("gauge func sampled %d, want 42", got)
	}
}

func TestName(t *testing.T) {
	if got := Name("engine.commits", "path", "fast"); got != "engine.commits{path=fast}" {
		t.Fatalf("Name = %q", got)
	}
	if got := Name("plain"); got != "plain" {
		t.Fatalf("Name = %q", got)
	}
	if got := Name("x", "a", "1", "b", "2"); got != "x{a=1,b=2}" {
		t.Fatalf("Name = %q", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Histogram("h").Observe(9)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("a") != 1 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round trip mismatch: %s", b)
	}
}

// TestNilRegistryNoop: the nil registry is the off switch — every lookup
// yields a working no-op instrument and Snapshot is empty.
func TestNilRegistryNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	r.GaugeFunc("f", func() int64 { return 1 })
	c.Inc()
	g.Set(3)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must stay zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

// TestNoopZeroAllocs is the satellite's acceptance check: the disabled
// instrument set — what a DB built with a nil registry threads through its
// Update hot path — performs zero allocations per operation.
func TestNoopZeroAllocs(t *testing.T) {
	var r *Registry
	c := r.Counter("kv.commits")
	g := r.Gauge("depth")
	h := r.Histogram("latency")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(-1)
		h.Observe(123)
	})
	if allocs != 0 {
		t.Fatalf("no-op instruments allocate %.1f/op, want 0", allocs)
	}
}

// The live instruments must be allocation-free too once resolved.
func TestLiveZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(77)
	})
	if allocs != 0 {
		t.Fatalf("live instruments allocate %.1f/op, want 0", allocs)
	}
}

func TestRecordingTracer(t *testing.T) {
	tr := NewRecordingTracer(2)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.TxnAttempt(Span{Engine: "TL2", Attempt: i, Outcome: OutcomeConflict})
		}(i)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("retained %d spans, want 2 (bounded)", got)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Dropped() != 0 {
		t.Fatal("reset did not clear")
	}
}
