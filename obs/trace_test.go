package obs

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantiles pins the interpolation convention at exact
// bucket boundaries: the last rank of a bucket lands on its Le, the
// first rank interpolates up from the bucket's lower bound, and the
// zero bucket always reports 0.
func TestHistogramQuantiles(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		if got := h.Snapshot().P(0.99); got != 0 {
			t.Fatalf("P on empty = %d, want 0", got)
		}
	})
	t.Run("all-zero", func(t *testing.T) {
		var h Histogram
		for i := 0; i < 4; i++ {
			h.Observe(0)
		}
		s := h.Snapshot()
		for _, q := range []float64{0.5, 0.95, 1} {
			if got := s.P(q); got != 0 {
				t.Fatalf("P(%v) = %d, want 0 (zero bucket)", q, got)
			}
		}
	})
	t.Run("single-obs-hits-le", func(t *testing.T) {
		// One observation of 4 lands in bucket [4,7] (Le=7): with one
		// rank in the bucket, every quantile is the bucket's Le exactly.
		var h Histogram
		h.Observe(4)
		s := h.Snapshot()
		for _, q := range []float64{0.5, 0.95, 0.99, 1} {
			if got := s.P(q); got != 7 {
				t.Fatalf("P(%v) = %d, want 7 (bucket boundary)", q, got)
			}
		}
	})
	t.Run("two-buckets", func(t *testing.T) {
		// 1 → bucket Le=1; 8 → bucket [8,15]. Rank 1 resolves in the
		// first bucket at its boundary (1), rank 2 in the second at its
		// boundary (15).
		var h Histogram
		h.Observe(1)
		h.Observe(8)
		s := h.Snapshot()
		if got := s.P(0.5); got != 1 {
			t.Fatalf("P(0.5) = %d, want 1", got)
		}
		if got := s.P(1); got != 15 {
			t.Fatalf("P(1) = %d, want 15", got)
		}
	})
	t.Run("interpolation-within-bucket", func(t *testing.T) {
		// Four observations in bucket [8,15]: lo=8, hi=15, span 7.
		// Rank r of 4 sits at frac r/4: 8+1=9, 8+3=11, 8+5=13, 15.
		var h Histogram
		for i := 0; i < 4; i++ {
			h.Observe(9)
		}
		s := h.Snapshot()
		want := map[float64]uint64{0.25: 9, 0.5: 11, 0.75: 13, 1: 15}
		for q, w := range want {
			if got := s.P(q); got != w {
				t.Fatalf("P(%v) = %d, want %d", q, got, w)
			}
		}
	})
	t.Run("p99-tail", func(t *testing.T) {
		// 99 fast observations (value 1) and one slow (value 1000,
		// bucket [512,1023]): P(0.99) still resolves in the fast bucket
		// (rank 99), P(1) on the slow bucket's boundary.
		var h Histogram
		for i := 0; i < 99; i++ {
			h.Observe(1)
		}
		h.Observe(1000)
		s := h.Snapshot()
		if got := s.P(0.99); got != 1 {
			t.Fatalf("P(0.99) = %d, want 1", got)
		}
		if got := s.P(1); got != 1023 {
			t.Fatalf("P(1) = %d, want 1023", got)
		}
	})
	t.Run("nil-histogram", func(t *testing.T) {
		var h *Histogram
		if got := h.Snapshot().P(0.5); got != 0 {
			t.Fatalf("nil histogram P = %d, want 0", got)
		}
	})
}

// TestSamplerDeterminism: head-based sampling is a pure function of the
// request ordinal — one in every N, starting at the first.
func TestSamplerDeterminism(t *testing.T) {
	s := NewSampler(4)
	var picked []int
	for i := 0; i < 16; i++ {
		if s.Sample() {
			picked = append(picked, i)
		}
	}
	want := []int{0, 4, 8, 12}
	if len(picked) != len(want) {
		t.Fatalf("sampled %v, want %v", picked, want)
	}
	for i := range want {
		if picked[i] != want[i] {
			t.Fatalf("sampled %v, want %v", picked, want)
		}
	}
	if NewSampler(0) != nil || NewSampler(-3) != nil {
		t.Fatal("non-positive N must disable sampling (nil sampler)")
	}
	var off *Sampler
	if off.Sample() {
		t.Fatal("nil sampler sampled")
	}
	if off.N() != 0 || s.N() != 4 {
		t.Fatal("N() mismatch")
	}
	one := NewSampler(1)
	for i := 0; i < 5; i++ {
		if !one.Sample() {
			t.Fatal("1-in-1 sampler must always sample")
		}
	}
}

// The disabled sampling path is the hot path: a nil sampler decision
// must not allocate.
func TestSamplerDisabledZeroAllocs(t *testing.T) {
	var s *Sampler
	allocs := testing.AllocsPerRun(1000, func() {
		if s.Sample() {
			panic("sampled")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled sampler allocates %.1f/op, want 0", allocs)
	}
}

// TestTraceRender pins the normalized rendering: kind, stages in start
// order, the engine stage folding in the attempt summary, notes kept,
// no wall-clock values.
func TestTraceRender(t *testing.T) {
	fl := NewFlight(4)
	tr := fl.NewTrace(7, "put")
	tr.Stage(StageQueueWait, 0)
	tr.Stage(StageBatchWait, 0)
	tr.Attempt(Span{Engine: "TL2", Attempt: 0, Outcome: OutcomeConflict})
	tr.Attempt(Span{Engine: "TL2", Attempt: 1, Outcome: OutcomeCommit, CommitRev: 9})
	tr.Stage(StageEngine, 0)
	tr.Stage(StageWALSync, 0)
	tr.SetCommitRev(9)
	tr.Finish(nil)
	fl.ReplicaApplied("r0", 9, 1, time.Millisecond)

	want := "trace put\n" +
		"  queue_wait\n" +
		"  batch_wait\n" +
		"  engine attempts=2 commit\n" +
		"  wal_sync\n" +
		"  replica_apply replica=r0\n"
	if got := tr.Snapshot().Render(); got != want {
		t.Fatalf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	errTr := fl.NewTrace(8, "txn")
	errTr.Stage(StageEngine, 0)
	errTr.Attempt(Span{Engine: "TL2", Outcome: OutcomeError, Err: "boom"})
	errTr.Finish(errors.New("boom"))
	if got := errTr.Snapshot().Render(); got != "trace txn err=boom\n  engine attempts=1 error\n" {
		t.Fatalf("error render mismatch:\n%s", got)
	}
}

// TestTraceStampsMonotonic: stage start offsets are monotonic in record
// order — the host monotonic clock is the only stamp source.
func TestTraceStampsMonotonic(t *testing.T) {
	fl := NewFlight(2)
	tr := fl.NewTrace(1, "get")
	for _, name := range []string{StageQueueWait, StageEngine, StageWALSync} {
		tr.Stage(name, 0)
	}
	tr.Finish(nil)
	snap := tr.Snapshot()
	for i := 1; i < len(snap.Stages); i++ {
		if snap.Stages[i].Start < snap.Stages[i-1].Start {
			t.Fatalf("stage %d starts before stage %d: %+v", i, i-1, snap.Stages)
		}
	}
	if snap.WallNS == 0 {
		t.Fatal("finished trace has zero wall time")
	}
}

// TestFlightRetention: the recorder always keeps the K slowest and the K
// most recent errors per kind, evicting everything else.
func TestFlightRetention(t *testing.T) {
	fl := NewFlight(2)
	finish := func(id uint64, kind string, hold time.Duration, err error) {
		tr := fl.NewTrace(id, kind)
		tr.Stage(StageEngine, hold)
		if hold > 0 {
			time.Sleep(hold)
		}
		tr.Finish(err)
	}
	finish(1, "put", 0, nil)
	finish(2, "put", 8*time.Millisecond, nil)
	finish(3, "put", 16*time.Millisecond, nil)
	finish(4, "put", 2*time.Millisecond, nil)
	for i := uint64(10); i < 13; i++ {
		finish(i, "put", 0, errors.New("fenced"))
	}

	d := fl.Dump()
	kd, ok := d.Kinds["put"]
	if !ok {
		t.Fatalf("kind missing from dump: %+v", d)
	}
	if kd.Count != 7 || kd.Errors != 3 {
		t.Fatalf("count=%d errors=%d, want 7/3", kd.Count, kd.Errors)
	}
	if len(kd.Slowest) != 2 || kd.Slowest[0].ID != 3 || kd.Slowest[1].ID != 2 {
		t.Fatalf("slowest = %+v, want ids 3,2", kd.Slowest)
	}
	if kd.Slowest[0].WallNS < kd.Slowest[1].WallNS {
		t.Fatal("slowest list not descending")
	}
	if len(kd.RecentErrors) != 2 || kd.RecentErrors[0].ID != 11 || kd.RecentErrors[1].ID != 12 {
		t.Fatalf("recent errors = %+v, want ids 11,12", kd.RecentErrors)
	}
	if len(kd.Recent) != 2 || kd.Recent[1].ID != 12 {
		t.Fatalf("recent = %+v, want newest id 12 last", kd.Recent)
	}
	st, ok := kd.Stages[StageEngine]
	if !ok || st.Count != 7 {
		t.Fatalf("engine stage stat = %+v, want count 7", st)
	}
	if st.P99NS < st.P50NS {
		t.Fatalf("p99 %d < p50 %d", st.P99NS, st.P50NS)
	}
}

// TestFlightAwaitingBounded: the awaiting-apply table cannot grow past
// 4×K — a replica-less deployment sheds the oldest links.
func TestFlightAwaitingBounded(t *testing.T) {
	fl := NewFlight(2)
	for rev := uint64(1); rev <= 20; rev++ {
		tr := fl.NewTrace(rev, "put")
		tr.SetCommitRev(rev)
		tr.Finish(nil)
	}
	if got := fl.AwaitingApply(); got != 8 {
		t.Fatalf("awaiting = %d, want 8 (4×K bound)", got)
	}
	fl.ReplicaApplied("r0", 16, 4, time.Millisecond)
	if got := fl.AwaitingApply(); got != 4 {
		t.Fatalf("awaiting after apply(16) = %d, want 4", got)
	}
	fl.ReplicaApplied("r0", 20, 4, time.Millisecond)
	if got := fl.AwaitingApply(); got != 0 {
		t.Fatalf("awaiting after apply(20) = %d, want 0", got)
	}
	// The traces inside the retained window got their replica stage.
	d := fl.Dump()
	var annotated int
	for _, ts := range d.Kinds["put"].Recent {
		for _, st := range ts.Stages {
			if st.Name == StageReplicaApply {
				annotated++
			}
		}
	}
	if annotated == 0 {
		t.Fatal("no retained trace gained a replica_apply stage")
	}
}

// TestMultiSinkBroadcast: one shared DB call fans its stages, spans, and
// commit rev out to every traced op in the batch.
func TestMultiSinkBroadcast(t *testing.T) {
	fl := NewFlight(4)
	a, b := fl.NewTrace(1, "put"), fl.NewTrace(2, "put")
	sink := MultiSink{a, b}
	sink.Stage(StageEngine, time.Microsecond)
	sink.Attempt(Span{Engine: "TL2", Outcome: OutcomeCommit})
	sink.SetCommitRev(5)
	for _, tr := range []*Trace{a, b} {
		s := tr.Snapshot()
		if len(s.Stages) != 1 || len(s.Spans) != 1 || s.CommitRev != 5 {
			t.Fatalf("broadcast missed trace %d: %+v", s.ID, s)
		}
	}
	if fl.AwaitingApply() != 1 {
		t.Fatal("duplicate rev must collapse to one awaiting entry")
	}
}

// TestRecordingTracerConcurrentReset is the -race hammer for the
// documented contract: TxnAttempt, Spans, Dropped, and Reset racing from
// many goroutines never tear a span or corrupt the bound.
func TestRecordingTracerConcurrentReset(t *testing.T) {
	tr := NewRecordingTracer(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr.TxnAttempt(Span{Engine: "RH1", Attempt: i, Outcome: OutcomeConflict, Wall: time.Duration(g)})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			for _, s := range tr.Spans() {
				if s.Engine != "RH1" {
					panic("torn span")
				}
			}
			tr.Dropped()
			tr.Reset()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Dropped() != 0 {
		t.Fatal("reset did not clear after hammer")
	}
	tr.TxnAttempt(Span{Engine: "RH1"})
	if len(tr.Spans()) != 1 {
		t.Fatal("tracer unusable after hammer")
	}
}

// TestSnapshotConcurrentWithUpdates: Snapshot/Flatten taken while every
// registered instrument type is being updated stay internally consistent
// — counters are monotone across successive snapshots, label-pair names
// never tear, and Flatten always agrees with the snapshot it came from.
func TestSnapshotConcurrentWithUpdates(t *testing.T) {
	r := NewRegistry()
	cFast := r.Counter(Name("engine.commits", "path", "fast"))
	cSlow := r.Counter(Name("engine.commits", "path", "slow"))
	g := r.Gauge("depth")
	h := r.Histogram("latency")
	var fn int64
	r.GaugeFunc("live", func() int64 { return fn })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cFast.Inc()
				cSlow.Add(2)
				g.Set(int64(i % 97))
				h.Observe(i % 1024)
				// Register a fresh label pair mid-flight occasionally so
				// snapshots race with registry growth too.
				if i%512 == 0 {
					r.Counter(Name("engine.aborts", "path", "fast")).Inc()
				}
			}
		}()
	}

	wantNames := map[string]bool{
		"engine.commits{path=fast}": true,
		"engine.commits{path=slow}": true,
	}
	var prevFast, prevSlow uint64
	for i := 0; i < 300; i++ {
		snap := r.Snapshot()
		for name := range snap.Counters {
			if name != "engine.commits{path=fast}" &&
				name != "engine.commits{path=slow}" &&
				name != "engine.aborts{path=fast}" {
				t.Fatalf("torn or unknown counter name %q", name)
			}
		}
		for want := range wantNames {
			if _, ok := snap.Counters[want]; !ok {
				t.Fatalf("snapshot lost counter %q", want)
			}
		}
		fast, slow := snap.Counter("engine.commits{path=fast}"), snap.Counter("engine.commits{path=slow}")
		if fast < prevFast || slow < prevSlow {
			t.Fatalf("counter went backwards: fast %d→%d slow %d→%d", prevFast, fast, prevSlow, slow)
		}
		prevFast, prevSlow = fast, slow
		hs := snap.Histograms["latency"]
		flat := snap.Flatten()
		if flat["engine.commits{path=fast}"] != int64(fast) {
			t.Fatal("flatten disagrees with its snapshot")
		}
		if flat["latency.count"] != int64(hs.Count) || flat["latency.sum"] != int64(hs.Sum) {
			t.Fatal("flatten histogram fields disagree with snapshot")
		}
		fn++
	}
	close(stop)
	wg.Wait()
}
