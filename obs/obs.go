// Package obs is the stack's unified observability surface: atomic
// counters, gauges, log-bucketed histograms, and a named registry that
// snapshots them all into one serializable structure. Every tier — the
// engines' live commit/abort taxonomy, store arena occupancy, 2PC phase
// timings, WAL group-commit amortization, watch-hub loss, lease churn —
// reports through it, and kv.DB.Metrics surfaces the combined snapshot
// identically on both backends.
//
// The design constraint is the hot path: instrumentation must be free when
// off and allocation-free when on. Both properties come from the same
// shape: instruments are resolved from the registry once, at construction
// time, and held as plain pointers; every instrument method is defined on
// the pointer type with an explicit nil check, so a nil *Registry hands
// out nil instruments and the call sites stay unconditional — a nil
// Counter.Add is a predicted-not-taken branch, no atomics, no allocation.
// Updating a live instrument is one atomic RMW.
//
// Names are flat strings; label sets are rendered into the name at
// registration time with Name (stable order), e.g.
// "engine.commits{path=fast}". The registry deduplicates by final name, so
// re-registering returns the same instrument.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The nil *Counter is a
// valid no-op instrument.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 on the nil instrument).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value instrument. The nil *Gauge is a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 on the nil instrument).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a Histogram: bucket i holds values
// whose bit length is i, i.e. value 0 in bucket 0 and otherwise
// [2^(i-1), 2^i). 64-bit values need at most bits.Len64 = 64, plus the
// zero bucket.
const histBuckets = 65

// Histogram is a log-bucketed (power-of-two) distribution — the right
// shape for latencies and sizes, where relative error matters and the
// range spans decades. Observe is one atomic add plus two for the
// count/sum, no allocation. The nil *Histogram is a valid no-op.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations (0 on the nil instrument).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on the nil instrument).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Snapshot captures the histogram's current state. The nil instrument
// snapshots empty. Exported so callers holding a bare *Histogram (the
// flight recorder's per-stage aggregates, rhtop) can summarize it with
// HistogramSnapshot.P without going through a Registry.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return h.snapshot()
}

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := uint64(0)
		if i > 0 {
			le = 1<<uint(i) - 1
		}
		out.Buckets = append(out.Buckets, Bucket{Le: le, Count: n})
	}
	return out
}

// Name renders a base name plus label pairs into the registry's canonical
// flat form: base{k1=v1,k2=v2}, pairs in the order given. Callers pass
// pairs as k1, v1, k2, v2, ...; an odd tail is ignored. Label sets are
// stable by construction — the instrument is registered once with one
// rendering.
func Name(base string, labels ...string) string {
	if len(labels) < 2 {
		return base
	}
	out := base + "{"
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			out += ","
		}
		out += labels[i] + "=" + labels[i+1]
	}
	return out + "}"
}

// Registry is a named instrument set. The nil *Registry is a valid no-op
// registry: every lookup returns the nil instrument of its kind and
// Snapshot returns the zero Snapshot.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() int64{},
		hists:      map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback sampled at snapshot time — for values
// that are cheaper to compute on demand than to maintain (queue depths,
// occupancy). The last registration under a name wins.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every instrument's current value. Counters and gauges
// are atomically read individually; the snapshot as a whole is not a
// consistent cut across instruments (no instrumented path stops for it),
// which is the standard metrics contract.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return out
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		funcs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	// Gauge callbacks run outside the registry lock: they may take
	// subsystem locks of their own (watch hub, stores).
	for name, c := range counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		out.Gauges[name] = g.Value()
	}
	for name, fn := range funcs {
		out.Gauges[name] = fn()
	}
	for name, h := range hists {
		out.Histograms[name] = h.snapshot()
	}
	return out
}

// Bucket is one histogram bucket: Count observations with value <= Le
// (and greater than the previous bucket's Le).
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a histogram's captured state; only non-empty
// buckets are kept.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// P estimates the q-quantile (0 < q <= 1) of the observed distribution
// by linear interpolation inside the log₂ bucket holding rank
// ceil(q·Count). A bucket with upper bound Le = 2^i − 1 spans values
// [2^(i-1), Le] (bucket 0 holds only the value 0): the estimate is
// lo + frac·(hi − lo) where frac is the rank's position within the
// bucket, so the last rank of a bucket lands exactly on its Le boundary.
// Returns 0 on an empty snapshot.
func (h HistogramSnapshot) P(q float64) uint64 {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for _, b := range h.Buckets {
		if cum+b.Count < rank {
			cum += b.Count
			continue
		}
		if b.Le == 0 {
			return 0
		}
		lo := b.Le/2 + 1 // 2^(i-1) for Le = 2^i - 1
		hi := b.Le
		frac := float64(rank-cum) / float64(b.Count)
		return lo + uint64(frac*float64(hi-lo))
	}
	// Unreachable when bucket counts sum to Count; be defensive.
	if n := len(h.Buckets); n > 0 {
		return h.Buckets[n-1].Le
	}
	return 0
}

// Snapshot is one capture of a metrics surface, the type kv.DB.Metrics
// returns. It serializes directly to JSON.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns a counter's value by name (0 when absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns a gauge's value by name (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Flatten renders the snapshot as one flat name → value map: counters and
// gauges directly, histograms as name.count / name.sum. This is the form
// the harness embeds in JSONL rows and tests assert against.
func (s Snapshot) Flatten() map[string]int64 {
	out := make(map[string]int64, len(s.Counters)+len(s.Gauges)+2*len(s.Histograms))
	for name, v := range s.Counters {
		out[name] = int64(v)
	}
	for name, v := range s.Gauges {
		out[name] = v
	}
	for name, h := range s.Histograms {
		out[name+".count"] = int64(h.Count)
		out[name+".sum"] = int64(h.Sum)
	}
	return out
}

// Names returns the snapshot's instrument names, sorted — a stable
// iteration order for rendering.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
