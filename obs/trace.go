package obs

import (
	"sync"
	"time"
)

// Span is one attempt of one closure transaction at the kv layer: the kv
// Update/Batch retry loop emits a span per Atomic attempt, committed or
// not. Aborted attempts produce spans too — that is the point: a
// transaction that retried 40 times yields 40 conflict spans with the
// engine that ran them, instead of a printf hunt.
//
// Granularity contract: one span is one *closure* attempt. The engines'
// internal hardware retries (fast-path aborts the engine itself absorbs
// before committing) do not produce spans; they aggregate into the
// engine.* live counters. A span therefore answers "how often did the
// whole body re-execute", the counters answer "what did the hardware do
// underneath".
type Span struct {
	// Engine is the engine that executed the attempt ("RH1 Mixed 100",
	// "TL2", ...).
	Engine string `json:"engine"`
	// Attempt is the zero-based retry count of this attempt within its
	// Update/Batch call.
	Attempt int `json:"attempt"`
	// Outcome is "commit", "conflict" (the attempt will be retried), or
	// "error" (the body returned a non-conflict error, ending the loop).
	Outcome string `json:"outcome"`
	// Err carries the error text for "error" outcomes.
	Err string `json:"err,omitempty"`
	// CommitRev is the highest revision the attempt's writes were stamped
	// with, 0 for read-only commits, aborted attempts, and backends that
	// do not surface revisions on this path.
	CommitRev uint64 `json:"commit_rev,omitempty"`
	// Wall is the attempt's wall-clock duration — host time, real
	// nanoseconds.
	Wall time.Duration `json:"wall_ns"`
	// VirtualTime is the DB's injected Clock reading when the span was
	// recorded — the time base leases expire on. Wall and VirtualTime are
	// deliberately distinct fields: the machine is simulated and tests
	// drive the virtual clock manually, so neither is derivable from the
	// other.
	VirtualTime uint64 `json:"virtual_time"`
}

// Outcome values of a Span.
const (
	OutcomeCommit   = "commit"
	OutcomeConflict = "conflict"
	OutcomeError    = "error"
)

// Tracer receives per-attempt spans. Implementations must be safe for
// concurrent use; TxnAttempt runs on the caller's hot path, so it should
// be cheap.
type Tracer interface {
	TxnAttempt(Span)
}

// RecordingTracer is a bounded in-memory Tracer for tests and debugging.
//
// Concurrency contract: every method serializes on one internal mutex, so
// TxnAttempt, Spans, Dropped, and Reset may race freely from any number
// of goroutines. Two consequences callers can rely on: (1) Spans returns
// a fresh copy, never an alias of the live buffer — a slice obtained
// before a concurrent Reset stays intact even though Reset truncates the
// live buffer in place and later TxnAttempts reuse its backing array;
// (2) a TxnAttempt concurrent with Reset lands either entirely before it
// (discarded) or entirely after it (retained against a zeroed bound) —
// never a torn span and never a stale dropped count. The contract is
// exercised under -race by TestRecordingTracerConcurrentReset.
type RecordingTracer struct {
	mu      sync.Mutex
	spans   []Span
	limit   int
	dropped uint64
}

// NewRecordingTracer creates a tracer retaining at most limit spans
// (limit <= 0 means 4096). Spans past the bound are counted, not kept.
func NewRecordingTracer(limit int) *RecordingTracer {
	if limit <= 0 {
		limit = 4096
	}
	return &RecordingTracer{limit: limit}
}

// TxnAttempt implements Tracer.
func (t *RecordingTracer) TxnAttempt(s Span) {
	t.mu.Lock()
	if len(t.spans) < t.limit {
		t.spans = append(t.spans, s)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in arrival order.
func (t *RecordingTracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped returns how many spans the bound discarded.
func (t *RecordingTracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards everything recorded so far.
func (t *RecordingTracer) Reset() {
	t.mu.Lock()
	t.spans, t.dropped = t.spans[:0], 0
	t.mu.Unlock()
}
