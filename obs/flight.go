package obs

import (
	"sort"
	"sync"
	"time"
)

// Flight is the flight recorder: a bounded ring of sampled traces that
// always retains, per request kind, the K slowest traces, the K most
// recent errors, and the K most recent overall, plus per-stage duration
// histograms for quantile summaries. Retention is by eviction, never by
// blocking — recording is O(K) under one mutex and never touches the
// request's critical path beyond that.
//
// A Flight also owns the awaiting-apply table that links a finished
// trace to the replica apply that later replays its commit revision:
// SetCommitRev registers the trace, ReplicaApplied (called from the repl
// apply loop) annotates and releases every trace at or below the applied
// watermark. The table is bounded (4×K entries, FIFO eviction) so a
// replica-less deployment cannot leak traces.
type Flight struct {
	k int

	mu         sync.Mutex
	kinds      map[string]*flightKind
	awaiting   map[uint64]*Trace
	awaitOrder []uint64
}

type flightKind struct {
	count    uint64
	errors   uint64
	slowest  []slowEntry // sorted descending by wall, len <= k
	recent   []*Trace    // newest last, len <= k
	errTrail []*Trace    // newest last, len <= k
	stages   map[string]*Histogram
}

// slowEntry caches the sealed wall time so ordering the slowest list
// never takes a trace's lock under the flight lock.
type slowEntry struct {
	t    *Trace
	wall uint64
}

// DefaultFlightK is the per-kind retention depth used when NewFlight is
// given a non-positive k.
const DefaultFlightK = 8

// NewFlight returns a flight recorder retaining k traces per bucket per
// request kind (k <= 0 means DefaultFlightK).
func NewFlight(k int) *Flight {
	if k <= 0 {
		k = DefaultFlightK
	}
	return &Flight{
		k:        k,
		kinds:    make(map[string]*flightKind),
		awaiting: make(map[uint64]*Trace),
	}
}

// NewTrace opens a trace for one sampled request of the given kind. The
// id is the wire trace id chosen by the sampling side. A nil Flight
// returns a detached trace that still records stages and renders, but is
// retained nowhere.
func (f *Flight) NewTrace(id uint64, kind string) *Trace {
	return &Trace{fl: f, id: id, kind: kind, begin: time.Now()}
}

func (f *Flight) kindLocked(kind string) *flightKind {
	fk := f.kinds[kind]
	if fk == nil {
		fk = &flightKind{stages: make(map[string]*Histogram)}
		f.kinds[kind] = fk
	}
	return fk
}

// record files a finished trace. Called by Trace.Finish; never called
// with t.mu held.
func (f *Flight) record(t *Trace) {
	snap := t.Snapshot()
	f.mu.Lock()
	defer f.mu.Unlock()
	fk := f.kindLocked(snap.Kind)
	fk.count++
	for _, st := range snap.Stages {
		h := fk.stages[st.Name]
		if h == nil {
			h = &Histogram{}
			fk.stages[st.Name] = h
		}
		h.Observe(uint64(st.Dur))
	}
	fk.recent = appendRing(fk.recent, t, f.k)
	if snap.Err != "" {
		fk.errors++
		fk.errTrail = appendRing(fk.errTrail, t, f.k)
	}
	// Insert into the slowest-K list (descending by wall time).
	i := sort.Search(len(fk.slowest), func(i int) bool {
		return fk.slowest[i].wall < snap.WallNS
	})
	if i < f.k {
		fk.slowest = append(fk.slowest, slowEntry{})
		copy(fk.slowest[i+1:], fk.slowest[i:])
		fk.slowest[i] = slowEntry{t: t, wall: snap.WallNS}
		if len(fk.slowest) > f.k {
			fk.slowest = fk.slowest[:f.k]
		}
	}
}

func appendRing(ring []*Trace, t *Trace, k int) []*Trace {
	ring = append(ring, t)
	if len(ring) > k {
		copy(ring, ring[1:])
		ring = ring[:len(ring)-1]
	}
	return ring
}

// awaitApply registers a trace to be annotated when a replica applies
// rev. Bounded: beyond 4×K pending entries the oldest is dropped.
func (f *Flight) awaitApply(rev uint64, t *Trace) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.awaiting[rev]; !dup {
		f.awaitOrder = append(f.awaitOrder, rev)
	}
	f.awaiting[rev] = t
	for len(f.awaitOrder) > 4*f.k {
		old := f.awaitOrder[0]
		f.awaitOrder = f.awaitOrder[1:]
		delete(f.awaiting, old)
	}
}

// ReplicaApplied reports that the named replica's apply loop reached
// watermark maxRev, applying n ops over duration d. Every awaiting trace
// with commit revision <= maxRev gains a replica_apply stage annotated
// with the replica name and is released from the table.
func (f *Flight) ReplicaApplied(replica string, maxRev uint64, n int, d time.Duration) {
	if f == nil || maxRev == 0 {
		return
	}
	var hit []*Trace
	f.mu.Lock()
	kept := f.awaitOrder[:0]
	for _, rev := range f.awaitOrder {
		if rev <= maxRev {
			if t := f.awaiting[rev]; t != nil {
				hit = append(hit, t)
			}
			delete(f.awaiting, rev)
		} else {
			kept = append(kept, rev)
		}
	}
	f.awaitOrder = kept
	f.mu.Unlock()
	// Annotate outside f.mu. Lock order is one-way: record/Dump take
	// f.mu alone, Trace methods take t.mu alone — a trace lock is never
	// held while acquiring the flight lock, so annotating here without
	// f.mu keeps the order acyclic.
	for _, t := range hit {
		t.annotate(StageReplicaApply, d, "replica="+replica)
	}
}

// AwaitingApply returns the number of commit revisions still waiting for
// a replica apply (for tests and health reporting).
func (f *Flight) AwaitingApply() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.awaiting)
}

// StageStat summarizes one stage's duration distribution within a kind.
type StageStat struct {
	Count uint64 `json:"count"`
	P50NS uint64 `json:"p50_ns"`
	P95NS uint64 `json:"p95_ns"`
	P99NS uint64 `json:"p99_ns"`
}

// KindDump is one request kind's flight-recorder state.
type KindDump struct {
	Count        uint64               `json:"count"`
	Errors       uint64               `json:"errors"`
	Stages       map[string]StageStat `json:"stages,omitempty"`
	Slowest      []TraceSnapshot      `json:"slowest,omitempty"`
	RecentErrors []TraceSnapshot      `json:"recent_errors,omitempty"`
	Recent       []TraceSnapshot      `json:"recent,omitempty"`
}

// FlightDump is the serializable flight-recorder state served by
// KindTraceDump frames and printed on server close.
type FlightDump struct {
	Kinds map[string]KindDump `json:"kinds"`
}

// Dump captures the recorder. Trace snapshots are taken outside the
// flight lock (same non-nesting argument as ReplicaApplied).
func (f *Flight) Dump() FlightDump {
	out := FlightDump{Kinds: make(map[string]KindDump)}
	if f == nil {
		return out
	}
	type rawKind struct {
		name     string
		count    uint64
		errors   uint64
		stats    map[string]StageStat
		slowest  []slowEntry
		errTrail []*Trace
		recent   []*Trace
	}
	var raws []rawKind
	f.mu.Lock()
	for name, fk := range f.kinds {
		rk := rawKind{
			name:     name,
			count:    fk.count,
			errors:   fk.errors,
			stats:    make(map[string]StageStat, len(fk.stages)),
			slowest:  append([]slowEntry(nil), fk.slowest...),
			errTrail: append([]*Trace(nil), fk.errTrail...),
			recent:   append([]*Trace(nil), fk.recent...),
		}
		for sn, h := range fk.stages {
			hs := h.Snapshot()
			rk.stats[sn] = StageStat{
				Count: hs.Count,
				P50NS: hs.P(0.50),
				P95NS: hs.P(0.95),
				P99NS: hs.P(0.99),
			}
		}
		raws = append(raws, rk)
	}
	f.mu.Unlock()
	for _, rk := range raws {
		kd := KindDump{
			Count:  rk.count,
			Errors: rk.errors,
			Stages: rk.stats,
		}
		for _, e := range rk.slowest {
			kd.Slowest = append(kd.Slowest, e.t.Snapshot())
		}
		for _, t := range rk.errTrail {
			kd.RecentErrors = append(kd.RecentErrors, t.Snapshot())
		}
		for _, t := range rk.recent {
			kd.Recent = append(kd.Recent, t.Snapshot())
		}
		out.Kinds[rk.name] = kd
	}
	return out
}
