// Package rhtm is a Go reproduction of "Reduced Hardware Transactions: A New
// Approach to Hybrid Transactional Memory" (Matveev & Shavit, 2013).
//
// Because Go exposes no hardware transactional memory — and its goroutine
// preemption would abort real HTM regions constantly — the library runs on a
// simulated machine: a flat word memory with cache-line-granularity conflict
// detection and a best-effort HTM built on it (see DESIGN.md for the
// substitution argument). On that substrate it provides the paper's full
// protocol stack (RH1 fast/slow paths, the RH2 fallback, and the
// all-software slow-slow path) plus every baseline of the paper's
// evaluation: uninstrumented HTM, Standard HyTM, TL2, Hybrid NoRec and
// Phased TM.
//
// # Quick start
//
//	s, _ := rhtm.NewSystem(rhtm.DefaultConfig(1 << 16))
//	eng := rhtm.NewRH1(s, rhtm.DefaultRH1Options())
//	counter := s.MustAlloc(1)
//
//	th := eng.NewThread() // one per goroutine
//	err := th.Atomic(func(tx rhtm.Tx) error {
//	    tx.Store(counter, tx.Load(counter)+1)
//	    return nil
//	})
//
// Transactional data lives in the simulated memory and is addressed by
// rhtm.Addr word handles obtained from System.MustAlloc. The containers
// package builds red-black trees, hash tables and lists on top of this API.
package rhtm

import (
	"rhtm/internal/clock"
	"rhtm/internal/core"
	"rhtm/internal/engine"
	"rhtm/internal/htm"
	"rhtm/internal/hytm"
	"rhtm/internal/memsim"
	"rhtm/internal/norec"
	"rhtm/internal/phased"
	"rhtm/internal/sys"
	"rhtm/internal/tl2"
)

// Addr is the address of one 64-bit word of simulated transactional memory.
type Addr = memsim.Addr

// NilAddr is the reserved null address (never returned by Alloc).
const NilAddr = memsim.NilAddr

// Tx is the operation surface visible inside a transaction body.
type Tx = engine.Tx

// Thread is a per-goroutine transaction context; obtain one from
// Engine.NewThread and do not share it.
type Thread = engine.Thread

// Engine is one transactional-memory implementation.
type Engine = engine.Engine

// Stats aggregates engine activity; see Engine.Snapshot.
type Stats = engine.Stats

// AbortReason classifies hardware aborts in Stats.
type AbortReason = memsim.AbortReason

// MaxThreads is the default maximum number of threads an engine supports
// (one bit per thread in the RH2 read masks; raise Config.MaxThreads for
// more, at the cost of extra mask words per stripe).
const MaxThreads = engine.MaxThreads

// ClockMode selects the global-version-clock discipline.
type ClockMode = clock.Mode

// Clock modes: GV6 (the paper's choice: advance on abort only) and GV5
// (increment on every commit; ablation).
const (
	GV6 = clock.GV6
	GV5 = clock.GV5
)

// HTMConfig bounds simulated hardware-transaction footprints.
type HTMConfig = htm.Config

// ConflictPolicy selects which transaction dies on a speculative collision.
type ConflictPolicy = memsim.ConflictPolicy

// Conflict policies: RequesterWins (default, TSX-like) and CommitterWins
// (ablation).
const (
	RequesterWins = memsim.RequesterWins
	CommitterWins = memsim.CommitterWins
)

// Config sizes the simulated machine.
type Config struct {
	// DataWords is the transactional heap size in 64-bit words.
	DataWords int
	// WordsPerStripe is the TM metadata granularity (power of two;
	// default 8 = one stripe per cache line).
	WordsPerStripe int
	// WordsPerLine is the simulated cache-line size in words (power of two;
	// default 8 = 64 bytes).
	WordsPerLine int
	// ClockMode selects GV6 (default) or GV5.
	ClockMode ClockMode
	// Policy selects the HTM conflict-resolution policy (ablation knob;
	// default RequesterWins, mirroring eager invalidation).
	Policy ConflictPolicy
	// MaxThreads bounds worker threads per engine (default 64). Larger
	// values allocate additional read-mask words per stripe, as the paper
	// notes for >64-thread deployments (§4.1).
	MaxThreads int
	// HTM bounds hardware transactions; zero value selects the default
	// (512-line write sets, 2048-line total footprints).
	HTM HTMConfig
}

// DefaultConfig returns the benchmark configuration for a heap of the given
// word count.
func DefaultConfig(dataWords int) Config {
	return Config{
		DataWords:      dataWords,
		WordsPerStripe: 8,
		WordsPerLine:   8,
		ClockMode:      GV6,
		HTM:            htm.DefaultConfig(),
	}
}

// System is one simulated machine: word memory, heap, TM metadata, clock.
// All engines created on the same System share its metadata and conflict
// detection, so transactions from different engines on one System
// interoperate the way the paper's fast and slow paths do.
type System struct {
	inner *sys.System
}

// NewSystem builds a System from cfg.
func NewSystem(cfg Config) (*System, error) {
	sc := sys.DefaultConfig(cfg.DataWords)
	if cfg.WordsPerStripe != 0 {
		sc.WordsPerStripe = cfg.WordsPerStripe
	}
	if cfg.WordsPerLine != 0 {
		sc.WordsPerLine = cfg.WordsPerLine
	}
	sc.ClockMode = cfg.ClockMode
	sc.Policy = cfg.Policy
	if cfg.MaxThreads != 0 {
		sc.MaxThreads = cfg.MaxThreads
	}
	if cfg.HTM != (HTMConfig{}) {
		sc.HTM = cfg.HTM
	}
	inner, err := sys.New(sc)
	if err != nil {
		return nil, err
	}
	return &System{inner: inner}, nil
}

// MustNewSystem is NewSystem for setup code.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Alloc reserves a zeroed block of n words of transactional memory.
func (s *System) Alloc(n int) (Addr, error) { return s.inner.Heap.Alloc(n) }

// MustAlloc is Alloc for setup code.
func (s *System) MustAlloc(n int) Addr { return s.inner.Heap.MustAlloc(n) }

// Free returns a block previously obtained from Alloc with the same size.
func (s *System) Free(a Addr, n int) { s.inner.Heap.Free(a, n) }

// Load performs a plain (non-transactional) load, with the coherence
// side effects a real non-transactional load has (it may abort hardware
// transactions speculating on the line).
func (s *System) Load(a Addr) uint64 { return s.inner.Mem.Load(a) }

// Store performs a plain (non-transactional) store; it aborts every
// hardware transaction monitoring the line, as real coherence would.
func (s *System) Store(a Addr, v uint64) { s.inner.Mem.Store(a, v) }

// Peek reads a word without coherence side effects. Only safe while no
// transactions are in flight (setup and verification).
func (s *System) Peek(a Addr) uint64 { return s.inner.Mem.Peek(a) }

// Poke writes a word without coherence side effects, under the same
// single-threaded contract as Peek.
func (s *System) Poke(a Addr, v uint64) { s.inner.Mem.Poke(a, v) }

// Internal exposes the underlying machine to sibling packages (containers,
// the benchmark harness). It is not part of the stable API.
func (s *System) Internal() *sys.System { return s.inner }

// --- engine constructors ---

// RH1Options configures the reduced-hardware-transactions engine.
type RH1Options struct {
	// FastOnly retries the hardware fast path indefinitely on transient
	// aborts (the paper's "RH1 Fast"); otherwise aborts fall back to the
	// mixed slow path per MixPercent (the paper's "RH1 Mixed N").
	FastOnly bool
	// SlowOnly sends every transaction straight to the mixed slow path (the
	// paper's "RH1 Slow" breakdown configuration). Overrides FastOnly.
	SlowOnly bool
	// MixPercent is the percentage of transient fast-path aborts retried on
	// the slow path (ignored when FastOnly).
	MixPercent int
	// MaxFastAttempts bounds consecutive fast attempts in mixed mode
	// (0 = default).
	MaxFastAttempts int
	// InjectAbortPercent forces this share of hardware commits to abort,
	// reproducing the paper's emulation methodology.
	InjectAbortPercent int
}

// DefaultRH1Options returns the paper's RH1 Mixed 100 configuration.
func DefaultRH1Options() RH1Options {
	return RH1Options{MixPercent: 100, MaxFastAttempts: 16}
}

func (o RH1Options) toCore(p core.Protocol) core.Options {
	opts := core.DefaultOptions()
	opts.Protocol = p
	if o.FastOnly {
		opts.Mode = core.ModeFastOnly
	}
	if o.SlowOnly {
		opts.Mode = core.ModeSlowOnly
	}
	opts.MixPercent = o.MixPercent
	if o.MaxFastAttempts > 0 {
		opts.MaxFastAttempts = o.MaxFastAttempts
	}
	opts.InjectAbortPercent = o.InjectAbortPercent
	return opts
}

// NewRH1 creates the full reduced-hardware protocol stack (RH1 with RH2 and
// all-software fallbacks) — the paper's primary contribution.
func NewRH1(s *System, o RH1Options) Engine {
	return core.New(s.inner, o.toCore(core.ProtocolRH1))
}

// NewRH2 creates a standalone RH2 engine (locks plus commit-time visible
// read masks; §4).
func NewRH2(s *System, o RH1Options) Engine {
	return core.New(s.inner, o.toCore(core.ProtocolRH2))
}

// NewTL2 creates the TL2 STM baseline.
func NewTL2(s *System) Engine { return tl2.New(s.inner) }

// HWOptions configures the hardware baseline engines.
type HWOptions struct {
	// InjectAbortPercent forces hardware commit aborts.
	InjectAbortPercent int
	// Mixed lets Standard HyTM fall back to its TL2 slow path after
	// repeated transient aborts (persistent failures always fall back).
	Mixed bool
}

// NewHTM creates the uninstrumented pure-hardware baseline. Transactions
// that persistently cannot run in hardware fail with an error.
func NewHTM(s *System, o HWOptions) Engine {
	opts := hytm.DefaultOptions()
	opts.InjectAbortPercent = o.InjectAbortPercent
	return hytm.NewPureHTM(s.inner, opts)
}

// NewStandardHyTM creates the traditional instrumented hybrid baseline.
func NewStandardHyTM(s *System, o HWOptions) Engine {
	opts := hytm.DefaultOptions()
	opts.InjectAbortPercent = o.InjectAbortPercent
	opts.Mixed = o.Mixed
	return hytm.NewStandard(s.inner, opts)
}

// NewHybridNoRec creates the Hybrid NoRec baseline.
func NewHybridNoRec(s *System, o HWOptions) Engine {
	opts := norec.DefaultOptions()
	opts.InjectAbortPercent = o.InjectAbortPercent
	return norec.MustNew(s.inner, opts)
}

// NewPhasedTM creates the Phased TM baseline.
func NewPhasedTM(s *System, o HWOptions) Engine {
	opts := phased.DefaultOptions()
	opts.InjectAbortPercent = o.InjectAbortPercent
	return phased.MustNew(s.inner, opts)
}
