package rhtm

import (
	"sync"
	"testing"
)

func TestQuickstartCounter(t *testing.T) {
	s := MustNewSystem(DefaultConfig(1 << 12))
	eng := NewRH1(s, DefaultRH1Options())
	counter := s.MustAlloc(1)
	var wg sync.WaitGroup
	const workers, incs = 4, 100
	for w := 0; w < workers; w++ {
		th := eng.NewThread()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				if err := th.Atomic(func(tx Tx) error {
					tx.Store(counter, tx.Load(counter)+1)
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Load(counter); got != workers*incs {
		t.Fatalf("counter = %d, want %d", got, workers*incs)
	}
}

func TestAllConstructorsProduceWorkingEngines(t *testing.T) {
	build := []struct {
		name string
		mk   func(*System) Engine
	}{
		{"RH1", func(s *System) Engine { return NewRH1(s, DefaultRH1Options()) }},
		{"RH1Fast", func(s *System) Engine { return NewRH1(s, RH1Options{FastOnly: true}) }},
		{"RH2", func(s *System) Engine { return NewRH2(s, DefaultRH1Options()) }},
		{"TL2", func(s *System) Engine { return NewTL2(s) }},
		{"HTM", func(s *System) Engine { return NewHTM(s, HWOptions{}) }},
		{"StdHyTM", func(s *System) Engine { return NewStandardHyTM(s, HWOptions{}) }},
		{"NoRec", func(s *System) Engine { return NewHybridNoRec(s, HWOptions{}) }},
		{"Phased", func(s *System) Engine { return NewPhasedTM(s, HWOptions{}) }},
	}
	for _, b := range build {
		t.Run(b.name, func(t *testing.T) {
			s := MustNewSystem(DefaultConfig(1 << 10))
			eng := b.mk(s)
			if eng.Name() == "" {
				t.Fatal("empty engine name")
			}
			a := s.MustAlloc(2)
			th := eng.NewThread()
			for i := 0; i < 10; i++ {
				if err := th.Atomic(func(tx Tx) error {
					v := tx.Load(a)
					tx.Store(a, v+1)
					tx.Store(a+1, v+1)
					return nil
				}); err != nil {
					t.Fatalf("Atomic: %v", err)
				}
			}
			if s.Load(a) != 10 || s.Load(a+1) != 10 {
				t.Fatalf("values = %d,%d, want 10,10", s.Load(a), s.Load(a+1))
			}
			if eng.Snapshot().Commits() != 10 {
				t.Fatalf("commits = %d, want 10", eng.Snapshot().Commits())
			}
		})
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	s := MustNewSystem(DefaultConfig(1 << 10))
	a, err := s.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	s.Store(a, 5)
	if s.Load(a) != 5 {
		t.Fatal("store/load mismatch")
	}
	s.Free(a, 8)
	b := s.MustAlloc(8)
	if b != a {
		t.Fatalf("free block not reused: %d vs %d", b, a)
	}
	if s.Peek(b) != 0 {
		t.Fatal("recycled block not zeroed")
	}
}

func TestNewSystemRejectsBadConfig(t *testing.T) {
	if _, err := NewSystem(Config{DataWords: -5}); err == nil {
		t.Fatal("negative DataWords accepted")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	s := MustNewSystem(Config{DataWords: 1 << 10}) // all other fields zero
	inner := s.Internal()
	if inner.Config().WordsPerStripe != 8 || inner.Config().WordsPerLine != 8 {
		t.Fatalf("defaults not applied: %+v", inner.Config())
	}
	if inner.Config().HTM.MaxWriteLines == 0 {
		t.Fatal("zero HTM config not defaulted")
	}
}

func TestGV5ClockMode(t *testing.T) {
	cfg := DefaultConfig(1 << 10)
	cfg.ClockMode = GV5
	s := MustNewSystem(cfg)
	eng := NewRH1(s, DefaultRH1Options())
	a := s.MustAlloc(1)
	th := eng.NewThread()
	if err := th.Atomic(func(tx Tx) error {
		tx.Store(a, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if s.Load(a) != 1 {
		t.Fatal("GV5 engine lost a write")
	}
}

// TestRH2SlowPathLockTimeValidation is the regression test for a lost-update
// hole in RH2's software commit: phase 3 skips read-set stripes the
// transaction itself write-locked, so phase 1 must validate the version each
// lock replaces against tx_version (as TL2's lock phase does). Without that
// check, a transaction that read a word, then lost the race to a full commit
// on the same stripe, locks it blindly and writes back its stale
// read-modify-write — silently erasing the other commit.
//
// The interleaving is forced deterministically: T1 reads the word and parks
// mid-body while T2 runs a complete increment transaction on it; T1 then
// proceeds to commit. A correct engine must abort T1's first attempt and
// re-run its body.
func TestRH2SlowPathLockTimeValidation(t *testing.T) {
	s := MustNewSystem(DefaultConfig(1 << 12))
	eng := NewRH2(s, RH1Options{SlowOnly: true, MixPercent: 100})
	word := s.MustAlloc(1)
	s.Poke(word, 1000)

	t1Read := make(chan struct{})
	t2Done := make(chan struct{})
	go func() {
		<-t1Read
		th2 := eng.NewThread()
		if err := th2.Atomic(func(tx Tx) error {
			tx.Store(word, tx.Load(word)+100)
			return nil
		}); err != nil {
			t.Errorf("T2: %v", err)
		}
		close(t2Done)
	}()

	th1 := eng.NewThread()
	attempts := 0
	if err := th1.Atomic(func(tx Tx) error {
		v := tx.Load(word)
		attempts++
		if attempts == 1 {
			// Park between the read and the commit-time lock while T2
			// commits an increment to the same stripe.
			close(t1Read)
			<-t2Done
		}
		tx.Store(word, v+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if attempts < 2 {
		t.Errorf("T1 committed on attempt 1 despite an intervening commit on its write stripe")
	}
	if got := s.Load(word); got != 1101 {
		t.Fatalf("word = %d, want 1101 (1000 + T2's 100 + T1's 1); T2's commit was overwritten", got)
	}
}
