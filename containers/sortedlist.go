package containers

import "rhtm"

// Sorted list node layout, in words.
const (
	slKey    = 0
	slNext   = 1
	slValue  = 2
	slDummy0 = 3
	// SLNodeWords is the allocation size of one list node.
	SLNodeWords = 8
)

const slDummyWords = SLNodeWords - slDummy0

// SortedList is a transactional singly linked sorted list keyed by uint64
// (key 0 reserved). Its linear scans make every transaction read the shared
// list prefix, the paper's heavy-contention workload (§3.4).
type SortedList struct {
	sys  *rhtm.System
	head rhtm.Addr // one-word cell holding the first node address
}

// NewSortedList allocates an empty list on s.
func NewSortedList(s *rhtm.System) *SortedList {
	return &SortedList{sys: s, head: s.MustAlloc(1)}
}

// Populate inserts the keys (value = key) non-transactionally during setup.
func (l *SortedList) Populate(keys []uint64) {
	tx := SetupTx(l.sys)
	for _, k := range keys {
		l.Insert(tx, k, k)
	}
}

// --- the paper's Constant operations ---

// ConstSearch is the paper's list_search(key): linear scan reading each
// visited node's dummy words.
func (l *SortedList) ConstSearch(tx rhtm.Tx, key uint64) bool {
	n := tx.Load(l.head)
	for n != uint64(rhtm.NilAddr) {
		a := rhtm.Addr(n)
		for i := 0; i < slDummyWords; i++ {
			_ = tx.Load(a + slDummy0 + rhtm.Addr(i))
		}
		k := tx.Load(a + slKey)
		if k == key {
			return true
		}
		if k > key {
			return false
		}
		n = tx.Load(a + slNext)
	}
	return false
}

// ConstUpdate is the paper's list_update(key, val): linear search, then
// update the dummy variables inside the found node without touching the
// structure.
func (l *SortedList) ConstUpdate(tx rhtm.Tx, key, value uint64) bool {
	n := tx.Load(l.head)
	for n != uint64(rhtm.NilAddr) {
		a := rhtm.Addr(n)
		k := tx.Load(a + slKey)
		if k == key {
			for i := 0; i < slDummyWords; i++ {
				tx.Store(a+slDummy0+rhtm.Addr(i), value)
			}
			return true
		}
		if k > key {
			return false
		}
		n = tx.Load(a + slNext)
	}
	return false
}

// --- real operations ---

// Get returns the value stored under key.
func (l *SortedList) Get(tx rhtm.Tx, key uint64) (uint64, bool) {
	n := tx.Load(l.head)
	for n != uint64(rhtm.NilAddr) {
		a := rhtm.Addr(n)
		k := tx.Load(a + slKey)
		if k == key {
			return tx.Load(a + slValue), true
		}
		if k > key {
			break
		}
		n = tx.Load(a + slNext)
	}
	return 0, false
}

// Insert adds key→value in sorted position, returning false (updating in
// place) if present. See RBTree.Insert for the allocation-on-retry note.
func (l *SortedList) Insert(tx rhtm.Tx, key, value uint64) bool {
	if key == 0 {
		panic("containers: SortedList key 0 is reserved")
	}
	prev := l.head
	n := tx.Load(prev)
	for n != uint64(rhtm.NilAddr) {
		a := rhtm.Addr(n)
		k := tx.Load(a + slKey)
		if k == key {
			tx.Store(a+slValue, value)
			return false
		}
		if k > key {
			break
		}
		prev = a + slNext
		n = tx.Load(prev)
	}
	node := l.sys.MustAlloc(SLNodeWords)
	tx.Store(node+slKey, key)
	tx.Store(node+slValue, value)
	tx.Store(node+slNext, n)
	tx.Store(prev, uint64(node))
	return true
}

// Remove unlinks key, returning false if absent (node not reclaimed; see
// RBTree.Delete).
func (l *SortedList) Remove(tx rhtm.Tx, key uint64) bool {
	prev := l.head
	n := tx.Load(prev)
	for n != uint64(rhtm.NilAddr) {
		a := rhtm.Addr(n)
		k := tx.Load(a + slKey)
		if k == key {
			tx.Store(prev, tx.Load(a+slNext))
			return true
		}
		if k > key {
			return false
		}
		prev = a + slNext
		n = tx.Load(prev)
	}
	return false
}

// Keys returns the list contents in order with raw access (setup and
// verification only).
func (l *SortedList) Keys() []uint64 {
	tx := SetupTx(l.sys)
	var out []uint64
	for n := tx.Load(l.head); n != uint64(rhtm.NilAddr); n = tx.Load(rhtm.Addr(n) + slNext) {
		out = append(out, tx.Load(rhtm.Addr(n)+slKey))
	}
	return out
}
