package containers

import (
	"math/rand"

	"rhtm"
)

// RandomArray is the paper's Random Array benchmark structure (§3.5): a
// shared array whose transactions "simply access random array locations to
// read and write, without any special additional logic", giving direct
// control over transaction length and write ratio.
type RandomArray struct {
	sys  *rhtm.System
	base rhtm.Addr
	size uint64
}

// NewRandomArray allocates an array of size words.
func NewRandomArray(s *rhtm.System, size int) *RandomArray {
	if size <= 0 {
		panic("containers: RandomArray needs a positive size")
	}
	return &RandomArray{sys: s, base: s.MustAlloc(size), size: uint64(size)}
}

// Size returns the number of words.
func (r *RandomArray) Size() int { return int(r.size) }

// Op performs one transaction body of the given length: length shared
// accesses at uniformly random indices, of which writePct percent are
// writes. It returns the XOR of the values read (so reads cannot be
// optimized away).
func (r *RandomArray) Op(tx rhtm.Tx, rng *rand.Rand, length, writePct int) uint64 {
	var acc uint64
	for i := 0; i < length; i++ {
		a := r.base + rhtm.Addr(rng.Int63n(int64(r.size)))
		if rng.Intn(100) < writePct {
			tx.Store(a, uint64(i)+1)
		} else {
			acc ^= tx.Load(a)
		}
	}
	return acc
}

// Fill writes v to every word non-transactionally (setup only).
func (r *RandomArray) Fill(v uint64) {
	for i := uint64(0); i < r.size; i++ {
		r.sys.Poke(r.base+rhtm.Addr(i), v)
	}
}

// At returns the address of index i (for tests).
func (r *RandomArray) At(i int) rhtm.Addr {
	if i < 0 || uint64(i) >= r.size {
		panic("containers: RandomArray index out of range")
	}
	return r.base + rhtm.Addr(i)
}
