package containers

import "rhtm"

// Hash table node layout, in words. The dummy words carry the paper's
// Constant Hash Table fake updates (§3.3).
const (
	htKey    = 0
	htNext   = 1
	htValue  = 2
	htDummy0 = 3
	// HTNodeWords is the allocation size of one chain node.
	HTNodeWords = 8
)

const htDummyWords = HTNodeWords - htDummy0

// HashTable is a transactional chained hash table keyed by uint64 (key 0
// reserved).
type HashTable struct {
	sys     *rhtm.System
	buckets rhtm.Addr // array of bucket-head words
	nbkt    uint64
}

// NewHashTable allocates a table with nbuckets chains.
func NewHashTable(s *rhtm.System, nbuckets int) *HashTable {
	if nbuckets <= 0 {
		panic("containers: hash table needs at least one bucket")
	}
	return &HashTable{
		sys:     s,
		buckets: s.MustAlloc(nbuckets),
		nbkt:    uint64(nbuckets),
	}
}

// bucketOf returns the bucket-head cell for key, using a Fibonacci hash so
// that sequential keys spread across buckets ("highly distributed nature of
// hash table access", §3.3).
func (h *HashTable) bucketOf(key uint64) rhtm.Addr {
	return h.buckets + rhtm.Addr((key*11400714819323198485)%h.nbkt)
}

// Populate inserts the keys (value = key) non-transactionally during setup.
func (h *HashTable) Populate(keys []uint64) {
	tx := SetupTx(h.sys)
	for _, k := range keys {
		h.Insert(tx, k, k)
	}
}

// --- the paper's Constant operations ---

// ConstQuery is the paper's hash_query(key): walk the chain reading the
// dummy words of each visited node.
func (h *HashTable) ConstQuery(tx rhtm.Tx, key uint64) bool {
	n := tx.Load(h.bucketOf(key))
	for n != uint64(rhtm.NilAddr) {
		a := rhtm.Addr(n)
		for i := 0; i < htDummyWords; i++ {
			_ = tx.Load(a + htDummy0 + rhtm.Addr(i))
		}
		if tx.Load(a+htKey) == key {
			return true
		}
		n = tx.Load(a + htNext)
	}
	return false
}

// ConstUpdate is the paper's hash_update(key, val): query for the key and,
// when found, update the dummy variables inside the node without touching
// the structure.
func (h *HashTable) ConstUpdate(tx rhtm.Tx, key, value uint64) bool {
	n := tx.Load(h.bucketOf(key))
	for n != uint64(rhtm.NilAddr) {
		a := rhtm.Addr(n)
		if tx.Load(a+htKey) == key {
			for i := 0; i < htDummyWords; i++ {
				tx.Store(a+htDummy0+rhtm.Addr(i), value)
			}
			return true
		}
		n = tx.Load(a + htNext)
	}
	return false
}

// --- real operations ---

// Get returns the value stored under key.
func (h *HashTable) Get(tx rhtm.Tx, key uint64) (uint64, bool) {
	n := tx.Load(h.bucketOf(key))
	for n != uint64(rhtm.NilAddr) {
		a := rhtm.Addr(n)
		if tx.Load(a+htKey) == key {
			return tx.Load(a + htValue), true
		}
		n = tx.Load(a + htNext)
	}
	return 0, false
}

// Insert adds key→value at the chain head, returning false (and updating in
// place) if the key exists. See RBTree.Insert for the allocation-on-retry
// note.
func (h *HashTable) Insert(tx rhtm.Tx, key, value uint64) bool {
	if key == 0 {
		panic("containers: HashTable key 0 is reserved")
	}
	head := h.bucketOf(key)
	n := tx.Load(head)
	for m := n; m != uint64(rhtm.NilAddr); {
		a := rhtm.Addr(m)
		if tx.Load(a+htKey) == key {
			tx.Store(a+htValue, value)
			return false
		}
		m = tx.Load(a + htNext)
	}
	node := h.sys.MustAlloc(HTNodeWords)
	tx.Store(node+htKey, key)
	tx.Store(node+htValue, value)
	tx.Store(node+htNext, n)
	tx.Store(head, uint64(node))
	return true
}

// Remove unlinks key, returning false if absent. The node is not returned
// to the heap (see RBTree.Delete).
func (h *HashTable) Remove(tx rhtm.Tx, key uint64) bool {
	prev := h.bucketOf(key)
	n := tx.Load(prev)
	for n != uint64(rhtm.NilAddr) {
		a := rhtm.Addr(n)
		if tx.Load(a+htKey) == key {
			tx.Store(prev, tx.Load(a+htNext))
			return true
		}
		prev = a + htNext
		n = tx.Load(prev)
	}
	return false
}

// Len counts all entries with raw access (setup/verification only).
func (h *HashTable) Len() int {
	tx := SetupTx(h.sys)
	total := 0
	for b := uint64(0); b < h.nbkt; b++ {
		n := tx.Load(h.buckets + rhtm.Addr(b))
		for n != uint64(rhtm.NilAddr) {
			total++
			n = tx.Load(rhtm.Addr(n) + htNext)
		}
	}
	return total
}
