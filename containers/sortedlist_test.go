package containers

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"rhtm"
)

func TestSortedListInsertOrder(t *testing.T) {
	s := newSys(1 << 14)
	l := NewSortedList(s)
	l.Populate([]uint64{5, 1, 9, 3, 7})
	got := l.Keys()
	want := []uint64{1, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestSortedListOracle(t *testing.T) {
	s := newSys(1 << 18)
	l := NewSortedList(s)
	tx := SetupTx(s)
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(11))
	for op := 0; op < 2000; op++ {
		key := uint64(rng.Intn(100) + 1)
		switch rng.Intn(3) {
		case 0:
			val := rng.Uint64()
			fresh := l.Insert(tx, key, val)
			if _, existed := oracle[key]; fresh == existed {
				t.Fatalf("op %d: Insert(%d) fresh=%v contradicts oracle", op, key, fresh)
			}
			oracle[key] = val
		case 1:
			removed := l.Remove(tx, key)
			if _, existed := oracle[key]; removed != existed {
				t.Fatalf("op %d: Remove(%d)=%v contradicts oracle", op, key, removed)
			}
			delete(oracle, key)
		default:
			v, ok := l.Get(tx, key)
			w, okO := oracle[key]
			if ok != okO || (ok && v != w) {
				t.Fatalf("op %d: Get(%d)=%d,%v want %d,%v", op, key, v, ok, w, okO)
			}
		}
	}
	keys := l.Keys()
	if len(keys) != len(oracle) {
		t.Fatalf("list size %d, oracle %d", len(keys), len(oracle))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("list not sorted: %v", keys)
	}
}

func TestSortedListConstOps(t *testing.T) {
	s := newSys(1 << 14)
	l := NewSortedList(s)
	l.Populate([]uint64{2, 4, 6})
	tx := SetupTx(s)
	if !l.ConstSearch(tx, 4) || l.ConstSearch(tx, 5) {
		t.Fatal("ConstSearch wrong")
	}
	if !l.ConstUpdate(tx, 6, 9) || l.ConstUpdate(tx, 3, 9) {
		t.Fatal("ConstUpdate wrong")
	}
	got := l.Keys()
	if len(got) != 3 {
		t.Fatalf("Const ops changed list: %v", got)
	}
}

func TestSortedListZeroKeyPanics(t *testing.T) {
	s := newSys(1 << 12)
	l := NewSortedList(s)
	defer func() {
		if recover() == nil {
			t.Fatal("Insert(0) did not panic")
		}
	}()
	l.Insert(SetupTx(s), 0, 0)
}

func TestSortedListConcurrentSharedPrefix(t *testing.T) {
	// Every scan walks the same prefix — the paper's high-contention case.
	s := newSys(1 << 18)
	l := NewSortedList(s)
	keys := make([]uint64, 0, 100)
	for i := 1; i <= 100; i++ {
		keys = append(keys, uint64(i))
	}
	l.Populate(keys)
	eng := rhtm.NewRH1(s, rhtm.DefaultRH1Options())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		th := eng.NewThread()
		rng := rand.New(rand.NewSource(int64(w + 5)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := uint64(rng.Intn(100) + 1)
				err := th.Atomic(func(tx rhtm.Tx) error {
					if rng.Intn(20) == 0 {
						l.ConstUpdate(tx, key, rng.Uint64())
					} else {
						l.ConstSearch(tx, key)
					}
					return nil
				})
				if err != nil {
					t.Errorf("op: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(l.Keys()); got != 100 {
		t.Fatalf("list size changed to %d", got)
	}
}
