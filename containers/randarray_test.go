package containers

import (
	"math/rand"
	"sync"
	"testing"

	"rhtm"
)

func TestRandomArrayOpLengthAndWrites(t *testing.T) {
	s := newSys(1 << 16)
	arr := NewRandomArray(s, 1024)
	arr.Fill(7)
	tx := SetupTx(s)
	rng := rand.New(rand.NewSource(2))

	// 0% writes: memory unchanged, XOR of an even number of 7s is 0,
	// odd number is 7.
	acc := arr.Op(tx, rng, 40, 0)
	if acc != 0 && acc != 7 {
		t.Fatalf("read-only Op acc = %d, want 0 or 7", acc)
	}
	for i := 0; i < arr.Size(); i++ {
		if s.Peek(arr.At(i)) != 7 {
			t.Fatal("read-only Op modified the array")
		}
	}

	// 100% writes: some cells must change.
	arr.Op(tx, rng, 40, 100)
	changed := 0
	for i := 0; i < arr.Size(); i++ {
		if s.Peek(arr.At(i)) != 7 {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("write-only Op changed nothing")
	}
	if changed > 40 {
		t.Fatalf("write-only Op of length 40 changed %d cells", changed)
	}
}

func TestRandomArrayBoundsPanic(t *testing.T) {
	s := newSys(1 << 12)
	arr := NewRandomArray(s, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("At(16) did not panic")
		}
	}()
	arr.At(16)
}

func TestRandomArraySizeValidation(t *testing.T) {
	s := newSys(1 << 12)
	defer func() {
		if recover() == nil {
			t.Fatal("NewRandomArray(0) did not panic")
		}
	}()
	NewRandomArray(s, 0)
}

func TestRandomArrayConcurrentTransactions(t *testing.T) {
	s := newSys(1 << 16)
	arr := NewRandomArray(s, 512)
	eng := rhtm.NewRH1(s, rhtm.DefaultRH1Options())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		th := eng.NewThread()
		rng := rand.New(rand.NewSource(int64(w + 31)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				err := th.Atomic(func(tx rhtm.Tx) error {
					arr.Op(tx, rng, 20, 50)
					return nil
				})
				if err != nil {
					t.Errorf("op: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if eng.Snapshot().Commits() != 4*60 {
		t.Fatalf("commits = %d, want %d", eng.Snapshot().Commits(), 4*60)
	}
}
