package containers

import (
	"fmt"
	"math/rand"

	"rhtm"
)

// Red-black tree node layout, in words. The ten dummy words reproduce the
// paper's Constant Red-Black Tree (§3.1): rb-lookup makes ten dummy shared
// reads per visited node and rb-update writes dummy values, so transactions
// pay realistic cache-coherence costs without mutating the structure.
const (
	rbKey    = 0
	rbLeft   = 1
	rbRight  = 2
	rbParent = 3
	rbColor  = 4 // 0 = red, 1 = black
	rbValue  = 5
	rbDummy0 = 6
	// RBNodeWords is the allocation size of one tree node.
	RBNodeWords = 16
)

const rbDummyWords = RBNodeWords - rbDummy0

const (
	red   = 0
	black = 1
)

// RBTree is a transactional red-black tree keyed by uint64. The zero key is
// reserved (it marks "no key" in internal scans); Insert rejects it.
type RBTree struct {
	sys  *rhtm.System
	root rhtm.Addr // one-word cell holding the root node address
}

// NewRBTree allocates an empty tree on s.
func NewRBTree(s *rhtm.System) *RBTree {
	return &RBTree{sys: s, root: s.MustAlloc(1)}
}

// Populate inserts the given keys (value = key) non-transactionally. Call
// only during single-threaded setup.
func (t *RBTree) Populate(keys []uint64) {
	tx := SetupTx(t.sys)
	for _, k := range keys {
		t.Insert(tx, k, k)
	}
}

// --- the paper's Constant operations ---

// ConstLookup is the paper's rb-lookup(key): a standard traversal that makes
// ten dummy shared reads per node visited. Returns whether the key exists.
func (t *RBTree) ConstLookup(tx rhtm.Tx, key uint64) bool {
	n := tx.Load(t.root)
	for n != uint64(rhtm.NilAddr) {
		a := rhtm.Addr(n)
		for i := 0; i < rbDummyWords; i++ {
			_ = tx.Load(a + rbDummy0 + rhtm.Addr(i))
		}
		k := tx.Load(a + rbKey)
		switch {
		case key == k:
			return true
		case key < k:
			n = tx.Load(a + rbLeft)
		default:
			n = tx.Load(a + rbRight)
		}
	}
	return false
}

// ConstUpdate is the paper's rb-update(key, value): traverse to the node
// with the given key (or the leaf where the search ends), write the dummy
// value into the node and its two children, then climb toward the root a
// random number of levels — with diminishing probability, as rotations
// would — making the same fake triplet modifications. The structure
// (pointers, keys) is never touched. Returns whether the key was found.
func (t *RBTree) ConstUpdate(tx rhtm.Tx, key, value uint64, rng *rand.Rand) bool {
	n := tx.Load(t.root)
	var found bool
	var last uint64
	for n != uint64(rhtm.NilAddr) {
		last = n
		k := tx.Load(rhtm.Addr(n) + rbKey)
		if key == k {
			found = true
			break
		}
		if key < k {
			n = tx.Load(rhtm.Addr(n) + rbLeft)
		} else {
			n = tx.Load(rhtm.Addr(n) + rbRight)
		}
	}
	if last == uint64(rhtm.NilAddr) {
		return false
	}
	// Fake modification of the found node and its children, then climb.
	cur := last
	for {
		t.touchTriplet(tx, rhtm.Addr(cur), value)
		parent := tx.Load(rhtm.Addr(cur) + rbParent)
		if parent == uint64(rhtm.NilAddr) || rng.Intn(2) == 0 {
			break
		}
		cur = parent
	}
	return found
}

// touchTriplet writes the dummy value into a node and its present children,
// mimicking the write footprint of a rotation around the node.
func (t *RBTree) touchTriplet(tx rhtm.Tx, n rhtm.Addr, value uint64) {
	tx.Store(n+rbDummy0, value)
	if l := tx.Load(n + rbLeft); l != uint64(rhtm.NilAddr) {
		tx.Store(rhtm.Addr(l)+rbDummy0, value)
	}
	if r := tx.Load(n + rbRight); r != uint64(rhtm.NilAddr) {
		tx.Store(rhtm.Addr(r)+rbDummy0, value)
	}
}

// --- real operations ---

// Lookup returns the value stored under key.
func (t *RBTree) Lookup(tx rhtm.Tx, key uint64) (uint64, bool) {
	n := tx.Load(t.root)
	for n != uint64(rhtm.NilAddr) {
		a := rhtm.Addr(n)
		k := tx.Load(a + rbKey)
		switch {
		case key == k:
			return tx.Load(a + rbValue), true
		case key < k:
			n = tx.Load(a + rbLeft)
		default:
			n = tx.Load(a + rbRight)
		}
	}
	return 0, false
}

// Insert adds key→value, returning false if the key already exists (the
// value is then updated in place). The new node is allocated from the
// system heap before any transactional store; if the enclosing transaction
// retries, the allocation is reused only by chance, so a long abort storm
// can leak heap words — an accepted simulator trade-off, documented here.
func (t *RBTree) Insert(tx rhtm.Tx, key, value uint64) bool {
	if key == 0 {
		panic("containers: RBTree key 0 is reserved")
	}
	var parent uint64
	n := tx.Load(t.root)
	for n != uint64(rhtm.NilAddr) {
		parent = n
		k := tx.Load(rhtm.Addr(n) + rbKey)
		switch {
		case key == k:
			tx.Store(rhtm.Addr(n)+rbValue, value)
			return false
		case key < k:
			n = tx.Load(rhtm.Addr(n) + rbLeft)
		default:
			n = tx.Load(rhtm.Addr(n) + rbRight)
		}
	}
	node := t.sys.MustAlloc(RBNodeWords)
	tx.Store(node+rbKey, key)
	tx.Store(node+rbValue, value)
	tx.Store(node+rbParent, parent)
	tx.Store(node+rbColor, red)
	if parent == uint64(rhtm.NilAddr) {
		tx.Store(t.root, uint64(node))
	} else if key < tx.Load(rhtm.Addr(parent)+rbKey) {
		tx.Store(rhtm.Addr(parent)+rbLeft, uint64(node))
	} else {
		tx.Store(rhtm.Addr(parent)+rbRight, uint64(node))
	}
	t.insertFixup(tx, uint64(node))
	return true
}

// rotateLeft performs a left rotation around x.
func (t *RBTree) rotateLeft(tx rhtm.Tx, x uint64) {
	xa := rhtm.Addr(x)
	y := tx.Load(xa + rbRight)
	ya := rhtm.Addr(y)
	yl := tx.Load(ya + rbLeft)
	tx.Store(xa+rbRight, yl)
	if yl != uint64(rhtm.NilAddr) {
		tx.Store(rhtm.Addr(yl)+rbParent, x)
	}
	p := tx.Load(xa + rbParent)
	tx.Store(ya+rbParent, p)
	if p == uint64(rhtm.NilAddr) {
		tx.Store(t.root, y)
	} else if tx.Load(rhtm.Addr(p)+rbLeft) == x {
		tx.Store(rhtm.Addr(p)+rbLeft, y)
	} else {
		tx.Store(rhtm.Addr(p)+rbRight, y)
	}
	tx.Store(ya+rbLeft, x)
	tx.Store(xa+rbParent, y)
}

// rotateRight performs a right rotation around x.
func (t *RBTree) rotateRight(tx rhtm.Tx, x uint64) {
	xa := rhtm.Addr(x)
	y := tx.Load(xa + rbLeft)
	ya := rhtm.Addr(y)
	yr := tx.Load(ya + rbRight)
	tx.Store(xa+rbLeft, yr)
	if yr != uint64(rhtm.NilAddr) {
		tx.Store(rhtm.Addr(yr)+rbParent, x)
	}
	p := tx.Load(xa + rbParent)
	tx.Store(ya+rbParent, p)
	if p == uint64(rhtm.NilAddr) {
		tx.Store(t.root, y)
	} else if tx.Load(rhtm.Addr(p)+rbLeft) == x {
		tx.Store(rhtm.Addr(p)+rbLeft, y)
	} else {
		tx.Store(rhtm.Addr(p)+rbRight, y)
	}
	tx.Store(ya+rbRight, x)
	tx.Store(xa+rbParent, y)
}

// insertFixup restores the red-black invariants after inserting z (CLRS).
func (t *RBTree) insertFixup(tx rhtm.Tx, z uint64) {
	for {
		p := tx.Load(rhtm.Addr(z) + rbParent)
		if p == uint64(rhtm.NilAddr) || tx.Load(rhtm.Addr(p)+rbColor) == black {
			break
		}
		g := tx.Load(rhtm.Addr(p) + rbParent) // grandparent exists: p is red, root is black
		ga := rhtm.Addr(g)
		if p == tx.Load(ga+rbLeft) {
			u := tx.Load(ga + rbRight)
			if u != uint64(rhtm.NilAddr) && tx.Load(rhtm.Addr(u)+rbColor) == red {
				tx.Store(rhtm.Addr(p)+rbColor, black)
				tx.Store(rhtm.Addr(u)+rbColor, black)
				tx.Store(ga+rbColor, red)
				z = g
				continue
			}
			if z == tx.Load(rhtm.Addr(p)+rbRight) {
				z = p
				t.rotateLeft(tx, z)
				p = tx.Load(rhtm.Addr(z) + rbParent)
			}
			tx.Store(rhtm.Addr(p)+rbColor, black)
			tx.Store(ga+rbColor, red)
			t.rotateRight(tx, g)
		} else {
			u := tx.Load(ga + rbLeft)
			if u != uint64(rhtm.NilAddr) && tx.Load(rhtm.Addr(u)+rbColor) == red {
				tx.Store(rhtm.Addr(p)+rbColor, black)
				tx.Store(rhtm.Addr(u)+rbColor, black)
				tx.Store(ga+rbColor, red)
				z = g
				continue
			}
			if z == tx.Load(rhtm.Addr(p)+rbLeft) {
				z = p
				t.rotateRight(tx, z)
				p = tx.Load(rhtm.Addr(z) + rbParent)
			}
			tx.Store(rhtm.Addr(p)+rbColor, black)
			tx.Store(ga+rbColor, red)
			t.rotateLeft(tx, g)
		}
	}
	r := tx.Load(t.root)
	tx.Store(rhtm.Addr(r)+rbColor, black)
}

// Delete removes key, returning false if it was absent. The unlinked node's
// words are intentionally not returned to the heap: a free inside a
// transaction that later aborts would hand the block to another thread while
// it is still reachable. A transactional reclamation scheme (e.g. epoch
// deferral keyed on commit) is out of scope for the reproduction.
func (t *RBTree) Delete(tx rhtm.Tx, key uint64) bool {
	z := tx.Load(t.root)
	for z != uint64(rhtm.NilAddr) {
		k := tx.Load(rhtm.Addr(z) + rbKey)
		if key == k {
			break
		}
		if key < k {
			z = tx.Load(rhtm.Addr(z) + rbLeft)
		} else {
			z = tx.Load(rhtm.Addr(z) + rbRight)
		}
	}
	if z == uint64(rhtm.NilAddr) {
		return false
	}
	za := rhtm.Addr(z)

	// y is the node actually unlinked; x is the child that replaces it,
	// xp its (new) parent. x may be nil, so xp is tracked explicitly.
	y := z
	if tx.Load(za+rbLeft) != uint64(rhtm.NilAddr) &&
		tx.Load(za+rbRight) != uint64(rhtm.NilAddr) {
		// Successor: minimum of the right subtree.
		y = tx.Load(za + rbRight)
		for l := tx.Load(rhtm.Addr(y) + rbLeft); l != uint64(rhtm.NilAddr); l = tx.Load(rhtm.Addr(y) + rbLeft) {
			y = l
		}
	}
	ya := rhtm.Addr(y)
	x := tx.Load(ya + rbLeft)
	if x == uint64(rhtm.NilAddr) {
		x = tx.Load(ya + rbRight)
	}
	xp := tx.Load(ya + rbParent)
	if x != uint64(rhtm.NilAddr) {
		tx.Store(rhtm.Addr(x)+rbParent, xp)
	}
	if xp == uint64(rhtm.NilAddr) {
		tx.Store(t.root, x)
	} else if tx.Load(rhtm.Addr(xp)+rbLeft) == y {
		tx.Store(rhtm.Addr(xp)+rbLeft, x)
	} else {
		tx.Store(rhtm.Addr(xp)+rbRight, x)
	}
	if y != z {
		// Move the successor's payload into z; the structure keeps z. When
		// y was z's direct child, xp is already z, which is exactly x's new
		// parent — no adjustment needed.
		tx.Store(za+rbKey, tx.Load(ya+rbKey))
		tx.Store(za+rbValue, tx.Load(ya+rbValue))
	}
	if tx.Load(ya+rbColor) == black {
		t.deleteFixup(tx, x, xp)
	}
	return true
}

// deleteFixup restores the invariants after unlinking a black node; x (which
// may be nil) carries an extra black, xp is its parent.
func (t *RBTree) deleteFixup(tx rhtm.Tx, x, xp uint64) {
	for x != tx.Load(t.root) && t.colorOf(tx, x) == black {
		if xp == uint64(rhtm.NilAddr) {
			break
		}
		xpa := rhtm.Addr(xp)
		if x == tx.Load(xpa+rbLeft) {
			w := tx.Load(xpa + rbRight)
			if t.colorOf(tx, w) == red {
				tx.Store(rhtm.Addr(w)+rbColor, black)
				tx.Store(xpa+rbColor, red)
				t.rotateLeft(tx, xp)
				w = tx.Load(xpa + rbRight)
			}
			wl := tx.Load(rhtm.Addr(w) + rbLeft)
			wr := tx.Load(rhtm.Addr(w) + rbRight)
			if t.colorOf(tx, wl) == black && t.colorOf(tx, wr) == black {
				tx.Store(rhtm.Addr(w)+rbColor, red)
				x = xp
				xp = tx.Load(rhtm.Addr(x) + rbParent)
				continue
			}
			if t.colorOf(tx, wr) == black {
				if wl != uint64(rhtm.NilAddr) {
					tx.Store(rhtm.Addr(wl)+rbColor, black)
				}
				tx.Store(rhtm.Addr(w)+rbColor, red)
				t.rotateRight(tx, w)
				w = tx.Load(xpa + rbRight)
				wr = tx.Load(rhtm.Addr(w) + rbRight)
			}
			tx.Store(rhtm.Addr(w)+rbColor, tx.Load(xpa+rbColor))
			tx.Store(xpa+rbColor, black)
			if wr != uint64(rhtm.NilAddr) {
				tx.Store(rhtm.Addr(wr)+rbColor, black)
			}
			t.rotateLeft(tx, xp)
			x = tx.Load(t.root)
			break
		}
		// Mirror image.
		w := tx.Load(xpa + rbLeft)
		if t.colorOf(tx, w) == red {
			tx.Store(rhtm.Addr(w)+rbColor, black)
			tx.Store(xpa+rbColor, red)
			t.rotateRight(tx, xp)
			w = tx.Load(xpa + rbLeft)
		}
		wl := tx.Load(rhtm.Addr(w) + rbLeft)
		wr := tx.Load(rhtm.Addr(w) + rbRight)
		if t.colorOf(tx, wl) == black && t.colorOf(tx, wr) == black {
			tx.Store(rhtm.Addr(w)+rbColor, red)
			x = xp
			xp = tx.Load(rhtm.Addr(x) + rbParent)
			continue
		}
		if t.colorOf(tx, wl) == black {
			if wr != uint64(rhtm.NilAddr) {
				tx.Store(rhtm.Addr(wr)+rbColor, black)
			}
			tx.Store(rhtm.Addr(w)+rbColor, red)
			t.rotateLeft(tx, w)
			w = tx.Load(xpa + rbLeft)
			wl = tx.Load(rhtm.Addr(w) + rbLeft)
		}
		tx.Store(rhtm.Addr(w)+rbColor, tx.Load(xpa+rbColor))
		tx.Store(xpa+rbColor, black)
		if wl != uint64(rhtm.NilAddr) {
			tx.Store(rhtm.Addr(wl)+rbColor, black)
		}
		t.rotateRight(tx, xp)
		x = tx.Load(t.root)
		break
	}
	if x != uint64(rhtm.NilAddr) {
		tx.Store(rhtm.Addr(x)+rbColor, black)
	}
}

// colorOf treats nil as black, per the red-black convention.
func (t *RBTree) colorOf(tx rhtm.Tx, n uint64) uint64 {
	if n == uint64(rhtm.NilAddr) {
		return black
	}
	return tx.Load(rhtm.Addr(n) + rbColor)
}

// --- validation (setup/verification contexts only) ---

// Validate checks the red-black invariants and BST ordering over the whole
// tree using raw memory access. Only call while no transactions are in
// flight. It returns a descriptive error on the first violation.
func (t *RBTree) Validate() error {
	tx := SetupTx(t.sys)
	root := tx.Load(t.root)
	if root == uint64(rhtm.NilAddr) {
		return nil
	}
	if tx.Load(rhtm.Addr(root)+rbColor) != black {
		return fmt.Errorf("rbtree: root is red")
	}
	_, err := t.validateNode(tx, root, 0, ^uint64(0))
	return err
}

// validateNode checks the subtree at n against (lo, hi) key bounds and
// returns its black height.
func (t *RBTree) validateNode(tx rhtm.Tx, n uint64, lo, hi uint64) (int, error) {
	if n == uint64(rhtm.NilAddr) {
		return 1, nil
	}
	a := rhtm.Addr(n)
	k := tx.Load(a + rbKey)
	if k <= lo || k >= hi {
		return 0, fmt.Errorf("rbtree: key %d violates BST bounds (%d,%d)", k, lo, hi)
	}
	c := tx.Load(a + rbColor)
	l, r := tx.Load(a+rbLeft), tx.Load(a+rbRight)
	if c == red {
		if t.colorOf(tx, l) == red || t.colorOf(tx, r) == red {
			return 0, fmt.Errorf("rbtree: red node %d has a red child", k)
		}
	}
	for _, child := range []uint64{l, r} {
		if child != uint64(rhtm.NilAddr) && tx.Load(rhtm.Addr(child)+rbParent) != n {
			return 0, fmt.Errorf("rbtree: node %d child has wrong parent pointer", k)
		}
	}
	lh, err := t.validateNode(tx, l, lo, k)
	if err != nil {
		return 0, err
	}
	rh, err := t.validateNode(tx, r, k, hi)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("rbtree: black-height mismatch at key %d: %d vs %d", k, lh, rh)
	}
	if c == black {
		lh++
	}
	return lh, nil
}

// Keys returns all keys in order using raw access (setup/verification only).
func (t *RBTree) Keys() []uint64 {
	tx := SetupTx(t.sys)
	var out []uint64
	var walk func(n uint64)
	walk = func(n uint64) {
		if n == uint64(rhtm.NilAddr) {
			return
		}
		walk(tx.Load(rhtm.Addr(n) + rbLeft))
		out = append(out, tx.Load(rhtm.Addr(n)+rbKey))
		walk(tx.Load(rhtm.Addr(n) + rbRight))
	}
	walk(tx.Load(t.root))
	return out
}
