package containers

import (
	"math/rand"
	"sync"
	"testing"

	"rhtm"
)

func TestHashTableOracle(t *testing.T) {
	s := newSys(1 << 18)
	ht := NewHashTable(s, 64)
	tx := SetupTx(s)
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(9))
	for op := 0; op < 3000; op++ {
		key := uint64(rng.Intn(200) + 1)
		switch rng.Intn(3) {
		case 0:
			val := rng.Uint64()
			fresh := ht.Insert(tx, key, val)
			if _, existed := oracle[key]; fresh == existed {
				t.Fatalf("op %d: Insert(%d) fresh=%v contradicts oracle", op, key, fresh)
			}
			oracle[key] = val
		case 1:
			removed := ht.Remove(tx, key)
			if _, existed := oracle[key]; removed != existed {
				t.Fatalf("op %d: Remove(%d)=%v contradicts oracle", op, key, removed)
			}
			delete(oracle, key)
		default:
			v, ok := ht.Get(tx, key)
			w, okO := oracle[key]
			if ok != okO || (ok && v != w) {
				t.Fatalf("op %d: Get(%d)=%d,%v want %d,%v", op, key, v, ok, w, okO)
			}
		}
	}
	if ht.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", ht.Len(), len(oracle))
	}
}

func TestHashTableConstOps(t *testing.T) {
	s := newSys(1 << 16)
	ht := NewHashTable(s, 16)
	ht.Populate([]uint64{1, 2, 3, 4, 5})
	tx := SetupTx(s)
	for _, k := range []uint64{1, 3, 5} {
		if !ht.ConstQuery(tx, k) {
			t.Fatalf("ConstQuery(%d) = false", k)
		}
		if !ht.ConstUpdate(tx, k, 99) {
			t.Fatalf("ConstUpdate(%d) = false", k)
		}
	}
	if ht.ConstQuery(tx, 77) {
		t.Fatal("ConstQuery(77) = true for absent key")
	}
	if ht.ConstUpdate(tx, 77, 1) {
		t.Fatal("ConstUpdate(77) = true for absent key")
	}
	if ht.Len() != 5 {
		t.Fatalf("Const ops changed size to %d", ht.Len())
	}
}

func TestHashTableChaining(t *testing.T) {
	// A single bucket forces every key into one chain; all operations must
	// still behave.
	s := newSys(1 << 14)
	ht := NewHashTable(s, 1)
	tx := SetupTx(s)
	for k := uint64(1); k <= 20; k++ {
		if !ht.Insert(tx, k, k*2) {
			t.Fatalf("Insert(%d) reported duplicate", k)
		}
	}
	for k := uint64(1); k <= 20; k++ {
		v, ok := ht.Get(tx, k)
		if !ok || v != k*2 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	// Remove from middle, head, and tail of the chain.
	for _, k := range []uint64{10, 20, 1} {
		if !ht.Remove(tx, k) {
			t.Fatalf("Remove(%d) = false", k)
		}
	}
	if ht.Len() != 17 {
		t.Fatalf("Len = %d, want 17", ht.Len())
	}
}

func TestHashTableZeroBucketsPanics(t *testing.T) {
	s := newSys(1 << 12)
	defer func() {
		if recover() == nil {
			t.Fatal("NewHashTable(0) did not panic")
		}
	}()
	NewHashTable(s, 0)
}

func TestHashTableConcurrent(t *testing.T) {
	s := newSys(1 << 20)
	ht := NewHashTable(s, 256)
	keys := make([]uint64, 0, 512)
	for i := 1; i <= 512; i++ {
		keys = append(keys, uint64(i))
	}
	ht.Populate(keys)
	eng := rhtm.NewRH1(s, rhtm.DefaultRH1Options())
	const workers, ops = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := eng.NewThread()
		rng := rand.New(rand.NewSource(int64(w + 1)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := uint64(rng.Intn(512) + 1)
				err := th.Atomic(func(tx rhtm.Tx) error {
					if rng.Intn(5) == 0 {
						ht.ConstUpdate(tx, key, rng.Uint64())
					} else {
						ht.ConstQuery(tx, key)
					}
					return nil
				})
				if err != nil {
					t.Errorf("op: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ht.Len() != 512 {
		t.Fatalf("constant workload changed table size: %d", ht.Len())
	}
}
