package containers

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"rhtm"
)

func newSys(words int) *rhtm.System {
	return rhtm.MustNewSystem(rhtm.DefaultConfig(words))
}

func TestRBTreePopulateAndValidate(t *testing.T) {
	s := newSys(1 << 18)
	tree := NewRBTree(s)
	keys := make([]uint64, 0, 1000)
	for i := 1; i <= 1000; i++ {
		keys = append(keys, uint64(i*7))
	}
	rand.New(rand.NewSource(1)).Shuffle(len(keys), func(i, j int) {
		keys[i], keys[j] = keys[j], keys[i]
	})
	tree.Populate(keys)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	got := tree.Keys()
	if len(got) != len(keys) {
		t.Fatalf("tree has %d keys, want %d", len(got), len(keys))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("in-order traversal not sorted")
	}
}

func TestRBTreeInsertDeleteOracle(t *testing.T) {
	s := newSys(1 << 20)
	tree := NewRBTree(s)
	tx := SetupTx(s)
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(42))
	for op := 0; op < 4000; op++ {
		key := uint64(rng.Intn(300) + 1)
		switch rng.Intn(3) {
		case 0:
			val := rng.Uint64()
			fresh := tree.Insert(tx, key, val)
			_, existed := oracle[key]
			if fresh == existed {
				t.Fatalf("op %d: Insert(%d) fresh=%v, oracle existed=%v", op, key, fresh, existed)
			}
			oracle[key] = val
		case 1:
			removed := tree.Delete(tx, key)
			_, existed := oracle[key]
			if removed != existed {
				t.Fatalf("op %d: Delete(%d) = %v, oracle existed=%v", op, key, removed, existed)
			}
			delete(oracle, key)
		default:
			v, okT := tree.Lookup(tx, key)
			w, okO := oracle[key]
			if okT != okO || (okT && v != w) {
				t.Fatalf("op %d: Lookup(%d) = %d,%v, oracle %d,%v", op, key, v, okT, w, okO)
			}
		}
		if op%500 == 0 {
			if err := tree.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tree.Keys()); got != len(oracle) {
		t.Fatalf("tree size %d, oracle %d", got, len(oracle))
	}
}

func TestRBTreeConstOpsDoNotChangeStructure(t *testing.T) {
	s := newSys(1 << 16)
	tree := NewRBTree(s)
	keys := []uint64{5, 2, 8, 1, 3, 7, 9, 4, 6}
	tree.Populate(keys)
	before := tree.Keys()
	tx := SetupTx(s)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		k := uint64(rng.Intn(12) + 1)
		tree.ConstLookup(tx, k)
		tree.ConstUpdate(tx, k, rng.Uint64(), rng)
	}
	after := tree.Keys()
	if len(before) != len(after) {
		t.Fatalf("Const ops changed tree size: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Const ops changed tree keys")
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeConstLookupFindsExactly(t *testing.T) {
	s := newSys(1 << 14)
	tree := NewRBTree(s)
	tree.Populate([]uint64{10, 20, 30})
	tx := SetupTx(s)
	rng := rand.New(rand.NewSource(3))
	for _, k := range []uint64{10, 20, 30} {
		if !tree.ConstLookup(tx, k) {
			t.Fatalf("ConstLookup(%d) = false, want true", k)
		}
		if !tree.ConstUpdate(tx, k, 1, rng) {
			t.Fatalf("ConstUpdate(%d) = false, want true", k)
		}
	}
	if tree.ConstLookup(tx, 15) {
		t.Fatal("ConstLookup(15) = true, want false")
	}
	if tree.ConstUpdate(tx, 15, 1, rng) {
		t.Fatal("ConstUpdate(15) = true for absent key")
	}
}

func TestRBTreeZeroKeyPanics(t *testing.T) {
	s := newSys(1 << 12)
	tree := NewRBTree(s)
	defer func() {
		if recover() == nil {
			t.Fatal("Insert(0) did not panic")
		}
	}()
	tree.Insert(SetupTx(s), 0, 0)
}

func TestRBTreeConcurrentMixedOps(t *testing.T) {
	s := newSys(1 << 20)
	tree := NewRBTree(s)
	seed := make([]uint64, 0, 128)
	for i := 1; i <= 128; i++ {
		seed = append(seed, uint64(i*10))
	}
	tree.Populate(seed)
	eng := rhtm.NewRH1(s, rhtm.DefaultRH1Options())
	const workers, ops = 4, 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := eng.NewThread()
		rng := rand.New(rand.NewSource(int64(w + 100)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := uint64(rng.Intn(1500) + 1)
				var err error
				switch rng.Intn(4) {
				case 0:
					err = th.Atomic(func(tx rhtm.Tx) error {
						tree.Insert(tx, key, key)
						return nil
					})
				case 1:
					err = th.Atomic(func(tx rhtm.Tx) error {
						tree.Delete(tx, key)
						return nil
					})
				default:
					err = th.Atomic(func(tx rhtm.Tx) error {
						tree.Lookup(tx, key)
						return nil
					})
				}
				if err != nil {
					t.Errorf("op: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := tree.Validate(); err != nil {
		t.Fatalf("tree invalid after concurrent ops: %v", err)
	}
}

func TestRBTreeConcurrentConstWorkload(t *testing.T) {
	// The paper's workload: lookups and constant updates over a fixed tree,
	// concurrently, under every headline engine. The structure must be
	// byte-identical afterwards except dummy fields.
	s := newSys(1 << 20)
	tree := NewRBTree(s)
	keys := make([]uint64, 0, 512)
	for i := 1; i <= 512; i++ {
		keys = append(keys, uint64(i))
	}
	tree.Populate(keys)
	before := tree.Keys()
	engines := []rhtm.Engine{
		rhtm.NewRH1(s, rhtm.DefaultRH1Options()),
		rhtm.NewTL2(s),
	}
	for _, eng := range engines {
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			th := eng.NewThread()
			rng := rand.New(rand.NewSource(int64(w)))
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 80; i++ {
					key := uint64(rng.Intn(512) + 1)
					err := th.Atomic(func(tx rhtm.Tx) error {
						if i%5 == 0 {
							tree.ConstUpdate(tx, key, rng.Uint64(), rng)
						} else {
							tree.ConstLookup(tx, key)
						}
						return nil
					})
					if err != nil {
						t.Errorf("%s: %v", eng.Name(), err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	after := tree.Keys()
	if len(before) != len(after) {
		t.Fatal("constant workload changed the tree")
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}
