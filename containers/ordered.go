package containers

import (
	"fmt"

	"rhtm"
)

// Allocator abstracts block allocation for structures whose nodes are
// created and destroyed inside transactions. TxAlloc and TxFree run under
// the caller's transaction: an implementation that keeps its free-list state
// in simulated words (store.Arena) makes allocation and reclamation roll
// back with the enclosing transaction, so aborted inserts leak nothing and
// aborted deletes never hand a still-reachable block to another thread.
type Allocator interface {
	// TxAlloc returns a block of at least words simulated words. The block's
	// contents are unspecified (it may be recycled); callers must initialize
	// every word they read back. A non-nil error means the arena is
	// exhausted; returning it from the transaction body aborts cleanly.
	TxAlloc(tx rhtm.Tx, words int) (rhtm.Addr, error)
	// TxFree returns a block of the given size to the allocator.
	TxFree(tx rhtm.Tx, a rhtm.Addr, words int)
}

// heapAllocator adapts the system heap: allocation bypasses the transaction
// (an abort storm can leak blocks, as documented on RBTree.Insert) and
// freed blocks are intentionally leaked (freeing inside a transaction that
// later aborts would hand the block to another thread while still
// reachable).
type heapAllocator struct{ s *rhtm.System }

// TxAlloc implements Allocator over the non-transactional system heap.
func (h heapAllocator) TxAlloc(tx rhtm.Tx, words int) (rhtm.Addr, error) {
	return h.s.Alloc(words)
}

// TxFree implements Allocator; see the type comment for why it is a no-op.
func (h heapAllocator) TxFree(tx rhtm.Tx, a rhtm.Addr, words int) {}

// HeapAllocator returns the default Allocator over the system heap.
func HeapAllocator(s *rhtm.System) Allocator { return heapAllocator{s: s} }

// ItemCompare orders an external probe key against a stored item. It
// returns <0, 0 or >0 as key sorts before, equal to, or after the item's
// key. All tree operations are probe-driven, so the tree never compares two
// stored items directly and the item encoding stays opaque to it (the store
// uses addresses of varlen key blocks).
type ItemCompare func(tx rhtm.Tx, key []byte, item uint64) int

// OrderedTree node layout, in words.
const (
	otItem   = 0
	otLeft   = 1
	otRight  = 2
	otParent = 3
	otColor  = 4
	// OTNodeWords is the allocation size of one tree node.
	OTNodeWords = 5
)

// OrderedTree is a transactional red-black tree over opaque uint64 items,
// ordered by a caller-supplied comparator. Unlike RBTree (the paper's
// fixed-layout uint64-keyed benchmark tree), OrderedTree supports
// variable-length keys held in simulated memory: the comparator loads and
// compares them under the caller's transaction. It is the index layer of
// the store package.
type OrderedTree struct {
	sys   *rhtm.System
	cmp   ItemCompare
	alloc Allocator
	root  rhtm.Addr // one-word cell holding the root node address
}

// NewOrderedTree allocates an empty tree on s. A nil alloc selects the
// system heap (non-transactional allocation, no reclamation).
func NewOrderedTree(s *rhtm.System, cmp ItemCompare, alloc Allocator) *OrderedTree {
	if alloc == nil {
		alloc = heapAllocator{s: s}
	}
	return &OrderedTree{sys: s, cmp: cmp, alloc: alloc, root: s.MustAlloc(1)}
}

// Lookup returns the item stored under key.
func (t *OrderedTree) Lookup(tx rhtm.Tx, key []byte) (uint64, bool) {
	n := tx.Load(t.root)
	for n != uint64(rhtm.NilAddr) {
		item := tx.Load(rhtm.Addr(n) + otItem)
		c := t.cmp(tx, key, item)
		switch {
		case c == 0:
			return item, true
		case c < 0:
			n = tx.Load(rhtm.Addr(n) + otLeft)
		default:
			n = tx.Load(rhtm.Addr(n) + otRight)
		}
	}
	return 0, false
}

// Insert adds item under key. If the key is already present no insertion
// happens and the existing item is returned with inserted=false. A non-nil
// error means node allocation failed (arena exhausted).
func (t *OrderedTree) Insert(tx rhtm.Tx, key []byte, item uint64) (existing uint64, inserted bool, err error) {
	var parent uint64
	left := false
	n := tx.Load(t.root)
	for n != uint64(rhtm.NilAddr) {
		parent = n
		cur := tx.Load(rhtm.Addr(n) + otItem)
		c := t.cmp(tx, key, cur)
		switch {
		case c == 0:
			return cur, false, nil
		case c < 0:
			n = tx.Load(rhtm.Addr(n) + otLeft)
			left = true
		default:
			n = tx.Load(rhtm.Addr(n) + otRight)
			left = false
		}
	}
	node, err := t.alloc.TxAlloc(tx, OTNodeWords)
	if err != nil {
		return 0, false, err
	}
	tx.Store(node+otItem, item)
	tx.Store(node+otLeft, uint64(rhtm.NilAddr))
	tx.Store(node+otRight, uint64(rhtm.NilAddr))
	tx.Store(node+otParent, parent)
	tx.Store(node+otColor, red)
	if parent == uint64(rhtm.NilAddr) {
		tx.Store(t.root, uint64(node))
	} else if left {
		tx.Store(rhtm.Addr(parent)+otLeft, uint64(node))
	} else {
		tx.Store(rhtm.Addr(parent)+otRight, uint64(node))
	}
	t.insertFixup(tx, uint64(node))
	return item, true, nil
}

// Delete removes the entry under key and returns its item. The unlinked
// node is returned to the allocator under the same transaction, so with a
// transactional allocator deletion reclaims memory safely even under
// aborts.
func (t *OrderedTree) Delete(tx rhtm.Tx, key []byte) (uint64, bool) {
	z := tx.Load(t.root)
	for z != uint64(rhtm.NilAddr) {
		c := t.cmp(tx, key, tx.Load(rhtm.Addr(z)+otItem))
		if c == 0 {
			break
		}
		if c < 0 {
			z = tx.Load(rhtm.Addr(z) + otLeft)
		} else {
			z = tx.Load(rhtm.Addr(z) + otRight)
		}
	}
	if z == uint64(rhtm.NilAddr) {
		return 0, false
	}
	za := rhtm.Addr(z)
	removed := tx.Load(za + otItem)

	// y is the node actually unlinked; x is the child that replaces it,
	// xp its (new) parent. x may be nil, so xp is tracked explicitly.
	y := z
	if tx.Load(za+otLeft) != uint64(rhtm.NilAddr) &&
		tx.Load(za+otRight) != uint64(rhtm.NilAddr) {
		// Successor: minimum of the right subtree.
		y = tx.Load(za + otRight)
		for l := tx.Load(rhtm.Addr(y) + otLeft); l != uint64(rhtm.NilAddr); l = tx.Load(rhtm.Addr(y) + otLeft) {
			y = l
		}
	}
	ya := rhtm.Addr(y)
	x := tx.Load(ya + otLeft)
	if x == uint64(rhtm.NilAddr) {
		x = tx.Load(ya + otRight)
	}
	xp := tx.Load(ya + otParent)
	if x != uint64(rhtm.NilAddr) {
		tx.Store(rhtm.Addr(x)+otParent, xp)
	}
	if xp == uint64(rhtm.NilAddr) {
		tx.Store(t.root, x)
	} else if tx.Load(rhtm.Addr(xp)+otLeft) == y {
		tx.Store(rhtm.Addr(xp)+otLeft, x)
	} else {
		tx.Store(rhtm.Addr(xp)+otRight, x)
	}
	if y != z {
		// Move the successor's item into z; the structure keeps z.
		tx.Store(za+otItem, tx.Load(ya+otItem))
	}
	if tx.Load(ya+otColor) == black {
		t.deleteFixup(tx, x, xp)
	}
	t.alloc.TxFree(tx, ya, OTNodeWords)
	return removed, true
}

// Scan visits the items whose keys fall in [start, end) in ascending key
// order. A nil start means "from the smallest key"; a nil end means "to the
// largest". Visiting stops early when fn returns false.
func (t *OrderedTree) Scan(tx rhtm.Tx, start, end []byte, fn func(item uint64) bool) {
	t.scan(tx, tx.Load(t.root), start, end, fn)
}

// scan is the recursive range traversal; it returns false to stop.
func (t *OrderedTree) scan(tx rhtm.Tx, n uint64, start, end []byte, fn func(item uint64) bool) bool {
	if n == uint64(rhtm.NilAddr) {
		return true
	}
	a := rhtm.Addr(n)
	item := tx.Load(a + otItem)
	aboveStart := start == nil || t.cmp(tx, start, item) <= 0
	belowEnd := end == nil || t.cmp(tx, end, item) > 0
	// The left subtree holds smaller keys: it can only intersect the range
	// if this item is not already below start. Symmetrically for the right.
	if aboveStart {
		if !t.scan(tx, tx.Load(a+otLeft), start, end, fn) {
			return false
		}
	}
	if aboveStart && belowEnd {
		if !fn(item) {
			return false
		}
	}
	if belowEnd {
		return t.scan(tx, tx.Load(a+otRight), start, end, fn)
	}
	return true
}

// Len counts the entries by traversal (O(n); tests and setup only — the
// store maintains its own O(1) count word).
func (t *OrderedTree) Len(tx rhtm.Tx) int {
	count := 0
	t.Scan(tx, nil, nil, func(uint64) bool { count++; return true })
	return count
}

// --- rotations and fixups (CLRS, as in RBTree but item-only payload) ---

// rotateLeft performs a left rotation around x.
func (t *OrderedTree) rotateLeft(tx rhtm.Tx, x uint64) {
	xa := rhtm.Addr(x)
	y := tx.Load(xa + otRight)
	ya := rhtm.Addr(y)
	yl := tx.Load(ya + otLeft)
	tx.Store(xa+otRight, yl)
	if yl != uint64(rhtm.NilAddr) {
		tx.Store(rhtm.Addr(yl)+otParent, x)
	}
	p := tx.Load(xa + otParent)
	tx.Store(ya+otParent, p)
	if p == uint64(rhtm.NilAddr) {
		tx.Store(t.root, y)
	} else if tx.Load(rhtm.Addr(p)+otLeft) == x {
		tx.Store(rhtm.Addr(p)+otLeft, y)
	} else {
		tx.Store(rhtm.Addr(p)+otRight, y)
	}
	tx.Store(ya+otLeft, x)
	tx.Store(xa+otParent, y)
}

// rotateRight performs a right rotation around x.
func (t *OrderedTree) rotateRight(tx rhtm.Tx, x uint64) {
	xa := rhtm.Addr(x)
	y := tx.Load(xa + otLeft)
	ya := rhtm.Addr(y)
	yr := tx.Load(ya + otRight)
	tx.Store(xa+otLeft, yr)
	if yr != uint64(rhtm.NilAddr) {
		tx.Store(rhtm.Addr(yr)+otParent, x)
	}
	p := tx.Load(xa + otParent)
	tx.Store(ya+otParent, p)
	if p == uint64(rhtm.NilAddr) {
		tx.Store(t.root, y)
	} else if tx.Load(rhtm.Addr(p)+otLeft) == x {
		tx.Store(rhtm.Addr(p)+otLeft, y)
	} else {
		tx.Store(rhtm.Addr(p)+otRight, y)
	}
	tx.Store(ya+otRight, x)
	tx.Store(xa+otParent, y)
}

// insertFixup restores the red-black invariants after inserting z.
func (t *OrderedTree) insertFixup(tx rhtm.Tx, z uint64) {
	for {
		p := tx.Load(rhtm.Addr(z) + otParent)
		if p == uint64(rhtm.NilAddr) || tx.Load(rhtm.Addr(p)+otColor) == black {
			break
		}
		g := tx.Load(rhtm.Addr(p) + otParent) // grandparent exists: p is red, root is black
		ga := rhtm.Addr(g)
		if p == tx.Load(ga+otLeft) {
			u := tx.Load(ga + otRight)
			if u != uint64(rhtm.NilAddr) && tx.Load(rhtm.Addr(u)+otColor) == red {
				tx.Store(rhtm.Addr(p)+otColor, black)
				tx.Store(rhtm.Addr(u)+otColor, black)
				tx.Store(ga+otColor, red)
				z = g
				continue
			}
			if z == tx.Load(rhtm.Addr(p)+otRight) {
				z = p
				t.rotateLeft(tx, z)
				p = tx.Load(rhtm.Addr(z) + otParent)
			}
			tx.Store(rhtm.Addr(p)+otColor, black)
			tx.Store(ga+otColor, red)
			t.rotateRight(tx, g)
		} else {
			u := tx.Load(ga + otLeft)
			if u != uint64(rhtm.NilAddr) && tx.Load(rhtm.Addr(u)+otColor) == red {
				tx.Store(rhtm.Addr(p)+otColor, black)
				tx.Store(rhtm.Addr(u)+otColor, black)
				tx.Store(ga+otColor, red)
				z = g
				continue
			}
			if z == tx.Load(rhtm.Addr(p)+otLeft) {
				z = p
				t.rotateRight(tx, z)
				p = tx.Load(rhtm.Addr(z) + otParent)
			}
			tx.Store(rhtm.Addr(p)+otColor, black)
			tx.Store(ga+otColor, red)
			t.rotateLeft(tx, g)
		}
	}
	r := tx.Load(t.root)
	tx.Store(rhtm.Addr(r)+otColor, black)
}

// deleteFixup restores the invariants after unlinking a black node; x (which
// may be nil) carries an extra black, xp is its parent.
func (t *OrderedTree) deleteFixup(tx rhtm.Tx, x, xp uint64) {
	for x != tx.Load(t.root) && t.colorOf(tx, x) == black {
		if xp == uint64(rhtm.NilAddr) {
			break
		}
		xpa := rhtm.Addr(xp)
		if x == tx.Load(xpa+otLeft) {
			w := tx.Load(xpa + otRight)
			if t.colorOf(tx, w) == red {
				tx.Store(rhtm.Addr(w)+otColor, black)
				tx.Store(xpa+otColor, red)
				t.rotateLeft(tx, xp)
				w = tx.Load(xpa + otRight)
			}
			wl := tx.Load(rhtm.Addr(w) + otLeft)
			wr := tx.Load(rhtm.Addr(w) + otRight)
			if t.colorOf(tx, wl) == black && t.colorOf(tx, wr) == black {
				tx.Store(rhtm.Addr(w)+otColor, red)
				x = xp
				xp = tx.Load(rhtm.Addr(x) + otParent)
				continue
			}
			if t.colorOf(tx, wr) == black {
				if wl != uint64(rhtm.NilAddr) {
					tx.Store(rhtm.Addr(wl)+otColor, black)
				}
				tx.Store(rhtm.Addr(w)+otColor, red)
				t.rotateRight(tx, w)
				w = tx.Load(xpa + otRight)
				wr = tx.Load(rhtm.Addr(w) + otRight)
			}
			tx.Store(rhtm.Addr(w)+otColor, tx.Load(xpa+otColor))
			tx.Store(xpa+otColor, black)
			if wr != uint64(rhtm.NilAddr) {
				tx.Store(rhtm.Addr(wr)+otColor, black)
			}
			t.rotateLeft(tx, xp)
			x = tx.Load(t.root)
			break
		}
		// Mirror image.
		w := tx.Load(xpa + otLeft)
		if t.colorOf(tx, w) == red {
			tx.Store(rhtm.Addr(w)+otColor, black)
			tx.Store(xpa+otColor, red)
			t.rotateRight(tx, xp)
			w = tx.Load(xpa + otLeft)
		}
		wl := tx.Load(rhtm.Addr(w) + otLeft)
		wr := tx.Load(rhtm.Addr(w) + otRight)
		if t.colorOf(tx, wl) == black && t.colorOf(tx, wr) == black {
			tx.Store(rhtm.Addr(w)+otColor, red)
			x = xp
			xp = tx.Load(rhtm.Addr(x) + otParent)
			continue
		}
		if t.colorOf(tx, wl) == black {
			if wr != uint64(rhtm.NilAddr) {
				tx.Store(rhtm.Addr(wr)+otColor, black)
			}
			tx.Store(rhtm.Addr(w)+otColor, red)
			t.rotateLeft(tx, w)
			w = tx.Load(xpa + otLeft)
			wl = tx.Load(rhtm.Addr(w) + otLeft)
		}
		tx.Store(rhtm.Addr(w)+otColor, tx.Load(xpa+otColor))
		tx.Store(xpa+otColor, black)
		if wl != uint64(rhtm.NilAddr) {
			tx.Store(rhtm.Addr(wl)+otColor, black)
		}
		t.rotateRight(tx, xp)
		x = tx.Load(t.root)
		break
	}
	if x != uint64(rhtm.NilAddr) {
		tx.Store(rhtm.Addr(x)+otColor, black)
	}
}

// colorOf treats nil as black, per the red-black convention.
func (t *OrderedTree) colorOf(tx rhtm.Tx, n uint64) uint64 {
	if n == uint64(rhtm.NilAddr) {
		return black
	}
	return tx.Load(rhtm.Addr(n) + otColor)
}

// --- validation (setup/verification contexts only) ---

// Validate checks the red-black structural invariants (root color, red-red,
// black height, parent pointers) over the whole tree using raw memory
// access. Key ordering is the comparator's business and is checked by Scan
// output in the callers' tests. Only call while no transactions are in
// flight.
func (t *OrderedTree) Validate() error {
	tx := SetupTx(t.sys)
	root := tx.Load(t.root)
	if root == uint64(rhtm.NilAddr) {
		return nil
	}
	if tx.Load(rhtm.Addr(root)+otColor) != black {
		return fmt.Errorf("orderedtree: root is red")
	}
	_, err := t.validateNode(tx, root)
	return err
}

// validateNode checks the subtree at n and returns its black height.
func (t *OrderedTree) validateNode(tx rhtm.Tx, n uint64) (int, error) {
	if n == uint64(rhtm.NilAddr) {
		return 1, nil
	}
	a := rhtm.Addr(n)
	c := tx.Load(a + otColor)
	l, r := tx.Load(a+otLeft), tx.Load(a+otRight)
	if c == red {
		if t.colorOf(tx, l) == red || t.colorOf(tx, r) == red {
			return 0, fmt.Errorf("orderedtree: red node %d has a red child", n)
		}
	}
	for _, child := range []uint64{l, r} {
		if child != uint64(rhtm.NilAddr) && tx.Load(rhtm.Addr(child)+otParent) != n {
			return 0, fmt.Errorf("orderedtree: node %d child has wrong parent pointer", n)
		}
	}
	lh, err := t.validateNode(tx, l)
	if err != nil {
		return 0, err
	}
	rh, err := t.validateNode(tx, r)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("orderedtree: black-height mismatch at node %d: %d vs %d", n, lh, rh)
	}
	if c == black {
		lh++
	}
	return lh, nil
}
