// Package containers provides the transactional data structures of the
// paper's evaluation — red-black tree, hash table, sorted list, and random
// array — built on the public rhtm API. Every field of every node is a word
// of simulated transactional memory, accessed exclusively through rhtm.Tx
// inside transactions.
//
// Each structure comes in two flavours:
//
//   - the paper's "Constant" operations (§3), which never change the shape
//     of the structure: lookups add dummy shared reads per visited node and
//     updates write dummy fields, mimicking the cache-coherence footprint of
//     real operations while keeping the emulated executions safe; and
//
//   - real mutating operations (Insert/Delete), which the paper's emulation
//     could not run but a safe simulated HTM can. These are used by the
//     examples and the extension experiments.
package containers

import (
	"rhtm"
)

// setupTx adapts a System's raw Peek/Poke to the rhtm.Tx interface so the
// same structure code can populate containers non-transactionally during
// single-threaded setup.
type setupTx struct{ s *rhtm.System }

// Load implements rhtm.Tx (setup only).
func (r setupTx) Load(a rhtm.Addr) uint64 { return r.s.Peek(a) }

// Store implements rhtm.Tx (setup only).
func (r setupTx) Store(a rhtm.Addr, v uint64) { r.s.Poke(a, v) }

// Unsupported implements rhtm.Tx (no-op during setup).
func (r setupTx) Unsupported() {}

// SetupTx returns a non-transactional rhtm.Tx over the system's raw memory.
// It is only safe while no transactions are in flight (population,
// validation); using it concurrently with running engines is a data race by
// design, exactly like initializing a shared structure without locks.
func SetupTx(s *rhtm.System) rhtm.Tx { return setupTx{s: s} }
