package containers

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property: for any operation seed, a red-black tree driven by random
// insert/delete/lookup agrees with a map oracle and keeps its invariants.
func TestQuickRBTreeOracle(t *testing.T) {
	f := func(seed int64) bool {
		s := newSys(1 << 18)
		tree := NewRBTree(s)
		tx := SetupTx(s)
		oracle := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 300; op++ {
			key := uint64(rng.Intn(64) + 1)
			switch rng.Intn(3) {
			case 0:
				val := rng.Uint64()
				if tree.Insert(tx, key, val) == hasKey(oracle, key) {
					return false // fresh-insert flag must negate prior existence
				}
				oracle[key] = val
			case 1:
				if tree.Delete(tx, key) != hasKey(oracle, key) {
					return false
				}
				delete(oracle, key)
			default:
				v, ok := tree.Lookup(tx, key)
				w, okO := oracle[key]
				if ok != okO || (ok && v != w) {
					return false
				}
			}
		}
		if tree.Validate() != nil {
			return false
		}
		return len(tree.Keys()) == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func hasKey(m map[uint64]uint64, k uint64) bool {
	_, ok := m[k]
	return ok
}

// Property: a sorted list stays sorted and duplicate-free under any
// insert/remove sequence.
func TestQuickSortedListInvariant(t *testing.T) {
	f := func(seed int64) bool {
		s := newSys(1 << 16)
		l := NewSortedList(s)
		tx := SetupTx(s)
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 200; op++ {
			key := uint64(rng.Intn(40) + 1)
			if rng.Intn(2) == 0 {
				l.Insert(tx, key, key)
			} else {
				l.Remove(tx, key)
			}
		}
		keys := l.Keys()
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			return false
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] == keys[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: hash-table membership matches a set oracle for any op sequence.
func TestQuickHashTableOracle(t *testing.T) {
	f := func(seed int64) bool {
		s := newSys(1 << 16)
		ht := NewHashTable(s, 16)
		tx := SetupTx(s)
		oracle := map[uint64]bool{}
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 200; op++ {
			key := uint64(rng.Intn(48) + 1)
			switch rng.Intn(3) {
			case 0:
				if ht.Insert(tx, key, key) == oracle[key] {
					return false
				}
				oracle[key] = true
			case 1:
				if ht.Remove(tx, key) != oracle[key] {
					return false
				}
				delete(oracle, key)
			default:
				if _, ok := ht.Get(tx, key); ok != oracle[key] {
					return false
				}
			}
		}
		return ht.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
