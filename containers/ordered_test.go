package containers

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"

	"rhtm"
)

// u64Cmp orders items that encode their key directly: the item word is
// compared against the probe's 8-byte big-endian encoding, so byte
// lexicographic order equals numeric order.
func u64Cmp(tx rhtm.Tx, key []byte, item uint64) int {
	var probe [8]byte
	copy(probe[:], key)
	k := binary.BigEndian.Uint64(probe[:])
	switch {
	case k < item:
		return -1
	case k > item:
		return 1
	default:
		return 0
	}
}

func u64Key(k uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], k)
	return b[:]
}

func TestOrderedTreeInsertDeleteOracle(t *testing.T) {
	s := newSys(1 << 20)
	tree := NewOrderedTree(s, u64Cmp, nil)
	tx := SetupTx(s)
	oracle := map[uint64]bool{}
	rng := rand.New(rand.NewSource(7))
	for op := 0; op < 4000; op++ {
		key := uint64(rng.Intn(300) + 1)
		switch rng.Intn(3) {
		case 0:
			_, inserted, err := tree.Insert(tx, u64Key(key), key)
			if err != nil {
				t.Fatalf("op %d: Insert(%d): %v", op, key, err)
			}
			if inserted == oracle[key] {
				t.Fatalf("op %d: Insert(%d) inserted=%v, oracle existed=%v", op, key, inserted, oracle[key])
			}
			oracle[key] = true
		case 1:
			item, removed := tree.Delete(tx, u64Key(key))
			if removed != oracle[key] {
				t.Fatalf("op %d: Delete(%d) = %v, oracle existed=%v", op, key, removed, oracle[key])
			}
			if removed && item != key {
				t.Fatalf("op %d: Delete(%d) returned item %d", op, key, item)
			}
			delete(oracle, key)
		default:
			item, ok := tree.Lookup(tx, u64Key(key))
			if ok != oracle[key] || (ok && item != key) {
				t.Fatalf("op %d: Lookup(%d) = %d,%v, oracle %v", op, key, item, ok, oracle[key])
			}
		}
		if op%500 == 0 {
			if err := tree.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	tree.Scan(tx, nil, nil, func(item uint64) bool { got = append(got, item); return true })
	want := make([]uint64, 0, len(oracle))
	for k := range oracle {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("scan returned %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestOrderedTreeScanRange(t *testing.T) {
	s := newSys(1 << 18)
	tree := NewOrderedTree(s, u64Cmp, nil)
	tx := SetupTx(s)
	for k := uint64(1); k <= 100; k++ {
		if _, _, err := tree.Insert(tx, u64Key(k*2), k*2); err != nil { // even keys 2..200
			t.Fatal(err)
		}
	}
	cases := []struct {
		start, end uint64 // 0 = unbounded
		want       []uint64
	}{
		{10, 20, []uint64{10, 12, 14, 16, 18}}, // end exclusive
		{9, 15, []uint64{10, 12, 14}},          // bounds between keys
		{0, 6, []uint64{2, 4}},
		{196, 0, []uint64{196, 198, 200}},
		{300, 0, nil},
	}
	for _, c := range cases {
		var start, end []byte
		if c.start != 0 {
			start = u64Key(c.start)
		}
		if c.end != 0 {
			end = u64Key(c.end)
		}
		var got []uint64
		tree.Scan(tx, start, end, func(item uint64) bool { got = append(got, item); return true })
		if len(got) != len(c.want) {
			t.Fatalf("Scan[%d,%d) = %v, want %v", c.start, c.end, got, c.want)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("Scan[%d,%d) = %v, want %v", c.start, c.end, got, c.want)
			}
		}
	}
	// Early stop.
	n := 0
	tree.Scan(tx, nil, nil, func(uint64) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early-stop scan visited %d items, want 3", n)
	}
}

func TestOrderedTreeLexicographic(t *testing.T) {
	// Variable-length byte keys with the item encoding an index into a Go
	// side table; verifies the comparator contract with real varlen keys.
	keys := [][]byte{
		[]byte(""), []byte("a"), []byte("ab"), []byte("abc"), []byte("b"),
		[]byte("ba"), []byte("z"), []byte("za"), {0x00}, {0x00, 0x01}, {0xff},
	}
	s := newSys(1 << 16)
	cmp := func(tx rhtm.Tx, key []byte, item uint64) int {
		return bytes.Compare(key, keys[item])
	}
	tree := NewOrderedTree(s, cmp, nil)
	tx := SetupTx(s)
	perm := rand.New(rand.NewSource(3)).Perm(len(keys))
	for _, i := range perm {
		if _, _, err := tree.Insert(tx, keys[i], uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got [][]byte
	tree.Scan(tx, nil, nil, func(item uint64) bool { got = append(got, keys[item]); return true })
	want := make([][]byte, len(keys))
	copy(want, keys)
	sort.Slice(want, func(i, j int) bool { return bytes.Compare(want[i], want[j]) < 0 })
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("scan[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
