// kvstore builds a small concurrent key-value store with composed
// transactions on top of the rhtm hash table: writers move key-value pairs
// between two tables atomically (the classic "cannot be done with two
// independent concurrent maps" operation), and an auditing reader keeps
// verifying that every key lives in exactly one table. Some transactions
// simulate a system call with Tx.Unsupported, forcing them through the
// mostly-software slow path — the scenario the paper's slow path exists for.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"rhtm"
	"rhtm/containers"
)

const keySpace = 400

func main() {
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 18))
	eng := rhtm.NewRH1(s, rhtm.DefaultRH1Options())

	hot := containers.NewHashTable(s, 128)
	cold := containers.NewHashTable(s, 128)
	keys := make([]uint64, keySpace)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	hot.Populate(keys) // everything starts hot

	const movers, moves = 4, 400
	var wg sync.WaitGroup
	for w := 0; w < movers; w++ {
		th := eng.NewThread()
		rng := rand.New(rand.NewSource(int64(w + 1)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < moves; i++ {
				key := uint64(rng.Intn(keySpace) + 1)
				toCold := rng.Intn(2) == 0
				audit := rng.Intn(16) == 0
				err := th.Atomic(func(tx rhtm.Tx) error {
					if audit {
						// Simulate a protected instruction (e.g. logging the
						// move via a syscall): hardware paths abort and the
						// transaction completes in software.
						tx.Unsupported()
					}
					src, dst := hot, cold
					if !toCold {
						src, dst = cold, hot
					}
					if v, ok := src.Get(tx, key); ok {
						src.Remove(tx, key)
						dst.Insert(tx, key, v)
					}
					return nil
				})
				if err != nil {
					log.Fatalf("move: %v", err)
				}
			}
		}()
	}

	// Auditor: each key must be in exactly one table at every instant.
	stopAudit := make(chan struct{})
	var audits int
	var auditWg sync.WaitGroup
	auditWg.Add(1)
	go func() {
		defer auditWg.Done()
		th := eng.NewThread()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stopAudit:
				return
			default:
			}
			key := uint64(rng.Intn(keySpace) + 1)
			err := th.Atomic(func(tx rhtm.Tx) error {
				_, inHot := hot.Get(tx, key)
				_, inCold := cold.Get(tx, key)
				if inHot == inCold {
					return fmt.Errorf("key %d: inHot=%v inCold=%v", key, inHot, inCold)
				}
				return nil
			})
			if err != nil {
				log.Fatalf("audit violation: %v", err)
			}
			audits++
		}
	}()

	wg.Wait()
	close(stopAudit)
	auditWg.Wait()

	// Final verification with raw access.
	total := hot.Len() + cold.Len()
	if total != keySpace {
		log.Fatalf("keys lost or duplicated: hot=%d cold=%d total=%d want=%d",
			hot.Len(), cold.Len(), total, keySpace)
	}
	st := eng.Snapshot()
	fmt.Printf("kvstore ok: hot=%d cold=%d (total %d), %d audits passed\n",
		hot.Len(), cold.Len(), total, audits)
	fmt.Printf("engine %s: %s\n", eng.Name(), st)
	fmt.Printf("software slow-path commits (syscall transactions): %d\n",
		st.SlowCommits+st.ReadOnlyCommits)
}
