// kvstore builds a concurrent key-value service on the unified kv.DB
// interface: writers move variable-length records between a "hot" and a
// "cold" keyspace atomically with Update closure transactions (the classic
// "cannot be done with two independent concurrent maps" operation), while
// an auditing reader keeps verifying that every record lives in exactly one
// keyspace with its payload intact. Population runs through one Batch call,
// and the final verification walks both keyspaces with Scan cursors —
// every part of the kv.DB contract in one program.
//
// The same code runs unchanged against the cluster backend: swap NewLocal
// for kv.NewCluster(cluster.MustNew(...)) and the closures commit via
// two-phase commit instead of one engine transaction.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"rhtm"
	"rhtm/kv"
	"rhtm/store"
)

const (
	keySpace = 256
	movers   = 4
	moves    = 150
	shards   = 4
)

func main() {
	summary, err := run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(summary)
}

// hotKey/coldKey place record i in one of the two keyspaces; the prefixes
// keep each keyspace a contiguous range of the ordered index, so a Scan
// over "hot:".."hot;" is exactly the hot side.
func hotKey(i int) []byte  { return []byte(fmt.Sprintf("hot:item-%03d", i)) }
func coldKey(i int) []byte { return []byte(fmt.Sprintf("cold:item-%03d", i)) }

// value derives a record's payload from its index; lengths vary from 1 to
// 40 bytes so the moves exercise the varlen codec and the arena's
// size-class recycling.
func value(i int) []byte {
	v := bytes.Repeat([]byte{byte('a' + i%26)}, i%40+1)
	return append(v, []byte(fmt.Sprintf("#%d", i))...)
}

// run executes the scenario and returns a human-readable summary; the smoke
// test drives it directly.
func run() (string, error) {
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 18))
	eng := rhtm.NewRH1(s, rhtm.DefaultRH1Options())
	sh := store.NewSharded(s, shards, store.Options{ArenaWords: 1 << 14})
	db := kv.NewLocal(eng, sh)

	// Everything starts hot: one batch, one transaction.
	ops := make([]kv.Op, keySpace)
	for i := range ops {
		ops[i] = kv.Op{Kind: kv.OpPut, Key: hotKey(i), Value: value(i)}
	}
	if _, err := db.Batch(ops); err != nil {
		return "", fmt.Errorf("populate: %w", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, movers+1)

	// Auditor: each record must be in exactly one keyspace, with its
	// original payload, at every instant — checked inside one transaction.
	// It starts before the movers and signals its first pass, so the run is
	// guaranteed to audit concurrent state, not just the quiet ends.
	stopAudit := make(chan struct{})
	firstAudit := make(chan struct{})
	var audits int
	var auditWg sync.WaitGroup
	auditWg.Add(1)
	go func() {
		defer auditWg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stopAudit:
				return
			default:
			}
			i := rng.Intn(keySpace)
			err := db.Update(func(tx kv.Txn) error {
				vh, errH := tx.Get(hotKey(i))
				vc, errC := tx.Get(coldKey(i))
				inHot, inCold := errH == nil, errC == nil
				for _, err := range []error{errH, errC} {
					if err != nil && !errors.Is(err, kv.ErrNotFound) {
						return err
					}
				}
				if inHot == inCold {
					return fmt.Errorf("key %d: inHot=%v inCold=%v", i, inHot, inCold)
				}
				v := vh
				if inCold {
					v = vc
				}
				if !bytes.Equal(v, value(i)) {
					return fmt.Errorf("key %d: payload corrupted: %q", i, v)
				}
				return nil
			})
			if err != nil {
				errs <- fmt.Errorf("audit violation: %w", err)
				return
			}
			audits++
			if audits == 1 {
				close(firstAudit)
			}
		}
	}()
	select {
	case <-firstAudit:
	case err := <-errs:
		return "", err
	}

	for w := 0; w < movers; w++ {
		rng := rand.New(rand.NewSource(int64(w + 1)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < moves; i++ {
				idx := rng.Intn(keySpace)
				src, dst := hotKey(idx), coldKey(idx)
				if rng.Intn(2) == 0 {
					src, dst = dst, src
				}
				err := db.Update(func(tx kv.Txn) error {
					v, err := tx.Get(src)
					if errors.Is(err, kv.ErrNotFound) {
						return nil // already on the other side
					}
					if err != nil {
						return err
					}
					if err := tx.Delete(src); err != nil {
						return err
					}
					return tx.Put(dst, v)
				})
				if err != nil {
					errs <- fmt.Errorf("move: %w", err)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stopAudit)
	auditWg.Wait()
	select {
	case err := <-errs:
		return "", err
	default:
	}

	// Final verification with Scan cursors: exactly keySpace records across
	// the two keyspaces, every payload intact, the store structurally valid.
	count := func(prefix string) (int, error) {
		it := db.Scan([]byte(prefix+":"), []byte(prefix+";"), 0)
		n := 0
		for it.Next() {
			var i int
			if _, err := fmt.Sscanf(string(it.Key()), prefix+":item-%03d", &i); err != nil {
				return 0, fmt.Errorf("unexpected key %q", it.Key())
			}
			if !bytes.Equal(it.Value(), value(i)) {
				return 0, fmt.Errorf("key %d: corrupted after run", i)
			}
			n++
		}
		return n, it.Err()
	}
	nh, err := count("hot")
	if err != nil {
		return "", err
	}
	nc, err := count("cold")
	if err != nil {
		return "", err
	}
	if nh+nc != keySpace {
		return "", fmt.Errorf("keys lost or duplicated: hot=%d cold=%d total=%d want=%d",
			nh, nc, nh+nc, keySpace)
	}
	if err := sh.Validate(); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}

	st := eng.Snapshot()
	var b bytes.Buffer
	fmt.Fprintf(&b, "kvstore ok: hot=%d cold=%d (total %d), %d audits passed\n",
		nh, nc, nh+nc, audits)
	fmt.Fprintf(&b, "engine %s: %s\n", eng.Name(), st)
	return b.String(), nil
}
