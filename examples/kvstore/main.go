// kvstore builds a concurrent key-value service on the store package:
// writers move variable-length records between a "hot" and a "cold" sharded
// store atomically (the classic "cannot be done with two independent
// concurrent maps" operation), while an auditing reader keeps verifying
// that every key lives in exactly one store with its payload intact. Some
// transactions simulate a system call with Tx.Unsupported, forcing them
// through the mostly-software slow path — the scenario the paper's slow
// path exists for.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"rhtm"
	"rhtm/containers"
	"rhtm/store"
)

const (
	keySpace = 256
	movers   = 4
	moves    = 150
	shards   = 4
)

func main() {
	summary, err := run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(summary)
}

// key and value derive a record from its index; values vary in length from
// 1 to 40 bytes so the moves exercise the varlen codec and the arena's
// size-class recycling.
func key(i int) []byte { return []byte(fmt.Sprintf("item-%03d", i)) }

func value(i int) []byte {
	v := bytes.Repeat([]byte{byte('a' + i%26)}, i%40+1)
	return append(v, []byte(fmt.Sprintf("#%d", i))...)
}

// run executes the scenario and returns a human-readable summary; the smoke
// test drives it directly.
func run() (string, error) {
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 18))
	eng := rhtm.NewRH1(s, rhtm.DefaultRH1Options())

	opts := store.Options{ArenaWords: 1 << 14}
	hot := store.NewSharded(s, shards, opts)
	cold := store.NewSharded(s, shards, opts)

	// Everything starts hot. Population runs single-threaded, so it uses the
	// raw setup transaction instead of an engine.
	setup := containers.SetupTx(s)
	for i := 0; i < keySpace; i++ {
		if err := hot.Put(setup, key(i), value(i)); err != nil {
			return "", fmt.Errorf("populate: %w", err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, movers+1)
	for w := 0; w < movers; w++ {
		th := eng.NewThread()
		rng := rand.New(rand.NewSource(int64(w + 1)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < moves; i++ {
				k := key(rng.Intn(keySpace))
				toCold := rng.Intn(2) == 0
				audit := rng.Intn(16) == 0
				err := th.Atomic(func(tx rhtm.Tx) error {
					if audit {
						// Simulate a protected instruction (e.g. logging the
						// move via a syscall): hardware paths abort and the
						// transaction completes in software.
						tx.Unsupported()
					}
					src, dst := hot, cold
					if !toCold {
						src, dst = cold, hot
					}
					v, ok := src.Get(tx, k)
					if !ok {
						return nil // already on the other side
					}
					src.Delete(tx, k)
					return dst.Put(tx, k, v)
				})
				if err != nil {
					errs <- fmt.Errorf("move: %w", err)
					return
				}
			}
		}()
	}

	// Auditor: each key must be in exactly one store, with its original
	// payload, at every instant.
	stopAudit := make(chan struct{})
	var audits int
	var auditWg sync.WaitGroup
	auditWg.Add(1)
	go func() {
		defer auditWg.Done()
		th := eng.NewThread()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stopAudit:
				return
			default:
			}
			i := rng.Intn(keySpace)
			err := th.Atomic(func(tx rhtm.Tx) error {
				vh, inHot := hot.Get(tx, key(i))
				vc, inCold := cold.Get(tx, key(i))
				if inHot == inCold {
					return fmt.Errorf("key %d: inHot=%v inCold=%v", i, inHot, inCold)
				}
				v := vh
				if inCold {
					v = vc
				}
				if !bytes.Equal(v, value(i)) {
					return fmt.Errorf("key %d: payload corrupted: %q", i, v)
				}
				return nil
			})
			if err != nil {
				errs <- fmt.Errorf("audit violation: %w", err)
				return
			}
			audits++
		}
	}()

	wg.Wait()
	close(stopAudit)
	auditWg.Wait()
	select {
	case err := <-errs:
		return "", err
	default:
	}

	// Final verification with raw access: exactly keySpace records across
	// the two stores, every payload intact, both stores structurally valid.
	nh, nc := hot.Len(setup), cold.Len(setup)
	if nh+nc != keySpace {
		return "", fmt.Errorf("keys lost or duplicated: hot=%d cold=%d total=%d want=%d",
			nh, nc, nh+nc, keySpace)
	}
	for i := 0; i < keySpace; i++ {
		v, ok := hot.Get(setup, key(i))
		if !ok {
			v, ok = cold.Get(setup, key(i))
		}
		if !ok || !bytes.Equal(v, value(i)) {
			return "", fmt.Errorf("key %d: missing or corrupted after run", i)
		}
	}
	if err := hot.Validate(); err != nil {
		return "", fmt.Errorf("hot store: %w", err)
	}
	if err := cold.Validate(); err != nil {
		return "", fmt.Errorf("cold store: %w", err)
	}

	st := eng.Snapshot()
	var b bytes.Buffer
	fmt.Fprintf(&b, "kvstore ok: hot=%d cold=%d (total %d), %d audits passed\n",
		nh, nc, nh+nc, audits)
	fmt.Fprintf(&b, "engine %s: %s\n", eng.Name(), st)
	fmt.Fprintf(&b, "software slow-path commits (syscall transactions): %d\n",
		st.SlowCommits+st.ReadOnlyCommits)
	return b.String(), nil
}
