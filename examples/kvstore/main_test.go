package main

import (
	"strings"
	"testing"
)

// TestKVStoreExample runs the full scenario so the example cannot silently
// rot: movers, auditor, final verification, and the engine summary.
func TestKVStoreExample(t *testing.T) {
	summary, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(summary, "kvstore ok:") {
		t.Fatalf("unexpected summary:\n%s", summary)
	}
	if !strings.Contains(summary, "audits passed") {
		t.Fatalf("summary missing audit count:\n%s", summary)
	}
	if strings.Contains(summary, " 0 audits passed") {
		t.Fatalf("auditor never overlapped the movers:\n%s", summary)
	}
}
