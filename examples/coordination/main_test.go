package main

import (
	"strings"
	"testing"
)

// TestCoordinationExample runs the full scenario as a smoke test: elections
// stay single-winner, fencing tokens grow, leases reclaim leadership and
// config atomically, and the watcher sees every published version.
func TestCoordinationExample(t *testing.T) {
	summary, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "coordination ok") {
		t.Fatalf("unexpected summary: %q", summary)
	}
}
