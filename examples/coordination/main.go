// coordination builds a miniature control plane on the kv.DB coordination
// surface: candidates campaign for leadership with a create-only
// conditional write guarded by a lease (PutIf rev 0 + WithLease), the
// winner publishes monotonically-versioned config under its lease, a
// watcher follows the config stream, and leader crashes are simulated by
// letting the lease lapse on the virtual clock — expiry deletes the leader
// key and the config atomically, and the next campaign round elects a
// successor. Every acquisition takes a fencing token (the leader key's
// revision), which must grow strictly across reigns: the classic guard
// against a deposed leader's late writes.
//
// The same program runs unchanged on the cluster backend — swap NewLocal
// for kv.NewCluster(cluster.MustNew(...)) and elections, leases and
// watches ride two-phase commit across share-nothing Systems.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"

	"rhtm"
	"rhtm/kv"
	"rhtm/store"
)

const (
	candidates = 4
	reigns     = 6
	leaseTTL   = 10
)

var (
	leaderKey = []byte("election/leader")
	configKey = []byte("config/active")
)

func main() {
	summary, err := run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(summary)
}

// run executes the scenario and returns a human-readable summary; the smoke
// test drives it directly.
func run() (string, error) {
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
	eng := rhtm.NewRH1(s, rhtm.DefaultRH1Options())
	sh := store.NewSharded(s, 4, store.Options{ArenaWords: 1 << 13})
	clock := kv.NewManualClock()
	db := kv.NewLocal(eng, sh, kv.WithClock(clock))

	// The config watcher: follows every published config version.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events, err := db.Watch(ctx, []byte("config/"), 0)
	if err != nil {
		return "", err
	}
	type publication struct {
		value []byte
		rev   kv.Revision
	}
	watched := make(chan publication, reigns*2)
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		for ev := range events {
			if ev.Kind == kv.EventPut {
				watched <- publication{value: ev.Value, rev: ev.Rev}
			}
		}
	}()

	var lastFence kv.Revision
	elected := make([]int, 0, reigns)
	for reign := 0; reign < reigns; reign++ {
		// Campaign: every candidate races the create-only conditional
		// write; exactly one wins.
		var leader int
		var lease kv.LeaseID
		won := false
		for id := 0; id < candidates; id++ {
			l, err := db.Grant(leaseTTL)
			if err != nil {
				return "", err
			}
			err = db.PutIf(leaderKey, []byte(fmt.Sprintf("candidate-%d", id)), 0, kv.WithLease(l))
			switch {
			case err == nil:
				if won {
					return "", fmt.Errorf("reign %d: two winners", reign)
				}
				won, leader, lease = true, id, l
			case errors.Is(err, kv.ErrRevisionMismatch):
				if err := db.Revoke(l); err != nil {
					return "", err
				}
			default:
				return "", err
			}
		}
		if !won {
			return "", fmt.Errorf("reign %d: nobody won the election", reign)
		}
		elected = append(elected, leader)

		// Fencing: the leader key's revision must grow strictly across
		// reigns — a deposed leader can prove staleness by its token.
		_, fence, err := db.GetRev(leaderKey)
		if err != nil {
			return "", err
		}
		if fence <= lastFence {
			return "", fmt.Errorf("reign %d: fencing token %d not past %d", reign, fence, lastFence)
		}
		lastFence = fence

		// The leader publishes config under its lease: leader death revokes
		// the config with the leadership, atomically.
		cfg := []byte(fmt.Sprintf("epoch=%d leader=%d", reign, leader))
		if err := db.Put(configKey, cfg, kv.WithLease(lease)); err != nil {
			return "", err
		}

		if reign%2 == 0 {
			// Clean handover: resign by revoking the lease.
			if err := db.Revoke(lease); err != nil {
				return "", err
			}
		} else {
			// Crash: stop keeping alive; the lease lapses on the clock and
			// expiry reclaims leadership and config together.
			clock.Advance(leaseTTL + 1)
			if _, err := db.ExpireLeases(); err != nil {
				return "", err
			}
		}
		// Either way the throne and the config are vacant again.
		if _, err := db.Get(leaderKey); !errors.Is(err, kv.ErrNotFound) {
			return "", fmt.Errorf("reign %d: leader key survived the handover: %v", reign, err)
		}
		if _, err := db.Get(configKey); !errors.Is(err, kv.ErrNotFound) {
			return "", fmt.Errorf("reign %d: config outlived its leader: %v", reign, err)
		}
	}

	// The watcher saw every reign's config, in fencing order.
	var pubs []publication
	for len(pubs) < reigns {
		select {
		case p := <-watched:
			pubs = append(pubs, p)
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	for i := 1; i < len(pubs); i++ {
		if pubs[i].rev <= pubs[i-1].rev {
			return "", fmt.Errorf("config stream out of order: %d then %d", pubs[i-1].rev, pubs[i].rev)
		}
	}
	for i, p := range pubs {
		if !bytes.Contains(p.value, []byte(fmt.Sprintf("epoch=%d ", i))) {
			return "", fmt.Errorf("publication %d carries %q", i, p.value)
		}
	}
	// Quiesce the watch hub before raw-memory validation and the engine
	// snapshot: its poller thread must be outside Atomic.
	cancel()
	<-watcherDone
	db.WaitWatchIdle()
	if err := sh.Validate(); err != nil {
		return "", err
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, "coordination ok: %d reigns (leaders %v), %d config versions watched, final fence %d\n",
		reigns, elected, len(pubs), lastFence)
	fmt.Fprintf(&b, "engine %s: %s\n", eng.Name(), eng.Snapshot())
	return b.String(), nil
}
