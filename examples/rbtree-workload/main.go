// rbtree-workload reproduces a miniature of the paper's headline experiment
// (Figure 1) as a self-contained program: the Constant Red-Black Tree with
// 20% mutation operations, run under the four headline engines. It prints
// both the architectural metric (committed operations per thousand simulated
// shared accesses — the number the paper's "who is faster" claims map to)
// and host wall-clock throughput.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"rhtm"
	"rhtm/containers"
)

func main() {
	nodes := flag.Int("nodes", 20_000, "tree size")
	threads := flag.Int("threads", 4, "worker goroutines")
	dur := flag.Duration("dur", 500*time.Millisecond, "measurement time per engine")
	writePct := flag.Int("writes", 20, "mutation percentage")
	flag.Parse()

	fmt.Printf("%d-node Constant RB-Tree, %d%% mutations, %d threads, %v per engine\n\n",
		*nodes, *writePct, *threads, *dur)
	fmt.Printf("%-16s %14s %14s %12s\n", "engine", "ops/kaccess", "ops/sec", "abort-ratio")

	type build struct {
		name string
		mk   func(*rhtm.System) rhtm.Engine
	}
	builds := []build{
		{"HTM", func(s *rhtm.System) rhtm.Engine { return rhtm.NewHTM(s, rhtm.HWOptions{}) }},
		{"Standard HyTM", func(s *rhtm.System) rhtm.Engine { return rhtm.NewStandardHyTM(s, rhtm.HWOptions{}) }},
		{"TL2", func(s *rhtm.System) rhtm.Engine { return rhtm.NewTL2(s) }},
		{"RH1 Fast", func(s *rhtm.System) rhtm.Engine { return rhtm.NewRH1(s, rhtm.RH1Options{FastOnly: true}) }},
		{"RH1 Mixed 100", func(s *rhtm.System) rhtm.Engine { return rhtm.NewRH1(s, rhtm.DefaultRH1Options()) }},
	}
	for _, b := range builds {
		run(b.name, b.mk, *nodes, *threads, *dur, *writePct)
	}
}

// run measures one engine on a freshly populated tree.
func run(name string, mk func(*rhtm.System) rhtm.Engine, nodes, threads int,
	dur time.Duration, writePct int) {

	s := rhtm.MustNewSystem(rhtm.DefaultConfig(nodes*containers.RBNodeWords*2 + 4096))
	tree := containers.NewRBTree(s)
	keys := make([]uint64, nodes)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(keys), func(i, j int) {
		keys[i], keys[j] = keys[j], keys[i]
	})
	tree.Populate(keys)
	eng := mk(s)

	var stop sync.WaitGroup
	done := make(chan struct{})
	var ops uint64
	var mu sync.Mutex
	start := time.Now()
	for w := 0; w < threads; w++ {
		th := eng.NewThread()
		rng := rand.New(rand.NewSource(int64(w + 1)))
		stop.Add(1)
		go func() {
			defer stop.Done()
			local := uint64(0)
			for {
				select {
				case <-done:
					mu.Lock()
					ops += local
					mu.Unlock()
					return
				default:
				}
				key := uint64(rng.Intn(nodes) + 1)
				err := th.Atomic(func(tx rhtm.Tx) error {
					if rng.Intn(100) < writePct {
						tree.ConstUpdate(tx, key, rng.Uint64(), rng)
					} else {
						tree.ConstLookup(tx, key)
					}
					return nil
				})
				if err != nil {
					log.Fatalf("%s: %v", name, err)
				}
				local++
			}
		}()
	}
	time.Sleep(dur)
	close(done)
	stop.Wait()
	elapsed := time.Since(start)

	st := eng.Snapshot()
	accesses := st.Reads + st.Writes + st.MetadataReads + st.MetadataWrites
	perK := 0.0
	if accesses > 0 {
		perK = 1000 * float64(ops) / float64(accesses)
	}
	fmt.Printf("%-16s %14.2f %14.0f %12.3f\n",
		name, perK, float64(ops)/elapsed.Seconds(), st.AbortRatio())
}
