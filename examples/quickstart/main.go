// Quickstart: a shared counter and a multi-word bank transfer under the RH1
// engine, showing the basic rhtm API — build a System, create an Engine, one
// Thread per goroutine, bodies via Atomic. The program self-checks its
// invariants and prints the engine's path statistics.
package main

import (
	"fmt"
	"log"
	"sync"

	"rhtm"
)

func main() {
	// A simulated machine with a 64K-word transactional heap.
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 16))

	// The paper's full protocol stack: RH1 fast path, mixed slow path, RH2
	// fallback, all-software slow-slow path.
	eng := rhtm.NewRH1(s, rhtm.DefaultRH1Options())

	counter := s.MustAlloc(1)
	const accounts = 16
	bank := s.MustAlloc(accounts)
	for i := 0; i < accounts; i++ {
		s.Poke(bank+rhtm.Addr(i), 100)
	}

	const workers = 4
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th := eng.NewThread() // one Thread per goroutine, never shared
		id := uint64(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := th.Atomic(func(tx rhtm.Tx) error {
					// Increment the shared counter...
					tx.Store(counter, tx.Load(counter)+1)
					// ...and move one unit between two accounts, atomically.
					from := bank + rhtm.Addr((id+uint64(i))%accounts)
					to := bank + rhtm.Addr((id*7+uint64(i)*3)%accounts)
					if f := tx.Load(from); f > 0 {
						tx.Store(from, f-1)
						tx.Store(to, tx.Load(to)+1)
					}
					return nil
				})
				if err != nil {
					log.Fatalf("transaction failed: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	// Verify.
	if got := s.Load(counter); got != workers*iters {
		log.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	var total uint64
	for i := 0; i < accounts; i++ {
		total += s.Load(bank + rhtm.Addr(i))
	}
	if total != accounts*100 {
		log.Fatalf("bank total = %d, want %d (money not conserved)", total, accounts*100)
	}

	st := eng.Snapshot()
	fmt.Printf("all invariants hold: counter=%d, bank total=%d\n",
		s.Load(counter), total)
	fmt.Printf("engine %s: %s\n", eng.Name(), st)
	fmt.Printf("abort ratio: %.3f aborts/commit\n", st.AbortRatio())
}
