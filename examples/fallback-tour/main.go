// fallback-tour walks transactions through every level of the RH1 protocol
// stack by shrinking the simulated HTM until each path is forced in turn:
//
//  1. a transaction commits on the pure hardware fast path;
//  2. a read-heavy transaction too large for the hardware footprint runs its
//     body in software and commits through the RH1 mixed slow path's single
//     commit-time hardware transaction — which fits, because it touches only
//     the read set's *metadata* (one stripe version word per 8 data words),
//     not the data it read: this is exactly the paper's §1.2 argument for
//     why the mixed path accommodates much longer transactions;
//  3. with the hardware squeezed further, the commit transaction itself
//     overflows and the engine takes the RH2 fallback (write-set locks +
//     commit-time visible read masks);
//  4. squeezed until even RH2's write-only hardware write-back cannot fit,
//     the engine raises is_all_software_slow_path and finishes with plain
//     stores — the all-software slow-slow path.
//
// After each stage the program prints the engine's path counters so the
// transitions are visible, and verifies the data landed intact.
package main

import (
	"fmt"
	"log"

	"rhtm"
)

func main() {
	// Transactions read 16 words spread across 16 cache lines (16 distinct
	// stripes → 2 lines of stripe-version metadata) and write nWrites of
	// them. The HTM limits select the protocol level:
	stage(1, "pure hardware fast path",
		rhtm.HTMConfig{MaxFootprintLines: 2048, MaxWriteLines: 512}, 2,
		func(st rhtm.Stats) error {
			if st.FastCommits == 0 || st.SlowCommits != 0 {
				return fmt.Errorf("expected pure fast-path commits, got %v", st)
			}
			return nil
		})
	// 16 read lines overflow a 12-line footprint, but the slow commit needs
	// only ~2 metadata lines + 2 data + 2 metadata writes + the clock.
	stage(2, "mixed slow path (body in software, commit in hardware)",
		rhtm.HTMConfig{MaxFootprintLines: 12, MaxWriteLines: 8}, 2,
		func(st rhtm.Stats) error {
			if st.SlowCommits == 0 {
				return fmt.Errorf("expected slow-path commits, got %v", st)
			}
			if st.RH2Fallbacks != 0 || st.AllSoftwareWritebacks != 0 {
				return fmt.Errorf("did not expect deeper fallbacks yet: %v", st)
			}
			return nil
		})
	// Now even the ~7-line commit transaction overflows; RH2's write-only
	// write-back (2 data lines) still fits.
	stage(3, "RH2 fallback (locks + visible read masks)",
		rhtm.HTMConfig{MaxFootprintLines: 4, MaxWriteLines: 4}, 2,
		func(st rhtm.Stats) error {
			if st.RH2Fallbacks == 0 {
				return fmt.Errorf("expected RH2 fallbacks, got %v", st)
			}
			if st.AllSoftwareWritebacks != 0 {
				return fmt.Errorf("did not expect software write-back yet: %v", st)
			}
			return nil
		})
	// Four written lines against a 2-line write buffer: even the RH2
	// write-back hardware transaction fails, forcing plain stores.
	stage(4, "all-software slow-slow path",
		rhtm.HTMConfig{MaxFootprintLines: 4, MaxWriteLines: 2}, 4,
		func(st rhtm.Stats) error {
			if st.AllSoftwareWritebacks == 0 {
				return fmt.Errorf("expected software write-backs, got %v", st)
			}
			return nil
		})
	fmt.Println("\nall four protocol levels exercised and verified")
}

// stage runs the canonical transaction shape (read 16 spread words, write
// the first nWrites of them) under the given HTM limits and checks which
// protocol level carried it.
func stage(n int, title string, htm rhtm.HTMConfig, nWrites int, check func(rhtm.Stats) error) {
	cfg := rhtm.DefaultConfig(1 << 16)
	cfg.HTM = htm
	s := rhtm.MustNewSystem(cfg)
	eng := rhtm.NewRH1(s, rhtm.DefaultRH1Options())

	const words = 16
	addrs := make([]rhtm.Addr, words)
	for i := range addrs {
		addrs[i] = s.MustAlloc(1)
		s.MustAlloc(7) // next address lands on the next line/stripe
	}

	th := eng.NewThread()
	for round := uint64(1); round <= 3; round++ {
		err := th.Atomic(func(tx rhtm.Tx) error {
			sum := uint64(0)
			for _, a := range addrs {
				sum += tx.Load(a)
			}
			for _, a := range addrs[:nWrites] {
				tx.Store(a, sum+round)
			}
			return nil
		})
		if err != nil {
			log.Fatalf("stage %d: %v", n, err)
		}
	}
	// All written words must carry the same (last) value: a torn write set
	// would leave them different.
	want := s.Load(addrs[0])
	for i, a := range addrs[:nWrites] {
		if got := s.Load(a); got != want {
			log.Fatalf("stage %d: addrs[%d] = %d, want %d (torn write set)", n, i, got, want)
		}
	}
	st := eng.Snapshot()
	if err := check(st); err != nil {
		log.Fatalf("stage %d (%s): %v", n, title, err)
	}
	fmt.Printf("stage %d: %s\n  HTM limits: footprint=%d lines, writes=%d lines\n  %s\n",
		n, title, htm.MaxFootprintLines, htm.MaxWriteLines, st)
}
