// replication runs the repl/ subsystem end to end over loopback TCP: a
// WAL-backed primary ships its log to two follower Systems, each serving
// follower reads at a provable revision watermark behind its own server,
// and the client routes reads to them with WithFollowerReads while writes
// go to the primary. Mid-workload the primary "dies": the group fences its
// log writers, a zombie write through the old address is rejected with
// kv.ErrFenced, and the most-caught-up replica is promoted — replaying the
// log tail, bumping the membership epoch, and taking over at the address
// it was already serving. Clients re-route by dialing the promoted
// replica as the new primary.
//
// The fencing-token handoff reuses the coordination example's pattern:
// every reign records its leadership under a key whose revision is the
// fencing token, and the token must grow strictly across the failover —
// the membership epoch (1 before, 2 after) is the cluster-level form of
// the same guard, stamped into the log so recovery and replicas agree on
// who may write.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	"rhtm"
	"rhtm/client"
	"rhtm/kv"
	"rhtm/repl"
	"rhtm/server"
	"rhtm/store"
	"rhtm/wal"
)

const (
	orders   = 120
	replicas = 2
)

var leaderKey = []byte("election/leader")

func main() {
	summary, err := run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(summary)
}

// newSystem builds one simulated machine: an engine over a sharded store.
func newSystem() (rhtm.Engine, kv.Storer) {
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
	return rhtm.NewTL2(s), store.NewSharded(s, 4, store.Options{ArenaWords: 1 << 13})
}

// run executes the scenario and returns a human-readable summary; the
// smoke test drives it directly.
func run() (string, error) {
	// The primary: a WAL-backed DB whose log is the replication stream.
	eng, st := newSystem()
	dev, err := wal.NewMemStorage().Device("wal")
	if err != nil {
		return "", err
	}
	primary, err := kv.OpenLocal(eng, st, dev)
	if err != nil {
		return "", err
	}
	group, err := repl.NewLocalGroup(primary, dev)
	if err != nil {
		return "", err
	}
	defer group.Close()

	// Two replicas, each a full System tailing the log, each behind its
	// own server. The follower's DB is the same surface the primary
	// serves, so the wire layer needs no replication-specific handling
	// beyond the follower-read request.
	var followers []*repl.Follower
	var followerAddrs []string
	for i := 0; i < replicas; i++ {
		reng, rst := newSystem()
		f, err := group.AddLocalReplica(reng, rst)
		if err != nil {
			return "", err
		}
		srv := server.New(f.DB())
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return "", err
		}
		defer srv.Close()
		followers = append(followers, f)
		followerAddrs = append(followerAddrs, addr.String())
	}
	psrv := server.New(primary)
	paddr, err := psrv.Start("127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer psrv.Close()

	// The client: writes to the primary, reads round-robin from the
	// replicas, demanding read-your-writes with a revision floor.
	cl, err := client.Dial(paddr.String(), client.WithFollowerReads(followerAddrs...))
	if err != nil {
		return "", err
	}
	defer cl.Close()

	var floor kv.Revision
	for i := 0; i < orders; i++ {
		k := []byte(fmt.Sprintf("order-%03d", i))
		if err := cl.Put(k, []byte("status=placed epoch=1")); err != nil {
			return "", err
		}
		if i == orders-1 {
			if _, floor, err = cl.GetRev(k); err != nil {
				return "", err
			}
		}
	}
	// Reign 1 records its leadership; the key's revision is the fencing
	// token (the coordination example's guard, one level down the stack).
	if err := cl.PutIf(leaderKey, []byte("epoch=1"), 0); err != nil {
		return "", err
	}
	_, fence1, err := cl.GetRev(leaderKey)
	if err != nil {
		return "", err
	}

	// Follower reads at the floor: each replica must prove it has applied
	// at least the last write before answering, and may never report a
	// revision past its own watermark.
	for _, f := range followers {
		if err := f.WaitIdle(); err != nil {
			return "", err
		}
	}
	served := 0
	for i := 0; i < orders; i += 7 {
		k := []byte(fmt.Sprintf("order-%03d", i))
		v, rev, wm, err := cl.ReadAt(k, floor)
		if err != nil {
			return "", fmt.Errorf("follower read %s: %w", k, err)
		}
		if !bytes.Equal(v, []byte("status=placed epoch=1")) {
			return "", fmt.Errorf("follower read %s: %q", k, v)
		}
		if rev > wm {
			return "", fmt.Errorf("follower read %s: rev %d past watermark %d", k, rev, wm)
		}
		served++
	}

	// The primary dies mid-flight: the group fences its log writers. A
	// zombie write through the old address now fails with kv.ErrFenced —
	// across the wire, as the deposed machine's clients would see it.
	group.Kill()
	if err := cl.Put([]byte("order-zombie"), []byte("late")); !errors.Is(err, kv.ErrFenced) {
		return "", fmt.Errorf("zombie write: err = %v, want kv.ErrFenced", err)
	}

	// Promotion: the most-caught-up replica replays the log tail and takes
	// over under the next epoch. Its server was already running — clients
	// re-route by treating its address as the new primary.
	_, promoted, err := group.Promote()
	if err != nil {
		return "", err
	}
	m := group.Membership()
	if m.Epoch != 2 || m.Primary != promoted.Name() {
		return "", fmt.Errorf("membership after failover: %+v", m)
	}
	var newAddr, survivorAddr string
	for i, f := range followers {
		if f == promoted {
			newAddr = followerAddrs[i]
		} else {
			survivorAddr = followerAddrs[i]
		}
	}
	cl2, err := client.Dial(newAddr, client.WithFollowerReads(survivorAddr))
	if err != nil {
		return "", err
	}
	defer cl2.Close()

	// Every acknowledged write survived; the zombie did not.
	for i := 0; i < orders; i++ {
		k := []byte(fmt.Sprintf("order-%03d", i))
		if _, err := cl2.Get(k); err != nil {
			return "", fmt.Errorf("%s lost in failover: %w", k, err)
		}
	}
	if _, err := cl2.Get([]byte("order-zombie")); !errors.Is(err, kv.ErrNotFound) {
		return "", fmt.Errorf("zombie write survived the fence: %v", err)
	}

	// Fencing-token handoff: reign 2 takes the leader key with a guarded
	// conditional write at the token it inherited — a deposed leader
	// holding fence1 can no longer win — and the new token must grow.
	if err := cl2.PutIf(leaderKey, []byte("epoch=2"), fence1); err != nil {
		return "", fmt.Errorf("leadership handoff: %w", err)
	}
	_, fence2, err := cl2.GetRev(leaderKey)
	if err != nil {
		return "", err
	}
	if fence2 <= fence1 {
		return "", fmt.Errorf("fencing token did not grow: %d then %d", fence1, fence2)
	}

	// Life under the new epoch: writes to the promoted primary replicate
	// to the surviving follower, which keeps serving follower reads.
	if err := cl2.Put([]byte("order-new"), []byte("status=placed epoch=2")); err != nil {
		return "", err
	}
	var survivor *repl.Follower
	for _, f := range followers {
		if f != promoted {
			survivor = f
		}
	}
	if err := survivor.WaitIdle(); err != nil {
		return "", err
	}
	v, rev, wm, err := cl2.FollowerGet([]byte("order-new"))
	if err != nil {
		return "", err
	}
	if !bytes.Equal(v, []byte("status=placed epoch=2")) || rev > wm {
		return "", fmt.Errorf("post-failover follower read: %q rev=%d wm=%d", v, rev, wm)
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, "replication ok: %d orders shipped to %d replicas, %d follower reads at floor %d\n",
		orders, replicas, served, floor)
	fmt.Fprintf(&b, "failover: %s promoted, epoch %d -> %d, fence %d -> %d, zombie write rejected\n",
		promoted.Name(), 1, m.Epoch, fence1, fence2)
	return b.String(), nil
}
