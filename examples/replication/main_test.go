package main

import (
	"strings"
	"testing"
)

// TestReplicationExample smoke-tests the full scenario: log shipping to
// two replicas, follower reads at a floor, kill-the-primary failover with
// a fencing-token handoff, and life under the new epoch.
func TestReplicationExample(t *testing.T) {
	summary, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "replication ok") {
		t.Fatalf("summary = %q", summary)
	}
	if !strings.Contains(summary, "epoch 1 -> 2") {
		t.Fatalf("summary missing epoch handoff: %q", summary)
	}
}
