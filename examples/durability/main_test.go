package main

import (
	"strings"
	"testing"
)

// TestDurabilityExample runs the full kill-and-recover loop so the example
// cannot silently rot: every generation must crash at a random log offset,
// recover, and conserve the bank total.
func TestDurabilityExample(t *testing.T) {
	summary, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "durability ok:") {
		t.Fatalf("unexpected summary:\n%s", summary)
	}
	if !strings.Contains(summary, "generation 5:") {
		t.Fatalf("loop did not reach the last generation:\n%s", summary)
	}
}
