// durability is the kill-and-recover loop: a bank of accounts lives in a
// durable kv.DB (kv.OpenLocal over a crash-injectable device), concurrent
// movers transfer money with closure transactions, and every generation
// the process "dies" — the simulated machine and all volatile state are
// thrown away, and a crash image of the write-ahead log (cut at a random
// byte, torn tail and all) is all that survives. Recovery reopens the log
// into a fresh System and the audit proves the invariant: either the bank
// never funded (the cut severed the funding batch — itself atomic) or
// every account is present and the total is exactly conserved. A midpoint
// checkpoint exercises the replay-bounding path; the summary reports how
// much of each generation's log survived and how many transactions each
// recovery replayed.
//
// Swap wal.NewMemStorage for wal.NewFileStorage(dir) and the same program
// persists across real process restarts.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"

	"rhtm"
	"rhtm/kv"
	"rhtm/store"
	"rhtm/wal"
)

const (
	accounts    = 16
	initial     = 1000
	movers      = 3
	transfers   = 40 // per mover per generation
	generations = 5
	shards      = 4
)

func main() {
	summary, err := run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(summary)
}

func acct(i int) []byte { return []byte(fmt.Sprintf("acct-%03d", i)) }

func enc(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// open builds a fresh simulated machine over whatever the storage holds —
// the "reboot" half of the kill-and-recover loop.
func open(stg wal.Storage) (*kv.Local, *store.Sharded, error) {
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 17))
	eng := rhtm.NewRH1(s, rhtm.DefaultRH1Options())
	sh := store.NewSharded(s, shards, store.Options{ArenaWords: 1 << 13})
	dev, err := stg.Device("bank")
	if err != nil {
		return nil, nil, err
	}
	db, err := kv.OpenLocal(eng, sh, dev)
	if err != nil {
		return nil, nil, err
	}
	return db, sh, nil
}

// audit scans the recovered bank: all-or-nothing presence, conserved total.
func audit(db kv.DB) (present int, total uint64, err error) {
	it := db.Scan([]byte("acct-"), []byte("acct-~"), 0)
	for it.Next() {
		present++
		total += binary.LittleEndian.Uint64(it.Value())
	}
	return present, total, it.Err()
}

func run() (string, error) {
	stg := wal.NewMemStorage()
	rng := rand.New(rand.NewSource(1))
	var out strings.Builder

	db, _, err := open(stg)
	if err != nil {
		return "", err
	}
	setup := make([]kv.Op, accounts)
	for i := range setup {
		setup[i] = kv.Op{Kind: kv.OpPut, Key: acct(i), Value: enc(initial)}
	}
	if _, err := db.Batch(setup); err != nil {
		return "", err
	}
	// Crashes never cut below the funding batch: the generations model a
	// running service, not a failed bootstrap. (Cutting below it is legal
	// too — the batch is atomic, so the bank would recover empty — and the
	// conformance battery's crash fuzz covers exactly that.)
	floor := stg.Appended()

	recoveredTxns := 0
	for gen := 1; gen <= generations; gen++ {
		if gen > 1 {
			// Fold the previous generations into a checkpoint before this
			// one's traffic: recovery then replays roughly one generation's
			// transactions instead of the whole history. The checkpoint sits
			// below the crash floor, so every cut keeps it.
			if err := db.Checkpoint(); err != nil {
				return "", err
			}
			floor = stg.Appended()
		}
		var wg sync.WaitGroup
		for m := 0; m < movers; m++ {
			mrng := rand.New(rand.NewSource(int64(gen*100 + m)))
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < transfers; i++ {
					from, to := mrng.Intn(accounts), mrng.Intn(accounts)
					if from == to {
						continue
					}
					amt := uint64(mrng.Intn(20) + 1)
					err := db.Update(func(tx kv.Txn) error {
						fv, err := tx.Get(acct(from))
						if err != nil {
							return err
						}
						f := binary.LittleEndian.Uint64(fv)
						if f < amt {
							return nil
						}
						tv, err := tx.Get(acct(to))
						if err != nil {
							return err
						}
						if err := tx.Put(acct(from), enc(f-amt)); err != nil {
							return err
						}
						return tx.Put(acct(to), enc(binary.LittleEndian.Uint64(tv)+amt))
					})
					if err != nil {
						panic(fmt.Sprintf("transfer: %v", err))
					}
				}
			}()
		}
		wg.Wait()

		// Kill: pick a crash point anywhere in this generation's log tail
		// (mid-record cuts included) and throw the machine away.
		end := stg.Appended()
		cut := floor + uint64(rng.Int63n(int64(end-floor)+1))
		img := stg.CrashImage(cut)

		// Recover: fresh machine over the crash image.
		db2, sh2, err := open(img)
		if err != nil {
			return "", fmt.Errorf("generation %d: recover: %w", gen, err)
		}
		present, total, err := audit(db2)
		if err != nil {
			return "", err
		}
		if present != accounts {
			return "", fmt.Errorf("generation %d: %d of %d accounts survived — funding torn",
				gen, present, accounts)
		}
		if total != accounts*initial {
			return "", fmt.Errorf("generation %d: total %d, want %d — money not conserved",
				gen, total, accounts*initial)
		}
		if err := sh2.Validate(); err != nil {
			return "", fmt.Errorf("generation %d: %w", gen, err)
		}
		dev, err := img.Device("bank")
		if err != nil {
			return "", err
		}
		data, err := dev.Contents()
		if err != nil {
			return "", err
		}
		sr := wal.Scan(data)
		recoveredTxns += len(sr.Txns)
		fmt.Fprintf(&out, "generation %d: crashed %d of %d log bytes, replayed %d txns (+checkpoint %d entries), total %d ok\n",
			gen, cut, end, len(sr.Txns), len(sr.Checkpoint), total)

		// The recovered DB is the next generation's bank; the old storage
		// is gone with the crash.
		db = db2
		stg = img
		floor = stg.Appended()
	}
	fmt.Fprintf(&out, "durability ok: %d generations crash-recovered, %d txns replayed, invariant %d held\n",
		generations, recoveredTxns, accounts*initial)
	return out.String(), nil
}
