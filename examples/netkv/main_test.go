package main

import (
	"strings"
	"testing"
)

// TestNetKVExample runs the full scenario so the example cannot silently
// rot: server, pooled client, pipelined workers, wire transactions, and
// the watch stream.
func TestNetKVExample(t *testing.T) {
	summary, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(summary, "netkv ok:") {
		t.Fatalf("unexpected summary:\n%s", summary)
	}
	if !strings.Contains(summary, "batches") {
		t.Fatalf("summary missing batch stats:\n%s", summary)
	}
}
