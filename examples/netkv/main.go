// netkv serves a kv.DB over loopback TCP and drives it through the
// client package — the network front end of DESIGN.md §11 in one program.
// Pipelined workers hammer independent Puts and Gets through a pooled
// connection set (so the server's cross-connection batcher merges ops from
// different connections into shared transactions), a transfer loop commits
// Update closures across the wire, and a watch stream subscribed over TCP
// observes every transfer commit as server-push Event frames. The client
// implements kv.DB, so everything here is the same code an in-process
// caller would write; only the Dial line knows a network exists.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"sync"

	"rhtm"
	"rhtm/client"
	"rhtm/kv"
	"rhtm/obs"
	"rhtm/server"
	"rhtm/store"
)

const (
	workers = 8
	opsEach = 200
	records = 128
	conns   = 4
)

func main() {
	summary, err := run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(summary)
}

func key(i int) []byte { return []byte(fmt.Sprintf("item-%04d", i%records)) }

// run executes the scenario and returns a human-readable summary; the
// smoke test drives it directly.
func run() (string, error) {
	// The backend: a real engine and sharded store behind a Local DB. The
	// server fronts it without owning it.
	s := rhtm.MustNewSystem(rhtm.DefaultConfig(1 << 18))
	db := kv.NewLocal(rhtm.NewTL2(s), store.NewSharded(s, 4, store.Options{ArenaWords: 1 << 14}))

	reg := obs.NewRegistry()
	srv := server.New(db, server.WithMetrics(reg), server.WithEngineName("tl2"))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer srv.Close()

	cl, err := client.Dial(addr.String(), client.WithConns(conns))
	if err != nil {
		return "", err
	}
	defer cl.Close()

	// A watch over the wire: subscribe to the transfer ledger's prefix and
	// count the commits the server pushes back.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events, err := cl.Watch(ctx, []byte("ledger:"), 0)
	if err != nil {
		return "", err
	}
	var watched, lost int
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for ev := range events {
			if ev.Kind == kv.EventLost {
				lost++
				continue
			}
			watched++
		}
	}()

	// Populate through one Batch frame, then let pipelined workers loose:
	// each alternates independent Puts and Gets, which the server is free
	// to complete out of order and merge across connections.
	ops := make([]kv.Op, records)
	for i := range ops {
		ops[i] = kv.Op{Kind: kv.OpPut, Key: key(i), Value: []byte{0}}
	}
	if _, err := cl.Batch(ops); err != nil {
		return "", err
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				k := key(w*opsEach + i)
				if i%2 == 0 {
					if err := cl.Put(k, bytes.Repeat([]byte{byte(w)}, 8)); err != nil {
						errs <- fmt.Errorf("worker %d put: %w", w, err)
						return
					}
				} else if _, err := cl.Get(k); err != nil && err != kv.ErrNotFound {
					errs <- fmt.Errorf("worker %d get: %w", w, err)
					return
				}
			}
		}(w)
	}

	// The transfer loop: Update closures commit atomically across the wire
	// (the client ships the closure's read revisions and buffered writes
	// as one Txn frame; the server validates and applies transactionally).
	const transfers = 40
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < transfers; i++ {
			err := cl.Update(func(tx kv.Txn) error {
				cur, err := tx.Get([]byte("ledger:total"))
				if err != nil && err != kv.ErrNotFound {
					return err
				}
				return tx.Put([]byte("ledger:total"), append(cur[:len(cur):len(cur)], byte(i)))
			})
			if err != nil {
				errs <- fmt.Errorf("transfer %d: %w", i, err)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		return "", err
	}

	// Drain the watch: cancel, wait for the server's WatchEnd to close the
	// channel, and check every transfer commit was observed (the ledger is
	// one key written serially, well under the queue bound — no EventLost).
	cancel()
	<-watchDone
	if watched+lost < transfers {
		return "", fmt.Errorf("watch saw %d events + %d lost, want >= %d", watched, lost, transfers)
	}

	// The final ledger value must hold exactly one byte per transfer —
	// the closures were serialized by conflict detection, not luck.
	total, err := cl.Get([]byte("ledger:total"))
	if err != nil {
		return "", err
	}
	if len(total) != transfers {
		return "", fmt.Errorf("ledger holds %d entries, want %d: lost updates", len(total), transfers)
	}

	// The server's own instruments tell the batching story: batch_fill's
	// sum/count is the mean ops merged per cross-connection transaction.
	snap := reg.Snapshot()
	fill := snap.Histograms["server.batch_fill"]
	if fill.Count == 0 {
		return "", fmt.Errorf("batcher never engaged")
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "netkv ok: %d workers x %d ops over %d conns, %d transfers, %d watch events (%d lost)\n",
		workers, opsEach, conns, transfers, watched, lost)
	fmt.Fprintf(&b, "server: %d batches, mean fill %.2f ops, %d bytes in / %d bytes out\n",
		fill.Count, float64(fill.Sum)/float64(fill.Count),
		snap.Counters["server.bytes_in"], snap.Counters["server.bytes_out"])
	return b.String(), nil
}
