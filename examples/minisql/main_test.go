package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestMiniSQLScript drives the whole example over the real network stack:
// a scripted session covering DDL, online index backfill, planner-served
// reads, EXPLAIN, unique enforcement against backfilled entries, and
// deletes. The assertions pin the statement results in order.
func TestMiniSQLScript(t *testing.T) {
	db, cleanup, err := dialBackend()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	const script = `
-- a comment the REPL skips
CREATE TABLE users (id INT, city TEXT, age INT, PRIMARY KEY (id));
INSERT INTO users VALUES (1, 'ams', 34);
INSERT INTO users VALUES (2, 'ams', 28), (3, 'bos', 41), (4, 'nyc', 25), (5, 'bos', 52), (6, 'nyc', 19);
CREATE INDEX by_city ON users (city);
EXPLAIN SELECT * FROM users WHERE city = 'ams';
SELECT * FROM users WHERE city = 'ams';
SELECT id FROM users WHERE age > 30 AND age <= 41 ORDER BY id;
EXPLAIN SELECT id FROM users WHERE id = 2;
CREATE UNIQUE INDEX by_age ON users (age);
INSERT INTO users VALUES (9, 'sfo', 34);
DELETE FROM users WHERE id = 3;
SELECT * FROM users WHERE city = 'bos';
`
	var out bytes.Buffer
	if err := repl(db, strings.NewReader(script), &out, ""); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	want := []string{
		"CREATE TABLE",
		"INSERT 1",
		"INSERT 5",
		"CREATE INDEX (6 rows backfilled in 1 batches)",
		`index(by_city eq "ams") fetch`, // the planner picks the new index
		`1 | "ams" | 34`,
		`2 | "ams" | 28`,
		"(2 rows)",
		"1\n3\n(2 rows)", // age in (30,41] full-scan filter, ordered by id
		"point(users)",   // full primary key pinned -> point get
		"DELETE 1",
		`5 | "bos" | 52`,
		"(1 row)",
	}
	pos := 0
	for _, w := range want {
		i := strings.Index(got[pos:], w)
		if i < 0 {
			t.Fatalf("output missing %q after byte %d:\n%s", w, pos, got)
		}
		pos += i + len(w)
	}
	// The duplicate age must be refused by the backfilled unique index —
	// as an error, not a crash, and before the DELETE succeeded.
	if !strings.Contains(got, "error:") || !strings.Contains(got, "unique") {
		t.Fatalf("output missing the unique-violation error:\n%s", got)
	}
}
